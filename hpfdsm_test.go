package hpfdsm_test

import (
	"testing"

	"hpfdsm"
)

const testSource = `
PROGRAM facade
PARAM n = 32
REAL a(n)
SCALAR s
DISTRIBUTE a(BLOCK)
FORALL (i = 1:n)
  a(i) = 2 * i
END FORALL
STARTTIMER
REDUCE (SUM, s, i = 1:n) a(i)
END
`

func TestFacadeRunSource(t *testing.T) {
	res, err := hpfdsm.RunSource(testSource, nil, hpfdsm.Options{
		Machine: hpfdsm.DefaultMachine(),
		Opt:     hpfdsm.OptBulk,
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := float64(32 * 33); res.Scalars["S"] != want {
		t.Fatalf("sum = %v, want %v", res.Scalars["S"], want)
	}
	if res.Elapsed <= 0 {
		t.Fatal("no elapsed time")
	}
}

func TestFacadeOverrides(t *testing.T) {
	res, err := hpfdsm.RunSource(testSource, map[string]int{"N": 8}, hpfdsm.Options{
		Machine: hpfdsm.DefaultMachine().WithNodes(2),
		Opt:     hpfdsm.OptNone,
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := float64(8 * 9); res.Scalars["S"] != want {
		t.Fatalf("sum = %v, want %v", res.Scalars["S"], want)
	}
}

func TestFacadeCompileError(t *testing.T) {
	if _, err := hpfdsm.Compile("PROGRAM x\nBOGUS\nEND\n", nil); err == nil {
		t.Fatal("bad program accepted")
	}
}

func TestFacadeParseOptLevel(t *testing.T) {
	l, err := hpfdsm.ParseOptLevel("rtelim")
	if err != nil || l != hpfdsm.OptRTElim {
		t.Fatalf("ParseOptLevel = %v, %v", l, err)
	}
}

func TestFacadeApps(t *testing.T) {
	if len(hpfdsm.Apps()) != 6 {
		t.Fatalf("suite has %d apps", len(hpfdsm.Apps()))
	}
	a, err := hpfdsm.AppByName("jacobi")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := a.Program(a.ScaledParams)
	if err != nil {
		t.Fatal(err)
	}
	res, err := hpfdsm.Run(prog, hpfdsm.Options{Machine: hpfdsm.DefaultMachine(), Opt: hpfdsm.OptRTElim})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.TotalMisses() == 0 {
		t.Fatal("no misses recorded; suspicious")
	}
}

func TestFacadeMessagePassing(t *testing.T) {
	res, err := hpfdsm.RunSource(testSource, nil, hpfdsm.Options{
		Machine: hpfdsm.DefaultMachine(),
		Backend: hpfdsm.MessagePassing,
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := float64(32 * 33); res.Scalars["S"] != want {
		t.Fatalf("mp sum = %v", res.Scalars["S"])
	}
}

func TestFacadePrintSource(t *testing.T) {
	prog, err := hpfdsm.Compile(testSource, nil)
	if err != nil {
		t.Fatal(err)
	}
	text := hpfdsm.PrintSource(prog)
	re, err := hpfdsm.Compile(text, nil)
	if err != nil {
		t.Fatalf("reprint does not compile: %v\n%s", err, text)
	}
	res, err := hpfdsm.Run(re, hpfdsm.Options{Machine: hpfdsm.DefaultMachine(), Opt: hpfdsm.OptNone})
	if err != nil {
		t.Fatal(err)
	}
	if res.Scalars["S"] != 32*33 {
		t.Fatalf("reprinted program result %v", res.Scalars["S"])
	}
}
