// Smoke tests for the examples/ programs: each one must vet clean,
// build, and run to completion with scaled-down parameters. The
// examples are the package's de-facto API documentation; a refactor
// that silently breaks one fails here, not in a user's editor.
package hpfdsm_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

func TestExamplesSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping example binaries in -short mode")
	}
	examples := []struct {
		dir  string
		args []string // scaled-down parameters
	}{
		{"compiler", nil},
		{"customprotocol", []string{"-iters", "5"}},
		{"irregular", []string{"-n", "512", "-iters", "3"}},
		{"quickstart", []string{"-n", "64", "-iters", "4"}},
		{"stencil", []string{"-iters", "2"}},
	}
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(examples) {
		t.Errorf("examples/ holds %d entries but the smoke test covers %d — add the new example here",
			len(entries), len(examples))
	}
	bin := t.TempDir()
	for _, ex := range examples {
		ex := ex
		t.Run(ex.dir, func(t *testing.T) {
			pkg := "./examples/" + ex.dir

			vet := exec.Command("go", "vet", pkg)
			if out, err := vet.CombinedOutput(); err != nil {
				t.Fatalf("go vet %s: %v\n%s", pkg, err, out)
			}

			exe := filepath.Join(bin, ex.dir)
			build := exec.Command("go", "build", "-o", exe, pkg)
			if out, err := build.CombinedOutput(); err != nil {
				t.Fatalf("go build %s: %v\n%s", pkg, err, out)
			}

			run := exec.Command(exe, ex.args...)
			out, err := run.CombinedOutput()
			if err != nil {
				t.Fatalf("%s %v: %v\n%s", ex.dir, ex.args, err, out)
			}
			if len(out) == 0 {
				t.Fatalf("%s produced no output", ex.dir)
			}
		})
	}
}
