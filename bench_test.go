// Benchmarks regenerating the paper's evaluation, one per table and
// figure. They run at the scaled problem sizes so `go test -bench=.`
// finishes quickly; cmd/paperbench runs the same experiments at larger
// sizes with formatted output. b.ReportMetric attaches the simulated-
// machine quantities (virtual milliseconds, misses, messages) that the
// tables and figures are made of.
//
// Each benchmark warm-runs its configurations once before ResetTimer,
// so program parsing and communication analysis (both memoized
// process-wide) happen during setup: the timed loop measures
// simulation, which is what the BENCH_*.json trajectory tracks.
package hpfdsm_test

import (
	"testing"

	"hpfdsm/internal/apps"
	"hpfdsm/internal/bench"
	"hpfdsm/internal/compiler"
	"hpfdsm/internal/config"
	"hpfdsm/internal/runtime"
)

// benchSetup resolves the app and warm-runs each variant once, then
// starts the measurement: allocs/op reported, timer reset.
func benchSetup(b *testing.B, name string, vs ...bench.Variant) *apps.App {
	b.Helper()
	a, err := apps.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	for _, v := range vs {
		if _, err := bench.RunApp(a, a.ScaledParams, v); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	return a
}

func mustRun(b *testing.B, a *apps.App, v bench.Variant) *runtime.Result {
	res, err := bench.RunApp(a, a.ScaledParams, v)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

func report(b *testing.B, res *runtime.Result) {
	b.ReportMetric(float64(res.Elapsed)/1e6, "sim-ms")
	b.ReportMetric(res.Stats.AvgMissesPerNode(), "misses/node")
	b.ReportMetric(float64(res.Stats.TotalMessages()), "msgs")
}

// BenchmarkTable1ReadMiss measures the remote read-miss latency that
// Table 1 reports as 93 us.
func BenchmarkTable1ReadMiss(b *testing.B) {
	b.ReportAllocs()
	var stall int64
	for i := 0; i < b.N; i++ {
		stall = bench.MeasureReadMiss()
	}
	b.ReportMetric(float64(stall)/1e3, "us/miss")
}

// BenchmarkFig1DefaultVsDirect reports the message counts of Figure 1.
func BenchmarkFig1DefaultVsDirect(b *testing.B) {
	b.ReportAllocs()
	out := ""
	for i := 0; i < b.N; i++ {
		out = bench.Fig1()
	}
	_ = out
}

// BenchmarkTable2Suite compiles all six applications at paper sizes
// (Table 2's inventory) and reports their aggregate footprint. Program
// parsing is what this one measures, so there is no warm-up; parses
// are memoized, so iterations past the first measure the cache.
func BenchmarkTable2Suite(b *testing.B) {
	b.ReportAllocs()
	var mb float64
	for i := 0; i < b.N; i++ {
		mb = 0
		for _, a := range apps.All() {
			mb += a.MemMB(a.PaperParams)
		}
	}
	b.ReportMetric(mb, "suite-MB")
}

// Figure 3: speedups. One benchmark per application, reporting the
// optimized dual-CPU speedup over the 1-node run.
func benchFig3(b *testing.B, name string) {
	uniV := bench.Variant{Key: "uni", Nodes: 1, CPUMode: config.DualCPU, Opt: compiler.OptNone}
	optV := bench.Variant{Key: "opt", Nodes: 8, CPUMode: config.DualCPU, Opt: compiler.OptRTElim}
	a := benchSetup(b, name, uniV, optV)
	var speedup float64
	for i := 0; i < b.N; i++ {
		uni := mustRun(b, a, uniV)
		opt := mustRun(b, a, optV)
		speedup = float64(uni.Elapsed) / float64(opt.Elapsed)
		report(b, opt)
	}
	b.ReportMetric(speedup, "speedup-8n")
}

func BenchmarkFig3SpeedupPDE(b *testing.B)     { benchFig3(b, "pde") }
func BenchmarkFig3SpeedupShallow(b *testing.B) { benchFig3(b, "shallow") }
func BenchmarkFig3SpeedupGrav(b *testing.B)    { benchFig3(b, "grav") }
func BenchmarkFig3SpeedupLU(b *testing.B)      { benchFig3(b, "lu") }
func BenchmarkFig3SpeedupCG(b *testing.B)      { benchFig3(b, "cg") }
func BenchmarkFig3SpeedupJacobi(b *testing.B)  { benchFig3(b, "jacobi") }

// Table 3: miss-count and communication-time reductions.
func benchTable3(b *testing.B, name string) {
	unV := bench.Variant{Nodes: 8, CPUMode: config.DualCPU, Opt: compiler.OptNone}
	opV := bench.Variant{Nodes: 8, CPUMode: config.DualCPU, Opt: compiler.OptRTElim}
	a := benchSetup(b, name, unV, opV)
	var missRed, commRed float64
	for i := 0; i < b.N; i++ {
		un := mustRun(b, a, unV)
		op := mustRun(b, a, opV)
		missRed = 100 * (1 - op.Stats.AvgMissesPerNode()/un.Stats.AvgMissesPerNode())
		commRed = 100 * (1 - float64(op.Stats.AvgCommTime())/float64(un.Stats.AvgCommTime()))
	}
	b.ReportMetric(missRed, "miss-red-%")
	b.ReportMetric(commRed, "comm-red-%")
}

func BenchmarkTable3PDE(b *testing.B)     { benchTable3(b, "pde") }
func BenchmarkTable3Shallow(b *testing.B) { benchTable3(b, "shallow") }
func BenchmarkTable3Grav(b *testing.B)    { benchTable3(b, "grav") }
func BenchmarkTable3LU(b *testing.B)      { benchTable3(b, "lu") }
func BenchmarkTable3CG(b *testing.B)      { benchTable3(b, "cg") }
func BenchmarkTable3Jacobi(b *testing.B)  { benchTable3(b, "jacobi") }

// Figure 4: the ablation of base transfers vs bulk transfer vs
// run-time overhead elimination (dual CPU), reported as percent
// execution-time reduction vs unoptimized.
func benchFig4(b *testing.B, name string) {
	unV := bench.Variant{Nodes: 8, CPUMode: config.DualCPU, Opt: compiler.OptNone}
	baseV := bench.Variant{Nodes: 8, CPUMode: config.DualCPU, Opt: compiler.OptBase}
	bulkV := bench.Variant{Nodes: 8, CPUMode: config.DualCPU, Opt: compiler.OptBulk}
	rteV := bench.Variant{Nodes: 8, CPUMode: config.DualCPU, Opt: compiler.OptRTElim}
	a := benchSetup(b, name, unV, baseV, bulkV, rteV)
	var base, bulk, rte float64
	for i := 0; i < b.N; i++ {
		u := float64(mustRun(b, a, unV).Elapsed)
		base = 100 * (1 - float64(mustRun(b, a, baseV).Elapsed)/u)
		bulk = 100 * (1 - float64(mustRun(b, a, bulkV).Elapsed)/u)
		rte = 100 * (1 - float64(mustRun(b, a, rteV).Elapsed)/u)
	}
	b.ReportMetric(base, "base-%")
	b.ReportMetric(bulk, "bulk-%")
	b.ReportMetric(rte, "rtelim-%")
}

func BenchmarkFig4AblationPDE(b *testing.B)     { benchFig4(b, "pde") }
func BenchmarkFig4AblationShallow(b *testing.B) { benchFig4(b, "shallow") }
func BenchmarkFig4AblationGrav(b *testing.B)    { benchFig4(b, "grav") }
func BenchmarkFig4AblationLU(b *testing.B)      { benchFig4(b, "lu") }
func BenchmarkFig4AblationCG(b *testing.B)      { benchFig4(b, "cg") }
func BenchmarkFig4AblationJacobi(b *testing.B)  { benchFig4(b, "jacobi") }

// BenchmarkMessagePassingBaseline compares the PGI-style backend
// (Figure 3's mp bars) against optimized shared memory on jacobi.
func BenchmarkMessagePassingBaseline(b *testing.B) {
	mpV := bench.Variant{Nodes: 8, CPUMode: config.DualCPU, Backend: runtime.MessagePassing}
	smV := bench.Variant{Nodes: 8, CPUMode: config.DualCPU, Opt: compiler.OptRTElim}
	a := benchSetup(b, "jacobi", mpV, smV)
	var ratio float64
	for i := 0; i < b.N; i++ {
		mp := mustRun(b, a, mpV)
		sm := mustRun(b, a, smV)
		ratio = float64(mp.Elapsed) / float64(sm.Elapsed)
		report(b, mp)
	}
	b.ReportMetric(ratio, "mp/sm-opt")
}

// BenchmarkPREAblation measures the redundant-communication
// elimination extension on shallow (which the paper singles out).
func BenchmarkPREAblation(b *testing.B) {
	rteV := bench.Variant{Nodes: 8, CPUMode: config.DualCPU, Opt: compiler.OptRTElim}
	preV := bench.Variant{Nodes: 8, CPUMode: config.DualCPU, Opt: compiler.OptPRE}
	a := benchSetup(b, "shallow", rteV, preV)
	var saved float64
	for i := 0; i < b.N; i++ {
		rte := mustRun(b, a, rteV)
		pre := mustRun(b, a, preV)
		saved = float64(rte.Stats.TotalMessages() - pre.Stats.TotalMessages())
	}
	b.ReportMetric(saved, "msgs-saved")
}

// BenchmarkBlockSizeAblation sweeps the coherence unit (the paper's
// 32-128 byte fine-grain range) on jacobi, unoptimized.
func BenchmarkBlockSizeAblation(b *testing.B) {
	a, err := apps.ByName("jacobi")
	if err != nil {
		b.Fatal(err)
	}
	prog, err := a.Program(a.ScaledParams)
	if err != nil {
		b.Fatal(err)
	}
	for _, bs := range []int{32, 64, 128} {
		bs := bs
		b.Run(string(rune('0'+bs/32))+"x32B", func(b *testing.B) {
			mc := config.Default().WithBlockSize(bs)
			opts := runtime.Options{Machine: mc, Opt: compiler.OptNone}
			if _, err := runtime.Run(prog, opts); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			var misses float64
			for i := 0; i < b.N; i++ {
				res, err := runtime.Run(prog, opts)
				if err != nil {
					b.Fatal(err)
				}
				misses = res.Stats.AvgMissesPerNode()
			}
			b.ReportMetric(misses, "misses/node")
		})
	}
}

// BenchmarkIrregularExtension runs the paper's future-work benchmark
// class (affine + indirect mix) on the shared-memory backend.
func BenchmarkIrregularExtension(b *testing.B) {
	a := apps.Irregular()
	unV := bench.Variant{Nodes: 8, CPUMode: config.DualCPU, Opt: compiler.OptNone}
	opV := bench.Variant{Nodes: 8, CPUMode: config.DualCPU, Opt: compiler.OptRTElim}
	for _, v := range []bench.Variant{unV, opV} {
		if _, err := bench.RunApp(a, a.ScaledParams, v); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	var red float64
	for i := 0; i < b.N; i++ {
		un := mustRun(b, a, unV)
		op := mustRun(b, a, opV)
		red = 100 * (1 - float64(op.Elapsed)/float64(un.Elapsed))
		report(b, op)
	}
	b.ReportMetric(red, "affine-opt-%")
}

// BenchmarkConsistencyAblation reports the write-latency hiding of the
// eager release-consistent protocol (the paper's footnote 1).
func BenchmarkConsistencyAblation(b *testing.B) {
	rcV := bench.Variant{Nodes: 8, CPUMode: config.DualCPU, Opt: compiler.OptNone}
	a := benchSetup(b, "jacobi", rcV)
	prog, err := a.Program(a.ScaledParams)
	if err != nil {
		b.Fatal(err)
	}
	scOpts := runtime.Options{
		Machine: config.Default().WithConsistency(config.SequentiallyConsistent),
		Opt:     compiler.OptNone,
	}
	var saved float64
	for i := 0; i < b.N; i++ {
		rc := mustRun(b, a, rcV)
		sc, err := runtime.Run(prog, scOpts)
		if err != nil {
			b.Fatal(err)
		}
		saved = 100 * (1 - float64(rc.Elapsed)/float64(sc.Elapsed))
	}
	b.ReportMetric(saved, "rc-saves-%")
}
