package lang

import (
	"fmt"
	"strings"

	"hpfdsm/internal/distribute"
	"hpfdsm/internal/ir"
)

// Print renders a program back to mini-HPF source text. Printing a
// parsed program and re-parsing it yields an equivalent program
// (inlined subroutines are printed inline; parameter values are
// printed as resolved constants).
func Print(p *ir.Program) string {
	var b strings.Builder
	fmt.Fprintf(&b, "PROGRAM %s\n", strings.ToLower(p.Name))
	var params []string
	for k := range p.Params {
		params = append(params, k)
	}
	sortStrings(params)
	for _, k := range params {
		fmt.Fprintf(&b, "PARAM %s = %d\n", strings.ToLower(k), p.Params[k])
	}
	for _, a := range p.Arrays {
		exts := make([]string, len(a.Extents))
		for i, e := range a.Extents {
			exts[i] = fmt.Sprint(e)
		}
		fmt.Fprintf(&b, "REAL %s(%s)\n", strings.ToLower(a.Name), strings.Join(exts, ", "))
	}
	if len(p.Scalars) > 0 {
		lows := make([]string, len(p.Scalars))
		for i, s := range p.Scalars {
			lows[i] = strings.ToLower(s)
		}
		fmt.Fprintf(&b, "SCALAR %s\n", strings.Join(lows, ", "))
	}
	for _, a := range p.Arrays {
		if a.Dist.Kind == distribute.Collapsed && a.Rank() > 0 {
			continue // default; still print explicit BLOCK below
		}
		stars := make([]string, a.Rank())
		for i := range stars {
			stars[i] = "*"
		}
		switch a.Dist.Kind {
		case distribute.Block:
			stars[a.Rank()-1] = "BLOCK"
		case distribute.Cyclic:
			stars[a.Rank()-1] = "CYCLIC"
		case distribute.BlockCyclic:
			stars[a.Rank()-1] = fmt.Sprintf("CYCLIC(%d)", a.Dist.K)
		}
		fmt.Fprintf(&b, "DISTRIBUTE %s(%s)\n", strings.ToLower(a.Name), strings.Join(stars, ", "))
	}
	b.WriteByte('\n')
	printStmts(&b, p.Body, 0)
	b.WriteString("END\n")
	return b.String()
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func printStmts(b *strings.Builder, stmts []ir.Stmt, depth int) {
	ind := strings.Repeat("  ", depth)
	for _, s := range stmts {
		switch st := s.(type) {
		case *ir.ParLoop:
			idxs := make([]string, len(st.Indexes))
			for i, ix := range st.Indexes {
				idxs[i] = printIndex(ix)
			}
			fmt.Fprintf(b, "%sFORALL (%s)", ind, strings.Join(idxs, ", "))
			if st.OnHome != nil {
				fmt.Fprintf(b, " ON %s", printRef(*st.OnHome))
			}
			b.WriteByte('\n')
			for _, as := range st.Body {
				fmt.Fprintf(b, "%s  %s = %s\n", ind, printRef(as.LHS), printExpr(as.RHS))
			}
			fmt.Fprintf(b, "%sEND FORALL\n", ind)
		case *ir.SeqLoop:
			fmt.Fprintf(b, "%sDO %s = %s, %s\n", ind, strings.ToLower(st.Var), printAff(st.Lo), printAff(st.Hi))
			printStmts(b, st.Body, depth+1)
			fmt.Fprintf(b, "%sEND DO\n", ind)
		case *ir.Reduce:
			idxs := make([]string, len(st.Indexes))
			for i, ix := range st.Indexes {
				idxs[i] = printIndex(ix)
			}
			fmt.Fprintf(b, "%sREDUCE (%v, %s, %s) %s\n", ind, st.Op, strings.ToLower(st.Target),
				strings.Join(idxs, ", "), printExpr(st.Expr))
		case *ir.ScalarAssign:
			fmt.Fprintf(b, "%sLET %s = %s\n", ind, strings.ToLower(st.Name), printExpr(st.RHS))
		case *ir.ExitIf:
			fmt.Fprintf(b, "%sEXITIF %s %v %s\n", ind, printExpr(st.L), st.Op, printExpr(st.R))
		case *ir.StartTimer:
			fmt.Fprintf(b, "%sSTARTTIMER\n", ind)
		case *ir.Block:
			printStmts(b, st.Body, depth)
		}
	}
}

func printIndex(ix ir.Index) string {
	s := fmt.Sprintf("%s = %s:%s", strings.ToLower(ix.Var), printAff(ix.Lo), printAff(ix.Hi))
	if ix.StepOr1() != 1 {
		s += fmt.Sprintf(":%d", ix.Step)
	}
	return s
}

func printAff(a ir.AffExpr) string { return strings.ToLower(a.String()) }

func printRef(r ir.ArrayRef) string {
	subs := make([]string, len(r.Subs))
	for i, s := range r.Subs {
		subs[i] = printAff(s)
	}
	return fmt.Sprintf("%s(%s)", strings.ToLower(r.Array.Name), strings.Join(subs, ", "))
}

func printExpr(e ir.Expr) string {
	switch t := e.(type) {
	case ir.Num:
		if t.V == float64(int64(t.V)) && t.V >= -1e15 && t.V <= 1e15 {
			return fmt.Sprintf("%.1f", t.V)
		}
		return fmt.Sprintf("%g", t.V)
	case ir.ScalarRef:
		return strings.ToLower(t.Name)
	case ir.IdxVal:
		return strings.ToLower(t.Name)
	case ir.ArrayRef:
		return printRef(t)
	case ir.Indirect:
		subs := make([]string, len(t.Subs))
		for i, s := range t.Subs {
			subs[i] = printExpr(s)
		}
		return fmt.Sprintf("%s(%s)", strings.ToLower(t.Array.Name), strings.Join(subs, ", "))
	case ir.Bin:
		return fmt.Sprintf("(%s %v %s)", printExpr(t.L), t.Op, printExpr(t.R))
	case ir.Call:
		args := make([]string, len(t.Args))
		for i, a := range t.Args {
			args[i] = printExpr(a)
		}
		return fmt.Sprintf("%s(%s)", t.Fn, strings.Join(args, ", "))
	case ir.InnerRed:
		name := map[ir.RedOp]string{ir.RedSum: "SUM", ir.RedMax: "SMAX", ir.RedMin: "SMIN"}[t.Op]
		return fmt.Sprintf("%s(%s = %s:%s, %s)", name, strings.ToLower(t.Var),
			printAff(t.Lo), printAff(t.Hi), printExpr(t.Body))
	default:
		panic(fmt.Sprintf("lang: cannot print %T", e))
	}
}
