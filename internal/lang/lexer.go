// Package lang is the mini-HPF front end: a lexer, a line-oriented
// recursive-descent parser, and semantic analysis that lowers a small
// Fortran-like data-parallel language to the compiler IR. It plays the
// role of the modified pghpf front end in the paper: surface syntax
// over the same abstractions (distributed arrays, FORALL, reductions,
// DISTRIBUTE directives).
//
// Language summary (statements are line-oriented; '!' starts a comment):
//
//	PROGRAM name
//	PARAM n = 2048
//	REAL a(n, n), b(n, n)
//	SCALAR s, err
//	DISTRIBUTE a(*, BLOCK)          ! or CYCLIC, CYCLIC(4)
//	FORALL (i = 2:n-1, j = 1:n:2)   ! lo:hi[:step]
//	  a(i, j) = 0.25 * (b(i-1, j) + b(i+1, j))
//	END FORALL
//	DO k = 1, 100
//	  ...
//	END DO
//	REDUCE (SUM, s, i = 1:n) a(i)*a(i)
//	LET err = SQRT(s)
//	EXITIF err < 1.0E-6
//	END
//
// Expressions support + - * /, parentheses, numeric literals, scalar
// and array references, the intrinsics SQRT ABS EXP SIN COS MIN MAX
// MOD, loop indices as values, and inner reductions
// SUM(i = 1:m, expr) / SMAX(...) / SMIN(...).
package lang

import (
	"fmt"
	"strings"
)

type tokKind int

const (
	tEOF tokKind = iota
	tNL
	tIdent
	tInt
	tFloat
	tLParen
	tRParen
	tComma
	tAssign // =
	tColon
	tPlus
	tMinus
	tStar
	tSlash
	tLt
	tLe
	tGt
	tGe
)

func (k tokKind) String() string {
	names := map[tokKind]string{
		tEOF: "end of file", tNL: "end of line", tIdent: "identifier",
		tInt: "integer", tFloat: "number", tLParen: "'('", tRParen: "')'",
		tComma: "','", tAssign: "'='", tColon: "':'", tPlus: "'+'",
		tMinus: "'-'", tStar: "'*'", tSlash: "'/'", tLt: "'<'",
		tLe: "'<='", tGt: "'>'", tGe: "'>='",
	}
	return names[k]
}

type token struct {
	kind tokKind
	text string
	line int
}

// lex tokenizes the whole source. Keywords are case-insensitive and
// normalized to upper case; identifiers keep their lower-cased form.
func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	i := 0
	emit := func(k tokKind, text string) { toks = append(toks, token{k, text, line}) }
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			// Collapse repeated newlines.
			if len(toks) > 0 && toks[len(toks)-1].kind != tNL {
				emit(tNL, "")
			}
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '!':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c >= '0' && c <= '9' || c == '.' && i+1 < len(src) && src[i+1] >= '0' && src[i+1] <= '9':
			j := i
			isFloat := false
			for j < len(src) {
				d := src[j]
				if d >= '0' && d <= '9' {
					j++
					continue
				}
				if d == '.' {
					isFloat = true
					j++
					continue
				}
				if d == 'e' || d == 'E' {
					if j+1 < len(src) && (src[j+1] == '+' || src[j+1] == '-') {
						j += 2
					} else {
						j++
					}
					isFloat = true
					continue
				}
				break
			}
			if isFloat {
				emit(tFloat, src[i:j])
			} else {
				emit(tInt, src[i:j])
			}
			i = j
		case isAlpha(c):
			j := i
			for j < len(src) && (isAlpha(src[j]) || src[j] >= '0' && src[j] <= '9' || src[j] == '_') {
				j++
			}
			emit(tIdent, strings.ToUpper(src[i:j]))
			i = j
		default:
			two := ""
			if i+1 < len(src) {
				two = src[i : i+2]
			}
			switch {
			case two == "<=":
				emit(tLe, two)
				i += 2
			case two == ">=":
				emit(tGe, two)
				i += 2
			default:
				kind, ok := map[byte]tokKind{
					'(': tLParen, ')': tRParen, ',': tComma, '=': tAssign,
					':': tColon, '+': tPlus, '-': tMinus, '*': tStar,
					'/': tSlash, '<': tLt, '>': tGt,
				}[c]
				if !ok {
					return nil, fmt.Errorf("line %d: unexpected character %q", line, string(c))
				}
				emit(kind, string(c))
				i++
			}
		}
	}
	if len(toks) > 0 && toks[len(toks)-1].kind != tNL {
		emit(tNL, "")
	}
	emit(tEOF, "")
	return toks, nil
}

func isAlpha(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}
