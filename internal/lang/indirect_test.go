package lang

import (
	"math"
	"testing"

	"hpfdsm/internal/compiler"
	"hpfdsm/internal/config"
	"hpfdsm/internal/ir"
	"hpfdsm/internal/runtime"
)

const irregularSrc = `
PROGRAM irregular
PARAM n = 64
PARAM iters = 4
REAL v(n), x(n), perm(n)
DISTRIBUTE v(BLOCK)
DISTRIBUTE x(BLOCK)
DISTRIBUTE perm(BLOCK)

FORALL (i = 1:n)
  perm(i) = 1 + MOD(17 * i, n)   ! a scrambled permutation-ish index map
  v(i) = 0.001 * i
  x(i) = 0
END FORALL

STARTTIMER

DO t = 1, iters
  FORALL (i = 1:n)
    x(i) = 0.5 * v(perm(i)) + 0.25 * v(i)   ! indirect gather
  END FORALL
  FORALL (i = 1:n)
    v(i) = x(i)
  END FORALL
END DO
END
`

func TestIndirectParsesToIndirect(t *testing.T) {
	prog, err := Parse(irregularSrc)
	if err != nil {
		t.Fatal(err)
	}
	if !ir.HasIndirect(prog) {
		t.Fatal("indirect reference not detected")
	}
}

func irregularRef(n, iters int) []float64 {
	v := make([]float64, n+1)
	x := make([]float64, n+1)
	perm := make([]int, n+1)
	for i := 1; i <= n; i++ {
		perm[i] = 1 + int(math.Mod(float64(17*i), float64(n)))
		v[i] = 0.001 * float64(i)
	}
	for t := 0; t < iters; t++ {
		for i := 1; i <= n; i++ {
			x[i] = 0.5*v[perm[i]] + 0.25*v[i]
		}
		for i := 1; i <= n; i++ {
			v[i] = x[i]
		}
	}
	return v[1:]
}

func TestIndirectRunsOnSharedMemory(t *testing.T) {
	want := irregularRef(64, 4)
	for _, opt := range []compiler.Level{compiler.OptNone, compiler.OptBulk, compiler.OptRTElim} {
		prog, err := Parse(irregularSrc)
		if err != nil {
			t.Fatal(err)
		}
		res, err := runtime.Run(prog, runtime.Options{Machine: config.Default(), Opt: opt})
		if err != nil {
			t.Fatalf("opt %v: %v", opt, err)
		}
		got := res.ArrayData("V")
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-12 {
				t.Fatalf("opt %v: v[%d] = %v, want %v", opt, i, got[i], want[i])
			}
		}
	}
}

func TestIndirectRejectedByMessagePassing(t *testing.T) {
	prog, err := Parse(irregularSrc)
	if err != nil {
		t.Fatal(err)
	}
	_, err = runtime.Run(prog, runtime.Options{Machine: config.Default(), Backend: runtime.MessagePassing})
	if err == nil {
		t.Fatal("message-passing backend accepted an irregular program")
	}
}

func TestIndirectLHSRejected(t *testing.T) {
	src := `
PROGRAM bad
PARAM n = 8
REAL v(n), ix(n)
FORALL (i = 1:n)
  v(ix(i)) = 1
END FORALL
END
`
	if _, err := Parse(src); err == nil {
		t.Fatal("indirect LHS accepted")
	}
}

func TestNonAffineSubscriptBecomesIndirect(t *testing.T) {
	src := `
PROGRAM na
PARAM n = 6
REAL a(n, n), b(n)
DISTRIBUTE a(*, BLOCK)
FORALL (i = 1:n)
  b(i) = a(i, 1 + MOD(i * i, n))
END FORALL
END
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if !ir.HasIndirect(prog) {
		t.Fatal("non-affine subscript not classified as indirect")
	}
}
