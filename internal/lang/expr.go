package lang

import (
	"strconv"

	"hpfdsm/internal/ir"
)

// --- Affine expressions (bounds, subscripts) ---------------------------

// affExpr parses sums/differences of affine terms: INT, IDENT,
// INT '*' IDENT, IDENT '*' INT, with unary minus.
func (p *parser) affExpr() (ir.AffExpr, error) {
	e, err := p.affTerm(p.accept(tMinus))
	if err != nil {
		return ir.AffExpr{}, err
	}
	for {
		switch {
		case p.accept(tPlus):
			t, err := p.affTerm(false)
			if err != nil {
				return ir.AffExpr{}, err
			}
			e = e.Add(t)
		case p.accept(tMinus):
			t, err := p.affTerm(false)
			if err != nil {
				return ir.AffExpr{}, err
			}
			e = e.Sub(t)
		default:
			return e, nil
		}
	}
}

func (p *parser) affTerm(neg bool) (ir.AffExpr, error) {
	var e ir.AffExpr
	switch p.cur().kind {
	case tInt:
		n, _ := strconv.Atoi(p.next().text)
		e = ir.Aff(n)
		if p.accept(tStar) {
			id, err := p.expect(tIdent)
			if err != nil {
				return e, err
			}
			e = ir.V(id.text).Scale(n)
		}
	case tIdent:
		id := p.next()
		e = ir.V(id.text)
		if p.accept(tStar) {
			n, err := p.expect(tInt)
			if err != nil {
				return e, err
			}
			k, _ := strconv.Atoi(n.text)
			e = e.Scale(k)
		}
	default:
		return e, p.errf("expected an affine term, found %v %q", p.cur().kind, p.cur().text)
	}
	if neg {
		e = e.Scale(-1)
	}
	return e, nil
}

// constEval evaluates an affine expression using PARAM values only.
func (p *parser) constEval(e ir.AffExpr) (int, error) {
	v := e.Const
	for _, t := range e.Terms {
		pv, ok := p.prog.Params[t.Var]
		if !ok {
			return 0, p.errf("%s is not a PARAM; extents must be compile-time constants", t.Var)
		}
		v += t.Coef * pv
	}
	return v, nil
}

// --- Value expressions ---------------------------------------------------

var intrinsics = map[string]int{
	"SQRT": 1, "ABS": 1, "EXP": 1, "SIN": 1, "COS": 1,
	"MIN": 2, "MAX": 2, "MOD": 2,
}

var innerRedOps = map[string]ir.RedOp{
	"SUM": ir.RedSum, "SMAX": ir.RedMax, "SMIN": ir.RedMin,
}

func (p *parser) expr() (ir.Expr, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(tPlus):
			r, err := p.mulExpr()
			if err != nil {
				return nil, err
			}
			l = ir.Plus(l, r)
		case p.accept(tMinus):
			r, err := p.mulExpr()
			if err != nil {
				return nil, err
			}
			l = ir.Minus(l, r)
		default:
			return l, nil
		}
	}
}

func (p *parser) mulExpr() (ir.Expr, error) {
	l, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(tStar):
			r, err := p.unary()
			if err != nil {
				return nil, err
			}
			l = ir.Times(l, r)
		case p.accept(tSlash):
			r, err := p.unary()
			if err != nil {
				return nil, err
			}
			l = ir.Over(l, r)
		default:
			return l, nil
		}
	}
}

func (p *parser) unary() (ir.Expr, error) {
	if p.accept(tMinus) {
		e, err := p.unary()
		if err != nil {
			return nil, err
		}
		return ir.Minus(ir.N(0), e), nil
	}
	return p.atom()
}

func (p *parser) atom() (ir.Expr, error) {
	switch p.cur().kind {
	case tInt, tFloat:
		t := p.next()
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, p.errf("bad number %q", t.text)
		}
		return ir.N(v), nil
	case tLParen:
		p.pos++
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tRParen); err != nil {
			return nil, err
		}
		return e, nil
	case tIdent:
		return p.identExpr()
	default:
		return nil, p.errf("expected an expression, found %v %q", p.cur().kind, p.cur().text)
	}
}

func (p *parser) identExpr() (ir.Expr, error) {
	id := p.next().text

	// Inner reduction: SUM(i = 1:m, expr).
	if op, ok := innerRedOps[id]; ok && p.cur().kind == tLParen && p.peekInnerRed() {
		p.pos++ // '('
		ix, err := p.indexSpec()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tComma); err != nil {
			return nil, err
		}
		if p.bound[ix.Var] {
			return nil, p.errf("inner index %s shadows an enclosing loop variable", ix.Var)
		}
		p.bound[ix.Var] = true
		body, err := p.expr()
		delete(p.bound, ix.Var)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tRParen); err != nil {
			return nil, err
		}
		return ir.InnerRed{Op: op, Var: ix.Var, Lo: ix.Lo, Hi: ix.Hi, Body: body}, nil
	}

	// Intrinsic call.
	if nargs, ok := intrinsics[id]; ok && p.cur().kind == tLParen {
		p.pos++
		var args []ir.Expr
		for {
			a, err := p.expr()
			if err != nil {
				return nil, err
			}
			args = append(args, a)
			if p.accept(tRParen) {
				break
			}
			if _, err := p.expect(tComma); err != nil {
				return nil, err
			}
		}
		if len(args) != nargs {
			return nil, p.errf("%s takes %d argument(s), got %d", id, nargs, len(args))
		}
		return ir.Call{Fn: id, Args: args}, nil
	}

	// Array reference: affine subscripts give an analyzable ArrayRef;
	// anything else (an index-array subscript like v(ix(i)), or a
	// non-affine expression like a(i*j)) becomes an irregular Indirect
	// reference served by the default coherence protocol.
	if arr, ok := p.arrays[id]; ok {
		return p.arrayAccess(arr)
	}

	// Scalar, loop variable, or parameter as a value.
	switch {
	case p.scalars[id]:
		return ir.S(id), nil
	case p.bound[id]:
		return ir.Iv(id), nil
	default:
		if _, ok := p.prog.Params[id]; ok {
			return ir.Iv(id), nil
		}
	}
	return nil, p.errf("unknown identifier %q", id)
}

// peekInnerRed looks past '(' for "ident =", distinguishing an inner
// reduction from array-style usage of the SUM name.
func (p *parser) peekInnerRed() bool {
	return p.pos+2 < len(p.toks) &&
		p.toks[p.pos+1].kind == tIdent &&
		p.toks[p.pos+2].kind == tAssign
}

// arrayAccess parses arr's subscript list for an expression context,
// accepting both affine and irregular subscripts.
func (p *parser) arrayAccess(arr *ir.Array) (ir.Expr, error) {
	if _, err := p.expect(tLParen); err != nil {
		return nil, err
	}
	var affs []ir.AffExpr
	var exprs []ir.Expr
	irregular := false
	for {
		save := p.pos
		a, err := p.affExpr()
		if err == nil && (p.cur().kind == tComma || p.cur().kind == tRParen) {
			affs = append(affs, a)
			exprs = append(exprs, affToExpr(a))
		} else {
			p.pos = save
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			irregular = true
			affs = append(affs, ir.AffExpr{})
			exprs = append(exprs, e)
		}
		if p.accept(tRParen) {
			break
		}
		if _, err := p.expect(tComma); err != nil {
			return nil, err
		}
	}
	if len(affs) != arr.Rank() {
		return nil, p.errf("array %s has rank %d, subscripted with %d", arr.Name, arr.Rank(), len(affs))
	}
	if irregular {
		return ir.Indirect{Array: arr, Subs: exprs}, nil
	}
	return ir.ArrayRef{Array: arr, Subs: affs}, nil
}

// affToExpr converts an affine expression to a value expression.
func affToExpr(a ir.AffExpr) ir.Expr {
	var e ir.Expr = ir.N(float64(a.Const))
	for _, t := range a.Terms {
		term := ir.Expr(ir.Iv(t.Var))
		if t.Coef != 1 {
			term = ir.Times(ir.N(float64(t.Coef)), term)
		}
		e = ir.Plus(e, term)
	}
	return e
}

// arrayRef parses the subscript list of arr (the name is consumed).
func (p *parser) arrayRef(arr *ir.Array) (ir.ArrayRef, error) {
	if _, err := p.expect(tLParen); err != nil {
		return ir.ArrayRef{}, err
	}
	var subs []ir.AffExpr
	for {
		s, err := p.affExpr()
		if err != nil {
			return ir.ArrayRef{}, err
		}
		// Subscript variables must be loop indices or parameters.
		for _, v := range s.Vars() {
			if !p.bound[v] {
				if _, ok := p.prog.Params[v]; !ok {
					return ir.ArrayRef{}, p.errf("subscript variable %q is not a loop index or PARAM", v)
				}
			}
		}
		subs = append(subs, s)
		if p.accept(tRParen) {
			break
		}
		if _, err := p.expect(tComma); err != nil {
			return ir.ArrayRef{}, err
		}
	}
	if len(subs) != arr.Rank() {
		return ir.ArrayRef{}, p.errf("array %s has rank %d, subscripted with %d", arr.Name, arr.Rank(), len(subs))
	}
	return ir.ArrayRef{Array: arr, Subs: subs}, nil
}
