package lang

import (
	"testing"

	"hpfdsm/internal/compiler"
	"hpfdsm/internal/config"
	"hpfdsm/internal/ir"
	"hpfdsm/internal/runtime"
)

// TestOnHomeDirective steers a loop writing an undistributed-aligned
// array by a different array's home, as the paper's ON HOME permits.
func TestOnHomeDirective(t *testing.T) {
	src := `
PROGRAM onhome
PARAM n = 32
REAL a(n, n), b(n, n)
DISTRIBUTE a(*, BLOCK)
DISTRIBUTE b(*, BLOCK)
FORALL (i = 1:n, j = 1:n)
  a(i, j) = i + j
  b(i, j) = 0
END FORALL
FORALL (i = 1:n, j = 1:n-1) ON a(i, j+1)
  b(i, j) = a(i, j+1) * 2
END FORALL
END
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	var loop *ir.ParLoop
	for _, s := range prog.Body {
		if pl, ok := s.(*ir.ParLoop); ok {
			loop = pl // last one
		}
	}
	if loop.OnHome == nil || loop.OnHome.Array.Name != "A" {
		t.Fatalf("ON HOME not recorded: %+v", loop.OnHome)
	}
	res, err := runtime.Run(prog, runtime.Options{Machine: config.Default(), Opt: compiler.OptBulk})
	if err != nil {
		t.Fatal(err)
	}
	bArr := res.ArrayData("B")
	n := 32
	for j := 1; j <= n-1; j++ {
		for i := 1; i <= n; i++ {
			want := float64(i+j+1) * 2
			if got := bArr[(j-1)*n+(i-1)]; got != want {
				t.Fatalf("b(%d,%d) = %v, want %v", i, j, got, want)
			}
		}
	}
	// Under ON a(i,j+1), reading a(i,j+1) is aligned (no transfers) and
	// writing b(i,j) is a non-owner write.
	rule := res.Analysis().LoopRuleOf(loop)
	if len(rule.Reads) != 0 {
		t.Fatalf("ON HOME should make the read aligned, got %v", rule.Reads)
	}
	if len(rule.Writes) != 1 {
		t.Fatalf("expected one non-owner write rule, got %v", rule.Writes)
	}
}
