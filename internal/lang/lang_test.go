package lang

import (
	"strings"
	"testing"

	"hpfdsm/internal/compiler"
	"hpfdsm/internal/config"
	"hpfdsm/internal/distribute"
	"hpfdsm/internal/ir"
	"hpfdsm/internal/runtime"
)

const jacobiSrc = `
PROGRAM jacobi
PARAM n = 32
PARAM iters = 3
REAL a(n, n), b(n, n)
DISTRIBUTE a(*, BLOCK)
DISTRIBUTE b(*, BLOCK)

FORALL (i = 1:n, j = 1:n)
  a(i, j) = i + 3*j   ! initial values
  b(i, j) = 0
END FORALL

DO t = 1, iters
  FORALL (i = 2:n-1, j = 2:n-1)
    b(i, j) = 0.25 * (a(i-1, j) + a(i+1, j) + a(i, j-1) + a(i, j+1))
  END FORALL
  FORALL (i = 2:n-1, j = 2:n-1)
    a(i, j) = b(i, j)
  END FORALL
END DO
END
`

func TestParseJacobi(t *testing.T) {
	prog, err := Parse(jacobiSrc)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Name != "JACOBI" {
		t.Fatalf("name = %q", prog.Name)
	}
	if prog.Param("N") != 32 || prog.Param("ITERS") != 3 {
		t.Fatal("params wrong")
	}
	if len(prog.Arrays) != 2 || prog.Arrays[0].Name != "A" || prog.Arrays[0].Dist.Kind != distribute.Block {
		t.Fatalf("arrays = %v", prog.Arrays)
	}
	if len(prog.Body) != 2 {
		t.Fatalf("body stmts = %d", len(prog.Body))
	}
	init, ok := prog.Body[0].(*ir.ParLoop)
	if !ok || len(init.Body) != 2 {
		t.Fatalf("first stmt = %T", prog.Body[0])
	}
	loop, ok := prog.Body[1].(*ir.SeqLoop)
	if !ok || len(loop.Body) != 2 {
		t.Fatalf("second stmt = %T", prog.Body[1])
	}
}

func TestParsedJacobiRunsCorrectly(t *testing.T) {
	prog, err := Parse(jacobiSrc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := runtime.Run(prog, runtime.Options{Machine: config.Default(), Opt: compiler.OptBulk})
	if err != nil {
		t.Fatal(err)
	}
	// Spot check against a tiny hand evaluation: after 3 sweeps the
	// interior still equals the harmonic-free init (i + 3j is a
	// discrete harmonic function: the 4-point average reproduces it).
	a := res.ArrayData("A")
	n := 32
	for j := 2; j <= n-1; j++ {
		for i := 2; i <= n-1; i++ {
			want := float64(i) + 3*float64(j)
			if got := a[(j-1)*n+(i-1)]; got != want {
				t.Fatalf("a(%d,%d) = %v, want %v (harmonic invariance)", i, j, got, want)
			}
		}
	}
}

func TestParamOverride(t *testing.T) {
	prog, err := ParseWithOverrides(jacobiSrc, map[string]int{"N": 16})
	if err != nil {
		t.Fatal(err)
	}
	if prog.Param("N") != 16 {
		t.Fatal("override ignored")
	}
	if prog.Arrays[0].Extents[0] != 16 {
		t.Fatal("extent did not track override")
	}
}

func TestParseReductionAndControl(t *testing.T) {
	src := `
PROGRAM red
PARAM n = 16
REAL a(n)
SCALAR s, err
DISTRIBUTE a(BLOCK)
FORALL (i = 1:n)
  a(i) = i
END FORALL
DO t = 1, 50
  REDUCE (SUM, s, i = 1:n) a(i)*a(i)
  LET err = SQRT(s)
  EXITIF err > 10.0
END DO
END
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := runtime.Run(prog, runtime.Options{Machine: config.Default(), Opt: compiler.OptNone})
	if err != nil {
		t.Fatal(err)
	}
	// sum i^2, i=1..16 = 1496; sqrt = 38.7 > 10 -> exits on first pass.
	if res.Scalars["S"] != 1496 {
		t.Fatalf("s = %v", res.Scalars["S"])
	}
}

func TestParseInnerReduction(t *testing.T) {
	src := `
PROGRAM mv
PARAM n = 8
REAL a(n, n), x(n), y(n)
DISTRIBUTE a(*, BLOCK)
DISTRIBUTE x(BLOCK)
DISTRIBUTE y(BLOCK)
FORALL (i = 1:n, j = 1:n)
  a(i, j) = 1
END FORALL
FORALL (i = 1:n)
  x(i) = 2
END FORALL
FORALL (j = 1:n)
  y(j) = SUM(i = 1:n, a(i, j) * x(i))
END FORALL
END
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := runtime.Run(prog, runtime.Options{Machine: config.Default().WithNodes(4), Opt: compiler.OptBulk})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range res.ArrayData("Y") {
		if v != 16 { // 8 * 2
			t.Fatalf("y[%d] = %v, want 16", i, v)
		}
	}
}

func TestParseStride(t *testing.T) {
	src := `
PROGRAM rb
PARAM n = 8
REAL a(n, n)
DISTRIBUTE a(*, BLOCK)
FORALL (i = 1:n, j = 1:n:2)
  a(i, j) = 1
END FORALL
END
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	pl := prog.Body[0].(*ir.ParLoop)
	if pl.Indexes[1].Step != 2 {
		t.Fatalf("step = %d", pl.Indexes[1].Step)
	}
}

func TestParseCyclicAndBlockCyclic(t *testing.T) {
	src := `
PROGRAM d
PARAM n = 8
REAL a(n, n), b(n, n)
DISTRIBUTE a(*, CYCLIC)
DISTRIBUTE b(*, CYCLIC(2))
END
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Arrays[0].Dist.Kind != distribute.Cyclic {
		t.Fatal("cyclic not parsed")
	}
	if prog.Arrays[1].Dist.Kind != distribute.BlockCyclic || prog.Arrays[1].Dist.K != 2 {
		t.Fatal("cyclic(k) not parsed")
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"no program":           "PARAM n = 4\nEND\n",
		"unknown statement":    "PROGRAM p\nFROB x\nEND\n",
		"undeclared array":     "PROGRAM p\nDISTRIBUTE a(BLOCK)\nEND\n",
		"bad distribute rank":  "PROGRAM p\nPARAM n = 4\nREAL a(n)\nDISTRIBUTE a(*, BLOCK)\nEND\n",
		"distribute inner dim": "PROGRAM p\nPARAM n = 4\nREAL a(n, n)\nDISTRIBUTE a(BLOCK, *)\nEND\n",
		"subscript rank":       "PROGRAM p\nPARAM n = 4\nREAL a(n, n)\nFORALL (i = 1:n)\n a(i) = 0\nEND FORALL\nEND\n",
		"unknown ident":        "PROGRAM p\nPARAM n = 4\nREAL a(n)\nFORALL (i = 1:n)\n a(i) = zz\nEND FORALL\nEND\n",
		"missing end":          "PROGRAM p\nPARAM n = 4\n",
		"array in LET":         "PROGRAM p\nPARAM n = 4\nREAL a(n)\nSCALAR s\nLET s = a(1)\nEND\n",
		"shadowed index":       "PROGRAM p\nPARAM n = 4\nREAL a(n)\nDO i = 1, 2\nFORALL (i = 1:n)\n a(i) = 0\nEND FORALL\nEND DO\nEND\n",
		"nonconst extent":      "PROGRAM p\nREAL a(m)\nEND\n",
		"bad char":             "PROGRAM p\nPARAM n = 4 @\nEND\n",
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := Parse(src); err == nil {
				t.Errorf("accepted invalid program")
			} else if !strings.Contains(err.Error(), "line") && name != "bad char" {
				t.Errorf("error lacks line info: %v", err)
			}
		})
	}
}

func TestLexerNumbers(t *testing.T) {
	toks, err := lex("1 2.5 1.0E-6 3e4 .5")
	if err != nil {
		t.Fatal(err)
	}
	kinds := []tokKind{tInt, tFloat, tFloat, tFloat, tFloat, tNL, tEOF}
	for i, k := range kinds {
		if toks[i].kind != k {
			t.Fatalf("token %d = %v %q, want %v", i, toks[i].kind, toks[i].text, k)
		}
	}
}

func TestLexerComments(t *testing.T) {
	toks, err := lex("a = 1 ! comment with ( weird ) stuff\nb = 2")
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for _, tok := range toks {
		if tok.kind == tIdent {
			count++
		}
	}
	if count != 2 {
		t.Fatalf("identifiers = %d, want 2", count)
	}
}

func TestMoreParseErrors(t *testing.T) {
	cases := map[string]string{
		"bad reduce op":      "PROGRAM p\nPARAM n = 4\nREAL a(n)\nSCALAR s\nREDUCE (PROD, s, i = 1:n) a(i)\nEND\n",
		"reduce no scalar":   "PROGRAM p\nPARAM n = 4\nREAL a(n)\nREDUCE (SUM, s, i = 1:n) a(i)\nEND\n",
		"reduce no index":    "PROGRAM p\nPARAM n = 4\nREAL a(n)\nSCALAR s\nREDUCE (SUM, s) a(1)\nEND\n",
		"let no scalar":      "PROGRAM p\nLET x = 1\nEND\n",
		"exitif no cmp":      "PROGRAM p\nSCALAR s\nEXITIF s + 1\nEND\n",
		"exitif array":       "PROGRAM p\nPARAM n = 4\nREAL a(n)\nSCALAR s\nEXITIF a(1) < s\nEND\n",
		"bad step":           "PROGRAM p\nPARAM n = 4\nREAL a(n)\nFORALL (i = 1:n:0)\n a(i) = 0\nEND FORALL\nEND\n",
		"negative extent":    "PROGRAM p\nPARAM n = -4\nREAL a(n)\nEND\n",
		"empty forall":       "PROGRAM p\nPARAM n = 4\nFORALL (i = 1:n)\nEND FORALL\nEND\n",
		"intrinsic arity":    "PROGRAM p\nPARAM n = 4\nREAL a(n)\nFORALL (i = 1:n)\n a(i) = SQRT(1, 2)\nEND FORALL\nEND\n",
		"redeclared array":   "PROGRAM p\nPARAM n = 4\nREAL a(n)\nREAL a(n)\nEND\n",
		"inner shadows":      "PROGRAM p\nPARAM n = 4\nREAL a(n)\nFORALL (i = 1:n)\n a(i) = SUM(i = 1:n, a(i))\nEND FORALL\nEND\n",
		"on home undeclared": "PROGRAM p\nPARAM n = 4\nREAL a(n)\nFORALL (i = 1:n) ON b(i)\n a(i) = 0\nEND FORALL\nEND\n",
		"unexpected eof":     "PROGRAM p\nDO t = 1, 3\n",
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := Parse(src); err == nil {
				t.Error("invalid program accepted")
			}
		})
	}
}

func TestExitIfVariants(t *testing.T) {
	for _, cmp := range []string{"<", "<=", ">", ">="} {
		src := "PROGRAM p\nSCALAR s\nDO t = 1, 3\nLET s = s + 1\nEXITIF s " + cmp + " 2\nEND DO\nEND\n"
		prog, err := Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", cmp, err)
		}
		if _, err := runtime.Run(prog, runtime.Options{Machine: config.Default().WithNodes(2)}); err != nil {
			t.Fatalf("%s: %v", cmp, err)
		}
	}
}
