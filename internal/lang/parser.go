package lang

import (
	"fmt"
	"strconv"

	"hpfdsm/internal/distribute"
	"hpfdsm/internal/ir"
)

// Parse compiles mini-HPF source into the IR.
func Parse(src string) (*ir.Program, error) {
	return ParseWithOverrides(src, nil)
}

// ParseWithOverrides compiles source, overriding PARAM values (used to
// scale problem sizes without editing the program text).
func ParseWithOverrides(src string, overrides map[string]int) (*ir.Program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{
		toks:      toks,
		overrides: overrides,
		prog:      &ir.Program{Params: map[string]int{}},
		arrays:    map[string]*ir.Array{},
		scalars:   map[string]bool{},
		bound:     map[string]bool{},
		subs:      map[string][]ir.Stmt{},
	}
	if err := p.program(); err != nil {
		return nil, err
	}
	return p.prog, nil
}

type parser struct {
	toks      []token
	pos       int
	overrides map[string]int
	prog      *ir.Program
	arrays    map[string]*ir.Array
	scalars   map[string]bool
	bound     map[string]bool // loop variables currently in scope
	subs      map[string][]ir.Stmt
	inSub     bool
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("line %d: %s", p.cur().line, fmt.Sprintf(format, args...))
}

func (p *parser) expect(k tokKind) (token, error) {
	if p.cur().kind != k {
		return token{}, p.errf("expected %v, found %v %q", k, p.cur().kind, p.cur().text)
	}
	return p.next(), nil
}

func (p *parser) accept(k tokKind) bool {
	if p.cur().kind == k {
		p.pos++
		return true
	}
	return false
}

func (p *parser) acceptIdent(name string) bool {
	if p.cur().kind == tIdent && p.cur().text == name {
		p.pos++
		return true
	}
	return false
}

func (p *parser) eol() error {
	if p.cur().kind == tNL {
		p.pos++
		return nil
	}
	if p.cur().kind == tEOF {
		return nil
	}
	return p.errf("unexpected %v %q at end of statement", p.cur().kind, p.cur().text)
}

// --- Grammar ------------------------------------------------------------

func (p *parser) program() error {
	p.skipNLs()
	if !p.acceptIdent("PROGRAM") {
		return p.errf("program must start with PROGRAM")
	}
	name, err := p.expect(tIdent)
	if err != nil {
		return err
	}
	p.prog.Name = name.text
	if err := p.eol(); err != nil {
		return err
	}
	body, err := p.stmts("")
	if err != nil {
		return err
	}
	p.prog.Body = body
	return nil
}

func (p *parser) skipNLs() {
	for p.cur().kind == tNL {
		p.pos++
	}
}

// stmts parses statements until the matching END (END FORALL / END DO
// for a given opener; bare END for the program).
func (p *parser) stmts(opener string) ([]ir.Stmt, error) {
	var out []ir.Stmt
	for {
		p.skipNLs()
		if p.cur().kind == tEOF {
			if opener != "" {
				return nil, p.errf("missing END %s", opener)
			}
			return nil, p.errf("missing END")
		}
		if p.acceptIdent("END") {
			if opener == "" {
				if p.cur().kind == tIdent {
					return nil, p.errf("unexpected END %s", p.cur().text)
				}
				return out, p.eol()
			}
			if !p.acceptIdent(opener) {
				return nil, p.errf("expected END %s", opener)
			}
			return out, p.eol()
		}
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		if s != nil {
			out = append(out, s)
		}
	}
}

func (p *parser) statement() (ir.Stmt, error) {
	t := p.cur()
	if t.kind != tIdent {
		return nil, p.errf("expected a statement, found %v %q", t.kind, t.text)
	}
	switch t.text {
	case "PARAM":
		p.pos++
		return nil, p.param()
	case "REAL":
		p.pos++
		return nil, p.realDecl()
	case "SCALAR":
		p.pos++
		return nil, p.scalarDecl()
	case "DISTRIBUTE":
		p.pos++
		return nil, p.distributeDecl()
	case "FORALL":
		p.pos++
		return p.forall()
	case "DO":
		p.pos++
		return p.doLoop()
	case "REDUCE":
		p.pos++
		return p.reduce()
	case "LET":
		p.pos++
		return p.let()
	case "EXITIF":
		p.pos++
		return p.exitIf()
	case "STARTTIMER":
		p.pos++
		if err := p.eol(); err != nil {
			return nil, err
		}
		return &ir.StartTimer{}, nil
	case "SUB":
		p.pos++
		return nil, p.subDecl()
	case "CALL":
		p.pos++
		return p.call()
	default:
		return nil, p.errf("unknown statement %q", t.text)
	}
}

func (p *parser) param() error {
	name, err := p.expect(tIdent)
	if err != nil {
		return err
	}
	if _, err := p.expect(tAssign); err != nil {
		return err
	}
	neg := p.accept(tMinus)
	v, err := p.expect(tInt)
	if err != nil {
		return err
	}
	n, _ := strconv.Atoi(v.text)
	if neg {
		n = -n
	}
	if ov, ok := p.overrides[name.text]; ok {
		n = ov
	}
	p.prog.Params[name.text] = n
	return p.eol()
}

func (p *parser) realDecl() error {
	for {
		name, err := p.expect(tIdent)
		if err != nil {
			return err
		}
		if _, dup := p.arrays[name.text]; dup {
			return p.errf("array %s redeclared", name.text)
		}
		if _, err := p.expect(tLParen); err != nil {
			return err
		}
		var extents []int
		for {
			e, err := p.affExpr()
			if err != nil {
				return err
			}
			ev, err := p.constEval(e)
			if err != nil {
				return err
			}
			if ev < 1 {
				return p.errf("array %s has non-positive extent %d", name.text, ev)
			}
			extents = append(extents, ev)
			if p.accept(tRParen) {
				break
			}
			if _, err := p.expect(tComma); err != nil {
				return err
			}
		}
		arr := &ir.Array{Name: name.text, Extents: extents, Dist: distribute.Spec{Kind: distribute.Block}}
		p.arrays[name.text] = arr
		p.prog.Arrays = append(p.prog.Arrays, arr)
		if !p.accept(tComma) {
			break
		}
	}
	return p.eol()
}

func (p *parser) scalarDecl() error {
	for {
		name, err := p.expect(tIdent)
		if err != nil {
			return err
		}
		p.scalars[name.text] = true
		p.prog.Scalars = append(p.prog.Scalars, name.text)
		if !p.accept(tComma) {
			break
		}
	}
	return p.eol()
}

func (p *parser) distributeDecl() error {
	name, err := p.expect(tIdent)
	if err != nil {
		return err
	}
	arr, ok := p.arrays[name.text]
	if !ok {
		return p.errf("DISTRIBUTE of undeclared array %s", name.text)
	}
	if _, err := p.expect(tLParen); err != nil {
		return err
	}
	var specs []distribute.Spec
	for {
		var sp distribute.Spec
		switch {
		case p.accept(tStar):
			sp.Kind = distribute.Collapsed
		case p.acceptIdent("BLOCK"):
			sp.Kind = distribute.Block
		case p.acceptIdent("CYCLIC"):
			sp.Kind = distribute.Cyclic
			if p.accept(tLParen) {
				k, err := p.expect(tInt)
				if err != nil {
					return err
				}
				sp.Kind = distribute.BlockCyclic
				sp.K, _ = strconv.Atoi(k.text)
				if _, err := p.expect(tRParen); err != nil {
					return err
				}
			}
		default:
			return p.errf("expected *, BLOCK or CYCLIC in DISTRIBUTE")
		}
		specs = append(specs, sp)
		if p.accept(tRParen) {
			break
		}
		if _, err := p.expect(tComma); err != nil {
			return err
		}
	}
	if len(specs) != arr.Rank() {
		return p.errf("DISTRIBUTE rank %d does not match array %s rank %d", len(specs), arr.Name, arr.Rank())
	}
	for _, sp := range specs[:len(specs)-1] {
		if sp.Kind != distribute.Collapsed {
			return p.errf("only the last dimension of %s may be distributed (the paper's assumption)", arr.Name)
		}
	}
	arr.Dist = specs[len(specs)-1]
	return p.eol()
}

func (p *parser) indexSpec() (ir.Index, error) {
	name, err := p.expect(tIdent)
	if err != nil {
		return ir.Index{}, err
	}
	if _, err := p.expect(tAssign); err != nil {
		return ir.Index{}, err
	}
	lo, err := p.affExpr()
	if err != nil {
		return ir.Index{}, err
	}
	if _, err := p.expect(tColon); err != nil {
		return ir.Index{}, err
	}
	hi, err := p.affExpr()
	if err != nil {
		return ir.Index{}, err
	}
	ix := ir.Index{Var: name.text, Lo: lo, Hi: hi}
	if p.accept(tColon) {
		st, err := p.expect(tInt)
		if err != nil {
			return ir.Index{}, err
		}
		ix.Step, _ = strconv.Atoi(st.text)
		if ix.Step < 1 {
			return ir.Index{}, p.errf("step must be positive")
		}
	}
	return ix, nil
}

func (p *parser) forall() (ir.Stmt, error) {
	line := p.cur().line
	if _, err := p.expect(tLParen); err != nil {
		return nil, err
	}
	var idxs []ir.Index
	for {
		ix, err := p.indexSpec()
		if err != nil {
			return nil, err
		}
		if p.bound[ix.Var] {
			return nil, p.errf("index %s shadows an enclosing loop variable", ix.Var)
		}
		idxs = append(idxs, ix)
		if p.accept(tRParen) {
			break
		}
		if _, err := p.expect(tComma); err != nil {
			return nil, err
		}
	}
	for _, ix := range idxs {
		p.bound[ix.Var] = true
	}
	defer func() {
		for _, ix := range idxs {
			delete(p.bound, ix.Var)
		}
	}()

	pl := &ir.ParLoop{Indexes: idxs, Label: fmt.Sprintf("forall@%d", line)}

	// Optional ON HOME directive: FORALL (...) ON a(i, j) steers the
	// computation distribution by the named reference instead of the
	// first assignment's left-hand side (the paper: "The compiler can
	// use the programmer-supplied INDEPENDENT directive to divide a
	// loop in any fashion ... or according to an ON HOME directive").
	if p.acceptIdent("ON") {
		name, err := p.expect(tIdent)
		if err != nil {
			return nil, err
		}
		arr, ok := p.arrays[name.text]
		if !ok {
			return nil, p.errf("ON HOME references undeclared array %s", name.text)
		}
		ref, err := p.arrayRef(arr)
		if err != nil {
			return nil, err
		}
		pl.OnHome = &ref
	}
	if err := p.eol(); err != nil {
		return nil, err
	}
	for {
		p.skipNLs()
		if p.acceptIdent("END") {
			if !p.acceptIdent("FORALL") {
				return nil, p.errf("expected END FORALL")
			}
			if err := p.eol(); err != nil {
				return nil, err
			}
			break
		}
		as, err := p.assignment()
		if err != nil {
			return nil, err
		}
		pl.Body = append(pl.Body, as)
	}
	if len(pl.Body) == 0 {
		return nil, p.errf("FORALL at line %d has no assignments", line)
	}
	return pl, nil
}

func (p *parser) assignment() (*ir.Assign, error) {
	name, err := p.expect(tIdent)
	if err != nil {
		return nil, err
	}
	arr, ok := p.arrays[name.text]
	if !ok {
		return nil, p.errf("assignment to undeclared array %s", name.text)
	}
	lhs, err := p.arrayRef(arr)
	if err != nil {
		return nil, fmt.Errorf("%w (note: indirect subscripts are not allowed on the left-hand side)", err)
	}
	if _, err := p.expect(tAssign); err != nil {
		return nil, err
	}
	rhs, err := p.expr()
	if err != nil {
		return nil, err
	}
	if err := p.eol(); err != nil {
		return nil, err
	}
	return &ir.Assign{LHS: lhs, RHS: rhs}, nil
}

func (p *parser) doLoop() (ir.Stmt, error) {
	name, err := p.expect(tIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tAssign); err != nil {
		return nil, err
	}
	lo, err := p.affExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tComma); err != nil {
		return nil, err
	}
	hi, err := p.affExpr()
	if err != nil {
		return nil, err
	}
	if err := p.eol(); err != nil {
		return nil, err
	}
	if p.bound[name.text] {
		return nil, p.errf("DO index %s shadows an enclosing loop variable", name.text)
	}
	p.bound[name.text] = true
	defer delete(p.bound, name.text)
	body, err := p.stmts("DO")
	if err != nil {
		return nil, err
	}
	return &ir.SeqLoop{Var: name.text, Lo: lo, Hi: hi, Body: body}, nil
}

func (p *parser) reduce() (ir.Stmt, error) {
	line := p.cur().line
	if _, err := p.expect(tLParen); err != nil {
		return nil, err
	}
	opTok, err := p.expect(tIdent)
	if err != nil {
		return nil, err
	}
	op, ok := map[string]ir.RedOp{"SUM": ir.RedSum, "MAX": ir.RedMax, "MIN": ir.RedMin}[opTok.text]
	if !ok {
		return nil, p.errf("unknown reduction %s", opTok.text)
	}
	if _, err := p.expect(tComma); err != nil {
		return nil, err
	}
	target, err := p.expect(tIdent)
	if err != nil {
		return nil, err
	}
	if !p.scalars[target.text] {
		return nil, p.errf("reduction target %s is not a declared SCALAR", target.text)
	}
	var idxs []ir.Index
	for p.accept(tComma) {
		ix, err := p.indexSpec()
		if err != nil {
			return nil, err
		}
		idxs = append(idxs, ix)
	}
	if _, err := p.expect(tRParen); err != nil {
		return nil, err
	}
	if len(idxs) == 0 {
		return nil, p.errf("REDUCE needs at least one index")
	}
	for _, ix := range idxs {
		p.bound[ix.Var] = true
	}
	defer func() {
		for _, ix := range idxs {
			delete(p.bound, ix.Var)
		}
	}()
	expr, err := p.expr()
	if err != nil {
		return nil, err
	}
	if err := p.eol(); err != nil {
		return nil, err
	}
	return &ir.Reduce{Op: op, Target: target.text, Indexes: idxs, Expr: expr,
		Label: fmt.Sprintf("reduce@%d", line)}, nil
}

func (p *parser) let() (ir.Stmt, error) {
	name, err := p.expect(tIdent)
	if err != nil {
		return nil, err
	}
	if !p.scalars[name.text] {
		return nil, p.errf("LET target %s is not a declared SCALAR", name.text)
	}
	if _, err := p.expect(tAssign); err != nil {
		return nil, err
	}
	rhs, err := p.expr()
	if err != nil {
		return nil, err
	}
	if len(ir.Refs(rhs)) > 0 {
		return nil, p.errf("LET expressions may not reference arrays")
	}
	if err := p.eol(); err != nil {
		return nil, err
	}
	return &ir.ScalarAssign{Name: name.text, RHS: rhs}, nil
}

// subDecl parses SUB name ... END SUB and records its body. Calls are
// expanded inline — parse-time inlining stands in for the
// interprocedural analysis the paper leaves to future work, giving the
// communication analysis whole-program visibility through subroutine
// boundaries.
func (p *parser) subDecl() error {
	if p.inSub {
		return p.errf("nested SUB definitions are not supported")
	}
	name, err := p.expect(tIdent)
	if err != nil {
		return err
	}
	if _, dup := p.subs[name.text]; dup {
		return p.errf("subroutine %s redefined", name.text)
	}
	if err := p.eol(); err != nil {
		return err
	}
	p.inSub = true
	body, err := p.stmts("SUB")
	p.inSub = false
	if err != nil {
		return err
	}
	p.subs[name.text] = body
	return nil
}

// call expands a subroutine inline. A CallMarker statement wrapping the
// body would also work; sharing the statement pointers lets repeated
// calls share analysis rules and memoized schedules.
func (p *parser) call() (ir.Stmt, error) {
	name, err := p.expect(tIdent)
	if err != nil {
		return nil, err
	}
	body, ok := p.subs[name.text]
	if !ok {
		return nil, p.errf("CALL of undefined subroutine %s (define SUB %s before its first call)", name.text, name.text)
	}
	if err := p.eol(); err != nil {
		return nil, err
	}
	if len(body) == 1 {
		return body[0], nil
	}
	return &ir.Block{Body: body}, nil
}

func (p *parser) exitIf() (ir.Stmt, error) {
	l, err := p.expr()
	if err != nil {
		return nil, err
	}
	var op ir.CmpOp
	switch p.cur().kind {
	case tLt:
		op = ir.Lt
	case tLe:
		op = ir.Le
	case tGt:
		op = ir.Gt
	case tGe:
		op = ir.Ge
	default:
		return nil, p.errf("expected a comparison in EXITIF")
	}
	p.pos++
	r, err := p.expr()
	if err != nil {
		return nil, err
	}
	if len(ir.Refs(l))+len(ir.Refs(r)) > 0 {
		return nil, p.errf("EXITIF conditions may not reference arrays")
	}
	if err := p.eol(); err != nil {
		return nil, err
	}
	return &ir.ExitIf{L: l, Op: op, R: r}, nil
}
