package lang_test

import (
	"strings"
	"testing"

	"hpfdsm/internal/apps"
	"hpfdsm/internal/compiler"
	"hpfdsm/internal/config"
	"hpfdsm/internal/lang"
	"hpfdsm/internal/runtime"
)

// TestPrintParseRoundTripApps round-trips every application through
// Print and re-parses the result; the reprinted program must run to
// the same answers as the original (a strong semantic round-trip
// check over the full language surface the apps use).
func TestPrintParseRoundTripApps(t *testing.T) {
	suite := append(apps.All(), apps.Irregular())
	for _, a := range suite {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			orig, err := a.Program(a.ScaledParams)
			if err != nil {
				t.Fatal(err)
			}
			text := lang.Print(orig)
			re, err := lang.Parse(text)
			if err != nil {
				t.Fatalf("reprint does not parse: %v\n%s", err, text)
			}
			orig2, err := a.Program(a.ScaledParams)
			if err != nil {
				t.Fatal(err)
			}
			r1, err := runtime.Run(orig2, runtime.Options{Machine: config.Default().WithNodes(2), Opt: compiler.OptBulk})
			if err != nil {
				t.Fatal(err)
			}
			r2, err := runtime.Run(re, runtime.Options{Machine: config.Default().WithNodes(2), Opt: compiler.OptBulk})
			if err != nil {
				t.Fatalf("reprinted program fails to run: %v", err)
			}
			for _, name := range a.CheckArrays {
				w, g := r1.ArrayData(name), r2.ArrayData(name)
				for k := range w {
					if w[k] != g[k] {
						t.Fatalf("round trip diverges: %s[%d] = %v vs %v", name, k, g[k], w[k])
					}
				}
			}
		})
	}
}

func TestPrintContainsDirectives(t *testing.T) {
	a, _ := apps.ByName("lu")
	prog, err := a.Program(a.ScaledParams)
	if err != nil {
		t.Fatal(err)
	}
	text := lang.Print(prog)
	for _, want := range []string{"PROGRAM lu", "DISTRIBUTE a(*, CYCLIC)", "STARTTIMER", "END DO"} {
		if !strings.Contains(text, want) {
			t.Fatalf("printed source missing %q:\n%s", want, text)
		}
	}
}

func TestPrintOnHomeAndStride(t *testing.T) {
	src := `
PROGRAM p
PARAM n = 16
REAL a(n, n), b(n, n)
DISTRIBUTE a(*, BLOCK)
DISTRIBUTE b(*, BLOCK)
FORALL (i = 1:n, j = 1:n-1:2) ON a(i, j+1)
  b(i, j) = a(i, j+1)
END FORALL
END
`
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	text := lang.Print(prog)
	if !strings.Contains(text, "ON a(i, j+1)") || !strings.Contains(text, ":2)") {
		t.Fatalf("printed source missing directives:\n%s", text)
	}
	if _, err := lang.Parse(text); err != nil {
		t.Fatalf("reprint does not parse: %v\n%s", err, text)
	}
}
