package lang

import (
	"strings"
	"testing"

	"hpfdsm/internal/compiler"
	"hpfdsm/internal/config"
	"hpfdsm/internal/ir"
	"hpfdsm/internal/runtime"
)

const subSrc = `
PROGRAM subs
PARAM n = 32
PARAM iters = 3
REAL a(n, n), b(n, n)
DISTRIBUTE a(*, BLOCK)
DISTRIBUTE b(*, BLOCK)

SUB sweep
  FORALL (i = 2:n-1, j = 2:n-1)
    b(i, j) = 0.25 * (a(i-1, j) + a(i+1, j) + a(i, j-1) + a(i, j+1))
  END FORALL
END SUB

SUB copyback
  FORALL (i = 2:n-1, j = 2:n-1)
    a(i, j) = b(i, j)
  END FORALL
END SUB

FORALL (i = 1:n, j = 1:n)
  a(i, j) = i + 3*j
  b(i, j) = 0
END FORALL

DO t = 1, iters
  CALL sweep
  CALL copyback
END DO
END
`

func TestSubroutineInlining(t *testing.T) {
	prog, err := Parse(subSrc)
	if err != nil {
		t.Fatal(err)
	}
	// The DO body holds the two inlined loops.
	var do *ir.SeqLoop
	for _, s := range prog.Body {
		if sl, ok := s.(*ir.SeqLoop); ok {
			do = sl
		}
	}
	if do == nil || len(do.Body) != 2 {
		t.Fatalf("DO body = %v", do)
	}
	if _, ok := do.Body[0].(*ir.ParLoop); !ok {
		t.Fatalf("CALL did not inline a single-statement sub: %T", do.Body[0])
	}
}

func TestSubroutineRunsCorrectly(t *testing.T) {
	prog, err := Parse(subSrc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := runtime.Run(prog, runtime.Options{Machine: config.Default(), Opt: compiler.OptRTElim})
	if err != nil {
		t.Fatal(err)
	}
	// i + 3j is harmonic: invariant under the 4-point average.
	a := res.ArrayData("A")
	n := 32
	for j := 2; j <= n-1; j++ {
		for i := 2; i <= n-1; i++ {
			if got, want := a[(j-1)*n+(i-1)], float64(i)+3*float64(j); got != want {
				t.Fatalf("a(%d,%d) = %v, want %v", i, j, got, want)
			}
		}
	}
}

func TestSubroutineCalledTwice(t *testing.T) {
	src := strings.Replace(subSrc, "CALL sweep\n  CALL copyback", "CALL sweep\n  CALL copyback\n  CALL sweep\n  CALL copyback", 1)
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := runtime.Run(prog, runtime.Options{Machine: config.Default(), Opt: compiler.OptPRE})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.ArrayData("A")[(5-1)*32+(5-1)]; got != 5+3*5 {
		t.Fatalf("value after double call = %v", got)
	}
}

func TestSubroutineMultiStatementBlock(t *testing.T) {
	src := `
PROGRAM multi
PARAM n = 16
REAL a(n)
SCALAR s
DISTRIBUTE a(BLOCK)
SUB work
  FORALL (i = 1:n)
    a(i) = i
  END FORALL
  REDUCE (SUM, s, i = 1:n) a(i)
END SUB
CALL work
END
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := prog.Body[0].(*ir.Block); !ok {
		t.Fatalf("multi-statement CALL should produce a Block, got %T", prog.Body[0])
	}
	res, err := runtime.Run(prog, runtime.Options{Machine: config.Default(), Opt: compiler.OptBulk})
	if err != nil {
		t.Fatal(err)
	}
	if res.Scalars["S"] != 136 {
		t.Fatalf("s = %v", res.Scalars["S"])
	}
}

func TestSubroutineErrors(t *testing.T) {
	cases := map[string]string{
		"call before define": "PROGRAM p\nCALL foo\nEND\n",
		"redefined":          "PROGRAM p\nSUB f\nEND SUB\nSUB f\nEND SUB\nEND\n",
		"nested":             "PROGRAM p\nSUB f\nSUB g\nEND SUB\nEND SUB\nEND\n",
		"unclosed":           "PROGRAM p\nSUB f\n",
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := Parse(src); err == nil {
				t.Error("invalid program accepted")
			}
		})
	}
}
