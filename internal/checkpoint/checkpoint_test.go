package checkpoint

import (
	"bytes"
	"reflect"
	"testing"

	"hpfdsm/internal/stats"
)

// sample builds a snapshot exercising every field, including empty and
// nil slices (which must round-trip as empty).
func sample() *Snapshot {
	st := stats.Node{ReadMisses: 7, MsgsSent: 99, BarrierTime: 1234}
	st.MissLatency[3] = 17
	return &Snapshot{
		Epoch:      42,
		SimTime:    1_000_000,
		TimerStart: 250_000,
		ReduceGen:  3,
		Journal:    []float64{1.5, -2.25, 0},
		Nodes: []NodeState{
			{
				Tags:       []byte{0, 1, 2, 1},
				Dirty:      []uint16{0, 0xffff, 0x8001, 0},
				Mapped:     []byte{1, 0},
				Blocks:     []BlockImage{{Block: 1, Data: []byte{9, 8, 7, 6}}},
				Dir:        []DirEntry{{Block: 0, Sharers: []uint64{0b1010}, Writers: []uint64{0b0100, 1}, Stale: []uint64{0b0001}}},
				IWDone:     []IWKey{{A: 3, B: 5}},
				CCFrames:   []byte{0, 1, 0, 0},
				CCTouched:  []byte{0, 0, 1, 0},
				SCHold:     []byte{1, 0, 0, 0},
				CCRecv:     12,
				CCExpected: 12,
				Stats:      st,
			},
			{
				Tags:   []byte{1, 1, 0, 0},
				Dirty:  []uint16{0, 0, 0, 0},
				Mapped: []byte{1, 1},
			},
		},
	}
}

func TestCodecRoundTrip(t *testing.T) {
	want := sample()
	blob := Encode(want)
	got, err := Decode(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(normalize(got), normalize(want)) {
		t.Fatalf("round trip mismatch:\ngot  %+v\nwant %+v", got, want)
	}
}

// normalize maps nil slices to empty ones: the codec cannot distinguish
// them and the consumers never do either.
func normalize(s *Snapshot) *Snapshot {
	c := *s
	if c.Journal == nil {
		c.Journal = []float64{}
	}
	c.Nodes = append([]NodeState(nil), s.Nodes...)
	for i := range c.Nodes {
		n := &c.Nodes[i]
		if n.Tags == nil {
			n.Tags = []byte{}
		}
		if n.Dirty == nil {
			n.Dirty = []uint16{}
		}
		if n.Mapped == nil {
			n.Mapped = []byte{}
		}
		if n.Blocks == nil {
			n.Blocks = []BlockImage{}
		}
		if n.Dir == nil {
			n.Dir = []DirEntry{}
		}
		if n.IWDone == nil {
			n.IWDone = []IWKey{}
		}
		if n.CCFrames == nil {
			n.CCFrames = []byte{}
		}
		if n.CCTouched == nil {
			n.CCTouched = []byte{}
		}
		if n.SCHold == nil {
			n.SCHold = []byte{}
		}
	}
	return &c
}

func TestCodecRejectsCorruption(t *testing.T) {
	blob := Encode(sample())
	// Flip every byte in turn: either the CRC, the magic, the version,
	// or the structural validation must reject it. Nothing may panic.
	for i := range blob {
		mut := append([]byte(nil), blob...)
		mut[i] ^= 0x40
		if _, err := Decode(mut); err == nil {
			t.Fatalf("byte %d corrupted yet Decode succeeded", i)
		}
	}
	// Truncations at every length must fail cleanly too.
	for n := 0; n < len(blob); n++ {
		if _, err := Decode(blob[:n]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
	// Trailing garbage is not a checkpoint either (CRC covers only the
	// framed payload, so this guards the exact-length check).
	if _, err := Decode(append(append([]byte(nil), blob...), 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

func TestCodecDeterministic(t *testing.T) {
	a, b := Encode(sample()), Encode(sample())
	if !bytes.Equal(a, b) {
		t.Fatal("Encode is not deterministic for identical snapshots")
	}
}

// FuzzCheckpointCodec feeds Decode arbitrary bytes (it must reject or
// parse, never panic) and round-trips whatever parses: a blob Decode
// accepts must re-encode to the identical blob, or the recovery path
// could silently restore a different machine than was captured.
func FuzzCheckpointCodec(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("HPFCKPT1"))
	f.Add(Encode(sample()))
	f.Add(Encode(&Snapshot{}))
	f.Add(Encode(&Snapshot{Epoch: 1, Nodes: make([]NodeState, 3)}))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Decode(data)
		if err != nil {
			return
		}
		re := Encode(s)
		if !bytes.Equal(re, data) {
			t.Fatalf("accepted blob is not canonical: re-encode differs (%d vs %d bytes)", len(re), len(data))
		}
		s2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-encoded blob rejected: %v", err)
		}
		if !reflect.DeepEqual(s, s2) {
			t.Fatal("decode/encode/decode not a fixed point")
		}
	})
}
