// Package checkpoint defines the barrier-consistent recovery snapshot
// and its wire codec. A snapshot captures the protocol-visible state of
// the whole cluster at a provably quiescent synchronization epoch: with
// no messages in flight, no handlers queued, no deferred protocol work,
// and no open coalescer buffers, the union of per-node memory images,
// access tags, dirty masks, directory entries, and counters IS the
// machine — restoring it on a fresh cluster resumes the run as if the
// epoch had just completed.
//
// The codec is self-describing and paranoid: a fixed magic, an explicit
// version, and a trailing CRC32 guard the payload, and Decode never
// panics on corrupt input — every length is bounds-checked against the
// remaining bytes before allocation (the fuzz target leans on this).
package checkpoint

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"hpfdsm/internal/stats"
)

// Magic opens every encoded snapshot.
const Magic = "HPFCKPT1"

// Version is the current codec version. Version 2 widened the
// directory sharer/writer/stale sets from one uint64 mask each to
// length-prefixed word vectors, lifting the 64-node cluster cap.
const Version = 2

// Snapshot is the cluster-wide recovery image for one epoch.
type Snapshot struct {
	Epoch      int64 // completed synchronization epochs at capture
	SimTime    int64 // simulated time of the capture instant (ns)
	TimerStart int64 // measured-region start (0 if timing not started)
	ReduceGen  int64 // completed reduction generations
	Journal    []float64
	Nodes      []NodeState
}

// NodeState is one node's protocol-visible state.
type NodeState struct {
	Tags   []byte   // memory access tag per block
	Dirty  []uint16 // dirty-word mask per block
	Mapped []byte   // 0/1 per page
	Blocks []BlockImage

	Dir    []DirEntry // home-side directory entries, ascending block
	IWDone []IWKey    // completed install-window keys, sorted

	CCFrames  []byte // compiler-directed transfer frames, 0/1 per block
	CCTouched []byte
	SCHold    []byte

	CCRecv     int64 // cumulative compiler-directed blocks received
	CCExpected int64 // cumulative blocks announced by ExpectBlocks

	Stats stats.Node
}

// BlockImage is one block's data worth persisting (home copy or a
// cached copy with a live tag or dirty words).
type BlockImage struct {
	Block int32
	Data  []byte
}

// DirEntry is one home-side directory entry. The three node sets are
// multi-word bitmaps (ceil(Nodes/64) words) so clusters past 64 nodes
// checkpoint exactly like small ones.
type DirEntry struct {
	Block   int32
	Sharers []uint64
	Writers []uint64
	Stale   []uint64
}

// IWKey is one completed install-window key (block, writer).
type IWKey struct {
	A, B int32
}

// statsSize is the fixed encoded size of stats.Node (flat integers).
var statsSize = binary.Size(stats.Node{})

// Encode serializes the snapshot: magic, version, payload, CRC32
// (IEEE) of everything preceding the checksum.
func Encode(s *Snapshot) []byte {
	w := &writer{}
	w.raw([]byte(Magic))
	w.u32(Version)
	w.i64(s.Epoch)
	w.i64(s.SimTime)
	w.i64(s.TimerStart)
	w.i64(s.ReduceGen)
	w.u32(uint32(len(s.Journal)))
	for _, v := range s.Journal {
		w.u64(math.Float64bits(v))
	}
	w.u32(uint32(len(s.Nodes)))
	for i := range s.Nodes {
		encodeNode(w, &s.Nodes[i])
	}
	w.u32(crc32.ChecksumIEEE(w.buf))
	return w.buf
}

func encodeNode(w *writer, n *NodeState) {
	w.blob(n.Tags)
	w.u32(uint32(len(n.Dirty)))
	for _, m := range n.Dirty {
		w.u16(m)
	}
	w.blob(n.Mapped)
	w.u32(uint32(len(n.Blocks)))
	for _, b := range n.Blocks {
		w.u32(uint32(b.Block))
		w.blob(b.Data)
	}
	w.u32(uint32(len(n.Dir)))
	for _, d := range n.Dir {
		w.u32(uint32(d.Block))
		w.words(d.Sharers)
		w.words(d.Writers)
		w.words(d.Stale)
	}
	w.u32(uint32(len(n.IWDone)))
	for _, k := range n.IWDone {
		w.u32(uint32(k.A))
		w.u32(uint32(k.B))
	}
	w.blob(n.CCFrames)
	w.blob(n.CCTouched)
	w.blob(n.SCHold)
	w.i64(n.CCRecv)
	w.i64(n.CCExpected)
	var sb bytes.Buffer
	if err := binary.Write(&sb, binary.LittleEndian, &n.Stats); err != nil {
		panic(fmt.Sprintf("checkpoint: stats encode: %v", err))
	}
	w.blob(sb.Bytes())
}

// Decode parses and validates an encoded snapshot. It never panics on
// malformed input: framing, version, checksum, and every interior
// length are verified before use.
func Decode(data []byte) (*Snapshot, error) {
	if len(data) < len(Magic)+4+4 {
		return nil, errors.New("checkpoint: truncated header")
	}
	if string(data[:len(Magic)]) != Magic {
		return nil, errors.New("checkpoint: bad magic")
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(tail) {
		return nil, errors.New("checkpoint: checksum mismatch")
	}
	r := &reader{data: body, off: len(Magic)}
	if v := r.u32(); r.err == nil && v != Version {
		return nil, fmt.Errorf("checkpoint: unsupported version %d", v)
	}
	s := &Snapshot{
		Epoch:      r.i64(),
		SimTime:    r.i64(),
		TimerStart: r.i64(),
		ReduceGen:  r.i64(),
	}
	nj := r.count(8)
	for i := 0; i < nj && r.err == nil; i++ {
		s.Journal = append(s.Journal, math.Float64frombits(r.u64()))
	}
	nn := r.count(1)
	for i := 0; i < nn && r.err == nil; i++ {
		n, err := decodeNode(r)
		if err != nil {
			return nil, err
		}
		s.Nodes = append(s.Nodes, n)
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(body) {
		return nil, fmt.Errorf("checkpoint: %d trailing bytes", len(body)-r.off)
	}
	return s, nil
}

func decodeNode(r *reader) (NodeState, error) {
	var n NodeState
	n.Tags = r.blob()
	nd := r.count(2)
	for i := 0; i < nd && r.err == nil; i++ {
		n.Dirty = append(n.Dirty, r.u16())
	}
	n.Mapped = r.blob()
	nb := r.count(8)
	for i := 0; i < nb && r.err == nil; i++ {
		n.Blocks = append(n.Blocks, BlockImage{Block: int32(r.u32()), Data: r.blob()})
	}
	ne := r.count(16) // block + three (possibly empty) word vectors
	for i := 0; i < ne && r.err == nil; i++ {
		n.Dir = append(n.Dir, DirEntry{
			Block: int32(r.u32()), Sharers: r.words(), Writers: r.words(), Stale: r.words(),
		})
	}
	nk := r.count(8)
	for i := 0; i < nk && r.err == nil; i++ {
		n.IWDone = append(n.IWDone, IWKey{A: int32(r.u32()), B: int32(r.u32())})
	}
	n.CCFrames = r.blob()
	n.CCTouched = r.blob()
	n.SCHold = r.blob()
	n.CCRecv = r.i64()
	n.CCExpected = r.i64()
	sb := r.blob()
	if r.err != nil {
		return n, r.err
	}
	if len(sb) != statsSize {
		return n, fmt.Errorf("checkpoint: stats record is %d bytes, want %d", len(sb), statsSize)
	}
	if err := binary.Read(bytes.NewReader(sb), binary.LittleEndian, &n.Stats); err != nil {
		return n, fmt.Errorf("checkpoint: stats decode: %v", err)
	}
	return n, nil
}

// --- primitive codec --------------------------------------------------

type writer struct{ buf []byte }

func (w *writer) raw(b []byte) { w.buf = append(w.buf, b...) }
func (w *writer) u16(v uint16) { w.buf = binary.LittleEndian.AppendUint16(w.buf, v) }
func (w *writer) u32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }
func (w *writer) u64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }
func (w *writer) i64(v int64)  { w.u64(uint64(v)) }

// blob writes a length-prefixed byte slice.
func (w *writer) blob(b []byte) {
	w.u32(uint32(len(b)))
	w.raw(b)
}

// words writes a length-prefixed uint64 vector (a node-set bitmap).
func (w *writer) words(v []uint64) {
	w.u32(uint32(len(v)))
	for _, x := range v {
		w.u64(x)
	}
}

type reader struct {
	data []byte
	off  int
	err  error
}

func (r *reader) need(n int) bool {
	if r.err != nil {
		return false
	}
	if n < 0 || r.off+n > len(r.data) {
		r.err = errors.New("checkpoint: truncated payload")
		return false
	}
	return true
}

func (r *reader) u16() uint16 {
	if !r.need(2) {
		return 0
	}
	v := binary.LittleEndian.Uint16(r.data[r.off:])
	r.off += 2
	return v
}

func (r *reader) u32() uint32 {
	if !r.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(r.data[r.off:])
	r.off += 4
	return v
}

func (r *reader) u64() uint64 {
	if !r.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(r.data[r.off:])
	r.off += 8
	return v
}

func (r *reader) i64() int64 { return int64(r.u64()) }

// count reads an element count and rejects values whose minimum encoded
// size (elemSize bytes each) cannot fit in the remaining payload — a
// corrupted length cannot force a huge allocation.
func (r *reader) count(elemSize int) int {
	n := int(r.u32())
	if r.err != nil {
		return 0
	}
	if n < 0 || n*elemSize > len(r.data)-r.off {
		r.err = fmt.Errorf("checkpoint: implausible count %d", n)
		return 0
	}
	return n
}

// words reads a length-prefixed uint64 vector.
func (r *reader) words() []uint64 {
	n := r.count(8)
	if r.err != nil || n == 0 {
		return nil
	}
	v := make([]uint64, n)
	for i := range v {
		v[i] = r.u64()
	}
	return v
}

// blob reads a length-prefixed byte slice (copied out of the input).
func (r *reader) blob() []byte {
	n := r.count(1)
	if r.err != nil || n == 0 {
		return nil
	}
	b := make([]byte, n)
	copy(b, r.data[r.off:])
	r.off += n
	return b
}
