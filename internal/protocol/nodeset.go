package protocol

import mbits "math/bits"

// nodeset is a multi-word bitmap over node ids. The directory's
// sharer/writer/stale sets were single uint64 masks — the historic
// 64-node cap — and are now sized to the cluster, so the same
// directory scales to the tree topology's 1024-node runs. A nil
// nodeset reads as empty (the invariant auditor's "no entry" case).
type nodeset []uint64

// nsWords returns how many words a cluster of n nodes needs.
func nsWords(n int) int { return (n + 63) / 64 }

// newNodesets allocates the three per-entry sets from one backing
// array (sharers, writers, stale).
func newNodesets(n int) (sharers, writers, stale nodeset) {
	w := nsWords(n)
	back := make(nodeset, 3*w)
	return back[:w:w], back[w : 2*w : 2*w], back[2*w:]
}

// has reports membership; out-of-range ids (including any id against a
// nil set) are simply absent.
func (s nodeset) has(i int) bool {
	w := i >> 6
	return w < len(s) && s[w]&(1<<uint(i&63)) != 0
}

// set adds i. The set must have been sized to the cluster.
func (s nodeset) set(i int) { s[i>>6] |= 1 << uint(i&63) }

// clear removes i.
func (s nodeset) clear(i int) {
	if w := i >> 6; w < len(s) {
		s[w] &^= 1 << uint(i&63)
	}
}

// clearAll empties the set in place.
func (s nodeset) clearAll() {
	for w := range s {
		s[w] = 0
	}
}

// count returns the population.
func (s nodeset) count() int {
	c := 0
	for _, w := range s {
		c += mbits.OnesCount64(w)
	}
	return c
}

// any reports whether the set is non-empty.
func (s nodeset) any() bool {
	for _, w := range s {
		if w != 0 {
			return true
		}
	}
	return false
}

// next returns the lowest member >= i, or -1 when none remains —
// alloc-free member iteration that replaces the old dense 0..N scans:
//
//	for w := set.next(0); w >= 0; w = set.next(w + 1) { ... }
//
// Mutating the set mid-iteration is safe; next re-reads the words.
func (s nodeset) next(i int) int {
	if i < 0 {
		i = 0
	}
	w := i >> 6
	if w >= len(s) {
		return -1
	}
	if rest := s[w] >> uint(i&63); rest != 0 {
		return i + mbits.TrailingZeros64(rest)
	}
	for w++; w < len(s); w++ {
		if s[w] != 0 {
			return w<<6 + mbits.TrailingZeros64(s[w])
		}
	}
	return -1
}

// words exposes the raw backing for the checkpoint codec.
func (s nodeset) words() []uint64 { return s }

// loadWords copies encoded words into a sized set (extra encoded words
// beyond the cluster's width are a snapshot/config mismatch handled by
// the caller; missing words stay zero).
func (s nodeset) loadWords(w []uint64) {
	copy(s, w)
}
