// Package protocol implements coherence for the fine-grain DSM.
//
// Two layers are provided:
//
//   - The default protocol: a directory-based, eager-invalidate,
//     multiple-writer release-consistency protocol equivalent to the
//     paper's Figure 1(a). Every block has a home node (its page's
//     home) whose directory tracks reader and writer sets. A remote
//     read of a block held exclusively costs four messages
//     (read-request, put-data-request, put-data-response,
//     read-response); gaining write ownership costs four more
//     (write-request, invalidation, acknowledgement, write-grant).
//     Upgrades from readonly hide their latency: the writer continues
//     immediately and the grant is collected at the next
//     synchronization point.
//
//   - The compiler-directed extensions of Section 4.2 (see
//     extensions.go): shmem_limits, mk_writable, implicit_writable,
//     send/ready_to_recv, implicit_invalidate, and the non-owner-write
//     flush — the contract that lets the compiler bypass the default
//     protocol on blocks it can prove are involved in a statically
//     known producer-consumer transfer.
package protocol

import (
	"fmt"

	"hpfdsm/internal/config"
	"hpfdsm/internal/memory"
	"hpfdsm/internal/network"
	"hpfdsm/internal/sim"
	"hpfdsm/internal/tempest"
	"hpfdsm/internal/topo"
	"hpfdsm/internal/trace"
)

// Message kinds of the default protocol (Figure 1a) and the
// compiler-directed extensions.
const (
	KReadReq network.Kind = 1 + iota
	KReadResp
	KWriteReq
	KWriteResp
	KUpgradeReq
	KWriteGrant
	KPutDataReq
	KPutDataResp
	KInval
	KInvalAck

	KMkWritableReq
	KMkWritableData
	KMkWritableAck
	KCCData
	KCCFlush
	KCCFlushDir

	// KCoalesced is a carrier: one vectored wire message holding many
	// protocol messages as segments (the NIC-level coalescing
	// scheduler's gather buffer). One header, one receive overhead, and
	// one handler dispatch cover every contained segment.
	KCoalesced

	// Multicast fan-out invalidation (tree topology, see multicast.go):
	// home -> relay (leaf mask in Arg), relay -> sibling leaf (home in
	// Arg2), leaf -> relay (dirty flag in Arg), relay -> home (clean
	// leaf mask in Arg).
	KInvalTree
	KInvalFwd
	KInvalAckFwd
	KInvalAckTree
)

const ctrlSize = 8 // payload bytes of a control message

// MsgKindName renders a message kind as a stable human-readable name
// for traces and diagnostics. It covers the default protocol, the
// compiler-directed extensions, the tempest synchronization kinds, and
// the reliable-delivery acknowledgement.
func MsgKindName(k network.Kind) string {
	switch k {
	case KReadReq:
		return "read_req"
	case KReadResp:
		return "read_resp"
	case KWriteReq:
		return "write_req"
	case KWriteResp:
		return "write_resp"
	case KUpgradeReq:
		return "upgrade_req"
	case KWriteGrant:
		return "write_grant"
	case KPutDataReq:
		return "put_data_req"
	case KPutDataResp:
		return "put_data_resp"
	case KInval:
		return "inval"
	case KInvalAck:
		return "inval_ack"
	case KMkWritableReq:
		return "mk_writable_req"
	case KMkWritableData:
		return "mk_writable_data"
	case KMkWritableAck:
		return "mk_writable_ack"
	case KCCData:
		return "cc_data"
	case KCCFlush:
		return "cc_flush"
	case KCCFlushDir:
		return "cc_flush_dir"
	case KCoalesced:
		return "coalesced"
	case KInvalTree:
		return "inval_tree"
	case KInvalFwd:
		return "inval_fwd"
	case KInvalAckFwd:
		return "inval_ack_fwd"
	case KInvalAckTree:
		return "inval_ack_tree"
	case tempest.KindBarrierArrive:
		return "barrier_arrive"
	case tempest.KindBarrierRelease:
		return "barrier_release"
	case tempest.KindReduceContrib:
		return "reduce_contrib"
	case tempest.KindReduceResult:
		return "reduce_result"
	case tempest.KindTreeBarrierUp:
		return "tree_barrier_up"
	case tempest.KindTreeBarrierDown:
		return "tree_barrier_down"
	case tempest.KindTreeReduceUp:
		return "tree_reduce_up"
	case tempest.KindTreeReduceDown:
		return "tree_reduce_down"
	case network.KindAck:
		return "ack"
	case network.KindProbe:
		return "probe"
	case network.KindProbeAck:
		return "probe_ack"
	}
	return fmt.Sprintf("kind%d", k)
}

// Proto is the coherence protocol instance for one cluster.
type Proto struct {
	C     *tempest.Cluster
	nodes []*nodeProto

	// tree is the cluster's combining-tree shape under the tree
	// topology, nil under the paper's flat topology. When set, the
	// homes route sharer invalidations through per-cluster relays
	// (multicast.go) instead of unicasting every sharer.
	tree *topo.Tree

	// BlockInfo, when set, renders schedule provenance for a block
	// number (which array it belongs to and which compiler-emitted call
	// last created expectations for it). Invariant-audit failures and
	// the stall watchdog's dump append it to their block addresses. The
	// runtime installs analysis.ProvIndex.Describe here; the hook is a
	// plain function so the protocol does not import the verifier.
	BlockInfo func(b int) string
}

// nodeProto is the per-node protocol state: the directory for blocks
// homed here, fill signals for outstanding blocking misses, and the
// compiler-controlled receive counter.
type nodeProto struct {
	p  *Proto
	n  *tempest.Node
	id int

	// defers counts this node's protocol actions parked on short
	// re-delivery timers (scHold deferrals, busy-directory retries).
	// Nonzero means hidden work is pending even though no message is in
	// flight, so the quiescence predicate refuses to checkpoint. Kept
	// per node — the timers fire on the owning node's Env, so the
	// counter stays single-writer under the PDES window scheduler.
	defers int

	dir  map[int]*dirEntry   // blocks homed at this node
	fill map[int]*sim.Signal // block -> local blocking miss completion

	// Compiler-controlled transfer bookkeeping.
	ccRecv     *sim.Counter // blocks received via KCCData / KCCFlush
	ccExpected int64        // cumulative blocks announced via ExpectBlocks
	mkwCount   *sim.Counter // blocks confirmed for the current mk_writable
	iwDone     map[[2]int]bool
	ccFrames   blockFlags // blocks ever opened by implicit_writable
	ccTouched  blockFlags // blocks ever sent/received via send/flush

	// scHold marks blocks between a sequentially-consistent write
	// grant and the retirement of the blocked store: invalidations and
	// flush requests are deferred briefly so the store always makes
	// progress (otherwise two false-sharing writers can livelock
	// stealing the block from each other).
	scHold blockFlags

	// coal is this node's NIC-level coalescing scheduler, nil unless
	// aggregation is enabled (EnableAggregation). When set,
	// latency-tolerant traffic — tagged data under SendAggregate,
	// flush-directory updates, mk_writable data+ack responses, and the
	// eager-release-consistency upgrade/invalidation legs — travels as
	// segments of per-destination carrier messages.
	coal *network.Coalescer

	// Scratch classification buffers reused across protocol calls, so
	// the per-call per-home grouping in MkWritable / FlushBlocks
	// allocates nothing in steady state.
	encScratch  [][]encRun
	homeScratch [][]homeRun
	mkwScratch  []encRun

	// Multicast fan-out state (tree topology only; see multicast.go).
	// clusterMask/clusterScratch are the home-side per-round bucketing
	// scratch; relay holds this node's open fan-out rounds by block;
	// invalRounds counts rounds this home opened (diagnostic).
	clusterMask    []uint64
	clusterScratch []int
	relay          map[int]*relayState
	invalRounds    int64
}

// encRun is a run of blocks with one mk_writable disposition.
type encRun struct {
	start, n int
	needData bool
}

// homeRun is a home-contiguous run of flushed blocks.
type homeRun struct{ start, n int }

// blockFlags is a dense per-block flag set indexed by block number —
// the bookkeeping sits on the access-fault and data-install hot paths,
// where the former map[int]bool lookups cost hashing on every block.
// It is sized to the shared segment at Attach and grows on demand
// should a block past the initial segment ever appear.
type blockFlags []bool

func (f blockFlags) get(b int) bool { return b < len(f) && f[b] }

func (f *blockFlags) set(b int) {
	if b >= len(*f) {
		nf := make(blockFlags, b+64)
		copy(nf, *f)
		*f = nf
	}
	(*f)[b] = true
}

func (f blockFlags) clear(b int) {
	if b < len(f) {
		f[b] = false
	}
}

// Attach installs the protocol on every node of the cluster and
// returns it. Must be called before any compute process touches
// shared memory.
func Attach(c *tempest.Cluster) *Proto {
	p := &Proto{C: c}
	if c.MC.Topology == config.TreeTopo {
		t := topo.MustNew(c.MC.Nodes, c.MC.EffectiveRadix())
		p.tree = &t
	}
	nb := c.Space.NumBlocks()
	for _, n := range c.Nodes {
		np := &nodeProto{
			p: p, n: n, id: n.ID,
			dir:       make(map[int]*dirEntry),
			fill:      make(map[int]*sim.Signal),
			scHold:    make(blockFlags, nb),
			ccFrames:  make(blockFlags, nb),
			ccTouched: make(blockFlags, nb),
			ccRecv:    sim.NewCounter(),
			mkwCount:  sim.NewCounter(),
			iwDone:    make(map[[2]int]bool),
		}
		p.nodes = append(p.nodes, np)
		n.Fault = np.fault
		n.On(KReadReq, np.hReadReq)
		n.On(KWriteReq, np.hWriteReq)
		n.On(KUpgradeReq, np.hUpgradeReq)
		n.On(KReadResp, np.hReadResp)
		n.On(KWriteResp, np.hWriteResp)
		n.On(KWriteGrant, np.hWriteGrant)
		n.On(KPutDataReq, np.hPutDataReq)
		n.On(KPutDataResp, np.hPutDataResp)
		n.On(KInval, np.hInval)
		n.On(KInvalAck, np.hInvalAck)
		n.On(KMkWritableReq, np.hMkWritableReq)
		n.On(KMkWritableData, np.hMkWritableData)
		n.On(KMkWritableAck, np.hMkWritableAck)
		n.On(KCCData, np.hCCData)
		n.On(KCCFlush, np.hCCFlush)
		n.On(KCCFlushDir, np.hCCFlushDir)
		n.On(KCoalesced, np.hCoalesced)
		n.On(KInvalTree, np.hInvalTree)
		n.On(KInvalFwd, np.hInvalFwd)
		n.On(KInvalAckFwd, np.hInvalAckFwd)
		n.On(KInvalAckTree, np.hInvalAckTree)
	}
	return p
}

// EnableAggregation installs the NIC-level coalescing scheduler on
// every node: same-destination latency-tolerant protocol traffic is
// gathered into vectored carrier messages that drain on phase
// boundaries, synchronization entries, ordering chokepoints, and (for
// protocol-engine traffic) a short timer. Call before the simulation
// starts, and only under release consistency — the sequentially
// consistent model's blocking stores gain nothing from buffering and
// its scHold deferrals assume standalone delivery.
func (p *Proto) EnableAggregation(delay sim.Time) {
	if p.C.MC.Consistency != config.ReleaseConsistent {
		panic("protocol: message aggregation requires the release-consistent model")
	}
	for _, np := range p.nodes {
		np.coal = p.C.Net.AttachCoalescer(np.id, KCoalesced, ctrlSize, delay, np.n.SendFromProto)
		np.n.NICDrain = np.coal.FlushAll
		np.n.NICBurst = np.coal.Burst
		np.n.NICFlushTo = np.coal.FlushDst
	}
}

// hCoalesced scatters a carrier: each contained segment dispatches to
// its original handler with its original per-message state-transition
// cost — only the per-message wire header, receive overhead, and
// dispatch are shared. A synthesized per-segment message view keeps
// the handler bodies unchanged; it lives on the stack and is never
// recycled (only the carrier itself is pool-owned).
func (np *nodeProto) hCoalesced(hc *tempest.HContext, m *network.Message) {
	t := np.n.Trace
	var sm network.Message
	network.ForEachSegment(m.Data, int(m.Arg), func(kind network.Kind, addr int, arg, arg2 int64, payload []byte) {
		sm = network.Message{
			Src: m.Src, Dst: m.Dst, Kind: kind, Addr: addr, Arg: arg, Arg2: arg2,
			Data: payload, Size: network.SegHeader + len(payload),
		}
		if t != nil {
			// Scatter fan-out: the carrier's wire flow was already
			// terminated at handler invoke; one instant per contained
			// segment shows every run the transmission carried.
			now := np.n.Env.Now()
			t.Instant(np.id, trace.LaneProto, "seg:"+MsgKindName(kind), "seg", now,
				trace.Int("src", m.Src), trace.Int("addr", addr), trace.Int("bytes", sm.Size))
		}
		np.dispatchSeg(hc, &sm)
	})
}

// dispatchSeg routes one carrier segment to its handler. Only
// latency-tolerant kinds ever ride a carrier; anything else is a
// protocol bug.
func (np *nodeProto) dispatchSeg(hc *tempest.HContext, sm *network.Message) {
	switch sm.Kind {
	case KCCData:
		np.hCCData(hc, sm)
	case KCCFlush:
		np.hCCFlush(hc, sm)
	case KCCFlushDir:
		np.hCCFlushDir(hc, sm)
	case KMkWritableData:
		np.hMkWritableData(hc, sm)
	case KMkWritableAck:
		np.hMkWritableAck(hc, sm)
	case KUpgradeReq:
		np.hUpgradeReq(hc, sm)
	case KWriteReq:
		np.hWriteReq(hc, sm)
	case KWriteGrant:
		np.hWriteGrant(hc, sm)
	case KInval:
		np.hInval(hc, sm)
	case KInvalAck:
		np.hInvalAck(hc, sm)
	default:
		panic(fmt.Sprintf("protocol: kind %d cannot travel as a carrier segment", sm.Kind))
	}
}

// Node returns the per-node protocol interface for compiler-directed
// calls (used by the runtime).
func (p *Proto) Node(id int) *Ext { return &Ext{np: p.nodes[id]} }

// CoherentRead returns the current value of a shared word after the
// simulation has finished, reconstructing it from the directory: the
// home's memory copy overlaid with any writer's locally dirty word.
// (Race-free programs have at most one dirty copy of a word.)
func (p *Proto) CoherentRead(addr int) float64 {
	sp := p.C.Space
	b := sp.Block(addr)
	home := p.nodes[sp.HomeOfBlock(b)]
	w := uint((addr % sp.BlockSize()) / 8)
	if e, ok := home.dir[b]; ok {
		for i := e.writers.next(0); i >= 0; i = e.writers.next(i + 1) {
			if p.nodes[i].n.Mem.Dirty(b)&(1<<w) != 0 {
				return p.nodes[i].n.Mem.ReadF64(addr)
			}
		}
	}
	// No remote dirty copy: the home's own memory is current (its own
	// writes land there directly).
	return home.n.Mem.ReadF64(addr)
}

// occupy charges protocol-engine time on this node.
func (np *nodeProto) occupy(d sim.Time) { np.n.OccupyProto(d) }

// heat returns the tracer's heat accumulator, or nil when tracing is
// off — the per-block miss/invalidation/byte hooks below are all
// guarded on it.
func (np *nodeProto) heat() *trace.Heat {
	if t := np.n.Trace; t != nil {
		return t.Heat
	}
	return nil
}

// send transmits from the protocol engine, charging SendOver; the
// message departs when the engine's queued work completes.
func (np *nodeProto) send(m *network.Message) {
	np.n.SendFromProto(m)
}

// --- Fault path (compute-process context) ----------------------------

// fault resolves an access fault. Read and write misses block the
// compute process; readonly->readwrite upgrades proceed immediately
// with the transaction tracked as pending (release consistency).
//
//simlint:hotpath
func (np *nodeProto) fault(p *sim.Proc, addr int, write bool) {
	n := np.n
	sp := n.Mem.Space()
	mc := n.MC
	b := sp.Block(addr)
	home := sp.HomeOfBlock(b)
	d := mc.FaultCost
	if pg := sp.Page(addr); !n.Mem.Mapped(pg) {
		d += mc.PageMapCost
		n.Mem.SetMapped(pg)
	}

	if write {
		kind := KUpgradeReq
		if n.Mem.Tag(b) == memory.Invalid {
			kind = KWriteReq
		}
		if mc.Consistency == config.SequentiallyConsistent {
			// Conservative model: the store stalls until ownership (and
			// data, on a miss) arrive.
			sig := sim.NewSignal()
			if home == np.id {
				p.Sleep(d)
				//simlint:ignore hotalloc -- one transaction descriptor (and completion closure) per SC write miss; its lifetime spans the directory round-trip, and the miss itself costs microseconds of simulated time
				np.enqueue(&dirReq{kind: kind, block: b, src: np.id, local: func(bool) {
					n.Mem.SetTag(b, memory.ReadWrite)
					np.scHold.set(b)
					sig.Fire()
				}})
			} else {
				p.Sleep(d + mc.SendOver)
				if _, dup := np.fill[b]; dup {
					panic(fmt.Sprintf("protocol: node %d has two blocking misses on block %d", np.id, b))
				}
				np.fill[b] = sig
				rq := n.Net.NewMessage(np.id)
				rq.Src, rq.Dst, rq.Kind, rq.Addr, rq.Size = np.id, home, kind, b, ctrlSize
				n.Net.Send(rq)
			}
			sig.Wait(p)
			// The store retires now (no yield between here and the
			// write); release the hold taken at grant time.
			np.scHold.clear(b)
			return
		}
		// Eager release consistency: the writer does not wait for
		// ownership. On an upgrade the data is already here; on a write
		// miss the frame opens immediately (the imminent store marks
		// its word dirty) and the fetched copy merges into the clean
		// words when the response arrives. Grants are collected at the
		// next synchronization point.
		n.Mem.SetTag(b, memory.ReadWrite)
		n.AddPending()
		switch {
		case home == np.id:
			p.Sleep(d)
			//simlint:ignore hotalloc -- one descriptor per home-local write miss; pooled reuse would have to survive crash teardown (PR 6) for no measurable win at the miss rate the bench gates
			np.enqueue(&dirReq{kind: kind, block: b, src: np.id, local: func(withData bool) {
				n.DonePending()
			}})
		case np.coal != nil:
			// The request is latency-tolerant (nothing waits before the
			// next synchronization point), so the fault handler only
			// deposits a request descriptor into the NIC's open gather
			// buffer; consecutive faults to the same home share one
			// carrier. The first request to a home opens a batch window
			// of AggDelay: close-together faults share a carrier, yet the
			// request chain still departs mid-epoch and overlaps the loop
			// body instead of serializing behind the barrier. WaitPending
			// drains as a backstop, so buffered requests can never gate
			// their own grants.
			p.Sleep(d + mc.TagChange)
			np.coal.Append(home, kind, b, 0, 0, nil, true)
		default:
			p.Sleep(d + mc.SendOver)
			rq := n.Net.NewMessage(np.id)
			rq.Src, rq.Dst, rq.Kind, rq.Addr, rq.Size = np.id, home, kind, b, ctrlSize
			n.Net.Send(rq)
		}
		return
	}

	sig := sim.NewSignal()
	if home == np.id {
		p.Sleep(d)
		//simlint:ignore hotalloc -- one descriptor per home-local read miss, same trade as the write-miss descriptors above
		np.enqueue(&dirReq{kind: KReadReq, block: b, src: np.id, local: func(bool) { sig.Fire() }})
	} else {
		p.Sleep(d + mc.SendOver)
		if prev, dup := np.fill[b]; dup {
			panic(fmt.Sprintf("protocol: node %d has two blocking misses on block %d (%v)", np.id, b, prev))
		}
		np.fill[b] = sig
		rq := n.Net.NewMessage(np.id)
		rq.Src, rq.Dst, rq.Kind, rq.Addr, rq.Size = np.id, home, KReadReq, b, ctrlSize
		n.Net.Send(rq)
	}
	sig.Wait(p)
}

// --- Requester-side response handlers --------------------------------

func (np *nodeProto) fillDone(b int) {
	sig, ok := np.fill[b]
	if !ok {
		// A prefetched block completing (or a duplicate response after
		// a prefetch raced a demand miss): nothing is waiting.
		return
	}
	delete(np.fill, b)
	sig.Fire()
}

func (np *nodeProto) hReadResp(hc *tempest.HContext, m *network.Message) {
	b := m.Addr
	if h := np.heat(); h != nil {
		h.AddBytes(b, m.Size)
	}
	np.occupy(np.n.MC.BlockCopy + 2*np.n.MC.TagChange)
	np.n.Mem.InstallBlock(b, m.Data)
	np.n.Mem.SetTag(b, memory.ReadOnly)
	np.n.Mem.ClearDirty(b)
	// The faulting processor resumes once the data is installed.
	np.n.Env.Schedule(np.n.ProtoBusyUntil(), func() { np.fillDone(b) })
}

// hWriteResp completes a write miss. Under release consistency the
// fetched copy fills the words the processor wrote around (merge), and
// the pending transaction retires; under sequential consistency the
// blocked store resumes.
func (np *nodeProto) hWriteResp(hc *tempest.HContext, m *network.Message) {
	b := m.Addr
	if h := np.heat(); h != nil {
		h.AddBytes(b, m.Size)
	}
	np.occupy(np.n.MC.BlockCopy + np.n.MC.TagChange)
	np.n.Mem.InstallClean(b, m.Data)
	if np.n.MC.Consistency == config.SequentiallyConsistent {
		np.n.Mem.SetTag(b, memory.ReadWrite)
		np.scHold.set(b)
		np.n.Env.Schedule(np.n.ProtoBusyUntil(), func() { np.fillDone(b) })
		return
	}
	if np.n.Mem.Tag(b) == memory.Invalid {
		// We were invalidated while the miss was in flight; the copy
		// is already stale, leave the tag alone.
		np.n.DonePending()
		return
	}
	np.n.Mem.SetTag(b, memory.ReadWrite)
	np.n.DonePending()
}

func (np *nodeProto) hWriteGrant(hc *tempest.HContext, m *network.Message) {
	b := m.Addr
	np.occupy(np.n.MC.HandlerCost)
	if m.Data != nil && np.n.Mem.Tag(b) == memory.Invalid {
		// We were invalidated while the upgrade was in flight; the
		// grant carries fresh data.
		if h := np.heat(); h != nil {
			h.AddBytes(b, m.Size)
		}
		np.occupy(np.n.MC.BlockCopy)
		np.n.Mem.InstallBlock(b, m.Data)
		np.n.Mem.SetTag(b, memory.ReadWrite)
		np.n.Mem.ClearDirty(b)
	}
	if np.n.MC.Consistency == config.SequentiallyConsistent {
		np.n.Mem.SetTag(b, memory.ReadWrite)
		np.scHold.set(b)
		np.n.Env.Schedule(np.n.ProtoBusyUntil(), func() { np.fillDone(b) })
		return
	}
	np.n.DonePending()
}

// hPutDataReq: the home wants our (possibly dirty) copy of a block.
// Arg==1 additionally invalidates (a writer is taking ownership).
func (np *nodeProto) hPutDataReq(hc *tempest.HContext, m *network.Message) {
	b := m.Addr
	if np.scHold.get(b) {
		np.deferMsg(m, np.hPutDataReq)
		return
	}
	mem := np.n.Mem
	mc := np.n.MC
	np.occupy(mc.HandlerCost + mc.BlockCopy + mc.TagChange)
	mask := mem.Dirty(b)
	keeps := int64(1)
	if m.Arg == 1 || mem.Tag(b) == memory.Invalid {
		if h := np.heat(); h != nil && m.Arg == 1 {
			h.AddInval(b)
		}
		mem.SetTag(b, memory.Invalid)
		keeps = 0
	} else {
		mem.SetTag(b, memory.ReadOnly)
	}
	data := np.n.Net.AllocBlock(np.id)
	copy(data, mem.BlockData(b))
	mem.ClearDirty(b)
	rm := np.n.Net.NewMessage(np.id)
	rm.Dst, rm.Kind, rm.Addr = m.Src, KPutDataResp, b
	rm.Arg, rm.Arg2, rm.Data, rm.DataPooled = int64(mask), keeps, data, true
	np.send(rm)
}

func (np *nodeProto) hInval(hc *tempest.HContext, m *network.Message) {
	b := m.Addr
	if np.scHold.get(b) {
		np.deferMsg(m, np.hInval)
		return
	}
	if h := np.heat(); h != nil {
		h.AddInval(b)
	}
	mem := np.n.Mem
	mc := np.n.MC
	np.occupy(mc.HandlerCost + mc.TagChange)
	if mask := mem.Dirty(b); mask != 0 {
		// We upgraded concurrently; flush our words with the ack.
		data := np.n.Net.AllocBlock(np.id)
		copy(data, mem.BlockData(b))
		mem.SetTag(b, memory.Invalid)
		mem.ClearDirty(b)
		rm := np.n.Net.NewMessage(np.id)
		rm.Dst, rm.Kind, rm.Addr = m.Src, KPutDataResp, b
		rm.Arg, rm.Arg2, rm.Data, rm.DataPooled = int64(mask), 0, data, true
		np.send(rm)
		return
	}
	mem.SetTag(b, memory.Invalid)
	if np.coal != nil {
		// The home's collection tolerates ack latency (the requester's
		// grant is itself latency-tolerant under eager RC), so the ack
		// joins the gather buffer; a whole invalidation burst acks as
		// one carrier. The engine timer bounds the added delay.
		np.occupy(np.n.MC.TagChange)
		np.coal.Append(m.Src, KInvalAck, b, 0, 0, nil, true)
		return
	}
	rm := np.n.Net.NewMessage(np.id)
	rm.Dst, rm.Kind, rm.Addr, rm.Size = m.Src, KInvalAck, b, ctrlSize
	np.send(rm)
}

// deferMsg re-delivers a message to its own handler shortly, used to
// hold off coherence actions on a block whose granted store has not
// yet retired.
func (np *nodeProto) deferMsg(m *network.Message, h func(*tempest.HContext, *network.Message)) {
	m.Retain() // the message outlives this delivery
	np.defers++
	np.n.Env.After(2*sim.Microsecond, func() {
		np.defers--
		h(&tempest.HContext{Node: np.n}, m)
	})
}

// --- Home-side handlers ----------------------------------------------

func (np *nodeProto) hReadReq(hc *tempest.HContext, m *network.Message) {
	np.occupy(np.n.MC.HandlerCost)
	np.enqueue(&dirReq{kind: KReadReq, block: m.Addr, src: m.Src})
}

func (np *nodeProto) hWriteReq(hc *tempest.HContext, m *network.Message) {
	np.occupy(np.n.MC.HandlerCost)
	np.enqueue(&dirReq{kind: KWriteReq, block: m.Addr, src: m.Src})
}

func (np *nodeProto) hUpgradeReq(hc *tempest.HContext, m *network.Message) {
	np.occupy(np.n.MC.HandlerCost)
	np.enqueue(&dirReq{kind: KUpgradeReq, block: m.Addr, src: m.Src})
}

func (np *nodeProto) hPutDataResp(hc *tempest.HContext, m *network.Message) {
	b := m.Addr
	mc := np.n.MC
	if h := np.heat(); h != nil {
		h.AddBytes(b, m.Size)
	}
	np.occupy(mc.HandlerCost + mc.BlockCopy)
	// Words the home itself has written since the flushed copy was
	// superseded (an eager home-local store racing this collection)
	// take precedence: the responder's copy of those words is older.
	if mask := uint16(m.Arg) &^ np.n.Mem.Dirty(b); mask != 0 {
		np.n.Mem.MergeDirtyWords(b, m.Data, mask)
	}
	np.collectDone(b, m.Src, m.Arg2 == 1)
}

func (np *nodeProto) hInvalAck(hc *tempest.HContext, m *network.Message) {
	np.occupy(np.n.MC.HandlerCost)
	np.collectDone(m.Addr, m.Src, false)
}
