package protocol

import (
	"testing"

	"hpfdsm/internal/config"
	"hpfdsm/internal/memory"
	"hpfdsm/internal/sim"
	"hpfdsm/internal/tempest"
)

// blocksOf returns the run of blocks covering [addr, addr+nbytes).
func (h *harness) blocksOf(addr, nbytes int) []BlockRun {
	bs := h.space.BlockSize()
	return []BlockRun{{Start: addr / bs, N: (nbytes + bs - 1) / bs}}
}

func TestMkWritableFetchesRemoteData(t *testing.T) {
	// Owner (node 1) makes writable a range homed at node 0 that it
	// has never touched: data must arrive and tags become readwrite.
	h := newHarness(t, 2, 2, config.DualCPU)
	addr := h.addrOnPage(0, 0)
	nbytes := 4 * h.space.BlockSize()
	h.run(0, "home", func(p *sim.Proc, n *tempest.Node) {
		for i := 0; i < nbytes/8; i++ {
			n.StoreF64(p, addr+8*i, float64(i))
		}
		h.c.Barrier(p, n)
		h.c.Barrier(p, n)
	})
	h.run(1, "owner", func(p *sim.Proc, n *tempest.Node) {
		h.c.Barrier(p, n)
		x := h.p.Node(1)
		x.MkWritable(p, h.blocksOf(addr, nbytes))
		for _, r := range h.blocksOf(addr, nbytes) {
			for b := r.Start; b < r.Start+r.N; b++ {
				if n.Mem.Tag(b) != memory.ReadWrite {
					t.Errorf("block %d tag %v after mk_writable", b, n.Mem.Tag(b))
				}
			}
		}
		for i := 0; i < nbytes/8; i++ {
			if got := n.Mem.ReadF64(addr + 8*i); got != float64(i) {
				t.Errorf("word %d = %v after mk_writable", i, got)
			}
		}
		h.c.Barrier(p, n)
	})
	if err := h.c.Env.Run(); err != nil {
		t.Fatal(err)
	}
	// Home must have been invalidated: directory now says owner is the
	// exclusive writer.
	home := h.c.Nodes[0]
	if home.Mem.Tag(h.space.Block(addr)) != memory.Invalid {
		t.Fatalf("home tag after mk_writable = %v, want invalid", home.Mem.Tag(h.space.Block(addr)))
	}
}

func TestMkWritableUpgradeOnly(t *testing.T) {
	// Owner already holds readonly copies: mk_writable should upgrade
	// without shipping data.
	h := newHarness(t, 2, 2, config.DualCPU)
	addr := h.addrOnPage(0, 0)
	nbytes := 2 * h.space.BlockSize()
	h.run(1, "owner", func(p *sim.Proc, n *tempest.Node) {
		n.LoadF64(p, addr)                     // readonly copy of block 0
		n.LoadF64(p, addr+h.space.BlockSize()) // and block 1
		bytesBefore := h.c.Stats.Nodes[0].BytesSent
		x := h.p.Node(1)
		x.MkWritable(p, h.blocksOf(addr, nbytes))
		dataMoved := h.c.Stats.Nodes[0].BytesSent - bytesBefore
		if dataMoved > 64 {
			t.Errorf("upgrade-only mk_writable moved %d bytes from home", dataMoved)
		}
		if n.Mem.Tag(h.space.Block(addr)) != memory.ReadWrite {
			t.Error("tag not upgraded")
		}
	})
	if err := h.c.Env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMkWritableLocalHome(t *testing.T) {
	// Owner == home: no messages at all.
	h := newHarness(t, 2, 2, config.DualCPU)
	addr := h.addrOnPage(1, 0) // homed at node 1
	h.run(1, "owner", func(p *sim.Proc, n *tempest.Node) {
		x := h.p.Node(1)
		x.MkWritable(p, h.blocksOf(addr, 2*h.space.BlockSize()))
	})
	if err := h.c.Env.Run(); err != nil {
		t.Fatal(err)
	}
	if h.c.Stats.TotalMessages() != 0 {
		t.Fatalf("local mk_writable sent %d messages", h.c.Stats.TotalMessages())
	}
}

func TestMkWritableSkipsWritableBlocks(t *testing.T) {
	h := newHarness(t, 2, 2, config.DualCPU)
	addr := h.addrOnPage(1, 0) // node 1's own page: already readwrite
	var elapsed sim.Time
	h.run(1, "owner", func(p *sim.Proc, n *tempest.Node) {
		t0 := p.Now()
		h.p.Node(1).MkWritable(p, h.blocksOf(addr, 8*h.space.BlockSize()))
		elapsed = p.Now() - t0
	})
	if err := h.c.Env.Run(); err != nil {
		t.Fatal(err)
	}
	if elapsed > sim.Microsecond {
		t.Fatalf("all-writable mk_writable took %d ns", elapsed)
	}
}

// ccCycle runs one full compiler-controlled transfer of nblocks from
// node 0 (owner) to node 1 (reader) following the paper's Figure 2
// call sequence, and returns the harness for inspection.
func ccCycle(t *testing.T, mode SendMode, nblocks int) *harness {
	t.Helper()
	h := newHarness(t, 3, 4, config.DualCPU)
	addr := h.addrOnPage(2, 0) // homed at node 2 (neither sender nor receiver)
	bs := h.space.BlockSize()
	runs := []BlockRun{{Start: addr / bs, N: nblocks}}

	h.run(0, "owner", func(p *sim.Proc, n *tempest.Node) {
		x := h.p.Node(0)
		x.MkWritable(p, runs) // step 1
		for i := 0; i < nblocks*bs/8; i++ {
			n.StoreF64(p, addr+8*i, float64(i)+0.5)
		}
		h.c.Barrier(p, n) // order step 1 before step 2
		h.c.Barrier(p, n) // both sides ready
		x.SendBlocks(p, 1, runs, mode)
		h.c.Barrier(p, n) // loop executed
		h.c.Barrier(p, n) // directory consistent again
	})
	h.run(1, "reader", func(p *sim.Proc, n *tempest.Node) {
		x := h.p.Node(1)
		h.c.Barrier(p, n)
		x.ImplicitWritable(p, runs, false) // step 2
		x.ExpectBlocks(nblocks)
		h.c.Barrier(p, n)
		x.ReadyToRecv(p)
		for i := 0; i < nblocks*bs/8; i++ {
			if got := n.LoadF64(p, addr+8*i); got != float64(i)+0.5 {
				t.Errorf("reader word %d = %v", i, got)
			}
		}
		h.c.Barrier(p, n)
		x.ImplicitInvalidate(p, runs)
		h.c.Barrier(p, n)
	})
	h.run(2, "home", func(p *sim.Proc, n *tempest.Node) {
		for i := 0; i < 4; i++ {
			h.c.Barrier(p, n)
		}
	})
	if err := h.c.Env.Run(); err != nil {
		t.Fatal(err)
	}
	return h
}

func TestCompilerControlledTransfer(t *testing.T) {
	h := ccCycle(t, SendBulk, 8)
	// The reader must have taken zero access faults: all data arrived
	// before the loop.
	if m := h.c.Stats.Nodes[1].Misses(); m != 0 {
		t.Fatalf("reader took %d misses under compiler control", m)
	}
	// End state: owner writable, reader invalid, directory says owner
	// is exclusive — consistent.
	bs := h.space.BlockSize()
	b := h.addrOnPage(2, 0) / bs
	if h.c.Nodes[0].Mem.Tag(b) != memory.ReadWrite {
		t.Fatal("owner lost write ownership")
	}
	if h.c.Nodes[1].Mem.Tag(b) != memory.Invalid {
		t.Fatal("reader kept a copy after implicit_invalidate")
	}
}

func TestBulkTransferUsesFewerMessages(t *testing.T) {
	nb := 16
	perBlock := ccCycle(t, SendEager, nb)
	bulk := ccCycle(t, SendBulk, nb)
	pm := perBlock.c.Stats.Nodes[0].MsgsSent
	bm := bulk.c.Stats.Nodes[0].MsgsSent
	if bm >= pm {
		t.Fatalf("bulk sender sent %d msgs, per-block %d; bulk should be fewer", bm, pm)
	}
	// 16 blocks of 128 B = 2048 B fits one 4 KiB payload.
	if pm-bm != int64(nb-1) {
		t.Fatalf("bulk saved %d messages, want %d", pm-bm, nb-1)
	}
}

func TestDefaultProtocolWorksAfterCCPhase(t *testing.T) {
	// After the CC cycle restored consistency, a third node's default
	// read must fetch the owner's data through the directory.
	h := ccCycle(t, SendBulk, 4)
	addr := h.addrOnPage(2, 0)
	var got float64
	h.run(2, "late-reader", func(p *sim.Proc, n *tempest.Node) {
		got = n.LoadF64(p, addr+16)
	})
	if err := h.c.Env.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 2.5 { // word 2 = 2 + 0.5
		t.Fatalf("post-phase default read = %v, want 2.5", got)
	}
}

func TestSendWithoutOwnershipPanics(t *testing.T) {
	h := newHarness(t, 2, 2, config.DualCPU)
	addr := h.addrOnPage(0, 0) // node 1 has no copy
	panicked := false
	h.run(1, "bad-sender", func(p *sim.Proc, n *tempest.Node) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		h.p.Node(1).SendBlocks(p, 0, h.blocksOf(addr, 128), SendBulk)
	})
	if err := h.c.Env.Run(); err != nil {
		t.Fatal(err)
	}
	if !panicked {
		t.Fatal("send without mk_writable did not panic")
	}
}

func TestCCDataWithoutFramePanics(t *testing.T) {
	// Receiver that skipped implicit_writable must trip the contract
	// check when tagged data arrives.
	h := newHarness(t, 2, 2, config.DualCPU)
	addr := h.addrOnPage(0, 0)
	h.run(0, "sender", func(p *sim.Proc, n *tempest.Node) {
		h.p.Node(0).SendBlocks(p, 1, h.blocksOf(addr, 128), SendBulk)
	})
	defer func() {
		if recover() == nil {
			t.Fatal("CC data without readwrite frame did not panic")
		}
	}()
	_ = h.c.Env.Run()
}

func TestImplicitInvalidateDirtyPanics(t *testing.T) {
	h := newHarness(t, 2, 2, config.DualCPU)
	addr := h.addrOnPage(1, 0) // node 1's page: writable
	panicked := false
	h.run(1, "writer", func(p *sim.Proc, n *tempest.Node) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		n.StoreF64(p, addr, 1)
		h.p.Node(1).ImplicitInvalidate(p, h.blocksOf(addr, 128))
	})
	if err := h.c.Env.Run(); err != nil {
		t.Fatal(err)
	}
	if !panicked {
		t.Fatal("implicit_invalidate of dirty block did not panic")
	}
}

func TestImplicitWritableFirstTimeOnly(t *testing.T) {
	h := newHarness(t, 2, 2, config.DualCPU)
	addr := h.addrOnPage(0, 0)
	runs := []BlockRun{{Start: addr / h.space.BlockSize(), N: 64}}
	var first, second sim.Time
	var did1, did2 bool
	h.run(1, "reader", func(p *sim.Proc, n *tempest.Node) {
		x := h.p.Node(1)
		t0 := p.Now()
		did1 = x.ImplicitWritable(p, runs, true)
		first = p.Now() - t0
		t1 := p.Now()
		did2 = x.ImplicitWritable(p, runs, true)
		second = p.Now() - t1
	})
	if err := h.c.Env.Run(); err != nil {
		t.Fatal(err)
	}
	if !did1 || did2 {
		t.Fatalf("first-time flags: did1=%v did2=%v", did1, did2)
	}
	if second >= first {
		t.Fatalf("cached implicit_writable (%d) not cheaper than first (%d)", second, first)
	}
}

func TestNonOwnerWriteFlush(t *testing.T) {
	// Node 1 (non-owner) writes a range owned by node 0, then flushes
	// back: owner must see the values, writer must end invalid.
	h := newHarness(t, 2, 2, config.DualCPU)
	addr := h.addrOnPage(0, 0)
	nblocks := 4
	bs := h.space.BlockSize()
	runs := []BlockRun{{Start: addr / bs, N: nblocks}}
	var ownerSees float64
	h.run(0, "owner", func(p *sim.Proc, n *tempest.Node) {
		x := h.p.Node(0)
		// Owner prepares to receive the flushed data.
		x.ExpectBlocks(nblocks)
		h.c.Barrier(p, n)
		h.c.Barrier(p, n)
		x.ReadyToRecv(p)
		ownerSees = n.LoadF64(p, addr+8)
	})
	h.run(1, "writer", func(p *sim.Proc, n *tempest.Node) {
		x := h.p.Node(1)
		h.c.Barrier(p, n)
		x.ImplicitWritable(p, runs, false)
		for i := 0; i < nblocks*bs/8; i++ {
			n.StoreF64(p, addr+8*i, float64(i)*3)
		}
		x.FlushBlocks(p, 0, runs, SendBulk)
		if n.Mem.Tag(addr/bs) != memory.Invalid {
			t.Error("writer not invalid after flush")
		}
		h.c.Barrier(p, n)
	})
	if err := h.c.Env.Run(); err != nil {
		t.Fatal(err)
	}
	if ownerSees != 3 {
		t.Fatalf("owner sees %v after flush, want 3", ownerSees)
	}
	if m := h.c.Stats.Nodes[0].Misses(); m != 0 {
		t.Fatalf("owner took %d misses", m)
	}
}

func TestProtoCallStats(t *testing.T) {
	h := ccCycle(t, SendBulk, 4)
	st0 := h.c.Stats.Nodes[0]
	st1 := h.c.Stats.Nodes[1]
	if st0.ProtoCalls < 2 { // mk_writable + send
		t.Fatalf("owner proto calls = %d", st0.ProtoCalls)
	}
	if st1.ProtoCalls < 3 { // implicit_writable + ready_to_recv + implicit_invalidate
		t.Fatalf("reader proto calls = %d", st1.ProtoCalls)
	}
	if st0.ProtoCallTime <= 0 || st1.ProtoCallTime <= 0 {
		t.Fatal("proto call time not recorded")
	}
}

func TestMkWritableMixedStates(t *testing.T) {
	// A range where the owner holds some blocks readwrite, some
	// readonly, some invalid: one pipelined call must sort it out.
	h := newHarness(t, 3, 4, config.DualCPU)
	addr := h.addrOnPage(0, 0) // homed at node 0
	bs := h.space.BlockSize()
	runs := []BlockRun{{Start: addr / bs, N: 6}}
	h.run(0, "home", func(p *sim.Proc, n *tempest.Node) {
		for w := 0; w < 6*bs/8; w++ {
			n.StoreF64(p, addr+8*w, float64(w))
		}
		h.c.Barrier(p, n)
		h.c.Barrier(p, n)
	})
	h.run(1, "owner", func(p *sim.Proc, n *tempest.Node) {
		h.c.Barrier(p, n)
		// Acquire mixed states: read block 1 (readonly), write block 3
		// (readwrite via eager upgrade), leave the rest invalid.
		n.LoadF64(p, addr+1*bs)
		n.StoreF64(p, addr+3*bs, -1)
		n.WaitPending(p)
		x := h.p.Node(1)
		x.MkWritable(p, runs)
		for b := runs[0].Start; b < runs[0].Start+runs[0].N; b++ {
			if n.Mem.Tag(b) != memory.ReadWrite {
				t.Errorf("block %d tag %v after mixed mk_writable", b, n.Mem.Tag(b))
			}
		}
		// Data must be intact across all states.
		for w := 0; w < 6*bs/8; w++ {
			want := float64(w)
			if w == 3*bs/8 {
				want = -1 // our own write
			}
			if got := n.Mem.ReadF64(addr + 8*w); got != want {
				t.Errorf("word %d = %v, want %v", w, got, want)
			}
		}
		h.c.Barrier(p, n)
	})
	h.run(2, "idle", func(p *sim.Proc, n *tempest.Node) {
		h.c.Barrier(p, n)
		h.c.Barrier(p, n)
	})
	if err := h.c.Env.Run(); err != nil {
		t.Fatal(err)
	}
	if err := h.p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBulkSendSplitsAtMaxPayload(t *testing.T) {
	// 64 blocks = 8 KiB exceeds the 4 KiB payload: bulk send must use
	// exactly two data messages.
	h := newHarness(t, 3, 8, config.DualCPU)
	addr := h.addrOnPage(2, 0)
	bs := h.space.BlockSize()
	nb := 2 * h.space.Machine().MaxPayload / bs
	runs := []BlockRun{{Start: addr / bs, N: nb}}
	h.run(0, "sender", func(p *sim.Proc, n *tempest.Node) {
		x := h.p.Node(0)
		x.MkWritable(p, runs)
		before := h.c.Stats.Nodes[0].MsgsSent
		x.SendBlocks(p, 1, runs, SendBulk)
		sent := h.c.Stats.Nodes[0].MsgsSent - before
		if sent != 2 {
			t.Errorf("bulk send used %d messages, want 2", sent)
		}
	})
	h.run(1, "recv", func(p *sim.Proc, n *tempest.Node) {
		x := h.p.Node(1)
		x.ImplicitWritable(p, runs, false)
		x.ExpectBlocks(nb)
		x.ReadyToRecv(p)
	})
	if err := h.c.Env.Run(); err != nil {
		t.Fatal(err)
	}
}
