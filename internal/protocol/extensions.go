package protocol

import (
	"encoding/binary"
	"fmt"

	"hpfdsm/internal/memory"
	"hpfdsm/internal/network"
	"hpfdsm/internal/sim"
	"hpfdsm/internal/tempest"
)

// BlockRun is a contiguous range of coherence blocks [Start, Start+N).
type BlockRun struct {
	Start int
	N     int
}

// Ext is the compiler-directed protocol interface for one node: the
// run-time calls of the paper's Section 4.2. All methods must be called
// from the node's compute process. Each call's elapsed time is charged
// to the node's communication time (the paper includes protocol-call
// time in the optimized communication time).
type Ext struct {
	np *nodeProto
}

// Node returns the underlying tempest node.
func (x *Ext) Node() *tempest.Node { return x.np.n }

func (x *Ext) begin(p *sim.Proc) sim.Time {
	x.np.n.Sync(p)
	return p.Now()
}

func (x *Ext) end(p *sim.Proc, t0 sim.Time) {
	st := x.np.n.St
	st.ProtoCalls++
	d := p.Now() - t0
	st.ProtoCallTime += d
	st.CommTime += d
}

// MkWritable brings every block in runs to readwrite state in this
// node's cache, as if a write fault had been incurred for each block
// but pipelined: one request per home node, with the home shipping
// data in bulk for blocks this node does not hold. On return the
// directory records this node as the blocks' exclusive writer — which
// also relieves the homes of the only-valid-copy burden (step 1 of the
// paper's transfer preparation).
func (x *Ext) MkWritable(p *sim.Proc, runs []BlockRun) {
	np := x.np
	n := np.n
	mem := n.Mem
	sp := mem.Space()
	mc := n.MC
	t0 := x.begin(p)
	defer x.end(p, t0)

	np.mkwCount.Reset()

	// Classify each block by home and by what it needs. The per-home
	// grouping reuses the node's scratch buffers so steady-state calls
	// allocate nothing.
	if np.encScratch == nil {
		np.encScratch = make([][]encRun, len(np.p.nodes))
	}
	perHome := np.encScratch
	for i := range perHome {
		perHome[i] = perHome[i][:0]
	}
	var total int64
	for _, r := range runs {
		for b := r.Start; b < r.Start+r.N; b++ {
			if mem.Tag(b) == memory.ReadWrite {
				continue // already writable; nothing to do
			}
			home := sp.HomeOfBlock(b)
			needData := mem.Tag(b) == memory.Invalid
			total++
			l := perHome[home]
			if k := len(l) - 1; k >= 0 && l[k].start+l[k].n == b && l[k].needData == needData {
				perHome[home][k].n++
			} else {
				perHome[home] = append(perHome[home], encRun{b, 1, needData})
			}
		}
	}
	if total == 0 {
		p.Sleep(mc.TagChange) // the call still tests its ranges
		return
	}

	for home := 0; home < len(perHome); home++ {
		list := perHome[home]
		if len(list) == 0 {
			continue
		}
		count := 0
		for _, er := range list {
			count += er.n
		}
		if home == np.id {
			agg := &mkwAgg{src: np.id, remaining: count, local: true}
			for _, er := range list {
				if er.needData {
					agg.dataRuns = append(agg.dataRuns, BlockRun{er.start, er.n})
				} else {
					agg.upRuns = append(agg.upRuns, BlockRun{er.start, er.n})
					agg.upgraded += er.n
				}
			}
			p.Sleep(sim.Time(count) * mc.BulkPerBlock)
			for _, er := range list {
				for b := er.start; b < er.start+er.n; b++ {
					np.enqueue(&dirReq{kind: KMkWritableReq, block: b, src: np.id, needData: er.needData, agg: agg})
				}
			}
			continue
		}
		// Remote home: one pipelined request. Upgrade-only blocks can
		// take their tags now; the call blocks until all confirmed.
		plen := 4 + 9*len(list)
		payload := n.Net.AllocVar(np.id, plen)[:plen]
		binary.LittleEndian.PutUint32(payload, uint32(len(list)))
		off := 4
		for _, er := range list {
			binary.LittleEndian.PutUint32(payload[off:], uint32(er.start))
			binary.LittleEndian.PutUint32(payload[off+4:], uint32(er.n))
			if er.needData {
				payload[off+8] = 1
			} else {
				for b := er.start; b < er.start+er.n; b++ {
					mem.SetTag(b, memory.ReadWrite)
				}
			}
			off += 9
		}
		p.Sleep(mc.SendOver)
		m := n.Net.NewMessage(np.id)
		m.Src, m.Dst, m.Kind, m.Data, m.DataPooled = np.id, home, KMkWritableReq, payload, true
		n.Net.Send(m)
	}
	np.mkwCount.WaitFor(p, total)
}

// mkwAgg aggregates the per-block directory transactions of one
// mk_writable request at the home; when the last block completes it
// ships the response (bulk data plus an acknowledgement for
// upgrade-only blocks).
type mkwAgg struct {
	src       int
	remaining int
	dataRuns  []BlockRun
	upRuns    []BlockRun // upgrade-only runs (kept for the local case)
	upgraded  int
	local     bool
}

func (a *mkwAgg) blockDone(np *nodeProto, r *dirReq) {
	a.remaining--
	if a.remaining > 0 {
		return
	}
	mem := np.n.Mem
	mc := np.n.MC
	if a.local {
		// Requester is the home: data is already in home memory;
		// just take the tags.
		n := 0
		for _, runs := range [][]BlockRun{a.dataRuns, a.upRuns} {
			for _, dr := range runs {
				for b := dr.Start; b < dr.Start+dr.N; b++ {
					mem.SetTag(b, memory.ReadWrite)
					mem.ClearDirty(b)
				}
				n += dr.N
			}
		}
		np.mkwCount.Add(int64(n))
		return
	}
	bs := mem.Space().BlockSize()
	if np.coal != nil {
		// Piggyback the whole response — bulk data for absent blocks
		// plus the upgrade acknowledgement — on one carrier: the
		// requester's mk_writable completes on a single handler
		// dispatch regardless of how many runs the request covered.
		for _, dr := range a.dataRuns {
			np.occupy(sim.Time(dr.N) * mc.BulkPerBlock)
			np.coal.Append(a.src, KMkWritableData, dr.Start*bs, int64(dr.N), 0,
				mem.Bytes(dr.Start*bs, dr.N*bs), false)
		}
		if a.upgraded > 0 {
			np.occupy(mc.TagChange)
			np.coal.Append(a.src, KMkWritableAck, 0, int64(a.upgraded), 0, nil, false)
		}
		np.coal.FlushDst(a.src)
		return
	}
	maxBlocks := mc.MaxPayload / bs
	for _, dr := range a.dataRuns {
		for off := 0; off < dr.N; off += maxBlocks {
			nb := dr.N - off
			if nb > maxBlocks {
				nb = maxBlocks
			}
			start := dr.Start + off
			var data []byte
			pooled := false
			if nb == 1 {
				data = np.n.Net.AllocBlock(np.id)
				pooled = true
			} else {
				data = make([]byte, nb*bs)
			}
			copy(data, mem.Bytes(start*bs, nb*bs))
			np.occupy(sim.Time(nb) * mc.BulkPerBlock)
			dm := np.n.Net.NewMessage(np.id)
			dm.Dst, dm.Kind = a.src, KMkWritableData
			dm.Addr, dm.Arg, dm.Data, dm.DataPooled = start*bs, int64(nb), data, pooled
			np.send(dm)
		}
	}
	if a.upgraded > 0 {
		m := np.n.Net.NewMessage(np.id)
		m.Dst, m.Kind, m.Arg, m.Size = a.src, KMkWritableAck, int64(a.upgraded), ctrlSize
		np.send(m)
	}
}

func (np *nodeProto) hMkWritableReq(hc *tempest.HContext, m *network.Message) {
	mc := np.n.MC
	nruns := int(binary.LittleEndian.Uint32(m.Data))
	agg := &mkwAgg{src: m.Src}
	runs := np.mkwScratch[:0]
	off := 4
	for i := 0; i < nruns; i++ {
		er := encRun{
			start:    int(binary.LittleEndian.Uint32(m.Data[off:])),
			n:        int(binary.LittleEndian.Uint32(m.Data[off+4:])),
			needData: m.Data[off+8] == 1,
		}
		off += 9
		agg.remaining += er.n
		if er.needData {
			agg.dataRuns = append(agg.dataRuns, BlockRun{er.start, er.n})
		} else {
			agg.upgraded += er.n
		}
		runs = append(runs, er)
	}
	np.mkwScratch = runs[:0]
	np.occupy(sim.Time(agg.remaining) * mc.BulkPerBlock)
	for _, er := range runs {
		for b := er.start; b < er.start+er.n; b++ {
			np.enqueue(&dirReq{kind: KMkWritableReq, block: b, src: m.Src, needData: er.needData, agg: agg})
		}
	}
}

func (np *nodeProto) hMkWritableData(hc *tempest.HContext, m *network.Message) {
	mem := np.n.Mem
	bs := mem.Space().BlockSize()
	nb := int(m.Arg)
	if h := np.heat(); h != nil {
		h.AddBytesRange(m.Addr/bs, nb, m.Size)
	}
	np.occupy(sim.Time(nb) * np.n.MC.BulkPerBlock)
	mem.InstallRange(m.Addr, m.Data)
	b0 := m.Addr / bs
	for b := b0; b < b0+nb; b++ {
		mem.SetTag(b, memory.ReadWrite)
		mem.ClearDirty(b)
	}
	np.mkwCount.Add(int64(nb))
}

func (np *nodeProto) hMkWritableAck(hc *tempest.HContext, m *network.Message) {
	np.occupy(np.n.MC.HandlerCost)
	np.mkwCount.Add(m.Arg)
}

// ImplicitWritable sets every block in runs to readwrite locally with
// no directory interaction (step 2 of the paper's preparation: readers
// pre-open their frames for the incoming data). With firstTimeOnly
// (the run-time overhead elimination of Section 4.3) a range already
// processed costs only a lookup. Reports whether tag work was done.
func (x *Ext) ImplicitWritable(p *sim.Proc, runs []BlockRun, firstTimeOnly bool) bool {
	np := x.np
	mem := np.n.Mem
	mc := np.n.MC
	t0 := x.begin(p)
	defer x.end(p, t0)

	did := false
	for _, r := range runs {
		for b := r.Start; b < r.Start+r.N; b++ {
			np.ccFrames.set(b)
		}
		if firstTimeOnly {
			if np.iwDone[[2]int{r.Start, r.N}] {
				p.Sleep(mc.TagChange) // the test-only fast path
				continue
			}
			np.iwDone[[2]int{r.Start, r.N}] = true
		}
		p.Sleep(sim.Time(r.N) * mc.TagChange)
		for b := r.Start; b < r.Start+r.N; b++ {
			mem.SetTag(b, memory.ReadWrite)
		}
		did = true
	}
	return did
}

// ImplicitInvalidate invalidates every block in runs locally, restoring
// consistency with the directory (which believes the sender holds the
// only copy). It enforces the contract: invalidating a block with
// locally modified, unflushed words panics, because those updates would
// be silently lost.
func (x *Ext) ImplicitInvalidate(p *sim.Proc, runs []BlockRun) {
	np := x.np
	mem := np.n.Mem
	mc := np.n.MC
	t0 := x.begin(p)
	defer x.end(p, t0)

	h := np.heat()
	for _, r := range runs {
		p.Sleep(sim.Time(r.N) * mc.TagChange)
		for b := r.Start; b < r.Start+r.N; b++ {
			if mem.Dirty(b) != 0 {
				panic(fmt.Sprintf("protocol: implicit_invalidate of block %d on node %d would lose dirty words; flush first", b, np.id))
			}
			if h != nil && mem.Tag(b) != memory.Invalid {
				h.AddInval(b)
			}
			mem.SetTag(b, memory.Invalid)
		}
	}
}

// SendMode selects how compiler-directed tagged-data traffic travels.
type SendMode int

const (
	// SendEager ships each block as its own message as soon as it is
	// composed (the unoptimized per-block send).
	SendEager SendMode = iota
	// SendBulk coalesces contiguous blocks of one transfer into
	// payloads up to the machine's MaxPayload, one message per chunk.
	SendBulk
	// SendAggregate hands the blocks to the NIC-level coalescing
	// scheduler, which merges same-destination traffic from the whole
	// barrier epoch — across transfers and arrays — into vectored
	// carrier messages with one header and one handler dispatch per
	// destination. Downgrades to SendBulk when aggregation is not
	// enabled (EnableAggregation was never called).
	SendAggregate
)

// String renders the mode for diagnostics and sweep output.
func (m SendMode) String() string {
	switch m {
	case SendEager:
		return "eager"
	case SendBulk:
		return "bulk"
	case SendAggregate:
		return "aggregate"
	}
	return fmt.Sprintf("SendMode(%d)", int(m))
}

// SendBlocks ships the blocks in runs to dst as specially tagged data
// messages (the paper's send primitive). The mode picks the transport:
// one message per block, per-transfer bulk chunks, or epoch-level
// aggregation through the coalescing scheduler. The sender must hold
// every block valid (guaranteed by mk_writable); a violation panics.
func (x *Ext) SendBlocks(p *sim.Proc, dst int, runs []BlockRun, mode SendMode) {
	x.sendTagged(p, dst, runs, mode, KCCData)
}

// FlushBlocks ships locally written blocks back to their owner (the
// non-owner-write case) and invalidates them locally. Per the paper's
// contract, the scenario at the end is that "the owner has the only
// latest (writable) copy of the block, and directory correctly
// reflects this information": each block's home is told to repoint its
// writer set at the owner.
func (x *Ext) FlushBlocks(p *sim.Proc, owner int, runs []BlockRun, mode SendMode) {
	x.sendTagged(p, owner, runs, mode, KCCFlush)
	np := x.np
	n := np.n
	mem := n.Mem
	sp := mem.Space()
	for _, r := range runs {
		for b := r.Start; b < r.Start+r.N; b++ {
			mem.ClearDirty(b)
			mem.SetTag(b, memory.Invalid)
		}
	}
	// Directory fix-up, one message per home-contiguous run. The
	// grouping reuses the node's scratch buffers (steady-state calls
	// allocate nothing).
	if np.homeScratch == nil {
		np.homeScratch = make([][]homeRun, len(np.p.nodes))
	}
	perHome := np.homeScratch
	for i := range perHome {
		perHome[i] = perHome[i][:0]
	}
	for _, r := range runs {
		for b := r.Start; b < r.Start+r.N; b++ {
			h := sp.HomeOfBlock(b)
			l := perHome[h]
			if k := len(l) - 1; k >= 0 && l[k].start+l[k].n == b {
				perHome[h][k].n++
			} else {
				perHome[h] = append(perHome[h], homeRun{b, 1})
			}
		}
	}
	for h := 0; h < len(perHome); h++ {
		for _, hr := range perHome[h] {
			if h == np.id {
				np.ccFlushDir(hr.start, hr.n, owner, np.id)
				continue
			}
			if np.coal != nil {
				// The directory update piggybacks on the epoch's carrier
				// to that home instead of paying its own header and
				// handler dispatch.
				p.Sleep(n.MC.TagChange)
				np.coal.Append(h, KCCFlushDir, hr.start, int64(hr.n), int64(owner), nil, false)
				continue
			}
			p.Sleep(n.MC.SendOver)
			m := n.Net.NewMessage(np.id)
			m.Src, m.Dst, m.Kind = np.id, h, KCCFlushDir
			m.Addr, m.Arg, m.Arg2, m.Size = hr.start, int64(hr.n), int64(owner), ctrlSize
			n.Net.Send(m)
		}
	}
}

// ccFlushDir repoints the directory for [start, start+n) at the owner:
// the flushed data now lives there. Busy entries retry shortly.
func (np *nodeProto) ccFlushDir(start, n, owner, flusher int) {
	for b := start; b < start+n; b++ {
		e := np.entry(b)
		if e.busy {
			b := b
			np.defers++
			np.n.Env.After(2*sim.Microsecond, func() {
				np.defers--
				np.ccFlushDir(b, 1, owner, flusher)
			})
			continue
		}
		e.writers.clearAll()
		e.writers.set(owner)
		e.sharers.clearAll()
		e.stale.clearAll()
	}
	np.occupy(sim.Time(n) * np.n.MC.TagChange)
}

func (np *nodeProto) hCCFlushDir(hc *tempest.HContext, m *network.Message) {
	np.occupy(np.n.MC.HandlerCost)
	np.ccFlushDir(m.Addr, int(m.Arg), int(m.Arg2), m.Src)
}

// sendTagged is the shared transport for SendBlocks/FlushBlocks: the
// per-epoch bulk of compiler-directed traffic flows through it.
//
//simlint:hotpath
func (x *Ext) sendTagged(p *sim.Proc, dst int, runs []BlockRun, mode SendMode, kind network.Kind) {
	np := x.np
	n := np.n
	mem := n.Mem
	mc := n.MC
	bs := mem.Space().BlockSize()
	t0 := x.begin(p)
	defer x.end(p, t0)

	if dst == np.id {
		panic("protocol: compiler-directed send to self")
	}
	if mode == SendAggregate && np.coal == nil {
		mode = SendBulk
	}
	maxBlocks := mc.MaxPayload / bs
	if mode == SendEager {
		maxBlocks = 1
	}
	for _, r := range runs {
		for b := r.Start; b < r.Start+r.N; b++ {
			np.ccTouched.set(b)
			// The contract requires a valid local copy. ReadWrite is the
			// usual state (mk_writable / steady ownership); ReadOnly can
			// occur when an advisory prefetch or an edge read downgraded
			// the sender — the copy is still current and write ownership
			// is re-acquired lazily on the next store. Invalid means the
			// compiler's preconditions were violated.
			if mem.Tag(b) == memory.Invalid {
				panic(fmt.Sprintf("protocol: send of block %d on node %d without a valid copy; mk_writable missing",
					b, np.id))
			}
		}
		if mode == SendAggregate {
			// The run gathers into the per-destination carrier as one
			// segment, straight from memory — no intermediate buffer, no
			// per-run header, no MaxPayload chunking (the carrier is a
			// local drain artifact, not a wire MTU). Serialization still
			// charges the compute thread; send overhead is paid once per
			// carrier at drain time, overlapping later compute.
			p.Sleep(sim.Time(r.N) * mc.BulkPerBlock)
			np.coal.Append(dst, kind, r.Start*bs, int64(r.N), 0, mem.Bytes(r.Start*bs, r.N*bs), false)
			continue
		}
		for off := 0; off < r.N; off += maxBlocks {
			nb := r.N - off
			if nb > maxBlocks {
				nb = maxBlocks
			}
			start := r.Start + off
			var data []byte
			pooled := false
			if nb == 1 {
				data = n.Net.AllocBlock(np.id)
			} else {
				data = n.Net.AllocVar(np.id, nb*bs)[:nb*bs]
			}
			pooled = true
			copy(data, mem.Bytes(start*bs, nb*bs))
			p.Sleep(mc.SendOver + sim.Time(nb)*mc.BulkPerBlock)
			m := n.Net.NewMessage(np.id)
			m.Src, m.Dst, m.Kind = np.id, dst, kind
			m.Addr, m.Arg, m.Data, m.DataPooled = start*bs, int64(nb), data, pooled
			n.Net.Send(m)
		}
	}
}

// installCC installs a compiler-controlled data/flush payload — the
// receive-side hot path for every specially tagged message.
//
//simlint:hotpath
func (np *nodeProto) installCC(m *network.Message, markDirty bool) {
	mem := np.n.Mem
	bs := mem.Space().BlockSize()
	nb := int(m.Arg)
	if h := np.heat(); h != nil {
		h.AddBytesRange(m.Addr/bs, nb, m.Size)
	}
	np.occupy(sim.Time(nb) * np.n.MC.BulkPerBlock)
	b0 := m.Addr / bs
	for b := b0; b < b0+nb; b++ {
		np.ccTouched.set(b)
		if mem.Tag(b) != memory.ReadWrite {
			// A frame the receiver once opened may have been torn down
			// by an eager invalidation racing through an adjacent
			// edge-block's default-protocol sharing; the specially
			// tagged message carries the contract's permission to
			// reopen it. Data for a frame never opened is a compiler
			// bug and still trips the check.
			if !np.ccFrames.get(b) {
				panic(fmt.Sprintf("protocol: compiler-directed data for block %d arrived at node %d without readwrite frame (tag %v); implicit_writable missing",
					b, np.id, mem.Tag(b)))
			}
			np.occupy(np.n.MC.TagChange)
			mem.SetTag(b, memory.ReadWrite)
		}
	}
	mem.InstallRange(m.Addr, m.Data)
	for b := b0; b < b0+nb; b++ {
		if markDirty {
			// Flushed blocks are modifications relative to the home's
			// memory copy: the owner must present them as dirty so a
			// later default-protocol collection picks them up.
			mem.MarkAllDirty(b)
		} else {
			mem.ClearDirty(b)
		}
	}
	np.ccRecv.Add(int64(nb))
}

func (np *nodeProto) hCCData(hc *tempest.HContext, m *network.Message) {
	np.installCC(m, false)
}

func (np *nodeProto) hCCFlush(hc *tempest.HContext, m *network.Message) {
	// The owner holds its blocks writable in steady state; enforce it.
	np.installCC(m, true)
}

// Prefetch issues advisory, non-binding read requests for blocks this
// node will read through the default protocol (the paper's suggested
// boundary-case optimization: "co-operative prefetch" for the edge
// elements shmem_limits leaves behind). The compute process continues
// immediately; arriving data installs as a readonly copy, turning the
// later demand access into a hit. Blocks already readable are skipped.
func (x *Ext) Prefetch(p *sim.Proc, runs []BlockRun) {
	np := x.np
	n := np.n
	mem := n.Mem
	sp := mem.Space()
	mc := n.MC
	t0 := x.begin(p)
	defer x.end(p, t0)

	// Advisory requests are composed by the protocol engine, off the
	// compute processor's critical path; the call itself costs only its
	// dispatch.
	p.Sleep(mc.TagChange)
	for _, r := range runs {
		for b := r.Start; b < r.Start+r.N; b++ {
			if mem.Tag(b) != memory.Invalid {
				continue
			}
			home := sp.HomeOfBlock(b)
			if home == np.id {
				continue // local directory; a fault would be cheap anyway
			}
			if pg := sp.Page(b * sp.BlockSize()); !mem.Mapped(pg) {
				p.Sleep(mc.PageMapCost)
				mem.SetMapped(pg)
			}
			m := n.Net.NewMessage(np.id)
			m.Dst, m.Kind, m.Addr, m.Size = home, KReadReq, b, ctrlSize
			np.send(m)
		}
	}
}

// IsFrame reports whether this node ever opened block b as a
// compiler-controlled frame.
func (x *Ext) IsFrame(b int) bool { return x.np.ccFrames.get(b) }

// ExpectBlocks announces n incoming compiler-controlled blocks for this
// node's next ReadyToRecv (the schedule knows exactly what will
// arrive). May be called multiple times before the wait.
func (x *Ext) ExpectBlocks(n int) { x.np.ccExpected += int64(n) }

// ReadyToRecv blocks the compute process until every announced block
// has arrived — the counting-semaphore receive of the paper. Any
// traffic this node still holds in its coalescing buffers departs
// first: another node's ReadyToRecv may be waiting on it, and draining
// before blocking keeps the epoch free of cyclic waits.
func (x *Ext) ReadyToRecv(p *sim.Proc) {
	np := x.np
	t0 := x.begin(p)
	defer x.end(p, t0)
	p.Sleep(np.n.MC.TagChange)
	if np.coal != nil {
		np.coal.FlushAll()
	}
	np.ccRecv.WaitFor(p, np.ccExpected)
}

// DrainAggregated flushes every carrier the coalescing scheduler holds
// for this node. The runtime calls it at the end of a communication
// phase so the epoch's aggregated traffic departs before the closing
// barrier rather than riding on the barrier's own drain. A no-op when
// aggregation is off or nothing is pending.
func (x *Ext) DrainAggregated(p *sim.Proc) {
	np := x.np
	if np.coal == nil || !np.coal.PendingAny() {
		return
	}
	t0 := x.begin(p)
	defer x.end(p, t0)
	p.Sleep(np.n.MC.TagChange)
	np.coal.FlushAll()
}
