package protocol

import (
	"strings"
	"testing"

	"hpfdsm/internal/config"
	"hpfdsm/internal/memory"
	"hpfdsm/internal/sim"
	"hpfdsm/internal/tempest"
)

// newFaultHarness is newHarness with fault injection active.
func newFaultHarness(t *testing.T, nodes, pages int, f config.Faults) *harness {
	t.Helper()
	mc := config.Default().WithNodes(nodes).WithCPUMode(config.DualCPU).WithFaults(f)
	sp := memory.NewSpace(mc)
	base := sp.Alloc("arr", pages*mc.PageSize)
	c := tempest.NewCluster(sim.NewEnv(), sp)
	return &harness{c: c, p: Attach(c), base: base, space: sp}
}

// watchdogDump is the test stand-in for the runtime's stall diagnostic.
func (h *harness) watchdogDump() string {
	return h.p.DumpOutstanding() + h.c.Net.DumpChannels()
}

func TestBarrierAuditUnderFaults(t *testing.T) {
	// Mixed read/write traffic over a lossy, duplicating wire: every
	// barrier-instant audit must pass, and the reliable layer must leave
	// the protocol state exactly as coherent as a lossless run would.
	h := newFaultHarness(t, 4, 8, config.Faults{Drop: 0.05, Dup: 0.02, Seed: 11})
	h.c.BarrierCheck = h.p.CheckAtBarrier
	for id := 0; id < 4; id++ {
		id := id
		h.run(id, "w", func(p *sim.Proc, n *tempest.Node) {
			for r := 0; r < 3; r++ {
				for w := id; w < 96; w += 4 {
					n.StoreF64(p, h.base+8*w, float64(r+w))
				}
				h.c.Barrier(p, n)
				for w := 0; w < 96; w += 5 {
					n.LoadF64(p, h.base+8*w)
				}
				h.c.Barrier(p, n)
			}
		})
	}
	if err := h.c.Env.Run(); err != nil {
		t.Fatal(err)
	}
	if err := h.c.CheckErr(); err != nil {
		t.Fatal(err)
	}
	if h.c.BarrierChecks() == 0 {
		t.Fatal("no barrier audits ran")
	}
	if err := h.p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if h.c.Stats.TotalWireDrops() == 0 || h.c.Stats.TotalRetransmits() == 0 {
		t.Fatalf("fault injection inert: drops=%d retransmits=%d",
			h.c.Stats.TotalWireDrops(), h.c.Stats.TotalRetransmits())
	}
}

func TestBarrierAuditCatchesCorruptedSharerCopy(t *testing.T) {
	// After a clean remote read, silently corrupt the sharer's cached
	// copy (no dirty bits, as a wild write through a stale pointer or a
	// protocol bug would): the barrier-instant data-agreement audit must
	// flag the divergence from the home copy.
	h := newHarness(t, 2, 2, config.DualCPU)
	addr := h.addrOnPage(0, 0)
	h.run(0, "writer", func(p *sim.Proc, n *tempest.Node) {
		n.StoreF64(p, addr, 4.5)
		h.c.Barrier(p, n)
	})
	h.run(1, "reader", func(p *sim.Proc, n *tempest.Node) {
		h.c.Barrier(p, n)
		n.LoadF64(p, addr)
	})
	if err := h.c.Env.Run(); err != nil {
		t.Fatal(err)
	}
	if err := h.p.CheckAtBarrier(); err != nil {
		t.Fatalf("clean state flagged: %v", err)
	}

	b := h.space.Block(addr)
	h.c.Nodes[1].Mem.WriteF64(addr, 9.75)
	h.c.Nodes[1].Mem.ClearDirty(b) // corruption, not a tracked write
	if err := h.p.CheckAtBarrier(); err == nil {
		t.Fatal("corrupted sharer copy not flagged by data-agreement audit")
	}
}

func TestPermanentLossTripsWatchdogWithDump(t *testing.T) {
	// A permanently dead link (response direction blackholed) leaves the
	// reader blocked forever while the sender retransmits endlessly. The
	// watchdog must convert that live-lock into a diagnostic naming the
	// blocked process, the stuck transaction, and the channel state.
	h := newFaultHarness(t, 2, 2, config.Faults{
		Drop: 0.000001, Seed: 1,
		RetransmitTimeout: 50 * sim.Microsecond,
	})
	h.c.Env.SetWatchdog(5*sim.Millisecond, h.watchdogDump)
	h.c.Net.Blackhole(0, 1)
	addr := h.addrOnPage(0, 0)
	h.run(1, "reader", func(p *sim.Proc, n *tempest.Node) {
		n.LoadF64(p, addr) // response from home 0 never arrives
	})
	err := h.c.Env.Run()
	if err == nil {
		t.Fatal("expected watchdog error on permanent response loss")
	}
	for _, want := range []string{"watchdog", "reader", "channel 0->1", "retries"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("diagnostic lacks %q:\n%v", want, err)
		}
	}
}

func TestGiveUpEndsInDeadlockWithDump(t *testing.T) {
	// With MaxRetries bounded, the sender eventually abandons the lost
	// message; the event queue drains and the run ends in deadlock
	// detection, which must carry the same diagnostic dump.
	h := newFaultHarness(t, 2, 2, config.Faults{
		Drop: 0.000001, Seed: 1,
		RetransmitTimeout: 50 * sim.Microsecond,
		MaxRetries:        2,
	})
	h.c.Env.SetWatchdog(time24h, h.watchdogDump) // far horizon: never fires
	h.c.Net.Blackhole(0, 1)
	addr := h.addrOnPage(0, 0)
	h.run(1, "reader", func(p *sim.Proc, n *tempest.Node) {
		n.LoadF64(p, addr)
	})
	err := h.c.Env.Run()
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("want deadlock error, got: %v", err)
	}
	if !strings.Contains(err.Error(), "reader") || !strings.Contains(err.Error(), "blocking misses") {
		t.Fatalf("deadlock diagnostic lacks the dump:\n%v", err)
	}
	if h.c.Stats.TotalGiveUps() == 0 {
		t.Fatal("no give-up recorded")
	}
}

const time24h = 24 * 3600 * sim.Second
