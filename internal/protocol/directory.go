package protocol

import (
	"fmt"

	"hpfdsm/internal/memory"
	"hpfdsm/internal/network"
	"hpfdsm/internal/sim"
)

// dirEntry is the home-side directory state for one block: which nodes
// hold readonly copies (sharers) and which hold writable copies
// (writers; more than one is legal under the multiple-writer protocol).
// Requests against a block are serviced one at a time: while a request
// is collecting flushes or invalidation acknowledgements the entry is
// busy and later requests queue.
type dirEntry struct {
	sharers nodeset
	writers nodeset

	// stale marks nodes whose retained copy may hold stale words: when
	// a read collects flushes from two or more concurrent writers, each
	// writer keeps a readonly copy that never saw the *other* writers'
	// words. The protocol tolerates this (data-race-free programs only
	// read words they are entitled to), but the invariant checker's
	// data-agreement audit must not compare those copies against home.
	stale nodeset

	busy    bool
	cur     *dirReq
	pending int
	waitQ   []*dirReq
}

// newDirEntry allocates an entry with sets sized for an n-node cluster.
func newDirEntry(n int) *dirEntry {
	e := &dirEntry{}
	e.sharers, e.writers, e.stale = newNodesets(n)
	return e
}

// dirReq is one directory transaction. For remote requesters the reply
// is a message; for the home node's own faults (and local mk_writable
// work) the completion runs the local callback instead.
type dirReq struct {
	kind  network.Kind
	block int
	src   int
	local func(withData bool) // non-nil for home-local requests

	needData bool    // mk_writable: requester lacks the data
	agg      *mkwAgg // mk_writable aggregation, nil otherwise
}

// entry returns (creating if needed) the directory entry for block b,
// which must be homed at this node. A fresh entry reflects the initial
// tag state: home pages start writable at home.
func (np *nodeProto) entry(b int) *dirEntry {
	sp := np.n.Mem.Space()
	if sp.HomeOfBlock(b) != np.id {
		panic(fmt.Sprintf("protocol: node %d asked for directory entry of block %d homed at %d",
			np.id, b, sp.HomeOfBlock(b)))
	}
	e, ok := np.dir[b]
	if !ok {
		e = newDirEntry(len(np.p.nodes))
		switch np.n.Mem.Tag(b) {
		case memory.ReadWrite:
			e.writers.set(np.id)
		case memory.ReadOnly:
			e.sharers.set(np.id)
		}
		np.dir[b] = e
	}
	return e
}

// enqueue services r now, or queues it if the block's entry is busy.
// Requests against a block whose just-granted store has not retired
// (scHold, sequential consistency) are deferred briefly, except the
// holder's own — progress is guaranteed because the held store retires
// at the already-scheduled resume time.
func (np *nodeProto) enqueue(r *dirReq) {
	if np.scHold.get(r.block) && r.src != np.id {
		np.defers++
		np.n.Env.After(2*sim.Microsecond, func() {
			np.defers--
			np.enqueue(r)
		})
		return
	}
	e := np.entry(r.block)
	if e.busy {
		e.waitQ = append(e.waitQ, r)
		return
	}
	np.start(e, r)
}

// start begins servicing r: it collects remote copies (flushes from
// writers, invalidation acks from sharers) as the request type demands,
// then finishes immediately if nothing remote is outstanding.
func (np *nodeProto) start(e *dirEntry, r *dirReq) {
	mem := np.n.Mem
	mc := np.n.MC
	need := 0

	flushWriter := func(w int, invalidate bool) {
		if w == np.id {
			// Home's writes land directly in home memory; just
			// downgrade the tag.
			np.occupy(mc.TagChange)
			mem.ClearDirty(r.block)
			e.writers.clear(np.id)
			if invalidate {
				if h := np.heat(); h != nil {
					h.AddInval(r.block)
				}
				mem.SetTag(r.block, memory.Invalid)
			} else {
				mem.SetTag(r.block, memory.ReadOnly)
				e.sharers.set(np.id)
			}
			return
		}
		arg := int64(0)
		if invalidate {
			arg = 1
		}
		m := np.n.Net.NewMessage(np.id)
		m.Dst, m.Kind, m.Addr, m.Arg, m.Size = w, KPutDataReq, r.block, arg, ctrlSize
		np.send(m)
		need++
	}
	invalSharer := func(s int) {
		if s == np.id {
			np.occupy(mc.TagChange)
			if h := np.heat(); h != nil {
				h.AddInval(r.block)
			}
			mem.SetTag(r.block, memory.Invalid)
			e.sharers.clear(np.id)
			return
		}
		if np.coal != nil {
			// Invalidations are latency-tolerant under eager RC (the
			// requester's grant is collected at its next sync point, and
			// that sync gates on the grant, which gates on these acks —
			// so all of an epoch's invalidations land before its barrier
			// completes). A request burst arriving in one carrier emits
			// its whole invalidation fan-out in one event instant, so
			// the per-sharer buffers fill back-to-back and the engine
			// timer drains each as one carrier.
			np.occupy(mc.TagChange)
			np.coal.Append(s, KInval, r.block, 0, 0, nil, true)
			need++
			return
		}
		m := np.n.Net.NewMessage(np.id)
		m.Dst, m.Kind, m.Addr, m.Size = s, KInval, r.block, ctrlSize
		np.send(m)
		need++
	}

	switch r.kind {
	case KReadReq:
		// If two or more nodes hold modified words (the home's direct
		// writes count), the readonly copies the flushed writers keep
		// are mutually stale; record that for the data-agreement audit.
		holders := e.writers.count()
		if mem.Dirty(r.block) != 0 && !e.writers.has(np.id) {
			holders++
		}
		multiWriter := holders >= 2
		for w := e.writers.next(0); w >= 0; w = e.writers.next(w + 1) {
			if w != r.src {
				if multiWriter && w != np.id {
					e.stale.set(w)
				}
				flushWriter(w, false)
			}
		}
	case KWriteReq, KUpgradeReq, KMkWritableReq:
		for w := e.writers.next(0); w >= 0; w = e.writers.next(w + 1) {
			if w != r.src {
				flushWriter(w, true)
			}
		}
		if tree := np.p.tree; tree != nil {
			need += np.invalSharersTree(e, r, invalSharer)
		} else {
			for s := e.sharers.next(0); s >= 0; s = e.sharers.next(s + 1) {
				if s != r.src {
					invalSharer(s)
				}
			}
		}
	default:
		panic(fmt.Sprintf("protocol: directory cannot service kind %d", r.kind))
	}

	if need > 0 {
		e.busy = true
		e.cur = r
		e.pending = need
		return
	}
	np.finish(e, r)
}

// collectDone records one flush or invalidation acknowledgement for a
// busy entry; keeps indicates the responder retained a readonly copy.
func (np *nodeProto) collectDone(b, from int, keeps bool) {
	e := np.dir[b]
	if e == nil || !e.busy {
		panic(fmt.Sprintf("protocol: node %d got a collection response for idle block %d", np.id, b))
	}
	e.writers.clear(from)
	e.sharers.clear(from)
	if keeps {
		e.sharers.set(from)
	} else {
		e.stale.clear(from) // copy invalidated; staleness moot
	}
	e.pending--
	if e.pending > 0 {
		return
	}
	r := e.cur
	e.cur = nil
	e.busy = false
	np.finish(e, r)
	np.drain(b, e)
}

// drain services queued requests until the entry goes busy again.
func (np *nodeProto) drain(b int, e *dirEntry) {
	for !e.busy && len(e.waitQ) > 0 {
		r := e.waitQ[0]
		e.waitQ = e.waitQ[1:]
		np.occupy(np.n.MC.HandlerCost)
		np.start(e, r)
	}
}

// finish completes a serviced request: updates the directory masks and
// delivers the reply (message or local callback). Home memory is
// current at this point: all remote writers' dirty words were merged
// during collection.
func (np *nodeProto) finish(e *dirEntry, r *dirReq) {
	mem := np.n.Mem
	mc := np.n.MC

	blockData := func() []byte {
		d := np.n.Net.AllocBlock(np.id)
		copy(d, mem.BlockData(r.block))
		return d
	}

	switch r.kind {
	case KReadReq:
		e.sharers.set(r.src)
		e.stale.clear(r.src) // fresh, fully merged copy
		if r.local != nil {
			np.occupy(mc.TagChange)
			mem.SetTag(r.block, memory.ReadOnly)
			mem.ClearDirty(r.block)
			r.local(true)
			return
		}
		np.occupy(mc.BlockCopy)
		rm := np.n.Net.NewMessage(np.id)
		rm.Dst, rm.Kind, rm.Addr, rm.Data, rm.DataPooled = r.src, KReadResp, r.block, blockData(), true
		np.send(rm)

	case KWriteReq:
		e.writers.clearAll()
		e.writers.set(r.src)
		e.sharers.clearAll()
		e.stale.clearAll() // every other copy was just invalidated
		if r.local != nil {
			// Home-local write miss: home memory is the data and the
			// fault already opened the frame; keep the dirty mask (the
			// processor may have written during the transaction).
			np.occupy(mc.TagChange)
			mem.SetTag(r.block, memory.ReadWrite)
			r.local(true)
			return
		}
		np.occupy(mc.BlockCopy)
		rm := np.n.Net.NewMessage(np.id)
		rm.Dst, rm.Kind, rm.Addr, rm.Data, rm.DataPooled = r.src, KWriteResp, r.block, blockData(), true
		np.send(rm)

	case KUpgradeReq:
		hadCopy := e.sharers.has(r.src) || e.writers.has(r.src)
		e.sharers.clear(r.src)
		e.writers.set(r.src)
		if !hadCopy {
			// The grant ships fresh data; a retained-copy upgrade keeps
			// whatever staleness the copy already carried.
			e.stale.clear(r.src)
		}
		if r.local != nil {
			r.local(true)
			return
		}
		if np.coal != nil {
			// Grants for a request burst batch into one carrier per
			// requester (the engine timer drains them); data for an
			// invalidated-in-flight requester gathers straight from home
			// memory into the carrier buffer, with no intermediate
			// block-buffer allocation.
			var payload []byte
			if !hadCopy {
				np.occupy(mc.BlockCopy)
				payload = mem.BlockData(r.block)
			}
			np.occupy(mc.TagChange)
			np.coal.Append(r.src, KWriteGrant, r.block, 0, 0, payload, true)
			return
		}
		var data []byte
		if !hadCopy {
			// The requester was invalidated while its upgrade was in
			// flight; the grant must carry fresh data.
			np.occupy(mc.BlockCopy)
			data = blockData()
		}
		rm := np.n.Net.NewMessage(np.id)
		rm.Dst, rm.Kind, rm.Addr = r.src, KWriteGrant, r.block
		rm.Data, rm.DataPooled, rm.Size = data, data != nil, maxInt(len(data), ctrlSize)
		np.send(rm)

	case KMkWritableReq:
		e.writers.clearAll()
		e.writers.set(r.src)
		e.sharers.clearAll()
		e.stale.clearAll()
		r.agg.blockDone(np, r)

	default:
		panic(fmt.Sprintf("protocol: finish of unknown kind %d", r.kind))
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
