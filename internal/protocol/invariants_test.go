package protocol

import (
	"testing"

	"hpfdsm/internal/config"
	"hpfdsm/internal/memory"
	"hpfdsm/internal/sim"
	"hpfdsm/internal/tempest"
)

func TestInvariantsHoldAfterTraffic(t *testing.T) {
	h := newHarness(t, 4, 8, config.DualCPU)
	for id := 0; id < 4; id++ {
		id := id
		h.run(id, "w", func(p *sim.Proc, n *tempest.Node) {
			for r := 0; r < 3; r++ {
				for w := id; w < 96; w += 4 {
					n.StoreF64(p, h.base+8*w, float64(r+w))
				}
				h.c.Barrier(p, n)
				for w := 0; w < 96; w += 5 {
					n.LoadF64(p, h.base+8*w)
				}
				h.c.Barrier(p, n)
			}
		})
	}
	if err := h.c.Env.Run(); err != nil {
		t.Fatal(err)
	}
	if err := h.p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	census := h.p.TagCensus()
	if census[memory.ReadWrite]+census[memory.ReadOnly]+census[memory.Invalid] == 0 {
		t.Fatal("tag census empty")
	}
}

func TestInvariantsCatchPlantedViolations(t *testing.T) {
	h := newHarness(t, 2, 2, config.DualCPU)
	addr := h.addrOnPage(0, 0)
	h.run(1, "setup", func(p *sim.Proc, n *tempest.Node) {
		n.StoreF64(p, addr, 1) // node 1 becomes a directory writer
		n.WaitPending(p)
	})
	if err := h.c.Env.Run(); err != nil {
		t.Fatal(err)
	}
	if err := h.p.CheckInvariants(); err != nil {
		t.Fatalf("clean state flagged: %v", err)
	}

	// Plant an untracked dirty copy at node 0 (which is the home of
	// page 0, so use a block homed at node 1's page instead).
	addr2 := h.addrOnPage(1, 0)
	b2 := h.space.Block(addr2)
	h.c.Nodes[0].Mem.SetTag(b2, memory.ReadWrite)
	h.c.Nodes[0].Mem.WriteF64(addr2, 9) // sets a dirty bit, no directory record
	if err := h.p.CheckInvariants(); err == nil {
		t.Fatal("untracked dirty copy not flagged")
	}
	h.c.Nodes[0].Mem.ClearDirty(b2)
	h.c.Nodes[0].Mem.SetTag(b2, memory.Invalid)

	// Plant an untracked readonly copy.
	h.c.Nodes[0].Mem.SetTag(b2, memory.ReadOnly)
	if err := h.p.CheckInvariants(); err == nil {
		t.Fatal("untracked readonly copy not flagged")
	}
}
