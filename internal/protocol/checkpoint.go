// Barrier-consistent checkpoint capture and restore.
//
// The crash-recovery layer snapshots the protocol at synchronization
// epochs where the whole machine is provably quiescent: nothing in
// flight on the wire, no handler invocations queued, no deferred
// protocol work armed, no blocking miss outstanding, no directory
// transaction collecting, and no coalescer buffer open. At such an
// instant every block's truth is fully captured by memory images, tags,
// dirty masks, and directory masks — Restore rebuilds an equivalent
// machine on a fresh cluster and the run resumes as if the epoch had
// just completed.
package protocol

import (
	"fmt"
	"sort"

	"hpfdsm/internal/checkpoint"
	"hpfdsm/internal/memory"
	"hpfdsm/internal/sim"
)

// Quiescent reports whether the cluster is checkpointable right now.
// Intended to be called at a barrier's all-arrived instant; mid-epoch
// it is almost always false.
func (p *Proto) Quiescent() bool {
	net := p.C.Net
	if net.Inflight() != 0 || !net.ChannelsQuiescent() {
		return false
	}
	for _, np := range p.nodes {
		if np.defers != 0 {
			return false
		}
		if np.n.HandlersQueued() != 0 || np.n.Pending() != 0 {
			return false
		}
		if len(np.fill) != 0 {
			return false
		}
		if np.ccRecv.Value() != np.ccExpected {
			return false
		}
		if np.coal != nil && np.coal.PendingAny() {
			return false
		}
		if len(np.relay) != 0 {
			return false
		}
		// Pure any-check over the directory: quiescence is the
		// conjunction over all entries, order-free, mutation-free.
		//simlint:commutative
		for _, e := range np.dir {
			if e.busy || e.pending != 0 || len(e.waitQ) != 0 {
				return false
			}
		}
	}
	return true
}

// Capture snapshots the cluster's protocol-visible state. The caller
// must have established quiescence (Quiescent); a busy directory entry
// here is a bug, not a race.
func (p *Proto) Capture() *checkpoint.Snapshot {
	c := p.C
	sp := c.Space
	nb := sp.NumBlocks()
	npg := sp.NumPages()
	s := &checkpoint.Snapshot{
		Epoch:      c.Epoch(),
		SimTime:    int64(c.Env.Now()),
		TimerStart: int64(c.TimerStart),
		ReduceGen:  c.ReduceGen(),
		Journal:    append([]float64(nil), c.ReduceJournal...),
	}
	for _, np := range p.nodes {
		mem := np.n.Mem
		ns := checkpoint.NodeState{
			Tags:       make([]byte, nb),
			Dirty:      make([]uint16, nb),
			Mapped:     make([]byte, npg),
			CCRecv:     np.ccRecv.Value(),
			CCExpected: np.ccExpected,
			Stats:      *np.n.St,
		}
		for b := 0; b < nb; b++ {
			ns.Tags[b] = byte(mem.Tag(b))
			ns.Dirty[b] = mem.Dirty(b)
			// A block matters if this node is its home (home memory is
			// the authoritative copy) or holds a live or dirty cached
			// copy; everything else is reconstructible garbage.
			if sp.HomeOfBlock(b) == np.id || mem.Tag(b) != memory.Invalid || mem.Dirty(b) != 0 {
				ns.Blocks = append(ns.Blocks, checkpoint.BlockImage{
					Block: int32(b),
					Data:  append([]byte(nil), mem.BlockData(b)...),
				})
			}
		}
		for pg := 0; pg < npg; pg++ {
			if mem.Mapped(pg) {
				ns.Mapped[pg] = 1
			}
		}
		blocks := make([]int, 0, len(np.dir))
		for b := range np.dir {
			blocks = append(blocks, b)
		}
		sort.Ints(blocks)
		for _, b := range blocks {
			e := np.dir[b]
			if e.busy || e.pending != 0 || len(e.waitQ) != 0 {
				panic(fmt.Sprintf("protocol: capture with busy directory entry for block %d on node %d", b, np.id))
			}
			ns.Dir = append(ns.Dir, checkpoint.DirEntry{
				Block:   int32(b),
				Sharers: append([]uint64(nil), e.sharers.words()...),
				Writers: append([]uint64(nil), e.writers.words()...),
				Stale:   append([]uint64(nil), e.stale.words()...),
			})
		}
		keys := make([][2]int, 0, len(np.iwDone))
		for k := range np.iwDone {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i][0] != keys[j][0] {
				return keys[i][0] < keys[j][0]
			}
			return keys[i][1] < keys[j][1]
		})
		for _, k := range keys {
			ns.IWDone = append(ns.IWDone, checkpoint.IWKey{A: int32(k[0]), B: int32(k[1])})
		}
		ns.CCFrames = packFlags(np.ccFrames)
		ns.CCTouched = packFlags(np.ccTouched)
		ns.SCHold = packFlags(np.scHold)
		s.Nodes = append(s.Nodes, ns)
	}
	return s
}

// Restore installs a snapshot on a freshly built cluster (same machine
// configuration, no traffic yet). It rebuilds memory images, tags,
// dirty masks, directory state, and the compiler-directed transfer
// bookkeeping, and rebases the cluster's epoch, reduction generation,
// journal, and timer start.
func (p *Proto) Restore(s *checkpoint.Snapshot) error {
	c := p.C
	sp := c.Space
	nb := sp.NumBlocks()
	npg := sp.NumPages()
	if len(s.Nodes) != len(p.nodes) {
		return fmt.Errorf("protocol: snapshot has %d nodes, cluster has %d", len(s.Nodes), len(p.nodes))
	}
	for i, np := range p.nodes {
		ns := &s.Nodes[i]
		if len(ns.Tags) != nb || len(ns.Dirty) != nb || len(ns.Mapped) != npg {
			return fmt.Errorf("protocol: snapshot node %d sized for a different segment (%d blocks, %d pages; want %d, %d)",
				i, len(ns.Tags), len(ns.Mapped), nb, npg)
		}
		mem := np.n.Mem
		for _, bi := range ns.Blocks {
			b := int(bi.Block)
			if b < 0 || b >= nb || len(bi.Data) != sp.BlockSize() {
				return fmt.Errorf("protocol: snapshot node %d has bad block image %d (%d bytes)", i, b, len(bi.Data))
			}
			mem.InstallBlock(b, bi.Data)
		}
		for b := 0; b < nb; b++ {
			mem.SetTag(b, memory.Tag(ns.Tags[b]))
			mem.SetDirtyMask(b, ns.Dirty[b])
		}
		for pg := 0; pg < npg; pg++ {
			if ns.Mapped[pg] != 0 {
				mem.SetMapped(pg)
			}
		}
		np.dir = make(map[int]*dirEntry, len(ns.Dir))
		nnodes := len(p.nodes)
		words := nsWords(nnodes)
		for _, d := range ns.Dir {
			b := int(d.Block)
			if b < 0 || b >= nb || sp.HomeOfBlock(b) != np.id {
				return fmt.Errorf("protocol: snapshot node %d has directory entry for foreign block %d", i, b)
			}
			if len(d.Sharers) > words || len(d.Writers) > words || len(d.Stale) > words {
				return fmt.Errorf("protocol: snapshot node %d directory entry for block %d sized for a larger cluster", i, b)
			}
			e := newDirEntry(nnodes)
			e.sharers.loadWords(d.Sharers)
			e.writers.loadWords(d.Writers)
			e.stale.loadWords(d.Stale)
			np.dir[b] = e
		}
		np.iwDone = make(map[[2]int]bool, len(ns.IWDone))
		for _, k := range ns.IWDone {
			np.iwDone[[2]int{int(k.A), int(k.B)}] = true
		}
		np.ccFrames = unpackFlags(ns.CCFrames, nb)
		np.ccTouched = unpackFlags(ns.CCTouched, nb)
		np.scHold = unpackFlags(ns.SCHold, nb)
		np.ccRecv.Reset()
		np.ccRecv.Add(ns.CCRecv)
		np.ccExpected = ns.CCExpected
		*np.n.St = ns.Stats
	}
	c.TimerStart = sim.Time(s.TimerStart)
	c.RestoreEpoch(s.Epoch, s.ReduceGen, s.Journal)
	return nil
}

func packFlags(f blockFlags) []byte {
	out := make([]byte, len(f))
	for i, v := range f {
		if v {
			out[i] = 1
		}
	}
	return out
}

func unpackFlags(b []byte, minLen int) blockFlags {
	n := len(b)
	if n < minLen {
		n = minLen
	}
	f := make(blockFlags, n)
	for i, v := range b {
		f[i] = v != 0
	}
	return f
}
