package protocol

import (
	"strings"
	"testing"

	"hpfdsm/internal/config"
	"hpfdsm/internal/memory"
	"hpfdsm/internal/sim"
	"hpfdsm/internal/tempest"
)

// newTreeHarness is newHarness under the tree topology (default radix),
// optionally with fault injection active.
func newTreeHarness(t *testing.T, nodes, pages int, f *config.Faults) *harness {
	t.Helper()
	mc := config.Default().WithNodes(nodes).WithCPUMode(config.DualCPU).WithTopology(config.TreeTopo)
	if f != nil {
		mc = mc.WithFaults(*f)
	}
	sp := memory.NewSpace(mc)
	base := sp.Alloc("arr", pages*mc.PageSize)
	c := tempest.NewCluster(sim.NewEnv(), sp)
	return &harness{c: c, p: Attach(c), base: base, space: sp}
}

func TestTreeInvalFanOutRound(t *testing.T) {
	// Sixteen nodes (four radix-4 clusters), every node reads one block
	// homed at node 0, then node 1 upgrades it. The home must open one
	// relay round per multi-sharer cluster — cluster 0 contributes
	// sharers {2,3} (home is local, the writer is the requester), the
	// other three contribute four sharers each — and every reader must
	// observe the new value afterwards. Barrier-instant audits run
	// throughout (the -check auditor with tree invalidation on), and the
	// quiescent audit must pass at the end.
	h := newTreeHarness(t, 16, 2, nil)
	h.c.BarrierCheck = h.p.CheckAtBarrier
	addr := h.addrOnPage(0, 0)
	got := make([]float64, 16)
	for id := 0; id < 16; id++ {
		id := id
		h.run(id, "n", func(p *sim.Proc, n *tempest.Node) {
			n.LoadF64(p, addr)
			n.WaitPending(p)
			h.c.Barrier(p, n)
			if id == 1 {
				n.StoreF64(p, addr, 2.5)
			}
			n.WaitPending(p)
			h.c.Barrier(p, n)
			got[id] = n.LoadF64(p, addr)
			n.WaitPending(p)
			h.c.Barrier(p, n)
		})
	}
	if err := h.c.Env.Run(); err != nil {
		t.Fatal(err)
	}
	if err := h.c.CheckErr(); err != nil {
		t.Fatal(err)
	}
	if h.c.BarrierChecks() == 0 {
		t.Fatal("no barrier audits ran")
	}
	if err := h.p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for id, v := range got {
		if v != 2.5 {
			t.Fatalf("node %d read %v after the upgrade, want 2.5", id, v)
		}
	}
	if rounds := h.p.InvalRounds(); rounds != 4 {
		t.Fatalf("relay rounds = %d, want 4 (one per multi-sharer cluster)", rounds)
	}
}

func TestTreeInvalSkipsCrashedSharer(t *testing.T) {
	// A sharer that crashed before the invalidation round must not stall
	// it: its copy died with the node, so the home retires it from the
	// directory up front and the cluster's relay round runs over the
	// remaining live leaves.
	h := newTreeHarness(t, 16, 2, nil)
	addr := h.addrOnPage(0, 0)
	b := h.space.Block(addr)
	for id := 0; id < 16; id++ {
		id := id
		h.run(id, "n", func(p *sim.Proc, n *tempest.Node) {
			n.LoadF64(p, addr)
			n.WaitPending(p)
			h.c.Barrier(p, n)
			switch id {
			case 6:
				// Crash-stop immediately after the barrier: node 6 is a
				// registered sharer in cluster 1 but not its relay (the
				// home picks the lowest live sharer, node 4).
				h.c.Net.MarkDead(6)
			case 1:
				p.Sleep(200 * sim.Microsecond) // let the crash land first
				n.StoreF64(p, addr, 3.25)
				n.WaitPending(p) // completes only if the round closes
			}
		})
	}
	if err := h.c.Env.Run(); err != nil {
		t.Fatal(err)
	}
	home := h.p.nodes[0]
	e := home.dir[b]
	if e == nil {
		t.Fatal("home has no directory entry for the contested block")
	}
	if e.busy || e.pending != 0 {
		t.Fatalf("round did not close: busy=%v pending=%d", e.busy, e.pending)
	}
	if e.sharers.has(6) {
		t.Fatal("crashed sharer 6 still in the directory sharer set")
	}
	for _, id := range []int{2, 3, 4, 5, 7, 8, 11, 12, 15} {
		if tag := h.c.Nodes[id].Mem.Tag(b); tag != memory.Invalid {
			t.Fatalf("live sharer %d still holds tag %v after the round", id, tag)
		}
	}
	if rounds := h.p.InvalRounds(); rounds != 4 {
		t.Fatalf("relay rounds = %d, want 4 (cluster 1 runs with 3 live leaves)", rounds)
	}
}

func TestTreeInvalRelayCrashMidRoundDiagnosed(t *testing.T) {
	// The relay crashes while its KInvalTree is on the wire: the message
	// vanishes at delivery, the home's pending count can never drain, and
	// the layered failure machinery must (a) escalate through the probe
	// path and declare the relay dead, and (b) end the run with a
	// diagnostic naming the stuck transaction — never hang silently.
	h := newTreeHarness(t, 16, 2, &config.Faults{
		Drop: 1e-9, Seed: 7,
		RetransmitTimeout: 50 * sim.Microsecond,
		MaxRetries:        3,
	})
	h.c.Env.SetWatchdog(50*sim.Millisecond, h.watchdogDump)
	var detected int
	var reason string
	h.c.Net.OnDeath = func(node int, why string) { detected, reason = node, why }
	addr := h.addrOnPage(0, 0)
	for id := 0; id < 16; id++ {
		id := id
		h.run(id, "n", func(p *sim.Proc, n *tempest.Node) {
			n.LoadF64(p, addr)
			n.WaitPending(p)
			h.c.Barrier(p, n)
			if id == 1 {
				p.Sleep(100 * sim.Microsecond)
				n.StoreF64(p, addr, 4.5)
				n.WaitPending(p) // blocks forever: cluster 1 never answers
			}
		})
	}
	// Kill node 4 (cluster 1's relay) the instant the home has opened
	// its relay rounds: the KInvalTree is then in flight and vanishes.
	h.c.Env.Spawn("killer", func(p *sim.Proc) {
		for i := 0; i < 1_000_000; i++ {
			if h.p.nodes[0].invalRounds > 0 {
				h.c.Net.MarkDead(4)
				return
			}
			p.Sleep(sim.Microsecond)
		}
	})
	err := h.c.Env.Run()
	if err == nil {
		t.Fatal("expected a deadlock or watchdog diagnostic, run completed")
	}
	if detected != 4 {
		t.Fatalf("failure detector declared node %d dead, want relay 4 (reason %q)", detected, reason)
	}
	if !strings.Contains(reason, "probes") {
		t.Fatalf("death verdict did not come from the probe path: %q", reason)
	}
	if !strings.Contains(err.Error(), "directory block") || !strings.Contains(err.Error(), "busy") {
		t.Fatalf("diagnostic does not name the stuck directory transaction:\n%v", err)
	}
}
