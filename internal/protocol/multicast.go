// Multicast fan-out invalidation for the tree topology.
//
// Under the flat protocol a block's home unicasts one KInval per
// sharer and collects one KInvalAck each: 2S messages all serializing
// through the home's protocol engine. At 1024 nodes a widely shared
// block makes the home the machine's bottleneck. The tree topology
// instead groups remote sharers by cluster (topo.Tree coordinates):
// each cluster holding two or more sharers gets ONE KInvalTree to a
// relay (the cluster's lowest live sharer), which invalidates itself,
// fans KInvalFwd out to its sibling leaves, combines their
// KInvalAckFwd responses, and returns ONE KInvalAckTree carrying the
// set of cleanly invalidated leaves. The home's occupancy drops from
// O(S) to O(clusters), and the per-cluster legs run in parallel.
//
// Data words cannot diverge from the flat protocol: a leaf holding
// dirty words flushes them in a KPutDataResp straight to the home
// (exactly the message the flat path would have produced), so home
// memory merges the same bytes in either topology. Only clean
// invalidations ride the combined ack.
//
// Completion counting is arrival-order independent: the home's
// pending count is seeded with the number of live relayed sharers;
// each direct KPutDataResp retires one, and a KInvalAckTree retires
// popcount(cleanLeaves). Whichever order the two ack species arrive
// in, pending reaches zero exactly when every sharer has been heard
// from.
//
// Tree invalidation messages travel standalone (never as coalescer
// segments): a relay round is already a batching mechanism, and
// keeping it off the carrier path means the PR 5 coalescer and the
// PR 1 reliable layer see ordinary control messages they already know
// how to retransmit.
package protocol

import (
	"fmt"
	mbits "math/bits"

	"hpfdsm/internal/memory"
	"hpfdsm/internal/network"
	"hpfdsm/internal/tempest"
)

// relayState tracks one in-progress fan-out round at a relay node.
// The home serializes directory transactions per block, so at most
// one round per block can involve this relay at a time.
type relayState struct {
	home   int // the requesting home node (gets the combined ack)
	expect int // leaves to hear from, including the relay itself
	got    int
	clean  uint64 // leaf indices invalidated without a dirty flush
}

// invalSharersTree performs the home side of the fan-out: it buckets
// e's remote sharers (excluding r.src) by cluster, invalidates the
// home's own copy locally, sends singleton clusters a plain KInval via
// invalOne (which does its own need accounting), drops sharers already
// declared dead (their copies died with them), and opens one relay
// round per multi-sharer cluster. It returns the number of relayed
// sharers, which the caller adds to the entry's pending count.
func (np *nodeProto) invalSharersTree(e *dirEntry, r *dirReq, invalOne func(s int)) int {
	tr := np.p.tree
	if np.clusterMask == nil {
		np.clusterMask = make([]uint64, tr.Clusters())
	}
	touched := np.clusterScratch[:0]
	for s := e.sharers.next(0); s >= 0; s = e.sharers.next(s + 1) {
		if s == r.src {
			continue
		}
		if s == np.id {
			invalOne(s) // home-local: tag downgrade, no message
			continue
		}
		c := tr.ClusterOf(s)
		if np.clusterMask[c] == 0 {
			touched = append(touched, c)
		}
		np.clusterMask[c] |= 1 << uint(tr.LeafOf(s))
	}
	np.clusterScratch = touched

	extra := 0
	for _, c := range touched {
		mask := np.clusterMask[c]
		np.clusterMask[c] = 0
		base := tr.ClusterBase(c)
		live := mask
		for m := mask; m != 0; {
			l := mbits.TrailingZeros64(m)
			m &^= 1 << uint(l)
			if np.n.Net.Dead(base + l) {
				// A crashed sharer's copy is gone; retire it from the
				// directory now so the round can complete without it.
				live &^= 1 << uint(l)
				e.writers.clear(base + l)
				e.sharers.clear(base + l)
				e.stale.clear(base + l)
			}
		}
		switch mbits.OnesCount64(live) {
		case 0:
			continue
		case 1:
			// One live sharer in the cluster: a relay would only add a
			// hop. The flat unicast (and its ack path) is already right.
			invalOne(base + mbits.TrailingZeros64(live))
			continue
		}
		relay := base + mbits.TrailingZeros64(live)
		m := np.n.Net.NewMessage(np.id)
		m.Dst, m.Kind, m.Addr, m.Arg, m.Size = relay, KInvalTree, r.block, int64(live), ctrlSize
		np.send(m)
		extra += mbits.OnesCount64(live)
		np.invalRounds++
	}
	return extra
}

// hInvalTree runs at the relay: invalidate the relay's own copy, fan
// the rest of the leaf set out as KInvalFwd, and start combining acks.
func (np *nodeProto) hInvalTree(hc *tempest.HContext, m *network.Message) {
	b := m.Addr
	if np.scHold.get(b) {
		np.deferMsg(m, np.hInvalTree)
		return
	}
	tr := np.p.tree
	mc := np.n.MC
	np.occupy(mc.HandlerCost)
	leaves := uint64(m.Arg)
	if np.relay == nil {
		np.relay = make(map[int]*relayState)
	}
	if _, dup := np.relay[b]; dup {
		panic(fmt.Sprintf("protocol: node %d got overlapping relay rounds for block %d", np.id, b))
	}
	rs := &relayState{home: m.Src, expect: mbits.OnesCount64(leaves)}
	np.relay[b] = rs

	base := tr.ClusterBase(tr.ClusterOf(np.id))
	myLeaf := uint(tr.LeafOf(np.id))
	if leaves&(1<<myLeaf) != 0 {
		// The relay is itself a sharer (it always is: the home picks
		// the cluster's lowest live sharer). Invalidate like hInval:
		// dirty words flush straight to the home, clean copies join
		// the combined ack.
		if h := np.heat(); h != nil {
			h.AddInval(b)
		}
		mem := np.n.Mem
		np.occupy(mc.TagChange)
		if mask := mem.Dirty(b); mask != 0 {
			np.occupy(mc.BlockCopy)
			data := np.n.Net.AllocBlock(np.id)
			copy(data, mem.BlockData(b))
			mem.SetTag(b, memory.Invalid)
			mem.ClearDirty(b)
			rm := np.n.Net.NewMessage(np.id)
			rm.Dst, rm.Kind, rm.Addr = rs.home, KPutDataResp, b
			rm.Arg, rm.Arg2, rm.Data, rm.DataPooled = int64(mask), 0, data, true
			np.send(rm)
		} else {
			mem.SetTag(b, memory.Invalid)
			rs.clean |= 1 << myLeaf
		}
		rs.got++
	}
	for rest := leaves &^ (1 << myLeaf); rest != 0; {
		l := mbits.TrailingZeros64(rest)
		rest &^= 1 << uint(l)
		fm := np.n.Net.NewMessage(np.id)
		fm.Dst, fm.Kind, fm.Addr, fm.Arg2, fm.Size = base+l, KInvalFwd, b, int64(rs.home), ctrlSize
		np.send(fm)
	}
	np.maybeCloseRelay(b, rs)
}

// hInvalFwd runs at a fan-out leaf: the relay (m.Src) wants our copy
// of the block gone on behalf of the home (m.Arg2). Dirty words flush
// straight to the home; the ack back to the relay says which case ran.
func (np *nodeProto) hInvalFwd(hc *tempest.HContext, m *network.Message) {
	b := m.Addr
	if np.scHold.get(b) {
		np.deferMsg(m, np.hInvalFwd)
		return
	}
	if h := np.heat(); h != nil {
		h.AddInval(b)
	}
	mem := np.n.Mem
	mc := np.n.MC
	np.occupy(mc.HandlerCost + mc.TagChange)
	dirtyFlag := int64(0)
	if mask := mem.Dirty(b); mask != 0 {
		np.occupy(mc.BlockCopy)
		data := np.n.Net.AllocBlock(np.id)
		copy(data, mem.BlockData(b))
		mem.SetTag(b, memory.Invalid)
		mem.ClearDirty(b)
		rm := np.n.Net.NewMessage(np.id)
		rm.Dst, rm.Kind, rm.Addr = int(m.Arg2), KPutDataResp, b
		rm.Arg, rm.Arg2, rm.Data, rm.DataPooled = int64(mask), 0, data, true
		np.send(rm)
		dirtyFlag = 1
	} else {
		mem.SetTag(b, memory.Invalid)
	}
	am := np.n.Net.NewMessage(np.id)
	am.Dst, am.Kind, am.Addr, am.Arg, am.Size = m.Src, KInvalAckFwd, b, dirtyFlag, ctrlSize
	np.send(am)
}

// hInvalAckFwd runs at the relay: one leaf has answered.
func (np *nodeProto) hInvalAckFwd(hc *tempest.HContext, m *network.Message) {
	b := m.Addr
	rs := np.relay[b]
	if rs == nil {
		panic(fmt.Sprintf("protocol: node %d got a fan-out ack for block %d with no relay round open", np.id, b))
	}
	np.occupy(np.n.MC.HandlerCost)
	if m.Arg == 0 {
		rs.clean |= 1 << uint(np.p.tree.LeafOf(m.Src))
	}
	rs.got++
	np.maybeCloseRelay(b, rs)
}

// maybeCloseRelay sends the combined ack once every leaf answered.
func (np *nodeProto) maybeCloseRelay(b int, rs *relayState) {
	if rs.got < rs.expect {
		return
	}
	delete(np.relay, b)
	am := np.n.Net.NewMessage(np.id)
	am.Dst, am.Kind, am.Addr, am.Arg, am.Size = rs.home, KInvalAckTree, b, int64(rs.clean), ctrlSize
	np.send(am)
}

// hInvalAckTree runs at the home: one cluster's combined clean-ack.
// Dirty leaves in the same round are (or will be) retired one at a
// time by their direct KPutDataResp flushes; the two species commute.
func (np *nodeProto) hInvalAckTree(hc *tempest.HContext, m *network.Message) {
	np.occupy(np.n.MC.HandlerCost)
	b := m.Addr
	e := np.dir[b]
	if e == nil || !e.busy {
		panic(fmt.Sprintf("protocol: node %d got a combined inval ack for idle block %d", np.id, b))
	}
	base := np.p.tree.ClusterBase(np.p.tree.ClusterOf(m.Src))
	for leaves := uint64(m.Arg); leaves != 0; {
		l := mbits.TrailingZeros64(leaves)
		leaves &^= 1 << uint(l)
		id := base + l
		e.writers.clear(id)
		e.sharers.clear(id)
		e.stale.clear(id)
		e.pending--
	}
	if e.pending > 0 {
		return
	}
	r := e.cur
	e.cur = nil
	e.busy = false
	np.finish(e, r)
	np.drain(b, e)
}

// InvalRounds returns how many multicast fan-out rounds the cluster's
// homes opened (0 under the flat topology) — a diagnostic for the
// scale experiment, not checkpointed state.
func (p *Proto) InvalRounds() int64 {
	var n int64
	for _, np := range p.nodes {
		n += np.invalRounds
	}
	return n
}
