package protocol

import (
	"fmt"

	"hpfdsm/internal/memory"
)

// CheckInvariants audits the quiescent cluster state (call it after the
// simulation drains, with no transactions in flight):
//
//  1. No directory entry is mid-transaction (busy, pending work, or a
//     non-empty wait queue).
//  2. A word is dirty at no more than one node (the race-free
//     multiple-writer discipline).
//  3. Every node holding dirty words for a block is recorded in the
//     block's directory writer set — otherwise its updates could never
//     be collected.
//  4. A node holding a readonly copy is recorded as a sharer or writer,
//     unless the copy was installed by an advisory prefetch racing a
//     later invalidation (readonly copies the directory does not know
//     about cannot receive invalidations, so this is flagged).
//
// Compiler-controlled frames deliberately violate *tag*/directory
// correspondence in the readwrite direction (readers hold RW frames the
// directory never sees), so RW tags without directory entries are legal
// under the Section 4.2 contract and not flagged.
func (p *Proto) CheckInvariants() error {
	sp := p.C.Space
	nb := sp.NumBlocks()
	for b := 0; b < nb; b++ {
		home := p.nodes[sp.HomeOfBlock(b)]
		e, ok := home.dir[b]
		if ok {
			if e.busy || e.pending != 0 || len(e.waitQ) != 0 || e.cur != nil {
				return fmt.Errorf("block %d: directory entry not quiescent (busy=%v pending=%d queued=%d)",
					b, e.busy, e.pending, len(e.waitQ))
			}
		}
		var writers uint64
		if ok {
			writers = e.writers
		}
		var sharers uint64
		if ok {
			sharers = e.sharers
		}
		var dirtyMask uint16
		for i, np := range p.nodes {
			d := np.n.Mem.Dirty(b)
			if d != 0 {
				if d&dirtyMask != 0 {
					return fmt.Errorf("block %d: overlapping dirty words across nodes (mask %016b at node %d)", b, d, i)
				}
				dirtyMask |= d
				if writers&bit(i) == 0 && sp.HomeOfBlock(b) != i {
					return fmt.Errorf("block %d: node %d holds dirty words but is not a directory writer", b, i)
				}
			}
			if np.n.Mem.Tag(b) == memory.ReadOnly && (writers|sharers)&bit(i) == 0 && sp.HomeOfBlock(b) != i {
				return fmt.Errorf("block %d: node %d holds an untracked readonly copy", b, i)
			}
		}
	}
	return nil
}

// TagCensus counts block tags across the cluster (diagnostics).
func (p *Proto) TagCensus() map[memory.Tag]int {
	out := map[memory.Tag]int{}
	nb := p.C.Space.NumBlocks()
	for _, np := range p.nodes {
		for b := 0; b < nb; b++ {
			out[np.n.Mem.Tag(b)]++
		}
	}
	return out
}
