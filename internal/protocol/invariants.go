package protocol

import (
	"bytes"
	"fmt"
	"sort"
	"strings"

	"hpfdsm/internal/memory"
)

// The invariant audit runs in two modes.
//
// Quiescent mode (CheckInvariants) assumes the simulation has drained:
// no transactions are in flight, so a busy directory entry is itself an
// error and every invariant applies to every block.
//
// Barrier mode (CheckAtBarrier) runs at the instant the last node
// arrives at a barrier or reduction. The release-consistency contract
// guarantees each node drained its own pending transactions before
// arriving, but traffic the contract does not track can still be in
// flight: advisory prefetches, directory transactions started by those
// prefetches, and the fire-and-forget messages of compiler-directed
// transfers (send/flush data, KCCFlushDir repoints). Barrier mode
// therefore skips blocks whose directory entry is mid-transaction and
// skips the directory/data checks for blocks that ever took part in a
// compiler-controlled transfer — those blocks' consistency is governed
// by the Section 4.2 contract, not by the directory.
//
// The invariants:
//
//  1. (quiescent only) No directory entry is mid-transaction (busy,
//     pending work, or a non-empty wait queue).
//  2. A word is dirty at no more than one node (the race-free
//     multiple-writer discipline).
//  3. Every node holding dirty words for a block is recorded in the
//     block's directory writer set — otherwise its updates could never
//     be collected.
//  4. A node holding a readonly copy is recorded as a sharer or writer,
//     unless the copy was installed by an advisory prefetch racing a
//     later invalidation (readonly copies the directory does not know
//     about cannot receive invalidations, so this is flagged).
//  5. Data agreement: every tracked readonly copy matches home memory
//     on words no node holds dirty. Copies the directory marked stale
//     (multi-writer flush leftovers, see dirEntry.stale) are exempt.
//
// Compiler-controlled frames deliberately violate *tag*/directory
// correspondence in the readwrite direction (readers hold RW frames the
// directory never sees), so RW tags without directory entries are legal
// under the Section 4.2 contract and not flagged.
func (p *Proto) audit(quiescent bool) error {
	sp := p.C.Space
	nb := sp.NumBlocks()
	bs := sp.BlockSize()
	for b := 0; b < nb; b++ {
		homeID := sp.HomeOfBlock(b)
		home := p.nodes[homeID]
		e, ok := home.dir[b]
		if ok && (e.busy || e.pending != 0 || len(e.waitQ) != 0 || e.cur != nil) {
			if quiescent {
				return fmt.Errorf("block %d%s: directory entry not quiescent (busy=%v pending=%d queued=%d)",
					b, p.blockInfo(b), e.busy, e.pending, len(e.waitQ))
			}
			continue // mid-transaction at a barrier instant; nothing to audit
		}
		var writers, sharers, stale nodeset
		if ok {
			writers = e.writers
			sharers = e.sharers
			stale = e.stale
		}
		cc := p.isCC(b)
		var dirtyMask, allDirty uint16
		for _, np := range p.nodes {
			allDirty |= np.n.Mem.Dirty(b)
		}
		for i, np := range p.nodes {
			d := np.n.Mem.Dirty(b)
			if d != 0 {
				if d&dirtyMask != 0 {
					return fmt.Errorf("block %d%s: overlapping dirty words across nodes (mask %016b at node %d)", b, p.blockInfo(b), d, i)
				}
				dirtyMask |= d
				if !writers.has(i) && homeID != i && (quiescent || !cc) {
					return fmt.Errorf("block %d%s: node %d holds dirty words but is not a directory writer", b, p.blockInfo(b), i)
				}
			}
			if np.n.Mem.Tag(b) != memory.ReadOnly || homeID == i {
				continue
			}
			if !writers.has(i) && !sharers.has(i) {
				if quiescent || !cc {
					return fmt.Errorf("block %d%s: node %d holds an untracked readonly copy", b, p.blockInfo(b), i)
				}
				continue
			}
			// Invariant 5: data agreement of the tracked readonly copy.
			if cc || !sharers.has(i) || stale.has(i) {
				continue
			}
			hd := home.n.Mem.BlockData(b)
			cd := np.n.Mem.BlockData(b)
			for w := 0; w < bs/8; w++ {
				if allDirty&(1<<uint(w)) != 0 {
					continue // legitimately divergent: someone owns this word
				}
				if !bytes.Equal(hd[w*8:w*8+8], cd[w*8:w*8+8]) {
					return fmt.Errorf("block %d word %d%s: node %d's readonly copy disagrees with home %d (copy %x, home %x)",
						b, w, p.blockInfo(b), i, homeID, cd[w*8:w*8+8], hd[w*8:w*8+8])
				}
			}
		}
	}
	return nil
}

// blockInfo renders the optional BlockInfo provenance for a block,
// bracketed for inline use in an audit message ("" when no provider is
// installed or it has nothing to say).
func (p *Proto) blockInfo(b int) string {
	if p.BlockInfo == nil {
		return ""
	}
	if s := p.BlockInfo(b); s != "" {
		return " [" + s + "]"
	}
	return ""
}

// isCC reports whether any node ever moved block b through a
// compiler-controlled transfer (opened a frame, or sent/received it via
// send/flush). Such blocks' consistency is the Section 4.2 contract's
// business; directory-based audits skip them at barrier instants.
func (p *Proto) isCC(b int) bool {
	for _, np := range p.nodes {
		if np.ccFrames.get(b) || np.ccTouched.get(b) {
			return true
		}
	}
	return false
}

// CheckInvariants audits the quiescent cluster state (call it after the
// simulation drains, with no transactions in flight). See audit.
func (p *Proto) CheckInvariants() error { return p.audit(true) }

// CheckAtBarrier audits the cluster at a barrier or reduction instant,
// tolerating traffic that may legally be in flight. See audit.
func (p *Proto) CheckAtBarrier() error { return p.audit(false) }

// DumpOutstanding renders each node's in-flight protocol work: blocking
// misses awaiting data, pending non-blocking transactions, unsatisfied
// compiler-controlled receives, and busy directory entries. Used by the
// stall watchdog to turn a hang into a diagnosis.
func (p *Proto) DumpOutstanding() string {
	var out strings.Builder
	for _, np := range p.nodes {
		var lines []string
		if len(np.fill) > 0 {
			var blocks []int
			for b := range np.fill {
				blocks = append(blocks, b)
			}
			sort.Ints(blocks)
			lines = append(lines, fmt.Sprintf("blocking misses on blocks %v", blocks))
		}
		if pend := np.n.Pending(); pend > 0 {
			lines = append(lines, fmt.Sprintf("%d non-blocking transaction(s) in flight", pend))
		}
		if got := np.ccRecv.Value(); got < np.ccExpected {
			lines = append(lines, fmt.Sprintf("ready_to_recv short: %d/%d cc blocks arrived", got, np.ccExpected))
		}
		var busy []int
		for b, e := range np.dir {
			if e.busy || len(e.waitQ) > 0 {
				busy = append(busy, b)
			}
		}
		sort.Ints(busy)
		for _, b := range busy {
			e := np.dir[b]
			lines = append(lines, fmt.Sprintf("directory block %d%s busy (pending=%d queued=%d)", b, p.blockInfo(b), e.pending, len(e.waitQ)))
		}
		var rounds []int
		for b := range np.relay {
			rounds = append(rounds, b)
		}
		sort.Ints(rounds)
		for _, b := range rounds {
			rs := np.relay[b]
			lines = append(lines, fmt.Sprintf("relay round for block %d%s open (%d/%d leaves answered, home %d)",
				b, p.blockInfo(b), rs.got, rs.expect, rs.home))
		}
		for _, l := range lines {
			fmt.Fprintf(&out, "  node %d: %s\n", np.id, l)
		}
	}
	return out.String()
}

// TagCensus counts block tags across the cluster (diagnostics).
func (p *Proto) TagCensus() map[memory.Tag]int {
	out := map[memory.Tag]int{}
	nb := p.C.Space.NumBlocks()
	for _, np := range p.nodes {
		for b := 0; b < nb; b++ {
			out[np.n.Mem.Tag(b)]++
		}
	}
	return out
}
