package protocol

import (
	"fmt"
	"math/rand"
	"testing"

	"hpfdsm/internal/config"
	"hpfdsm/internal/sim"
	"hpfdsm/internal/tempest"
)

// TestRandomizedCoherenceStress drives the default protocol with a
// randomized but race-free workload: in each round every node writes a
// disjoint set of words (ownership rotates), then after a barrier every
// node reads a random sample of all words and checks the latest
// values. This exercises invalidation, flush-merge, upgrade, and the
// eager-RC write paths under heavy interleaving.
func TestRandomizedCoherenceStress(t *testing.T) {
	const (
		nodes  = 4
		words  = 256 // spread over several pages and many blocks
		rounds = 12
	)
	h := newHarness(t, nodes, 8, config.DualCPU)
	rng := rand.New(rand.NewSource(42))

	// Precompute each round's writer assignment and values so the
	// simulated processes and the checker agree.
	type plan struct {
		writer [words]int
		value  [words]float64
	}
	plans := make([]plan, rounds)
	expected := make([]float64, words)
	for r := range plans {
		for w := 0; w < words; w++ {
			plans[r].writer[w] = rng.Intn(nodes)
			plans[r].value[w] = float64(r*1000 + w)
		}
	}
	for r := range plans {
		for w := 0; w < words; w++ {
			expected[w] = plans[r].value[w]
		}
	}

	addr := func(w int) int { return h.base + 8*w }
	var failures []string
	for id := 0; id < nodes; id++ {
		id := id
		h.run(id, fmt.Sprintf("stress%d", id), func(p *sim.Proc, n *tempest.Node) {
			myRng := rand.New(rand.NewSource(int64(id) + 7))
			for r := 0; r < rounds; r++ {
				pl := &plans[r]
				for w := 0; w < words; w++ {
					if pl.writer[w] == id {
						n.StoreF64(p, addr(w), pl.value[w])
					}
				}
				h.c.Barrier(p, n)
				// Read a random sample and verify freshness.
				for k := 0; k < 32; k++ {
					w := myRng.Intn(words)
					if got := n.LoadF64(p, addr(w)); got != pl.value[w] {
						failures = append(failures,
							fmt.Sprintf("round %d node %d word %d: got %v want %v", r, id, w, got, pl.value[w]))
					}
				}
				h.c.Barrier(p, n)
			}
		})
	}
	if err := h.c.Env.Run(); err != nil {
		t.Fatal(err)
	}
	for _, f := range failures {
		t.Error(f)
	}
	// Final state check through the coherent read-back.
	for w := 0; w < words; w++ {
		if got := h.p.CoherentRead(addr(w)); got != expected[w] {
			t.Fatalf("final word %d = %v, want %v", w, got, expected[w])
		}
	}
}

// TestStressDeterminism re-runs a smaller stress scenario and checks
// message counts match exactly.
func TestStressDeterminism(t *testing.T) {
	run := func() int64 {
		h := newHarness(t, 3, 4, config.DualCPU)
		for id := 0; id < 3; id++ {
			id := id
			h.run(id, "d", func(p *sim.Proc, n *tempest.Node) {
				for r := 0; r < 5; r++ {
					for w := id; w < 64; w += 3 {
						n.StoreF64(p, h.base+8*w, float64(r*100+w))
					}
					h.c.Barrier(p, n)
					for w := 0; w < 64; w += 7 {
						n.LoadF64(p, h.base+8*w)
					}
					h.c.Barrier(p, n)
				}
			})
		}
		if err := h.c.Env.Run(); err != nil {
			t.Fatal(err)
		}
		return h.c.Stats.TotalMessages()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic message counts: %d vs %d", a, b)
	}
}
