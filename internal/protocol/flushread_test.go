package protocol

import (
	"testing"

	"hpfdsm/internal/config"
	"hpfdsm/internal/sim"
	"hpfdsm/internal/tempest"
)

// Writer node1 takes a CC block homed at node4 via mk_writable (the
// contract's non-owner-write step 1: the home's copy is invalidated
// and the directory learns the writer), writes it, flushes it to owner
// node5; then home node4 itself reads it through the default protocol
// and must collect the owner's copy, not serve its own stale memory.
func TestFlushThenHomeRead(t *testing.T) {
	h := newHarness(t, 6, 8, config.DualCPU)
	addr := h.addrOnPage(4, 0) // homed at node 4
	bs := h.space.BlockSize()
	run := []BlockRun{{Start: addr / bs, N: 1}}
	var got float64
	h.run(1, "writer", func(p *sim.Proc, n *tempest.Node) {
		x := h.p.Node(1)
		x.MkWritable(p, run)
		for w := 0; w < bs/8; w++ {
			n.StoreF64(p, addr+8*w, float64(100+w))
		}
		x.FlushBlocks(p, 5, run, SendBulk)
		h.c.Barrier(p, n)
		h.c.Barrier(p, n)
	})
	h.run(5, "owner", func(p *sim.Proc, n *tempest.Node) {
		x := h.p.Node(5)
		x.ImplicitWritable(p, run, false)
		x.ExpectBlocks(1)
		x.ReadyToRecv(p)
		h.c.Barrier(p, n)
		h.c.Barrier(p, n)
	})
	h.run(4, "home-reader", func(p *sim.Proc, n *tempest.Node) {
		h.c.Barrier(p, n)
		got = n.LoadF64(p, addr+8*3)
		h.c.Barrier(p, n)
	})
	for _, id := range []int{0, 2, 3} {
		h.run(id, "idle", func(p *sim.Proc, n *tempest.Node) {
			h.c.Barrier(p, n)
			h.c.Barrier(p, n)
		})
	}
	if err := h.c.Env.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 103 {
		t.Fatalf("home read %v, want 103 (stale home copy served)", got)
	}
}
