package protocol

import (
	"testing"

	"hpfdsm/internal/config"
	"hpfdsm/internal/memory"
	"hpfdsm/internal/sim"
	"hpfdsm/internal/tempest"
)

// harness builds a cluster with the protocol attached and one shared
// allocation of the given page count.
type harness struct {
	c     *tempest.Cluster
	p     *Proto
	base  int
	space *memory.Space
}

func newHarness(t *testing.T, nodes, pages int, mode config.CPUMode) *harness {
	t.Helper()
	mc := config.Default().WithNodes(nodes).WithCPUMode(mode)
	sp := memory.NewSpace(mc)
	base := sp.Alloc("arr", pages*mc.PageSize)
	c := tempest.NewCluster(sim.NewEnv(), sp)
	return &harness{c: c, p: Attach(c), base: base, space: sp}
}

// run spawns body as node id's compute process.
func (h *harness) run(id int, name string, body func(p *sim.Proc, n *tempest.Node)) {
	n := h.c.Nodes[id]
	h.c.Env.Spawn(name, func(p *sim.Proc) { body(p, n) })
}

// addrOnPage returns an 8-byte-aligned address on the page homed at
// node `home` (page index == home for the first pages).
func (h *harness) addrOnPage(home, off int) int {
	return h.base + home*h.space.Machine().PageSize + off
}

func TestRemoteReadGetsHomeData(t *testing.T) {
	h := newHarness(t, 4, 8, config.DualCPU)
	addr := h.addrOnPage(0, 0) // homed at node 0
	var got float64
	h.run(0, "writer", func(p *sim.Proc, n *tempest.Node) {
		n.StoreF64(p, addr, 7.25) // home write: no fault
		h.c.Barrier(p, n)
	})
	h.run(1, "reader", func(p *sim.Proc, n *tempest.Node) {
		h.c.Barrier(p, n)
		got = n.LoadF64(p, addr)
	})
	for i := 2; i < 4; i++ {
		h.run(i, "idle", func(p *sim.Proc, n *tempest.Node) { h.c.Barrier(p, n) })
	}
	if err := h.c.Env.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 7.25 {
		t.Fatalf("remote read = %v, want 7.25", got)
	}
	if h.c.Stats.Nodes[1].ReadMisses != 1 {
		t.Fatalf("reader misses = %d, want 1", h.c.Stats.Nodes[1].ReadMisses)
	}
}

func TestReadMissLatencyMatchesTable1(t *testing.T) {
	// A remote read miss with the data in home memory must take ~93 µs
	// in the dual-CPU configuration (Table 1).
	h := newHarness(t, 2, 2, config.DualCPU)
	addr := h.addrOnPage(0, 0)
	var stall sim.Time
	h.run(1, "reader", func(p *sim.Proc, n *tempest.Node) {
		n.LoadF64(p, addr) // warm the page mapping (first touch pays PageMapCost)
		t0 := p.Now()
		n.LoadF64(p, addr+h.space.BlockSize())
		stall = p.Now() - t0
	})
	if err := h.c.Env.Run(); err != nil {
		t.Fatal(err)
	}
	lo, hi := 88*sim.Microsecond, 98*sim.Microsecond
	if stall < lo || stall > hi {
		t.Fatalf("read miss latency = %.1f µs, want 88-98 µs", float64(stall)/1000)
	}
}

func TestProducerConsumerEightMessages(t *testing.T) {
	// Figure 1(a): in steady state, one producer->consumer transfer
	// under the default protocol costs 8 messages: read-request,
	// put-data-request, put-data-response, read-response on the
	// consumer side, then write-request(upgrade), invalidation,
	// acknowledgement, write-grant when the producer rewrites.
	h := newHarness(t, 3, 4, config.DualCPU)
	addr := h.addrOnPage(2, 0) // homed at node 2: home is neither p nor q

	iters := 6
	h.run(0, "producer", func(p *sim.Proc, n *tempest.Node) {
		for i := 0; i < iters; i++ {
			n.StoreF64(p, addr, float64(i))
			h.c.Barrier(p, n)
			h.c.Barrier(p, n)
		}
	})
	var got []float64
	h.run(1, "consumer", func(p *sim.Proc, n *tempest.Node) {
		for i := 0; i < iters; i++ {
			h.c.Barrier(p, n)
			got = append(got, n.LoadF64(p, addr))
			h.c.Barrier(p, n)
		}
	})
	h.run(2, "home", func(p *sim.Proc, n *tempest.Node) {
		for i := 0; i < 2*iters; i++ {
			h.c.Barrier(p, n)
		}
	})
	before := int64(-1)
	var perIter int64
	_ = before
	if err := h.c.Env.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != float64(i) {
			t.Fatalf("consumer read %v at iter %d", v, i)
		}
	}
	// Count protocol messages (subtract barrier traffic: per barrier,
	// 2 arrive + 2 release messages in a 3-node cluster).
	barrierMsgs := int64(2*iters) * 4
	protoMsgs := h.c.Stats.TotalMessages() - barrierMsgs
	// First iteration includes cold misses; steady state is 8/iter.
	perIter = protoMsgs / int64(iters)
	if perIter < 7 || perIter > 9 {
		t.Fatalf("steady-state protocol messages per transfer = %d (total %d), want ~8", perIter, protoMsgs)
	}
}

func TestUpgradeIsNonBlocking(t *testing.T) {
	// After read-sharing, a store to a readonly block should not stall
	// the writer for a round trip; the grant is collected at the next
	// synchronization.
	h := newHarness(t, 2, 2, config.DualCPU)
	addr := h.addrOnPage(0, 0)
	var storeStall, syncStall sim.Time
	h.run(1, "writer", func(p *sim.Proc, n *tempest.Node) {
		n.LoadF64(p, addr) // cold read miss -> readonly copy
		t0 := p.Now()
		n.StoreF64(p, addr, 1) // upgrade
		storeStall = p.Now() - t0
		if n.Pending() != 1 {
			t.Errorf("pending = %d during upgrade, want 1", n.Pending())
		}
		t1 := p.Now()
		n.WaitPending(p)
		syncStall = p.Now() - t1
	})
	if err := h.c.Env.Run(); err != nil {
		t.Fatal(err)
	}
	mc := config.Default()
	if storeStall > mc.FaultCost+mc.SendOver {
		t.Fatalf("upgrade stalled the writer for %d ns", storeStall)
	}
	if syncStall == 0 {
		t.Fatal("upgrade grant should arrive after the store; sync stall was zero")
	}
}

func TestFalseSharingMultipleWriterMerge(t *testing.T) {
	// Nodes 1 and 2 write different words of the same block; node 0
	// (home) then reads both values. The dirty-word merge must not
	// lose either update.
	h := newHarness(t, 3, 4, config.DualCPU)
	a1 := h.addrOnPage(0, 0)
	a2 := h.addrOnPage(0, 8)
	var v1, v2 float64
	h.run(1, "w1", func(p *sim.Proc, n *tempest.Node) {
		n.StoreF64(p, a1, 111)
		h.c.Barrier(p, n)
		h.c.Barrier(p, n)
	})
	h.run(2, "w2", func(p *sim.Proc, n *tempest.Node) {
		n.StoreF64(p, a2, 222)
		h.c.Barrier(p, n)
		h.c.Barrier(p, n)
	})
	h.run(0, "reader", func(p *sim.Proc, n *tempest.Node) {
		h.c.Barrier(p, n)
		v1 = n.LoadF64(p, a1)
		v2 = n.LoadF64(p, a2)
		h.c.Barrier(p, n)
	})
	if err := h.c.Env.Run(); err != nil {
		t.Fatal(err)
	}
	if v1 != 111 || v2 != 222 {
		t.Fatalf("merged reads = %v, %v; want 111, 222", v1, v2)
	}
}

func TestWriteMissFetchesData(t *testing.T) {
	// A write to an invalid block must fetch current contents (other
	// words of the block must stay correct).
	h := newHarness(t, 2, 2, config.DualCPU)
	a0 := h.addrOnPage(0, 0)
	a1 := h.addrOnPage(0, 8)
	var other float64
	h.run(0, "init", func(p *sim.Proc, n *tempest.Node) {
		n.StoreF64(p, a1, 5.5)
		h.c.Barrier(p, n)
		h.c.Barrier(p, n)
	})
	h.run(1, "writer", func(p *sim.Proc, n *tempest.Node) {
		h.c.Barrier(p, n)
		n.StoreF64(p, a0, 1.0) // non-blocking write miss
		if n.Pending() != 1 {
			t.Errorf("write miss should leave a pending transaction")
		}
		n.WaitPending(p) // fetched copy merges into clean words by now
		other = n.Mem.ReadF64(a1)
		if got := n.Mem.ReadF64(a0); got != 1.0 {
			t.Errorf("local write lost in merge: a0 = %v", got)
		}
		h.c.Barrier(p, n)
	})
	if err := h.c.Env.Run(); err != nil {
		t.Fatal(err)
	}
	if other != 5.5 {
		t.Fatalf("write miss did not fetch block contents: a1 = %v", other)
	}
}

func TestHomeReadAfterRemoteWrite(t *testing.T) {
	// Remote node takes exclusive ownership; home's subsequent read
	// must pull the data back.
	h := newHarness(t, 2, 2, config.DualCPU)
	addr := h.addrOnPage(0, 0)
	var got float64
	h.run(1, "writer", func(p *sim.Proc, n *tempest.Node) {
		n.StoreF64(p, addr, 9.75)
		h.c.Barrier(p, n)
		h.c.Barrier(p, n)
	})
	h.run(0, "home", func(p *sim.Proc, n *tempest.Node) {
		h.c.Barrier(p, n)
		got = n.LoadF64(p, addr)
		h.c.Barrier(p, n)
	})
	if err := h.c.Env.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 9.75 {
		t.Fatalf("home read-back = %v, want 9.75", got)
	}
	if h.c.Stats.Nodes[0].ReadMisses != 1 {
		t.Fatalf("home read misses = %d, want 1", h.c.Stats.Nodes[0].ReadMisses)
	}
}

func TestWriterPingPong(t *testing.T) {
	// Two nodes alternately write the same word across barriers; each
	// must observe the other's last value.
	h := newHarness(t, 2, 2, config.DualCPU)
	addr := h.addrOnPage(0, 0)
	rounds := 4
	fail := make(chan string, 8)
	body := func(me int) func(p *sim.Proc, n *tempest.Node) {
		return func(p *sim.Proc, n *tempest.Node) {
			for r := 0; r < rounds; r++ {
				turn := r%2 == me
				if turn {
					n.StoreF64(p, addr, float64(r))
				}
				h.c.Barrier(p, n)
				if got := n.LoadF64(p, addr); got != float64(r) {
					fail <- "stale value"
				}
				h.c.Barrier(p, n)
			}
		}
	}
	h.run(0, "a", body(0))
	h.run(1, "b", body(1))
	if err := h.c.Env.Run(); err != nil {
		t.Fatal(err)
	}
	select {
	case msg := <-fail:
		t.Fatal(msg)
	default:
	}
}

func TestPageMapCostChargedOnce(t *testing.T) {
	h := newHarness(t, 2, 2, config.DualCPU)
	a0 := h.addrOnPage(0, 0)
	a1 := h.addrOnPage(0, 128) // same page, different block
	var first, second sim.Time
	h.run(1, "reader", func(p *sim.Proc, n *tempest.Node) {
		t0 := p.Now()
		n.LoadF64(p, a0)
		first = p.Now() - t0
		t1 := p.Now()
		n.LoadF64(p, a1)
		second = p.Now() - t1
	})
	if err := h.c.Env.Run(); err != nil {
		t.Fatal(err)
	}
	mc := config.Default()
	if first-second != mc.PageMapCost {
		t.Fatalf("first miss %d, second %d; difference should be the page-map cost %d",
			first, second, mc.PageMapCost)
	}
}

func TestSingleCPUMissesSlower(t *testing.T) {
	measure := func(mode config.CPUMode) sim.Time {
		h := newHarness(t, 2, 2, mode)
		addr := h.addrOnPage(0, 0)
		var total sim.Time
		h.run(1, "reader", func(p *sim.Proc, n *tempest.Node) {
			t0 := p.Now()
			for i := 0; i < 8; i++ {
				n.LoadF64(p, addr+i*h.space.BlockSize())
				n.Compute(50 * sim.Microsecond)
				n.Sync(p)
			}
			total = p.Now() - t0
		})
		h.run(0, "home", func(p *sim.Proc, n *tempest.Node) {
			// Home also computes and takes remote requests.
			for i := 0; i < 8; i++ {
				n.Compute(50 * sim.Microsecond)
				n.Sync(p)
			}
		})
		if err := h.c.Env.Run(); err != nil {
			t.Fatal(err)
		}
		return total
	}
	dual := measure(config.DualCPU)
	single := measure(config.SingleCPU)
	if single <= dual {
		t.Fatalf("single-cpu run (%d) not slower than dual-cpu (%d)", single, dual)
	}
}
