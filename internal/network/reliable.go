// Fault injection and reliable delivery.
//
// The paper's Myrinet never drops, duplicates, or reorders messages,
// and the coherence protocol above leans on that: every request expects
// exactly one response, and per-(src,dst) ordering is load-bearing.
// This file lets the simulated wire misbehave — seeded-PRNG drop,
// duplication, delay jitter, and cross-pair reordering — and rebuilds
// the lossless, ordered abstraction underneath the protocol stack:
//
//   - every inter-node message carries a per-(src,dst) sequence number;
//   - the receiver delivers in sequence order, buffering out-of-order
//     arrivals and discarding duplicates (idempotent receive);
//   - the receiver acknowledges cumulatively, coalescing ACKs that
//     arrive within an AckDelay window;
//   - the sender retransmits unacknowledged messages on a per-message
//     timer with exponential backoff (clamped at MaxBackoff).
//
// The layer is modeled as NIC firmware: ACKs and retransmissions
// occupy the wire (link serialization and latency, counted in the
// message/byte totals) but cost no host CPU, so the protocol engine's
// occupancy model is untouched. All randomness comes from one
// splitmix64 PRNG drawn in scheduler context, so a given seed always
// produces the same schedule. With fault injection inactive none of
// this code runs and the network is bit-identical to the seed model.
package network

import (
	"fmt"
	"sort"
	"strings"

	"hpfdsm/internal/config"
	"hpfdsm/internal/sim"
)

// KindAck is the reliable-delivery acknowledgement. It is consumed by
// the network layer itself and never reaches a node's handlers.
// Protocol layers must not use this kind.
const KindAck Kind = 255

// KindProbe and KindProbeAck are the failure detector's liveness
// probes. Both are NIC-level: a live destination's firmware answers a
// probe immediately, with no host CPU and no sequencing, so only a
// genuinely dead peer leaves probes unanswered. Protocol layers must
// not use these kinds.
const (
	KindProbe    Kind = 254
	KindProbeAck Kind = 253
)

// ackSize is the payload size of an acknowledgement (the cumulative
// sequence number); probeSize that of a liveness probe.
const (
	ackSize   = 8
	probeSize = 4
)

// ctrlKind reports whether k rides the NIC's priority control lane
// (cutting ahead of the data queue's serialization backlog).
func ctrlKind(k Kind) bool { return k == KindAck || k == KindProbe || k == KindProbeAck }

// rng is a splitmix64 PRNG: tiny, fast, and fully deterministic for a
// given seed (unlike math/rand, its sequence is pinned by this file).
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// f64 returns a uniform float64 in [0, 1).
func (r *rng) f64() float64 { return float64(r.next()>>11) / (1 << 53) }

// timeIn returns a uniform virtual duration in [0, max).
func (r *rng) timeIn(max sim.Time) sim.Time {
	if max <= 0 {
		return 0
	}
	return sim.Time(r.next() % uint64(max))
}

// outstanding is one sent-but-unacknowledged message.
type outstanding struct {
	m         *Message
	rto       sim.Time // current retransmit timeout
	retries   int
	suspended bool // retransmit chain parked pending a probe verdict
}

// relChan is the reliable-delivery state of one directed (src,dst)
// pair: sender-side outstanding window and receiver-side reassembly.
type relChan struct {
	src, dst int

	// Sender side (lives conceptually at src).
	nextSeq int64
	out     map[int64]*outstanding

	// Receiver side (lives conceptually at dst).
	expect     int64 // next sequence number to deliver (first is 1)
	buf        map[int64]*Message
	ackPending bool

	// Failure-detector state (sender side): after a message exhausts its
	// retransmit budget the channel stops retransmitting and sends
	// exponential-backoff probes instead; a probe acknowledgement
	// resumes the suspended retransmit chains, while MaxProbes
	// unanswered probes declare dst dead.
	probing  bool
	probes   int      // probes sent in the current round
	probeRTO sim.Time // next probe's timeout
	probeGen int64    // invalidates stale probe-timer events
}

// reliable is the fault-injection + reliable-delivery layer of one
// network.
type reliable struct {
	n         *Network
	f         config.Faults
	rng       rng
	chans     map[[2]int]*relChan
	blackhole map[[2]int]bool
}

func newReliable(n *Network, f config.Faults) *reliable {
	return &reliable{
		n:         n,
		f:         f,
		rng:       rng{s: f.Seed},
		chans:     make(map[[2]int]*relChan),
		blackhole: make(map[[2]int]bool),
	}
}

func (r *reliable) channel(src, dst int) *relChan {
	key := [2]int{src, dst}
	c, ok := r.chans[key]
	if !ok {
		c = &relChan{src: src, dst: dst, expect: 1, out: make(map[int64]*outstanding), buf: make(map[int64]*Message)}
		r.chans[key] = c
	}
	return c
}

// send assigns the message its sequence number, records it in the
// outstanding window, and launches the first transmission attempt.
func (r *reliable) send(m *Message) {
	c := r.channel(m.Src, m.Dst)
	c.nextSeq++
	m.Seq = c.nextSeq
	c.out[m.Seq] = &outstanding{m: m, rto: r.f.EffectiveRetransmitTimeout()}
	arrive := r.transmit(m, false)
	r.armTimer(c, m.Seq, arrive)
}

// transmit puts one attempt (original, retransmission, or ACK) on the
// wire through the fault model and returns its nominal (fault-free)
// arrival time. Data transmissions serialize behind the sender's queued
// traffic; acknowledgements ride a priority lane — 8-byte control
// packets cut through ahead of the data queue, as on a real NIC.
// Without the priority lane a backlogged link delays its own ACKs
// behind minutes of queued data, every RTO fires spuriously, and the
// retransmissions amplify the backlog into congestion collapse.
func (r *reliable) transmit(m *Message, retx bool) sim.Time {
	r.n.accountSend(m)
	ser := sim.Time(r.n.mc.MsgHeader+m.Size) * r.n.mc.NsPerByte
	var arrive sim.Time
	if ctrlKind(m.Kind) {
		arrive = r.n.env.Now() + ser + r.n.mc.WireLatency
	} else {
		arrive = r.n.wireArrival(m)
	}
	if r.n.tr != nil {
		depart := arrive - r.n.mc.WireLatency - ser
		r.n.traceTx(m, depart, depart+ser, retx)
	}
	r.inject(m, arrive)
	return arrive
}

// inject applies the fault model to one transmission whose nominal
// arrival time is arrive. The PRNG draw order (drop, dup, delay, and a
// second delay for the duplicate) is fixed so a seed fully determines
// the schedule. The sender's link was already occupied by wireArrival:
// dropped transmissions still burned serialization time, as on a real
// wire.
func (r *reliable) inject(m *Message, arrive sim.Time) {
	sst := &r.n.st.Nodes[m.Src]
	if r.blackhole[[2]int{m.Src, m.Dst}] {
		sst.WireDrops++
		return
	}
	dropped := r.f.Drop > 0 && r.rng.f64() < r.f.Drop
	duped := r.f.Dup > 0 && r.rng.f64() < r.f.Dup
	if dropped {
		sst.WireDrops++
	} else {
		at := arrive + r.delay()
		r.n.inflight++
		r.n.env.Schedule(at, func() { r.arrive(m) })
	}
	if duped {
		sst.WireDups++
		// The duplicate takes its own (independently jittered) path and
		// never lands at the exact same instant as the original.
		at := arrive + r.delay() + 1
		r.n.inflight++
		r.n.env.Schedule(at, func() { r.arrive(m) })
	}
}

// delay draws the extra in-flight delay of one transmission: uniform
// jitter, plus (with probability Reorder) a pause long enough to slip
// behind tens of subsequently sent messages — cross-pair reordering.
func (r *reliable) delay() sim.Time {
	var d sim.Time
	if r.f.Jitter > 0 {
		d += r.rng.timeIn(r.f.Jitter)
	}
	if r.f.Reorder > 0 && r.rng.f64() < r.f.Reorder {
		d += 20*sim.Microsecond + r.rng.timeIn(200*sim.Microsecond)
	}
	return d
}

// arrive is a transmission reaching the destination NIC.
func (r *reliable) arrive(m *Message) {
	r.n.inflight--
	if r.n.dead[m.Dst] || r.n.dead[m.Src] {
		return // crash-stop: traffic touching a dead node vanishes
	}
	r.n.accountRecv(m)
	switch m.Kind {
	case KindAck:
		r.handleAck(m)
		return
	case KindProbe:
		r.handleProbe(m)
		return
	case KindProbeAck:
		r.handleProbeAck(m)
		return
	}
	c := r.channel(m.Src, m.Dst)
	dst := &r.n.st.Nodes[m.Dst]
	// Acknowledge everything in-order so far, even for duplicates: the
	// retransmission we are seeing means an earlier ACK was lost.
	r.scheduleAck(c)
	switch {
	case m.Seq < c.expect:
		// Stale duplicate of an already-delivered message.
		dst.DupsDropped++
	case m.Seq == c.expect:
		c.expect++
		r.n.deliver(m)
		// Drain any buffered successors now in order.
		for {
			nxt, ok := c.buf[c.expect]
			if !ok {
				break
			}
			delete(c.buf, c.expect)
			c.expect++
			r.n.deliver(nxt)
		}
	default:
		// Out of order: hold until the gap fills.
		if _, dup := c.buf[m.Seq]; dup {
			dst.DupsDropped++
		} else {
			c.buf[m.Seq] = m
		}
	}
}

// scheduleAck coalesces acknowledgements: the first arrival in a window
// schedules one cumulative ACK AckDelay later; arrivals inside the
// window ride along for free.
func (r *reliable) scheduleAck(c *relChan) {
	if c.ackPending {
		return
	}
	c.ackPending = true
	r.n.env.After(r.f.EffectiveAckDelay(), func() {
		c.ackPending = false
		r.n.st.Nodes[c.dst].AcksSent++
		// The ACK travels the reverse direction, unsequenced, and takes
		// its own chances with the fault model; a lost ACK is repaired
		// by the sender's retransmission provoking a fresh one.
		r.transmit(&Message{Src: c.dst, Dst: c.src, Kind: KindAck, Arg: c.expect - 1, Size: ackSize}, false)
	})
}

// handleAck retires every outstanding message the cumulative ACK
// covers. The ACK from dst about channel (src→dst) arrives at src.
func (r *reliable) handleAck(m *Message) {
	c := r.channel(m.Dst, m.Src)
	// Deleting every sequence number <= the cumulative ACK is a pure
	// set subtraction: no retired entry is observed again, so the
	// visit order cannot leak into simulated state.
	//simlint:commutative
	for seq := range c.out {
		if seq <= m.Arg {
			delete(c.out, seq)
		}
	}
}

// armTimer starts the (single) retransmit timer for one outstanding
// sequence number, anchored at the transmission's nominal arrival time:
// a message queued behind the sender's own link backlog is not timed
// until it actually gets onto the wire (retransmitting a message that
// has not left yet only deepens the backlog). Exactly one timer chain
// exists per outstanding message: armed at send, re-armed at each
// timeout, dissolved when the ACK removes the window entry.
func (r *reliable) armTimer(c *relChan, seq int64, arrive sim.Time) {
	o, ok := c.out[seq]
	if !ok {
		return
	}
	r.n.env.Schedule(arrive+o.rto, func() { r.timeout(c, seq) })
}

// timeout fires when an outstanding message went unacknowledged for its
// full RTO past its transmission: retransmit, double the backoff,
// re-arm.
func (r *reliable) timeout(c *relChan, seq int64) {
	o, ok := c.out[seq]
	if !ok {
		return // acknowledged while the timer was in flight
	}
	sst := &r.n.st.Nodes[c.src]
	if mr := r.f.EffectiveMaxRetries(); mr > 0 && o.retries >= mr {
		// Retransmit exhaustion. Instead of discarding the message (the
		// pre-crash-layer give-up, which could only end in a watchdog
		// hang), park its retransmit chain and escalate to liveness
		// probing: cheap control packets with their own backoff decide
		// whether dst is dead or the wire is just vicious. A probe ack
		// resumes the parked chains; unanswered probes declare dst dead.
		sst.GiveUps++
		o.suspended = true
		r.escalate(c)
		return
	}
	o.retries++
	sst.Retransmits++
	o.rto *= 2
	if mb := r.f.EffectiveMaxBackoff(); o.rto > mb {
		o.rto = mb
	}
	arrive := r.transmit(o.m, true)
	r.armTimer(c, seq, arrive)
}

// escalate opens a probe round on c unless one is already running.
func (r *reliable) escalate(c *relChan) {
	if c.probing {
		return
	}
	c.probing = true
	c.probes = 0
	c.probeRTO = r.f.EffectiveProbeTimeout()
	c.probeGen++
	r.probe(c, c.probeGen)
}

// probe sends one liveness probe and arms its timeout; the round ends
// when a probe ack clears the probing flag (handleProbeAck) or when
// MaxProbes probes go unanswered and dst is declared dead.
func (r *reliable) probe(c *relChan, gen int64) {
	if !c.probing || c.probeGen != gen {
		return // answered (or superseded) while the timer was in flight
	}
	if c.probes >= r.f.EffectiveMaxProbes() {
		c.probing = false
		c.probeGen++
		r.n.declareDead(c.dst, fmt.Sprintf("%d liveness probes from node %d unanswered after retransmit exhaustion", c.probes, c.src))
		return
	}
	c.probes++
	r.n.st.Nodes[c.src].ProbesSent++
	r.transmit(&Message{Src: c.src, Dst: c.dst, Kind: KindProbe, Size: probeSize}, false)
	rto := c.probeRTO
	c.probeRTO *= 2
	if mb := r.f.EffectiveMaxBackoff(); c.probeRTO > mb {
		c.probeRTO = mb
	}
	r.n.env.After(rto, func() { r.probe(c, gen) })
}

// handleProbe answers a liveness probe: NIC firmware replies
// immediately on the control lane. Reaching this point at all means
// the destination is alive (dead nodes' arrivals are dropped earlier).
func (r *reliable) handleProbe(m *Message) {
	r.n.env.Progress()
	r.n.st.Nodes[m.Dst].ProbeAcks++
	r.transmit(&Message{Src: m.Dst, Dst: m.Src, Kind: KindProbeAck, Size: probeSize}, false)
}

// handleProbeAck ends the probe round on the prober's channel and
// revives every parked retransmit chain: the peer is alive, the
// exhausted messages just met an unlucky wire.
func (r *reliable) handleProbeAck(m *Message) {
	r.n.env.Progress()
	c := r.channel(m.Dst, m.Src) // the probed channel runs m.Dst -> m.Src
	if !c.probing {
		return // stale ack from an earlier round
	}
	c.probing = false
	c.probeGen++
	var seqs []int64
	for s, o := range c.out {
		if o.suspended {
			seqs = append(seqs, s)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	sst := &r.n.st.Nodes[c.src]
	for _, s := range seqs {
		o := c.out[s]
		o.suspended = false
		o.retries = 0
		o.rto = r.f.EffectiveRetransmitTimeout()
		sst.Retransmits++
		arrive := r.transmit(o.m, true)
		r.armTimer(c, s, arrive)
	}
}

// Blackhole makes every transmission from src to dst vanish on the wire
// (a permanently failed unidirectional link; the reverse direction is
// unaffected). It is a fault-injection hook for exercising the stall
// watchdog and panics unless fault injection is active.
func (n *Network) Blackhole(src, dst int) {
	if n.rel == nil {
		panic("network: Blackhole requires active fault injection (config.Faults)")
	}
	n.rel.blackhole[[2]int{src, dst}] = true
}

// Unreliable reports whether fault injection (and therefore the
// reliable-delivery layer) is active.
func (n *Network) Unreliable() bool { return n.rel != nil }

// Probe opens a liveness-probe round from src to dst — the
// barrier-timeout membership check uses it to interrogate nodes that
// owe no traffic (so retransmit exhaustion would never notice them
// missing). Probing a crashed node is the very point: the unanswered
// round is what turns a silent peer into a detected death. No-op when
// a round is already running or fault injection is off.
func (n *Network) Probe(src, dst int) {
	if n.rel == nil || n.dead[src] || src == dst {
		return
	}
	n.rel.escalate(n.rel.channel(src, dst))
}

// ChannelsQuiescent reports whether every reliable-delivery channel
// has delivered everything it was given: no out-of-order arrivals
// buffered, no probe round open, and every unacknowledged message
// already delivered (seq below the receiver's expect — such messages
// await only their cumulative ACK, which carries no protocol state).
// Trivially true when fault injection is off. One leg of the
// checkpoint layer's quiescence predicate.
func (n *Network) ChannelsQuiescent() bool {
	if n.rel == nil {
		return true
	}
	// Both loops are pure universally-quantified checks: the answer is
	// the conjunction over all channels/sequence numbers, independent
	// of visit order, and nothing is mutated.
	//simlint:commutative
	for _, c := range n.rel.chans {
		if len(c.buf) > 0 || c.probing {
			return false
		}
		//simlint:commutative
		for s := range c.out {
			if s >= c.expect {
				return false
			}
		}
	}
	return true
}

// DumpChannels renders the reliable-delivery state of every channel
// with in-flight work: outstanding (unacknowledged) messages with their
// retry counts, and out-of-order arrivals buffered at the receiver.
// Used by the stall watchdog's diagnostic dump. Returns "" when idle or
// when fault injection is off.
func (n *Network) DumpChannels() string {
	if n.rel == nil {
		return ""
	}
	var keys [][2]int
	for k, c := range n.rel.chans {
		if len(c.out) > 0 || len(c.buf) > 0 || c.probing {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	var b strings.Builder
	for _, k := range keys {
		c := n.rel.chans[k]
		probing := ""
		if c.probing {
			probing = fmt.Sprintf(" PROBING(%d sent)", c.probes)
		}
		fmt.Fprintf(&b, "  channel %d->%d: nextSeq=%d expect=%d unacked=%d buffered=%d%s\n",
			k[0], k[1], c.nextSeq, c.expect, len(c.out), len(c.buf), probing)
		var seqs []int64
		for s := range c.out {
			seqs = append(seqs, s)
		}
		sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
		for _, s := range seqs {
			o := c.out[s]
			fmt.Fprintf(&b, "    unacked %v retries=%d rto=%dus\n", o.m, o.retries, o.rto/1000)
		}
	}
	return b.String()
}
