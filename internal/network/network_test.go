package network

import (
	"testing"

	"hpfdsm/internal/config"
	"hpfdsm/internal/sim"
	"hpfdsm/internal/stats"
)

func testNet(nodes int) (*sim.Env, *Network, *stats.Cluster, config.Machine) {
	env := sim.NewEnv()
	mc := config.Default().WithNodes(nodes)
	st := stats.New(nodes)
	return env, New(env, mc, st), st, mc
}

func TestPointToPointLatency(t *testing.T) {
	env, net, _, mc := testNet(2)
	var arrived sim.Time = -1
	net.Bind(0, func(m *Message) {})
	net.Bind(1, func(m *Message) { arrived = env.Now() })
	net.Send(&Message{Src: 0, Dst: 1, Kind: 1, Size: 4})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	want := sim.Time(mc.MsgHeader+4)*mc.NsPerByte + mc.WireLatency
	if arrived != want {
		t.Fatalf("arrival at %d, want %d", arrived, want)
	}
}

func TestInOrderDeliverySamePair(t *testing.T) {
	env, net, _, _ := testNet(2)
	var got []int64
	net.Bind(0, func(m *Message) {})
	net.Bind(1, func(m *Message) { got = append(got, m.Arg) })
	for i := int64(0); i < 10; i++ {
		net.Send(&Message{Src: 0, Dst: 1, Arg: i, Size: 100})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("delivered %d messages, want 10", len(got))
	}
	for i := range got {
		if got[i] != int64(i) {
			t.Fatalf("out of order: %v", got)
		}
	}
}

func TestLinkSerializationPipelines(t *testing.T) {
	// Two back-to-back sends: second arrives one serialization time
	// after the first, not at the same instant.
	env, net, _, mc := testNet(2)
	var arr []sim.Time
	net.Bind(0, func(m *Message) {})
	net.Bind(1, func(m *Message) { arr = append(arr, env.Now()) })
	net.Send(&Message{Src: 0, Dst: 1, Size: 128})
	net.Send(&Message{Src: 0, Dst: 1, Size: 128})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	ser := sim.Time(mc.MsgHeader+128) * mc.NsPerByte
	if arr[1]-arr[0] != ser {
		t.Fatalf("pipelined gap = %d, want %d", arr[1]-arr[0], ser)
	}
}

func TestLoopbackNoWireLatency(t *testing.T) {
	env, net, _, mc := testNet(2)
	var at sim.Time = -1
	net.Bind(0, func(m *Message) { at = env.Now() })
	net.Bind(1, func(m *Message) {})
	net.Send(&Message{Src: 0, Dst: 0, Size: 128})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if at < 0 || at >= mc.MsgTime(128) {
		t.Fatalf("loopback delivered at %d, want < remote message time %d", at, mc.MsgTime(128))
	}
}

func TestStatsAccounting(t *testing.T) {
	env, net, st, mc := testNet(3)
	for i := 0; i < 3; i++ {
		net.Bind(i, func(m *Message) {})
	}
	net.Send(&Message{Src: 0, Dst: 1, Size: 100})
	net.Send(&Message{Src: 0, Dst: 2, Size: 50})
	net.Send(&Message{Src: 2, Dst: 1, Size: 0})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if st.Nodes[0].MsgsSent != 2 {
		t.Fatalf("node0 sent %d, want 2", st.Nodes[0].MsgsSent)
	}
	if st.Nodes[1].MsgsRecv != 2 {
		t.Fatalf("node1 recv %d, want 2", st.Nodes[1].MsgsRecv)
	}
	wantBytes := int64(mc.MsgHeader+100) + int64(mc.MsgHeader+50)
	if st.Nodes[0].BytesSent != wantBytes {
		t.Fatalf("node0 bytes %d, want %d", st.Nodes[0].BytesSent, wantBytes)
	}
	if st.TotalMessages() != 3 {
		t.Fatalf("total msgs %d, want 3", st.TotalMessages())
	}
}

func TestDataSizeDefaultsFromPayload(t *testing.T) {
	env, net, st, mc := testNet(2)
	net.Bind(0, func(m *Message) {})
	var got int
	net.Bind(1, func(m *Message) { got = m.Size })
	net.Send(&Message{Src: 0, Dst: 1, Data: make([]byte, 64)})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 64 {
		t.Fatalf("size = %d, want 64", got)
	}
	if st.Nodes[0].BytesSent != int64(mc.MsgHeader+64) {
		t.Fatalf("bytes sent = %d", st.Nodes[0].BytesSent)
	}
}

func TestBroadcast(t *testing.T) {
	env, net, _, _ := testNet(4)
	got := map[int]bool{}
	for i := 0; i < 4; i++ {
		i := i
		net.Bind(i, func(m *Message) { got[i] = true })
	}
	net.Broadcast(&Message{Src: 0, Size: 8}, []int{1, 2, 3})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if got[0] || !got[1] || !got[2] || !got[3] {
		t.Fatalf("broadcast delivery set wrong: %v", got)
	}
}

func TestBadEndpointPanics(t *testing.T) {
	_, net, _, _ := testNet(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range destination")
		}
	}()
	net.Send(&Message{Src: 0, Dst: 5})
}

func TestRoundTripMatchesTable1(t *testing.T) {
	// A 4-byte request and 4-byte reply, including send/recv software
	// overheads, should round-trip in ~40 µs (Table 1).
	env, net, _, mc := testNet(2)
	var done sim.Time = -1
	net.Bind(0, func(m *Message) { done = env.Now() + mc.RecvOver })
	net.Bind(1, func(m *Message) {
		env.After(mc.RecvOver+mc.SendOver, func() {
			net.Send(&Message{Src: 1, Dst: 0, Size: 4})
		})
	})
	env.After(mc.SendOver, func() { net.Send(&Message{Src: 0, Dst: 1, Size: 4}) })
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if done < 38*sim.Microsecond || done > 42*sim.Microsecond {
		t.Fatalf("round trip = %d ns, want ~40000", done)
	}
}
