package network

import (
	"bytes"
	"testing"

	"hpfdsm/internal/sim"
)

// capture attaches a coalescer to src whose send just records composed
// messages (what the protocol engine would inject onto the wire).
func capture(n *Network, src int, delay sim.Time) (*Coalescer, *[]*Message) {
	var got []*Message
	c := n.AttachCoalescer(src, Kind(99), 8, delay, func(m *Message) { got = append(got, m) })
	// The test send fn swallows messages instead of wiring them, so
	// give the closure's slice back to the caller by pointer.
	return c, &got
}

func TestCoalesceMixedKindsOneCarrier(t *testing.T) {
	_, net, _, _ := testNet(4)
	c, got := capture(net, 0, 0)

	p1 := []byte{1, 2, 3, 4, 5}
	c.Append(2, Kind(7), 100, 3, 0, p1, false)
	c.Append(2, Kind(8), 200, 1, 42, nil, false)
	c.Append(2, Kind(9), 300, 2, 0, []byte{9, 9}, false)
	if c.Pending(2) != 3 {
		t.Fatalf("pending = %d, want 3", c.Pending(2))
	}
	c.FlushDst(2)
	if c.Pending(2) != 0 {
		t.Fatalf("buffer not cleared by drain")
	}
	if len(*got) != 1 {
		t.Fatalf("drained %d messages, want 1 carrier", len(*got))
	}
	m := (*got)[0]
	if m.Kind != Kind(99) || m.Src != 0 || m.Dst != 2 || m.Arg != 3 {
		t.Fatalf("carrier header wrong: %+v", m)
	}
	if m.Size != len(m.Data) || m.Size != 3*SegHeader+len(p1)+2 {
		t.Fatalf("carrier size %d over %d data bytes, want exact segment sum %d",
			m.Size, len(m.Data), 3*SegHeader+len(p1)+2)
	}
	type seg struct {
		kind      Kind
		addr      int
		arg, arg2 int64
		payload   []byte
	}
	var segs []seg
	ForEachSegment(m.Data, int(m.Arg), func(k Kind, addr int, a1, a2 int64, p []byte) {
		segs = append(segs, seg{k, addr, a1, a2, append([]byte(nil), p...)})
	})
	want := []seg{
		{Kind(7), 100, 3, 0, p1},
		{Kind(8), 200, 1, 42, nil},
		{Kind(9), 300, 2, 0, []byte{9, 9}},
	}
	if len(segs) != len(want) {
		t.Fatalf("decoded %d segments, want %d", len(segs), len(want))
	}
	for i := range want {
		if segs[i].kind != want[i].kind || segs[i].addr != want[i].addr ||
			segs[i].arg != want[i].arg || segs[i].arg2 != want[i].arg2 ||
			!bytes.Equal(segs[i].payload, want[i].payload) {
			t.Fatalf("segment %d = %+v, want %+v (append order must be preserved)", i, segs[i], want[i])
		}
	}
}

func TestCoalesceSingletonBypass(t *testing.T) {
	_, net, _, _ := testNet(4)
	c, got := capture(net, 0, 0)

	// A lone data segment departs as a standalone message of its
	// original kind, with the standalone Size (no carrier framing).
	pay := bytes.Repeat([]byte{10, 20, 30}, 4)
	c.Append(1, Kind(7), 640, 5, 6, pay, false)
	c.FlushDst(1)
	// A lone control segment reproduces the protocol's control Size.
	c.Append(3, Kind(8), 768, 1, 0, nil, false)
	c.FlushDst(3)

	if len(*got) != 2 {
		t.Fatalf("drained %d messages, want 2 bypassed standalones", len(*got))
	}
	d := (*got)[0]
	if d.Kind != Kind(7) || d.Addr != 640 || d.Arg != 5 || d.Arg2 != 6 || !bytes.Equal(d.Data, pay) {
		t.Fatalf("bypassed data message wrong: %+v", d)
	}
	if d.Size != len(pay) {
		t.Fatalf("bypassed data Size = %d, want payload length %d", d.Size, len(pay))
	}
	ctl := (*got)[1]
	if ctl.Kind != Kind(8) || ctl.Data != nil {
		t.Fatalf("bypassed control message wrong: %+v", ctl)
	}
	if ctl.Size != 8 {
		t.Fatalf("bypassed control Size = %d, want the attached ctrl size 8", ctl.Size)
	}
}

func TestCoalesceFlushAllAscendingAndEpochBoundary(t *testing.T) {
	_, net, _, _ := testNet(6)
	c, got := capture(net, 2, 0)

	// Deliberately append in descending destination order; two
	// segments each so none takes the singleton bypass.
	for _, dst := range []int{5, 3, 0} {
		c.Append(dst, Kind(7), dst, 0, 0, nil, false)
		c.Append(dst, Kind(7), dst+10, 0, 0, nil, false)
	}
	if !c.PendingAny() {
		t.Fatal("PendingAny false with three open buffers")
	}
	c.FlushAll()
	if c.PendingAny() {
		t.Fatal("PendingAny true after FlushAll")
	}
	if len(*got) != 3 {
		t.Fatalf("drained %d carriers, want 3", len(*got))
	}
	for i, wantDst := range []int{0, 3, 5} {
		if (*got)[i].Dst != wantDst {
			t.Fatalf("drain order %v: want ascending destinations [0 3 5]",
				[]int{(*got)[0].Dst, (*got)[1].Dst, (*got)[2].Dst})
		}
	}
	// Epoch boundary: a drained buffer starts the next epoch empty, and
	// re-filling it works.
	c.Append(3, Kind(7), 1, 0, 0, nil, false)
	if c.Pending(3) != 1 {
		t.Fatalf("pending after epoch restart = %d, want 1", c.Pending(3))
	}
}

func TestCoalesceBatchWindowTimer(t *testing.T) {
	env, net, _, _ := testNet(3)
	const window = sim.Time(4000)
	c, got := capture(net, 0, window)
	var drained sim.Time = -1

	env.Spawn("driver", func(p *sim.Proc) {
		c.Append(1, Kind(7), 1, 0, 0, nil, true) // opens the window at t=0
		p.Sleep(window / 2)
		c.Append(1, Kind(7), 2, 0, 0, nil, true) // joins, must NOT extend it
		p.Sleep(window)                          // past the deadline
		if len(*got) != 1 {
			t.Errorf("timer drained %d carriers, want 1", len(*got))
			return
		}
		drained = env.Now() // events at the deadline ran before we woke
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if len(*got) != 1 || (*got)[0].Arg != 2 {
		t.Fatalf("batch window: got %d carriers (first Arg=%d), want 1 carrying both segments",
			len(*got), (*got)[0].Arg)
	}
	if drained > window+window/2 {
		t.Fatalf("drain observed at %d: the second append must not refresh the %d window opened at 0",
			drained, window)
	}
}

func TestCoalesceBurstFlush(t *testing.T) {
	_, net, _, _ := testNet(5)
	c, got := capture(net, 0, sim.Time(1_000_000))

	// A segment buffered before the burst (engine backlog for dst 4).
	c.Append(4, Kind(7), 1, 0, 0, nil, false)
	c.Burst(true)
	c.Append(2, Kind(7), 2, 0, 0, nil, true)
	c.Append(1, Kind(8), 3, 0, 0, nil, true)
	c.Append(2, Kind(9), 4, 0, 0, nil, true)
	c.Burst(false)

	// The burst drains exactly the destinations the handler touched,
	// ascending, with no timer latency; dst 4's backlog stays put.
	if len(*got) != 2 {
		t.Fatalf("burst drained %d messages, want 2", len(*got))
	}
	if (*got)[0].Dst != 1 || (*got)[1].Dst != 2 {
		t.Fatalf("burst drain dsts [%d %d], want ascending [1 2]", (*got)[0].Dst, (*got)[1].Dst)
	}
	if (*got)[1].Kind != Kind(99) || (*got)[1].Arg != 2 {
		t.Fatalf("dst 2's burst segments did not share one carrier: %+v", (*got)[1])
	}
	if c.Pending(4) != 1 {
		t.Fatalf("burst flushed dst 4 (pending %d), which it never appended to", c.Pending(4))
	}
}

func TestCoalesceDrainTriggerOnPlainSend(t *testing.T) {
	env, net, _, _ := testNet(3)
	// Real wiring this time: the coalescer injects into the network, so
	// the drain trigger's ordering is observable at the receiver.
	c := net.AttachCoalescer(0, Kind(99), 8, 0, func(m *Message) { net.Send(m) })
	var order []Kind
	net.Bind(0, func(m *Message) {})
	net.Bind(1, func(m *Message) { order = append(order, m.Kind) })
	net.Bind(2, func(m *Message) {})

	c.Append(1, Kind(7), 1, 0, 0, nil, false)
	c.Append(1, Kind(7), 2, 0, 0, nil, false)
	// A plain protocol message to the same destination must push the
	// buffered segments out ahead of itself.
	net.Send(&Message{Src: 0, Dst: 1, Kind: Kind(5), Size: 8})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != Kind(99) || order[1] != Kind(5) {
		t.Fatalf("arrival order %v, want buffered carrier (99) before the plain send (5)", order)
	}
}

func TestCoalesceGatherBufferGrowthAndReuse(t *testing.T) {
	_, net, _, _ := testNet(3)
	c, got := capture(net, 0, 0)

	// Push well past the initial bucket so the gather buffer regrows
	// several times, then verify content integrity end to end.
	var want [][]byte
	for i := 0; i < 64; i++ {
		p := bytes.Repeat([]byte{byte(i)}, 96)
		want = append(want, p)
		c.Append(1, Kind(7), i, int64(i), 0, p, false)
	}
	c.FlushDst(1)
	if len(*got) != 1 {
		t.Fatalf("drained %d carriers, want 1", len(*got))
	}
	m := (*got)[0]
	i := 0
	ForEachSegment(m.Data, int(m.Arg), func(k Kind, addr int, a1, a2 int64, p []byte) {
		if addr != i || a1 != int64(i) || !bytes.Equal(p, want[i]) {
			t.Fatalf("segment %d corrupted after buffer growth", i)
		}
		i++
	})
	if i != 64 {
		t.Fatalf("decoded %d segments, want 64", i)
	}

	// Recycle the carrier and refill: the pooled gather buffer must be
	// reused without residue from the previous epoch.
	m.DataPooled = true
	m.pooled = true
	net.Recycle(m)
	c.Append(1, Kind(7), 7, 7, 0, []byte{77}, false)
	c.Append(1, Kind(7), 8, 8, 0, []byte{88}, false)
	c.FlushDst(1)
	m2 := (*got)[1]
	if m2.Arg != 2 || m2.Size != 2*(SegHeader+1) {
		t.Fatalf("reused buffer carrier wrong: segs=%d size=%d", m2.Arg, m2.Size)
	}
}

func TestCoalesceAppendToSelfPanics(t *testing.T) {
	_, net, _, _ := testNet(2)
	c, _ := capture(net, 0, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("append to self did not panic")
		}
	}()
	c.Append(0, Kind(7), 1, 0, 0, nil, false)
}

func TestCoalesceDuplicateAttachPanics(t *testing.T) {
	_, net, _, _ := testNet(2)
	capture(net, 0, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("second AttachCoalescer for the same node did not panic")
		}
	}()
	capture(net, 0, 0)
}

// TestCoalesceTeardownMidWindow kills the coalescer's node while a
// batch window is open: the armed timer must find nothing to emit, the
// buffered segments must not survive as a carrier, and later appends
// must be swallowed. A crash between window-open and window-close can
// never strand segments or leak traffic from a dead node.
func TestCoalesceTeardownMidWindow(t *testing.T) {
	env, net, _, _ := testNet(3)
	const window = sim.Time(4000)
	c, got := capture(net, 0, window)

	env.Spawn("driver", func(p *sim.Proc) {
		c.Append(1, Kind(7), 1, 0, 0, nil, true) // opens the window
		c.Append(1, Kind(7), 2, 0, 0, nil, true)
		p.Sleep(window / 2)
		if !c.PendingAny() {
			t.Error("segments not buffered before teardown")
		}
		c.Teardown() // the node crashed mid-window
		if c.PendingAny() {
			t.Error("PendingAny true after teardown")
		}
		if segs, bytes := c.Occupancy(); segs != 0 || bytes != 0 {
			t.Errorf("occupancy %d seg(s)/%dB after teardown, want empty", segs, bytes)
		}
		// The dead node's protocol engine must not be able to buffer
		// more traffic either.
		c.Append(1, Kind(7), 3, 0, 0, nil, true)
		if c.PendingAny() {
			t.Error("append after teardown buffered a segment")
		}
		p.Sleep(window) // run past the armed timer's deadline
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if len(*got) != 0 {
		t.Fatalf("teardown leaked %d carrier(s) onto the wire", len(*got))
	}
}

// TestCoalesceTeardownThenFlushAll: an explicit drain on a dead
// coalescer (e.g. the protocol's epoch close racing the crash) is a
// no-op rather than a resurrection.
func TestCoalesceTeardownThenFlushAll(t *testing.T) {
	_, net, _, _ := testNet(3)
	c, got := capture(net, 0, 0)
	c.Append(1, Kind(7), 1, 0, 0, nil, false)
	c.Append(1, Kind(7), 2, 0, 0, nil, false)
	c.Teardown()
	c.FlushAll()
	c.FlushDst(1)
	if len(*got) != 0 {
		t.Fatalf("flush on a dead coalescer emitted %d message(s)", len(*got))
	}
}
