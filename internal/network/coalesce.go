// Barrier-epoch message aggregation: a per-node NIC-level coalescing
// scheduler. Latency-tolerant protocol traffic — compiler-directed
// tagged data across different Transfers and arrays, flush-directory
// updates, mk_writable acknowledgements, and the eager-release-
// consistency upgrade/invalidation legs — is appended to a
// per-destination gather buffer instead of departing as a standalone
// message. Each buffer drains as ONE vectored wire message (a carrier)
// with one header and one handler dispatch at the receiver, which then
// scatters the contained segments to their original handlers.
//
// Drain discipline. Buffers only ever *delay* traffic, never reorder
// it against messages that matter: any non-carrier send from the same
// source to the same destination first drains that destination's
// buffer (the choke point lives in Network.Send), explicit drains run
// at the end of every compiler emission phase and at every
// synchronization entry (the barrier forces a flush), and segments
// appended from the protocol engine additionally arm a short timer so
// engine-generated bursts depart within AggDelay even if the compute
// process never reaches a drain point. Carriers are injected through
// the protocol engine (the NIC composes them), so serialization
// overlaps compute and carriers never overtake engine replies composed
// earlier.
//
// Determinism: per-destination buffers are dense slices indexed by
// node id, FlushAll drains in ascending destination order, and no map
// is touched anywhere on the wire path.
package network

import (
	"encoding/binary"
	"fmt"

	"hpfdsm/internal/sim"
	"hpfdsm/internal/stats"
)

// SegHeader is the physical per-segment header inside a carrier:
// kind (1) + addr (4) + arg (4) + arg2 (4) + payload length (4).
// Message.Size of a carrier is the exact sum of its encoded segments,
// so byte accounting matches the wire format.
const SegHeader = 1 + 4 + 4 + 4 + 4

// dstBuf is one destination's open gather buffer.
type dstBuf struct {
	data     []byte   // encoded segments (pooled variable-size buffer)
	segs     int      // segments appended since the last drain
	deadline sim.Time // current timer deadline (engine appends only)
	burst    bool     // appended to during the current handler burst
}

// timerArg is the reusable ScheduleArg payload for drain timers; one
// per (coalescer, destination), so arming allocates nothing.
type timerArg struct {
	c   *Coalescer
	dst int
}

func timerEvent(a any) {
	ta := a.(*timerArg)
	ta.c.timerFire(ta.dst)
}

// Coalescer is one node's NIC-level coalescing scheduler.
type Coalescer struct {
	net     *Network
	env     *sim.Env // the Env node src's events run on (partition Env in PDES mode)
	src     int
	kind    Kind           // carrier message kind (protocol-defined)
	ctrl    int            // Size of a payload-free standalone message
	delay   sim.Time       // engine drain timer
	send    func(*Message) // carrier injection (the node's protocol engine)
	bufs    []dstBuf
	timers  []timerArg
	st      *stats.Node
	inBurst bool // inside a protocol-handler run (see Burst)
	dead    bool // torn down after a crash; appends and drains are inert
}

// AttachCoalescer creates and registers the coalescing scheduler for
// source node src. kind is the carrier message kind (the network
// treats it opaquely but must recognize it to avoid recursive drain
// triggers); ctrl is the protocol's control-message Size, so a
// single-segment drain reproduces the standalone message it replaces
// byte-for-byte; send injects a composed carrier — the protocol layer
// passes the node's engine-context send, so every carrier pays one
// SendOver and departs when the engine's queued work completes.
func (n *Network) AttachCoalescer(src int, kind Kind, ctrl int, delay sim.Time, send func(*Message)) *Coalescer {
	if n.coals == nil {
		n.coals = make([]*Coalescer, len(n.eps))
	}
	if n.coals[src] != nil {
		panic(fmt.Sprintf("network: node %d already has a coalescer", src))
	}
	c := &Coalescer{
		net: n, env: n.envOf(src), src: src, kind: kind, ctrl: ctrl, delay: delay, send: send,
		bufs:   make([]dstBuf, len(n.eps)),
		timers: make([]timerArg, len(n.eps)),
		st:     &n.st.Nodes[src],
	}
	for d := range c.timers {
		c.timers[d] = timerArg{c: c, dst: d}
	}
	n.coals[src] = c
	return c
}

// Append adds one segment bound for dst to the open gather buffer.
// payload may be nil for control segments. With timer set (engine-
// context appends), an empty buffer arms the drain timer: the segment
// departs at most c.delay later. Compute-context appends leave the
// timer off — the emission phase ends with an explicit drain, and
// every synchronization entry drains as a backstop.
func (c *Coalescer) Append(dst int, kind Kind, addr int, arg, arg2 int64, payload []byte, timer bool) {
	if dst == c.src {
		panic("network: coalescer append to self")
	}
	if c.dead {
		return // torn down: a crashed node buffers nothing
	}
	b := &c.bufs[dst]
	need := SegHeader + len(payload)
	if b.data == nil {
		b.data = c.net.AllocVar(c.src, need)[:0]
	}
	off := len(b.data)
	if off+need > cap(b.data) {
		grown := c.net.AllocVar(c.src, off+need)[:off]
		copy(grown, b.data)
		c.net.recycleVar(c.src, b.data)
		b.data = grown
	}
	b.data = b.data[:off+need]
	seg := b.data[off:]
	seg[0] = byte(kind)
	binary.LittleEndian.PutUint32(seg[1:], uint32(addr))
	binary.LittleEndian.PutUint32(seg[5:], uint32(arg))
	binary.LittleEndian.PutUint32(seg[9:], uint32(arg2))
	binary.LittleEndian.PutUint32(seg[13:], uint32(len(payload)))
	copy(seg[SegHeader:], payload)
	b.segs++
	c.st.SegsCoalesced++
	if c.inBurst {
		b.burst = true
	}
	if timer && b.segs == 1 {
		// Batch window: the first append opens a window of c.delay and
		// the buffer drains when it closes, no matter how many later
		// appends joined. (A refreshing debounce would hold a steady
		// request stream back until the next synchronization point.)
		b.deadline = c.env.Now() + c.delay
		c.env.ScheduleArg(b.deadline, timerEvent, &c.timers[dst])
	}
}

// Pending returns the number of segments buffered for dst.
func (c *Coalescer) Pending(dst int) int { return c.bufs[dst].segs }

// Burst brackets one protocol-handler run. begin marks the start; the
// matching end drains, in ascending destination order, exactly the
// buffers the handler appended to — the handler's scatter IS the burst,
// so its composed replies depart together with no timer latency. The
// drain timer remains as a backstop for engine appends made outside
// handler runs (deferred directory work).
func (c *Coalescer) Burst(begin bool) {
	if begin {
		c.inBurst = true
		return
	}
	c.inBurst = false
	for d := range c.bufs {
		if c.bufs[d].burst {
			c.FlushDst(d)
		}
	}
}

// PendingAny reports whether any destination has buffered segments.
func (c *Coalescer) PendingAny() bool {
	for d := range c.bufs {
		if c.bufs[d].segs > 0 {
			return true
		}
	}
	return false
}

// Occupancy returns the total buffered segments and encoded bytes
// across all destinations (stall-watchdog diagnostics).
func (c *Coalescer) Occupancy() (segs, bytes int) {
	for d := range c.bufs {
		segs += c.bufs[d].segs
		bytes += len(c.bufs[d].data)
	}
	return segs, bytes
}

// Teardown is the crash-stop drain path: it discards every buffered
// segment and permanently disables the scheduler, so a node that dies
// inside an open batch window can neither compose a posthumous carrier
// when the armed drain timer fires nor strand segments in a buffer
// that looks live. (A graceful quiesce — barrier entry or NICDrain —
// flushes instead; see FlushAll.)
func (c *Coalescer) Teardown() {
	for d := range c.bufs {
		b := &c.bufs[d]
		if b.data != nil {
			c.net.recycleVar(c.src, b.data)
		}
		b.data, b.segs, b.burst, b.deadline = nil, 0, false, 0
	}
	c.dead = true
}

// timerFire is the drain-timer event: a buffer that has reached its
// deadline drains. An earlier (stale) timer for a buffer whose
// deadline moved forward does nothing — the arming append scheduled a
// fresh event at the new deadline only when the buffer was empty, and
// a later append's deadline is always covered by a pending event at or
// before it plus this guard re-checking on every fire.
func (c *Coalescer) timerFire(dst int) {
	b := &c.bufs[dst]
	if c.dead || b.segs == 0 {
		return // a dead node's armed window must not compose a carrier
	}
	if now := c.env.Now(); now < b.deadline {
		// Deadline moved (flush + refill since this event was armed):
		// re-check at the current deadline.
		c.env.ScheduleArg(b.deadline, timerEvent, &c.timers[dst])
		return
	}
	c.FlushDst(dst)
}

// FlushDst composes and injects dst's buffered segments as one carrier
// message. A buffer holding a single segment bypasses the carrier
// framing: it departs as a standalone message of its original kind —
// same bytes, no scatter dispatch at the receiver — so destinations
// that never accumulate a batch pay nothing for the machinery. No-op
// on an empty buffer.
func (c *Coalescer) FlushDst(dst int) {
	b := &c.bufs[dst]
	if c.dead || b.segs == 0 {
		return
	}
	data, segs := b.data, b.segs
	b.data = nil
	b.segs = 0
	b.burst = false
	if segs == 1 {
		var m *Message
		ForEachSegment(data, 1, func(kind Kind, addr int, arg, arg2 int64, payload []byte) {
			m = c.net.NewMessage(c.src)
			m.Src, m.Dst, m.Kind, m.Addr, m.Arg, m.Arg2 = c.src, dst, kind, addr, arg, arg2
			if m.Size = len(payload); m.Size < c.ctrl {
				m.Size = c.ctrl
			}
			if len(payload) > 0 {
				if len(payload) == c.net.mc.BlockSize {
					m.Data = c.net.AllocBlock(c.src)
				} else {
					m.Data = c.net.AllocVar(c.src, len(payload))[:len(payload)]
				}
				copy(m.Data, payload)
				m.DataPooled = true
			}
		})
		c.net.recycleVar(c.src, data)
		c.st.SegsCoalesced-- // never traveled coalesced
		c.send(m)
		return
	}
	m := c.net.NewMessage(c.src)
	m.Src, m.Dst, m.Kind = c.src, dst, c.kind
	m.Arg = int64(segs)
	m.Data, m.DataPooled = data, true
	m.Size = len(data)
	c.st.CarriersSent++
	c.send(m)
}

// FlushAll drains every destination's buffer, in ascending
// destination order (deterministic).
func (c *Coalescer) FlushAll() {
	for d := range c.bufs {
		c.FlushDst(d)
	}
}

// ForEachSegment decodes a carrier payload, invoking fn for each of
// the n contained segments in append order. The payload slice passed
// to fn aliases data and is only valid during the call.
func ForEachSegment(data []byte, n int, fn func(kind Kind, addr int, arg, arg2 int64, payload []byte)) {
	off := 0
	for i := 0; i < n; i++ {
		if off+SegHeader > len(data) {
			panic(fmt.Sprintf("network: carrier truncated at segment %d/%d (offset %d of %d)", i, n, off, len(data)))
		}
		kind := Kind(data[off])
		addr := int(binary.LittleEndian.Uint32(data[off+1:]))
		arg := int64(binary.LittleEndian.Uint32(data[off+5:]))
		arg2 := int64(binary.LittleEndian.Uint32(data[off+9:]))
		plen := int(binary.LittleEndian.Uint32(data[off+13:]))
		off += SegHeader
		if off+plen > len(data) {
			panic(fmt.Sprintf("network: carrier payload truncated at segment %d/%d", i, n))
		}
		var payload []byte
		if plen > 0 {
			payload = data[off : off+plen]
		}
		off += plen
		fn(kind, addr, arg, arg2, payload)
	}
}
