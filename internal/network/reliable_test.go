package network

import (
	"fmt"
	"strings"
	"testing"

	"hpfdsm/internal/config"
	"hpfdsm/internal/sim"
	"hpfdsm/internal/stats"
)

// testNet builds a 2-node network with the given fault config and
// returns it with a per-node delivery log.
func faultNet(t *testing.T, f config.Faults) (*sim.Env, *Network, *stats.Cluster, *[][]*Message) {
	t.Helper()
	env := sim.NewEnv()
	mc := config.Default().WithNodes(2).WithFaults(f)
	st := stats.New(2)
	n := New(env, mc, st)
	got := make([][]*Message, 2)
	for i := 0; i < 2; i++ {
		i := i
		n.Bind(i, func(m *Message) { got[i] = append(got[i], m) })
	}
	return env, n, st, &got
}

func TestReliableInOrderDelivery(t *testing.T) {
	// Heavy jitter plus reordering scrambles arrival order; the layer
	// must still deliver in send order with no losses or duplicates.
	env, n, st, got := faultNet(t, config.Faults{
		Drop: 0.2, Dup: 0.1, Jitter: 30 * sim.Microsecond, Reorder: 0.2, Seed: 7,
	})
	const N = 500
	for i := 0; i < N; i++ {
		n.Send(&Message{Src: 0, Dst: 1, Kind: 1, Arg: int64(i), Size: 16})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if len((*got)[1]) != N {
		t.Fatalf("delivered %d messages, want %d", len((*got)[1]), N)
	}
	for i, m := range (*got)[1] {
		if m.Arg != int64(i) {
			t.Fatalf("delivery %d has Arg=%d: order violated", i, m.Arg)
		}
	}
	if st.TotalWireDrops() == 0 || st.TotalWireDups() == 0 || st.TotalRetransmits() == 0 {
		t.Fatalf("fault counters flat: drops=%d dups=%d retransmits=%d",
			st.TotalWireDrops(), st.TotalWireDups(), st.TotalRetransmits())
	}
	if n.DumpChannels() != "" {
		t.Fatalf("channels not idle after drain:\n%s", n.DumpChannels())
	}
}

func TestReliableDedupUnderHeavyDup(t *testing.T) {
	env, n, st, got := faultNet(t, config.Faults{Dup: 0.99, Seed: 3})
	const N = 200
	for i := 0; i < N; i++ {
		n.Send(&Message{Src: 0, Dst: 1, Kind: 1, Arg: int64(i), Size: 16})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if len((*got)[1]) != N {
		t.Fatalf("delivered %d messages, want exactly %d (idempotent receive)", len((*got)[1]), N)
	}
	if st.TotalDupsDropped() == 0 {
		t.Fatal("expected receive-side dedup discards under Dup=0.99")
	}
}

func TestRetransmitTimeoutFiresOncePerWindow(t *testing.T) {
	// A blackholed link loses every transmission; the retransmit timer
	// must fire exactly once per backoff window, doubling up to the
	// clamp.
	f := config.Faults{
		Drop: 0.000001, Seed: 1, // activate the layer; effectively lossless
		RetransmitTimeout: 100 * sim.Microsecond,
		MaxBackoff:        800 * sim.Microsecond,
	}
	env, n, st, _ := faultNet(t, f)
	n.Blackhole(0, 1)
	n.Send(&Message{Src: 0, Dst: 1, Kind: 1, Size: 16})

	// Each timer is anchored at its transmission's nominal arrival (one
	// hop = serialization + wire latency past the moment it got onto the
	// wire), then fires after the current RTO: 100, 200, 400, then 800us
	// clamped. Probe just before and just after each deadline: the timer
	// must fire exactly once per backoff window, doubling up to the
	// clamp.
	mc := config.Default()
	hop := sim.Time(mc.MsgHeader+16)*mc.NsPerByte + mc.WireLatency
	rto := f.RetransmitTimeout
	deadline := sim.Time(0)
	for i := 0; i < 5; i++ {
		deadline += hop + rto
		env.RunUntil(deadline - 1)
		if got := st.TotalRetransmits(); got != int64(i) {
			t.Fatalf("at t=%dns: %d retransmits, want %d (timer fired early)", deadline-1, got, i)
		}
		env.RunUntil(deadline + 1)
		if got := st.TotalRetransmits(); got != int64(i+1) {
			t.Fatalf("at t=%dns: %d retransmits, want %d (backoff must double and fire once per window)", deadline+1, got, i+1)
		}
		rto *= 2
		if rto > f.MaxBackoff {
			rto = f.MaxBackoff
		}
	}
}

func TestRetransmitGivesUpAfterMaxRetries(t *testing.T) {
	f := config.Faults{
		Drop: 0.000001, Seed: 1,
		RetransmitTimeout: 50 * sim.Microsecond,
		MaxRetries:        3,
	}
	env, n, st, _ := faultNet(t, f)
	n.Blackhole(0, 1)
	n.Send(&Message{Src: 0, Dst: 1, Kind: 1, Size: 16})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if got := st.TotalRetransmits(); got != 3 {
		t.Fatalf("retransmits = %d, want exactly MaxRetries=3", got)
	}
	if got := st.TotalGiveUps(); got != 1 {
		t.Fatalf("give-ups = %d, want 1", got)
	}
	if !strings.Contains(fmt.Sprint(st), "GIVE-UPS") {
		t.Fatalf("cluster summary does not surface the give-up:\n%s", st)
	}
}

func TestAckCoalescing(t *testing.T) {
	// A burst of messages arriving within one AckDelay window must be
	// covered by far fewer cumulative ACKs than messages.
	f := config.Faults{
		Jitter: 1, Seed: 2, // activate with negligible perturbation
		AckDelay: 40 * sim.Microsecond,
	}
	env, n, st, got := faultNet(t, f)
	const N = 50
	for i := 0; i < N; i++ {
		n.Send(&Message{Src: 0, Dst: 1, Kind: 1, Size: 16})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if len((*got)[1]) != N {
		t.Fatalf("delivered %d, want %d", len((*got)[1]), N)
	}
	acks := st.TotalAcksSent()
	if acks == 0 || acks > int64(N/4) {
		t.Fatalf("acks = %d for %d messages; coalescing should cover bursts with few cumulative ACKs", acks, N)
	}
	if st.TotalRetransmits() != 0 {
		t.Fatalf("lossless wire with working ACKs retransmitted %d times", st.TotalRetransmits())
	}
}

func TestReliableDeterminism(t *testing.T) {
	run := func() (string, int64, int64) {
		env, n, st, got := faultNet(t, config.Faults{
			Drop: 0.1, Dup: 0.05, Jitter: 10 * sim.Microsecond, Reorder: 0.1, Seed: 42,
		})
		for i := 0; i < 300; i++ {
			src := i % 2
			n.Send(&Message{Src: src, Dst: 1 - src, Kind: 1, Arg: int64(i), Size: 16})
		}
		if err := env.Run(); err != nil {
			t.Fatal(err)
		}
		var sig strings.Builder
		for i := 0; i < 2; i++ {
			for _, m := range (*got)[i] {
				fmt.Fprintf(&sig, "%d:%d;", i, m.Arg)
			}
		}
		return sig.String(), st.TotalRetransmits(), st.TotalWireDrops()
	}
	s1, r1, d1 := run()
	s2, r2, d2 := run()
	if s1 != s2 || r1 != r2 || d1 != d2 {
		t.Fatalf("same seed produced different schedules: retransmits %d vs %d, drops %d vs %d",
			r1, r2, d1, d2)
	}
}

func TestZeroFaultConfigIsInert(t *testing.T) {
	env, n, _, got := faultNet(t, config.Faults{})
	if n.Unreliable() {
		t.Fatal("zero-value fault config must not activate the reliable layer")
	}
	n.Send(&Message{Src: 0, Dst: 1, Kind: 1, Size: 16})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	m := (*got)[1][0]
	if m.Seq != 0 {
		t.Fatalf("lossless message carries Seq=%d, want 0 (unsequenced)", m.Seq)
	}
}
