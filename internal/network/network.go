// Package network simulates the cluster interconnect (Myrinet in the
// paper): point-to-point messages with a fixed one-way wire latency plus
// per-byte serialization time on the sender's link. Messages between the
// same pair of nodes are delivered in order; serialization occupancy on
// the sending link naturally pipelines back-to-back sends.
package network

import (
	"fmt"

	"hpfdsm/internal/config"
	"hpfdsm/internal/sim"
	"hpfdsm/internal/stats"
	"hpfdsm/internal/trace"
)

// Kind distinguishes message types; values are defined by the protocol
// layer. The network treats them opaquely.
type Kind uint8

// Message is one network message. Addr/Arg fields carry protocol
// metadata; Data carries block payloads. Size is the payload size in
// bytes used for timing and byte accounting (header accounted
// separately); Data may be nil for control messages.
//
// Messages obtained from Network.NewMessage are recycled automatically
// after their delivery handler returns; a handler that keeps a
// reference past its own return must call Retain. Messages built
// directly with a literal are never recycled.
type Message struct {
	Src, Dst int
	Kind     Kind
	Addr     int   // address or range start
	Arg      int64 // protocol-defined
	Arg2     int64 // protocol-defined
	Data     []byte
	Size     int
	Seq      int64 // reliable-delivery sequence number (0 = unsequenced)

	// DataPooled marks Data as borrowed from the network's block-buffer
	// pool (AllocBlock); the buffer is reclaimed when the delivered
	// message is recycled.
	DataPooled bool

	net      *Network // owning network, set at creation or first Send
	pooled   bool     // recycle after the delivery handler returns
	retained bool     // handler kept the message; skip recycling
	flow     uint64   // trace flow id of the latest transmission (0 = untraced)
}

// Flow returns the message's trace flow identifier: the id of the
// physical transmission that carried it, linking the sender's wire span
// to the receiving handler. Zero when tracing is off.
func (m *Message) Flow() uint64 { return m.flow }

// Retain marks a delivered message (and its Data) as kept by the
// handler beyond its return, exempting both from recycling. Required
// whenever a handler queues or defers the message.
func (m *Message) Retain() { m.retained = true }

func (m *Message) String() string {
	return fmt.Sprintf("msg{%d->%d kind=%d addr=%#x arg=%d arg2=%d seq=%d size=%d}",
		m.Src, m.Dst, m.Kind, m.Addr, m.Arg, m.Arg2, m.Seq, m.Size)
}

// Endpoint receives delivered messages; the protocol layer installs one
// per node. The handler runs in scheduler context at the arrival time;
// it is responsible for modeling receive-side CPU occupancy.
type Endpoint func(m *Message)

// Network connects n endpoints through the simulated wire. When the
// machine's fault configuration is active, every inter-node message
// travels through the fault-injection layer and the reliable-delivery
// protocol (see reliable.go); otherwise the wire is the paper's
// lossless, ordered Myrinet and behavior is bit-identical to the
// original model.
type Network struct {
	env      *sim.Env
	mc       config.Machine
	eps      []Endpoint
	linkFree []sim.Time // sender-link next-free time
	mseq     []uint32   // per-source delivery sequence (sim.ScheduleDelivery key)
	st       *stats.Cluster
	rel      *reliable // nil unless fault injection is active

	// Conservative-PDES mode (NewPartitioned): envs[i] is node i's
	// partition Env and post is the cross-partition mailbox hook. A
	// send whose source and destination share an Env schedules locally;
	// anything else is posted for injection at the next window
	// boundary. nil envs (New) is the sequential single-Env mode.
	envs []*sim.Env
	post PostFn

	// Freelists for zero-steady-state-allocation messaging: one msgPool
	// per partition Env (a single pool in sequential mode), so every
	// list stays single-threaded and plain slices beat sync.Pool (no
	// locking, no per-P shards). Allocation draws from the sending
	// node's partition pool; Recycle returns to the *destination*'s
	// pool, because delivery — the only place pool-owned messages are
	// recycled — runs on the destination's thread. Pooling is disabled
	// when the reliable layer is active: duplication and retransmission
	// keep references past delivery.
	pool   bool
	pools  []msgPool
	partOf []int // node -> pools index; nil in sequential mode (all 0)

	// coals holds each source node's coalescing scheduler (nil slice or
	// nil entries when aggregation is off). Send consults it: any
	// non-carrier message from src to dst first drains dst's buffer, so
	// coalescing only ever delays traffic relative to the uncoalesced
	// wire, never reorders it past a message that departs.
	coals []*Coalescer

	// Crash-stop failure support. dead masks crashed nodes: a dead node
	// sends nothing, and every transmission to or from it vanishes at
	// delivery time — including traffic already in flight when it died.
	// inflight counts scheduled future wire actions (deliveries and
	// delayed departures); zero is one leg of the cluster-quiescence
	// predicate the checkpoint layer requires.
	dead     []bool
	inflight int
	detected map[int]bool // peers already declared dead (idempotence)

	// OnDeath, when non-nil, is invoked from scheduler context the
	// moment the failure detector declares a peer dead (retransmit
	// exhaustion with unanswered probes, or barrier-timeout probing).
	OnDeath func(node int, reason string)

	// tr, when non-nil, records wire spans and send→deliver flow links.
	// Every use is nil-guarded: a disabled tracer costs one predictable
	// branch per send and allocates nothing.
	tr *trace.Tracer
}

// msgPool is one partition's message and payload-buffer freelists.
// Each pool is written only by its partition's worker: allocation on
// the sending node's thread, recycling on the destination node's
// thread, with the epoch barrier ordering the hand-off of the message
// itself. The trailing pad keeps two partitions' list headers off one
// cache line. poolSoftCap bounds each list so asymmetric traffic (one
// partition receiving far more than it sends) cannot grow a receive-
// heavy pool without bound; beyond the cap, recycled values go back to
// the GC.
type msgPool struct {
	free    []*Message
	bufFree [][]byte     // BlockSize-sized payload buffers
	varFree [32][][]byte // variable-size gather buffers, power-of-two buckets
	_pad    [64]byte
}

const poolSoftCap = 1 << 14

// SetTracer installs the causal event tracer (nil disables tracing).
func (n *Network) SetTracer(t *trace.Tracer) { n.tr = t }

// New creates a network for mc.Nodes endpoints. Endpoints must be bound
// with Bind before any Send.
func New(env *sim.Env, mc config.Machine, st *stats.Cluster) *Network {
	n := &Network{
		env:      env,
		mc:       mc,
		eps:      make([]Endpoint, mc.Nodes),
		linkFree: make([]sim.Time, mc.Nodes),
		mseq:     make([]uint32, mc.Nodes),
		st:       st,
		pool:     !mc.Faults.Active(),
		pools:    make([]msgPool, 1),
		dead:     make([]bool, mc.Nodes),
	}
	if mc.Faults.Active() {
		n.rel = newReliable(n, mc.Faults)
	}
	return n
}

// PostFn queues a cross-partition event: fn(arg) must run on dst's
// partition Env at virtual time arrival. sent is the virtual time the
// source executed the send and seq the per-source delivery sequence —
// together with the source node id they form the schedule-independent
// delivery key the destination heap orders by.
type PostFn func(src, dst int, sent, arrival sim.Time, seq uint32, fn func(any), arg any)

// NewPartitioned creates a network in conservative-PDES mode: envs[i]
// is node i's partition environment and post the cross-partition
// mailbox hook. Pooling stays on, with one msgPool per partition:
// allocation draws from the sending node's partition pool and Recycle
// returns to the destination's, so every freelist is touched by
// exactly one partition worker (delivery runs on the destination's
// thread; a message that crossed partitions changed owners through the
// epoch barrier, which orders the hand-off). Fault injection is
// rejected: the reliable-delivery layer's retransmission timers are
// per-channel state that the window scheduler does not partition.
func NewPartitioned(envs []*sim.Env, post PostFn, mc config.Machine, st *stats.Cluster) *Network {
	if mc.Faults.Active() {
		panic("network: fault injection is not supported in partitioned (PDES) mode")
	}
	if len(envs) != mc.Nodes {
		panic(fmt.Sprintf("network: NewPartitioned needs one env per node: %d != %d", len(envs), mc.Nodes))
	}
	n := New(envs[0], mc, st)
	n.envs = envs
	n.post = post
	// Index the distinct partition Envs in first-appearance order; node
	// contiguity is not assumed.
	n.partOf = make([]int, len(envs))
	index := map[*sim.Env]int{}
	for i, e := range envs {
		idx, ok := index[e]
		if !ok {
			idx = len(index)
			index[e] = idx
		}
		n.partOf[i] = idx
	}
	n.pools = make([]msgPool, len(index))
	return n
}

// envOf returns the Env that owns node's events: its partition Env in
// PDES mode, the single shared Env otherwise.
//
//simlint:hotpath
func (n *Network) envOf(node int) *sim.Env {
	if n.envs != nil {
		return n.envs[node]
	}
	return n.env
}

// poolOf returns the freelist pool node's partition owns: its
// partition's pool in PDES mode, the single shared pool otherwise.
//
//simlint:hotpath
func (n *Network) poolOf(node int) *msgPool {
	if n.partOf != nil {
		return &n.pools[n.partOf[node]]
	}
	return &n.pools[0]
}

// NewMessage returns a zeroed message owned by this network, reusing a
// recycled one from src's partition pool when the pool is active. src
// must be the node on whose Env the caller is executing (the sender).
// Callers fill the fields and Send it; after the delivery handler
// returns, the message goes back to the destination's pool unless the
// handler Retained it.
//
//simlint:hotpath
func (n *Network) NewMessage(src int) *Message {
	if n.pool {
		p := n.poolOf(src)
		if k := len(p.free); k > 0 {
			m := p.free[k-1]
			p.free = p.free[:k-1]
			m.pooled = true
			return m
		}
		//simlint:ignore hotalloc -- pool miss: the message population grows to its high-water mark once, then every call is a freelist hit (bench gate holds allocs/op)
		return &Message{net: n, pooled: true}
	}
	//simlint:ignore hotalloc -- pooling is off under fault injection (retransmission keeps references past delivery); the faults path trades allocs for correctness by design
	return &Message{}
}

// AllocBlock returns a coherence-block-sized payload buffer from src's
// partition pool, reusing a recycled one when possible. src must be
// the node on whose Env the caller is executing. Senders attach it to
// a message with DataPooled set so delivery can reclaim it.
//
//simlint:hotpath
func (n *Network) AllocBlock(src int) []byte {
	p := n.poolOf(src)
	if k := len(p.bufFree); k > 0 {
		b := p.bufFree[k-1]
		p.bufFree = p.bufFree[:k-1]
		return b
	}
	return make([]byte, n.mc.BlockSize)
}

// AllocVar returns a payload buffer with len == cap >= size from src's
// partition pool's power-of-two-bucketed variable-size freelists
// (gather buffers for coalesced carriers and multi-block bulk
// payloads). src must be the node on whose Env the caller is
// executing. Attach it to a message with DataPooled set so delivery
// reclaims it.
//
//simlint:hotpath
func (n *Network) AllocVar(src, size int) []byte {
	idx := varBucket(size)
	p := n.poolOf(src)
	if l := p.varFree[idx]; len(l) > 0 {
		b := l[len(l)-1]
		p.varFree[idx] = l[:len(l)-1]
		return b
	}
	return make([]byte, 1<<idx)
}

// varBucket maps a size to its power-of-two bucket (min 64 bytes).
func varBucket(size int) int {
	idx := 6
	for 1<<idx < size {
		idx++
	}
	return idx
}

// recycleVar returns a variable-size buffer to node's partition pool.
// node must be the node on whose Env the caller is executing.
func (n *Network) recycleVar(node int, b []byte) {
	c := cap(b)
	if c < 64 || c&(c-1) != 0 {
		return // not one of ours; let the GC have it
	}
	idx := varBucket(c)
	p := n.poolOf(node)
	if len(p.varFree[idx]) < poolSoftCap {
		p.varFree[idx] = append(p.varFree[idx], b[:c])
	}
}

// Recycle returns a delivered pool-owned message (and its pooled
// payload buffer) to the destination's partition pool — delivery runs
// on the destination's thread, so that is the only pool this call may
// touch. Called by the delivery layer after the handler returns; a
// no-op for literal-built or Retained messages.
//
//simlint:hotpath
func (n *Network) Recycle(m *Message) {
	if !m.pooled || m.retained {
		return
	}
	p := n.poolOf(m.Dst)
	if m.DataPooled {
		if len(m.Data) == n.mc.BlockSize && len(p.bufFree) < poolSoftCap {
			//simlint:ignore hotalloc -- returning a buffer to the freelist: the slice reuses capacity freed by the matching AllocBlock pop; net growth is bounded by the in-flight high-water mark and the pool soft cap
			p.bufFree = append(p.bufFree, m.Data)
		} else if len(m.Data) != n.mc.BlockSize {
			n.recycleVar(m.Dst, m.Data)
		}
	}
	*m = Message{net: n}
	if len(p.free) < poolSoftCap {
		//simlint:ignore hotalloc -- returning a message to the freelist: capacity was freed by the matching NewMessage pop; net growth is bounded by the in-flight high-water mark and the pool soft cap
		p.free = append(p.free, m)
	}
}

// Bind installs the delivery endpoint for node id.
func (n *Network) Bind(id int, ep Endpoint) { n.eps[id] = ep }

// Send injects m into the network at the current virtual time. The
// caller is responsible for the sender's CPU occupancy (SendOver); Send
// models only link serialization and wire latency. Sending to self is a
// local loopback with no wire cost.
//
//simlint:hotpath
func (n *Network) Send(m *Message) {
	if m.Src < 0 || m.Src >= len(n.eps) || m.Dst < 0 || m.Dst >= len(n.eps) {
		panic(fmt.Sprintf("network: bad endpoints in %v", m))
	}
	if n.dead[m.Src] {
		return // a crashed node sends nothing
	}
	if n.coals != nil && m.Src != m.Dst {
		// Drain trigger: a non-carrier departure to dst flushes the
		// sender's open gather buffer for dst first, preserving
		// per-pair order between buffered segments and everything the
		// protocol sends around them.
		if c := n.coals[m.Src]; c != nil && m.Kind != c.kind {
			c.FlushDst(m.Dst)
		}
	}
	m.net = n
	if m.Data != nil && m.Size == 0 {
		m.Size = len(m.Data)
	}
	if m.Src == m.Dst {
		// Loopback: deliver after local copy time only. Loopback never
		// touches the wire, so it bypasses fault injection — and never
		// crosses a partition.
		env := n.envOf(m.Src)
		n.accountSend(m)
		sent := env.Now()
		at := sent + sim.Time(m.Size)*n.mc.NsPerByte/4 + 1
		sq := n.mseq[m.Src]
		n.mseq[m.Src]++
		if n.envs == nil {
			n.accountRecv(m)
			if n.tr != nil {
				n.traceTx(m, sent, at, false)
			}
			n.inflight++
			env.ScheduleDelivery(at, sent, m.Src, sq, deliverEvent, m)
			return
		}
		env.ScheduleDelivery(at, sent, m.Src, sq, deliverEventP, m)
		return
	}
	if n.rel != nil {
		n.rel.send(m)
		return
	}
	n.accountSend(m)
	arrival := n.wireArrival(m)
	sq := n.mseq[m.Src]
	n.mseq[m.Src]++
	if n.envs == nil {
		n.accountRecv(m)
		if n.tr != nil {
			ser := sim.Time(n.mc.MsgHeader+m.Size) * n.mc.NsPerByte
			depart := arrival - n.mc.WireLatency - ser
			n.traceTx(m, depart, depart+ser, false)
		}
		n.inflight++
		n.env.ScheduleDelivery(arrival, n.env.Now(), m.Src, sq, deliverEvent, m)
		return
	}
	// PDES mode: receive-side accounting happens at delivery (on the
	// destination's thread); the inflight counter — one leg of the
	// checkpoint quiescence predicate, which PDES rejects — is not
	// maintained. The lossless wire makes send-time vs delivery-time
	// receive accounting equivalent: every send is delivered.
	srcEnv, dstEnv := n.envOf(m.Src), n.envOf(m.Dst)
	if srcEnv == dstEnv {
		srcEnv.ScheduleDelivery(arrival, srcEnv.Now(), m.Src, sq, deliverEventP, m)
		return
	}
	// Cross-partition: arrival >= send time + MsgTime(0) (serialization
	// of at least the header plus the wire latency), which is exactly
	// the window scheduler's lookahead — the mail always lands at or
	// past the current window's edge.
	n.post(m.Src, m.Dst, srcEnv.Now(), arrival, sq, deliverEventP, m)
}

// traceTx records one physical transmission: a serialization span on
// the sender's NIC lane and the start of the flow arrow that the
// receiving handler's span will terminate. Retransmissions get a fresh
// flow id with the superseded id as an argument, so every wire attempt
// is its own span but the causal chain stays connected. Only called
// with the tracer installed.
func (n *Network) traceTx(m *Message, start, end sim.Time, retx bool) {
	t := n.tr
	name := t.MsgName(uint8(m.Kind))
	args := []trace.Arg{trace.Int("dst", m.Dst), trace.Int("bytes", n.mc.MsgHeader+m.Size)}
	if m.Seq != 0 {
		args = append(args, trace.I64("seq", m.Seq))
	}
	if retx {
		name = name + " (retx)"
		args = append(args, trace.I64("supersedes_flow", int64(m.flow)))
	}
	if m.Kind != KindAck {
		m.flow = t.FlowID()
		t.FlowStart(m.Src, trace.LaneNIC, m.flow, start)
	}
	t.Span(m.Src, trace.LaneNIC, name, "tx", start, end, args...)
}

// deliverEvent and sendEvent are the shared event functions for
// ScheduleArg: one package-level func value each, so scheduling a
// delivery or a delayed departure allocates nothing. The P variants
// are their PDES-mode twins: they skip the inflight counter, which is
// only maintained single-threaded (checkpoint quiescence is rejected
// in PDES mode anyway).
var (
	deliverEvent  = func(a any) { m := a.(*Message); m.net.inflight--; m.net.deliver(m) }
	sendEvent     = func(a any) { m := a.(*Message); m.net.inflight--; m.net.Send(m) }
	deliverEventP = func(a any) { m := a.(*Message); m.net.deliver(m) }
	sendEventP    = func(a any) { m := a.(*Message); m.net.Send(m) }
)

// SendAt injects m at absolute virtual time t (a delayed departure,
// e.g. a reply leaving when the protocol engine's queued work
// completes). The departure event runs on the sender's Env; Send then
// routes the transmission.
func (n *Network) SendAt(t sim.Time, m *Message) {
	m.net = n
	if n.envs != nil {
		n.envOf(m.Src).ScheduleArg(t, sendEventP, m)
		return
	}
	n.inflight++
	n.env.ScheduleArg(t, sendEvent, m)
}

// accountSend records one wire transmission in the sender's counters.
func (n *Network) accountSend(m *Message) {
	bytes := int64(n.mc.MsgHeader + m.Size)
	n.st.Nodes[m.Src].MsgsSent++
	n.st.Nodes[m.Src].BytesSent += bytes
}

// accountRecv records one wire arrival in the receiver's counters. On
// the lossless network it is charged at send time (delivery is
// certain); the fault-injection layer charges it when a transmission
// actually reaches the destination.
func (n *Network) accountRecv(m *Message) {
	bytes := int64(n.mc.MsgHeader + m.Size)
	n.st.Nodes[m.Dst].MsgsRecv++
	n.st.Nodes[m.Dst].BytesRecv += bytes
}

// wireArrival reserves the sender's link for one transmission and
// returns its arrival time at the destination: serialization behind any
// queued transmissions plus the wire latency. linkFree[src] is only
// touched from src's own Env, so the reservation is single-threaded in
// PDES mode too.
func (n *Network) wireArrival(m *Message) sim.Time {
	depart := n.envOf(m.Src).Now()
	if n.linkFree[m.Src] > depart {
		depart = n.linkFree[m.Src]
	}
	ser := sim.Time(n.mc.MsgHeader+m.Size) * n.mc.NsPerByte
	n.linkFree[m.Src] = depart + ser
	return depart + ser + n.mc.WireLatency
}

func (n *Network) deliver(m *Message) {
	if n.dead[m.Dst] || n.dead[m.Src] {
		return // crash-stop: traffic touching a dead node vanishes
	}
	ep := n.eps[m.Dst]
	if ep == nil {
		panic(fmt.Sprintf("network: no endpoint bound for node %d", m.Dst))
	}
	if n.envs != nil {
		// PDES mode charges receive counters at delivery: the write
		// lands on the destination's thread. Loopback keeps send-time
		// accounting semantics but routes through here too, so the
		// charge is unconditional.
		n.accountRecv(m)
	}
	// A delivery is forward progress for the stall watchdog even while
	// every compute process is blocked at a sync point: a long
	// transaction drain must not be mistaken for a stall. (Duplicates
	// discarded by the reliable layer never reach this point.)
	n.envOf(m.Dst).Progress()
	ep(m)
}

// MarkDead injects a crash-stop failure: from this instant node id
// sends nothing and every transmission to or from it — including
// traffic already in flight — vanishes at delivery time. The node's
// reliable-delivery and coalescer state is left in place; survivors'
// retransmissions to the dead node are exactly what drives detection.
func (n *Network) MarkDead(id int) { n.dead[id] = true }

// Dead reports whether node id has been marked crashed.
func (n *Network) Dead(id int) bool { return n.dead[id] }

// Inflight returns the number of scheduled future wire actions
// (pending deliveries and delayed departures). Zero means the wire is
// silent — one leg of the checkpoint layer's quiescence predicate.
func (n *Network) Inflight() int { return n.inflight }

// declareDead reports a failure-detector verdict to the layer above.
// Idempotent per node: only the first detection fires the callback.
func (n *Network) declareDead(node int, reason string) {
	if n.detected == nil {
		n.detected = make(map[int]bool)
	}
	if n.detected[node] {
		return
	}
	n.detected[node] = true
	if n.OnDeath != nil {
		n.OnDeath(node, reason)
	}
}

// RetransQueueDepth returns the number of unacknowledged messages node
// src is holding for retransmission across all its channels (the
// stall-watchdog dump includes it per node).
func (n *Network) RetransQueueDepth(src int) int {
	if n.rel == nil {
		return 0
	}
	depth := 0
	// Summing queue lengths is order-independent, and the count feeds
	// only the human-facing watchdog dump.
	//simlint:commutative
	for k, c := range n.rel.chans {
		if k[0] == src {
			depth += len(c.out)
		}
	}
	return depth
}

// CoalescerOf returns node src's coalescing scheduler, or nil when
// aggregation is off.
func (n *Network) CoalescerOf(src int) *Coalescer {
	if n.coals == nil {
		return nil
	}
	return n.coals[src]
}

// Broadcast sends a copy of the message to every destination in dsts.
// Copies share Data (which receivers must treat as read-only).
func (n *Network) Broadcast(m *Message, dsts []int) {
	for _, d := range dsts {
		c := *m
		c.Dst = d
		// Copies share Data and are independently delivered: none may
		// carry pool ownership of the original or its buffer.
		c.pooled, c.retained, c.DataPooled = false, false, false
		n.Send(&c)
	}
}
