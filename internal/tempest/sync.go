package tempest

import (
	"fmt"
	"math"

	"hpfdsm/internal/network"
	"hpfdsm/internal/sim"
	"hpfdsm/internal/trace"
)

// ReduceOp identifies a reduction operator; it travels in reduction
// messages so the master can combine contributions that arrive before
// its own compute process enters the reduction.
type ReduceOp int

// Supported reduction operators.
const (
	OpSum ReduceOp = iota
	OpMax
	OpMin
)

func (o ReduceOp) String() string {
	switch o {
	case OpSum:
		return "SUM"
	case OpMax:
		return "MAX"
	case OpMin:
		return "MIN"
	default:
		return fmt.Sprintf("ReduceOp(%d)", int(o))
	}
}

// Combine applies the operator.
func (o ReduceOp) Combine(a, b float64) float64 {
	switch o {
	case OpSum:
		return a + b
	case OpMax:
		return math.Max(a, b)
	case OpMin:
		return math.Min(a, b)
	default:
		panic("tempest: unknown reduce op")
	}
}

type barrierState struct {
	arrived int
	mask    uint64 // nodes whose arrival the master has seen
	gen     int64  // completed-barrier count (stale-timeout invalidation)
}

type reduceState struct {
	arrived int
	mask    uint64
	acc     float64
	gen     int64
}

func (c *Cluster) installSync() {
	master := c.Nodes[0]
	master.On(KindBarrierArrive, func(hc *HContext, m *network.Message) {
		hc.AddCost(c.MC.BarrierEntry)
		c.barrierArrived(m.Src)
	})
	master.On(KindReduceContrib, func(hc *HContext, m *network.Message) {
		hc.AddCost(c.MC.BarrierEntry)
		c.reduceArrived(m.Src, m.Arg2, ReduceOp(m.Addr), math.Float64frombits(uint64(m.Arg)))
	})
	for _, n := range c.Nodes {
		n := n
		n.On(KindBarrierRelease, func(hc *HContext, m *network.Message) {
			hc.AddCost(c.MC.BarrierEntry)
			c.releaseParked(n)
		})
		n.On(KindReduceResult, func(hc *HContext, m *network.Message) {
			hc.AddCost(c.MC.BarrierEntry)
			n.reduceResult = math.Float64frombits(uint64(m.Arg))
			c.releaseParked(n)
		})
	}
}

func (c *Cluster) releaseParked(n *Node) {
	if n.parked == nil {
		panic(fmt.Sprintf("tempest: release for node %d with no parked process", n.ID))
	}
	s := n.parked
	n.parked = nil
	s.Fire()
}

// armSyncTimeout schedules the master's membership audit for one
// collection in progress: if missing(gen) still reports absentees when
// the timeout expires, the master probes each of them through the
// failure detector and re-arms. A completed (or superseded) collection
// makes missing return zero, which retires the chain. Only armed on the
// unreliable network — lossless barriers cannot hang.
func (c *Cluster) armSyncTimeout(gen int64, missing func(int64) uint64) {
	if !c.Net.Unreliable() {
		return
	}
	c.Env.After(c.MC.Faults.EffectiveBarrierTimeout(), func() {
		miss := missing(gen)
		if miss == 0 {
			return
		}
		for i := 1; i < len(c.Nodes); i++ {
			if miss&(1<<uint(i)) != 0 {
				c.Net.Probe(0, i)
			}
		}
		c.armSyncTimeout(gen, missing)
	})
}

// missingBarrier reports the nodes not yet arrived at barrier gen, or 0
// once that barrier completed.
func (c *Cluster) missingBarrier(gen int64) uint64 {
	if c.barrier.gen != gen || c.barrier.arrived == 0 {
		return 0
	}
	full := uint64(1)<<uint(len(c.Nodes)) - 1
	return full &^ c.barrier.mask
}

// missingReduce reports the nodes not yet contributed to reduction gen,
// or 0 once it completed.
func (c *Cluster) missingReduce(gen int64) uint64 {
	if c.reduce.gen != gen || c.reduce.arrived == 0 {
		return 0
	}
	full := uint64(1)<<uint(len(c.Nodes)) - 1
	return full &^ c.reduce.mask
}

func (c *Cluster) barrierArrived(src int) {
	if c.barrier.arrived == 0 {
		c.armSyncTimeout(c.barrier.gen, c.missingBarrier)
	}
	c.barrier.arrived++
	c.barrier.mask |= 1 << uint(src)
	if c.barrier.arrived < len(c.Nodes) {
		return
	}
	c.barrier.arrived = 0
	c.barrier.mask = 0
	c.barrier.gen++
	c.runBarrierCheck()
	master := c.Nodes[0]
	for _, n := range c.Nodes {
		if n.ID == 0 {
			c.releaseParked(n)
			continue
		}
		if c.Net.Dead(n.ID) {
			continue
		}
		master.OccupyProto(c.MC.SendOver)
		m := c.Net.NewMessage()
		m.Src, m.Dst, m.Kind, m.Size = 0, n.ID, KindBarrierRelease, 4
		c.Net.Send(m)
	}
}

// Barrier enters a cluster-wide barrier from node n's compute process.
// Per the release-consistency contract, n's in-flight transactions are
// drained first.
func (c *Cluster) Barrier(p *sim.Proc, n *Node) {
	n.WaitPending(p)
	n.Compute(c.MC.BarrierEntry)
	n.Sync(p)
	start := p.Now()
	n.parkSig.Reset()
	n.parked = &n.parkSig
	sig := n.parked
	if n.ID == 0 {
		c.barrierArrived(0)
	} else {
		m := c.Net.NewMessage()
		m.Dst, m.Kind, m.Size = 0, KindBarrierArrive, 4
		n.SendFromCompute(m)
		n.Sync(p)
	}
	sig.Wait(p)
	n.St.BarrierTime += p.Now() - start
	if n.Trace != nil {
		n.Trace.Span(n.ID, trace.LaneCompute, "barrier", "sync", start, p.Now())
	}
}

func (c *Cluster) reduceArrived(src int, gen int64, op ReduceOp, v float64) {
	if gen != c.reduce.gen {
		panic(fmt.Sprintf("tempest: reduction generation mismatch: got %d want %d", gen, c.reduce.gen))
	}
	if c.reduce.arrived == 0 {
		c.reduce.acc = v
		c.armSyncTimeout(gen, c.missingReduce)
	} else {
		c.reduce.acc = op.Combine(c.reduce.acc, v)
	}
	c.reduce.arrived++
	c.reduce.mask |= 1 << uint(src)
	if c.reduce.arrived < len(c.Nodes) {
		return
	}
	result := c.reduce.acc
	c.reduce.arrived = 0
	c.reduce.mask = 0
	c.reduce.gen++
	// Journal before the epoch hook: a checkpoint captured at this
	// epoch must carry this generation's result for ghost replay.
	c.ReduceJournal = append(c.ReduceJournal, result)
	c.runBarrierCheck()
	master := c.Nodes[0]
	bits := int64(math.Float64bits(result))
	for _, n := range c.Nodes {
		if n.ID == 0 {
			n.reduceResult = result
			c.releaseParked(n)
			continue
		}
		if c.Net.Dead(n.ID) {
			continue
		}
		master.OccupyProto(c.MC.SendOver)
		m := c.Net.NewMessage()
		m.Src, m.Dst, m.Kind, m.Arg, m.Size = 0, n.ID, KindReduceResult, bits, 12
		c.Net.Send(m)
	}
}

// AllReduce combines each node's partial value with op and returns the
// global result to every node; like the paper's SUM reductions it is
// implemented with low-level messages and doubles as a barrier. All
// compute processes must call it in the same order.
func (c *Cluster) AllReduce(p *sim.Proc, n *Node, op ReduceOp, v float64) float64 {
	n.WaitPending(p)
	n.Compute(c.MC.BarrierEntry)
	n.Sync(p)
	start := p.Now()
	n.parkSig.Reset()
	n.parked = &n.parkSig
	sig := n.parked
	if n.ID == 0 {
		c.reduceArrived(0, c.reduce.gen, op, v)
	} else {
		m := c.Net.NewMessage()
		m.Dst, m.Kind = 0, KindReduceContrib
		m.Addr, m.Arg, m.Arg2, m.Size = int(op), int64(math.Float64bits(v)), c.reduce.gen, 12
		n.SendFromCompute(m)
		n.Sync(p)
	}
	sig.Wait(p)
	n.St.BarrierTime += p.Now() - start
	if n.Trace != nil {
		n.Trace.Span(n.ID, trace.LaneCompute, "reduce:"+op.String(), "sync", start, p.Now())
	}
	return n.reduceResult
}
