package tempest

import (
	"fmt"
	"math"

	"hpfdsm/internal/network"
	"hpfdsm/internal/sim"
	"hpfdsm/internal/trace"
)

// ReduceOp identifies a reduction operator; it travels in reduction
// messages so the master can combine contributions that arrive before
// its own compute process enters the reduction.
type ReduceOp int

// Supported reduction operators.
const (
	OpSum ReduceOp = iota
	OpMax
	OpMin
)

func (o ReduceOp) String() string {
	switch o {
	case OpSum:
		return "SUM"
	case OpMax:
		return "MAX"
	case OpMin:
		return "MIN"
	default:
		return fmt.Sprintf("ReduceOp(%d)", int(o))
	}
}

// Combine applies the operator.
func (o ReduceOp) Combine(a, b float64) float64 {
	switch o {
	case OpSum:
		return a + b
	case OpMax:
		return math.Max(a, b)
	case OpMin:
		return math.Min(a, b)
	default:
		panic("tempest: unknown reduce op")
	}
}

type barrierState struct {
	arrived int
}

type reduceState struct {
	arrived int
	acc     float64
	gen     int64
}

func (c *Cluster) installSync() {
	master := c.Nodes[0]
	master.On(KindBarrierArrive, func(hc *HContext, m *network.Message) {
		hc.AddCost(c.MC.BarrierEntry)
		c.barrierArrived()
	})
	master.On(KindReduceContrib, func(hc *HContext, m *network.Message) {
		hc.AddCost(c.MC.BarrierEntry)
		c.reduceArrived(m.Arg2, ReduceOp(m.Addr), math.Float64frombits(uint64(m.Arg)))
	})
	for _, n := range c.Nodes {
		n := n
		n.On(KindBarrierRelease, func(hc *HContext, m *network.Message) {
			hc.AddCost(c.MC.BarrierEntry)
			c.releaseParked(n)
		})
		n.On(KindReduceResult, func(hc *HContext, m *network.Message) {
			hc.AddCost(c.MC.BarrierEntry)
			n.reduceResult = math.Float64frombits(uint64(m.Arg))
			c.releaseParked(n)
		})
	}
}

func (c *Cluster) releaseParked(n *Node) {
	if n.parked == nil {
		panic(fmt.Sprintf("tempest: release for node %d with no parked process", n.ID))
	}
	s := n.parked
	n.parked = nil
	s.Fire()
}

func (c *Cluster) barrierArrived() {
	c.barrier.arrived++
	if c.barrier.arrived < len(c.Nodes) {
		return
	}
	c.barrier.arrived = 0
	c.runBarrierCheck()
	master := c.Nodes[0]
	for _, n := range c.Nodes {
		if n.ID == 0 {
			c.releaseParked(n)
			continue
		}
		master.OccupyProto(c.MC.SendOver)
		m := c.Net.NewMessage()
		m.Src, m.Dst, m.Kind, m.Size = 0, n.ID, KindBarrierRelease, 4
		c.Net.Send(m)
	}
}

// Barrier enters a cluster-wide barrier from node n's compute process.
// Per the release-consistency contract, n's in-flight transactions are
// drained first.
func (c *Cluster) Barrier(p *sim.Proc, n *Node) {
	n.WaitPending(p)
	n.Compute(c.MC.BarrierEntry)
	n.Sync(p)
	start := p.Now()
	n.parkSig.Reset()
	n.parked = &n.parkSig
	sig := n.parked
	if n.ID == 0 {
		c.barrierArrived()
	} else {
		m := c.Net.NewMessage()
		m.Dst, m.Kind, m.Size = 0, KindBarrierArrive, 4
		n.SendFromCompute(m)
		n.Sync(p)
	}
	sig.Wait(p)
	n.St.BarrierTime += p.Now() - start
	if n.Trace != nil {
		n.Trace.Span(n.ID, trace.LaneCompute, "barrier", "sync", start, p.Now())
	}
}

func (c *Cluster) reduceArrived(gen int64, op ReduceOp, v float64) {
	if gen != c.reduce.gen {
		panic(fmt.Sprintf("tempest: reduction generation mismatch: got %d want %d", gen, c.reduce.gen))
	}
	if c.reduce.arrived == 0 {
		c.reduce.acc = v
	} else {
		c.reduce.acc = op.Combine(c.reduce.acc, v)
	}
	c.reduce.arrived++
	if c.reduce.arrived < len(c.Nodes) {
		return
	}
	result := c.reduce.acc
	c.reduce.arrived = 0
	c.reduce.gen++
	c.runBarrierCheck()
	master := c.Nodes[0]
	bits := int64(math.Float64bits(result))
	for _, n := range c.Nodes {
		if n.ID == 0 {
			n.reduceResult = result
			c.releaseParked(n)
			continue
		}
		master.OccupyProto(c.MC.SendOver)
		m := c.Net.NewMessage()
		m.Src, m.Dst, m.Kind, m.Arg, m.Size = 0, n.ID, KindReduceResult, bits, 12
		c.Net.Send(m)
	}
}

// AllReduce combines each node's partial value with op and returns the
// global result to every node; like the paper's SUM reductions it is
// implemented with low-level messages and doubles as a barrier. All
// compute processes must call it in the same order.
func (c *Cluster) AllReduce(p *sim.Proc, n *Node, op ReduceOp, v float64) float64 {
	n.WaitPending(p)
	n.Compute(c.MC.BarrierEntry)
	n.Sync(p)
	start := p.Now()
	n.parkSig.Reset()
	n.parked = &n.parkSig
	sig := n.parked
	if n.ID == 0 {
		c.reduceArrived(c.reduce.gen, op, v)
	} else {
		m := c.Net.NewMessage()
		m.Dst, m.Kind = 0, KindReduceContrib
		m.Addr, m.Arg, m.Arg2, m.Size = int(op), int64(math.Float64bits(v)), c.reduce.gen, 12
		n.SendFromCompute(m)
		n.Sync(p)
	}
	sig.Wait(p)
	n.St.BarrierTime += p.Now() - start
	if n.Trace != nil {
		n.Trace.Span(n.ID, trace.LaneCompute, "reduce:"+op.String(), "sync", start, p.Now())
	}
	return n.reduceResult
}
