package tempest

import (
	"fmt"
	"math"

	"hpfdsm/internal/config"
	"hpfdsm/internal/network"
	"hpfdsm/internal/sim"
	"hpfdsm/internal/trace"
)

// ReduceOp identifies a reduction operator; it travels in reduction
// messages so the master can combine contributions that arrive before
// its own compute process enters the reduction.
type ReduceOp int

// Supported reduction operators.
const (
	OpSum ReduceOp = iota
	OpMax
	OpMin
)

func (o ReduceOp) String() string {
	switch o {
	case OpSum:
		return "SUM"
	case OpMax:
		return "MAX"
	case OpMin:
		return "MIN"
	default:
		return fmt.Sprintf("ReduceOp(%d)", int(o))
	}
}

// Combine applies the operator.
func (o ReduceOp) Combine(a, b float64) float64 {
	switch o {
	case OpSum:
		return a + b
	case OpMax:
		return math.Max(a, b)
	case OpMin:
		return math.Min(a, b)
	default:
		panic("tempest: unknown reduce op")
	}
}

type barrierState struct {
	arrived int
	seen    []bool // nodes whose arrival the master has seen
	gen     int64  // completed-barrier count (stale-timeout invalidation)
}

type reduceState struct {
	arrived int
	seen    []bool
	vals    []float64 // per-node contributions, folded in id order
	gen     int64
}

// installSync wires the synchronization layer matching the configured
// topology: the flat master/worker protocol, or the combining tree.
func (c *Cluster) installSync() {
	if c.MC.Topology == config.TreeTopo {
		c.installTreeSync()
		return
	}
	master := c.Nodes[0]
	master.On(KindBarrierArrive, func(hc *HContext, m *network.Message) {
		hc.AddCost(c.MC.BarrierEntry)
		c.barrierArrived(m.Src)
	})
	master.On(KindReduceContrib, func(hc *HContext, m *network.Message) {
		hc.AddCost(c.MC.BarrierEntry)
		c.reduceArrived(m.Src, m.Arg2, ReduceOp(m.Addr), math.Float64frombits(uint64(m.Arg)))
	})
	for _, n := range c.Nodes {
		n := n
		n.On(KindBarrierRelease, func(hc *HContext, m *network.Message) {
			hc.AddCost(c.MC.BarrierEntry)
			c.releaseParked(n)
		})
		n.On(KindReduceResult, func(hc *HContext, m *network.Message) {
			hc.AddCost(c.MC.BarrierEntry)
			n.reduceResult = math.Float64frombits(uint64(m.Arg))
			c.releaseParked(n)
		})
	}
}

func (c *Cluster) releaseParked(n *Node) {
	if n.parked == nil {
		panic(fmt.Sprintf("tempest: release for node %d with no parked process", n.ID))
	}
	s := n.parked
	n.parked = nil
	s.Fire()
}

// armSyncTimeout schedules a membership audit for one collection in
// progress: if missing(gen) still reports absentees when the timeout
// expires, probeSrc interrogates each of them through the failure
// detector and re-arms. A completed (or superseded) collection makes
// missing return nothing, which retires the chain. Only armed on the
// unreliable network — lossless barriers cannot hang. The audit runs
// on env, which must be the env owning the collection's state.
func (c *Cluster) armSyncTimeout(env *sim.Env, probeSrc int, gen int64, missing func(int64) []int) {
	if !c.Net.Unreliable() {
		return
	}
	env.After(c.MC.Faults.EffectiveBarrierTimeout(), func() {
		miss := missing(gen)
		if len(miss) == 0 {
			return
		}
		for _, id := range miss {
			c.Net.Probe(probeSrc, id)
		}
		c.armSyncTimeout(env, probeSrc, gen, missing)
	})
}

// missingBarrier reports the nodes not yet arrived at barrier gen, or
// nothing once that barrier completed.
func (c *Cluster) missingBarrier(gen int64) []int {
	if c.barrier.gen != gen || c.barrier.arrived == 0 {
		return nil
	}
	var out []int
	for i := range c.Nodes {
		if !c.barrier.seen[i] {
			out = append(out, i)
		}
	}
	return out
}

// missingReduce reports the nodes not yet contributed to reduction gen,
// or nothing once it completed.
func (c *Cluster) missingReduce(gen int64) []int {
	if c.reduce.gen != gen || c.reduce.arrived == 0 {
		return nil
	}
	var out []int
	for i := range c.Nodes {
		if !c.reduce.seen[i] {
			out = append(out, i)
		}
	}
	return out
}

func (c *Cluster) barrierArrived(src int) {
	if c.barrier.seen == nil {
		c.barrier.seen = make([]bool, len(c.Nodes))
	}
	if c.barrier.arrived == 0 {
		c.armSyncTimeout(c.Env, 0, c.barrier.gen, c.missingBarrier)
	}
	c.barrier.arrived++
	c.barrier.seen[src] = true
	if c.barrier.arrived < len(c.Nodes) {
		return
	}
	c.barrier.arrived = 0
	for i := range c.barrier.seen {
		c.barrier.seen[i] = false
	}
	c.barrier.gen++
	c.runBarrierCheck()
	master := c.Nodes[0]
	for _, n := range c.Nodes {
		if n.ID == 0 {
			c.releaseParked(n)
			continue
		}
		if c.Net.Dead(n.ID) {
			continue
		}
		master.OccupyProto(c.MC.SendOver)
		m := c.Net.NewMessage(0)
		m.Src, m.Dst, m.Kind, m.Size = 0, n.ID, KindBarrierRelease, 4
		c.Net.Send(m)
	}
}

// Barrier enters a cluster-wide barrier from node n's compute process.
// Per the release-consistency contract, n's in-flight transactions are
// drained first.
func (c *Cluster) Barrier(p *sim.Proc, n *Node) {
	n.WaitPending(p)
	n.Compute(c.MC.BarrierEntry)
	n.Sync(p)
	start := p.Now()
	n.parkSig.Reset()
	n.parked = &n.parkSig
	sig := n.parked
	switch {
	case c.Topo != nil:
		c.treeBarrierArrive(n, n.ID)
	case n.ID == 0:
		c.barrierArrived(0)
	default:
		m := c.Net.NewMessage(n.ID)
		m.Dst, m.Kind, m.Size = 0, KindBarrierArrive, 4
		n.SendFromCompute(m)
		n.Sync(p)
	}
	sig.Wait(p)
	n.St.BarrierTime += p.Now() - start
	if n.Trace != nil {
		n.Trace.Span(n.ID, trace.LaneCompute, "barrier", "sync", start, p.Now())
	}
}

func (c *Cluster) reduceArrived(src int, gen int64, op ReduceOp, v float64) {
	if gen != c.reduce.gen {
		panic(fmt.Sprintf("tempest: reduction generation mismatch: got %d want %d", gen, c.reduce.gen))
	}
	if c.reduce.seen == nil {
		c.reduce.seen = make([]bool, len(c.Nodes))
		c.reduce.vals = make([]float64, len(c.Nodes))
	}
	if c.reduce.arrived == 0 {
		c.armSyncTimeout(c.Env, 0, gen, c.missingReduce)
	}
	c.reduce.arrived++
	c.reduce.seen[src] = true
	c.reduce.vals[src] = v
	if c.reduce.arrived < len(c.Nodes) {
		return
	}
	// Fold in ascending node-id order, not arrival order: the canonical
	// fold makes the result bit-identical to the combining tree's (which
	// scatters contributions by id at the root) and independent of
	// message interleaving.
	result := c.reduce.vals[0]
	for i := 1; i < len(c.Nodes); i++ {
		result = op.Combine(result, c.reduce.vals[i])
	}
	c.reduce.arrived = 0
	for i := range c.reduce.seen {
		c.reduce.seen[i] = false
	}
	c.reduce.gen++
	// Journal before the epoch hook: a checkpoint captured at this
	// epoch must carry this generation's result for ghost replay.
	c.ReduceJournal = append(c.ReduceJournal, result)
	c.runBarrierCheck()
	master := c.Nodes[0]
	bits := int64(math.Float64bits(result))
	for _, n := range c.Nodes {
		if n.ID == 0 {
			n.reduceResult = result
			c.releaseParked(n)
			continue
		}
		if c.Net.Dead(n.ID) {
			continue
		}
		master.OccupyProto(c.MC.SendOver)
		m := c.Net.NewMessage(0)
		m.Src, m.Dst, m.Kind, m.Arg, m.Size = 0, n.ID, KindReduceResult, bits, 12
		c.Net.Send(m)
	}
}

// AllReduce combines each node's partial value with op and returns the
// global result to every node; like the paper's SUM reductions it is
// implemented with low-level messages and doubles as a barrier. All
// compute processes must call it in the same order.
func (c *Cluster) AllReduce(p *sim.Proc, n *Node, op ReduceOp, v float64) float64 {
	n.WaitPending(p)
	n.Compute(c.MC.BarrierEntry)
	n.Sync(p)
	start := p.Now()
	n.parkSig.Reset()
	n.parked = &n.parkSig
	sig := n.parked
	switch {
	case c.Topo != nil:
		c.treeReduceArrive(n, n.ID, op, n.tred.gen, []redPair{{id: int32(n.ID), bits: math.Float64bits(v)}})
	case n.ID == 0:
		c.reduceArrived(0, c.reduce.gen, op, v)
	default:
		m := c.Net.NewMessage(n.ID)
		m.Dst, m.Kind = 0, KindReduceContrib
		m.Addr, m.Arg, m.Arg2, m.Size = int(op), int64(math.Float64bits(v)), c.reduce.gen, 12
		n.SendFromCompute(m)
		n.Sync(p)
	}
	sig.Wait(p)
	n.St.BarrierTime += p.Now() - start
	if n.Trace != nil {
		n.Trace.Span(n.ID, trace.LaneCompute, "reduce:"+op.String(), "sync", start, p.Now())
	}
	return n.reduceResult
}
