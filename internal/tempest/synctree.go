// Combining-tree barriers and reductions for the tree topology.
//
// The flat protocol funnels every arrival into node 0 and unicasts
// N-1 releases back out, so each barrier costs the master O(N)
// protocol-engine occupancy. The tree topology instead arranges the
// nodes as a radix-K heap (internal/topo): each node waits for its own
// compute process plus one up-message per child, then sends a single
// combined up-message to its parent. The root's completion instant is
// the barrier's all-arrived instant; releases fan back down the same
// edges. Every node handles at most K+1 events per phase and the
// critical path is one up-pass plus one down-pass: O(log_K N) latency,
// O(K) per-node occupancy.
//
// Reductions must stay bit-identical to the flat protocol, so no
// arithmetic happens on the way up. Contributions travel as
// (node id, float64 bits) pairs; interior nodes concatenate their
// subtree's pairs and the root scatters them into id order before
// folding ascending — exactly the canonical fold the flat master
// performs. The combined value is therefore independent of both the
// topology and the order children happen to arrive in.
//
// Cluster-level state (epoch, reduce generation, journal, barrier
// check) advances only at the root, which is node 0 — the same
// partition that owns it under the flat protocol, so the PDES
// single-writer discipline is unchanged.
package tempest

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"hpfdsm/internal/network"
	"hpfdsm/internal/topo"
)

// treeBar tracks one barrier round at one tree node: its own compute
// arrival plus one bit per child slot.
type treeBar struct {
	self bool
	got  int
	seen uint64 // child-slot bits (radix <= 64)
	gen  int64
}

// treeRed tracks one reduction round at one tree node. pairs holds the
// subtree's contributions, gathered but never combined here.
type treeRed struct {
	self  bool
	got   int
	seen  uint64
	gen   int64
	pairs []redPair
}

// redPair is one node's reduction contribution in transit: the raw
// float64 bits tagged with the contributing node, so the root can
// restore id order before folding.
type redPair struct {
	id   int32
	bits uint64
}

const redPairSize = 12 // 4-byte id + 8-byte float bits on the wire

func encodePairs(pairs []redPair) []byte {
	buf := make([]byte, redPairSize*len(pairs))
	for i, p := range pairs {
		binary.LittleEndian.PutUint32(buf[i*redPairSize:], uint32(p.id))
		binary.LittleEndian.PutUint64(buf[i*redPairSize+4:], p.bits)
	}
	return buf
}

func decodePairs(data []byte, dst []redPair) []redPair {
	if len(data)%redPairSize != 0 {
		panic(fmt.Sprintf("tempest: reduce up-message payload of %d bytes is not a pair vector", len(data)))
	}
	for off := 0; off < len(data); off += redPairSize {
		dst = append(dst, redPair{
			id:   int32(binary.LittleEndian.Uint32(data[off:])),
			bits: binary.LittleEndian.Uint64(data[off+4:]),
		})
	}
	return dst
}

// installTreeSync builds the topology and wires the combining-tree
// handlers on every node.
func (c *Cluster) installTreeSync() {
	t := topo.MustNew(c.MC.Nodes, c.MC.EffectiveRadix())
	c.Topo = &t
	for _, n := range c.Nodes {
		n := n
		n.treeParent = -1
		if n.ID != topo.Root {
			n.treeParent = t.Parent(n.ID)
		}
		n.treeChildren = t.Children(n.ID, nil)
		n.On(KindTreeBarrierUp, func(hc *HContext, m *network.Message) {
			hc.AddCost(c.MC.BarrierEntry)
			c.treeBarrierArrive(n, m.Src)
		})
		n.On(KindTreeBarrierDown, func(hc *HContext, m *network.Message) {
			hc.AddCost(c.MC.BarrierEntry)
			c.releaseParked(n)
			c.treeFanDown(n, KindTreeBarrierDown, 0, 4)
		})
		n.On(KindTreeReduceUp, func(hc *HContext, m *network.Message) {
			hc.AddCost(c.MC.BarrierEntry)
			c.treeReduceArrive(n, m.Src, ReduceOp(m.Addr), m.Arg2, decodePairs(m.Data, nil))
		})
		n.On(KindTreeReduceDown, func(hc *HContext, m *network.Message) {
			hc.AddCost(c.MC.BarrierEntry)
			n.reduceResult = math.Float64frombits(uint64(m.Arg))
			c.releaseParked(n)
			c.treeFanDown(n, KindTreeReduceDown, m.Arg, 12)
		})
	}
}

// childSlot maps a child's node id to its bit slot at parent n.
func (c *Cluster) childSlot(n *Node, src int) uint {
	slot := src - c.Topo.FirstChild(n.ID)
	if slot < 0 || slot >= len(n.treeChildren) {
		panic(fmt.Sprintf("tempest: node %d got a tree up-message from non-child %d", n.ID, src))
	}
	return uint(slot)
}

// treeFanDown sends one copy of a down-pass message to each live child,
// charging the node's protocol engine per send (O(radix), not O(N)).
func (c *Cluster) treeFanDown(n *Node, kind network.Kind, arg int64, size int) {
	for _, ch := range n.treeChildren {
		if c.Net.Dead(ch) {
			continue
		}
		n.OccupyProto(c.MC.SendOver)
		m := c.Net.NewMessage(n.ID)
		m.Src, m.Dst, m.Kind, m.Arg, m.Size = n.ID, ch, kind, arg, size
		c.Net.Send(m)
	}
}

// treeBarrierArrive records one arrival at tree node n — n's own
// compute process when src == n.ID, a child subtree otherwise. When
// the whole subtree has arrived the node forwards one combined
// up-message (or, at the root, runs the barrier instant and starts the
// release wave).
func (c *Cluster) treeBarrierArrive(n *Node, src int) {
	tb := &n.tbar
	if !tb.self && tb.got == 0 {
		c.armSyncTimeout(n.Env, n.ID, tb.gen, n.missingTreeBarrier)
	}
	if src == n.ID {
		if tb.self {
			panic(fmt.Sprintf("tempest: node %d arrived twice at barrier gen %d", n.ID, tb.gen))
		}
		tb.self = true
	} else {
		bit := uint64(1) << c.childSlot(n, src)
		if tb.seen&bit != 0 {
			panic(fmt.Sprintf("tempest: node %d heard child %d twice at barrier gen %d", n.ID, src, tb.gen))
		}
		tb.seen |= bit
		tb.got++
	}
	if !tb.self || tb.got < len(n.treeChildren) {
		return
	}
	tb.self, tb.got, tb.seen = false, 0, 0
	tb.gen++
	if n.ID == topo.Root {
		c.runBarrierCheck()
		c.releaseParked(n)
		c.treeFanDown(n, KindTreeBarrierDown, 0, 4)
		return
	}
	n.OccupyProto(c.MC.SendOver)
	m := c.Net.NewMessage(n.ID)
	m.Src, m.Dst, m.Kind, m.Size = n.ID, n.treeParent, KindTreeBarrierUp, 4
	c.Net.Send(m)
}

// treeReduceArrive records one reduction contribution at tree node n:
// the node's own (id, bits) pair when src == n.ID, a child subtree's
// gathered vector otherwise. Pairs are concatenated, never combined,
// until the root restores id order and folds ascending.
func (c *Cluster) treeReduceArrive(n *Node, src int, op ReduceOp, gen int64, pairs []redPair) {
	tr := &n.tred
	if gen != tr.gen {
		panic(fmt.Sprintf("tempest: node %d reduction generation mismatch: got %d want %d", n.ID, gen, tr.gen))
	}
	if !tr.self && tr.got == 0 {
		c.armSyncTimeout(n.Env, n.ID, tr.gen, n.missingTreeReduce)
	}
	if src == n.ID {
		if tr.self {
			panic(fmt.Sprintf("tempest: node %d contributed twice at reduce gen %d", n.ID, tr.gen))
		}
		tr.self = true
	} else {
		bit := uint64(1) << c.childSlot(n, src)
		if tr.seen&bit != 0 {
			panic(fmt.Sprintf("tempest: node %d heard child %d twice at reduce gen %d", n.ID, src, tr.gen))
		}
		tr.seen |= bit
		tr.got++
	}
	tr.pairs = append(tr.pairs, pairs...)
	if !tr.self || tr.got < len(n.treeChildren) {
		return
	}
	// Sort by contributing node id: the vector (and so every message
	// payload) becomes independent of child arrival order.
	sort.Slice(tr.pairs, func(i, j int) bool { return tr.pairs[i].id < tr.pairs[j].id })
	gathered := tr.pairs
	tr.self, tr.got, tr.seen = false, 0, 0
	tr.gen++
	if n.ID != topo.Root {
		n.OccupyProto(c.MC.SendOver)
		m := c.Net.NewMessage(n.ID)
		m.Src, m.Dst, m.Kind = n.ID, n.treeParent, KindTreeReduceUp
		m.Addr, m.Arg2 = int(op), gen
		m.Data, m.Size = encodePairs(gathered), redPairSize*len(gathered)
		c.Net.Send(m)
		tr.pairs = tr.pairs[:0]
		return
	}
	if len(gathered) != len(c.Nodes) {
		panic(fmt.Sprintf("tempest: root gathered %d reduction pairs for %d nodes", len(gathered), len(c.Nodes)))
	}
	result := math.Float64frombits(gathered[0].bits)
	for i := 1; i < len(gathered); i++ {
		if int(gathered[i].id) != i {
			panic(fmt.Sprintf("tempest: root gathered duplicate or missing contribution (slot %d holds node %d)", i, gathered[i].id))
		}
		result = op.Combine(result, math.Float64frombits(gathered[i].bits))
	}
	tr.pairs = tr.pairs[:0]
	c.reduce.gen++
	// Journal before the epoch hook, as in the flat path: a checkpoint
	// captured at this epoch must carry this generation's result.
	c.ReduceJournal = append(c.ReduceJournal, result)
	c.runBarrierCheck()
	n.reduceResult = result
	c.releaseParked(n)
	c.treeFanDown(n, KindTreeReduceDown, int64(math.Float64bits(result)), 12)
}

// missingTreeBarrier reports the children node n has not heard from in
// barrier round gen, for the per-node timeout probe.
func (n *Node) missingTreeBarrier(gen int64) []int {
	tb := &n.tbar
	if tb.gen != gen || (!tb.self && tb.got == 0) {
		return nil
	}
	var out []int
	for i, ch := range n.treeChildren {
		if tb.seen&(1<<uint(i)) == 0 {
			out = append(out, ch)
		}
	}
	return out
}

// missingTreeReduce is missingTreeBarrier for reduction rounds.
func (n *Node) missingTreeReduce(gen int64) []int {
	tr := &n.tred
	if tr.gen != gen || (!tr.self && tr.got == 0) {
		return nil
	}
	var out []int
	for i, ch := range n.treeChildren {
		if tr.seen&(1<<uint(i)) == 0 {
			out = append(out, ch)
		}
	}
	return out
}
