package tempest

import (
	"math"
	"testing"

	"hpfdsm/internal/config"
	"hpfdsm/internal/memory"
	"hpfdsm/internal/sim"
	"hpfdsm/internal/topo"
)

// treeTestCluster builds a protocol-less cluster on the tree topology.
func treeTestCluster(t testing.TB, nodes, radix int) *Cluster {
	t.Helper()
	mc := config.Default().WithNodes(nodes).WithTopology(config.TreeTopo).WithRadix(radix)
	sp := memory.NewSpace(mc)
	sp.Alloc("arr", 64*1024)
	return NewCluster(sim.NewEnv(), sp)
}

// treeSyncRun drives one barrier + one AllReduce with per-node compute
// delays, returning node 0's post-barrier release instant, its
// post-reduce release instant, and the reduction result's bits (the
// result is identical on every node by construction; the run asserts
// it).
func treeSyncRun(t testing.TB, nodes, radix int, delay []sim.Time) (barAt, redAt sim.Time, bits uint64) {
	t.Helper()
	c := treeTestCluster(t, nodes, radix)
	results := make([]float64, nodes)
	for _, n := range c.Nodes {
		n := n
		c.Env.Spawn("sync", func(p *sim.Proc) {
			p.Sleep(delay[n.ID])
			c.Barrier(p, n)
			if n.ID == 0 {
				barAt = p.Now()
			}
			// Re-align on an absolute instant before the reduce phase: the
			// release wave reaches children at slot-dependent times (the
			// parent fans down sequentially), so phase two must not
			// inherit that skew or the delay multiset per sibling group
			// would no longer be the only arrival-order input.
			p.Sleep(sim.Second - p.Now())
			p.Sleep(delay[n.ID])
			results[n.ID] = c.AllReduce(p, n, OpSum, math.Sqrt(float64(n.ID+1)))
			if n.ID == 0 {
				redAt = p.Now()
			}
		})
	}
	if err := c.Env.Run(); err != nil {
		t.Fatal(err)
	}
	bits = math.Float64bits(results[0])
	for id, r := range results {
		if math.Float64bits(r) != bits {
			t.Fatalf("node %d reduce result %x differs from node 0's %x", id, math.Float64bits(r), bits)
		}
	}
	return barAt, redAt, bits
}

// permuteSiblings reassigns delays within each leaf sibling group
// (childless nodes sharing a parent in the radix-K heap), leaving the
// multiset of delays per group intact. Leaf siblings have isomorphic
// (empty) subtrees, so swapping their delays changes only which child
// arrives when — interior siblings are left alone, because the
// left-packed heap gives them different subtree shapes and a delay
// swap there legitimately moves the critical path. rot rotates each
// group; rot < 0 reverses it.
func permuteSiblings(nodes, radix int, delay []sim.Time, rot int) []sim.Time {
	tr := topo.MustNew(nodes, radix)
	groups := map[int][]int{}
	for id := 1; id < nodes; id++ {
		if len(tr.Children(id, nil)) != 0 {
			continue
		}
		p := tr.Parent(id)
		groups[p] = append(groups[p], id)
	}
	out := append([]sim.Time(nil), delay...)
	for _, g := range groups {
		if rot < 0 {
			for i := range g {
				out[g[i]] = delay[g[len(g)-1-i]]
			}
			continue
		}
		for i := range g {
			out[g[i]] = delay[g[(i+rot)%len(g)]]
		}
	}
	return out
}

func TestTreeSyncSiblingPermutationInvariance(t *testing.T) {
	// The combining tree's contract: which sibling arrives first must not
	// matter. Permuting compute delays within leaf sibling groups changes
	// the order their parents hear them in but preserves each group's
	// delay multiset — so the barrier release instant, the reduction
	// release instant, and the reduction result's bits must all be
	// invariant across the permutations.
	const nodes, radix = 27, 3
	delay := make([]sim.Time, nodes)
	for i := range delay {
		delay[i] = sim.Time((i*37)%11) * 10 * sim.Microsecond
	}
	refBar, refRed, refBits := treeSyncRun(t, nodes, radix, delay)
	for _, rot := range []int{1, 2, -1} {
		bar, red, bits := treeSyncRun(t, nodes, radix, permuteSiblings(nodes, radix, delay, rot))
		if bits != refBits {
			t.Fatalf("rot %d: reduction bits %x, reference %x (arrival order leaked into the fold)", rot, bits, refBits)
		}
		if bar != refBar || red != refRed {
			t.Fatalf("rot %d: release instants barrier=%d reduce=%d, reference barrier=%d reduce=%d",
				rot, bar, red, refBar, refRed)
		}
	}
}

func TestTreeReduceMatchesFlat(t *testing.T) {
	// Same contributions, both topologies: the tree must reproduce the
	// flat master's canonical ascending fold bit-for-bit.
	const nodes = 13
	run := func(topoKind config.Topology) uint64 {
		mc := config.Default().WithNodes(nodes).WithTopology(topoKind).WithRadix(3)
		sp := memory.NewSpace(mc)
		sp.Alloc("arr", 64*1024)
		c := NewCluster(sim.NewEnv(), sp)
		var bits uint64
		for _, n := range c.Nodes {
			n := n
			c.Env.Spawn("red", func(p *sim.Proc) {
				r := c.AllReduce(p, n, OpSum, math.Sqrt(float64(n.ID+1))/3)
				if n.ID == 0 {
					bits = math.Float64bits(r)
				}
			})
		}
		if err := c.Env.Run(); err != nil {
			t.Fatal(err)
		}
		return bits
	}
	if f, tr := run(config.Flat), run(config.TreeTopo); f != tr {
		t.Fatalf("tree reduction %x differs from flat %x", tr, f)
	}
}

// FuzzTreeReduce checks the combining tree against an independent
// oracle: whatever the cluster shape, radix, operator, and per-node
// delays, the reduction must equal the canonical ascending fold of the
// contributions computed directly — bit for bit.
func FuzzTreeReduce(f *testing.F) {
	f.Add(uint8(8), uint8(2), uint8(0), uint64(1))
	f.Add(uint8(27), uint8(3), uint8(1), uint64(42))
	f.Add(uint8(64), uint8(4), uint8(2), uint64(7))
	f.Add(uint8(5), uint8(7), uint8(0), uint64(99))
	f.Fuzz(func(t *testing.T, nsel, rsel, osel uint8, seed uint64) {
		nodes := 2 + int(nsel)%63 // 2..64
		radix := 2 + int(rsel)%7  // 2..8
		op := ReduceOp(osel % 3)  // sum, max, min
		rng := seed
		next := func() uint64 { // splitmix64
			rng += 0x9e3779b97f4a7c15
			z := rng
			z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
			z = (z ^ (z >> 27)) * 0x94d049bb133111eb
			return z ^ (z >> 31)
		}
		contrib := make([]float64, nodes)
		delay := make([]sim.Time, nodes)
		for i := range contrib {
			// Finite, wide-range values: mantissa bits matter, NaNs don't.
			contrib[i] = (float64(int64(next()%2000))/7 - 140) * math.Sqrt(float64(i+1))
			delay[i] = sim.Time(next()%200) * sim.Microsecond
		}
		want := contrib[0]
		for i := 1; i < nodes; i++ {
			want = op.Combine(want, contrib[i])
		}

		c := treeTestCluster(t, nodes, radix)
		results := make([]float64, nodes)
		for _, n := range c.Nodes {
			n := n
			c.Env.Spawn("red", func(p *sim.Proc) {
				p.Sleep(delay[n.ID])
				results[n.ID] = c.AllReduce(p, n, op, contrib[n.ID])
			})
		}
		if err := c.Env.Run(); err != nil {
			t.Fatal(err)
		}
		for id, r := range results {
			if math.Float64bits(r) != math.Float64bits(want) {
				t.Fatalf("nodes=%d radix=%d op=%s: node %d got %x, canonical fold %x",
					nodes, radix, op, id, math.Float64bits(r), math.Float64bits(want))
			}
		}
	})
}
