package tempest

import (
	"testing"

	"hpfdsm/internal/config"
	"hpfdsm/internal/memory"
	"hpfdsm/internal/network"
	"hpfdsm/internal/sim"
)

func testCluster(t *testing.T, nodes int, mode config.CPUMode) *Cluster {
	t.Helper()
	mc := config.Default().WithNodes(nodes).WithCPUMode(mode)
	sp := memory.NewSpace(mc)
	sp.Alloc("arr", 64*1024)
	return NewCluster(sim.NewEnv(), sp)
}

func TestClusterConstruction(t *testing.T) {
	c := testCluster(t, 4, config.DualCPU)
	if len(c.Nodes) != 4 {
		t.Fatalf("nodes = %d", len(c.Nodes))
	}
	for i, n := range c.Nodes {
		if n.ID != i || n.Mem.ID() != i {
			t.Fatalf("node %d mis-wired", i)
		}
	}
}

func TestComputeAccumulation(t *testing.T) {
	c := testCluster(t, 2, config.DualCPU)
	n := c.Nodes[0]
	done := sim.Time(-1)
	c.Env.Spawn("compute", func(p *sim.Proc) {
		n.Compute(100)
		n.Compute(250)
		n.Sync(p)
		done = p.Now()
	})
	if err := c.Env.Run(); err != nil {
		t.Fatal(err)
	}
	if done != 350 {
		t.Fatalf("synced at %d, want 350", done)
	}
	if n.St.ComputeTime != 350 {
		t.Fatalf("compute time = %d", n.St.ComputeTime)
	}
}

func TestHandlerDispatchAndCost(t *testing.T) {
	c := testCluster(t, 2, config.DualCPU)
	var handledAt sim.Time = -1
	c.Nodes[1].On(77, func(hc *HContext, m *network.Message) {
		handledAt = hc.Node.Env.Now()
		hc.AddCost(5 * sim.Microsecond)
	})
	c.Net.Send(&network.Message{Src: 0, Dst: 1, Kind: 77, Size: 4})
	if err := c.Env.Run(); err != nil {
		t.Fatal(err)
	}
	want := c.MC.MsgTime(4)
	if handledAt != want {
		t.Fatalf("handled at %d, want %d", handledAt, want)
	}
	// Protocol engine stays busy for RecvOver + handler cost.
	busy := handledAt + c.MC.RecvOver + 5*sim.Microsecond
	if got := c.Nodes[1].ProtoBusyUntil(); got != busy {
		t.Fatalf("proto busy until %d, want %d", got, busy)
	}
}

func TestHandlerQueueing(t *testing.T) {
	// Two messages arriving close together serialize on the protocol
	// engine: the second handler runs only after the first's cost.
	c := testCluster(t, 2, config.DualCPU)
	var at []sim.Time
	c.Nodes[1].On(77, func(hc *HContext, m *network.Message) {
		at = append(at, hc.Node.Env.Now())
		hc.AddCost(100 * sim.Microsecond)
	})
	c.Net.Send(&network.Message{Src: 0, Dst: 1, Kind: 77, Size: 4})
	c.Net.Send(&network.Message{Src: 0, Dst: 1, Kind: 77, Size: 4})
	if err := c.Env.Run(); err != nil {
		t.Fatal(err)
	}
	if len(at) != 2 {
		t.Fatalf("handled %d messages", len(at))
	}
	if at[1] < at[0]+100*sim.Microsecond {
		t.Fatalf("second handler at %d overlaps first at %d", at[1], at[0])
	}
}

func TestSingleCPUStealsComputeTime(t *testing.T) {
	run := func(mode config.CPUMode) sim.Time {
		c := testCluster(t, 2, mode)
		c.Nodes[1].On(77, func(hc *HContext, m *network.Message) {
			hc.AddCost(50 * sim.Microsecond)
		})
		var done sim.Time
		c.Env.Spawn("compute", func(p *sim.Proc) {
			p.Sleep(c.MC.MsgTime(4) + 1) // let the handler land mid-computation
			c.Nodes[1].Compute(1000 * sim.Microsecond)
			c.Nodes[1].Sync(p)
			done = p.Now()
		})
		c.Net.Send(&network.Message{Src: 0, Dst: 1, Kind: 77, Size: 4})
		if err := c.Env.Run(); err != nil {
			t.Fatal(err)
		}
		return done
	}
	dual := run(config.DualCPU)
	single := run(config.SingleCPU)
	if single <= dual {
		t.Fatalf("single-cpu compute (%d) should be slower than dual-cpu (%d)", single, dual)
	}
	stolen := single - dual
	want := 50*sim.Microsecond + config.Default().RecvOver
	if stolen != want {
		t.Fatalf("stolen time = %d, want %d", stolen, want)
	}
}

func TestPendingTransactions(t *testing.T) {
	c := testCluster(t, 2, config.DualCPU)
	n := c.Nodes[0]
	n.AddPending()
	n.AddPending()
	var done sim.Time = -1
	c.Env.Spawn("compute", func(p *sim.Proc) {
		n.WaitPending(p)
		done = p.Now()
	})
	c.Env.Schedule(100, func() { n.DonePending() })
	c.Env.Schedule(300, func() { n.DonePending() })
	if err := c.Env.Run(); err != nil {
		t.Fatal(err)
	}
	if done != 300 {
		t.Fatalf("WaitPending released at %d, want 300", done)
	}
	if n.St.CommTime != 300 {
		t.Fatalf("comm time = %d, want 300", n.St.CommTime)
	}
}

func TestDonePendingUnderflowPanics(t *testing.T) {
	c := testCluster(t, 2, config.DualCPU)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Nodes[0].DonePending()
}

func TestBarrierAllNodes(t *testing.T) {
	c := testCluster(t, 4, config.DualCPU)
	var release []sim.Time
	for _, n := range c.Nodes {
		n := n
		c.Env.Spawn("compute", func(p *sim.Proc) {
			n.Compute(sim.Time(n.ID) * 100 * sim.Microsecond) // skewed arrivals
			c.Barrier(p, n)
			release = append(release, p.Now())
		})
	}
	if err := c.Env.Run(); err != nil {
		t.Fatal(err)
	}
	if len(release) != 4 {
		t.Fatalf("released %d nodes", len(release))
	}
	// No node may leave before the slowest (300 µs of compute) arrived.
	for _, r := range release {
		if r < 300*sim.Microsecond {
			t.Fatalf("node released at %d, before last arrival", r)
		}
	}
}

func TestBarrierRepeats(t *testing.T) {
	c := testCluster(t, 3, config.DualCPU)
	counts := make([]int, 3)
	for _, n := range c.Nodes {
		n := n
		c.Env.Spawn("compute", func(p *sim.Proc) {
			for i := 0; i < 5; i++ {
				c.Barrier(p, n)
				counts[n.ID]++
			}
		})
	}
	if err := c.Env.Run(); err != nil {
		t.Fatal(err)
	}
	for i, k := range counts {
		if k != 5 {
			t.Fatalf("node %d completed %d barriers", i, k)
		}
	}
}

func TestBarrierWaitsForPending(t *testing.T) {
	c := testCluster(t, 2, config.DualCPU)
	n0 := c.Nodes[0]
	n0.AddPending()
	var done sim.Time = -1
	for _, n := range c.Nodes {
		n := n
		c.Env.Spawn("compute", func(p *sim.Proc) {
			c.Barrier(p, n)
			if n.ID == 0 {
				done = p.Now()
			}
		})
	}
	c.Env.Schedule(500*sim.Microsecond, func() { n0.DonePending() })
	if err := c.Env.Run(); err != nil {
		t.Fatal(err)
	}
	if done < 500*sim.Microsecond {
		t.Fatalf("barrier completed at %d despite pending transaction", done)
	}
}

func TestAllReduceSum(t *testing.T) {
	c := testCluster(t, 4, config.DualCPU)
	results := make([]float64, 4)
	for _, n := range c.Nodes {
		n := n
		c.Env.Spawn("compute", func(p *sim.Proc) {
			results[n.ID] = c.AllReduce(p, n, OpSum, float64(n.ID+1))
		})
	}
	if err := c.Env.Run(); err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r != 10 { // 1+2+3+4
			t.Fatalf("node %d reduce result %v, want 10", i, r)
		}
	}
}

func TestAllReduceMaxMinRepeated(t *testing.T) {
	c := testCluster(t, 3, config.DualCPU)
	type res struct{ max, min float64 }
	results := make([]res, 3)
	for _, n := range c.Nodes {
		n := n
		c.Env.Spawn("compute", func(p *sim.Proc) {
			mx := c.AllReduce(p, n, OpMax, float64(n.ID*10))
			mn := c.AllReduce(p, n, OpMin, float64(n.ID*10))
			results[n.ID] = res{mx, mn}
		})
	}
	if err := c.Env.Run(); err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.max != 20 || r.min != 0 {
			t.Fatalf("node %d got max=%v min=%v", i, r.max, r.min)
		}
	}
}

func TestReduceOpStrings(t *testing.T) {
	if OpSum.String() != "SUM" || OpMax.String() != "MAX" || OpMin.String() != "MIN" {
		t.Fatal("ReduceOp strings wrong")
	}
	if OpSum.Combine(2, 3) != 5 || OpMax.Combine(2, 3) != 3 || OpMin.Combine(2, 3) != 2 {
		t.Fatal("Combine wrong")
	}
}

func TestSingleNodeBarrierAndReduce(t *testing.T) {
	c := testCluster(t, 1, config.DualCPU)
	n := c.Nodes[0]
	var sum float64
	c.Env.Spawn("compute", func(p *sim.Proc) {
		c.Barrier(p, n)
		sum = c.AllReduce(p, n, OpSum, 42)
		c.Barrier(p, n)
	})
	if err := c.Env.Run(); err != nil {
		t.Fatal(err)
	}
	if sum != 42 {
		t.Fatalf("single-node reduce = %v", sum)
	}
}

func TestLoadStoreHomeNoFault(t *testing.T) {
	c := testCluster(t, 2, config.DualCPU)
	n0 := c.Nodes[0] // page 0 homed at node 0
	c.Env.Spawn("compute", func(p *sim.Proc) {
		n0.StoreF64(p, 0, 3.5)
		if got := n0.LoadF64(p, 0); got != 3.5 {
			t.Errorf("home load = %v", got)
		}
	})
	if err := c.Env.Run(); err != nil {
		t.Fatal(err)
	}
	if m := n0.St.Misses(); m != 0 {
		t.Fatalf("home access took %d misses", m)
	}
}

func TestFaultInvokesProtocolHook(t *testing.T) {
	c := testCluster(t, 2, config.DualCPU)
	n1 := c.Nodes[1]
	var faultAddr int = -1
	n1.Fault = func(p *sim.Proc, addr int, write bool) {
		faultAddr = addr
		// Resolve by granting access directly (a trivial "protocol").
		n1.Mem.SetTag(n1.Mem.Space().Block(addr), memory.ReadWrite)
		p.Sleep(93 * sim.Microsecond)
	}
	var t0, t1 sim.Time
	c.Env.Spawn("compute", func(p *sim.Proc) {
		t0 = p.Now()
		n1.StoreF64(p, 0, 1) // page 0 homed at node 0 => fault on node 1
		t1 = p.Now()
	})
	if err := c.Env.Run(); err != nil {
		t.Fatal(err)
	}
	if faultAddr != 0 {
		t.Fatalf("fault addr = %d", faultAddr)
	}
	if n1.St.WriteMisses != 1 {
		t.Fatalf("write misses = %d", n1.St.WriteMisses)
	}
	if t1-t0 != 93*sim.Microsecond {
		t.Fatalf("stall = %d", t1-t0)
	}
	if n1.St.CommTime != 93*sim.Microsecond {
		t.Fatalf("comm time = %d", n1.St.CommTime)
	}
}

func TestUnresolvedFaultPanics(t *testing.T) {
	c := testCluster(t, 2, config.DualCPU)
	n1 := c.Nodes[1]
	n1.Fault = func(p *sim.Proc, addr int, write bool) {} // does nothing
	panicked := false
	c.Env.Spawn("compute", func(p *sim.Proc) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		n1.LoadF64(p, 0)
	})
	if err := c.Env.Run(); err != nil {
		t.Fatal(err)
	}
	if !panicked {
		t.Fatal("unresolved fault did not panic")
	}
}

func TestDuplicateHandlerPanics(t *testing.T) {
	c := testCluster(t, 2, config.DualCPU)
	c.Nodes[0].On(99, func(*HContext, *network.Message) {})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Nodes[0].On(99, func(*HContext, *network.Message) {})
}

func TestHandlerSendAndBlockOn(t *testing.T) {
	// A custom user-level protocol: node 1's handler replies via
	// HContext.Send; node 0's compute blocks on the reply with BlockOn.
	c := testCluster(t, 2, config.DualCPU)
	sig := sim.NewSignal()
	c.Nodes[0].On(91, func(hc *HContext, m *network.Message) {
		hc.AddCost(sim.Microsecond)
		sig.Fire()
	})
	c.Nodes[1].On(90, func(hc *HContext, m *network.Message) {
		// A slow service: the reply departs after 20 µs of protocol
		// work (SendFromProto defers departure past the occupancy).
		hc.Node.OccupyProto(20 * sim.Microsecond)
		hc.Node.SendFromProto(&network.Message{Dst: 0, Kind: 91, Size: 4})
	})
	var done sim.Time
	c.Env.Spawn("compute", func(p *sim.Proc) {
		n := c.Nodes[0]
		n.SendFromCompute(&network.Message{Dst: 1, Kind: 90, Size: 4})
		n.BlockOn(p, sig)
		done = p.Now()
	})
	if err := c.Env.Run(); err != nil {
		t.Fatal(err)
	}
	// The reply needs two wire hops; the compute thread also pays its
	// own send overhead before blocking.
	if done < 2*c.MC.MsgTime(4) || done > 60*sim.Microsecond {
		t.Fatalf("custom round trip = %d, implausible", done)
	}
	if c.Stats.Nodes[0].CommTime == 0 {
		t.Fatal("BlockOn did not record communication time")
	}
}

func TestSendFromProtoOrdering(t *testing.T) {
	// Two protocol-engine sends depart in order even when the engine
	// is backed up.
	c := testCluster(t, 2, config.DualCPU)
	var got []int64
	c.Nodes[1].On(92, func(hc *HContext, m *network.Message) {
		got = append(got, m.Arg)
	})
	n := c.Nodes[0]
	n.OccupyProto(100 * sim.Microsecond) // back up the engine
	n.SendFromProto(&network.Message{Dst: 1, Kind: 92, Arg: 1, Size: 4})
	n.SendFromProto(&network.Message{Dst: 1, Kind: 92, Arg: 2, Size: 4})
	if err := c.Env.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("delivery order = %v", got)
	}
}
