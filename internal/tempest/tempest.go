// Package tempest models the Tempest substrate's node: a compute
// processor running the application, a protocol engine executing
// user-level active-message handlers, fine-grain access faults, and the
// cluster-wide synchronization primitives (barriers and reductions)
// built from low-level messages.
//
// CPU model. Each node has one compute processor. Protocol handlers run
// either on a dedicated second processor (DualCPU) or steal cycles from
// the compute processor (SingleCPU). The compute process accumulates
// simulated work locally (Compute) and synchronizes with the event
// queue only at blocking points — faults, protocol calls, barriers —
// which keeps the event count proportional to communication, not to
// floating-point operations.
package tempest

import (
	"fmt"

	"hpfdsm/internal/config"
	"hpfdsm/internal/memory"
	"hpfdsm/internal/network"
	"hpfdsm/internal/sim"
	"hpfdsm/internal/stats"
	"hpfdsm/internal/topo"
	"hpfdsm/internal/trace"
)

// Message kinds reserved by the tempest layer for synchronization.
// Coherence protocols use kinds below 200.
const (
	KindBarrierArrive network.Kind = 200 + iota
	KindBarrierRelease
	KindReduceContrib
	KindReduceResult
	KindTreeBarrierUp
	KindTreeBarrierDown
	KindTreeReduceUp
	KindTreeReduceDown
)

// HContext is passed to active-message handlers. Handlers perform their
// state transitions immediately and account CPU cost through the
// context; the node's protocol engine stays busy for the total cost.
type HContext struct {
	Node *Node
	cost sim.Time
}

// AddCost charges d of protocol-engine time to this handler execution.
func (c *HContext) AddCost(d sim.Time) { c.cost += d }

// Send transmits a message from this handler, charging SendOver.
func (c *HContext) Send(m *network.Message) {
	c.cost += c.Node.MC.SendOver
	m.Src = c.Node.ID
	c.Node.Net.Send(m)
}

// Handler is a user-level active-message handler.
type Handler func(c *HContext, m *network.Message)

// FaultFn resolves an access fault for the compute process; it must
// block p until the access can be retried successfully. Installed by
// the coherence protocol.
type FaultFn func(p *sim.Proc, addr int, write bool)

// Node is one cluster node.
type Node struct {
	ID  int
	Env *sim.Env
	Net *network.Network
	Mem *memory.NodeMem
	MC  config.Machine
	St  *stats.Node

	// Trace, when non-nil, records handler spans, miss stalls, and
	// barrier regions for this node. Installed by Cluster.SetTracer;
	// every use is nil-guarded so the disabled path costs one branch.
	Trace *trace.Tracer

	Fault FaultFn

	// NICDrain, when non-nil, flushes this node's NIC-level coalescing
	// scheduler (all open gather buffers). Installed by the protocol
	// layer when message aggregation is enabled; invoked on every
	// synchronization entry — the barrier forces a flush, so buffered
	// traffic never outlives its epoch.
	NICDrain func()

	// NICBurst, when non-nil, brackets each protocol-handler run
	// (begin=true before, begin=false after). The coalescing scheduler
	// uses it to drain, at the end of the handler, exactly the buffers
	// the handler appended to: engine-composed reply bursts depart as
	// one carrier without waiting out the drain timer.
	NICBurst func(begin bool)

	// NICFlushTo, when non-nil, flushes this node's open gather buffer
	// for one destination. SendFromProto invokes it before reserving a
	// direct message's departure slot: buffered segments bound for the
	// same destination must take their engine slots first, or a reply
	// composed later could overtake them on the wire (a write grant
	// parked in a gather buffer overtaken by the next transaction's
	// invalidation leaves the grantee a writer the directory already
	// retired).
	NICFlushTo func(dst int)

	// handlers is indexed directly by message kind: a dispatch per
	// message must not pay for hashing.
	handlers [256]Handler

	// hfree recycles handler-invocation records (receive schedules one
	// event per message; the record carries the message, the reserved
	// start time, and the handler context without a per-message closure
	// or context allocation).
	hfree []*hinvoke

	protoFree sim.Time // protocol engine next-free time
	stolen    sim.Time // handler time not yet charged to compute (SingleCPU)
	acc       sim.Time // accumulated un-synced compute time

	pending    int // outstanding non-blocking transactions (e.g. upgrades)
	pendingSig *sim.Signal
	pendSig    sim.Signal // the reusable signal pendingSig points at

	hq int // handler invocations queued on the engine but not yet run

	parked       *sim.Signal // compute process parked at a barrier/reduction
	parkSig      sim.Signal  // the reusable signal parked points at
	reduceResult float64     // result delivered by KindReduceResult

	// Combining-tree position and per-round state (tree topology only;
	// per-node so the PDES single-writer discipline holds at any depth).
	treeParent   int
	treeChildren []int
	tbar         treeBar
	tred         treeRed

	proc *sim.Proc // the node's compute process, set by SetProc
}

// SetProc binds the node's compute process.
func (n *Node) SetProc(p *sim.Proc) { n.proc = p }

// Proc returns the node's compute process.
func (n *Node) Proc() *sim.Proc { return n.proc }

// On registers the handler for a message kind.
func (n *Node) On(k network.Kind, h Handler) {
	if n.handlers[k] != nil {
		panic(fmt.Sprintf("tempest: duplicate handler for kind %d on node %d", k, n.ID))
	}
	n.handlers[k] = h
}

// hinvoke is one queued handler execution. Records are recycled
// through Node.hfree so the steady-state receive path allocates
// nothing.
type hinvoke struct {
	n     *Node
	m     *network.Message
	start sim.Time
	ctx   HContext
}

// hinvokeEvent is the shared ScheduleArg function for handler runs.
var hinvokeEvent = func(a any) { a.(*hinvoke).run() }

// receive is the network endpoint: it queues the message on the
// protocol engine and runs the registered handler with RecvOver plus
// the handler's own cost.
func (n *Node) receive(m *network.Message) {
	start := n.Env.Now()
	if n.protoFree > start {
		start = n.protoFree
	}
	// Reserve a minimal slot now; the real cost is known after the
	// handler body runs at start.
	n.protoFree = start + n.MC.RecvOver
	var hv *hinvoke
	if k := len(n.hfree); k > 0 {
		hv = n.hfree[k-1]
		n.hfree = n.hfree[:k-1]
	} else {
		hv = &hinvoke{n: n}
	}
	hv.m = m
	hv.start = start
	n.hq++
	n.Env.ScheduleArg(start, hinvokeEvent, hv)
}

// HandlersQueued returns the number of handler invocations accepted by
// the endpoint but not yet run (scheduled on the engine). Zero is part
// of the cluster quiescence predicate checkpoints rely on.
func (n *Node) HandlersQueued() int { return n.hq }

func (hv *hinvoke) run() {
	n := hv.n
	m := hv.m
	n.hq--
	if n.Net.Dead(n.ID) {
		// The node crashed between the endpoint accepting the message
		// and the engine slot coming free: the handler never runs.
		n.Net.Recycle(m)
		hv.m = nil
		n.hfree = append(n.hfree, hv)
		return
	}
	h := n.handlers[m.Kind]
	if h == nil {
		panic(fmt.Sprintf("tempest: node %d has no handler for kind %d", n.ID, m.Kind))
	}
	// Capture trace identity before the handler runs: Recycle zeroes
	// the message, and a Retained message may be mutated for reuse.
	var kind network.Kind
	var flow uint64
	var src, addr int
	if n.Trace != nil {
		kind, flow, src, addr = m.Kind, m.Flow(), m.Src, m.Addr
	}
	hv.ctx = HContext{Node: n}
	c := &hv.ctx
	if n.NICBurst != nil {
		n.NICBurst(true)
	}
	h(c, m)
	// The engine stays busy for the receive overhead plus the
	// handler's declared cost (the body may also have extended
	// protoFree directly via OccupyProto).
	base := hv.start + n.MC.RecvOver
	if n.protoFree < base {
		n.protoFree = base
	}
	n.protoFree += c.cost
	if n.MC.CPUMode == config.SingleCPU {
		n.stolen += n.MC.RecvOver + c.cost
		n.St.StolenTime += n.MC.RecvOver + c.cost
	}
	if t := n.Trace; t != nil {
		t.Span(n.ID, trace.LaneProto, "h:"+t.MsgName(uint8(kind)), "handler",
			hv.start, n.protoFree, trace.Int("src", src), trace.Int("addr", addr))
		if flow != 0 {
			t.FlowEnd(n.ID, trace.LaneProto, flow, hv.start)
		}
	}
	if n.NICBurst != nil {
		// Replies the handler deposited in the coalescing buffers depart
		// now, after the engine occupancy they conclude — a burst of
		// same-destination replies leaves as one carrier with no timer
		// latency.
		n.NICBurst(false)
	}
	// The handler is done with the message unless it Retained it.
	n.Net.Recycle(m)
	hv.m = nil
	n.hfree = append(n.hfree, hv)
}

// SendFromCompute transmits a message from the compute processor,
// charging SendOver to compute time.
func (n *Node) SendFromCompute(m *network.Message) {
	m.Src = n.ID
	n.Compute(n.MC.SendOver)
	n.Net.Send(m)
}

// ProtoBusyUntil returns when the protocol engine frees up (used by the
// protocol layer to model occupancy for locally initiated actions).
func (n *Node) ProtoBusyUntil() sim.Time { return n.protoFree }

// SendFromProto transmits a message from the protocol engine: it
// charges SendOver and the message departs when the engine's queued
// work (including this send) completes — replies leave after the
// handler processing they conclude, preserving per-destination order.
func (n *Node) SendFromProto(m *network.Message) {
	m.Src = n.ID
	if n.NICFlushTo != nil && m.Dst != n.ID {
		// Departure slots are taken at compose time: drain segments
		// already buffered for this destination so they keep their
		// earlier slots. Re-entrancy is safe — the flush empties the
		// buffer before injecting, so the nested call is a no-op.
		n.NICFlushTo(m.Dst)
	}
	n.OccupyProto(n.MC.SendOver)
	depart := n.protoFree
	if depart <= n.Env.Now() {
		n.Net.Send(m)
		return
	}
	n.Net.SendAt(depart, m)
}

// OccupyProto keeps the protocol engine busy for d more time.
func (n *Node) OccupyProto(d sim.Time) {
	start := n.Env.Now()
	if n.protoFree > start {
		start = n.protoFree
	}
	n.protoFree = start + d
	if n.MC.CPUMode == config.SingleCPU {
		n.stolen += d
		n.St.StolenTime += d
	}
}

// StealCompute charges d to the compute processor regardless of CPU
// mode (used by runtimes whose receive processing runs on the compute
// processor, like the ported PGI message-passing layer).
func (n *Node) StealCompute(d sim.Time) {
	n.stolen += d
	n.St.StolenTime += d
}

// --- Compute-side time accounting -----------------------------------

// Compute accumulates d of application work on the compute processor.
// Cheap: no event-queue interaction until Sync.
func (n *Node) Compute(d sim.Time) { n.acc += d }

// Sync advances virtual time by all accumulated compute work plus any
// time stolen by handlers. Must be called from the node's compute
// process before any blocking operation.
func (n *Node) Sync(p *sim.Proc) {
	d := n.acc + n.stolen
	n.St.ComputeTime += n.acc
	n.acc = 0
	n.stolen = 0
	if d > 0 {
		p.Sleep(d)
	}
}

// BlockOn syncs and then blocks the compute process on sig, charging
// the blocked time to communication.
func (n *Node) BlockOn(p *sim.Proc, sig *sim.Signal) {
	n.Sync(p)
	start := p.Now()
	sig.Wait(p)
	n.St.CommTime += p.Now() - start
}

// --- Pending-transaction tracking (release consistency) -------------

// AddPending records a non-blocking transaction in flight.
func (n *Node) AddPending() { n.pending++ }

// DonePending completes one in-flight transaction.
func (n *Node) DonePending() {
	n.pending--
	if n.pending < 0 {
		panic("tempest: pending transaction count went negative")
	}
	if n.pending == 0 && n.pendingSig != nil {
		s := n.pendingSig
		n.pendingSig = nil
		s.Fire()
	}
}

// Pending returns the number of in-flight transactions.
func (n *Node) Pending() int { return n.pending }

// WaitPending blocks until all in-flight transactions complete. Called
// at synchronization points per the release-consistency model. Any
// traffic still buffered in the coalescing scheduler drains first:
// buffered upgrade requests are themselves pending transactions, and
// their grants cannot arrive while the requests sit in a gather buffer.
func (n *Node) WaitPending(p *sim.Proc) {
	if n.NICDrain != nil {
		n.NICDrain()
	}
	n.Sync(p)
	if n.pending == 0 {
		return
	}
	if n.pendingSig == nil {
		n.pendSig.Reset()
		n.pendingSig = &n.pendSig
	}
	start := p.Now()
	n.pendingSig.Wait(p)
	n.St.CommTime += p.Now() - start
}

// --- Memory access with fine-grain checks ---------------------------

// LoadF64 performs a checked shared-memory load, invoking the fault
// handler (and charging the stall to communication) on an invalid block.
func (n *Node) LoadF64(p *sim.Proc, addr int) float64 {
	if !n.Mem.CheckLoad(addr) {
		n.St.ReadMisses++
		n.fault(p, addr, false, "read")
	}
	return n.Mem.ReadF64(addr)
}

// StoreF64 performs a checked shared-memory store.
func (n *Node) StoreF64(p *sim.Proc, addr int, v float64) {
	if !n.Mem.CheckStore(addr) {
		kind := "write"
		if n.Mem.Tag(n.Mem.Space().Block(addr)) == memory.ReadOnly {
			n.St.UpgradeMisses++
			kind = "upgrade"
		} else {
			n.St.WriteMisses++
		}
		n.fault(p, addr, true, kind)
	}
	n.Mem.WriteF64(addr, v)
}

func (n *Node) fault(p *sim.Proc, addr int, write bool, kind string) {
	if n.Fault == nil {
		panic(fmt.Sprintf("tempest: node %d access fault at %#x with no protocol installed", n.ID, addr))
	}
	n.Sync(p)
	start := p.Now()
	// Access rights can be snatched between the grant and the retried
	// access (e.g. an invalidation racing a write grant); like real
	// fine-grain systems, the access simply faults again. Bound the
	// retries to catch protocol livelock in tests.
	for try := 0; ; try++ {
		n.Fault(p, addr, write)
		if write && n.Mem.CheckStore(addr) || !write && n.Mem.CheckLoad(addr) {
			break
		}
		if try == 64 {
			panic(fmt.Sprintf("tempest: node %d livelocked faulting on %v of %#x (tag %v)",
				n.ID, accessName(write), addr, n.Mem.Tag(n.Mem.Space().Block(addr))))
		}
	}
	stall := p.Now() - start
	n.St.CommTime += stall
	n.St.RecordMissLatency(stall)
	if n.Trace != nil {
		n.Trace.MissSpan(n.ID, n.Mem.Space().Block(addr), addr, kind, start, p.Now())
	}
}

func accessName(write bool) string {
	if write {
		return "store"
	}
	return "load"
}

// --- Cluster ---------------------------------------------------------

// Cluster assembles the environment, network, and nodes of one
// simulated machine.
type Cluster struct {
	Env   *sim.Env
	MC    config.Machine
	Space *memory.Space
	Net   *network.Network
	Nodes []*Node
	Stats *stats.Cluster

	// TimerStart is the measured region's start (set by the runtime's
	// StartTimer statement; zero if the whole run is measured).
	TimerStart sim.Time

	// BarrierCheck, if non-nil, runs at the instant the last node
	// arrives at each barrier or reduction, before any release is sent —
	// a globally synchronized point where coherence invariants can be
	// audited. The first failure is retained (CheckErr) and does not
	// stop the run.
	BarrierCheck func() error

	// OnEpoch, if non-nil, runs at every all-arrived instant after the
	// epoch counter advances and the coherence audit runs, still before
	// any release departs. The recovery layer hooks it to capture
	// barrier-consistent checkpoints and to fire epoch-triggered
	// crash injections.
	OnEpoch func(epoch int64)

	// ReduceJournal accumulates every completed reduction's combined
	// result in generation order. On recovery the journal from the
	// checkpoint epoch replays results to ghost-forwarded processes
	// without re-running the arithmetic.
	ReduceJournal []float64

	// Topo is the combining-tree shape when the machine runs the tree
	// topology (nil under the flat protocol). Set by installSync.
	Topo *topo.Tree

	checkErr  error
	checksRun int64
	epoch     int64

	barrier barrierState
	reduce  reduceState
}

// Epoch returns the number of completed synchronization epochs
// (barriers and reductions that reached their all-arrived instant).
func (c *Cluster) Epoch() int64 { return c.epoch }

// ReduceGen returns the number of completed reduction generations.
func (c *Cluster) ReduceGen() int64 { return c.reduce.gen }

// RestoreEpoch rebases the epoch counter, reduction generation, and
// reduce journal from a checkpoint (recovery only; the cluster must be
// idle).
func (c *Cluster) RestoreEpoch(epoch, reduceGen int64, journal []float64) {
	c.epoch = epoch
	c.reduce.gen = reduceGen
	c.ReduceJournal = append(c.ReduceJournal[:0], journal...)
}

// CheckErr returns the first barrier-check failure, or nil.
func (c *Cluster) CheckErr() error { return c.checkErr }

// BarrierChecks returns how many barrier-instant audits ran.
func (c *Cluster) BarrierChecks() int64 { return c.checksRun }

// runBarrierCheck advances the epoch and audits the cluster at an
// all-arrived instant (all live nodes present, no release sent yet).
func (c *Cluster) runBarrierCheck() {
	c.epoch++
	if c.BarrierCheck != nil {
		c.checksRun++
		if err := c.BarrierCheck(); err != nil && c.checkErr == nil {
			c.checkErr = fmt.Errorf("coherence check at sync point %d (t=%dns): %w", c.checksRun, c.Env.Now(), err)
		}
	}
	if c.OnEpoch != nil {
		c.OnEpoch(c.epoch)
	}
}

// Crash injects a crash-stop failure of node id at the current instant:
// the node's compute process dies wherever it stands, its NIC gather
// buffers are discarded (no posthumous carriers), and the network stops
// carrying traffic to or from it. Survivors learn of the death only
// through the failure detector.
func (c *Cluster) Crash(id int) {
	c.Net.MarkDead(id)
	if co := c.Net.CoalescerOf(id); co != nil {
		co.Teardown()
	}
	if p := c.Nodes[id].proc; p != nil {
		c.Env.CrashProc(p)
	}
}

// NewCluster builds a cluster over an already-laid-out address space.
func NewCluster(env *sim.Env, sp *memory.Space) *Cluster {
	mc := sp.Machine()
	st := stats.New(mc.Nodes)
	net := network.New(env, mc, st)
	c := &Cluster{Env: env, MC: mc, Space: sp, Net: net, Stats: st}
	c.assemble(func(int) *sim.Env { return env })
	return c
}

// NewPartitionedCluster builds a cluster in conservative-PDES mode:
// envs[i] is node i's partition environment and post the network's
// cross-partition mailbox hook (see network.NewPartitioned). Each
// node's handlers, timers, and compute process live entirely on its
// own Env; Cluster.Env is node 0's — the home of the barrier and
// reduction master state, which only node 0's handlers mutate.
func NewPartitionedCluster(envs []*sim.Env, sp *memory.Space, post network.PostFn) *Cluster {
	mc := sp.Machine()
	st := stats.New(mc.Nodes)
	net := network.NewPartitioned(envs, post, mc, st)
	c := &Cluster{Env: envs[0], MC: mc, Space: sp, Net: net, Stats: st}
	c.assemble(func(i int) *sim.Env { return envs[i] })
	return c
}

// assemble builds and binds the per-node state; envOf maps a node id
// to the Env its events run on.
func (c *Cluster) assemble(envOf func(int) *sim.Env) {
	for i := 0; i < c.MC.Nodes; i++ {
		n := &Node{
			ID:  i,
			Env: envOf(i),
			Net: c.Net,
			Mem: memory.NewNodeMem(c.Space, i),
			MC:  c.MC,
			St:  &c.Stats.Nodes[i],
		}
		c.Net.Bind(i, n.receive)
		c.Nodes = append(c.Nodes, n)
	}
	c.installSync()
}

// SetTracer installs the causal event tracer on the cluster: the
// network records wire spans and flow links, every node records handler
// and miss spans. Must be called before the simulation starts; nil
// disables tracing (the default).
func (c *Cluster) SetTracer(t *trace.Tracer) {
	c.Net.SetTracer(t)
	for _, n := range c.Nodes {
		n.Trace = t
	}
}
