package ir

import (
	"testing"
	"testing/quick"

	"hpfdsm/internal/distribute"
)

func TestAffArithmetic(t *testing.T) {
	// 2*i + j - i + 3 == i + j + 3
	e := V("i").Scale(2).Add(V("j")).Sub(V("i")).AddC(3)
	if e.Coef("i") != 1 || e.Coef("j") != 1 || e.Const != 3 {
		t.Fatalf("normalized = %v", e)
	}
	env := map[string]int{"i": 10, "j": 20}
	if e.Eval(env) != 33 {
		t.Fatalf("eval = %d", e.Eval(env))
	}
}

func TestAffCancellation(t *testing.T) {
	e := V("k").Sub(V("k"))
	if !e.IsConst() || e.Const != 0 {
		t.Fatalf("k-k = %v", e)
	}
}

func TestAffUnboundPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	V("x").Eval(map[string]int{})
}

func TestAffString(t *testing.T) {
	cases := map[string]AffExpr{
		"0":     Aff(0),
		"5":     Aff(5),
		"i":     V("i"),
		"i+1":   V("i").AddC(1),
		"2*i-3": V("i").Scale(2).AddC(-3),
		"i+j+1": V("i").Add(V("j")).AddC(1),
	}
	for want, e := range cases {
		if e.String() != want {
			t.Errorf("String(%#v) = %q, want %q", e, e.String(), want)
		}
	}
}

func TestPropertyAffEvalLinear(t *testing.T) {
	f := func(a, b int8, i, j int8) bool {
		e := V("i").Scale(int(a)).Add(V("j").Scale(int(b)))
		env := map[string]int{"i": int(i), "j": int(j)}
		return e.Eval(env) == int(a)*int(i)+int(b)*int(j)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUsesAny(t *testing.T) {
	e := V("i").Add(V("k"))
	if !e.UsesAny(map[string]bool{"k": true}) || e.UsesAny(map[string]bool{"j": true}) {
		t.Fatal("UsesAny wrong")
	}
}

func TestArrayBasics(t *testing.T) {
	a := &Array{Name: "a", Extents: []int{100, 200}, Dist: distribute.Spec{Kind: distribute.Block}}
	if a.Rank() != 2 || a.Elems() != 20000 || a.LastExtent() != 200 {
		t.Fatal("array geometry wrong")
	}
}

func TestRefRankMismatchPanics(t *testing.T) {
	a := &Array{Name: "a", Extents: []int{10, 10}}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Ref(a, V("i"))
}

func TestOpsCounting(t *testing.T) {
	a := &Array{Name: "a", Extents: []int{10}}
	// 0.25*(a(i-1)+a(i+1)) = 2 loads + 2 adds... : Mul(Num, Plus(ref,ref))
	e := Times(N(0.25), Plus(Ref(a, V("i").AddC(-1)), Ref(a, V("i").AddC(1))))
	if e.Ops() != 4 { // mul + add + 2 loads
		t.Fatalf("ops = %d", e.Ops())
	}
	red := InnerRed{Op: RedSum, Var: "k", Lo: Aff(1), Hi: Aff(10), Body: Times(Ref(a, V("k")), Ref(a, V("k")))}
	if red.Ops() != 10*(1+3) {
		t.Fatalf("inner red ops = %d", red.Ops())
	}
}

func TestRefsCollection(t *testing.T) {
	a := &Array{Name: "a", Extents: []int{10}}
	b := &Array{Name: "b", Extents: []int{10}}
	e := Plus(Ref(a, V("i")), InnerRed{Op: RedSum, Var: "k", Lo: Aff(1), Hi: Aff(5),
		Body: Times(Ref(b, V("k")), Ref(a, V("k")))})
	refs := Refs(e)
	if len(refs) != 3 {
		t.Fatalf("refs = %v", refs)
	}
	iv := InnerVars(e)
	if !iv["k"] || len(iv) != 1 {
		t.Fatalf("inner vars = %v", iv)
	}
}

func TestProgramLookup(t *testing.T) {
	a := &Array{Name: "x", Extents: []int{4}}
	p := &Program{Name: "t", Params: map[string]int{"n": 4}, Arrays: []*Array{a}}
	if p.ArrayByName("x") != a || p.ArrayByName("y") != nil {
		t.Fatal("ArrayByName wrong")
	}
	if p.Param("n") != 4 {
		t.Fatal("Param wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("missing param should panic")
		}
	}()
	p.Param("zzz")
}

func TestIndexStep(t *testing.T) {
	if Idx("i", Aff(1), Aff(5)).StepOr1() != 1 {
		t.Fatal("default step")
	}
	if IdxStep("i", Aff(1), Aff(5), 2).StepOr1() != 2 {
		t.Fatal("explicit step")
	}
}

func TestOpStrings(t *testing.T) {
	if Add.String() != "+" || Div.String() != "/" {
		t.Fatal("binop strings")
	}
	if RedSum.String() != "SUM" || RedMin.String() != "MIN" {
		t.Fatal("redop strings")
	}
	if Lt.String() != "<" || Ge.String() != ">=" {
		t.Fatal("cmpop strings")
	}
}

func TestIndirectExpr(t *testing.T) {
	a := &Array{Name: "a", Extents: []int{10}}
	ix := &Array{Name: "ix", Extents: []int{10}}
	ind := Indirect{Array: a, Subs: []Expr{Ref(ix, V("i"))}}
	if ind.Ops() < 3 {
		t.Fatalf("indirect ops = %d", ind.Ops())
	}
	// Walk reaches the inner reference.
	refs := Refs(ind)
	if len(refs) != 1 || refs[0].Array != ix {
		t.Fatalf("refs through indirect = %v", refs)
	}
	if got := Indirects(Plus(ind, N(1))); len(got) != 1 {
		t.Fatalf("indirects = %v", got)
	}
}

func TestHasIndirect(t *testing.T) {
	a := &Array{Name: "a", Extents: []int{8}}
	mk := func(e Expr) *Program {
		return &Program{Name: "p", Params: map[string]int{}, Arrays: []*Array{a},
			Body: []Stmt{
				&SeqLoop{Var: "t", Lo: Aff(1), Hi: Aff(2), Body: []Stmt{
					&Block{Body: []Stmt{
						&ParLoop{Label: "l",
							Indexes: []Index{Idx("i", Aff(1), Aff(8))},
							Body:    []*Assign{{LHS: Ref(a, V("i")), RHS: e}}},
					}},
				}},
			}}
	}
	if HasIndirect(mk(N(1))) {
		t.Fatal("affine program flagged")
	}
	if !HasIndirect(mk(Indirect{Array: a, Subs: []Expr{N(3)}})) {
		t.Fatal("indirect program missed")
	}
	red := &Program{Name: "r", Params: map[string]int{}, Arrays: []*Array{a},
		Scalars: []string{"s"},
		Body: []Stmt{&Reduce{Op: RedSum, Target: "s",
			Indexes: []Index{Idx("i", Aff(1), Aff(8))},
			Expr:    Indirect{Array: a, Subs: []Expr{N(2)}}}}}
	if !HasIndirect(red) {
		t.Fatal("indirect in reduction missed")
	}
}

func TestTryEval(t *testing.T) {
	e := V("i").AddC(3)
	if v, ok := e.TryEval(map[string]int{"i": 4}); !ok || v != 7 {
		t.Fatalf("TryEval = %v %v", v, ok)
	}
	if _, ok := e.TryEval(map[string]int{}); ok {
		t.Fatal("unbound TryEval should fail")
	}
}

func TestMoreBuilders(t *testing.T) {
	if Sum3(N(1), N(2), N(3)).Ops() != 2 {
		t.Fatal("Sum3")
	}
	if Over(N(1), N(2)).Ops() != 1 {
		t.Fatal("Over")
	}
	a := &Array{Name: "a", Extents: []int{4, 4}}
	if a.String() == "" || Ref(a, V("i"), V("j")).String() != "a(i,j)" {
		t.Fatalf("strings: %q", Ref(a, V("i"), V("j")).String())
	}
	iv := InnerVars(Plus(N(1), N(2)))
	if len(iv) != 0 {
		t.Fatal("InnerVars on flat expr")
	}
}
