package ir

// Construction helpers: the applications in internal/apps and tests
// build IR directly with these; the mini-HPF front end produces the
// same structures from source text.

// N returns a numeric literal expression.
func N(v float64) Expr { return Num{V: v} }

// S returns a scalar reference expression.
func S(name string) Expr { return ScalarRef{Name: name} }

// Iv returns an index-value expression (loop index as float).
func Iv(name string) Expr { return IdxVal{Name: name} }

// Ref builds an array reference.
func Ref(a *Array, subs ...AffExpr) ArrayRef {
	if len(subs) != a.Rank() {
		panic("ir: Ref rank mismatch for " + a.Name)
	}
	return ArrayRef{Array: a, Subs: subs}
}

// Plus returns l+r.
func Plus(l, r Expr) Expr { return Bin{Op: Add, L: l, R: r} }

// Minus returns l-r.
func Minus(l, r Expr) Expr { return Bin{Op: Sub, L: l, R: r} }

// Times returns l*r.
func Times(l, r Expr) Expr { return Bin{Op: Mul, L: l, R: r} }

// Over returns l/r.
func Over(l, r Expr) Expr { return Bin{Op: Div, L: l, R: r} }

// Sum3 returns a+b+c.
func Sum3(a, b, c Expr) Expr { return Plus(Plus(a, b), c) }

// Sum4 returns a+b+c+d.
func Sum4(a, b, c, d Expr) Expr { return Plus(Plus(a, b), Plus(c, d)) }

// Idx builds a unit-step loop index.
func Idx(v string, lo, hi AffExpr) Index { return Index{Var: v, Lo: lo, Hi: hi} }

// IdxStep builds a strided loop index.
func IdxStep(v string, lo, hi AffExpr, step int) Index {
	return Index{Var: v, Lo: lo, Hi: hi, Step: step}
}

// WalkExpr applies f to e and all its sub-expressions.
func WalkExpr(e Expr, f func(Expr)) {
	f(e)
	switch x := e.(type) {
	case Bin:
		WalkExpr(x.L, f)
		WalkExpr(x.R, f)
	case Call:
		for _, a := range x.Args {
			WalkExpr(a, f)
		}
	case InnerRed:
		WalkExpr(x.Body, f)
	case Indirect:
		for _, s := range x.Subs {
			WalkExpr(s, f)
		}
	}
}

// Indirects collects every irregular reference in an expression.
func Indirects(e Expr) []Indirect {
	var out []Indirect
	WalkExpr(e, func(x Expr) {
		if r, ok := x.(Indirect); ok {
			out = append(out, r)
		}
	})
	return out
}

// Refs collects every array reference in an expression.
func Refs(e Expr) []ArrayRef {
	var out []ArrayRef
	WalkExpr(e, func(x Expr) {
		if r, ok := x.(ArrayRef); ok {
			out = append(out, r)
		}
	})
	return out
}

// WalkStmts applies f to every statement in the list and, recursively,
// to the bodies of sequential loops and blocks. Parallel-loop bodies
// are assignments, not statements, and are not visited.
func WalkStmts(stmts []Stmt, f func(Stmt)) {
	for _, s := range stmts {
		f(s)
		switch st := s.(type) {
		case *SeqLoop:
			WalkStmts(st.Body, f)
		case *Block:
			WalkStmts(st.Body, f)
		}
	}
}

// HasIndirect reports whether the program contains any irregular
// reference — such programs are outside the reach of a purely
// message-passing compilation (no inspector-executor), which is the
// paper's motivation for shared memory.
func HasIndirect(p *Program) bool {
	found := false
	WalkStmts(p.Body, func(s Stmt) {
		switch st := s.(type) {
		case *ParLoop:
			for _, as := range st.Body {
				if len(Indirects(as.RHS)) > 0 {
					found = true
				}
			}
		case *Reduce:
			if len(Indirects(st.Expr)) > 0 {
				found = true
			}
		}
	})
	return found
}

// InnerVars collects the variables bound by inner reductions in e.
func InnerVars(e Expr) map[string]bool {
	out := map[string]bool{}
	WalkExpr(e, func(x Expr) {
		if r, ok := x.(InnerRed); ok {
			out[r.Var] = true
		}
	})
	return out
}
