// Package ir defines the compiler's intermediate representation for
// data-parallel programs: distributed arrays, affine subscripts,
// parallel loop nests (FORALL), sequential time-step loops, global
// reductions, and replicated scalar computation. The mini-HPF front
// end lowers to this IR; the communication analysis, the shared-memory
// executor, and the message-passing executor all consume it.
package ir

import (
	"fmt"
	"sort"
	"strings"

	"hpfdsm/internal/distribute"
)

// --- Affine expressions ----------------------------------------------

// Term is one ci*var term of an affine expression.
type Term struct {
	Var  string
	Coef int
}

// AffExpr is an affine integer expression c0 + Σ ci*vi over loop
// variables and program symbols. Terms are kept sorted by variable
// name with zero coefficients removed (canonical form).
type AffExpr struct {
	Const int
	Terms []Term
}

// Aff returns the constant affine expression c.
func Aff(c int) AffExpr { return AffExpr{Const: c} }

// V returns the affine expression consisting of one variable.
func V(name string) AffExpr { return AffExpr{Terms: []Term{{name, 1}}} }

func (a AffExpr) norm() AffExpr {
	m := map[string]int{}
	for _, t := range a.Terms {
		m[t.Var] += t.Coef
	}
	out := AffExpr{Const: a.Const}
	var vars []string
	for v, c := range m {
		if c != 0 {
			vars = append(vars, v)
		}
	}
	sort.Strings(vars)
	for _, v := range vars {
		out.Terms = append(out.Terms, Term{v, m[v]})
	}
	return out
}

// Add returns a+b.
func (a AffExpr) Add(b AffExpr) AffExpr {
	return AffExpr{Const: a.Const + b.Const, Terms: append(append([]Term{}, a.Terms...), b.Terms...)}.norm()
}

// Sub returns a-b.
func (a AffExpr) Sub(b AffExpr) AffExpr { return a.Add(b.Scale(-1)) }

// AddC returns a+c.
func (a AffExpr) AddC(c int) AffExpr { return a.Add(Aff(c)) }

// Scale returns k*a.
func (a AffExpr) Scale(k int) AffExpr {
	out := AffExpr{Const: a.Const * k}
	for _, t := range a.Terms {
		out.Terms = append(out.Terms, Term{t.Var, t.Coef * k})
	}
	return out.norm()
}

// Eval evaluates under env; it panics on unbound variables.
func (a AffExpr) Eval(env map[string]int) int {
	v := a.Const
	for _, t := range a.Terms {
		val, ok := env[t.Var]
		if !ok {
			panic(fmt.Sprintf("ir: unbound variable %q in affine expression %v", t.Var, a))
		}
		v += t.Coef * val
	}
	return v
}

// TryEval evaluates under env, reporting false if a variable is
// unbound (used by cost estimation, where loop-interior variables are
// not yet bound).
func (a AffExpr) TryEval(env map[string]int) (int, bool) {
	v := a.Const
	for _, t := range a.Terms {
		val, ok := env[t.Var]
		if !ok {
			return 0, false
		}
		v += t.Coef * val
	}
	return v, true
}

// IsConst reports whether the expression has no variable terms.
func (a AffExpr) IsConst() bool { return len(a.Terms) == 0 }

// Coef returns the coefficient of variable v (0 if absent).
func (a AffExpr) Coef(v string) int {
	for _, t := range a.Terms {
		if t.Var == v {
			return t.Coef
		}
	}
	return 0
}

// Vars returns the variables appearing in the expression.
func (a AffExpr) Vars() []string {
	out := make([]string, len(a.Terms))
	for i, t := range a.Terms {
		out[i] = t.Var
	}
	return out
}

// UsesAny reports whether the expression mentions any of the names.
func (a AffExpr) UsesAny(names map[string]bool) bool {
	for _, t := range a.Terms {
		if names[t.Var] {
			return true
		}
	}
	return false
}

func (a AffExpr) String() string {
	var b strings.Builder
	wrote := false
	for _, t := range a.Terms {
		if wrote {
			b.WriteByte('+')
		}
		if t.Coef == 1 {
			b.WriteString(t.Var)
		} else {
			fmt.Fprintf(&b, "%d*%s", t.Coef, t.Var)
		}
		wrote = true
	}
	if a.Const != 0 || !wrote {
		if wrote && a.Const > 0 {
			b.WriteByte('+')
		}
		fmt.Fprintf(&b, "%d", a.Const)
	}
	return b.String()
}

// --- Arrays ------------------------------------------------------------

// Array is a distributed array declaration. Indices are 1-based,
// storage is column-major, elements are float64. Only the last
// dimension may be distributed (the paper's assumption).
type Array struct {
	Name    string
	Extents []int
	Dist    distribute.Spec
}

// Rank returns the number of dimensions.
func (a *Array) Rank() int { return len(a.Extents) }

// LastExtent returns the distributed dimension's extent.
func (a *Array) LastExtent() int { return a.Extents[len(a.Extents)-1] }

// Elems returns the total element count.
func (a *Array) Elems() int {
	n := 1
	for _, e := range a.Extents {
		n *= e
	}
	return n
}

func (a *Array) String() string {
	dims := make([]string, len(a.Extents))
	for i, e := range a.Extents {
		dims[i] = fmt.Sprint(e)
	}
	return fmt.Sprintf("%s(%s) dist %v", a.Name, strings.Join(dims, ","), a.Dist.Kind)
}

// --- Expressions -------------------------------------------------------

// Expr is a floating-point expression evaluated per loop element.
type Expr interface {
	isExpr()
	// Ops returns the flop count of one evaluation (inner reductions
	// count their body times their trip count estimate).
	Ops() int
}

// Num is a literal.
type Num struct{ V float64 }

// ScalarRef reads a replicated scalar variable.
type ScalarRef struct{ Name string }

// IdxVal converts a loop index (or symbol) to a floating-point value,
// e.g. for initialization expressions like a(i,j) = i + 2*j.
type IdxVal struct{ Name string }

// ArrayRef reads (or, as an assignment target, writes) an array
// element with affine subscripts.
type ArrayRef struct {
	Array *Array
	Subs  []AffExpr
}

// BinOp is a binary operator.
type BinOp int

// Binary operators.
const (
	Add BinOp = iota
	Sub
	Mul
	Div
)

func (o BinOp) String() string { return [...]string{"+", "-", "*", "/"}[o] }

// Bin is a binary operation.
type Bin struct {
	Op   BinOp
	L, R Expr
}

// Call is an intrinsic function application (SQRT, ABS, MIN, MAX, EXP).
type Call struct {
	Fn   string
	Args []Expr
}

// InnerRed is a sequential reduction evaluated inside one loop element
// (e.g. the dot product inside a matrix-vector row).
type InnerRed struct {
	Op   RedOp
	Var  string
	Lo   AffExpr
	Hi   AffExpr
	Body Expr
}

// Indirect is an irregular array read whose subscripts are arbitrary
// runtime expressions (e.g. v(ix(i)) — an indirect subscript through
// an index array, or v(i*j) — a non-affine subscript). The compiler
// cannot derive access sets for it: the reference always goes through
// the default coherence protocol, which is exactly the versatility
// argument of the paper (and why such programs are "not amenable to
// purely message-passing approaches").
type Indirect struct {
	Array *Array
	Subs  []Expr
}

func (Num) isExpr()       {}
func (ScalarRef) isExpr() {}
func (IdxVal) isExpr()    {}
func (ArrayRef) isExpr()  {}
func (Bin) isExpr()       {}
func (Call) isExpr()      {}
func (InnerRed) isExpr()  {}
func (Indirect) isExpr()  {}

// Ops implementations (static flop estimates for the cost model).

// Ops returns 0: literals are free.
func (Num) Ops() int { return 0 }

// Ops returns 0: register read.
func (ScalarRef) Ops() int { return 0 }

// Ops returns 1: an int-to-float conversion.
func (IdxVal) Ops() int { return 1 }

// Ops returns 1: one load.
func (r ArrayRef) Ops() int { return 1 }

// Ops returns the operator plus operand cost.
func (b Bin) Ops() int { return 1 + b.L.Ops() + b.R.Ops() }

// Ops charges intrinsics as several flops.
func (c Call) Ops() int {
	n := 8
	for _, a := range c.Args {
		n += a.Ops()
	}
	return n
}

// Ops charges the subscript computations plus the load.
func (ix Indirect) Ops() int {
	n := 2 // address computation + load
	for _, s := range ix.Subs {
		n += s.Ops()
	}
	return n
}

// Ops estimates trip count when bounds are constant, else assumes 16.
func (ir InnerRed) Ops() int {
	trip := 16
	if ir.Lo.IsConst() && ir.Hi.IsConst() {
		trip = ir.Hi.Const - ir.Lo.Const + 1
		if trip < 0 {
			trip = 0
		}
	}
	return trip * (1 + ir.Body.Ops())
}

func (r ArrayRef) String() string {
	subs := make([]string, len(r.Subs))
	for i, s := range r.Subs {
		subs[i] = s.String()
	}
	return fmt.Sprintf("%s(%s)", r.Array.Name, strings.Join(subs, ","))
}

// --- Statements ---------------------------------------------------------

// Stmt is a program statement.
type Stmt interface{ isStmt() }

// Index is one loop index of a parallel nest: var runs Lo..Hi by Step.
type Index struct {
	Var  string
	Lo   AffExpr
	Hi   AffExpr
	Step int // 0 means 1
}

// StepOr1 returns the effective step.
func (ix Index) StepOr1() int {
	if ix.Step == 0 {
		return 1
	}
	return ix.Step
}

// Assign is one element assignment inside a parallel loop.
type Assign struct {
	LHS ArrayRef
	RHS Expr
}

// ParLoop is a parallel (FORALL) loop nest: every iteration is
// independent. Work is distributed owner-computes on the first
// assignment's left-hand side unless OnHome overrides it. Index 0
// varies fastest.
type ParLoop struct {
	Indexes []Index
	Body    []*Assign
	OnHome  *ArrayRef // optional ON HOME directive
	Label   string    // source label for diagnostics and schedules
}

// SeqLoop is a sequential (time-step) loop.
type SeqLoop struct {
	Var  string
	Lo   AffExpr
	Hi   AffExpr
	Body []Stmt
}

// RedOp is a reduction operator.
type RedOp int

// Reduction operators.
const (
	RedSum RedOp = iota
	RedMax
	RedMin
)

func (o RedOp) String() string { return [...]string{"SUM", "MAX", "MIN"}[o] }

// Reduce computes a global reduction of Expr over a parallel iteration
// space into the scalar Target, replicated on all processors.
type Reduce struct {
	Op      RedOp
	Target  string
	Indexes []Index
	Expr    Expr
	Label   string
}

// ScalarAssign evaluates a replicated scalar assignment (the expression
// may reference scalars and literals only, so every node computes the
// same value).
type ScalarAssign struct {
	Name string
	RHS  Expr
}

// CmpOp is a comparison operator for ExitIf.
type CmpOp int

// Comparison operators.
const (
	Lt CmpOp = iota
	Le
	Gt
	Ge
)

func (o CmpOp) String() string { return [...]string{"<", "<=", ">", ">="}[o] }

// ExitIf breaks out of the innermost sequential loop when the scalar
// condition holds (e.g. a convergence test). Both sides must be
// replicated-scalar expressions.
type ExitIf struct {
	L  Expr
	Op CmpOp
	R  Expr
}

// Block groups statements (an inlined subroutine body).
type Block struct {
	Body []Stmt
}

// StartTimer begins the measured region: all nodes synchronize, the
// performance counters reset, and elapsed time is reported from this
// point — the paper's methodology of timing the computation proper
// (e.g. pde's "RELAX routine only") after initialization.
type StartTimer struct{}

func (*ParLoop) isStmt()      {}
func (*StartTimer) isStmt()   {}
func (*Block) isStmt()        {}
func (*SeqLoop) isStmt()      {}
func (*Reduce) isStmt()       {}
func (*ScalarAssign) isStmt() {}
func (*ExitIf) isStmt()       {}

// --- Program -------------------------------------------------------------

// Program is a complete data-parallel program.
type Program struct {
	Name    string
	Params  map[string]int // compile-time constants (problem sizes)
	Arrays  []*Array
	Scalars []string
	Body    []Stmt
}

// ArrayByName returns the named array or nil.
func (p *Program) ArrayByName(name string) *Array {
	for _, a := range p.Arrays {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Param returns a named parameter value.
func (p *Program) Param(name string) int {
	v, ok := p.Params[name]
	if !ok {
		panic(fmt.Sprintf("ir: program %s has no param %q", p.Name, name))
	}
	return v
}
