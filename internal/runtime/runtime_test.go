package runtime

import (
	"math"
	"testing"

	"hpfdsm/internal/compiler"
	"hpfdsm/internal/config"
	"hpfdsm/internal/distribute"
	"hpfdsm/internal/ir"
)

// jacobiProg builds a full jacobi program with initialization so every
// element has a defined value.
func jacobiProg(n, iters int) *ir.Program {
	A := &ir.Array{Name: "a", Extents: []int{n, n}, Dist: distribute.Spec{Kind: distribute.Block}}
	B := &ir.Array{Name: "b", Extents: []int{n, n}, Dist: distribute.Spec{Kind: distribute.Block}}
	i, j := ir.V("i"), ir.V("j")
	initA := &ir.ParLoop{
		Label:   "init",
		Indexes: []ir.Index{ir.Idx("i", ir.Aff(1), ir.Aff(n)), ir.Idx("j", ir.Aff(1), ir.Aff(n))},
		Body: []*ir.Assign{
			{LHS: ir.Ref(A, i, j), RHS: ir.Plus(ir.Iv("i"), ir.Times(ir.N(3), ir.Iv("j")))},
			{LHS: ir.Ref(B, i, j), RHS: ir.N(0)},
		},
	}
	sweep := &ir.ParLoop{
		Label:   "sweep",
		Indexes: []ir.Index{ir.Idx("i", ir.Aff(2), ir.Aff(n-1)), ir.Idx("j", ir.Aff(2), ir.Aff(n-1))},
		Body: []*ir.Assign{{
			LHS: ir.Ref(B, i, j),
			RHS: ir.Times(ir.N(0.25), ir.Sum4(
				ir.Ref(A, i.AddC(-1), j), ir.Ref(A, i.AddC(1), j),
				ir.Ref(A, i, j.AddC(-1)), ir.Ref(A, i, j.AddC(1)))),
		}},
	}
	copyBack := &ir.ParLoop{
		Label:   "copy",
		Indexes: []ir.Index{ir.Idx("i", ir.Aff(2), ir.Aff(n-1)), ir.Idx("j", ir.Aff(2), ir.Aff(n-1))},
		Body:    []*ir.Assign{{LHS: ir.Ref(A, i, j), RHS: ir.Ref(B, i, j)}},
	}
	return &ir.Program{
		Name:   "jacobi",
		Params: map[string]int{"n": n, "iters": iters},
		Arrays: []*ir.Array{A, B},
		Body: []ir.Stmt{
			initA,
			&ir.StartTimer{},
			&ir.SeqLoop{Var: "t", Lo: ir.Aff(1), Hi: ir.Aff(iters), Body: []ir.Stmt{sweep, copyBack}},
		},
	}
}

// jacobiRef computes the same result sequentially.
func jacobiRef(n, iters int) []float64 {
	a := make([]float64, n*n)
	b := make([]float64, n*n)
	at := func(m []float64, i, j int) *float64 { return &m[(j-1)*n+(i-1)] }
	for j := 1; j <= n; j++ {
		for i := 1; i <= n; i++ {
			*at(a, i, j) = float64(i) + 3*float64(j)
		}
	}
	for t := 0; t < iters; t++ {
		for j := 2; j <= n-1; j++ {
			for i := 2; i <= n-1; i++ {
				*at(b, i, j) = 0.25 * (*at(a, i-1, j) + *at(a, i+1, j) + *at(a, i, j-1) + *at(a, i, j+1))
			}
		}
		for j := 2; j <= n-1; j++ {
			for i := 2; i <= n-1; i++ {
				*at(a, i, j) = *at(b, i, j)
			}
		}
	}
	return a
}

func maxAbsDiff(a, b []float64) float64 {
	m := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func runJacobi(t *testing.T, n, iters int, opt compiler.Level, mode config.CPUMode) *Result {
	t.Helper()
	mc := config.Default().WithCPUMode(mode)
	res, err := Run(jacobiProg(n, iters), Options{Machine: mc, Opt: opt})
	if err != nil {
		t.Fatalf("run at %v failed: %v", opt, err)
	}
	return res
}

func TestJacobiCorrectAtAllLevels(t *testing.T) {
	const n, iters = 64, 4
	want := jacobiRef(n, iters)
	for _, opt := range []compiler.Level{compiler.OptNone, compiler.OptBase, compiler.OptBulk, compiler.OptRTElim, compiler.OptPRE} {
		res := runJacobi(t, n, iters, opt, config.DualCPU)
		got := res.ArrayData("a")
		if d := maxAbsDiff(got, want); d > 1e-12 {
			t.Errorf("opt %v: max diff vs sequential = %g", opt, d)
		}
	}
}

func TestJacobiOptimizationReducesMisses(t *testing.T) {
	const n, iters = 64, 6
	unopt := runJacobi(t, n, iters, compiler.OptNone, config.DualCPU)
	opt := runJacobi(t, n, iters, compiler.OptRTElim, config.DualCPU)
	mu, mo := unopt.Stats.TotalMisses(), opt.Stats.TotalMisses()
	if mo >= mu {
		t.Fatalf("optimized misses %d >= unoptimized %d", mo, mu)
	}
	reduction := 1 - float64(mo)/float64(mu)
	// The paper reports 74-97% miss reductions for stencil codes.
	if reduction < 0.5 {
		t.Fatalf("miss reduction only %.0f%% (unopt %d, opt %d)", reduction*100, mu, mo)
	}
	t.Logf("miss reduction %.1f%% (%d -> %d)", reduction*100, mu, mo)
}

func TestJacobiOptimizationReducesTime(t *testing.T) {
	const n, iters = 64, 6
	unopt := runJacobi(t, n, iters, compiler.OptNone, config.DualCPU)
	base := runJacobi(t, n, iters, compiler.OptBase, config.DualCPU)
	bulk := runJacobi(t, n, iters, compiler.OptBulk, config.DualCPU)
	rte := runJacobi(t, n, iters, compiler.OptRTElim, config.DualCPU)
	if bulk.Elapsed >= unopt.Elapsed {
		t.Fatalf("bulk-optimized (%d) not faster than unoptimized (%d)", bulk.Elapsed, unopt.Elapsed)
	}
	if rte.Elapsed >= base.Elapsed {
		t.Fatalf("rtelim (%d) not faster than base (%d)", rte.Elapsed, base.Elapsed)
	}
	t.Logf("elapsed: none=%.2fms base=%.2fms bulk=%.2fms rtelim=%.2fms",
		ms(unopt.Elapsed), ms(base.Elapsed), ms(bulk.Elapsed), ms(rte.Elapsed))
}

func ms(t int64) float64 { return float64(t) / 1e6 }

func TestJacobiSingleCPUSlower(t *testing.T) {
	const n, iters = 64, 4
	dual := runJacobi(t, n, iters, compiler.OptNone, config.DualCPU)
	single := runJacobi(t, n, iters, compiler.OptNone, config.SingleCPU)
	if single.Elapsed <= dual.Elapsed {
		t.Fatalf("single-cpu (%d) not slower than dual-cpu (%d)", single.Elapsed, dual.Elapsed)
	}
}

func TestJacobiDeterministic(t *testing.T) {
	const n, iters = 48, 3
	r1 := runJacobi(t, n, iters, compiler.OptBulk, config.DualCPU)
	r2 := runJacobi(t, n, iters, compiler.OptBulk, config.DualCPU)
	if r1.Elapsed != r2.Elapsed {
		t.Fatalf("elapsed differs: %d vs %d", r1.Elapsed, r2.Elapsed)
	}
	if r1.Stats.TotalMessages() != r2.Stats.TotalMessages() {
		t.Fatalf("message counts differ")
	}
	if r1.Stats.TotalMisses() != r2.Stats.TotalMisses() {
		t.Fatalf("miss counts differ")
	}
}

func TestJacobiOneNode(t *testing.T) {
	const n, iters = 32, 2
	mc := config.Default().WithNodes(1)
	res, err := Run(jacobiProg(n, iters), Options{Machine: mc, Opt: compiler.OptNone})
	if err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(res.ArrayData("a"), jacobiRef(n, iters)); d > 1e-12 {
		t.Fatalf("uniprocessor diff %g", d)
	}
	if res.Stats.TotalMessages() != 0 {
		t.Fatalf("uniprocessor sent %d messages", res.Stats.TotalMessages())
	}
}

func TestSpeedupOverOneNode(t *testing.T) {
	const n, iters = 256, 3
	prog := jacobiProg(n, iters)
	one, err := Run(prog, Options{Machine: config.Default().WithNodes(1), Opt: compiler.OptNone})
	if err != nil {
		t.Fatal(err)
	}
	eight, err := Run(jacobiProg(n, iters), Options{Machine: config.Default(), Opt: compiler.OptRTElim})
	if err != nil {
		t.Fatal(err)
	}
	speedup := float64(one.Elapsed) / float64(eight.Elapsed)
	if speedup < 2 {
		t.Fatalf("8-node speedup only %.2fx (1 node: %.2fms, 8 nodes: %.2fms)",
			speedup, ms(one.Elapsed), ms(eight.Elapsed))
	}
	t.Logf("speedup %.2fx", speedup)
}

// reduceProg exercises global reductions and scalar control flow.
func reduceProg(n int) *ir.Program {
	A := &ir.Array{Name: "a", Extents: []int{n}, Dist: distribute.Spec{Kind: distribute.Block}}
	i := ir.V("i")
	return &ir.Program{
		Name:    "redtest",
		Params:  map[string]int{"n": n},
		Arrays:  []*ir.Array{A},
		Scalars: []string{"s", "mx", "mn", "half"},
		Body: []ir.Stmt{
			&ir.ParLoop{Label: "init",
				Indexes: []ir.Index{ir.Idx("i", ir.Aff(1), ir.Aff(n))},
				Body:    []*ir.Assign{{LHS: ir.Ref(A, i), RHS: ir.Iv("i")}}},
			&ir.Reduce{Label: "sum", Op: ir.RedSum, Target: "s",
				Indexes: []ir.Index{ir.Idx("i", ir.Aff(1), ir.Aff(n))},
				Expr:    ir.Ref(A, i)},
			&ir.Reduce{Label: "max", Op: ir.RedMax, Target: "mx",
				Indexes: []ir.Index{ir.Idx("i", ir.Aff(1), ir.Aff(n))},
				Expr:    ir.Ref(A, i)},
			&ir.Reduce{Label: "min", Op: ir.RedMin, Target: "mn",
				Indexes: []ir.Index{ir.Idx("i", ir.Aff(1), ir.Aff(n))},
				Expr:    ir.Ref(A, i)},
			&ir.ScalarAssign{Name: "half", RHS: ir.Over(ir.S("s"), ir.N(2))},
		},
	}
}

func TestReductions(t *testing.T) {
	const n = 100
	for _, opt := range []compiler.Level{compiler.OptNone, compiler.OptBulk} {
		res, err := Run(reduceProg(n), Options{Machine: config.Default(), Opt: opt})
		if err != nil {
			t.Fatal(err)
		}
		wantSum := float64(n*(n+1)) / 2
		if res.Scalars["s"] != wantSum {
			t.Fatalf("opt %v: sum = %v, want %v", opt, res.Scalars["s"], wantSum)
		}
		if res.Scalars["mx"] != float64(n) || res.Scalars["mn"] != 1 {
			t.Fatalf("opt %v: max/min = %v/%v", opt, res.Scalars["mx"], res.Scalars["mn"])
		}
		if res.Scalars["half"] != wantSum/2 {
			t.Fatalf("opt %v: scalar assign = %v", opt, res.Scalars["half"])
		}
	}
}

func TestExitIf(t *testing.T) {
	const n = 32
	A := &ir.Array{Name: "a", Extents: []int{n}, Dist: distribute.Spec{Kind: distribute.Block}}
	i := ir.V("i")
	prog := &ir.Program{
		Name:    "exittest",
		Params:  map[string]int{"n": n},
		Arrays:  []*ir.Array{A},
		Scalars: []string{"s", "count"},
		Body: []ir.Stmt{
			&ir.ParLoop{Label: "init",
				Indexes: []ir.Index{ir.Idx("i", ir.Aff(1), ir.Aff(n))},
				Body:    []*ir.Assign{{LHS: ir.Ref(A, i), RHS: ir.N(1)}}},
			&ir.SeqLoop{Var: "t", Lo: ir.Aff(1), Hi: ir.Aff(100), Body: []ir.Stmt{
				&ir.ScalarAssign{Name: "count", RHS: ir.Plus(ir.S("count"), ir.N(1))},
				&ir.ExitIf{L: ir.S("count"), Op: ir.Ge, R: ir.N(5)},
			}},
		},
	}
	res, err := Run(prog, Options{Machine: config.Default(), Opt: compiler.OptNone})
	if err != nil {
		t.Fatal(err)
	}
	if res.Scalars["count"] != 5 {
		t.Fatalf("loop ran %v times, want 5", res.Scalars["count"])
	}
}

// strideProg exercises red-black style strided parallel loops.
func TestStridedLoop(t *testing.T) {
	const n = 32
	A := &ir.Array{Name: "a", Extents: []int{n, n}, Dist: distribute.Spec{Kind: distribute.Block}}
	i, j := ir.V("i"), ir.V("j")
	prog := &ir.Program{
		Name:   "stride",
		Params: map[string]int{"n": n},
		Arrays: []*ir.Array{A},
		Body: []ir.Stmt{
			&ir.ParLoop{Label: "init",
				Indexes: []ir.Index{ir.Idx("i", ir.Aff(1), ir.Aff(n)), ir.Idx("j", ir.Aff(1), ir.Aff(n))},
				Body:    []*ir.Assign{{LHS: ir.Ref(A, i, j), RHS: ir.N(0)}}},
			&ir.ParLoop{Label: "odd",
				Indexes: []ir.Index{ir.Idx("i", ir.Aff(1), ir.Aff(n)), ir.IdxStep("j", ir.Aff(1), ir.Aff(n), 2)},
				Body:    []*ir.Assign{{LHS: ir.Ref(A, i, j), RHS: ir.N(1)}}},
		},
	}
	res, err := Run(prog, Options{Machine: config.Default(), Opt: compiler.OptNone})
	if err != nil {
		t.Fatal(err)
	}
	a := res.ArrayData("a")
	for j := 1; j <= n; j++ {
		want := float64(j % 2)
		for i := 1; i <= n; i++ {
			if a[(j-1)*n+(i-1)] != want {
				t.Fatalf("a(%d,%d) = %v, want %v", i, j, a[(j-1)*n+(i-1)], want)
			}
		}
	}
}

// luSmall checks the triangular, symbol-dependent broadcast pattern
// end to end against a sequential reference.
func TestLUDecomposition(t *testing.T) {
	const n = 24
	A := &ir.Array{Name: "a", Extents: []int{n, n}, Dist: distribute.Spec{Kind: distribute.Cyclic}}
	i, j, k := ir.V("i"), ir.V("j"), ir.V("k")
	prog := &ir.Program{
		Name:   "lu",
		Params: map[string]int{"n": n},
		Arrays: []*ir.Array{A},
		Body: []ir.Stmt{
			&ir.ParLoop{Label: "init",
				Indexes: []ir.Index{ir.Idx("i", ir.Aff(1), ir.Aff(n)), ir.Idx("j", ir.Aff(1), ir.Aff(n))},
				Body: []*ir.Assign{{LHS: ir.Ref(A, i, j),
					RHS: ir.Plus(ir.Call{Fn: "MIN", Args: []ir.Expr{ir.Iv("i"), ir.Iv("j")}},
						ir.Times(ir.N(0.01), ir.Plus(ir.Iv("i"), ir.Iv("j"))))}}},
			&ir.SeqLoop{Var: "k", Lo: ir.Aff(1), Hi: ir.Aff(n - 1), Body: []ir.Stmt{
				&ir.ParLoop{Label: "normalize",
					Indexes: []ir.Index{ir.Idx("i", k.AddC(1), ir.Aff(n))},
					Body: []*ir.Assign{{LHS: ir.Ref(A, i, k),
						RHS: ir.Over(ir.Ref(A, i, k), ir.Ref(A, k, k))}}},
				&ir.ParLoop{Label: "update",
					Indexes: []ir.Index{ir.Idx("i", k.AddC(1), ir.Aff(n)), ir.Idx("j", k.AddC(1), ir.Aff(n))},
					Body: []*ir.Assign{{LHS: ir.Ref(A, i, j),
						RHS: ir.Minus(ir.Ref(A, i, j), ir.Times(ir.Ref(A, i, k), ir.Ref(A, k, j)))}}},
			}},
		},
	}
	// Sequential reference.
	ref := make([]float64, n*n)
	at := func(i, j int) *float64 { return &ref[(j-1)*n+(i-1)] }
	for j := 1; j <= n; j++ {
		for i := 1; i <= n; i++ {
			*at(i, j) = math.Min(float64(i), float64(j)) + 0.01*(float64(i)+float64(j))
		}
	}
	for k := 1; k <= n-1; k++ {
		for i := k + 1; i <= n; i++ {
			*at(i, k) /= *at(k, k)
		}
		for j := k + 1; j <= n; j++ {
			for i := k + 1; i <= n; i++ {
				*at(i, j) -= *at(i, k) * *at(k, j)
			}
		}
	}
	for _, opt := range []compiler.Level{compiler.OptNone, compiler.OptBulk, compiler.OptRTElim} {
		res, err := Run(prog, Options{Machine: config.Default().WithNodes(4), Opt: opt})
		if err != nil {
			t.Fatalf("opt %v: %v", opt, err)
		}
		if d := maxAbsDiff(res.ArrayData("a"), ref); d > 1e-9 {
			t.Fatalf("opt %v: LU diff %g", opt, d)
		}
	}
}

func TestExitIfInnermostOnly(t *testing.T) {
	// ExitIf breaks only the innermost DO; the outer loop continues.
	const n = 16
	A := &ir.Array{Name: "a", Extents: []int{n}, Dist: distribute.Spec{Kind: distribute.Block}}
	i := ir.V("i")
	prog := &ir.Program{
		Name:    "nested",
		Params:  map[string]int{"n": n},
		Arrays:  []*ir.Array{A},
		Scalars: []string{"outer", "inner"},
		Body: []ir.Stmt{
			&ir.ParLoop{Label: "init",
				Indexes: []ir.Index{ir.Idx("i", ir.Aff(1), ir.Aff(n))},
				Body:    []*ir.Assign{{LHS: ir.Ref(A, i), RHS: ir.N(0)}}},
			&ir.SeqLoop{Var: "t", Lo: ir.Aff(1), Hi: ir.Aff(3), Body: []ir.Stmt{
				&ir.ScalarAssign{Name: "outer", RHS: ir.Plus(ir.S("outer"), ir.N(1))},
				&ir.SeqLoop{Var: "u", Lo: ir.Aff(1), Hi: ir.Aff(10), Body: []ir.Stmt{
					&ir.ScalarAssign{Name: "inner", RHS: ir.Plus(ir.S("inner"), ir.N(1))},
					&ir.ExitIf{L: ir.S("inner"), Op: ir.Ge, R: ir.N(2)},
				}},
			}},
		},
	}
	res, err := Run(prog, Options{Machine: config.Default().WithNodes(2)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Scalars["outer"] != 3 {
		t.Fatalf("outer loop ran %v times, want 3 (ExitIf must not break it)", res.Scalars["outer"])
	}
	// inner increments: first outer pass 2 (exit at 2), then the
	// condition stays true so later passes exit after one increment.
	if res.Scalars["inner"] != 4 {
		t.Fatalf("inner total = %v, want 4", res.Scalars["inner"])
	}
}

func TestSeqLoopVarRestoration(t *testing.T) {
	// A DO variable used as a symbol in bounds must be restored after
	// nesting (k reused by sibling loops).
	const n = 12
	A := &ir.Array{Name: "a", Extents: []int{n}, Dist: distribute.Spec{Kind: distribute.Block}}
	i, k := ir.V("i"), ir.V("k")
	body := func() *ir.ParLoop {
		return &ir.ParLoop{Label: "w",
			Indexes: []ir.Index{ir.Idx("i", k, k)}, // single column k
			Body:    []*ir.Assign{{LHS: ir.Ref(A, i), RHS: ir.Plus(ir.Ref(A, i), ir.N(1))}}}
	}
	prog := &ir.Program{
		Name:   "seqvar",
		Params: map[string]int{"n": n},
		Arrays: []*ir.Array{A},
		Body: []ir.Stmt{
			&ir.ParLoop{Label: "init",
				Indexes: []ir.Index{ir.Idx("i", ir.Aff(1), ir.Aff(n))},
				Body:    []*ir.Assign{{LHS: ir.Ref(A, i), RHS: ir.N(0)}}},
			&ir.SeqLoop{Var: "k", Lo: ir.Aff(1), Hi: ir.Aff(n), Body: []ir.Stmt{body()}},
			&ir.SeqLoop{Var: "k", Lo: ir.Aff(2), Hi: ir.Aff(4), Body: []ir.Stmt{body()}},
		},
	}
	res, err := Run(prog, Options{Machine: config.Default().WithNodes(4), Opt: compiler.OptBulk})
	if err != nil {
		t.Fatal(err)
	}
	a := res.ArrayData("a")
	for idx := 0; idx < n; idx++ {
		want := 1.0
		if idx+1 >= 2 && idx+1 <= 4 {
			want = 2.0
		}
		if a[idx] != want {
			t.Fatalf("a[%d] = %v, want %v", idx+1, a[idx], want)
		}
	}
}
