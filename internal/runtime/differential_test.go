package runtime

import (
	"fmt"
	"math/rand"
	"testing"

	"hpfdsm/internal/compiler"
	"hpfdsm/internal/config"
	"hpfdsm/internal/distribute"
	"hpfdsm/internal/ir"
)

// randProgram generates a random but well-formed multi-array stencil
// program: 2-4 arrays, 2-4 loops per time step with random offsets,
// occasionally a reduction, random distributions. One in four programs
// is three-dimensional (plane stencils, as in pde).
func randProgram(rng *rand.Rand) *ir.Program {
	if rng.Intn(4) == 0 {
		return randProgram3D(rng)
	}
	return randProgram2D(rng)
}

// randProgram3D builds a pde-shaped random program: 3-D arrays with
// the last dimension distributed, plane-shifted reads.
func randProgram3D(rng *rand.Rand) *ir.Program {
	n := 10 + 2*rng.Intn(6) // 10..20 per dimension
	iters := 1 + rng.Intn(2)
	kinds := []distribute.Kind{distribute.Block, distribute.Block, distribute.Cyclic}
	A := &ir.Array{Name: "a0", Extents: []int{n, n, n}, Dist: distribute.Spec{Kind: kinds[rng.Intn(3)]}}
	B := &ir.Array{Name: "a1", Extents: []int{n, n, n}, Dist: distribute.Spec{Kind: kinds[rng.Intn(3)]}}
	i, j, k := ir.V("i"), ir.V("j"), ir.V("k")
	init := &ir.ParLoop{
		Label: "init",
		Indexes: []ir.Index{
			ir.Idx("i", ir.Aff(1), ir.Aff(n)), ir.Idx("j", ir.Aff(1), ir.Aff(n)), ir.Idx("k", ir.Aff(1), ir.Aff(n))},
		Body: []*ir.Assign{
			{LHS: ir.Ref(A, i, j, k), RHS: ir.Plus(ir.Iv("i"), ir.Plus(ir.Times(ir.N(2), ir.Iv("j")), ir.Iv("k")))},
			{LHS: ir.Ref(B, i, j, k), RHS: ir.N(0)},
		},
	}
	dk := rng.Intn(3) - 1
	di := rng.Intn(3) - 1
	lo := 1 + maxAbs(dk, di)
	hi := n - maxAbs(dk, di)
	sweep := &ir.ParLoop{
		Label: "sweep3d",
		Indexes: []ir.Index{
			ir.Idx("i", ir.Aff(lo), ir.Aff(hi)), ir.Idx("j", ir.Aff(lo), ir.Aff(hi)), ir.Idx("k", ir.Aff(lo), ir.Aff(hi))},
		Body: []*ir.Assign{{
			LHS: ir.Ref(B, i, j, k),
			RHS: ir.Plus(
				ir.Times(ir.N(0.5), ir.Ref(A, i.AddC(di), j, k.AddC(dk))),
				ir.Times(ir.N(0.25), ir.Ref(A, i, j, k))),
		}},
	}
	back := &ir.ParLoop{
		Label: "back3d",
		Indexes: []ir.Index{
			ir.Idx("i", ir.Aff(lo), ir.Aff(hi)), ir.Idx("j", ir.Aff(lo), ir.Aff(hi)), ir.Idx("k", ir.Aff(lo), ir.Aff(hi))},
		Body: []*ir.Assign{{LHS: ir.Ref(A, i, j, k), RHS: ir.Ref(B, i, j, k)}},
	}
	return &ir.Program{
		Name:   "rand3d",
		Params: map[string]int{"n": n},
		Arrays: []*ir.Array{A, B},
		Body: []ir.Stmt{
			init,
			&ir.StartTimer{},
			&ir.SeqLoop{Var: "t", Lo: ir.Aff(1), Hi: ir.Aff(iters), Body: []ir.Stmt{sweep, back}},
		},
	}
}

func randProgram2D(rng *rand.Rand) *ir.Program {
	n := 24 + 8*rng.Intn(6) // 24..64
	iters := 1 + rng.Intn(3)
	nArr := 2 + rng.Intn(3)
	kinds := []distribute.Kind{distribute.Block, distribute.Block, distribute.Cyclic}

	var arrays []*ir.Array
	for a := 0; a < nArr; a++ {
		arrays = append(arrays, &ir.Array{
			Name:    fmt.Sprintf("a%d", a),
			Extents: []int{n, n},
			Dist:    distribute.Spec{Kind: kinds[rng.Intn(len(kinds))]},
		})
	}
	i, j := ir.V("i"), ir.V("j")

	// Init: every array gets a distinct affine fill.
	var initBody []*ir.Assign
	for a, arr := range arrays {
		initBody = append(initBody, &ir.Assign{
			LHS: ir.Ref(arr, i, j),
			RHS: ir.Plus(ir.Times(ir.N(float64(a+1)), ir.Iv("i")), ir.Iv("j")),
		})
	}
	init := &ir.ParLoop{
		Label:   "init",
		Indexes: []ir.Index{ir.Idx("i", ir.Aff(1), ir.Aff(n)), ir.Idx("j", ir.Aff(1), ir.Aff(n))},
		Body:    initBody,
	}

	// Time step: loops writing one array from shifted reads of others.
	var step []ir.Stmt
	nLoops := 2 + rng.Intn(3)
	for l := 0; l < nLoops; l++ {
		dst := arrays[rng.Intn(nArr)]
		src1 := arrays[rng.Intn(nArr)]
		src2 := arrays[rng.Intn(nArr)]
		// Keep FORALL semantics safe: sources must differ from dst, or
		// use identical subscripts.
		d1 := rng.Intn(5) - 2
		d2 := rng.Intn(3) - 1
		if src1 == dst {
			d1 = 0
		}
		if src2 == dst {
			d2 = 0
		}
		lo := 1 + maxAbs(d1, d2)
		hi := n - maxAbs(d1, d2)
		body := []*ir.Assign{{
			LHS: ir.Ref(dst, i, j),
			RHS: ir.Plus(
				ir.Times(ir.N(0.5), ir.Ref(src1, i, j.AddC(d1))),
				ir.Times(ir.N(0.25), ir.Ref(src2, i.AddC(d2), j))),
		}}
		// Occasionally a second, misaligned assignment: a non-owner
		// write exercising the flush path. Its target must not be read
		// or written elsewhere in this loop (FORALL hazard) — use a
		// dedicated array and a shifted column (keeping j+1 in range).
		if rng.Intn(3) == 0 && nArr >= 3 {
			w := arrays[nArr-1]
			if w != dst && w != src1 && w != src2 {
				if hi > n-1 {
					hi = n - 1
				}
				body = append(body, &ir.Assign{
					LHS: ir.Ref(w, i, j.AddC(1)),
					RHS: ir.Times(ir.N(0.125), ir.Ref(dst, i, j)),
				})
			}
		}
		ixJ := ir.Idx("j", ir.Aff(lo), ir.Aff(hi))
		if rng.Intn(4) == 0 {
			ixJ = ir.IdxStep("j", ir.Aff(lo), ir.Aff(hi), 2) // red-black style
		}
		step = append(step, &ir.ParLoop{
			Label:   fmt.Sprintf("loop%d", l),
			Indexes: []ir.Index{ir.Idx("i", ir.Aff(lo), ir.Aff(hi)), ixJ},
			Body:    body,
		})
	}
	scalars := []string{}
	if rng.Intn(2) == 0 {
		scalars = append(scalars, "s")
		step = append(step, &ir.Reduce{
			Label: "red", Op: ir.RedSum, Target: "s",
			Indexes: []ir.Index{ir.Idx("i", ir.Aff(1), ir.Aff(n)), ir.Idx("j", ir.Aff(1), ir.Aff(n))},
			Expr:    ir.Ref(arrays[0], i, j),
		})
	}

	return &ir.Program{
		Name:    "rand",
		Params:  map[string]int{"n": n},
		Arrays:  arrays,
		Scalars: scalars,
		Body: []ir.Stmt{
			init,
			&ir.StartTimer{},
			&ir.SeqLoop{Var: "t", Lo: ir.Aff(1), Hi: ir.Aff(iters), Body: step},
		},
	}
}

func maxAbs(a, b int) int {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	if b > a {
		return b
	}
	return a
}

// TestDifferentialRandomPrograms runs random programs on the optimized
// 8-node DSM (and the message-passing backend) and compares every
// array against a 1-node run of the same program — end-to-end
// differential validation of analysis, schedules, protocol, and
// executors on shapes no one hand-picked.
func TestDifferentialRandomPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(20260705))
	trials := 25
	if testing.Short() {
		trials = 6
	}
	for trial := 0; trial < trials; trial++ {
		prog := randProgram(rng)
		ref, err := Run(prog, Options{Machine: config.Default().WithNodes(1), Opt: compiler.OptNone})
		if err != nil {
			t.Fatalf("trial %d reference: %v", trial, err)
		}
		for _, variant := range []Options{
			{Machine: config.Default(), Opt: compiler.OptRTElim},
			{Machine: config.Default().WithNodes(5), Opt: compiler.OptBulk},
			{Machine: config.Default().WithCPUMode(config.SingleCPU), Opt: compiler.OptPRE},
			{Machine: config.Default(), Backend: MessagePassing},
			{Machine: config.Default().WithNodes(3), Opt: compiler.OptRTElim, EdgePrefetch: true},
		} {
			// Re-generate the identical program for an independent run
			// (a Program instance binds to one run's layouts).
			progV := regen(t, trial)
			res, err := Run(progV, variant)
			if err != nil {
				t.Fatalf("trial %d variant %+v: %v", trial, variant, err)
			}
			for _, arr := range prog.Arrays {
				want := ref.ArrayData(arr.Name)
				got := res.ArrayData(arr.Name)
				for k := range want {
					if diff := abs(got[k] - want[k]); diff > 1e-9 {
						t.Fatalf("trial %d variant %+v: %s[%d] = %v, want %v",
							trial, variant, arr.Name, k, got[k], want[k])
					}
				}
			}
		}
	}
}

// regen rebuilds the identical random program for a trial by replaying
// the deterministic generator from the start.
func regen(t *testing.T, trial int) *ir.Program {
	t.Helper()
	// Deterministically re-derive: replay the generator from the start
	// up to this trial.
	rng := rand.New(rand.NewSource(20260705))
	var prog *ir.Program
	for i := 0; i <= trial; i++ {
		prog = randProgram(rng)
	}
	return prog
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
