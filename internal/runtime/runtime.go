// Package runtime executes compiled data-parallel programs on the
// simulated fine-grain DSM cluster. It is the shared-memory back end:
// every array lives in the coherent global segment, loads and stores go
// through fine-grain access checks, and — at optimization levels above
// OptNone — the runtime brackets each parallel loop with the
// compiler-directed protocol calls of the paper's Figure 2.
package runtime

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"hpfdsm/internal/analysis"
	"hpfdsm/internal/checkpoint"
	"hpfdsm/internal/compiler"
	"hpfdsm/internal/config"
	"hpfdsm/internal/ir"
	"hpfdsm/internal/memory"
	"hpfdsm/internal/network"
	"hpfdsm/internal/protocol"
	"hpfdsm/internal/sections"
	"hpfdsm/internal/sim"
	"hpfdsm/internal/stats"
	"hpfdsm/internal/tempest"
	"hpfdsm/internal/trace"
)

// Options configures one run.
type Options struct {
	Machine config.Machine
	Opt     compiler.Level
	Backend Backend
	// Profile enables per-loop time/miss profiling (Result.Profile).
	Profile bool
	// EdgePrefetch issues advisory prefetches for the boundary blocks
	// the block-alignment shrink leaves to the default protocol (the
	// paper's suggested extension for small data sets such as grav).
	EdgePrefetch bool
	// InspectIndirect runs a light-weight inspector before loops with
	// indirect references: it scans the node's own iterations
	// evaluating just the indirect subscripts and prefetches the
	// scattered target blocks, overlapping their fetch latency with
	// the loop's setup — the inspector/executor idea applied to the
	// paper's future-work benchmark class.
	InspectIndirect bool
	// Check audits the coherence invariants (directory state, block
	// tags, data agreement) at every barrier and reduction instant, in
	// addition to the always-on post-run quiescent audit. Shared-memory
	// backend only.
	Check bool
	// Verified is the static verifier's report from an hpfrun -verify
	// pre-flight (may be nil). When set, invariant-audit diagnostics
	// cite the contract rules the verifier proved for the loop whose
	// schedule governs the failing block.
	Verified *analysis.Report
	// Trace, when non-nil, records the run's causal protocol-event
	// trace: wire spans and flow links, handler executions, miss
	// stalls, loop/barrier regions, and the per-block heat map. The
	// runtime installs the kind-name and block-provenance hooks and
	// registers every array's block range before the simulation starts.
	Trace *trace.Tracer
	// Checkpoint enables barrier-consistent checkpoint capture even
	// when no crashes are configured (for measuring the overhead with
	// the machinery compiled in); configuring crash injection enables
	// it implicitly. Shared-memory backend only.
	Checkpoint bool
	// CkptDir, when non-empty, persists the latest checkpoint blob to
	// <dir>/<program>.ckpt after each capture — a diagnostic artifact;
	// recovery restores from the in-memory copy.
	CkptDir string
	// Partitions > 1 runs the simulation itself in parallel:
	// conservative PDES with the nodes split across that many OS
	// threads, advancing in lockstep windows derived from the minimum
	// cross-partition message latency (see sim.Shards). Statistics are
	// bit-identical to the sequential event loop. 0 or 1 selects the
	// sequential loop (zero overhead); values above the node count are
	// clamped. Incompatible with fault injection, checkpointing,
	// barrier-instant checks, tracing, profiling, and the
	// message-passing backend — those are rejected with an error rather
	// than silently diverging.
	Partitions int
}

// Result is the outcome of one simulated run.
type Result struct {
	Prog    *ir.Program
	Stats   *stats.Cluster
	Elapsed sim.Time           // simulated execution time
	Scalars map[string]float64 // node 0's final scalar values
	Profile *trace.Profile     // per-loop profile (nil unless requested)
	// BarrierChecks is how many barrier-instant coherence audits ran
	// (zero unless Options.Check), summed across recovery attempts.
	BarrierChecks int64

	// Crash-recovery outcome (all zero unless crash injection or
	// Options.Checkpoint was active).
	CrashesDetected  int64    // failure-detector verdicts that aborted an attempt
	Recoveries       int64    // restarts from a checkpoint
	RecoveryTime     sim.Time // simulated time modeled for restore pauses
	CheckpointsTaken int64    // quiescent captures (incl. the initial state)
	CheckpointBytes  int64    // total encoded bytes across captures

	// PDES engine census (zero unless Options.Partitions > 1): window
	// executions summed over partitions, and barrier releases actually
	// paid (inline stretches and single-core inline mode cost none).
	PDESWindows  uint64
	PDESHandoffs uint64

	cluster  *tempest.Cluster
	analysis *compiler.Analysis
	layouts  map[*ir.Array]sections.Layout
	proto    *protocol.Proto
	mp       bool
}

// Analysis exposes the compiled communication rules (for inspection
// tools and tests).
func (r *Result) Analysis() *compiler.Analysis { return r.analysis }

// ReduceJournal returns every completed reduction's combined value in
// completion order. Reductions are where a topology change could leak
// into the computation (a different combination order shifts low
// mantissa bits), so the journal is the sim-visible witness that the
// combining tree reproduces the flat master's canonical ascending fold
// bit-for-bit.
func (r *Result) ReduceJournal() []float64 { return r.cluster.ReduceJournal }

// ArrayData assembles an array's final contents (in address order,
// i.e. column-major flattened). On the shared-memory backend each word
// is read coherently through the directory; on the message-passing
// backend the owner's private copy is authoritative.
func (r *Result) ArrayData(name string) []float64 {
	arr := r.Prog.ArrayByName(name)
	if arr == nil {
		panic(fmt.Sprintf("runtime: no array %q", name))
	}
	lay := r.layouts[arr]
	d := r.analysis.Dist(arr)
	out := make([]float64, arr.Elems())
	colElems := arr.Elems() / arr.LastExtent()
	for j := 1; j <= arr.LastExtent(); j++ {
		base := lay.Base + (j-1)*colElems*8
		if r.mp {
			owner := r.cluster.Nodes[d.Owner(j)]
			for k := 0; k < colElems; k++ {
				out[(j-1)*colElems+k] = owner.Mem.ReadF64(base + 8*k)
			}
			continue
		}
		for k := 0; k < colElems; k++ {
			out[(j-1)*colElems+k] = r.proto.CoherentRead(base + 8*k)
		}
	}
	return out
}

// crashError aborts a simulation attempt the moment the failure
// detector declares a node dead; the recovery loop in Run catches it
// and restarts the machine from the last barrier-consistent checkpoint.
type crashError struct {
	node   int
	reason string
	at     sim.Time
}

func (e *crashError) Error() string {
	return fmt.Sprintf("node %d declared dead at t=%v: %s", e.node, e.at, e.reason)
}

// recovery carries the crash/checkpoint state that survives across
// simulation attempts: the injection plan (fired flags persist so a
// crash is injected exactly once per run), the latest encoded
// checkpoint, and the accumulated recovery accounting.
type recovery struct {
	enabled bool
	specs   []config.CrashSpec
	fired   []bool
	blob    []byte // latest complete checkpoint, encoded
	dir     string
	prog    string

	taken, bytes int64
	detected     int64
	lostTime     sim.Time
	checksBefore int64 // BarrierChecks accumulated by aborted attempts
}

// keep installs a freshly captured checkpoint as the recovery point.
func (rec *recovery) keep(blob []byte) {
	rec.blob = blob
	rec.taken++
	rec.bytes += int64(len(blob))
	if rec.dir != "" {
		// Best-effort diagnostic artifact; recovery never reads it back.
		if os.MkdirAll(rec.dir, 0o755) == nil {
			_ = os.WriteFile(filepath.Join(rec.dir, rec.prog+".ckpt"), blob, 0o644)
		}
	}
}

// Run executes prog on a simulated cluster. With crash injection (or
// Options.Checkpoint) active, the protocol state is snapshotted at
// every quiescent synchronization epoch; a detected crash-stop failure
// aborts the attempt, and the run restarts on a fresh cluster restored
// from the last checkpoint — survivors roll back, a replacement node
// adopts the victim's state, and the executors ghost-walk the program
// back to the checkpoint epoch before going live.
func Run(prog *ir.Program, opt Options) (*Result, error) {
	mc := opt.Machine
	if err := mc.Validate(); err != nil {
		return nil, err
	}
	if opt.Backend == MessagePassing && ir.HasIndirect(prog) {
		return nil, fmt.Errorf("runtime: program %s contains indirect array subscripts and is not amenable to message passing; use the shared-memory backend", prog.Name)
	}
	if opt.Backend == MessagePassing && len(mc.Faults.Crashes) > 0 {
		return nil, fmt.Errorf("runtime: crash injection requires the shared-memory backend (program %s)", prog.Name)
	}
	if mc.Topology == config.TreeTopo {
		switch {
		case len(mc.Faults.Crashes) > 0:
			return nil, fmt.Errorf("runtime: crash injection is incompatible with the tree topology — a barrier cannot route around a dead interior node; rerun with -topo flat (program %s)", prog.Name)
		case opt.Checkpoint:
			return nil, fmt.Errorf("runtime: checkpointing is incompatible with the tree topology — restore does not rebase the per-node combining-tree generations; rerun with -topo flat (program %s)", prog.Name)
		}
	}
	if opt.Partitions > mc.Nodes {
		opt.Partitions = mc.Nodes
	}
	if opt.Partitions > 1 {
		// Modes whose machinery is inherently cross-partition are
		// rejected loudly: a run that silently diverged from the
		// sequential loop would defeat the bit-identity contract.
		switch {
		case opt.Backend == MessagePassing:
			return nil, fmt.Errorf("runtime: pdes (Partitions=%d) supports the shared-memory backend only; rerun without -pdes (program %s)", opt.Partitions, prog.Name)
		case mc.Faults.Active():
			return nil, fmt.Errorf("runtime: pdes (Partitions=%d) is incompatible with fault injection — the reliable-delivery timers and crash recovery are not partitioned; rerun without -pdes (program %s)", opt.Partitions, prog.Name)
		case opt.Checkpoint:
			return nil, fmt.Errorf("runtime: pdes (Partitions=%d) is incompatible with checkpointing — the quiescence predicate needs the single-threaded inflight counter; rerun without -pdes (program %s)", opt.Partitions, prog.Name)
		case opt.Check:
			return nil, fmt.Errorf("runtime: pdes (Partitions=%d) is incompatible with barrier-instant coherence checks — the audit reads every node's state from one thread mid-run; rerun without -pdes (program %s)", opt.Partitions, prog.Name)
		case opt.Trace != nil:
			return nil, fmt.Errorf("runtime: pdes (Partitions=%d) is incompatible with tracing — the tracer's buffers are single-threaded; rerun without -pdes (program %s)", opt.Partitions, prog.Name)
		case opt.Profile:
			return nil, fmt.Errorf("runtime: pdes (Partitions=%d) is incompatible with per-loop profiling — the profile accumulator is single-threaded; rerun without -pdes, or use the observer-only -cpuprofile/-memprofile, which work under -pdes (program %s)", opt.Partitions, prog.Name)
		case mc.MsgTime(0) <= 0:
			return nil, fmt.Errorf("runtime: pdes needs a positive minimum message latency for its lookahead window; this machine has MsgTime(0)=%d (program %s)", mc.MsgTime(0), prog.Name)
		}
	}
	rec := &recovery{
		enabled: opt.Backend == SharedMemory && (opt.Checkpoint || len(mc.Faults.Crashes) > 0),
		specs:   mc.Faults.Crashes,
		fired:   make([]bool, len(mc.Faults.Crashes)),
		dir:     opt.CkptDir,
		prog:    prog.Name,
	}
	startAt := sim.Time(0)
	for attempt := 0; ; attempt++ {
		res, crash, err := runAttempt(prog, opt, rec, startAt, attempt)
		if err != nil {
			return nil, err
		}
		if crash == nil {
			res.CrashesDetected = rec.detected
			res.Recoveries = rec.detected
			res.RecoveryTime = rec.lostTime
			res.CheckpointsTaken = rec.taken
			res.CheckpointBytes = rec.bytes
			return res, nil
		}
		if attempt >= len(rec.specs) {
			// Each configured crash fires once, so aborted attempts can
			// never outnumber the specs; this is a detector bug.
			return nil, fmt.Errorf("runtime: recovery attempt %d aborted but only %d crash(es) were configured (program %s): %v",
				attempt, len(rec.specs), prog.Name, crash)
		}
		delay := mc.Faults.EffectiveRecoveryDelay()
		rec.detected++
		rec.lostTime += delay
		startAt = crash.at + delay
	}
}

// runAttempt builds a fresh cluster and runs the program once. A crash
// detection aborts the attempt and is returned separately from real
// errors so the caller can recover.
func runAttempt(prog *ir.Program, opt Options, rec *recovery, startAt sim.Time, attempt int) (*Result, *crashError, error) {
	mc := opt.Machine
	sp := memory.NewSpace(mc)
	layouts := make(map[*ir.Array]sections.Layout)
	for _, arr := range prog.Arrays {
		base := sp.Alloc(arr.Name, arr.Elems()*8)
		layouts[arr] = sections.Layout{Base: base, Extents: arr.Extents, ElemSize: 8}
	}
	var (
		env     *sim.Env
		shards  *sim.Shards
		cluster *tempest.Cluster
	)
	if opt.Partitions > 1 {
		// Conservative PDES: one Env per partition, nodes split in
		// contiguous runs (node i -> partition i*P/N), cross-partition
		// sends routed through the window scheduler's mailbox. The
		// lookahead is the machine's minimum message latency: header
		// serialization plus the wire latency, the floor of any
		// cross-node delivery delay.
		parts := opt.Partitions
		penvs := make([]*sim.Env, parts)
		for i := range penvs {
			penvs[i] = sim.NewEnvAt(startAt)
		}
		part := make([]int, mc.Nodes)
		nodeEnvs := make([]*sim.Env, mc.Nodes)
		for i := range part {
			part[i] = i * parts / mc.Nodes
			nodeEnvs[i] = penvs[part[i]]
		}
		shards = sim.NewShards(penvs, mc.MsgTime(0))
		post := func(src, dst int, sent, arrival sim.Time, seq uint32, fn func(any), arg any) {
			shards.Post(part[src], part[dst], arrival, sent, src, seq, fn, arg)
		}
		cluster = tempest.NewPartitionedCluster(nodeEnvs, sp, post)
		env = penvs[0]
	} else {
		env = sim.NewEnvAt(startAt)
		cluster = tempest.NewCluster(env, sp)
	}
	proto := protocol.Attach(cluster)
	// The NIC-level coalescing scheduler rides on eager release
	// consistency (its buffered legs are exactly the latency-tolerant
	// ones) and only pays off once the compiler emits phased bulk
	// traffic; below OptBulk, and on the message-passing backend, it
	// never engages.
	if opt.Opt >= compiler.OptBulk && opt.Backend == SharedMemory &&
		!mc.NoCoalesce && mc.Consistency == config.ReleaseConsistent {
		proto.EnableAggregation(mc.EffectiveAggDelay())
	}
	an, err := compiler.Cached(prog, mc.Nodes, layouts, mc.BlockSize)
	if err != nil {
		return nil, nil, err
	}

	res := &Result{
		Prog:     prog,
		Stats:    cluster.Stats,
		Scalars:  map[string]float64{},
		cluster:  cluster,
		analysis: an,
		layouts:  layouts,
		proto:    proto,
		mp:       opt.Backend == MessagePassing,
	}

	execs := make([]*exec, mc.Nodes)
	var prof *trace.Profile
	if opt.Profile {
		prof = trace.NewProfile()
		res.Profile = prof
	}
	// Block-level provenance for audit diagnostics: schedules are
	// recorded as execs instantiate them; the hook stays cheap (a map
	// lookup) and is only consulted when an audit fails.
	prov := analysis.NewProvIndex(an)
	prov.Report = opt.Verified
	proto.BlockInfo = prov.Describe
	if tr := opt.Trace; tr != nil {
		tr.KindName = func(k uint8) string { return protocol.MsgKindName(network.Kind(k)) }
		tr.BlockInfo = prov.Describe
		if attempt == 0 {
			// Heat-map array ranges registered once; recovery attempts
			// reuse the same address layout.
			for _, arr := range prog.Arrays {
				lay := layouts[arr]
				nb := (arr.Elems()*8 + mc.BlockSize - 1) / mc.BlockSize
				tr.Heat.AddArray(arr.Name, lay.Base/mc.BlockSize, nb)
			}
		}
		cluster.SetTracer(tr)
	}
	for i := 0; i < mc.Nodes; i++ {
		execs[i] = newExec(prog, an, layouts, cluster, cluster.Nodes[i], proto.Node(i), opt.Opt)
		execs[i].prof = prof
		execs[i].edgePf = opt.EdgePrefetch
		execs[i].inspect = opt.InspectIndirect
		execs[i].prov = prov
	}
	if opt.Backend == MessagePassing {
		installMP(execs)
	}
	if opt.Check && opt.Backend == SharedMemory {
		cluster.BarrierCheck = proto.CheckAtBarrier
	}
	if mc.Faults.Active() {
		env.SetWatchdog(mc.Faults.EffectiveWatchdogHorizon(), func() string {
			return watchdogDump(cluster, proto)
		})
	}
	if shards != nil {
		// Horizon 0 leaves the per-partition stall watchdog disarmed
		// (matching the sequential no-faults default) but installs the
		// node-state dump: a cross-partition deadlock error carries
		// every node's blocked state, not just the reporting
		// partition's.
		shards.SetWatchdog(0, func() string {
			return watchdogDump(cluster, proto)
		})
	}

	if rec.enabled {
		if attempt == 0 {
			// The initial state is itself a consistent checkpoint: a
			// crash before the first quiescent epoch restarts the whole
			// program (ghosting is disabled for epoch 0).
			rec.keep(checkpoint.Encode(proto.Capture()))
		} else {
			snap, err := checkpoint.Decode(rec.blob)
			if err != nil {
				return nil, nil, fmt.Errorf("runtime: corrupt checkpoint: %w (program %s)", err, prog.Name)
			}
			if err := proto.Restore(snap); err != nil {
				return nil, nil, fmt.Errorf("runtime: %w (program %s)", err, prog.Name)
			}
			for _, e := range execs {
				e.setResume(snap.Epoch, snap.Journal)
			}
			if tr := opt.Trace; tr != nil {
				tr.Instant(0, trace.LaneCompute, "recovery:restore", "crash", env.Now(),
					trace.I64("epoch", snap.Epoch), trace.Int("attempt", attempt))
			}
		}
		// Capture at quiescent epochs, then inject any epoch-triggered
		// crash due now (in that order: a crash at epoch E must not
		// lose E's checkpoint, which the recovery restores to).
		cluster.OnEpoch = func(epoch int64) {
			if proto.Quiescent() {
				rec.keep(checkpoint.Encode(proto.Capture()))
			}
			for i, cs := range rec.specs {
				if !rec.fired[i] && cs.Epoch > 0 && cs.Epoch == epoch {
					rec.fired[i] = true
					cluster.Crash(cs.Node)
					if tr := opt.Trace; tr != nil {
						tr.Instant(cs.Node, trace.LaneCompute, "crash:inject", "crash", env.Now(),
							trace.I64("epoch", epoch))
					}
				}
			}
		}
		for i, cs := range rec.specs {
			if cs.Epoch > 0 || rec.fired[i] {
				continue
			}
			i, cs := i, cs
			at := cs.At
			if at < startAt {
				// The scheduled instant fell inside a previous attempt's
				// lost work or the recovery pause; fire immediately.
				at = startAt
			}
			env.Schedule(at, func() {
				if rec.fired[i] {
					return
				}
				rec.fired[i] = true
				cluster.Crash(cs.Node)
				if tr := opt.Trace; tr != nil {
					tr.Instant(cs.Node, trace.LaneCompute, "crash:inject", "crash", env.Now())
				}
			})
		}
		if len(rec.specs) > 0 {
			cluster.Net.OnDeath = func(node int, reason string) {
				if tr := opt.Trace; tr != nil {
					tr.Instant(node, trace.LaneCompute, "crash:detected", "crash", env.Now())
				}
				env.Abort(&crashError{node: node, reason: reason, at: env.Now()})
			}
		}
	}

	for i := 0; i < mc.Nodes; i++ {
		e := execs[i]
		// Each node's compute process lives on the node's own Env — its
		// partition Env under PDES, the single Env otherwise.
		cluster.Nodes[i].Env.Spawn(fmt.Sprintf("node%d", i), func(p *sim.Proc) { e.run(p) })
	}
	if shards != nil {
		err := shards.Run()
		shards.Shutdown()
		if err != nil {
			return nil, nil, fmt.Errorf("runtime: %w (program %s)", err, prog.Name)
		}
	} else if err := env.Run(); err != nil {
		var ce *crashError
		if errors.As(err, &ce) {
			// Tear down the aborted attempt completely (every parked
			// goroutine unwinds) before the caller rebuilds.
			env.Shutdown()
			rec.checksBefore += cluster.BarrierChecks()
			if cerr := cluster.CheckErr(); cerr != nil {
				return nil, nil, fmt.Errorf("runtime: %w (program %s)", cerr, prog.Name)
			}
			return nil, ce, nil
		}
		return nil, nil, fmt.Errorf("runtime: %w (program %s)", err, prog.Name)
	}
	if err := cluster.CheckErr(); err != nil {
		return nil, nil, fmt.Errorf("runtime: %w (program %s)", err, prog.Name)
	}
	res.BarrierChecks = cluster.BarrierChecks() + rec.checksBefore
	if opt.Backend == SharedMemory {
		// Every run is self-auditing: the quiescent coherence state must
		// satisfy the protocol invariants.
		if err := proto.CheckInvariants(); err != nil {
			return nil, nil, fmt.Errorf("runtime: post-run invariant violation: %w (program %s)", err, prog.Name)
		}
	}
	if shards != nil {
		res.Elapsed = shards.Now() - cluster.TimerStart
		res.PDESWindows = shards.Windows()
		res.PDESHandoffs = shards.Handoffs()
	} else {
		res.Elapsed = env.Now() - cluster.TimerStart
	}
	if tr := opt.Trace; tr != nil {
		// Close the record with the simulator's event-dispatch census
		// (always-on counters in sim.Env), visible in the trace viewer.
		ev := env.Events()
		tr.Instant(0, trace.LaneCompute, "sim.events", "meta", env.Now(),
			trace.I64("dispatches", ev.Dispatches), trace.I64("arg_events", ev.ArgEvents),
			trace.I64("fn_events", ev.FnEvents), trace.I64("total", ev.Total()))
	}
	// Map-to-map copy with distinct keys: order-free. The scalars were
	// computed deterministically; only their transfer iterates a map.
	//simlint:commutative
	for k, v := range execs[0].scalars {
		res.Scalars[k] = v
	}
	return res, nil, nil
}

// watchdogDump assembles the stall diagnostic: each node's compute
// process state and outstanding transactions, plus the protocol's
// in-flight work and the reliable-delivery channel state. Runs in
// scheduler context when the sim watchdog trips.
func watchdogDump(cluster *tempest.Cluster, proto *protocol.Proto) string {
	var b strings.Builder
	for _, n := range cluster.Nodes {
		state := "running"
		if p := n.Proc(); p != nil {
			switch {
			case p.Done():
				state = "finished"
			case p.Waiting():
				state = "blocked"
			}
		}
		fmt.Fprintf(&b, "  node %d: compute %s, %d pending transaction(s), %d handler(s) queued, misses r=%d w=%d up=%d, msgs sent=%d recv=%d, retransq=%d",
			n.ID, state, n.Pending(), n.HandlersQueued(), n.St.ReadMisses, n.St.WriteMisses, n.St.UpgradeMisses, n.St.MsgsSent, n.St.MsgsRecv,
			cluster.Net.RetransQueueDepth(n.ID))
		if co := cluster.Net.CoalescerOf(n.ID); co != nil {
			segs, bytes := co.Occupancy()
			fmt.Fprintf(&b, ", coalescer %d seg(s)/%dB buffered", segs, bytes)
		}
		b.WriteByte('\n')
	}
	if d := proto.DumpOutstanding(); d != "" {
		b.WriteString("protocol outstanding work:\n")
		b.WriteString(d)
	}
	if d := cluster.Net.DumpChannels(); d != "" {
		b.WriteString("reliable-delivery channels:\n")
		b.WriteString(d)
	}
	return strings.TrimRight(b.String(), "\n")
}
