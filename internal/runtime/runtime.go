// Package runtime executes compiled data-parallel programs on the
// simulated fine-grain DSM cluster. It is the shared-memory back end:
// every array lives in the coherent global segment, loads and stores go
// through fine-grain access checks, and — at optimization levels above
// OptNone — the runtime brackets each parallel loop with the
// compiler-directed protocol calls of the paper's Figure 2.
package runtime

import (
	"fmt"
	"strings"

	"hpfdsm/internal/analysis"
	"hpfdsm/internal/compiler"
	"hpfdsm/internal/config"
	"hpfdsm/internal/ir"
	"hpfdsm/internal/memory"
	"hpfdsm/internal/network"
	"hpfdsm/internal/protocol"
	"hpfdsm/internal/sections"
	"hpfdsm/internal/sim"
	"hpfdsm/internal/stats"
	"hpfdsm/internal/tempest"
	"hpfdsm/internal/trace"
)

// Options configures one run.
type Options struct {
	Machine config.Machine
	Opt     compiler.Level
	Backend Backend
	// Profile enables per-loop time/miss profiling (Result.Profile).
	Profile bool
	// EdgePrefetch issues advisory prefetches for the boundary blocks
	// the block-alignment shrink leaves to the default protocol (the
	// paper's suggested extension for small data sets such as grav).
	EdgePrefetch bool
	// InspectIndirect runs a light-weight inspector before loops with
	// indirect references: it scans the node's own iterations
	// evaluating just the indirect subscripts and prefetches the
	// scattered target blocks, overlapping their fetch latency with
	// the loop's setup — the inspector/executor idea applied to the
	// paper's future-work benchmark class.
	InspectIndirect bool
	// Check audits the coherence invariants (directory state, block
	// tags, data agreement) at every barrier and reduction instant, in
	// addition to the always-on post-run quiescent audit. Shared-memory
	// backend only.
	Check bool
	// Verified is the static verifier's report from an hpfrun -verify
	// pre-flight (may be nil). When set, invariant-audit diagnostics
	// cite the contract rules the verifier proved for the loop whose
	// schedule governs the failing block.
	Verified *analysis.Report
	// Trace, when non-nil, records the run's causal protocol-event
	// trace: wire spans and flow links, handler executions, miss
	// stalls, loop/barrier regions, and the per-block heat map. The
	// runtime installs the kind-name and block-provenance hooks and
	// registers every array's block range before the simulation starts.
	Trace *trace.Tracer
}

// Result is the outcome of one simulated run.
type Result struct {
	Prog    *ir.Program
	Stats   *stats.Cluster
	Elapsed sim.Time           // simulated execution time
	Scalars map[string]float64 // node 0's final scalar values
	Profile *trace.Profile     // per-loop profile (nil unless requested)
	// BarrierChecks is how many barrier-instant coherence audits ran
	// (zero unless Options.Check).
	BarrierChecks int64

	cluster  *tempest.Cluster
	analysis *compiler.Analysis
	layouts  map[*ir.Array]sections.Layout
	proto    *protocol.Proto
	mp       bool
}

// Analysis exposes the compiled communication rules (for inspection
// tools and tests).
func (r *Result) Analysis() *compiler.Analysis { return r.analysis }

// ArrayData assembles an array's final contents (in address order,
// i.e. column-major flattened). On the shared-memory backend each word
// is read coherently through the directory; on the message-passing
// backend the owner's private copy is authoritative.
func (r *Result) ArrayData(name string) []float64 {
	arr := r.Prog.ArrayByName(name)
	if arr == nil {
		panic(fmt.Sprintf("runtime: no array %q", name))
	}
	lay := r.layouts[arr]
	d := r.analysis.Dist(arr)
	out := make([]float64, arr.Elems())
	colElems := arr.Elems() / arr.LastExtent()
	for j := 1; j <= arr.LastExtent(); j++ {
		base := lay.Base + (j-1)*colElems*8
		if r.mp {
			owner := r.cluster.Nodes[d.Owner(j)]
			for k := 0; k < colElems; k++ {
				out[(j-1)*colElems+k] = owner.Mem.ReadF64(base + 8*k)
			}
			continue
		}
		for k := 0; k < colElems; k++ {
			out[(j-1)*colElems+k] = r.proto.CoherentRead(base + 8*k)
		}
	}
	return out
}

// Run executes prog on a simulated cluster.
func Run(prog *ir.Program, opt Options) (*Result, error) {
	mc := opt.Machine
	if err := mc.Validate(); err != nil {
		return nil, err
	}
	if opt.Backend == MessagePassing && ir.HasIndirect(prog) {
		return nil, fmt.Errorf("runtime: program %s contains indirect array subscripts and is not amenable to message passing; use the shared-memory backend", prog.Name)
	}
	env := sim.NewEnv()
	sp := memory.NewSpace(mc)
	layouts := make(map[*ir.Array]sections.Layout)
	for _, arr := range prog.Arrays {
		base := sp.Alloc(arr.Name, arr.Elems()*8)
		layouts[arr] = sections.Layout{Base: base, Extents: arr.Extents, ElemSize: 8}
	}
	cluster := tempest.NewCluster(env, sp)
	proto := protocol.Attach(cluster)
	// The NIC-level coalescing scheduler rides on eager release
	// consistency (its buffered legs are exactly the latency-tolerant
	// ones) and only pays off once the compiler emits phased bulk
	// traffic; below OptBulk, and on the message-passing backend, it
	// never engages.
	if opt.Opt >= compiler.OptBulk && opt.Backend == SharedMemory &&
		!mc.NoCoalesce && mc.Consistency == config.ReleaseConsistent {
		proto.EnableAggregation(mc.EffectiveAggDelay())
	}
	an, err := compiler.Cached(prog, mc.Nodes, layouts, mc.BlockSize)
	if err != nil {
		return nil, err
	}

	res := &Result{
		Prog:     prog,
		Stats:    cluster.Stats,
		Scalars:  map[string]float64{},
		cluster:  cluster,
		analysis: an,
		layouts:  layouts,
		proto:    proto,
		mp:       opt.Backend == MessagePassing,
	}

	execs := make([]*exec, mc.Nodes)
	var prof *trace.Profile
	if opt.Profile {
		prof = trace.NewProfile()
		res.Profile = prof
	}
	// Block-level provenance for audit diagnostics: schedules are
	// recorded as execs instantiate them; the hook stays cheap (a map
	// lookup) and is only consulted when an audit fails.
	prov := analysis.NewProvIndex(an)
	prov.Report = opt.Verified
	proto.BlockInfo = prov.Describe
	if tr := opt.Trace; tr != nil {
		tr.KindName = func(k uint8) string { return protocol.MsgKindName(network.Kind(k)) }
		tr.BlockInfo = prov.Describe
		for _, arr := range prog.Arrays {
			lay := layouts[arr]
			nb := (arr.Elems()*8 + mc.BlockSize - 1) / mc.BlockSize
			tr.Heat.AddArray(arr.Name, lay.Base/mc.BlockSize, nb)
		}
		cluster.SetTracer(tr)
	}
	for i := 0; i < mc.Nodes; i++ {
		execs[i] = newExec(prog, an, layouts, cluster, cluster.Nodes[i], proto.Node(i), opt.Opt)
		execs[i].prof = prof
		execs[i].edgePf = opt.EdgePrefetch
		execs[i].inspect = opt.InspectIndirect
		execs[i].prov = prov
	}
	if opt.Backend == MessagePassing {
		installMP(execs)
	}
	if opt.Check && opt.Backend == SharedMemory {
		cluster.BarrierCheck = proto.CheckAtBarrier
	}
	if mc.Faults.Active() {
		env.SetWatchdog(mc.Faults.EffectiveWatchdogHorizon(), func() string {
			return watchdogDump(cluster, proto)
		})
	}
	for i := 0; i < mc.Nodes; i++ {
		e := execs[i]
		env.Spawn(fmt.Sprintf("node%d", i), func(p *sim.Proc) { e.run(p) })
	}
	if err := env.Run(); err != nil {
		return nil, fmt.Errorf("runtime: %w (program %s)", err, prog.Name)
	}
	if err := cluster.CheckErr(); err != nil {
		return nil, fmt.Errorf("runtime: %w (program %s)", err, prog.Name)
	}
	res.BarrierChecks = cluster.BarrierChecks()
	if opt.Backend == SharedMemory {
		// Every run is self-auditing: the quiescent coherence state must
		// satisfy the protocol invariants.
		if err := proto.CheckInvariants(); err != nil {
			return nil, fmt.Errorf("runtime: post-run invariant violation: %w (program %s)", err, prog.Name)
		}
	}
	res.Elapsed = env.Now() - cluster.TimerStart
	if tr := opt.Trace; tr != nil {
		// Close the record with the simulator's event-dispatch census
		// (always-on counters in sim.Env), visible in the trace viewer.
		ev := env.Events()
		tr.Instant(0, trace.LaneCompute, "sim.events", "meta", env.Now(),
			trace.I64("dispatches", ev.Dispatches), trace.I64("arg_events", ev.ArgEvents),
			trace.I64("fn_events", ev.FnEvents), trace.I64("total", ev.Total()))
	}
	for k, v := range execs[0].scalars {
		res.Scalars[k] = v
	}
	return res, nil
}

// watchdogDump assembles the stall diagnostic: each node's compute
// process state and outstanding transactions, plus the protocol's
// in-flight work and the reliable-delivery channel state. Runs in
// scheduler context when the sim watchdog trips.
func watchdogDump(cluster *tempest.Cluster, proto *protocol.Proto) string {
	var b strings.Builder
	for _, n := range cluster.Nodes {
		state := "running"
		if p := n.Proc(); p != nil {
			switch {
			case p.Done():
				state = "finished"
			case p.Waiting():
				state = "blocked"
			}
		}
		fmt.Fprintf(&b, "  node %d: compute %s, %d pending transaction(s), misses r=%d w=%d up=%d, msgs sent=%d recv=%d\n",
			n.ID, state, n.Pending(), n.St.ReadMisses, n.St.WriteMisses, n.St.UpgradeMisses, n.St.MsgsSent, n.St.MsgsRecv)
	}
	if d := proto.DumpOutstanding(); d != "" {
		b.WriteString("protocol outstanding work:\n")
		b.WriteString(d)
	}
	if d := cluster.Net.DumpChannels(); d != "" {
		b.WriteString("reliable-delivery channels:\n")
		b.WriteString(d)
	}
	return strings.TrimRight(b.String(), "\n")
}
