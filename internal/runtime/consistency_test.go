package runtime

import (
	"testing"

	"hpfdsm/internal/compiler"
	"hpfdsm/internal/config"
)

// TestSequentialConsistencyCorrectAndSlower validates the swappable
// protocol variant (Tempest's premise): a conservative blocking-write
// protocol produces identical answers and is slower than the paper's
// eager release-consistent one — the design choice its footnote 1
// motivates.
func TestSequentialConsistencyCorrectAndSlower(t *testing.T) {
	const n, iters = 96, 4
	want := jacobiRef(n, iters)

	run := func(c config.Consistency) *Result {
		mc := config.Default().WithConsistency(c)
		res, err := Run(jacobiProg(n, iters), Options{Machine: mc, Opt: compiler.OptNone})
		if err != nil {
			t.Fatal(err)
		}
		if d := maxAbsDiff(res.ArrayData("a"), want); d > 1e-12 {
			t.Fatalf("%v: diff %g", c, d)
		}
		return res
	}
	rc := run(config.ReleaseConsistent)
	sc := run(config.SequentiallyConsistent)
	if sc.Elapsed <= rc.Elapsed {
		t.Fatalf("sequential consistency (%0.2fms) not slower than release consistency (%0.2fms)",
			ms(sc.Elapsed), ms(rc.Elapsed))
	}
	t.Logf("write-latency hiding: RC %.2fms vs SC %.2fms (%.1f%% saved)",
		ms(rc.Elapsed), ms(sc.Elapsed), 100*(1-float64(rc.Elapsed)/float64(sc.Elapsed)))
}

func TestSequentialConsistencyWithOptimizations(t *testing.T) {
	// The compiler-directed path must compose with either model.
	const n, iters = 64, 3
	want := jacobiRef(n, iters)
	mc := config.Default().WithConsistency(config.SequentiallyConsistent)
	res, err := Run(jacobiProg(n, iters), Options{Machine: mc, Opt: compiler.OptRTElim})
	if err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(res.ArrayData("a"), want); d > 1e-12 {
		t.Fatalf("SC+rtelim diff %g", d)
	}
}

func TestSequentialConsistencyNoPending(t *testing.T) {
	mc := config.Default().WithConsistency(config.SequentiallyConsistent)
	res, err := Run(jacobiProg(48, 2), Options{Machine: mc, Opt: compiler.OptNone})
	if err != nil {
		t.Fatal(err)
	}
	// Blocking writes never create pending transactions, so upgrade
	// misses show up as stall time, not as deferred grants.
	if res.Stats.TotalMisses() == 0 {
		t.Fatal("no misses recorded")
	}
}
