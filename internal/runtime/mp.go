package runtime

import (
	"hpfdsm/internal/compiler"
	"hpfdsm/internal/network"
	"hpfdsm/internal/sections"
	"hpfdsm/internal/sim"
	"hpfdsm/internal/tempest"
)

// Backend selects the execution substrate.
type Backend int

// Backends.
const (
	// SharedMemory runs on the coherent fine-grain DSM (the paper's
	// main system).
	SharedMemory Backend = iota
	// MessagePassing runs the PGI-style baseline: private memories,
	// exact-section sends derived from the same analysis, and blocking
	// receives instead of coherence. No barriers are needed around
	// loops — message arrival is the synchronization.
	MessagePassing
)

func (b Backend) String() string {
	if b == MessagePassing {
		return "message-passing"
	}
	return "shared-memory"
}

// KMPData carries one contiguous run of a section in the
// message-passing backend.
const KMPData network.Kind = 100

// mpState is the per-node message-passing runtime state. Communication
// proceeds in phases (one per loop's pre- and post-communication, in
// program order, identically numbered on every node); messages carry
// their phase so a sender running ahead cannot clobber a ghost region
// the receiver is still reading — the moral equivalent of MPI message
// tags.
type mpState struct {
	phase  int64
	recv   *sim.Counter // bytes received for the current phase
	queued map[int64][]*network.Message
}

// installMP registers the message-passing data handler on every node.
func installMP(execs []*exec) {
	for _, e := range execs {
		e.mp = &mpState{recv: sim.NewCounter(), queued: map[int64][]*network.Message{}}
		ee := e
		e.n.On(KMPData, func(hc *tempest.HContext, m *network.Message) {
			if m.Arg2 != ee.mp.phase {
				// Early arrival from a sender already in a later
				// phase: hold it until this node catches up.
				m.Retain()
				ee.mp.queued[m.Arg2] = append(ee.mp.queued[m.Arg2], m)
				return
			}
			ee.mpInstall(m)
		})
	}
}

// mpInstall unpacks one data message on the compute processor (the
// paper suspects PGI's port did not exploit the dual-CPU communication
// facilities well).
func (e *exec) mpInstall(m *network.Message) {
	mc := e.n.MC
	e.n.StealCompute(mc.MPRecvOver + sim.Time(len(m.Data))*mc.MPPackPerByte)
	e.n.Mem.InstallRange(m.Addr, m.Data)
	e.mp.recv.Add(int64(len(m.Data)))
}

// mpTransfer ships one transfer's exact section (no block alignment),
// one message per contiguous run, split at MaxPayload.
func (e *exec) mpSend(p *sim.Proc, t compiler.Transfer) {
	mc := e.n.MC
	lay := e.layouts[t.Array]
	for _, run := range sections.CoalesceRuns(lay.Runs(t.Sec)) {
		for off := 0; off < run.Bytes; off += mc.MaxPayload {
			nb := run.Bytes - off
			if nb > mc.MaxPayload {
				nb = mc.MaxPayload
			}
			addr := run.Addr + off
			data := make([]byte, nb)
			copy(data, e.n.Mem.Bytes(addr, nb))
			e.n.Compute(mc.MPSendOver + sim.Time(nb)*mc.MPPackPerByte)
			e.n.Sync(p)
			m := e.n.Net.NewMessage(e.n.ID)
			m.Src, m.Dst, m.Kind = e.n.ID, t.Receiver, KMPData
			m.Addr, m.Arg2, m.Data = addr, e.mp.phase, data
			e.n.Net.Send(m)
		}
	}
}

func (e *exec) mpBytesOf(t compiler.Transfer) int64 {
	return int64(t.Sec.Count() * 8)
}

// mpPhase runs one communication phase: send this node's outgoing
// transfers, wait for the expected incoming bytes, then advance to the
// next phase and drain any early arrivals for it.
func (e *exec) mpPhase(p *sim.Proc, transfers []compiler.Transfer) {
	me := e.n.ID
	var expected int64
	for _, t := range transfers {
		if t.Sender == me {
			e.mpSend(p, t)
		}
		if t.Receiver == me {
			expected += e.mpBytesOf(t)
		}
	}
	e.n.Sync(p)
	start := p.Now()
	e.mp.recv.WaitFor(p, expected)
	e.n.St.CommTime += p.Now() - start

	e.mp.phase++
	e.mp.recv.Reset()
	for _, m := range e.mp.queued[e.mp.phase] {
		e.mpInstall(m)
	}
	delete(e.mp.queued, e.mp.phase)
}

// mpPreLoop exchanges the loop's read sections, plus the current
// contents of non-owner-write sections (owner -> writer): the writer's
// post-loop flush ships the whole section back, so any elements it
// does not overwrite (e.g. off-lattice columns of a strided loop) must
// be current in its buffer first — the message-passing analogue of the
// shared-memory contract's "the owner has to send the block to the
// writer, just as in the non-owner read case".
func (e *exec) mpPreLoop(p *sim.Proc, sched *compiler.Schedule) {
	transfers := append([]compiler.Transfer{}, sched.Reads...)
	for _, t := range sched.Writes {
		rev := t
		rev.Sender, rev.Receiver = t.Receiver, t.Sender
		transfers = append(transfers, rev)
	}
	e.mpPhase(p, transfers)
}

// mpPostLoop flushes non-owner writes to the owners, who wait for them.
func (e *exec) mpPostLoop(p *sim.Proc, sched *compiler.Schedule) {
	e.mpPhase(p, sched.Writes)
}
