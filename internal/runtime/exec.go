package runtime

import (
	"fmt"

	"hpfdsm/internal/analysis"
	"hpfdsm/internal/compiler"
	"hpfdsm/internal/ir"
	"hpfdsm/internal/memory"
	"hpfdsm/internal/protocol"
	"hpfdsm/internal/sections"
	"hpfdsm/internal/sim"
	"hpfdsm/internal/stats"
	"hpfdsm/internal/tempest"
	"hpfdsm/internal/trace"
)

// exec is one node's executor: it walks the program, runs its share of
// every parallel loop, and brackets loops with the compiler-directed
// communication sequence appropriate to the optimization level.
// Every node executes the same control flow (scalars and schedules are
// replicated), diverging only in loop partitions and transfer roles.
type exec struct {
	prog    *ir.Program
	an      *compiler.Analysis
	layouts map[*ir.Array]sections.Layout
	cluster *tempest.Cluster
	n       *tempest.Node
	x       *protocol.Ext
	opt     compiler.Level
	edgePf  bool
	inspect bool

	env     map[string]int
	scalars map[string]float64
	exit    bool     // ExitIf tripped in the innermost sequential loop
	mp      *mpState // non-nil in the message-passing backend

	prof *trace.Profile // shared per-loop profile, nil unless enabled

	// prov records instantiated schedules for block-provenance in audit
	// diagnostics (shared across execs; recording is idempotent).
	prov *analysis.ProvIndex

	// Replicated PRE state: sections already delivered to CC frames.
	delivered map[string]bool
	// Replicated run-time-elimination state: the schedule last executed
	// for each loop. Barriers and tag work can be skipped only when the
	// instantiated schedule is unchanged — the paper's "same range of
	// blocks" test.
	lastSched map[any]*compiler.Schedule

	// fast caches each loop's compiled form (see fastloop.go), keyed by
	// the *ir.ParLoop / *ir.Reduce pointer; an entry with ok=false marks
	// a loop that stays on the interpreter.
	fast map[any]*fastLoop

	// Role-classification scratch reused across preLoopComm calls, so
	// the per-loop grouping allocates nothing in steady state.
	sendOut, takeOut, recvIn, flushIn []protocol.BlockRun

	// Ghost fast-forward (crash recovery). A restored run replays the
	// program's control flow from the beginning with every side effect
	// suppressed — no protocol calls, no compute cost, no cluster
	// barriers — while counting the synchronization epochs the original
	// run completed. When the local count reaches resumeEpoch (the
	// checkpoint's epoch) the executor flips live, possibly in the
	// middle of a pre/post-loop communication sequence, and continues
	// exactly where the restored protocol state says the machine stands.
	// Replicated interpreter state (scalars, delivered, lastSched) is
	// reconstructed by the walk itself; reduction results are replayed
	// from the checkpoint's journal instead of being recomputed.
	ghost       bool
	ghostEpoch  int64
	resumeEpoch int64
	journal     []float64 // completed reductions, generation order
	ghostGen    int       // next journal entry to replay
}

// setResume arms ghost fast-forward up to the checkpoint epoch.
func (e *exec) setResume(epoch int64, journal []float64) {
	if epoch <= 0 {
		return // initial-state checkpoint: run live from the start
	}
	e.ghost = true
	e.resumeEpoch = epoch
	e.journal = journal
}

// barrier enters a cluster-wide barrier — or, while ghosting, merely
// counts the epoch the original run completed here.
func (e *exec) barrier(p *sim.Proc) {
	if e.ghost {
		e.ghostTick()
		return
	}
	e.cluster.Barrier(p, e.n)
}

func (e *exec) ghostTick() {
	e.ghostEpoch++
	if e.ghostEpoch >= e.resumeEpoch {
		e.ghost = false
	}
}

// ghostReduce replays a completed reduction from the checkpoint
// journal and counts its epoch.
func (e *exec) ghostReduce() float64 {
	if e.ghostGen >= len(e.journal) {
		panic(fmt.Sprintf("runtime: ghost replay needs reduction %d but the checkpoint journal holds %d", e.ghostGen, len(e.journal)))
	}
	v := e.journal[e.ghostGen]
	e.ghostGen++
	e.ghostTick()
	return v
}

func newExec(prog *ir.Program, an *compiler.Analysis, layouts map[*ir.Array]sections.Layout,
	cluster *tempest.Cluster, n *tempest.Node, x *protocol.Ext, opt compiler.Level) *exec {
	e := &exec{
		prog: prog, an: an, layouts: layouts, cluster: cluster, n: n, x: x, opt: opt,
		env:       map[string]int{},
		scalars:   map[string]float64{},
		delivered: map[string]bool{},
		lastSched: map[any]*compiler.Schedule{},
		fast:      map[any]*fastLoop{},
	}
	// Map-to-map copy with distinct keys: the destination is identical
	// under any visit order.
	//simlint:commutative
	for k, v := range prog.Params {
		e.env[k] = v
	}
	for _, s := range prog.Scalars {
		e.scalars[s] = 0
	}
	return e
}

func (e *exec) run(p *sim.Proc) {
	e.n.SetProc(p)
	e.stmts(p, e.prog.Body)
	// Final synchronization so timing includes all nodes' completion.
	e.barrier(p)
}

func (e *exec) stmts(p *sim.Proc, body []ir.Stmt) {
	for _, s := range body {
		if e.exit {
			return
		}
		switch st := s.(type) {
		case *ir.ParLoop:
			e.profiled(p, st.Label, func() { e.parLoop(p, st) })
		case *ir.SeqLoop:
			e.seqLoop(p, st)
		case *ir.Reduce:
			e.profiled(p, st.Label, func() { e.reduce(p, st) })
		case *ir.ScalarAssign:
			e.scalars[st.Name] = e.evalScalar(st.RHS)
		case *ir.ExitIf:
			if cmp(st.Op, e.evalScalar(st.L), e.evalScalar(st.R)) {
				e.exit = true
			}
		case *ir.StartTimer:
			e.startTimer(p)
		case *ir.Block:
			e.stmts(p, st.Body)
		default:
			panic(fmt.Sprintf("runtime: unknown statement %T", s))
		}
	}
}

// startTimer opens the measured region: synchronize, zero this node's
// counters, and record the region start (node 0's clock).
func (e *exec) startTimer(p *sim.Proc) {
	e.barrier(p)
	if e.ghost {
		// Still fast-forwarding: the restored counters already reflect
		// the measured region up to the checkpoint — don't wipe them.
		return
	}
	*e.n.St = stats.Node{}
	if e.n.ID == 0 {
		e.cluster.TimerStart = p.Now()
	}
}

// profiled runs body, attributing this node's stat deltas to label and
// recording the span on the timeline and, when tracing, as a region on
// the node's compute lane (which also attributes the loop's misses in
// the heat map's provenance table).
func (e *exec) profiled(p *sim.Proc, label string, body func()) {
	tr := e.n.Trace
	if e.ghost {
		// Ghost loops cost nothing and attribute nothing; a loop the
		// walk goes live inside is likewise unattributed (its pre-flip
		// portion never re-ran).
		body()
		return
	}
	if e.prof == nil && tr == nil {
		body()
		return
	}
	e.n.Sync(p)
	before := *e.n.St
	start := p.Now()
	if tr != nil {
		tr.BeginRegion(e.n.ID, label, start)
	}
	body()
	e.n.Sync(p)
	if tr != nil {
		tr.EndRegion(e.n.ID, p.Now())
	}
	if e.prof == nil {
		return
	}
	e.prof.Timeline.Add(e.n.ID, label, start, p.Now())
	after := *e.n.St
	e.prof.Add(label, trace.Sample{
		Compute: after.ComputeTime - before.ComputeTime,
		Comm:    after.CommTime - before.CommTime,
		Barrier: after.BarrierTime - before.BarrierTime,
		Misses:  after.Misses() - before.Misses(),
		Msgs:    after.MsgsSent - before.MsgsSent,
	})
}

func cmp(op ir.CmpOp, l, r float64) bool {
	switch op {
	case ir.Lt:
		return l < r
	case ir.Le:
		return l <= r
	case ir.Gt:
		return l > r
	case ir.Ge:
		return l >= r
	default:
		panic("runtime: bad comparison")
	}
}

func (e *exec) seqLoop(p *sim.Proc, sl *ir.SeqLoop) {
	lo, hi := sl.Lo.Eval(e.env), sl.Hi.Eval(e.env)
	saved, had := e.env[sl.Var]
	for v := lo; v <= hi && !e.exit; v++ {
		e.env[sl.Var] = v
		e.stmts(p, sl.Body)
	}
	e.exit = false // ExitIf breaks the innermost sequential loop only
	if had {
		e.env[sl.Var] = saved
	} else {
		delete(e.env, sl.Var)
	}
}

// --- Parallel loop ----------------------------------------------------

func (e *exec) parLoop(p *sim.Proc, pl *ir.ParLoop) {
	rule := e.an.LoopRuleOf(pl)
	pt := e.an.Partition(pl, rule, e.env)

	if e.mp != nil {
		sched := e.an.Schedule(pl, rule, e.env)
		e.mpPreLoop(p, sched)
		e.runIterations(p, pl, rule, pt)
		e.mpPostLoop(p, sched)
		return
	}

	var sched *compiler.Schedule
	if e.opt >= compiler.OptBase {
		sched = e.an.Schedule(pl, rule, e.env)
		e.prov.RecordSchedule(pl.Label, sched)
		e.invalidateIndirectFrames(p, rule)
		e.preLoopComm(p, pl, sched)
	}
	if e.inspect && len(rule.IndirectArrays) > 0 && !e.ghost {
		e.inspectIndirect(p, pl, rule, pt)
	}

	if !e.ghost {
		e.runIterations(p, pl, rule, pt)
	}

	if e.opt >= compiler.OptBase {
		e.postLoopComm(p, sched, true)
	} else {
		e.barrier(p)
	}
}

// inspectIndirect is the inspector phase for an irregular loop: it
// walks this node's iterations evaluating only the indirect
// subscripts, collects the target coherence blocks it does not hold,
// and issues advisory prefetches so the executor phase finds them
// resident. Charged as (cheap) inspector computation per iteration.
func (e *exec) inspectIndirect(p *sim.Proc, pl *ir.ParLoop, rule *compiler.LoopRule, pt *compiler.Partition) {
	var inds []ir.Indirect
	for _, as := range pl.Body {
		inds = append(inds, ir.Indirects(as.RHS)...)
	}
	if len(inds) == 0 {
		return
	}
	ev := &evalCtx{e: e, p: p}
	want := map[int]bool{}
	bs := e.n.MC.BlockSize
	var nest func(d int)
	nest = func(d int) {
		if d < 0 {
			e.n.Compute(e.n.MC.LoopOver) // inspector cost per iteration
			for _, ind := range inds {
				lay := e.layouts[ind.Array]
				idx := make([]int, len(ind.Subs))
				ok := true
				for k, sub := range ind.Subs {
					v := int(ev.eval(sub))
					if v < 1 || v > ind.Array.Extents[k] {
						ok = false
						break
					}
					idx[k] = v
				}
				if !ok {
					continue
				}
				b := lay.Addr(idx...) / bs
				if e.n.Mem.Tag(b) == memory.Invalid {
					want[b] = true
				}
			}
			return
		}
		ix := pl.Indexes[d]
		step := ix.StepOr1()
		if ix.Var == pt.DistVar && !pt.Single {
			lo := ix.Lo.Eval(e.env)
			for _, r := range pt.Ranges[e.n.ID] {
				start := r[0]
				if off := (start - lo) % step; off != 0 {
					start += step - off
				}
				for v := start; v <= r[1]; v += step {
					e.env[ix.Var] = v
					nest(d - 1)
				}
			}
			delete(e.env, ix.Var)
			return
		}
		lo, hi := ix.Lo.Eval(e.env), ix.Hi.Eval(e.env)
		for v := lo; v <= hi; v += step {
			e.env[ix.Var] = v
			nest(d - 1)
		}
		delete(e.env, ix.Var)
	}
	if !pt.Single || pt.Exec == e.n.ID {
		nest(len(pl.Indexes) - 1)
	}
	if len(want) == 0 {
		return
	}
	// Coalesce into runs, deterministically.
	blocks := make([]int, 0, len(want))
	for b := range want {
		blocks = append(blocks, b)
	}
	sortInts(blocks)
	var runs []protocol.BlockRun
	for _, b := range blocks {
		if k := len(runs) - 1; k >= 0 && runs[k].Start+runs[k].N == b {
			runs[k].N++
		} else {
			runs = append(runs, protocol.BlockRun{Start: b, N: 1})
		}
	}
	e.x.Prefetch(p, runs)
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// invalidateIndirectFrames destroys this node's stale compiler-
// controlled frames over arrays the loop reads through irregular
// subscripts: those reads go through the default protocol and must not
// hit a stale readwrite frame left by run-time elimination.
func (e *exec) invalidateIndirectFrames(p *sim.Proc, rule *compiler.LoopRule) {
	if e.opt < compiler.OptRTElim || len(rule.IndirectArrays) == 0 || e.ghost {
		return
	}
	bs := e.n.MC.BlockSize
	var stale []protocol.BlockRun
	for _, arr := range rule.IndirectArrays {
		lay := e.layouts[arr]
		b0 := lay.Base / bs
		b1 := (lay.Base + arr.Elems()*8 + bs - 1) / bs
		for b := b0; b < b1; b++ {
			if !e.x.IsFrame(b) || e.n.Mem.Tag(b) != memory.ReadWrite || e.n.Mem.Dirty(b) != 0 {
				continue
			}
			if k := len(stale) - 1; k >= 0 && stale[k].Start+stale[k].N == b {
				stale[k].N++
			} else {
				stale = append(stale, protocol.BlockRun{Start: b, N: 1})
			}
		}
	}
	if len(stale) > 0 {
		e.x.ImplicitInvalidate(p, stale)
	}
}

// active filters a schedule's transfers under PRE: a redundant transfer
// is skipped once its section has actually been delivered (keyed by the
// transfer's precomputed content key). All nodes run this identically,
// keeping the replicated `delivered` maps equal.
func (e *exec) active(ts []compiler.Transfer) []compiler.Transfer {
	var out []compiler.Transfer
	for _, t := range ts {
		if t.NumBlocks == 0 {
			continue // nothing block-aligned: all edges, default protocol
		}
		if e.opt >= compiler.OptPRE {
			if t.Redundant && e.delivered[t.Key] {
				continue
			}
			e.delivered[t.Key] = true
		}
		out = append(out, t)
	}
	return out
}

// preLoopComm runs the Figure 2 sequence before the loop body.
func (e *exec) preLoopComm(p *sim.Proc, key any, sched *compiler.Schedule) {
	me := e.n.ID
	reads := e.active(sched.Reads)
	writes := e.active(sched.Writes)
	rtElim := e.opt >= compiler.OptRTElim
	sameSched := e.lastSched[key] == sched
	e.lastSched[key] = sched

	// Under run-time elimination, frames persist with stale contents
	// between transfers. Before this loop reads any block through the
	// default protocol (a transfer's edge), the reader destroys its own
	// stale frames covering that block — otherwise the readwrite tag
	// would satisfy the edge read silently. This is the "extra work
	// required for dealing with overlapping ranges" the paper mentions
	// and omits. (Skipped while ghosting: memory tags are the restored
	// future state, and the invalidation's effect is already in it.)
	if rtElim && !e.ghost {
		var stale []protocol.BlockRun
		for _, t := range sched.Reads {
			if t.Receiver != me {
				continue
			}
			for _, br := range t.EdgeBlocks {
				for b := br.Start; b < br.Start+br.N; b++ {
					if !e.x.IsFrame(b) || e.n.Mem.Tag(b) != memory.ReadWrite || e.n.Mem.Dirty(b) != 0 {
						continue
					}
					if k := len(stale) - 1; k >= 0 && stale[k].Start+stale[k].N == b {
						stale[k].N++
					} else {
						stale = append(stale, protocol.BlockRun{Start: b, N: 1})
					}
				}
			}
		}
		if len(stale) > 0 {
			e.x.ImplicitInvalidate(p, stale)
		}
	}

	if len(reads)+len(writes) == 0 {
		// No compiler-controlled communication this loop (possibly all
		// skipped by PRE): nothing to set up.
		return
	}

	// Advisory prefetch of the edge blocks we will demand-read through
	// the default protocol during the loop: issued first, so responses
	// overlap the whole setup-and-transfer phase. Blocks under compiler
	// control in this loop are excluded — prefetching them would
	// downgrade their senders.
	if e.edgePf && !e.ghost {
		cc := map[int]bool{}
		for _, t := range reads {
			for _, br := range t.Blocks {
				for b := br.Start; b < br.Start+br.N; b++ {
					cc[b] = true
				}
			}
		}
		var edges []protocol.BlockRun
		for _, t := range reads {
			if t.Receiver != me {
				continue
			}
			for _, br := range t.EdgeBlocks {
				for b := br.Start; b < br.Start+br.N; b++ {
					if cc[b] {
						continue
					}
					if k := len(edges) - 1; k >= 0 && edges[k].Start+edges[k].N == b {
						edges[k].N++
					} else {
						edges = append(edges, protocol.BlockRun{Start: b, N: 1})
					}
				}
			}
		}
		if len(edges) > 0 {
			e.x.Prefetch(p, edges)
		}
	}

	sendOut, takeOut := e.sendOut[:0], e.takeOut[:0]
	recvIn, flushIn := e.recvIn[:0], e.flushIn[:0]
	recvBlocks := 0
	for _, t := range reads {
		if t.Sender == me {
			sendOut = append(sendOut, t.Blocks...)
		}
		if t.Receiver == me {
			recvIn = append(recvIn, t.Blocks...)
			recvBlocks += t.NumBlocks
		}
	}
	for _, t := range writes {
		if t.Sender == me {
			// Non-owner writes go through mk_writable: "the owner has
			// to send the block to the writer, just as in the
			// non-owner read case" — the writer takes write ownership
			// through the directory (invalidating the home's copy) and
			// receives the current contents it will partially
			// overwrite.
			takeOut = append(takeOut, t.Blocks...)
		}
		if t.Receiver == me {
			// The owner opens frames for the data flushed back after
			// the loop.
			flushIn = append(flushIn, t.Blocks...)
		}
	}
	e.sendOut, e.takeOut, e.recvIn, e.flushIn = sendOut, takeOut, recvIn, flushIn

	// Step 1: senders and non-owner writers take their blocks writable.
	// Read-side mk_writable is skippable under run-time elimination
	// (the owner already holds them from the default protocol's
	// effect); write-side is not — the paper's whole-program
	// assumptions exclude non-owner writes, so where they exist the
	// calls stay. The barrier orders step 1 before step 2 (a reader
	// may be a block's home).
	if !rtElim && len(sendOut) > 0 && !e.ghost {
		e.x.MkWritable(p, sendOut)
	}
	if len(takeOut) > 0 && !e.ghost {
		e.x.MkWritable(p, takeOut)
	}
	if !rtElim || len(writes) > 0 {
		e.barrier(p)
	}

	// Step 2: receivers open readwrite frames for the incoming data;
	// flush targets likewise for the post-loop writeback. (The walk can
	// go live at the step-1 barrier, in which case the checkpoint holds
	// the pre-step-2 state and everything below runs for real.)
	if len(recvIn) > 0 && !e.ghost {
		e.x.ImplicitWritable(p, recvIn, rtElim)
	}
	if len(flushIn) > 0 && !e.ghost {
		e.x.ImplicitWritable(p, flushIn, rtElim)
	}
	if recvBlocks > 0 && !e.ghost {
		e.x.ExpectBlocks(recvBlocks)
	}

	// Both sides ready before the transfer. Under run-time elimination
	// the frames persist, so a repeat of the identical schedule can
	// skip this barrier; a changed schedule (e.g. lu's per-step pivot
	// column) cannot — receivers must open the new frames first.
	if !rtElim || !sameSched {
		e.barrier(p)
	}

	// The transfer: owners push, readers hold a counting semaphore.
	// Each transfer's transport comes from the schedule's expected-byte
	// matrices and the machine's aggregation threshold; the explicit
	// drain closes the emission phase so aggregated carriers depart
	// even when this node receives nothing (its readers are blocked in
	// ReadyToRecv right now).
	bs, thr := e.n.MC.BlockSize, e.n.MC.EffectiveAggThreshold()
	if !e.ghost {
		sent := false
		for _, t := range reads {
			if t.Sender == me {
				e.x.SendBlocks(p, t.Receiver, t.Blocks, sched.Mode(e.opt, t.Sender, t.Receiver, false, bs, thr))
				sent = true
			}
		}
		if sent {
			e.x.DrainAggregated(p)
		}
		if recvBlocks > 0 {
			e.x.ReadyToRecv(p)
		}
	}
}

// postLoopComm restores consistency after the loop body.
func (e *exec) postLoopComm(p *sim.Proc, sched *compiler.Schedule, closingBarrier bool) {
	me := e.n.ID
	rtElim := e.opt >= compiler.OptRTElim

	// Non-owner writes flush back to the owner, who waits for them.
	flushIn := 0
	for _, t := range sched.Writes {
		if t.Receiver == me {
			flushIn += t.NumBlocks
		}
	}
	bs, thr := e.n.MC.BlockSize, e.n.MC.EffectiveAggThreshold()
	if !e.ghost {
		flushed := false
		for _, t := range sched.Writes {
			if t.Sender == me && t.NumBlocks > 0 {
				e.x.FlushBlocks(p, t.Receiver, t.Blocks, sched.Mode(e.opt, t.Sender, t.Receiver, true, bs, thr))
				flushed = true
			}
		}
		if flushed {
			// Close the flush epoch: aggregated data and piggybacked
			// directory updates depart before the closing barrier.
			e.x.DrainAggregated(p)
		}
	}

	// The loop's closing barrier (a reduction's AllReduce already
	// synchronized).
	if closingBarrier {
		e.barrier(p)
	}

	if flushIn > 0 && !e.ghost {
		e.x.ExpectBlocks(flushIn)
		e.x.ReadyToRecv(p)
	}

	// Readers re-invalidate their frames so the directory's belief
	// (sender holds the only copy) is true again. Eliminated under the
	// whole-program assumptions (the frames are refilled next time).
	// The condition is on the global schedule, so every node agrees on
	// whether the extra barrier happens.
	if !rtElim && len(sched.Reads) > 0 {
		if !e.ghost {
			var recvIn []protocol.BlockRun
			for _, t := range sched.Reads {
				if t.Receiver == me {
					recvIn = append(recvIn, t.Blocks...)
				}
			}
			if len(recvIn) > 0 {
				e.x.ImplicitInvalidate(p, recvIn)
			}
		}
		e.barrier(p)
	}

}

// --- Iteration execution ----------------------------------------------

func (e *exec) runIterations(p *sim.Proc, pl *ir.ParLoop, rule *compiler.LoopRule, pt *compiler.Partition) {
	// Per-element cost, with inner-reduction trip counts resolved
	// against the current symbol environment.
	flops := 0
	for _, as := range pl.Body {
		flops += 1 + e.dynOps(as.RHS)
	}
	elemCost := e.n.MC.LoopOver + sim.Time(flops)*e.n.MC.NsPerFlop

	if fl := e.fastOf(pl, pl.Indexes, pl.Body, nil); fl != nil {
		fl.runBody(fl.newMach(e, p), pt, elemCost)
		return
	}

	ev := &evalCtx{e: e, p: p}

	// Execute the nest: index 0 fastest. The distributed variable's
	// ranges come from the partition; other indexes run in full.
	var nest func(d int)
	nest = func(d int) {
		if d < 0 {
			e.n.Compute(elemCost)
			for _, as := range pl.Body {
				v := ev.eval(as.RHS)
				ev.store(as.LHS, v)
			}
			return
		}
		ix := pl.Indexes[d]
		step := ix.StepOr1()
		if ix.Var == pt.DistVar && !pt.Single {
			lo := ix.Lo.Eval(e.env)
			for _, r := range pt.Ranges[e.n.ID] {
				// Align the range start to the loop's step lattice.
				start := r[0]
				if off := (start - lo) % step; off != 0 {
					start += step - off
				}
				for v := start; v <= r[1]; v += step {
					e.env[ix.Var] = v
					nest(d - 1)
				}
			}
			delete(e.env, ix.Var)
			return
		}
		lo, hi := ix.Lo.Eval(e.env), ix.Hi.Eval(e.env)
		for v := lo; v <= hi; v += step {
			e.env[ix.Var] = v
			nest(d - 1)
		}
		delete(e.env, ix.Var)
	}

	if pt.Single && pt.Exec != e.n.ID {
		return // another processor runs this entire loop
	}
	nest(len(pl.Indexes) - 1)
}

// dynOps is ir.Expr.Ops with inner-reduction trip counts evaluated
// against the live environment where possible.
func (e *exec) dynOps(x ir.Expr) int {
	switch t := x.(type) {
	case ir.Bin:
		return 1 + e.dynOps(t.L) + e.dynOps(t.R)
	case ir.Call:
		n := 8
		for _, a := range t.Args {
			n += e.dynOps(a)
		}
		return n
	case ir.InnerRed:
		trip := 16
		lo, okL := t.Lo.TryEval(e.env)
		hi, okH := t.Hi.TryEval(e.env)
		if okL && okH {
			trip = hi - lo + 1
			if trip < 0 {
				trip = 0
			}
		}
		return trip * (1 + e.dynOps(t.Body))
	default:
		return x.Ops()
	}
}

func (e *exec) reduce(p *sim.Proc, rd *ir.Reduce) {
	rule := e.an.ReduceRuleOf(rd)
	pt := e.an.Partition(rd, rule, e.env)

	var sched *compiler.Schedule
	if e.mp != nil {
		e.mpPreLoop(p, e.an.Schedule(rd, rule, e.env))
	} else if e.opt >= compiler.OptBase {
		sched = e.an.Schedule(rd, rule, e.env)
		e.prov.RecordSchedule(rd.Label, sched)
		e.preLoopComm(p, rd, sched)
	}

	flops := 1 + e.dynOps(rd.Expr)
	elemCost := e.n.MC.LoopOver + sim.Time(flops)*e.n.MC.NsPerFlop

	if e.ghost {
		// Replay the committed result; the generation is also an epoch.
		e.scalars[rd.Target] = e.ghostReduce()
	} else {
		partial := e.reducePartial(p, rd, pt, elemCost)
		op := map[ir.RedOp]tempest.ReduceOp{
			ir.RedSum: tempest.OpSum, ir.RedMax: tempest.OpMax, ir.RedMin: tempest.OpMin,
		}[rd.Op]
		e.scalars[rd.Target] = e.cluster.AllReduce(p, e.n, op, partial)
	}

	if e.mp == nil && e.opt >= compiler.OptBase {
		e.postLoopComm(p, sched, false)
	}
}

// reducePartial computes this node's partial value of a reduction:
// compiled nest when possible, interpreter otherwise.
func (e *exec) reducePartial(p *sim.Proc, rd *ir.Reduce, pt *compiler.Partition, elemCost sim.Time) float64 {
	if fl := e.fastOf(rd, rd.Indexes, nil, rd.Expr); fl != nil {
		partial, _ := fl.runReduce(fl.newMach(e, p), pt, elemCost, rd.Op)
		return partial
	}

	ev := &evalCtx{e: e, p: p}
	partial := redIdentity(rd.Op)
	seen := false
	var nest func(d int)
	nest = func(d int) {
		if d < 0 {
			e.n.Compute(elemCost)
			v := ev.eval(rd.Expr)
			if !seen {
				partial, seen = v, true
			} else {
				partial = redCombine(rd.Op, partial, v)
			}
			return
		}
		ix := rd.Indexes[d]
		step := ix.StepOr1()
		if ix.Var == pt.DistVar && !pt.Single {
			lo := ix.Lo.Eval(e.env)
			for _, r := range pt.Ranges[e.n.ID] {
				start := r[0]
				if off := (start - lo) % step; off != 0 {
					start += step - off
				}
				for v := start; v <= r[1]; v += step {
					e.env[ix.Var] = v
					nest(d - 1)
				}
			}
			delete(e.env, ix.Var)
			return
		}
		lo, hi := ix.Lo.Eval(e.env), ix.Hi.Eval(e.env)
		for v := lo; v <= hi; v += step {
			e.env[ix.Var] = v
			nest(d - 1)
		}
		delete(e.env, ix.Var)
	}
	if !pt.Single || pt.Exec == e.n.ID {
		nest(len(rd.Indexes) - 1)
	}
	return partial
}

func redIdentity(op ir.RedOp) float64 {
	switch op {
	case ir.RedSum:
		return 0
	default:
		return 0 // replaced by the first value via `seen`
	}
}

func redCombine(op ir.RedOp, a, b float64) float64 {
	switch op {
	case ir.RedSum:
		return a + b
	case ir.RedMax:
		if b > a {
			return b
		}
		return a
	case ir.RedMin:
		if b < a {
			return b
		}
		return a
	default:
		panic("runtime: bad reduction op")
	}
}
