package runtime

import (
	"testing"

	"hpfdsm/internal/compiler"
	"hpfdsm/internal/config"
)

func TestProfileCollectsLoops(t *testing.T) {
	res, err := Run(jacobiProg(64, 3), Options{
		Machine: config.Default(), Opt: compiler.OptBulk, Profile: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Profile == nil {
		t.Fatal("no profile")
	}
	sweep := res.Profile.Entry("sweep")
	if sweep == nil {
		t.Fatalf("no sweep entry; have %v", res.Profile.Entries())
	}
	if sweep.Visits != 3*8 { // 3 iterations x 8 nodes
		t.Fatalf("sweep visits = %d, want 24", sweep.Visits)
	}
	if sweep.Compute <= 0 {
		t.Fatal("sweep has no compute time")
	}
	init := res.Profile.Entry("init")
	if init == nil || init.Visits != 8 {
		t.Fatalf("init entry = %+v", init)
	}
	// Profile accounting must roughly cover the stats totals.
	var profCompute int64
	for _, e := range res.Profile.Entries() {
		profCompute += e.Compute
	}
	var statCompute int64
	for i := range res.Stats.Nodes {
		statCompute += res.Stats.Nodes[i].ComputeTime
	}
	// Stats were reset by STARTTIMER, so the profile (which includes
	// init) must be >= the timed-region stats.
	if profCompute < statCompute {
		t.Fatalf("profile compute %d < stats compute %d", profCompute, statCompute)
	}
}

func TestProfileDisabledByDefault(t *testing.T) {
	res, err := Run(jacobiProg(32, 1), Options{Machine: config.Default()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Profile != nil {
		t.Fatal("profile should be nil unless requested")
	}
}
