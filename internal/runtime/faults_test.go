package runtime

import (
	"testing"

	"hpfdsm/internal/apps"
	"hpfdsm/internal/compiler"
	"hpfdsm/internal/config"
	"hpfdsm/internal/sim"
)

// soak runs one app at scaled size with the given fault config and
// returns the run result.
func soak(t *testing.T, a *apps.App, f config.Faults) *Result {
	t.Helper()
	prog, err := a.Program(a.ScaledParams)
	if err != nil {
		t.Fatal(err)
	}
	mc := config.Default().WithNodes(4).WithFaults(f)
	res, err := Run(prog, Options{Machine: mc, Opt: compiler.OptRTElim, Check: true})
	if err != nil {
		t.Fatalf("%s under faults %+v: %v", a.Name, f, err)
	}
	return res
}

// TestFaultSoak runs jacobi (regular stencil) and irregular (indirect
// gather) over a lossy, duplicating wire at several loss rates and
// seeds, with the barrier-instant coherence audit armed, and demands
// bit-equal-within-tolerance final arrays against the fault-free run of
// the same configuration: reliable delivery must make the protocol's
// results independent of what the wire does.
func TestFaultSoak(t *testing.T) {
	suite := []*apps.App{apps.Jacobi(), apps.Irregular()}
	faults := []config.Faults{
		{Drop: 0.01, Dup: 0.01},
		{Drop: 0.05, Dup: 0.02},
	}
	for _, a := range suite {
		ref := soak(t, a, config.Faults{}) // lossless baseline
		if ref.Stats.TotalWireDrops() != 0 || ref.Stats.TotalRetransmits() != 0 {
			t.Fatalf("%s: lossless baseline touched the reliable layer", a.Name)
		}
		refArrays := map[string][]float64{}
		for _, name := range a.CheckArrays {
			refArrays[name] = ref.ArrayData(name)
		}
		for _, f := range faults {
			for seed := uint64(1); seed <= 3; seed++ {
				f := f
				f.Seed = seed
				res := soak(t, a, f)
				if res.Stats.TotalWireDrops() == 0 {
					t.Fatalf("%s %+v: fault injection inert", a.Name, f)
				}
				if res.BarrierChecks == 0 {
					t.Fatalf("%s %+v: no barrier audits ran", a.Name, f)
				}
				for _, name := range a.CheckArrays {
					got := res.ArrayData(name)
					want := refArrays[name]
					for k := range want {
						if d := abs(got[k] - want[k]); d > a.Tol {
							t.Fatalf("%s %+v: %s[%d] = %v, want %v (|diff| %g > tol %g)",
								a.Name, f, name, k, got[k], want[k], d, a.Tol)
						}
					}
				}
			}
		}
	}
}

// TestFaultRunsAreDeterministic reruns one faulty configuration and
// demands an identical schedule: same elapsed virtual time and same
// fault counters. The whole layer draws from one seeded PRNG.
func TestFaultRunsAreDeterministic(t *testing.T) {
	a := apps.Jacobi()
	f := config.Faults{Drop: 0.05, Dup: 0.02, Jitter: 5 * sim.Microsecond, Reorder: 0.05, Seed: 9}
	r1 := soak(t, a, f)
	r2 := soak(t, a, f)
	if r1.Elapsed != r2.Elapsed {
		t.Fatalf("elapsed %d vs %d: fault schedule not deterministic", r1.Elapsed, r2.Elapsed)
	}
	for _, pair := range [][2]int64{
		{r1.Stats.TotalWireDrops(), r2.Stats.TotalWireDrops()},
		{r1.Stats.TotalWireDups(), r2.Stats.TotalWireDups()},
		{r1.Stats.TotalRetransmits(), r2.Stats.TotalRetransmits()},
		{r1.Stats.TotalDupsDropped(), r2.Stats.TotalDupsDropped()},
		{r1.Stats.TotalAcksSent(), r2.Stats.TotalAcksSent()},
	} {
		if pair[0] != pair[1] {
			t.Fatalf("fault counters differ between identical runs: %d vs %d", pair[0], pair[1])
		}
	}
}

// TestZeroFaultRunMatchesSeedModel pins the hard compatibility
// requirement: with fault injection inactive, message and miss counts
// are bit-identical to the pre-fault-layer network (the suite's exact
// count assertions elsewhere depend on it). A fault-free Faults struct
// with only a seed set must stay inert too.
func TestZeroFaultRunMatchesSeedModel(t *testing.T) {
	a := apps.Jacobi()
	base := soak(t, a, config.Faults{})
	seedOnly := soak(t, a, config.Faults{Seed: 42})
	if base.Elapsed != seedOnly.Elapsed ||
		base.Stats.TotalMessages() != seedOnly.Stats.TotalMessages() ||
		base.Stats.TotalMisses() != seedOnly.Stats.TotalMisses() {
		t.Fatalf("seed-only fault config perturbed the run: elapsed %d vs %d, msgs %d vs %d",
			base.Elapsed, seedOnly.Elapsed, base.Stats.TotalMessages(), seedOnly.Stats.TotalMessages())
	}
}
