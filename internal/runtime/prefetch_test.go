package runtime

import (
	"testing"

	"hpfdsm/internal/compiler"
	"hpfdsm/internal/config"
	"hpfdsm/internal/distribute"
	"hpfdsm/internal/ir"
)

// fullColumnProg reads whole neighbour columns (rows 1..n), which are
// exactly block aligned for n*8 % 128 == 0.
func fullColumnProg(n, iters int) *ir.Program {
	A := &ir.Array{Name: "a", Extents: []int{n, n}, Dist: distribute.Spec{Kind: distribute.Block}}
	B := &ir.Array{Name: "b", Extents: []int{n, n}, Dist: distribute.Spec{Kind: distribute.Block}}
	i, j := ir.V("i"), ir.V("j")
	init := &ir.ParLoop{Label: "init",
		Indexes: []ir.Index{ir.Idx("i", ir.Aff(1), ir.Aff(n)), ir.Idx("j", ir.Aff(1), ir.Aff(n))},
		Body: []*ir.Assign{
			{LHS: ir.Ref(A, i, j), RHS: ir.Iv("i")},
			{LHS: ir.Ref(B, i, j), RHS: ir.N(0)},
		}}
	sweep := &ir.ParLoop{Label: "sweep",
		Indexes: []ir.Index{ir.Idx("i", ir.Aff(1), ir.Aff(n)), ir.Idx("j", ir.Aff(2), ir.Aff(n-1))},
		Body: []*ir.Assign{{
			LHS: ir.Ref(B, i, j),
			RHS: ir.Plus(ir.Ref(A, i, j.AddC(-1)), ir.Ref(A, i, j.AddC(1))),
		}}}
	copyBack := &ir.ParLoop{Label: "copy",
		Indexes: []ir.Index{ir.Idx("i", ir.Aff(1), ir.Aff(n)), ir.Idx("j", ir.Aff(2), ir.Aff(n-1))},
		Body:    []*ir.Assign{{LHS: ir.Ref(A, i, j), RHS: ir.Ref(B, i, j)}}}
	return &ir.Program{Name: "fullcol", Params: map[string]int{"n": n},
		Arrays: []*ir.Array{A, B},
		Body: []ir.Stmt{init, &ir.StartTimer{},
			&ir.SeqLoop{Var: "t", Lo: ir.Aff(1), Hi: ir.Aff(iters), Body: []ir.Stmt{sweep, copyBack}}}}
}

func TestEdgePrefetchReducesStallsKeepsResults(t *testing.T) {
	const n, iters = 129, 5
	run := func(pf bool) *Result {
		res, err := Run(jacobiProg(n, iters), Options{
			Machine: config.Default(), Opt: compiler.OptRTElim, EdgePrefetch: pf,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run(false)
	pf := run(true)

	// Same answers.
	a, b := plain.ArrayData("a"), pf.ArrayData("a")
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("prefetch changed results at %d: %v vs %v", i, a[i], b[i])
		}
	}
	// Fewer demand read misses: the edges were prefetched.
	pm, fm := plain.Stats.TotalMisses(), pf.Stats.TotalMisses()
	if fm >= pm {
		t.Fatalf("prefetch did not reduce demand misses: %d -> %d", pm, fm)
	}
	// Advisory prefetch must not hurt end-to-end (the first-touched
	// edge can still race the response, so it is not always a win —
	// matching the paper's cautious "may be a worthwhile optimization").
	if float64(pf.Elapsed) > 1.02*float64(plain.Elapsed) {
		t.Fatalf("prefetch noticeably slower: %.2fms vs %.2fms", ms(pf.Elapsed), ms(plain.Elapsed))
	}
	t.Logf("edge prefetch: misses %d -> %d, time %.2fms -> %.2fms",
		pm, fm, ms(plain.Elapsed), ms(pf.Elapsed))
}

func TestEdgePrefetchNoopWhenNoEdges(t *testing.T) {
	// Full-column transfers (rows 1..n with n a multiple of 16
	// elements) are exactly block aligned: no edge blocks, prefetch
	// must change nothing.
	const n, iters = 128, 3
	prog := func() *Result { return nil }
	_ = prog
	run := func(pf bool) *Result {
		res, err := Run(fullColumnProg(n, iters), Options{
			Machine: config.Default(), Opt: compiler.OptRTElim, EdgePrefetch: pf,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run(false)
	pf := run(true)
	if plain.Elapsed != pf.Elapsed || plain.Stats.TotalMessages() != pf.Stats.TotalMessages() {
		t.Fatalf("prefetch changed an edge-free run: %d/%d vs %d/%d",
			plain.Elapsed, plain.Stats.TotalMessages(), pf.Elapsed, pf.Stats.TotalMessages())
	}
}
