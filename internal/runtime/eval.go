package runtime

import (
	"fmt"
	"math"

	"hpfdsm/internal/ir"
	"hpfdsm/internal/sim"
)

// evalCtx evaluates IR expressions for one node's executor, routing
// array accesses through the node's checked shared-memory operations.
type evalCtx struct {
	e       *exec
	p       *sim.Proc
	scratch [8]int // subscript buffer (avoids per-access allocation)
}

func (c *evalCtx) addr(r ir.ArrayRef) int {
	lay := c.e.layouts[r.Array]
	idx := c.scratch[:len(r.Subs)]
	for d, s := range r.Subs {
		idx[d] = s.Eval(c.e.env)
	}
	return lay.Addr(idx...)
}

func (c *evalCtx) eval(x ir.Expr) float64 {
	switch t := x.(type) {
	case ir.Num:
		return t.V
	case ir.ScalarRef:
		v, ok := c.e.scalars[t.Name]
		if !ok {
			panic(fmt.Sprintf("runtime: undefined scalar %q", t.Name))
		}
		return v
	case ir.IdxVal:
		return float64(c.e.env[t.Name])
	case ir.ArrayRef:
		if c.e.mp != nil {
			return c.e.n.Mem.ReadF64(c.addr(t)) // private memory, no tags
		}
		return c.e.n.LoadF64(c.p, c.addr(t))
	case ir.Bin:
		l, r := c.eval(t.L), c.eval(t.R)
		switch t.Op {
		case ir.Add:
			return l + r
		case ir.Sub:
			return l - r
		case ir.Mul:
			return l * r
		case ir.Div:
			return l / r
		}
		panic("runtime: bad binop")
	case ir.Call:
		return c.call(t)
	case ir.Indirect:
		lay := c.e.layouts[t.Array]
		idx := c.scratch[:len(t.Subs)]
		for d, s := range t.Subs {
			v := int(c.eval(s))
			if v < 1 || v > t.Array.Extents[d] {
				panic(fmt.Sprintf("runtime: indirect subscript %d out of range 1..%d for %s",
					v, t.Array.Extents[d], t.Array.Name))
			}
			idx[d] = v
		}
		if c.e.mp != nil {
			return c.e.n.Mem.ReadF64(lay.Addr(idx...))
		}
		return c.e.n.LoadF64(c.p, lay.Addr(idx...))
	case ir.InnerRed:
		lo, hi := t.Lo.Eval(c.e.env), t.Hi.Eval(c.e.env)
		saved, had := c.e.env[t.Var]
		acc := 0.0
		seen := false
		for v := lo; v <= hi; v++ {
			c.e.env[t.Var] = v
			val := c.eval(t.Body)
			if !seen {
				acc, seen = val, true
			} else {
				acc = redCombine(t.Op, acc, val)
			}
		}
		if had {
			c.e.env[t.Var] = saved
		} else {
			delete(c.e.env, t.Var)
		}
		return acc
	default:
		panic(fmt.Sprintf("runtime: unknown expression %T", x))
	}
}

func (c *evalCtx) call(t ir.Call) float64 {
	arg := func(i int) float64 { return c.eval(t.Args[i]) }
	switch t.Fn {
	case "SQRT":
		return math.Sqrt(arg(0))
	case "ABS":
		return math.Abs(arg(0))
	case "EXP":
		return math.Exp(arg(0))
	case "SIN":
		return math.Sin(arg(0))
	case "COS":
		return math.Cos(arg(0))
	case "MIN":
		return math.Min(arg(0), arg(1))
	case "MAX":
		return math.Max(arg(0), arg(1))
	case "MOD":
		return math.Mod(arg(0), arg(1))
	default:
		panic(fmt.Sprintf("runtime: unknown intrinsic %q", t.Fn))
	}
}

func (c *evalCtx) store(r ir.ArrayRef, v float64) {
	if c.e.mp != nil {
		c.e.n.Mem.WriteF64(c.addr(r), v)
		return
	}
	c.e.n.StoreF64(c.p, c.addr(r), v)
}

// evalScalar evaluates a replicated scalar expression (no array
// references, no loop variables): every node computes the same value.
func (e *exec) evalScalar(x ir.Expr) float64 {
	if len(ir.Refs(x)) > 0 {
		panic("runtime: array reference in scalar context")
	}
	c := &evalCtx{e: e}
	return c.eval(x)
}
