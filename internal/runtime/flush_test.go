package runtime

import (
	"testing"

	"hpfdsm/internal/compiler"
	"hpfdsm/internal/config"
	"hpfdsm/internal/distribute"
	"hpfdsm/internal/ir"
)

// flushProg has a loop with two assignments whose left-hand sides are
// differently aligned: the second one is a non-owner write, exercising
// the implicit_writable + flush-to-owner path of the paper's
// Section 4.2 end-to-end.
func flushProg(n, iters int) *ir.Program {
	A := &ir.Array{Name: "a", Extents: []int{n, n}, Dist: distribute.Spec{Kind: distribute.Block}}
	B := &ir.Array{Name: "b", Extents: []int{n, n}, Dist: distribute.Spec{Kind: distribute.Block}}
	i, j := ir.V("i"), ir.V("j")
	init := &ir.ParLoop{
		Label:   "init",
		Indexes: []ir.Index{ir.Idx("i", ir.Aff(1), ir.Aff(n)), ir.Idx("j", ir.Aff(1), ir.Aff(n))},
		Body: []*ir.Assign{
			{LHS: ir.Ref(A, i, j), RHS: ir.Plus(ir.Iv("i"), ir.Iv("j"))},
			{LHS: ir.Ref(B, i, j), RHS: ir.N(0)},
		},
	}
	// Owner-computes on a(i,j); b(i,j+1) is written into the neighbour's
	// partition (a staggered-output loop).
	stagger := &ir.ParLoop{
		Label:   "stagger",
		Indexes: []ir.Index{ir.Idx("i", ir.Aff(1), ir.Aff(n)), ir.Idx("j", ir.Aff(1), ir.Aff(n-1))},
		Body: []*ir.Assign{
			{LHS: ir.Ref(A, i, j), RHS: ir.Plus(ir.Ref(A, i, j), ir.N(1))},
			{LHS: ir.Ref(B, i, j.AddC(1)), RHS: ir.Times(ir.N(2), ir.Ref(A, i, j))},
		},
	}
	return &ir.Program{
		Name:   "flush",
		Params: map[string]int{"n": n},
		Arrays: []*ir.Array{A, B},
		Body: []ir.Stmt{
			init,
			&ir.StartTimer{},
			&ir.SeqLoop{Var: "t", Lo: ir.Aff(1), Hi: ir.Aff(iters), Body: []ir.Stmt{stagger}},
		},
	}
}

func flushRef(n, iters int) (a, b []float64) {
	a = make([]float64, n*n)
	b = make([]float64, n*n)
	at := func(m []float64, i, j int) *float64 { return &m[(j-1)*n+(i-1)] }
	for j := 1; j <= n; j++ {
		for i := 1; i <= n; i++ {
			*at(a, i, j) = float64(i + j)
		}
	}
	for t := 0; t < iters; t++ {
		for j := 1; j <= n-1; j++ {
			for i := 1; i <= n; i++ {
				*at(a, i, j)++
				*at(b, i, j+1) = 2 * *at(a, i, j)
			}
		}
	}
	return a, b
}

func TestNonOwnerWriteFlushEndToEnd(t *testing.T) {
	const n, iters = 64, 4
	wantA, wantB := flushRef(n, iters)
	for _, opt := range []compiler.Level{compiler.OptNone, compiler.OptBase, compiler.OptBulk} {
		res, err := Run(flushProg(n, iters), Options{Machine: config.Default(), Opt: opt})
		if err != nil {
			t.Fatalf("opt %v: %v", opt, err)
		}
		if d := maxAbsDiff(res.ArrayData("a"), wantA); d > 1e-12 {
			t.Fatalf("opt %v: a diff %g", opt, d)
		}
		if d := maxAbsDiff(res.ArrayData("b"), wantB); d > 1e-12 {
			t.Fatalf("opt %v: b diff %g", opt, d)
		}
	}
}

func TestNonOwnerWriteRuleDetected(t *testing.T) {
	prog := flushProg(64, 1)
	res, err := Run(prog, Options{Machine: config.Default(), Opt: compiler.OptBulk})
	if err != nil {
		t.Fatal(err)
	}
	var loop *ir.ParLoop
	for _, s := range prog.Body {
		if sl, ok := s.(*ir.SeqLoop); ok {
			loop = sl.Body[0].(*ir.ParLoop)
		}
	}
	rule := res.Analysis().LoopRuleOf(loop)
	if len(rule.Writes) != 1 {
		t.Fatalf("write rules = %d, want 1 (%+v)", len(rule.Writes), rule.Writes)
	}
	if rule.Writes[0].Kind != compiler.KindShift {
		t.Fatalf("write rule kind = %v", rule.Writes[0].Kind)
	}
	sched := res.Analysis().Schedule(loop, rule, map[string]int{"n": 64, "t": 1})
	if len(sched.Writes) != 7 { // each proc flushes one column to its right neighbour
		t.Fatalf("flush transfers = %d, want 7: %v", len(sched.Writes), sched.Writes)
	}
}

func TestMPNonOwnerWrite(t *testing.T) {
	const n, iters = 64, 3
	wantA, wantB := flushRef(n, iters)
	res, err := Run(flushProg(n, iters), Options{Machine: config.Default(), Backend: MessagePassing})
	if err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(res.ArrayData("a"), wantA); d > 1e-12 {
		t.Fatalf("mp a diff %g", d)
	}
	if d := maxAbsDiff(res.ArrayData("b"), wantB); d > 1e-12 {
		t.Fatalf("mp b diff %g", d)
	}
}
