package runtime

import (
	"fmt"
	"math"

	"hpfdsm/internal/compiler"
	"hpfdsm/internal/ir"
	"hpfdsm/internal/sim"
)

// This file is the executor's compiled fast path. The tree-walking
// interpreter in eval.go resolves every loop variable through a
// map[string]int environment and every subscript through Layout.Addr —
// per shared-memory access, in the innermost loop of the simulation.
// Here each parallel loop (or reduction) is compiled once per run into
// slot-indexed form: loop variables, inner-reduction variables, and
// outer symbols live in a flat []int frame; affine subscripts fold into
// a single linearized byte-address expression over those slots; scalar
// reads resolve to float slots refreshed once per loop instance (the
// body cannot assign scalars, so they are loop-invariant). Loops the
// compiler cannot handle (indirect references) fall back to the
// interpreter unchanged.
//
// The compiled path preserves the interpreter's evaluation order
// exactly — RHS before LHS address, left operand before right, inner
// reductions low to high — so the simulated fault sequence, and with it
// every statistic, is bit-identical.

// fmach is the per-instance machine state of a compiled loop.
type fmach struct {
	e    *exec
	p    *sim.Proc
	vals []int     // slot-indexed integer variables
	fv   []float64 // slot-indexed loop-invariant scalars
}

// fexpr is a compiled floating-point expression.
type fexpr func(m *fmach) float64

// affC is a compiled affine expression: c + Σ coef*vals[slot].
type affC struct {
	c     int
	terms []affTerm
}

type affTerm struct{ slot, coef int }

func (a affC) eval(vals []int) int {
	v := a.c
	for _, t := range a.terms {
		v += t.coef * vals[t.slot]
	}
	return v
}

// addTerm merges a term into the expression, combining slots.
func (a *affC) addTerm(slot, coef int) {
	for i := range a.terms {
		if a.terms[i].slot == slot {
			a.terms[i].coef += coef
			return
		}
	}
	a.terms = append(a.terms, affTerm{slot, coef})
}

// faddr is a compiled array-element address: the linearized affine
// byte address plus the array's segment bounds as a safety net (the
// interpreter's per-dimension range check collapses to one interval
// test; a subscript error still faults the run, with the array named).
type faddr struct {
	a         affC
	base, end int
	name      string
}

func (f faddr) addr(vals []int) int {
	ad := f.a.eval(vals)
	if ad < f.base || ad >= f.end {
		panic(fmt.Sprintf("runtime: compiled subscript for %s out of bounds: addr %#x not in [%#x,%#x)",
			f.name, ad, f.base, f.end))
	}
	return ad
}

// fidx is one compiled nest index.
type fidx struct {
	name   string
	slot   int
	lo, hi affC
	step   int
}

// fassign is one compiled body assignment.
type fassign struct {
	lhs faddr
	rhs fexpr
}

// fvarBind maps an instance-setup source (env symbol or scalar) to its
// slot.
type fvarBind struct {
	slot int
	name string
}

// fastLoop is one compiled loop nest. ok=false marks a nest the
// compiler declined (it stays on the interpreter).
type fastLoop struct {
	ok      bool
	nvals   int
	nfv     int
	outerI  []fvarBind // env-sourced integer slots, refreshed per instance
	outerF  []fvarBind // scalar-sourced float slots, refreshed per instance
	idx     []fidx     // nest indexes, same order as the IR (0 fastest)
	assigns []fassign  // parallel-loop body
	expr    fexpr      // reduction body
	mp      bool       // message-passing backend: unchecked private memory
}

// fcomp is the compile-time context: variable-name → slot bindings.
type fcomp struct {
	e      *exec
	slots  map[string]int
	n      int
	fslots map[string]int
	nf     int
	outerI []fvarBind
	outerF []fvarBind
	ok     bool
}

// bind registers a loop-bound variable (nest or inner-reduction),
// shadowing any outer binding; pop restores it.
func (fc *fcomp) bind(name string) (slot, prev int, had bool) {
	prev, had = fc.slots[name]
	slot = fc.n
	fc.n++
	fc.slots[name] = slot
	return
}

func (fc *fcomp) pop(name string, prev int, had bool) {
	if had {
		fc.slots[name] = prev
	} else {
		delete(fc.slots, name)
	}
}

// slotOf resolves a variable: loop-bound slots win; anything else is an
// outer symbol resolved from the env at instance setup.
func (fc *fcomp) slotOf(name string) int {
	if s, ok := fc.slots[name]; ok {
		return s
	}
	s := fc.n
	fc.n++
	fc.slots[name] = s
	fc.outerI = append(fc.outerI, fvarBind{slot: s, name: name})
	return s
}

// fslotOf resolves a scalar to its float slot.
func (fc *fcomp) fslotOf(name string) int {
	if s, ok := fc.fslots[name]; ok {
		return s
	}
	s := fc.nf
	fc.nf++
	fc.fslots[name] = s
	fc.outerF = append(fc.outerF, fvarBind{slot: s, name: name})
	return s
}

func (fc *fcomp) aff(a ir.AffExpr) affC {
	out := affC{c: a.Const}
	for _, t := range a.Terms {
		out.addTerm(fc.slotOf(t.Var), t.Coef)
	}
	return out
}

// addr linearizes an affine array reference into one byte-address
// affine expression (column-major, 1-based indices).
func (fc *fcomp) addr(r ir.ArrayRef) faddr {
	lay := fc.e.layouts[r.Array]
	acc := affC{c: lay.Base}
	stride := lay.ElemSize
	for d, s := range r.Subs {
		acc.c += (s.Const - 1) * stride
		for _, t := range s.Terms {
			acc.addTerm(fc.slotOf(t.Var), t.Coef*stride)
		}
		stride *= lay.Extents[d]
	}
	return faddr{a: acc, base: lay.Base, end: lay.Base + lay.SizeBytes(), name: r.Array.Name}
}

func (fc *fcomp) expr(x ir.Expr) fexpr {
	switch t := x.(type) {
	case ir.Num:
		v := t.V
		return func(*fmach) float64 { return v }
	case ir.ScalarRef:
		s := fc.fslotOf(t.Name)
		return func(m *fmach) float64 { return m.fv[s] }
	case ir.IdxVal:
		s := fc.slotOf(t.Name)
		return func(m *fmach) float64 { return float64(m.vals[s]) }
	case ir.ArrayRef:
		ad := fc.addr(t)
		if fc.e.mp != nil {
			return func(m *fmach) float64 { return m.e.n.Mem.ReadF64(ad.addr(m.vals)) }
		}
		return func(m *fmach) float64 { return m.e.n.LoadF64(m.p, ad.addr(m.vals)) }
	case ir.Bin:
		l, r := fc.expr(t.L), fc.expr(t.R)
		switch t.Op {
		case ir.Add:
			return func(m *fmach) float64 { return l(m) + r(m) }
		case ir.Sub:
			return func(m *fmach) float64 { return l(m) - r(m) }
		case ir.Mul:
			return func(m *fmach) float64 { return l(m) * r(m) }
		case ir.Div:
			return func(m *fmach) float64 { return l(m) / r(m) }
		}
		fc.ok = false
		return nil
	case ir.Call:
		return fc.call(t)
	case ir.InnerRed:
		slot, prev, had := fc.bind(t.Var)
		lo, hi := fc.aff(t.Lo), fc.aff(t.Hi)
		body := fc.expr(t.Body)
		fc.pop(t.Var, prev, had)
		if body == nil {
			return nil
		}
		op := t.Op
		return func(m *fmach) float64 {
			l, h := lo.eval(m.vals), hi.eval(m.vals)
			acc := 0.0
			seen := false
			for v := l; v <= h; v++ {
				m.vals[slot] = v
				val := body(m)
				if !seen {
					acc, seen = val, true
				} else {
					acc = redCombine(op, acc, val)
				}
			}
			return acc
		}
	default: // ir.Indirect and anything new: interpreter handles it
		fc.ok = false
		return nil
	}
}

func (fc *fcomp) call(t ir.Call) fexpr {
	args := make([]fexpr, len(t.Args))
	for i, a := range t.Args {
		args[i] = fc.expr(a)
		if args[i] == nil {
			return nil
		}
	}
	a0 := args[0]
	switch t.Fn {
	case "SQRT":
		return func(m *fmach) float64 { return math.Sqrt(a0(m)) }
	case "ABS":
		return func(m *fmach) float64 { return math.Abs(a0(m)) }
	case "EXP":
		return func(m *fmach) float64 { return math.Exp(a0(m)) }
	case "SIN":
		return func(m *fmach) float64 { return math.Sin(a0(m)) }
	case "COS":
		return func(m *fmach) float64 { return math.Cos(a0(m)) }
	}
	if len(args) < 2 {
		fc.ok = false
		return nil
	}
	a1 := args[1]
	switch t.Fn {
	case "MIN":
		return func(m *fmach) float64 { return math.Min(a0(m), a1(m)) }
	case "MAX":
		return func(m *fmach) float64 { return math.Max(a0(m), a1(m)) }
	case "MOD":
		return func(m *fmach) float64 { return math.Mod(a0(m), a1(m)) }
	}
	fc.ok = false
	return nil
}

// compileNest compiles a loop nest: body for parallel loops, expr for
// reductions (exactly one is non-nil).
func compileNest(e *exec, indexes []ir.Index, body []*ir.Assign, expr ir.Expr) *fastLoop {
	fc := &fcomp{e: e, slots: map[string]int{}, fslots: map[string]int{}, ok: true}
	fl := &fastLoop{mp: e.mp != nil}
	for _, ix := range indexes {
		slot, _, _ := fc.bind(ix.Var)
		fl.idx = append(fl.idx, fidx{name: ix.Var, slot: slot, step: ix.StepOr1()})
	}
	for i, ix := range indexes {
		fl.idx[i].lo = fc.aff(ix.Lo)
		fl.idx[i].hi = fc.aff(ix.Hi)
	}
	for _, as := range body {
		rhs := fc.expr(as.RHS)
		if rhs == nil {
			return &fastLoop{}
		}
		fl.assigns = append(fl.assigns, fassign{lhs: fc.addr(as.LHS), rhs: rhs})
	}
	if expr != nil {
		fl.expr = fc.expr(expr)
	}
	if !fc.ok {
		return &fastLoop{}
	}
	fl.ok = true
	fl.nvals = fc.n
	fl.nfv = fc.nf
	fl.outerI = fc.outerI
	fl.outerF = fc.outerF
	return fl
}

// fastOf returns (compiling and caching on first use) the compiled form
// of a loop, or nil when the loop must stay on the interpreter.
func (e *exec) fastOf(key any, indexes []ir.Index, body []*ir.Assign, expr ir.Expr) *fastLoop {
	fl, ok := e.fast[key]
	if !ok {
		fl = compileNest(e, indexes, body, expr)
		e.fast[key] = fl
	}
	if !fl.ok {
		return nil
	}
	return fl
}

// newMach builds the per-instance frame and resolves the outer symbols
// and scalars, with the interpreter's unbound-variable semantics.
func (fl *fastLoop) newMach(e *exec, p *sim.Proc) *fmach {
	m := &fmach{e: e, p: p, vals: make([]int, fl.nvals), fv: make([]float64, fl.nfv)}
	for _, ov := range fl.outerI {
		v, ok := e.env[ov.name]
		if !ok {
			panic(fmt.Sprintf("ir: unbound variable %q in affine expression", ov.name))
		}
		m.vals[ov.slot] = v
	}
	for _, ov := range fl.outerF {
		v, ok := e.scalars[ov.name]
		if !ok {
			panic(fmt.Sprintf("runtime: undefined scalar %q", ov.name))
		}
		m.fv[ov.slot] = v
	}
	return m
}

// iterate walks the compiled nest (index 0 fastest) calling elem per
// element — the slot-indexed mirror of the interpreter's nest.
//
//simlint:hotpath
func (fl *fastLoop) iterate(m *fmach, pt *compiler.Partition, elem func()) {
	e := m.e
	var nest func(d int)
	//simlint:ignore hotalloc -- one recursive-nest closure per loop instance (not per element); Go cannot express the self-referential nest without a closure
	nest = func(d int) {
		if d < 0 {
			elem()
			return
		}
		ix := &fl.idx[d]
		step := ix.step
		if ix.name == pt.DistVar && !pt.Single {
			lo := ix.lo.eval(m.vals)
			for _, r := range pt.Ranges[e.n.ID] {
				start := r[0]
				if off := (start - lo) % step; off != 0 {
					start += step - off
				}
				for v := start; v <= r[1]; v += step {
					m.vals[ix.slot] = v
					nest(d - 1)
				}
			}
			return
		}
		lo, hi := ix.lo.eval(m.vals), ix.hi.eval(m.vals)
		for v := lo; v <= hi; v += step {
			m.vals[ix.slot] = v
			nest(d - 1)
		}
	}
	if pt.Single && pt.Exec != e.n.ID {
		return
	}
	nest(len(fl.idx) - 1)
}

// runBody executes a compiled parallel-loop instance.
//
//simlint:hotpath
func (fl *fastLoop) runBody(m *fmach, pt *compiler.Partition, elemCost sim.Time) {
	e := m.e
	//simlint:ignore hotalloc -- one element-body closure per loop instance (not per element); the per-element path inside it is closure- and alloc-free
	fl.iterate(m, pt, func() {
		e.n.Compute(elemCost)
		for i := range fl.assigns {
			as := &fl.assigns[i]
			v := as.rhs(m)
			ad := as.lhs.addr(m.vals)
			if fl.mp {
				e.n.Mem.WriteF64(ad, v)
			} else {
				e.n.StoreF64(m.p, ad, v)
			}
		}
	})
}

// runReduce executes a compiled reduction instance, returning this
// node's partial value (seeded by the first element, like the
// interpreter).
//
//simlint:hotpath
func (fl *fastLoop) runReduce(m *fmach, pt *compiler.Partition, elemCost sim.Time, op ir.RedOp) (float64, bool) {
	e := m.e
	partial := redIdentity(op)
	seen := false
	//simlint:ignore hotalloc -- one reduction-body closure per loop instance (not per element)
	fl.iterate(m, pt, func() {
		e.n.Compute(elemCost)
		v := fl.expr(m)
		if !seen {
			partial, seen = v, true
		} else {
			partial = redCombine(op, partial, v)
		}
	})
	return partial, seen
}
