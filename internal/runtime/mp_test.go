package runtime

import (
	"testing"

	"hpfdsm/internal/compiler"
	"hpfdsm/internal/config"
)

func TestMPJacobiCorrect(t *testing.T) {
	const n, iters = 64, 4
	res, err := Run(jacobiProg(n, iters), Options{Machine: config.Default(), Backend: MessagePassing})
	if err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(res.ArrayData("a"), jacobiRef(n, iters)); d > 1e-12 {
		t.Fatalf("MP jacobi diff %g", d)
	}
	if res.Stats.TotalMisses() != 0 {
		t.Fatalf("MP run took %d access faults; private memories cannot fault", res.Stats.TotalMisses())
	}
	if res.Stats.TotalMessages() == 0 {
		t.Fatal("MP run sent no messages")
	}
}

func TestMPReductions(t *testing.T) {
	res, err := Run(reduceProg(100), Options{Machine: config.Default(), Backend: MessagePassing})
	if err != nil {
		t.Fatal(err)
	}
	if res.Scalars["s"] != 5050 {
		t.Fatalf("MP sum = %v", res.Scalars["s"])
	}
}

func TestMPSendsExactBytes(t *testing.T) {
	// MP moves section bytes + headers; no coherence traffic. For
	// jacobi boundary exchange: 2*(np-1) columns of (n-2) rows per
	// iteration, plus nothing else.
	const n, iters = 64, 3
	res, err := Run(jacobiProg(n, iters), Options{Machine: config.Default(), Backend: MessagePassing})
	if err != nil {
		t.Fatal(err)
	}
	// 2*(np-1)=14 transfers of 62*8=496 B per sweep loop; copy loop has
	// no comm; reductions none. Plus barrier-free: messages = data only
	// + final-barrier traffic.
	mc := config.Default()
	wantData := int64(iters * 2 * (mc.Nodes - 1) * (n - 2) * 8)
	gotData := res.Stats.TotalBytes() - int64(mc.MsgHeader)*res.Stats.TotalMessages()
	// Allow the final barrier's zero-ish payloads and reduce traffic.
	if gotData < wantData || gotData > wantData+1024 {
		t.Fatalf("MP payload bytes = %d, want ~%d", gotData, wantData)
	}
}

func TestMPDeterministic(t *testing.T) {
	r1, err := Run(jacobiProg(48, 3), Options{Machine: config.Default(), Backend: MessagePassing})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(jacobiProg(48, 3), Options{Machine: config.Default(), Backend: MessagePassing})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Elapsed != r2.Elapsed || r1.Stats.TotalMessages() != r2.Stats.TotalMessages() {
		t.Fatal("MP runs not deterministic")
	}
}

func TestMPFasterThanUnoptimizedSharedMemory(t *testing.T) {
	// The paper's premise: explicit message passing beats *unoptimized*
	// shared memory on regular codes (Figure 3 shows sm-unopt below mp
	// everywhere).
	const n, iters = 128, 5
	sm, err := Run(jacobiProg(n, iters), Options{Machine: config.Default(), Opt: compiler.OptNone})
	if err != nil {
		t.Fatal(err)
	}
	mp, err := Run(jacobiProg(n, iters), Options{Machine: config.Default(), Backend: MessagePassing})
	if err != nil {
		t.Fatal(err)
	}
	if mp.Elapsed >= sm.Elapsed {
		t.Fatalf("MP (%.2fms) not faster than unoptimized SM (%.2fms)", ms(mp.Elapsed), ms(sm.Elapsed))
	}
}
