package runtime

import (
	"testing"

	"hpfdsm/internal/apps"
	"hpfdsm/internal/compiler"
	"hpfdsm/internal/config"
	"hpfdsm/internal/sim"
)

// crashRun executes one app with the given fault config (crash specs
// included) at the given opt level, with the barrier audit armed.
func crashRun(t *testing.T, a *apps.App, f config.Faults, lvl compiler.Level) *Result {
	t.Helper()
	prog, err := a.Program(a.ScaledParams)
	if err != nil {
		t.Fatal(err)
	}
	mc := config.Default().WithNodes(4).WithFaults(f)
	res, err := Run(prog, Options{Machine: mc, Opt: lvl, Check: true})
	if err != nil {
		t.Fatalf("%s under faults %+v: %v", a.Name, f, err)
	}
	return res
}

// TestCrashRecoveryMatchesFaultFree kills a node at a barrier epoch and
// demands the recovered run's final arrays be bit-identical to the
// fault-free run: barrier-consistent rollback plus ghost replay must be
// invisible in the data.
func TestCrashRecoveryMatchesFaultFree(t *testing.T) {
	a := apps.Jacobi()
	ref := crashRun(t, a, config.Faults{}, compiler.OptRTElim)
	refArrays := map[string][]float64{}
	for _, name := range a.CheckArrays {
		refArrays[name] = ref.ArrayData(name)
	}

	f := config.Faults{Crashes: []config.CrashSpec{{Node: 2, Epoch: 5}}}
	res := crashRun(t, a, f, compiler.OptRTElim)
	if res.CrashesDetected != 1 || res.Recoveries != 1 {
		t.Fatalf("expected exactly one detected crash and recovery, got %d/%d",
			res.CrashesDetected, res.Recoveries)
	}
	if res.CheckpointsTaken == 0 || res.CheckpointBytes == 0 {
		t.Fatalf("recovery ran without checkpoints (taken=%d bytes=%d)",
			res.CheckpointsTaken, res.CheckpointBytes)
	}
	for _, name := range a.CheckArrays {
		got, want := res.ArrayData(name), refArrays[name]
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("%s[%d] = %v after recovery, want %v (bit-identical)",
					name, k, got[k], want[k])
			}
		}
	}
}

// TestCrashAtTimeRecovers triggers the crash by simulated time instead
// of epoch, exercising the scheduled-injection path and the
// retransmit-exhaustion detector under mid-epoch death.
func TestCrashAtTimeRecovers(t *testing.T) {
	a := apps.Jacobi()
	ref := crashRun(t, a, config.Faults{}, compiler.OptBulk)
	want := ref.ArrayData(a.CheckArrays[0])

	f := config.Faults{Crashes: []config.CrashSpec{{Node: 1, At: 2 * sim.Millisecond}}}
	res := crashRun(t, a, f, compiler.OptBulk)
	if res.Recoveries != 1 {
		t.Fatalf("expected one recovery, got %d", res.Recoveries)
	}
	got := res.ArrayData(a.CheckArrays[0])
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("%s[%d] = %v after timed-crash recovery, want %v",
				a.CheckArrays[0], k, got[k], want[k])
		}
	}
}

// TestCrashRunsAreDeterministic reruns an identical crash configuration
// and demands the same elapsed time and the same recovery accounting.
func TestCrashRunsAreDeterministic(t *testing.T) {
	a := apps.Jacobi()
	f := config.Faults{Crashes: []config.CrashSpec{{Node: 3, Epoch: 7}}}
	r1 := crashRun(t, a, f, compiler.OptRTElim)
	r2 := crashRun(t, a, f, compiler.OptRTElim)
	if r1.Elapsed != r2.Elapsed {
		t.Fatalf("elapsed %d vs %d: crash recovery not deterministic", r1.Elapsed, r2.Elapsed)
	}
	if r1.CheckpointsTaken != r2.CheckpointsTaken || r1.CheckpointBytes != r2.CheckpointBytes ||
		r1.RecoveryTime != r2.RecoveryTime {
		t.Fatalf("recovery accounting differs between identical runs: %d/%d/%d vs %d/%d/%d",
			r1.CheckpointsTaken, r1.CheckpointBytes, r1.RecoveryTime,
			r2.CheckpointsTaken, r2.CheckpointBytes, r2.RecoveryTime)
	}
}

// TestCheckpointOnlyRunIsInert pins the zero-overhead requirement:
// checkpointing enabled with no crashes configured must not change the
// simulated schedule at all — capture happens outside virtual time.
func TestCheckpointOnlyRunIsInert(t *testing.T) {
	a := apps.Jacobi()
	prog, err := a.Program(a.ScaledParams)
	if err != nil {
		t.Fatal(err)
	}
	mc := config.Default().WithNodes(4)
	base, err := Run(prog, Options{Machine: mc, Opt: compiler.OptRTElim})
	if err != nil {
		t.Fatal(err)
	}
	ck, err := Run(prog, Options{Machine: mc, Opt: compiler.OptRTElim, Checkpoint: true})
	if err != nil {
		t.Fatal(err)
	}
	if ck.CheckpointsTaken == 0 {
		t.Fatal("Checkpoint option did not capture anything")
	}
	if base.Elapsed != ck.Elapsed ||
		base.Stats.TotalMessages() != ck.Stats.TotalMessages() ||
		base.Stats.TotalMisses() != ck.Stats.TotalMisses() {
		t.Fatalf("checkpointing perturbed the run: elapsed %d vs %d, msgs %d vs %d",
			base.Elapsed, ck.Elapsed, base.Stats.TotalMessages(), ck.Stats.TotalMessages())
	}
	want := base.ArrayData(a.CheckArrays[0])
	got := ck.ArrayData(a.CheckArrays[0])
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("%s[%d] differs with checkpointing on", a.CheckArrays[0], k)
		}
	}
}

// TestCrashRejectedOnMessagePassing: the recovery protocol is a
// shared-memory facility; the MP backend must refuse crash plans.
func TestCrashRejectedOnMessagePassing(t *testing.T) {
	a := apps.Jacobi()
	prog, err := a.Program(a.ScaledParams)
	if err != nil {
		t.Fatal(err)
	}
	mc := config.Default().WithNodes(4).WithFaults(
		config.Faults{Crashes: []config.CrashSpec{{Node: 1, Epoch: 2}}})
	if _, err := Run(prog, Options{Machine: mc, Opt: compiler.OptRTElim, Backend: MessagePassing}); err == nil {
		t.Fatal("crash injection on the message-passing backend did not error")
	}
}

// TestCrashNodeZeroRejected: node 0 hosts the synchronization master
// and is outside the failure model.
func TestCrashNodeZeroRejected(t *testing.T) {
	mc := config.Default().WithNodes(4).WithFaults(
		config.Faults{Crashes: []config.CrashSpec{{Node: 0, Epoch: 2}}})
	if err := mc.Validate(); err == nil {
		t.Fatal("crash spec for node 0 passed validation")
	}
}
