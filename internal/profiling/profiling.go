// Package profiling wires the standard pprof/trace escape hatches
// into the CLIs. Every performance fix in this repository started
// from a profile; -cpuprofile/-memprofile/-trace keep that loop one
// flag away.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// Start begins CPU profiling and execution tracing according to the
// (possibly empty) file names, and returns a stop function that ends
// them and writes the heap profile. Callers must run stop before
// exiting, including on the error path.
func Start(cpuFile, memFile, traceFile string) (stop func() error, err error) {
	var cpu, tr *os.File
	if cpuFile != "" {
		if cpu, err = os.Create(cpuFile); err != nil {
			return nil, err
		}
		if err = pprof.StartCPUProfile(cpu); err != nil {
			cpu.Close()
			return nil, fmt.Errorf("start cpu profile: %w", err)
		}
	}
	if traceFile != "" {
		if tr, err = os.Create(traceFile); err != nil {
			if cpu != nil {
				pprof.StopCPUProfile()
				cpu.Close()
			}
			return nil, err
		}
		if err = trace.Start(tr); err != nil {
			if cpu != nil {
				pprof.StopCPUProfile()
				cpu.Close()
			}
			tr.Close()
			return nil, fmt.Errorf("start trace: %w", err)
		}
	}
	return func() error {
		var firstErr error
		if cpu != nil {
			pprof.StopCPUProfile()
			firstErr = cpu.Close()
		}
		if tr != nil {
			trace.Stop()
			if err := tr.Close(); firstErr == nil {
				firstErr = err
			}
		}
		if memFile != "" {
			f, err := os.Create(memFile)
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
			} else {
				runtime.GC() // materialize the final live set
				if err := pprof.WriteHeapProfile(f); firstErr == nil {
					firstErr = err
				}
				if err := f.Close(); firstErr == nil {
					firstErr = err
				}
			}
		}
		return firstErr
	}, nil
}
