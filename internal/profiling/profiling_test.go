package profiling

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStartNoopWhenDisabled(t *testing.T) {
	stop, err := Start("", "", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}

func TestStartCreatesAllFiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	trc := filepath.Join(dir, "exec.trace")
	stop, err := Start(cpu, mem, trc)
	if err != nil {
		t.Fatal(err)
	}
	// Generate a little work so the profiles are non-degenerate.
	sum := 0
	for i := 0; i < 1_000_000; i++ {
		sum += i
	}
	_ = sum
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{cpu, mem, trc} {
		st, err := os.Stat(f)
		if err != nil {
			t.Errorf("%s not created: %v", f, err)
			continue
		}
		if st.Size() == 0 && f != cpu { // a quick CPU profile may be header-only but must exist
			t.Errorf("%s is empty", f)
		}
	}
}

func TestStartBadCPUPath(t *testing.T) {
	dir := t.TempDir()
	_, err := Start(filepath.Join(dir, "no-such-dir", "cpu.pprof"), "", "")
	if err == nil {
		t.Fatal("expected error for uncreatable cpu profile path")
	}
}

// TestStartBadTracePathStopsCPUProfile exercises the cleanup path: when
// the trace file cannot be created after CPU profiling already started,
// Start must stop the profiler (or the next Start would fail).
func TestStartBadTracePathStopsCPUProfile(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	_, err := Start(cpu, "", filepath.Join(dir, "no-such-dir", "exec.trace"))
	if err == nil {
		t.Fatal("expected error for uncreatable trace path")
	}
	// CPU profiling must have been stopped: starting again succeeds.
	stop, err := Start(filepath.Join(dir, "cpu2.pprof"), "", "")
	if err != nil {
		t.Fatalf("profiler left running after failed Start: %v", err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}

func TestStopReportsBadMemPath(t *testing.T) {
	dir := t.TempDir()
	stop, err := Start("", filepath.Join(dir, "no-such-dir", "mem.pprof"), "")
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err == nil {
		t.Fatal("stop did not report the uncreatable heap profile path")
	}
}
