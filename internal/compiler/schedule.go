package compiler

import (
	"fmt"

	"hpfdsm/internal/ir"
	"hpfdsm/internal/protocol"
	"hpfdsm/internal/sections"
)

// Transfer is one producer->consumer data movement: an array section
// whose block-aligned interior goes under compiler control. Elements
// outside Blocks (the section's edges within partially covered
// coherence blocks) remain with the default protocol.
type Transfer struct {
	Array     *ir.Array
	Sender    int
	Receiver  int
	Sec       sections.Section
	Blocks    []protocol.BlockRun
	NumBlocks int
	EdgeBytes int // section bytes left to the default protocol
	// EdgeBlocks are the coherence blocks the section touches but does
	// not fully cover: they stay with the default protocol, and are
	// the targets of the advisory edge-prefetch extension.
	EdgeBlocks []protocol.BlockRun
	Redundant  bool
	// Key identifies the transfer's data content (array section ->
	// receiver) for PRE's replicated delivered-set; precomputed here so
	// the runtime's per-instance filter allocates nothing. Schedules are
	// memoized, so the formatting cost is paid once per valuation.
	Key string
}

func (t Transfer) String() string {
	return fmt.Sprintf("%s%v %d->%d (%d blocks, %dB edge)",
		t.Array.Name, t.Sec, t.Sender, t.Receiver, t.NumBlocks, t.EdgeBytes)
}

// Schedule is a loop's instantiated communication: Reads execute
// before the loop (owner sends to readers), Writes after it (writers
// flush to owners). ReadBytes and WriteBytes are the phase's expected
// compiler-controlled traffic matrices — [sender][receiver] bytes,
// summed over every transfer's block-aligned interior — computed from
// the same section arithmetic that produced the transfers; ReadMsgs
// and WriteMsgs count the bulk wire messages that traffic would take
// (one per contiguous block run). The runtime consults them (via Mode)
// to pick each destination's transport: a pair whose phase collapses
// to one wire message gains nothing from aggregation machinery, while
// a pair whose epoch total clears the machine's threshold amortizes
// one carrier header over many segments.
type Schedule struct {
	Reads  []Transfer
	Writes []Transfer

	ReadBytes  [][]int64
	WriteBytes [][]int64
	ReadMsgs   [][]int64
	WriteMsgs  [][]int64
}

// Mode picks the transport for one transfer of this schedule, given
// the optimization level and the machine's aggregation threshold
// (bytes) and block size. Below OptBulk every block travels alone
// (the paper's unoptimized send). At OptBulk and above, a (sender,
// receiver) pair whose expected epoch traffic reaches the threshold
// AND spans at least two wire messages aggregates through the
// coalescing scheduler — aggregation only ever wins by merging
// messages, so a pair that already collapses to one bulk message is
// sent as exactly that message; a multi-message pair below the
// threshold uses per-transfer bulk messages; a single-block pair
// stays eager — the bulk path's chunking would produce the identical
// wire message.
func (s *Schedule) Mode(level Level, sender, receiver int, write bool, blockSize, threshold int) protocol.SendMode {
	if level < OptBulk {
		return protocol.SendEager
	}
	bmat, mmat := s.ReadBytes, s.ReadMsgs
	if write {
		bmat, mmat = s.WriteBytes, s.WriteMsgs
	}
	var bytes, msgs int64
	if sender < len(bmat) && receiver < len(bmat[sender]) {
		bytes = bmat[sender][receiver]
		msgs = mmat[sender][receiver]
	}
	switch {
	case bytes <= int64(blockSize):
		return protocol.SendEager
	case msgs >= 2 && bytes >= int64(threshold):
		return protocol.SendAggregate
	default:
		return protocol.SendBulk
	}
}

// ReadsBySender returns the read transfers originating at node p.
func (s *Schedule) ReadsBySender(p int) []Transfer { return filterBy(s.Reads, p, true) }

// ReadsByReceiver returns the read transfers destined for node p.
func (s *Schedule) ReadsByReceiver(p int) []Transfer { return filterBy(s.Reads, p, false) }

// WritesBySender returns the flush transfers originating at node p.
func (s *Schedule) WritesBySender(p int) []Transfer { return filterBy(s.Writes, p, true) }

// WritesByReceiver returns the flush transfers destined for node p.
func (s *Schedule) WritesByReceiver(p int) []Transfer { return filterBy(s.Writes, p, false) }

func filterBy(ts []Transfer, p int, sender bool) []Transfer {
	var out []Transfer
	for _, t := range ts {
		if sender && t.Sender == p || !sender && t.Receiver == p {
			out = append(out, t)
		}
	}
	return out
}

// Schedule instantiates (and memoizes) the communication schedule of a
// loop rule under a symbol environment. key identifies the loop.
func (a *Analysis) Schedule(key any, rule *LoopRule, env map[string]int) *Schedule {
	ck := envKey(key, 1, rule.UsedSym, env)
	a.mu.RLock()
	s, ok := a.schedCache[ck]
	a.mu.RUnlock()
	if ok {
		return s
	}
	s = a.buildSchedule(key, rule, env)
	a.mu.Lock()
	if s2, ok := a.schedCache[ck]; ok {
		s = s2
	} else {
		a.schedCache[ck] = s
	}
	a.mu.Unlock()
	return s
}

func (a *Analysis) buildSchedule(key any, rule *LoopRule, env map[string]int) *Schedule {
	pt := a.Partition(key, rule, env)
	s := &Schedule{}
	for _, rr := range rule.Reads {
		s.Reads = append(s.Reads, a.refTransfers(rule, rr, pt, env)...)
	}
	for _, rr := range rule.Writes {
		s.Writes = append(s.Writes, a.refTransfers(rule, rr, pt, env)...)
	}
	s.ReadBytes, s.ReadMsgs = a.trafficMatrices(s.Reads)
	s.WriteBytes, s.WriteMsgs = a.trafficMatrices(s.Writes)
	return s
}

// trafficMatrices sums each transfer list's block-aligned interiors
// into [sender][receiver] matrices: total bytes, and the number of
// bulk wire messages that traffic takes (one per contiguous block
// run). Schedules are memoized, so the cost is paid once per (loop,
// valuation).
func (a *Analysis) trafficMatrices(ts []Transfer) (bytes, msgs [][]int64) {
	bytes = make([][]int64, a.NP)
	msgs = make([][]int64, a.NP)
	cells := make([]int64, 2*a.NP*a.NP)
	for i := range bytes {
		bytes[i] = cells[i*a.NP : (i+1)*a.NP]
		msgs[i] = cells[(a.NP+i)*a.NP : (a.NP+i+1)*a.NP]
	}
	for _, t := range ts {
		bytes[t.Sender][t.Receiver] += int64(t.NumBlocks) * int64(a.BlockSize)
		msgs[t.Sender][t.Receiver] += int64(len(t.Blocks))
	}
	return bytes, msgs
}

// VarRanges builds the value ranges of all loop and inner-reduction
// variables of a rule under a symbol environment — the bounding
// information row-section computation uses, also consumed by the static
// verifier's race analysis.
func (a *Analysis) VarRanges(rule *LoopRule, env map[string]int) map[string][2]int {
	ranges := map[string][2]int{}
	for _, ix := range rule.Indexes {
		ranges[ix.Var] = [2]int{ix.Lo.Eval(env), ix.Hi.Eval(env)}
	}
	for v, rg := range rule.inner {
		lo, _ := EvalRange(rg.lo, ranges, env)
		_, hi := EvalRange(rg.hi, ranges, env)
		ranges[v] = [2]int{lo, hi}
	}
	return ranges
}

// EvalRange bounds an affine expression over variable ranges: variables
// in ranges contribute their interval, others are looked up in env.
func EvalRange(e ir.AffExpr, ranges map[string][2]int, env map[string]int) (int, int) {
	lo, hi := e.Const, e.Const
	for _, t := range e.Terms {
		if r, ok := ranges[t.Var]; ok {
			if t.Coef > 0 {
				lo += t.Coef * r[0]
				hi += t.Coef * r[1]
			} else {
				lo += t.Coef * r[1]
				hi += t.Coef * r[0]
			}
			continue
		}
		v, ok := env[t.Var]
		if !ok {
			panic(fmt.Sprintf("compiler: unbound variable %q in %v", t.Var, e))
		}
		lo += t.Coef * v
		hi += t.Coef * v
	}
	return lo, hi
}

// refTransfers instantiates one reference rule into concrete transfers.
func (a *Analysis) refTransfers(rule *LoopRule, rr *RefRule, pt *Partition, env map[string]int) []Transfer {
	arr := rr.Ref.Array
	d := a.dists[arr]
	ranges := a.VarRanges(rule, env)

	// Row section: dimensions 0..rank-2 bounded over the iteration
	// space and clipped to the array extents.
	rows := make([]sections.Dim, arr.Rank()-1)
	for dim := 0; dim < arr.Rank()-1; dim++ {
		lo, hi := EvalRange(rr.Ref.Subs[dim], ranges, env)
		if lo < 1 {
			lo = 1
		}
		if hi > arr.Extents[dim] {
			hi = arr.Extents[dim]
		}
		if lo > hi {
			return nil
		}
		rows[dim] = sections.Dim{Lo: lo, Hi: hi}
	}

	emit := func(out []Transfer, from, to, t0, t1 int) []Transfer {
		sec := sections.Section{Dims: append(append([]sections.Dim{}, rows...), sections.Dim{Lo: t0, Hi: t1})}
		return append(out, a.makeTransfer(arr, from, to, sec, rr.Redundant))
	}

	// groupByOwner walks columns [t0,t1], grouping runs with the same
	// owner, and emits a transfer for each run not owned by p.
	groupByOwner := func(out []Transfer, p, t0, t1 int, pIsReader bool) []Transfer {
		if t0 < 1 {
			t0 = 1
		}
		if t1 > d.Extent {
			t1 = d.Extent
		}
		for t := t0; t <= t1; {
			o := d.Owner(t)
			end := t
			for end+1 <= t1 && d.Owner(end+1) == o {
				end++
			}
			if o != p {
				if pIsReader {
					out = emit(out, o, p, t, end)
				} else {
					out = emit(out, p, o, t, end)
				}
			}
			t = end + 1
		}
		return out
	}

	var out []Transfer
	switch rr.Kind {
	case KindShift:
		// A shift reference implies a distributed loop variable, so the
		// partition is never single-processor here.
		c := rr.Rest.Eval(env)
		for p := 0; p < a.NP; p++ {
			for _, jr := range pt.Ranges[p] {
				out = groupByOwner(out, p, jr[0]+c, jr[1]+c, !rr.IsWrite)
			}
		}
	case KindFixed:
		t := rr.Rest.Eval(env)
		if t < 1 || t > d.Extent {
			return nil
		}
		owner := d.Owner(t)
		for p := 0; p < a.NP; p++ {
			if !pt.Executes(p) || p == owner {
				continue
			}
			if rr.IsWrite {
				out = emit(out, p, owner, t, t)
			} else {
				out = emit(out, owner, p, t, t)
			}
		}
	case KindGather:
		rg, ok := ranges[rr.SweepVar]
		if !ok {
			panic(fmt.Sprintf("compiler: gather variable %q has no range", rr.SweepVar))
		}
		c := rr.Rest.Eval(env)
		for p := 0; p < a.NP; p++ {
			if !pt.Executes(p) {
				continue
			}
			out = groupByOwner(out, p, rg[0]+c, rg[1]+c, true)
		}
	default:
		panic("compiler: transfer for local reference")
	}
	return out
}

// makeTransfer linearizes a section and computes its block-aligned
// interior (the shmem_limits shrink).
func (a *Analysis) makeTransfer(arr *ir.Array, from, to int, sec sections.Section, redundant bool) Transfer {
	layout := a.Layouts[arr]
	runs := sections.CoalesceRuns(layout.Runs(sec))
	total := 0
	for _, r := range runs {
		total += r.Bytes
	}
	aligned := sections.BlockAlign(runs, a.BlockSize)
	alignedBytes := 0
	var blocks []protocol.BlockRun
	covered := map[int]bool{}
	for _, br := range sections.RunsToBlocks(aligned, a.BlockSize) {
		blocks = append(blocks, protocol.BlockRun{Start: br[0], N: br[1]})
		alignedBytes += br[1] * a.BlockSize
		for b := br[0]; b < br[0]+br[1]; b++ {
			covered[b] = true
		}
	}
	// Blocks touched but not fully covered: the edges.
	var edges []protocol.BlockRun
	for _, r := range runs {
		for b := r.Addr / a.BlockSize; b*a.BlockSize < r.End(); b++ {
			if covered[b] {
				continue
			}
			covered[b] = true // dedupe across runs
			if k := len(edges) - 1; k >= 0 && edges[k].Start+edges[k].N == b {
				edges[k].N++
			} else {
				edges = append(edges, protocol.BlockRun{Start: b, N: 1})
			}
		}
	}
	return Transfer{
		Array:      arr,
		Sender:     from,
		Receiver:   to,
		Sec:        sec,
		Blocks:     blocks,
		NumBlocks:  alignedBytes / a.BlockSize,
		EdgeBytes:  total - alignedBytes,
		EdgeBlocks: edges,
		Redundant:  redundant,
		Key:        fmt.Sprintf("%s|%v|>%d", arr.Name, sec, to),
	}
}
