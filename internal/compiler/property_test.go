package compiler

import (
	"fmt"
	"math/rand"
	"testing"

	"hpfdsm/internal/distribute"
	"hpfdsm/internal/ir"
	"hpfdsm/internal/sections"
)

// TestPropertyScheduleCoverage generates random 2-D stencil loops over
// random distributions and processor counts and verifies the paper's
// fundamental soundness invariant by brute force: every element a
// processor reads is either owned by it or delivered by some transfer
// addressed to it; and every compiler-controlled block lies inside its
// transfer's section.
func TestPropertyScheduleCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 120; trial++ {
		np := 2 + rng.Intn(7)
		n1 := 8 + rng.Intn(40)
		n2 := 8 + rng.Intn(40)
		kinds := []distribute.Kind{distribute.Block, distribute.Cyclic}
		distA := distribute.Spec{Kind: kinds[rng.Intn(2)]}
		distB := distA // anchor-aligned case most of the time
		if rng.Intn(3) == 0 {
			distB = distribute.Spec{Kind: kinds[rng.Intn(2)]}
		}
		if distA.Kind == distribute.Cyclic || distB.Kind == distribute.Cyclic {
			// Keep cyclic extents comfortably above np.
			if n2 < 2*np {
				n2 = 2 * np
			}
		}
		A := &ir.Array{Name: "a", Extents: []int{n1, n2}, Dist: distA}
		B := &ir.Array{Name: "b", Extents: []int{n1, n2}, Dist: distB}

		di := rng.Intn(3) - 1 // row offset -1..1
		dj := rng.Intn(5) - 2 // column offset -2..2
		lo2 := 1 + rng.Intn(3)
		hi2 := n2 - rng.Intn(3)
		lo1 := 1 + rng.Intn(2)
		hi1 := n1 - rng.Intn(2)
		// Keep subscripts in bounds.
		if lo1+di < 1 {
			lo1 = 1 - di
		}
		if hi1+di > n1 {
			hi1 = n1 - di
		}
		if lo2+dj < 1 {
			lo2 = 1 - dj
		}
		if hi2+dj > n2 {
			hi2 = n2 - dj
		}
		if lo1 > hi1 || lo2 > hi2 {
			continue
		}
		i, j := ir.V("i"), ir.V("j")
		loop := &ir.ParLoop{
			Label:   fmt.Sprintf("rand%d", trial),
			Indexes: []ir.Index{ir.Idx("i", ir.Aff(lo1), ir.Aff(hi1)), ir.Idx("j", ir.Aff(lo2), ir.Aff(hi2))},
			Body: []*ir.Assign{{
				LHS: ir.Ref(A, i, j),
				RHS: ir.Ref(B, i.AddC(di), j.AddC(dj)),
			}},
		}
		prog := &ir.Program{Name: "rand", Params: map[string]int{}, Arrays: []*ir.Array{A, B},
			Body: []ir.Stmt{loop}}
		an, err := New(prog, np, buildLayouts(prog.Arrays), 128)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		rule := an.LoopRuleOf(loop)
		env := map[string]int{}
		pt := an.Partition(loop, rule, env)
		sched := an.Schedule(loop, rule, env)
		dB := an.Dist(B)

		// Brute force: walk the iteration space per processor.
		for p := 0; p < np; p++ {
			var covered []sections.Section
			for _, tr := range sched.Reads {
				if tr.Receiver == p {
					covered = append(covered, tr.Sec)
				}
				if tr.Receiver == tr.Sender {
					t.Fatalf("trial %d: self transfer %v", trial, tr)
				}
			}
			for _, jr := range pt.Ranges[p] {
				for jj := jr[0]; jj <= jr[1]; jj++ {
					ri, rj := lo1+di, jj+dj // representative read row start
					_ = ri
					if rj < 1 || rj > n2 {
						continue
					}
					if dB.Owner(rj) == p {
						continue // owned column: local
					}
					for ii := lo1; ii <= hi1; ii++ {
						found := false
						for _, s := range covered {
							if s.Contains(ii+di, rj) {
								found = true
								break
							}
						}
						if !found {
							t.Fatalf("trial %d (np=%d n=%dx%d dist %v/%v off %d,%d): proc %d reads b(%d,%d) uncovered\nschedule: %v",
								trial, np, n1, n2, distA.Kind, distB.Kind, di, dj, p, ii+di, rj, sched.Reads)
						}
					}
				}
			}
		}

		// Block-alignment invariant: every compiler-controlled block's
		// bytes lie within the linearized section.
		layB := an.Layouts[B]
		for _, tr := range sched.Reads {
			runs := sections.CoalesceRuns(layB.Runs(tr.Sec))
			for _, br := range tr.Blocks {
				lo, hi := br.Start*128, (br.Start+br.N)*128
				inside := false
				for _, r := range runs {
					if lo >= r.Addr && hi <= r.End() {
						inside = true
						break
					}
				}
				if !inside {
					t.Fatalf("trial %d: block run %v of %v outside section runs %v", trial, br, tr, runs)
				}
			}
		}
	}
}

// TestPropertyPartitionCoversLoop checks that the per-processor
// partitions of random loops tile the iteration range exactly.
func TestPropertyPartitionCoversLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 150; trial++ {
		np := 1 + rng.Intn(8)
		n := 4 + rng.Intn(60)
		kinds := []distribute.Kind{distribute.Block, distribute.Cyclic}
		A := &ir.Array{Name: "a", Extents: []int{4, n}, Dist: distribute.Spec{Kind: kinds[rng.Intn(2)]}}
		lo := 1 + rng.Intn(n)
		hi := lo + rng.Intn(n-lo+1)
		i, j := ir.V("i"), ir.V("j")
		loop := &ir.ParLoop{
			Label:   "p",
			Indexes: []ir.Index{ir.Idx("i", ir.Aff(1), ir.Aff(4)), ir.Idx("j", ir.Aff(lo), ir.Aff(hi))},
			Body:    []*ir.Assign{{LHS: ir.Ref(A, i, j), RHS: ir.N(0)}},
		}
		prog := &ir.Program{Name: "p", Params: map[string]int{}, Arrays: []*ir.Array{A},
			Body: []ir.Stmt{loop}}
		an, err := New(prog, np, buildLayouts(prog.Arrays), 128)
		if err != nil {
			t.Fatal(err)
		}
		pt := an.Partition(loop, an.LoopRuleOf(loop), map[string]int{})
		seen := map[int]int{}
		d := an.Dist(A)
		for p := 0; p < np; p++ {
			for _, r := range pt.Ranges[p] {
				for j := r[0]; j <= r[1]; j++ {
					seen[j]++
					if d.Owner(j) != p {
						t.Fatalf("trial %d: j=%d assigned to %d but owned by %d", trial, j, p, d.Owner(j))
					}
				}
			}
		}
		for j := lo; j <= hi; j++ {
			if seen[j] != 1 {
				t.Fatalf("trial %d: j=%d covered %d times (range %d..%d, np=%d, %v)",
					trial, j, seen[j], lo, hi, np, d)
			}
		}
		if len(seen) != hi-lo+1 {
			t.Fatalf("trial %d: covered %d of %d iterations", trial, len(seen), hi-lo+1)
		}
	}
}
