package compiler

import (
	"fmt"
	"strings"

	"hpfdsm/internal/ir"
)

// Partition is the owner-computes work assignment of one loop for one
// symbol valuation: per processor, the inclusive ranges of the
// distributed loop variable it executes. When the loop has no
// distributed variable (the anchor's last subscript is fixed), a single
// processor executes the whole nest.
type Partition struct {
	DistVar string
	Ranges  [][][2]int // per processor
	Single  bool
	Exec    int // executing processor when Single
}

// Executes reports whether processor p runs any iterations.
func (pt *Partition) Executes(p int) bool {
	if pt.Single {
		return p == pt.Exec
	}
	return len(pt.Ranges[p]) > 0
}

// envKey builds the memoization key from the used symbols' valuation.
func envKey(loop any, kind uint8, used []string, env map[string]int) schedKey {
	k := schedKey{loop: loop, kind: kind, n: uint8(len(used))}
	if len(used) <= len(k.vals) {
		for i, v := range used {
			val, ok := env[v]
			if !ok {
				panic(fmt.Sprintf("compiler: symbol %q unbound at schedule instantiation", v))
			}
			k.vals[i] = val
		}
		return k
	}
	var b strings.Builder
	for _, v := range used {
		val, ok := env[v]
		if !ok {
			panic(fmt.Sprintf("compiler: symbol %q unbound at schedule instantiation", v))
		}
		fmt.Fprintf(&b, "%s=%d;", v, val)
	}
	k.sig = b.String()
	return k
}

// Partition computes (and memoizes) the work partition for a loop rule
// under the given symbol environment. key identifies the loop (the
// *ir.ParLoop or *ir.Reduce pointer).
func (a *Analysis) Partition(key any, rule *LoopRule, env map[string]int) *Partition {
	ck := envKey(key, 0, rule.UsedSym, env)
	a.mu.RLock()
	pt, ok := a.partCache[ck]
	a.mu.RUnlock()
	if ok {
		return pt
	}
	pt = a.buildPartition(rule, env)
	a.mu.Lock()
	if pt2, ok := a.partCache[ck]; ok {
		pt = pt2
	} else {
		a.partCache[ck] = pt
	}
	a.mu.Unlock()
	return pt
}

func (a *Analysis) buildPartition(rule *LoopRule, env map[string]int) *Partition {
	anchor := rule.Anchor
	d := a.dists[anchor.Array]
	last := anchor.Subs[len(anchor.Subs)-1]

	if rule.DistVar == "" {
		t := last.Eval(env)
		clampIndex(&t, d.Extent)
		return &Partition{Single: true, Exec: d.Owner(t)}
	}

	// Range of the distributed variable.
	var ix *ir.Index
	for i := range rule.Indexes {
		if rule.Indexes[i].Var == rule.DistVar {
			ix = &rule.Indexes[i]
		}
	}
	if ix == nil {
		panic("compiler: distributed variable not among loop indexes")
	}
	lo, hi := ix.Lo.Eval(env), ix.Hi.Eval(env)
	// Constant part of the anchor subscript: t = j + c.
	c := last.Sub(ir.V(rule.DistVar)).Eval(env)

	pt := &Partition{DistVar: rule.DistVar, Ranges: make([][][2]int, a.NP)}
	if lo > hi {
		return pt // empty loop
	}
	tlo, thi := lo+c, hi+c
	if tlo < 1 || thi > d.Extent {
		panic(fmt.Sprintf("compiler: loop over %s drives %s's distributed subscript out of range: %d..%d not in 1..%d",
			rule.DistVar, anchor.Array.Name, tlo, thi, d.Extent))
	}
	for p := 0; p < a.NP; p++ {
		for _, r := range d.OwnedRanges(p) {
			l, h := r[0], r[1]
			if l < tlo {
				l = tlo
			}
			if h > thi {
				h = thi
			}
			if l <= h {
				pt.Ranges[p] = append(pt.Ranges[p], [2]int{l - c, h - c})
			}
		}
	}
	return pt
}

func clampIndex(t *int, extent int) {
	if *t < 1 {
		*t = 1
	}
	if *t > extent {
		*t = extent
	}
}
