package compiler

import (
	"hpfdsm/internal/ir"
)

// markRedundant is the partial-redundancy-elimination pass sketched in
// Section 4.3 (and planned as future work in the paper): a read
// transfer is redundant if an identical transfer — same array, same
// access pattern, same bounds — happened earlier with no intervening
// write to the array, in which case the data is still valid in the
// readers' compiler-controlled frames (which, under run-time overhead
// elimination, were never invalidated).
//
// The pass works on each statement sequence (the program body and each
// sequential loop body) treated as a cycle: a transfer may be made
// redundant by the same-iteration past or, when nothing in the whole
// cycle writes the array, by the previous iteration. Rules whose
// schedules depend on sequential loop variables (UsedSym non-empty)
// are never marked across iterations, since their sections change.
func (a *Analysis) markRedundant() {
	// A subroutine called from several sites shares its loop rules
	// between those sites (inline expansion reuses statement pointers);
	// a redundancy fact proven at one site need not hold at another, so
	// multiply-occurring rules are never marked.
	occurrences := map[*LoopRule]int{}
	var count func(stmts []ir.Stmt)
	count = func(stmts []ir.Stmt) {
		for _, s := range stmts {
			switch st := s.(type) {
			case *ir.ParLoop:
				occurrences[a.loops[st]]++
			case *ir.Reduce:
				occurrences[a.reds[st]]++
			case *ir.SeqLoop:
				count(st.Body)
			case *ir.Block:
				count(st.Body)
			}
		}
	}
	count(a.Prog.Body)
	a.shared = map[*LoopRule]bool{}
	for r, n := range occurrences {
		if n > 1 {
			a.shared[r] = true
		}
	}
	a.markSeq(a.Prog.Body, false)
}

// markSeq processes one statement list; cyclic indicates the list is a
// loop body re-executed each iteration.
func (a *Analysis) markSeq(stmts []ir.Stmt, cyclic bool) {
	type unit struct {
		rule   *LoopRule
		writes map[string]bool // array names written (including flushes)
	}
	var units []unit
	for _, s := range stmts {
		switch st := s.(type) {
		case *ir.ParLoop:
			w := map[string]bool{}
			for _, as := range st.Body {
				w[as.LHS.Array.Name] = true
			}
			units = append(units, unit{rule: a.loops[st], writes: w})
		case *ir.Reduce:
			units = append(units, unit{rule: a.reds[st], writes: map[string]bool{}})
		case *ir.SeqLoop:
			a.markSeq(st.Body, true)
			// Conservatively treat the nested loop as writing
			// everything it writes anywhere.
			w := map[string]bool{}
			collectWrites(st.Body, w)
			units = append(units, unit{writes: w})
		case *ir.Block:
			// Inlined subroutine: splice its units into this sequence.
			for _, inner := range flattenBlock(st) {
				switch is := inner.(type) {
				case *ir.ParLoop:
					w := map[string]bool{}
					for _, as := range is.Body {
						w[as.LHS.Array.Name] = true
					}
					units = append(units, unit{rule: a.loops[is], writes: w})
				case *ir.Reduce:
					units = append(units, unit{rule: a.reds[is], writes: map[string]bool{}})
				case *ir.SeqLoop:
					a.markSeq(is.Body, true)
					w := map[string]bool{}
					collectWrites(is.Body, w)
					units = append(units, unit{writes: w})
				}
			}
		case *ir.ScalarAssign, *ir.ExitIf:
			// No array effects.
		}
	}

	for i, u := range units {
		if u.rule == nil || a.shared[u.rule] {
			continue
		}
		for _, rr := range u.rule.Reads {
			if rr.IsWrite {
				continue
			}
			limit := i // same-iteration lookback
			if cyclic && len(u.rule.UsedSym) == 0 {
				limit = i + len(units) // full cycle
			}
			for back := 1; back <= limit; back++ {
				j := i - back
				if j < 0 {
					j += len(units)
				}
				prev := units[j]
				if prev.writes[rr.Ref.Array.Name] {
					break // killed: the array was rewritten
				}
				if prev.rule == nil {
					continue
				}
				if matchRule(prev.rule, u.rule, rr) {
					rr.Redundant = true
					break
				}
			}
		}
	}
}

// matchRule reports whether prev contains a read rule identical to rr
// (same signature and same iteration bounds for the swept variables),
// so its transfer delivered a superset of rr's data.
func matchRule(prev, cur *LoopRule, rr *RefRule) bool {
	if len(prev.UsedSym) != 0 || len(cur.UsedSym) != 0 {
		return false // symbol-dependent sections; play safe
	}
	for _, pr := range prev.Reads {
		if pr.IsWrite || pr.Signature() != rr.Signature() {
			continue
		}
		if boundsEqual(prev, cur, pr, rr) {
			return true
		}
	}
	return false
}

// boundsEqual checks that the variables steering both rules' sections
// have identical ranges in their loops.
func boundsEqual(pl, cl *LoopRule, pr, cr *RefRule) bool {
	pv := indexBounds(pl)
	cv := indexBounds(cl)
	// Every variable used by the current reference's subscripts must
	// have the same range in both loops.
	for _, sub := range cr.Ref.Subs {
		for _, v := range sub.Vars() {
			pb, okP := pv[v]
			cb, okC := cv[v]
			if okP != okC {
				return false
			}
			if okP && pb != cb {
				return false
			}
		}
	}
	// The work partitions must match: same distributed variable range
	// and same anchor alignment.
	if pl.DistVar != "" || cl.DistVar != "" {
		pb, okP := pv[pl.DistVar]
		cb, okC := cv[cl.DistVar]
		if !okP || !okC || pb != cb {
			return false
		}
		pa := pl.Anchor.Subs[len(pl.Anchor.Subs)-1].String() + "|" + pl.Anchor.Array.Name
		ca := cl.Anchor.Subs[len(cl.Anchor.Subs)-1].String() + "|" + cl.Anchor.Array.Name
		// Anchors may differ in array but must partition identically:
		// compare subscript form and distribution via array extents.
		if pa != ca && (pl.Anchor.Array.LastExtent() != cl.Anchor.Array.LastExtent() ||
			pl.Anchor.Array.Dist != cl.Anchor.Array.Dist ||
			pl.Anchor.Subs[len(pl.Anchor.Subs)-1].String() != cl.Anchor.Subs[len(cl.Anchor.Subs)-1].String()) {
			return false
		}
	}
	return true
}

func indexBounds(r *LoopRule) map[string]string {
	out := map[string]string{}
	for _, ix := range r.Indexes {
		out[ix.Var] = ix.Lo.String() + ":" + ix.Hi.String()
	}
	for v, rg := range r.inner {
		out[v] = rg.lo.String() + ":" + rg.hi.String()
	}
	return out
}

func collectWrites(stmts []ir.Stmt, w map[string]bool) {
	for _, s := range stmts {
		switch st := s.(type) {
		case *ir.ParLoop:
			for _, as := range st.Body {
				w[as.LHS.Array.Name] = true
			}
		case *ir.SeqLoop:
			collectWrites(st.Body, w)
		case *ir.Block:
			collectWrites(st.Body, w)
		}
	}
}

// flattenBlock expands nested inlined-subroutine blocks into a flat
// statement list.
func flattenBlock(b *ir.Block) []ir.Stmt {
	var out []ir.Stmt
	for _, s := range b.Body {
		if inner, ok := s.(*ir.Block); ok {
			out = append(out, flattenBlock(inner)...)
			continue
		}
		out = append(out, s)
	}
	return out
}
