package compiler

import (
	"fmt"
	"sort"

	"hpfdsm/internal/ir"
)

// buildRules walks the program and compiles a LoopRule for every
// parallel loop and global reduction.
func (a *Analysis) buildRules() error {
	var walk func(stmts []ir.Stmt) error
	walk = func(stmts []ir.Stmt) error {
		for _, s := range stmts {
			switch st := s.(type) {
			case *ir.ParLoop:
				r, err := a.analyzeLoop(st)
				if err != nil {
					return err
				}
				a.loops[st] = r
			case *ir.Reduce:
				r, err := a.analyzeReduce(st)
				if err != nil {
					return err
				}
				a.reds[st] = r
			case *ir.SeqLoop:
				if err := walk(st.Body); err != nil {
					return err
				}
			case *ir.Block:
				if err := walk(st.Body); err != nil {
					return err
				}
			}
		}
		return nil
	}
	return walk(a.Prog.Body)
}

// LoopRuleOf returns the compiled rule for a parallel loop.
func (a *Analysis) LoopRuleOf(l *ir.ParLoop) *LoopRule { return a.loops[l] }

// ReduceRuleOf returns the compiled rule for a reduction.
func (a *Analysis) ReduceRuleOf(r *ir.Reduce) *LoopRule { return a.reds[r] }

func (a *Analysis) analyzeLoop(pl *ir.ParLoop) (*LoopRule, error) {
	if len(pl.Body) == 0 {
		return nil, fmt.Errorf("compiler: loop %s has no assignments", pl.Label)
	}
	anchor := pl.Body[0].LHS
	if pl.OnHome != nil {
		anchor = *pl.OnHome
	}
	rule, err := a.newRule(pl.Label, anchor, pl.Indexes)
	if err != nil {
		return nil, err
	}
	// Reads: every array reference on any right-hand side.
	for _, as := range pl.Body {
		rule.mergeInner(collectInnerRanges(as.RHS))
		for _, ref := range ir.Refs(as.RHS) {
			if err := rule.addRef(a, ref, false); err != nil {
				return nil, fmt.Errorf("loop %s: %w", pl.Label, err)
			}
		}
		rule.noteIndirects(as.RHS)
	}
	// Writes: left-hand sides that are not aligned with the anchor.
	for _, as := range pl.Body {
		if err := rule.addRef(a, as.LHS, true); err != nil {
			return nil, fmt.Errorf("loop %s: %w", pl.Label, err)
		}
	}
	a.finishRule(rule, pl.Indexes)
	return rule, nil
}

func (a *Analysis) analyzeReduce(rd *ir.Reduce) (*LoopRule, error) {
	refs := ir.Refs(rd.Expr)
	if len(refs) == 0 {
		return nil, fmt.Errorf("compiler: reduction %s references no arrays", rd.Label)
	}
	rule, err := a.newRule(rd.Label, refs[0], rd.Indexes)
	if err != nil {
		return nil, err
	}
	rule.mergeInner(collectInnerRanges(rd.Expr))
	for _, ref := range refs {
		if err := rule.addRef(a, ref, false); err != nil {
			return nil, fmt.Errorf("reduction %s: %w", rd.Label, err)
		}
	}
	rule.noteIndirects(rd.Expr)
	a.finishRule(rule, rd.Indexes)
	return rule, nil
}

// innerRange records an inner-reduction variable's bounds.
type innerRange struct {
	lo, hi ir.AffExpr
}

func collectInnerRanges(e ir.Expr) map[string]innerRange {
	out := map[string]innerRange{}
	ir.WalkExpr(e, func(x ir.Expr) {
		if r, ok := x.(ir.InnerRed); ok {
			out[r.Var] = innerRange{r.Lo, r.Hi}
		}
	})
	return out
}

func (a *Analysis) newRule(label string, anchor ir.ArrayRef, indexes []ir.Index) (*LoopRule, error) {
	loopVars := map[string]bool{}
	for _, ix := range indexes {
		loopVars[ix.Var] = true
	}
	last := anchor.Subs[len(anchor.Subs)-1]
	distVar := ""
	for _, t := range last.Terms {
		if !loopVars[t.Var] {
			continue
		}
		if t.Coef != 1 {
			return nil, fmt.Errorf("compiler: %s: distributed subscript %v of %s has coefficient %d (only 1 supported)",
				label, last, anchor.Array.Name, t.Coef)
		}
		if distVar != "" {
			return nil, fmt.Errorf("compiler: %s: distributed subscript %v uses two loop variables", label, last)
		}
		distVar = t.Var
	}
	// Note: the distributed variable may appear in the anchor's row
	// dimensions (e.g. a diagonal update a(j,j) = ...); such accesses
	// are owner-local by construction. Communicating references with
	// the distributed variable in a row dimension are rejected in
	// addRef.
	rest := last
	if distVar != "" {
		rest = rest.Sub(ir.V(distVar))
	}
	return &LoopRule{Anchor: anchor, DistVar: distVar, Indexes: indexes, anchorRest: rest}, nil
}

// noteIndirects records arrays read through irregular subscripts.
func (r *LoopRule) noteIndirects(e ir.Expr) {
	for _, ix := range ir.Indirects(e) {
		dup := false
		for _, have := range r.IndirectArrays {
			if have == ix.Array {
				dup = true
			}
		}
		if !dup {
			r.IndirectArrays = append(r.IndirectArrays, ix.Array)
		}
	}
}

// addRef classifies one reference and appends a communication rule if
// it can require data movement.
func (r *LoopRule) mergeInner(inner map[string]innerRange) {
	if r.inner == nil {
		r.inner = map[string]innerRange{}
	}
	for v, rg := range inner {
		r.inner[v] = rg
	}
}

func (r *LoopRule) addRef(a *Analysis, ref ir.ArrayRef, isWrite bool) error {
	loopVars := map[string]bool{}
	for _, ix := range r.Indexes {
		loopVars[ix.Var] = true
	}
	for v := range r.inner {
		loopVars[v] = true
	}
	last := ref.Subs[len(ref.Subs)-1]

	var kind RefKind
	sweep := ""
	rest := last
	for _, t := range last.Terms {
		if !loopVars[t.Var] {
			continue // symbol, stays in rest
		}
		if t.Coef != 1 {
			return fmt.Errorf("reference %v: loop variable %s has coefficient %d in the distributed subscript", ref, t.Var, t.Coef)
		}
		if sweep != "" {
			return fmt.Errorf("reference %v: two loop variables in the distributed subscript", ref)
		}
		sweep = t.Var
		rest = rest.Sub(ir.V(t.Var))
	}
	switch {
	case sweep == "":
		kind = KindFixed
	case sweep == r.DistVar:
		kind = KindShift
	default:
		kind = KindGather
	}
	if isWrite && kind == KindGather {
		return fmt.Errorf("reference %v: gather-style write would be a concurrent write", ref)
	}

	// Aligned references never communicate: same swept variable, the
	// same offset as the anchor (which an ON HOME directive may have
	// made nonzero), and identical distribution parameters.
	if kind == KindShift && a.sameDist(ref.Array, r.Anchor.Array) {
		if d := rest.Sub(r.anchorRest); d.IsConst() && d.Const == 0 {
			return nil
		}
	}
	// The distributed variable must not steer a row dimension.
	for d := 0; d < len(ref.Subs)-1; d++ {
		if r.DistVar != "" && ref.Subs[d].Coef(r.DistVar) != 0 {
			return fmt.Errorf("reference %v: distributed variable in row dimension %d", ref, d)
		}
	}

	rr := &RefRule{Ref: ref, Kind: kind, Rest: rest, SweepVar: sweep, IsWrite: isWrite}
	sig := rr.Signature()
	list := &r.Reads
	if isWrite {
		list = &r.Writes
	}
	for _, have := range *list {
		if have.Signature() == sig {
			return nil // duplicate reference, one transfer suffices
		}
	}
	*list = append(*list, rr)
	return nil
}

func (a *Analysis) sameDist(x, y *ir.Array) bool {
	dx, dy := a.dists[x], a.dists[y]
	return dx.Kind == dy.Kind && dx.Extent == dy.Extent && dx.ChunkSize() == dy.ChunkSize()
}

// finishRule records the free symbols the rule's schedule depends on.
func (a *Analysis) finishRule(r *LoopRule, indexes []ir.Index) {
	bound := map[string]bool{}
	for _, ix := range indexes {
		bound[ix.Var] = true
	}
	free := map[string]bool{}
	note := func(e ir.AffExpr) {
		for _, v := range e.Vars() {
			if !bound[v] {
				free[v] = true
			}
		}
	}
	for _, ix := range indexes {
		note(ix.Lo)
		note(ix.Hi)
	}
	collect := func(rr *RefRule) {
		innerBound := map[string]bool{}
		for _, s := range rr.Ref.Subs {
			for _, v := range s.Vars() {
				if !bound[v] && !innerBound[v] {
					free[v] = true
				}
			}
		}
	}
	for _, rr := range r.Reads {
		collect(rr)
	}
	for _, rr := range r.Writes {
		collect(rr)
	}
	// Params are constants: they never vary between instantiations, so
	// exclude them from the memoization key. Inner-reduction variables
	// are bound within expressions, not free.
	for v := range a.Prog.Params {
		delete(free, v)
	}
	for v := range r.inner {
		delete(free, v)
	}
	r.UsedSym = nil
	for v := range free {
		r.UsedSym = append(r.UsedSym, v)
	}
	sort.Strings(r.UsedSym)
}

// Signature identifies a reference rule's communication pattern for
// deduplication and PRE: array, kind, sweep variable, rest expression,
// and row subscripts.
func (rr *RefRule) Signature() string {
	s := fmt.Sprintf("%s|%v|%s|%s|w=%v", rr.Ref.Array.Name, rr.Kind, rr.SweepVar, rr.Rest, rr.IsWrite)
	for d := 0; d < len(rr.Ref.Subs)-1; d++ {
		s += "|" + rr.Ref.Subs[d].String()
	}
	return s
}
