package compiler

import (
	"testing"

	"hpfdsm/internal/distribute"
	"hpfdsm/internal/ir"
	"hpfdsm/internal/sections"
)

// buildLayouts lays the arrays out contiguously, page aligned, as the
// runtime does.
func buildLayouts(arrs []*ir.Array) map[*ir.Array]sections.Layout {
	out := map[*ir.Array]sections.Layout{}
	base := 0
	const page = 4096
	for _, a := range arrs {
		out[a] = sections.Layout{Base: base, Extents: a.Extents, ElemSize: 8}
		sz := a.Elems() * 8
		base += (sz + page - 1) / page * page
	}
	return out
}

// jacobiProg builds the canonical 2-array stencil: b(i,j) = avg of a's
// four neighbours, then a = b.
func jacobiProg(n int) (*ir.Program, *ir.ParLoop, *ir.ParLoop) {
	A := &ir.Array{Name: "a", Extents: []int{n, n}, Dist: distribute.Spec{Kind: distribute.Block}}
	B := &ir.Array{Name: "b", Extents: []int{n, n}, Dist: distribute.Spec{Kind: distribute.Block}}
	i, j := ir.V("i"), ir.V("j")
	sweep := &ir.ParLoop{
		Label:   "sweep",
		Indexes: []ir.Index{ir.Idx("i", ir.Aff(2), ir.Aff(n-1)), ir.Idx("j", ir.Aff(2), ir.Aff(n-1))},
		Body: []*ir.Assign{{
			LHS: ir.Ref(B, i, j),
			RHS: ir.Times(ir.N(0.25), ir.Sum4(
				ir.Ref(A, i.AddC(-1), j), ir.Ref(A, i.AddC(1), j),
				ir.Ref(A, i, j.AddC(-1)), ir.Ref(A, i, j.AddC(1)))),
		}},
	}
	copyBack := &ir.ParLoop{
		Label:   "copy",
		Indexes: []ir.Index{ir.Idx("i", ir.Aff(2), ir.Aff(n-1)), ir.Idx("j", ir.Aff(2), ir.Aff(n-1))},
		Body:    []*ir.Assign{{LHS: ir.Ref(A, i, j), RHS: ir.Ref(B, i, j)}},
	}
	prog := &ir.Program{
		Name:   "jacobi",
		Params: map[string]int{"n": n},
		Arrays: []*ir.Array{A, B},
		Body: []ir.Stmt{
			&ir.SeqLoop{Var: "t", Lo: ir.Aff(1), Hi: ir.Aff(10), Body: []ir.Stmt{sweep, copyBack}},
		},
	}
	return prog, sweep, copyBack
}

func TestJacobiAnalysis(t *testing.T) {
	const n, np = 64, 4
	prog, sweep, _ := jacobiProg(n)
	a, err := New(prog, np, buildLayouts(prog.Arrays), 128)
	if err != nil {
		t.Fatal(err)
	}
	rule := a.LoopRuleOf(sweep)
	if rule == nil {
		t.Fatal("no rule for sweep")
	}
	if rule.DistVar != "j" {
		t.Fatalf("distvar = %q", rule.DistVar)
	}
	// Reads: a(i,j-1) and a(i,j+1) communicate; a(i±1,j) are aligned
	// row shifts (no comm since j matches and dist is identical).
	if len(rule.Reads) != 2 {
		t.Fatalf("read rules = %d: %+v", len(rule.Reads), rule.Reads)
	}
	for _, rr := range rule.Reads {
		if rr.Kind != KindShift {
			t.Fatalf("read rule kind = %v", rr.Kind)
		}
	}
	if len(rule.Writes) != 0 {
		t.Fatalf("write rules = %d", len(rule.Writes))
	}
	if len(rule.UsedSym) != 0 {
		t.Fatalf("jacobi schedule should be symbol-free, uses %v", rule.UsedSym)
	}
}

func TestJacobiPartition(t *testing.T) {
	const n, np = 64, 4
	prog, sweep, _ := jacobiProg(n)
	a, _ := New(prog, np, buildLayouts(prog.Arrays), 128)
	rule := a.LoopRuleOf(sweep)
	env := map[string]int{"n": n, "t": 1}
	pt := a.Partition(sweep, rule, env)
	// Chunk = 16: proc 0 owns cols 1..16 but the loop runs 2..63.
	want := [][2]int{{2, 16}, {17, 32}, {33, 48}, {49, 63}}
	for p := 0; p < np; p++ {
		if len(pt.Ranges[p]) != 1 || pt.Ranges[p][0] != want[p] {
			t.Fatalf("proc %d ranges = %v, want %v", p, pt.Ranges[p], want[p])
		}
	}
}

func TestJacobiSchedule(t *testing.T) {
	const n, np = 64, 4
	prog, sweep, _ := jacobiProg(n)
	a, _ := New(prog, np, buildLayouts(prog.Arrays), 128)
	rule := a.LoopRuleOf(sweep)
	env := map[string]int{"n": n, "t": 1}
	s := a.Schedule(sweep, rule, env)

	// Boundary exchange: each interior processor receives its left
	// neighbour's last column and right neighbour's first column; the
	// edge processors receive one each. Total = 2*(np-1) transfers.
	if len(s.Reads) != 2*(np-1) {
		t.Fatalf("read transfers = %d, want %d: %v", len(s.Reads), 2*(np-1), s.Reads)
	}
	for _, tr := range s.Reads {
		if tr.Sec.Dims[1].Count() != 1 {
			t.Fatalf("transfer spans %d columns, want 1: %v", tr.Sec.Dims[1].Count(), tr)
		}
		if tr.Sec.Dims[0] != (sections.Dim{Lo: 2, Hi: n - 1}) {
			t.Fatalf("row range = %v, want stencil rows 2..%d", tr.Sec.Dims[0], n-1)
		}
		// Rows 2..63 of one column: 496 bytes starting 8 bytes into a
		// 512-byte column; the block-aligned interior is [128,384) = 2
		// blocks, with 240 bytes of edges for the default protocol.
		if tr.NumBlocks != 2 || tr.EdgeBytes != 240 {
			t.Fatalf("blocks=%d edge=%d, want 2/240: %v", tr.NumBlocks, tr.EdgeBytes, tr)
		}
	}
	// Memoization: same env -> same pointer.
	if a.Schedule(sweep, rule, env) != s {
		t.Fatal("schedule not memoized")
	}
	if len(s.Writes) != 0 {
		t.Fatal("jacobi has no non-owner writes")
	}
}

func TestScheduleSenderReceiverViews(t *testing.T) {
	const n, np = 64, 4
	prog, sweep, _ := jacobiProg(n)
	a, _ := New(prog, np, buildLayouts(prog.Arrays), 128)
	s := a.Schedule(sweep, a.LoopRuleOf(sweep), map[string]int{"n": n})
	// Proc 1 is interior: sends 2 (to 0 and 2), receives 2.
	if got := len(s.ReadsBySender(1)); got != 2 {
		t.Fatalf("proc 1 sends %d", got)
	}
	if got := len(s.ReadsByReceiver(1)); got != 2 {
		t.Fatalf("proc 1 receives %d", got)
	}
	// Proc 0 is an edge: 1 each.
	if len(s.ReadsBySender(0)) != 1 || len(s.ReadsByReceiver(0)) != 1 {
		t.Fatal("edge proc wrong")
	}
}

func TestEdgeBytesWithMisalignedColumns(t *testing.T) {
	// 129-row columns (1032 bytes) are not a multiple of 128: block
	// alignment must leave edges to the default protocol (grav's
	// problem in the paper).
	const n, np = 129, 4
	prog, sweep, _ := jacobiProg(n)
	a, _ := New(prog, np, buildLayouts(prog.Arrays), 128)
	s := a.Schedule(sweep, a.LoopRuleOf(sweep), map[string]int{"n": n})
	for _, tr := range s.Reads {
		if tr.EdgeBytes == 0 {
			t.Fatalf("expected edge bytes on misaligned column: %v", tr)
		}
		if tr.NumBlocks*128+tr.EdgeBytes != tr.Sec.Count()*8 {
			t.Fatalf("blocks+edge != section bytes: %v", tr)
		}
	}
}

// luProg builds the LU-decomposition pattern: pivot normalize + update,
// with the pivot column broadcast (symbol-dependent schedule).
func luProg(n int) (*ir.Program, *ir.ParLoop, *ir.ParLoop) {
	A := &ir.Array{Name: "a", Extents: []int{n, n}, Dist: distribute.Spec{Kind: distribute.Cyclic}}
	i, j, k := ir.V("i"), ir.V("j"), ir.V("k")
	norm := &ir.ParLoop{
		Label:   "normalize",
		Indexes: []ir.Index{ir.Idx("i", k.AddC(1), ir.Aff(n))},
		Body: []*ir.Assign{{
			LHS: ir.Ref(A, i, k),
			RHS: ir.Over(ir.Ref(A, i, k), ir.Ref(A, k, k)),
		}},
	}
	update := &ir.ParLoop{
		Label:   "update",
		Indexes: []ir.Index{ir.Idx("i", k.AddC(1), ir.Aff(n)), ir.Idx("j", k.AddC(1), ir.Aff(n))},
		Body: []*ir.Assign{{
			LHS: ir.Ref(A, i, j),
			RHS: ir.Minus(ir.Ref(A, i, j), ir.Times(ir.Ref(A, i, k), ir.Ref(A, k, j))),
		}},
	}
	prog := &ir.Program{
		Name:   "lu",
		Params: map[string]int{"n": n},
		Arrays: []*ir.Array{A},
		Body: []ir.Stmt{
			&ir.SeqLoop{Var: "k", Lo: ir.Aff(1), Hi: ir.Aff(n - 1), Body: []ir.Stmt{norm, update}},
		},
	}
	return prog, norm, update
}

func TestLUNormalizeSingleProcessor(t *testing.T) {
	const n, np = 32, 4
	prog, norm, _ := luProg(n)
	a, err := New(prog, np, buildLayouts(prog.Arrays), 128)
	if err != nil {
		t.Fatal(err)
	}
	rule := a.LoopRuleOf(norm)
	if rule.DistVar != "" {
		t.Fatalf("normalize distvar = %q, want none (fixed column)", rule.DistVar)
	}
	env := map[string]int{"n": n, "k": 5}
	pt := a.Partition(norm, rule, env)
	if !pt.Single || pt.Exec != (5-1)%np {
		t.Fatalf("partition = %+v, want single executor owner(5)", pt)
	}
	// Normalize reads only its own column: no transfers.
	s := a.Schedule(norm, rule, env)
	if len(s.Reads) != 0 || len(s.Writes) != 0 {
		t.Fatalf("normalize schedule = %+v, want empty", s)
	}
}

func TestLUUpdateBroadcastsPivotColumn(t *testing.T) {
	const n, np = 32, 4
	prog, _, update := luProg(n)
	a, _ := New(prog, np, buildLayouts(prog.Arrays), 128)
	rule := a.LoopRuleOf(update)
	if rule.DistVar != "j" {
		t.Fatalf("update distvar = %q", rule.DistVar)
	}
	// Reads: a(i,k) fixed-column broadcast; a(k,j) is an aligned row
	// access (no comm).
	if len(rule.Reads) != 1 || rule.Reads[0].Kind != KindFixed {
		t.Fatalf("update read rules = %+v", rule.Reads)
	}
	if len(rule.UsedSym) != 1 || rule.UsedSym[0] != "k" {
		t.Fatalf("update uses %v, want [k]", rule.UsedSym)
	}
	env := map[string]int{"n": n, "k": 5}
	s := a.Schedule(update, rule, env)
	// Column 5 owned by proc 0 (cyclic, 0-based (5-1)%4=0); procs 1..3
	// execute some j in 6..32 and receive the pivot column.
	if len(s.Reads) != np-1 {
		t.Fatalf("broadcast transfers = %d, want %d: %v", len(s.Reads), np-1, s.Reads)
	}
	for _, tr := range s.Reads {
		if tr.Sender != 0 {
			t.Fatalf("pivot sender = %d", tr.Sender)
		}
		if tr.Sec.Dims[1] != (sections.Dim{Lo: 5, Hi: 5}) {
			t.Fatalf("pivot column = %v", tr.Sec.Dims[1])
		}
		if tr.Sec.Dims[0] != (sections.Dim{Lo: 6, Hi: n}) {
			t.Fatalf("pivot rows = %v, want 6..%d (triangular)", tr.Sec.Dims[0], n)
		}
	}
	// Different k -> different (memoized separately) schedule.
	s2 := a.Schedule(update, rule, map[string]int{"n": n, "k": 6})
	if s2 == s {
		t.Fatal("schedules for different k must differ")
	}
	if s2.Reads[0].Sender != 1 {
		t.Fatalf("k=6 pivot sender = %d, want 1", s2.Reads[0].Sender)
	}
}

// gatherProg models cg's matvec: q(j) = sum_i A(i,j)*p(i): every
// processor gathers the whole p vector.
func gatherProg(m, n int) (*ir.Program, *ir.ParLoop) {
	A := &ir.Array{Name: "A", Extents: []int{m, n}, Dist: distribute.Spec{Kind: distribute.Block}}
	P := &ir.Array{Name: "p", Extents: []int{n}, Dist: distribute.Spec{Kind: distribute.Block}}
	Q := &ir.Array{Name: "q", Extents: []int{n}, Dist: distribute.Spec{Kind: distribute.Block}}
	j := ir.V("j")
	matvec := &ir.ParLoop{
		Label:   "matvec",
		Indexes: []ir.Index{ir.Idx("j", ir.Aff(1), ir.Aff(n))},
		Body: []*ir.Assign{{
			LHS: ir.Ref(Q, j),
			RHS: ir.InnerRed{Op: ir.RedSum, Var: "i", Lo: ir.Aff(1), Hi: ir.Aff(m),
				Body: ir.Times(ir.Ref(A, ir.V("i"), j), ir.Ref(P, ir.V("i")))},
		}},
	}
	prog := &ir.Program{
		Name:   "gather",
		Params: map[string]int{"m": m, "n": n},
		Arrays: []*ir.Array{A, P, Q},
		Body:   []ir.Stmt{matvec},
	}
	return prog, matvec
}

func TestGatherAnalysis(t *testing.T) {
	const m, n, np = 16, 16, 4
	prog, matvec := gatherProg(m, n)
	a, err := New(prog, np, buildLayouts(prog.Arrays), 128)
	if err != nil {
		t.Fatal(err)
	}
	rule := a.LoopRuleOf(matvec)
	// p(i) gathers (i is an inner variable, p's extent n=16 matches);
	// A(i,j) is aligned.
	if len(rule.Reads) != 1 || rule.Reads[0].Kind != KindGather {
		t.Fatalf("gather rules = %+v", rule.Reads)
	}
	s := a.Schedule(matvec, rule, map[string]int{"m": m, "n": n})
	// Each of 4 procs receives p's other 3 chunks: 12 transfers.
	if len(s.Reads) != np*(np-1) {
		t.Fatalf("gather transfers = %d, want %d", len(s.Reads), np*(np-1))
	}
	total := 0
	for _, tr := range s.Reads {
		total += tr.Sec.Count()
	}
	if total != np*(n-n/np) {
		t.Fatalf("gathered elements = %d, want %d", total, np*(n-n/np))
	}
}

func TestPREMarksSecondReadOfUnchangedArray(t *testing.T) {
	// Two loops in a cycle both read h's boundary; h is written by
	// neither -> second transfer (and, via the cycle, the first) are
	// redundant after the first iteration.
	const n, np = 64, 4
	H := &ir.Array{Name: "h", Extents: []int{n, n}, Dist: distribute.Spec{Kind: distribute.Block}}
	U := &ir.Array{Name: "u", Extents: []int{n, n}, Dist: distribute.Spec{Kind: distribute.Block}}
	W := &ir.Array{Name: "w", Extents: []int{n, n}, Dist: distribute.Spec{Kind: distribute.Block}}
	i, j := ir.V("i"), ir.V("j")
	mk := func(label string, lhs *ir.Array) *ir.ParLoop {
		return &ir.ParLoop{
			Label:   label,
			Indexes: []ir.Index{ir.Idx("i", ir.Aff(2), ir.Aff(n-1)), ir.Idx("j", ir.Aff(2), ir.Aff(n-1))},
			Body: []*ir.Assign{{
				LHS: ir.Ref(lhs, i, j),
				RHS: ir.Plus(ir.Ref(H, i, j.AddC(-1)), ir.Ref(H, i, j.AddC(1))),
			}},
		}
	}
	l1, l2 := mk("l1", U), mk("l2", W)
	prog := &ir.Program{
		Name:   "pretest",
		Params: map[string]int{"n": n},
		Arrays: []*ir.Array{H, U, W},
		Body:   []ir.Stmt{&ir.SeqLoop{Var: "t", Lo: ir.Aff(1), Hi: ir.Aff(5), Body: []ir.Stmt{l1, l2}}},
	}
	a, err := New(prog, np, buildLayouts(prog.Arrays), 128)
	if err != nil {
		t.Fatal(err)
	}
	for _, rr := range a.LoopRuleOf(l2).Reads {
		if !rr.Redundant {
			t.Fatalf("l2 read %v not marked redundant", rr.Ref)
		}
	}
	// l1's reads are redundant via the cycle (nothing writes h at all).
	for _, rr := range a.LoopRuleOf(l1).Reads {
		if !rr.Redundant {
			t.Fatalf("l1 read %v not marked redundant across iterations", rr.Ref)
		}
	}
}

func TestPRENotMarkedWhenWritten(t *testing.T) {
	// jacobi: a is rewritten every iteration, so its transfers are
	// never redundant.
	prog, sweep, copyBack := jacobiProg(64)
	a, _ := New(prog, 4, buildLayouts(prog.Arrays), 128)
	for _, rr := range a.LoopRuleOf(sweep).Reads {
		if rr.Redundant {
			t.Fatal("jacobi sweep read wrongly marked redundant")
		}
	}
	_ = copyBack
}

func TestValidationErrors(t *testing.T) {
	n := 16
	A := &ir.Array{Name: "a", Extents: []int{n, n}, Dist: distribute.Spec{Kind: distribute.Block}}
	i, j := ir.V("i"), ir.V("j")
	cases := []struct {
		name string
		loop *ir.ParLoop
	}{
		{"coef 2 subscript", &ir.ParLoop{
			Label:   "bad",
			Indexes: []ir.Index{ir.Idx("i", ir.Aff(1), ir.Aff(n)), ir.Idx("j", ir.Aff(1), ir.Aff(n/2))},
			Body:    []*ir.Assign{{LHS: ir.Ref(A, i, j.Scale(2)), RHS: ir.N(0)}},
		}},
		{"two loop vars in last subscript", &ir.ParLoop{
			Label:   "bad2",
			Indexes: []ir.Index{ir.Idx("i", ir.Aff(1), ir.Aff(4)), ir.Idx("j", ir.Aff(1), ir.Aff(4))},
			Body:    []*ir.Assign{{LHS: ir.Ref(A, i, i.Add(j)), RHS: ir.N(0)}},
		}},
		{"transposed read", &ir.ParLoop{
			Label:   "bad3",
			Indexes: []ir.Index{ir.Idx("i", ir.Aff(1), ir.Aff(n)), ir.Idx("j", ir.Aff(1), ir.Aff(n))},
			Body:    []*ir.Assign{{LHS: ir.Ref(A, i, j), RHS: ir.Ref(A, j, i)}},
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			prog := &ir.Program{Name: "bad", Params: map[string]int{}, Arrays: []*ir.Array{A},
				Body: []ir.Stmt{c.loop}}
			if _, err := New(prog, 4, buildLayouts(prog.Arrays), 128); err == nil {
				t.Error("expected analysis error")
			}
		})
	}
}

func TestParseLevel(t *testing.T) {
	for _, l := range []Level{OptNone, OptBase, OptBulk, OptRTElim, OptPRE} {
		got, err := ParseLevel(l.String())
		if err != nil || got != l {
			t.Fatalf("ParseLevel round trip failed for %v", l)
		}
	}
	if _, err := ParseLevel("bogus"); err == nil {
		t.Fatal("bogus level accepted")
	}
}

func TestBlockCyclicSchedule(t *testing.T) {
	// CYCLIC(2) columns: groupByOwner must split shift transfers at
	// chunk boundaries.
	const n, np = 32, 4
	A := &ir.Array{Name: "a", Extents: []int{16, n}, Dist: distribute.Spec{Kind: distribute.BlockCyclic, K: 2}}
	B := &ir.Array{Name: "b", Extents: []int{16, n}, Dist: distribute.Spec{Kind: distribute.BlockCyclic, K: 2}}
	i, j := ir.V("i"), ir.V("j")
	loop := &ir.ParLoop{
		Label:   "bc",
		Indexes: []ir.Index{ir.Idx("i", ir.Aff(1), ir.Aff(16)), ir.Idx("j", ir.Aff(2), ir.Aff(n-1))},
		Body:    []*ir.Assign{{LHS: ir.Ref(B, i, j), RHS: ir.Ref(A, i, j.AddC(1))}},
	}
	prog := &ir.Program{Name: "bc", Params: map[string]int{}, Arrays: []*ir.Array{A, B},
		Body: []ir.Stmt{loop}}
	an, err := New(prog, np, buildLayouts(prog.Arrays), 128)
	if err != nil {
		t.Fatal(err)
	}
	rule := an.LoopRuleOf(loop)
	env := map[string]int{}
	pt := an.Partition(loop, rule, env)
	d := an.Dist(A)
	// Partition: every executed column is owned by its executor.
	for p := 0; p < np; p++ {
		for _, r := range pt.Ranges[p] {
			for jj := r[0]; jj <= r[1]; jj++ {
				if d.Owner(jj) != p {
					t.Fatalf("col %d executed by %d, owned by %d", jj, p, d.Owner(jj))
				}
			}
		}
	}
	sched := an.Schedule(loop, rule, env)
	// Each proc reads column chunkEnd+1, owned by the next proc: with
	// K=2, chunks are pairs, so every second column crosses owners.
	for _, tr := range sched.Reads {
		if d.Owner(tr.Sec.Dims[1].Lo) != tr.Sender {
			t.Fatalf("transfer %v not from the column owner", tr)
		}
		if tr.Sender == tr.Receiver {
			t.Fatalf("self transfer %v", tr)
		}
	}
	// Coverage: every executed, not-owned read column appears in some
	// transfer to its reader.
	for p := 0; p < np; p++ {
		for _, r := range pt.Ranges[p] {
			for jj := r[0]; jj <= r[1]; jj++ {
				src := jj + 1
				if src > n || d.Owner(src) == p {
					continue
				}
				found := false
				for _, tr := range sched.Reads {
					if tr.Receiver == p && tr.Sec.Dims[1].Lo <= src && src <= tr.Sec.Dims[1].Hi {
						found = true
					}
				}
				if !found {
					t.Fatalf("proc %d reads col %d with no transfer", p, src)
				}
			}
		}
	}
}
