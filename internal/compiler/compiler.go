// Package compiler implements the paper's communication analysis: from
// a program's data distributions and owner-computes work partition it
// derives, for every parallel loop, each processor's non-owner-read and
// non-owner-write array sections, matches producers with consumers,
// shrinks the sections to whole coherence blocks (shmem_limits), and
// produces the communication schedules the runtime turns into
// mk_writable / implicit_writable / send / ready_to_recv /
// implicit_invalidate call sequences.
//
// Access sets are kept parametric in the program's symbols (outer
// sequential loop variables): analysis produces rules that are
// instantiated — and memoized — per symbol valuation at run time,
// mirroring the paper's use of Omega-generated code fragments invoked
// with symbolic variable values.
package compiler

import (
	"fmt"
	"sync"

	"hpfdsm/internal/distribute"
	"hpfdsm/internal/ir"
	"hpfdsm/internal/sections"
)

// Level is the cumulative optimization level.
type Level int

// Optimization levels, each including the previous.
const (
	// OptNone runs the default coherence protocol only.
	OptNone Level = iota
	// OptBase adds compiler-orchestrated sender-initiated transfers
	// (Section 4.2), one message per block.
	OptBase
	// OptBulk coalesces contiguous blocks into large payloads.
	OptBulk
	// OptRTElim removes redundant run-time calls and barriers under the
	// whole-program assumptions of Section 4.3.
	OptRTElim
	// OptPRE additionally eliminates redundant communication: a
	// transfer whose data cannot have changed since an earlier
	// identical transfer is skipped (the paper's planned PRE
	// extension).
	OptPRE
)

func (l Level) String() string {
	switch l {
	case OptNone:
		return "none"
	case OptBase:
		return "base"
	case OptBulk:
		return "bulk"
	case OptRTElim:
		return "rtelim"
	case OptPRE:
		return "pre"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// ParseLevel converts a level name to a Level.
func ParseLevel(s string) (Level, error) {
	for _, l := range []Level{OptNone, OptBase, OptBulk, OptRTElim, OptPRE} {
		if l.String() == s {
			return l, nil
		}
	}
	return OptNone, fmt.Errorf("compiler: unknown optimization level %q", s)
}

// Analysis holds the compiled communication rules for one program on
// one machine configuration.
type Analysis struct {
	Prog      *ir.Program
	NP        int
	Layouts   map[*ir.Array]sections.Layout
	BlockSize int

	dists map[*ir.Array]distribute.Dist
	loops map[*ir.ParLoop]*LoopRule
	reds  map[*ir.Reduce]*LoopRule

	// mu guards schedCache and partCache: an Analysis may be shared by
	// concurrent sweep workers (see Cached). Rules, distributions, and
	// layouts are immutable after New.
	mu         sync.RWMutex
	schedCache map[schedKey]*Schedule
	partCache  map[schedKey]*Partition
	shared     map[*LoopRule]bool // rules reachable from >1 call site
}

// schedKey memoizes per-loop instantiations. The valuation of the
// rule's used symbols is inlined as a fixed array for the common case
// (no allocation, comparable key); rules with more symbols spill to a
// formatted string.
type schedKey struct {
	loop any
	kind uint8 // 0 = partition, 1 = schedule
	n    uint8
	vals [8]int
	sig  string // only when n > 8
}

// New analyzes prog for an np-processor machine. Layouts maps each
// array to its shared-segment placement; blockSize is the coherence
// unit. It returns an error if the program falls outside the supported
// forms (see Validate).
func New(prog *ir.Program, np int, layouts map[*ir.Array]sections.Layout, blockSize int) (*Analysis, error) {
	a := &Analysis{
		Prog:       prog,
		NP:         np,
		Layouts:    layouts,
		BlockSize:  blockSize,
		dists:      make(map[*ir.Array]distribute.Dist),
		loops:      make(map[*ir.ParLoop]*LoopRule),
		reds:       make(map[*ir.Reduce]*LoopRule),
		schedCache: make(map[schedKey]*Schedule),
		partCache:  make(map[schedKey]*Partition),
	}
	for _, arr := range prog.Arrays {
		a.dists[arr] = distribute.New(arr.Dist, arr.LastExtent(), np)
		if _, ok := layouts[arr]; !ok {
			return nil, fmt.Errorf("compiler: array %s has no layout", arr.Name)
		}
	}
	if err := a.buildRules(); err != nil {
		return nil, err
	}
	a.markRedundant()
	return a, nil
}

// Dist returns the distribution of an array.
func (a *Analysis) Dist(arr *ir.Array) distribute.Dist { return a.dists[arr] }

// analysisKey identifies one compiled configuration for the cross-run
// cache: program identity, machine shape, and a fingerprint of the
// array placement (layouts are derived deterministically from the
// machine configuration, but the fingerprint guards against a caller
// with a different allocation policy).
type analysisKey struct {
	prog      *ir.Program
	np        int
	blockSize int
	layoutSig uint64
}

var (
	cachedMu sync.Mutex
	cached   = map[analysisKey]*Analysis{}
)

// Cached returns a memoized Analysis for (prog, np, layouts,
// blockSize), building one on first use. Programs obtained from the
// same source and parameters share a pointer (see apps.Program), so
// repeated runs — and every variant of a sweep at the same node count —
// reuse one Analysis and its instantiation caches: section arithmetic
// for a given (loop, valuation) runs once per process, not once per
// run. The returned Analysis is safe for concurrent use.
func Cached(prog *ir.Program, np int, layouts map[*ir.Array]sections.Layout, blockSize int) (*Analysis, error) {
	k := analysisKey{prog: prog, np: np, blockSize: blockSize, layoutSig: layoutSig(prog, layouts)}
	cachedMu.Lock()
	a, ok := cached[k]
	cachedMu.Unlock()
	if ok {
		return a, nil
	}
	a, err := New(prog, np, layouts, blockSize)
	if err != nil {
		return nil, err
	}
	cachedMu.Lock()
	if a2, ok := cached[k]; ok {
		a = a2 // a concurrent builder won; converge on one instance
	} else {
		cached[k] = a
	}
	cachedMu.Unlock()
	return a, nil
}

// layoutSig is an FNV-style fold of the arrays' placements.
func layoutSig(prog *ir.Program, layouts map[*ir.Array]sections.Layout) uint64 {
	var h uint64 = 1469598103934665603
	for _, arr := range prog.Arrays {
		l := layouts[arr]
		h = h*1099511628211 ^ uint64(l.Base)
		h = h*1099511628211 ^ uint64(l.ElemSize)
	}
	return h
}

// LoopRule is the compiled form of one parallel loop (or global
// reduction): its anchor reference (the owner-computes pivot), the
// distributed loop variable (if any), and the per-reference
// communication rules.
type LoopRule struct {
	Anchor  ir.ArrayRef
	DistVar string // loop variable steering the work partition; "" if none
	Indexes []ir.Index
	Reads   []*RefRule // non-owner reads: producer -> consumer before the loop
	Writes  []*RefRule // non-owner writes: writer -> owner after the loop
	UsedSym []string   // symbols the schedule depends on (memoization key)

	// IndirectArrays lists arrays read through irregular (indirect or
	// non-affine) subscripts in this loop: unanalyzable, always served
	// by the default coherence protocol.
	IndirectArrays []*ir.Array

	anchorRest ir.AffExpr            // anchor's last subscript minus DistVar
	inner      map[string]innerRange // inner-reduction variable bounds
}

// RefRule describes the communication for one array reference.
type RefRule struct {
	Ref  ir.ArrayRef
	Kind RefKind
	// Rest is the reference's last subscript minus its swept loop
	// variable: the (possibly symbolic) shift.
	Rest ir.AffExpr
	// SweepVar is the loop (or inner-reduction) variable in the last
	// subscript, for KindShift and KindGather.
	SweepVar string
	IsWrite  bool
	// Redundant is set by the PRE pass: the transfer duplicates an
	// earlier one with no intervening write to the array.
	Redundant bool
}

// RefKind classifies how a reference's last subscript relates to the
// loop's work partition.
type RefKind int

// Reference kinds.
const (
	// KindLocal: same distribution alignment, no communication.
	KindLocal RefKind = iota
	// KindShift: lastSub = distVar + c; boundary exchange.
	KindShift
	// KindFixed: lastSub has no loop variable; one owner broadcasts to
	// all executing processors (e.g. lu's pivot column).
	KindFixed
	// KindGather: lastSub sweeps a non-distributed loop variable; every
	// executing processor reads the whole swept range (e.g. cg's
	// vector gather).
	KindGather
)

func (k RefKind) String() string {
	return [...]string{"local", "shift", "fixed", "gather"}[k]
}
