package apps

import "math"

// LU is the paper's lu: LU decomposition (no pivoting) of a 1024x1024
// matrix ("Stanford, HPF by authors", 4 MB later refitted as 8 MB with
// one array). Columns are dealt cyclically for load balance; each
// elimination step broadcasts the pivot column to every processor, and
// the triangular iteration space shrinks the transfers — the edge
// effects the paper discusses.
func LU() *App {
	return &App{
		Name: "lu",
		Source: `
PROGRAM lu
PARAM n = 1024
REAL a(n, n)
DISTRIBUTE a(*, CYCLIC)

FORALL (i = 1:n, j = 1:n)
  a(i, j) = MIN(i, j) + 0.01*i + 0.02*j
END FORALL

STARTTIMER

DO k = 1, n-1
  FORALL (i = k+1:n)
    a(i, k) = a(i, k) / a(k, k)
  END FORALL
  FORALL (i = k+1:n, j = k+1:n)
    a(i, j) = a(i, j) - a(i, k) * a(k, j)
  END FORALL
END DO
END
`,
		PaperParams:  map[string]int{"N": 1024},
		ScaledParams: map[string]int{"N": 96},
		BenchParams:  map[string]int{"N": 192},
		PaperProblem: "1024x1024 matrix (5 runs)",
		PaperMemMB:   4,
		CheckArrays:  []string{"A"},
		Tol:          1e-8,
		Reference:    luRef,
	}
}

func luRef(params map[string]int) map[string][]float64 {
	n := params["N"]
	a := make([]float64, n*n)
	for j := 1; j <= n; j++ {
		for i := 1; i <= n; i++ {
			a[idx2(n, i, j)] = math.Min(float64(i), float64(j)) + 0.01*float64(i) + 0.02*float64(j)
		}
	}
	for k := 1; k <= n-1; k++ {
		for i := k + 1; i <= n; i++ {
			a[idx2(n, i, k)] /= a[idx2(n, k, k)]
		}
		for j := k + 1; j <= n; j++ {
			akj := a[idx2(n, k, j)]
			for i := k + 1; i <= n; i++ {
				a[idx2(n, i, j)] -= a[idx2(n, i, k)] * akj
			}
		}
	}
	return map[string][]float64{"A": a}
}
