package apps

import (
	"math"
	"testing"

	"hpfdsm/internal/compiler"
	"hpfdsm/internal/config"
	"hpfdsm/internal/runtime"
)

// checkApp runs one app at its scaled size under the given options and
// compares every check array against the sequential reference.
func checkApp(t *testing.T, a *App, opt runtime.Options) *runtime.Result {
	t.Helper()
	prog, err := a.Program(a.ScaledParams)
	if err != nil {
		t.Fatal(err)
	}
	res, err := runtime.Run(prog, opt)
	if err != nil {
		t.Fatalf("%s: %v", a.Name, err)
	}
	want := a.Reference(a.ScaledParams)
	for _, name := range a.CheckArrays {
		got := res.ArrayData(name)
		ref := want[name]
		if len(got) != len(ref) {
			t.Fatalf("%s: array %s length %d vs reference %d", a.Name, name, len(got), len(ref))
		}
		worst, wi := 0.0, -1
		for i := range got {
			scale := math.Max(1, math.Abs(ref[i]))
			if d := math.Abs(got[i]-ref[i]) / scale; d > worst {
				worst, wi = d, i
			}
		}
		if worst > a.Tol {
			t.Fatalf("%s: array %s diverges from reference: rel err %g at %d (got %g want %g)",
				a.Name, name, worst, wi, got[wi], ref[wi])
		}
	}
	return res
}

func optLevels() []compiler.Level {
	return []compiler.Level{compiler.OptNone, compiler.OptBase, compiler.OptBulk, compiler.OptRTElim, compiler.OptPRE}
}

func TestAppsCorrectAllLevels(t *testing.T) {
	for _, a := range All() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			for _, opt := range optLevels() {
				checkApp(t, a, runtime.Options{Machine: config.Default(), Opt: opt})
			}
		})
	}
}

func TestAppsCorrectMessagePassing(t *testing.T) {
	for _, a := range All() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			checkApp(t, a, runtime.Options{Machine: config.Default(), Backend: runtime.MessagePassing})
		})
	}
}

func TestAppsCorrectSingleCPU(t *testing.T) {
	for _, a := range All() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			mc := config.Default().WithCPUMode(config.SingleCPU)
			checkApp(t, a, runtime.Options{Machine: mc, Opt: compiler.OptRTElim})
		})
	}
}

func TestAppsOptimizationReducesMisses(t *testing.T) {
	// Table 3's pattern: every application's miss count drops with the
	// optimizations; grav the least (edge effects on its 1032-byte
	// columns), stencils the most.
	for _, a := range All() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			unopt := checkApp(t, a, runtime.Options{Machine: config.Default(), Opt: compiler.OptNone})
			opt := checkApp(t, a, runtime.Options{Machine: config.Default(), Opt: compiler.OptRTElim})
			mu, mo := unopt.Stats.TotalMisses(), opt.Stats.TotalMisses()
			if mo >= mu {
				t.Fatalf("misses did not drop: %d -> %d", mu, mo)
			}
			t.Logf("%s: misses %d -> %d (%.0f%% reduction)", a.Name, mu, mo, 100*(1-float64(mo)/float64(mu)))
		})
	}
}

func TestAppsMetadata(t *testing.T) {
	names := map[string]bool{}
	for _, a := range All() {
		if names[a.Name] {
			t.Fatalf("duplicate app %s", a.Name)
		}
		names[a.Name] = true
		if a.PaperProblem == "" || a.PaperMemMB <= 0 || len(a.CheckArrays) == 0 {
			t.Fatalf("%s: incomplete metadata", a.Name)
		}
		if _, err := a.Program(a.PaperParams); err != nil {
			t.Fatalf("%s: paper-size program does not parse: %v", a.Name, err)
		}
		if _, err := ByName(a.Name); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("ByName accepted unknown app")
	}
}

func TestMemoryFootprints(t *testing.T) {
	// Table 2 check: measured footprints at paper sizes should be in
	// the ballpark of the published ones (shallow and pde used 32-bit
	// reals; ours are float64).
	cases := map[string][2]float64{ // app -> min, max MB at paper size
		"jacobi":  {30, 70},
		"pde":     {40, 60},
		"shallow": {28, 60},
		"grav":    {16, 40},
		"lu":      {4, 10},
		"cg":      {0.9, 6},
	}
	for _, a := range All() {
		got := a.MemMB(a.PaperParams)
		rng := cases[a.Name]
		if got < rng[0] || got > rng[1] {
			t.Errorf("%s: footprint %.1f MB outside expected [%v, %v]", a.Name, got, rng[0], rng[1])
		}
	}
}

func TestIrregularApp(t *testing.T) {
	a := Irregular()
	// Correct at several levels on shared memory (the indirect gather
	// rides the default protocol; the affine field is optimized).
	for _, opt := range []compiler.Level{compiler.OptNone, compiler.OptBulk, compiler.OptRTElim} {
		checkApp(t, a, runtime.Options{Machine: config.Default(), Opt: opt})
	}
	// Rejected by the message-passing backend, operationally
	// reproducing the paper's "not amenable to purely message-passing
	// approaches".
	prog, err := a.Program(a.ScaledParams)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := runtime.Run(prog, runtime.Options{Machine: config.Default(), Backend: runtime.MessagePassing}); err == nil {
		t.Fatal("message passing accepted the irregular program")
	}
	// The optimizations still pay on the affine part.
	un := checkApp(t, a, runtime.Options{Machine: config.Default(), Opt: compiler.OptNone})
	op := checkApp(t, a, runtime.Options{Machine: config.Default(), Opt: compiler.OptRTElim})
	if op.Elapsed >= un.Elapsed {
		t.Fatalf("optimizing the affine part did not help: %d vs %d", op.Elapsed, un.Elapsed)
	}
}
