package apps

// PDE is the paper's pde (Genesis PDE1, "HPF by PGI": grid size 128,
// 40 iterations of the RELAX routine only, 56 MB): a 3-D Poisson
// relaxation. The original RELAX is a red-black scheme; we substitute
// a two-array Mehrstellen-style relaxation with the same grid,
// iteration count and communication structure (boundary planes of both
// the solution and the static source to each neighbour per sweep) —
// see DESIGN.md. The static source's boundary planes are the paper's
// redundant-communication opportunity: they never change after
// initialization. Three 128^3 arrays give the ~50 MB footprint of the
// paper's configuration.
func PDE() *App {
	return &App{
		Name: "pde",
		Source: `
PROGRAM pde
PARAM n = 128
PARAM iters = 40
REAL u(n, n, n), v(n, n, n), f(n, n, n)
DISTRIBUTE u(*, *, BLOCK)
DISTRIBUTE v(*, *, BLOCK)
DISTRIBUTE f(*, *, BLOCK)

FORALL (i = 1:n, j = 1:n, k = 1:n)
  u(i, j, k) = 0
  v(i, j, k) = 0
  f(i, j, k) = 0.0001 * (i + 2*j + 3*k)
END FORALL

STARTTIMER

DO t = 1, iters
  FORALL (i = 2:n-1, j = 2:n-1, k = 2:n-1)
    v(i, j, k) = 0.166666666666666667 * (u(i-1, j, k) + u(i+1, j, k) + u(i, j-1, k) + u(i, j+1, k) + u(i, j, k-1) + u(i, j, k+1)) - 0.0833333333333333 * (f(i, j, k-1) + 4.0 * f(i, j, k) + f(i, j, k+1))
  END FORALL
  FORALL (i = 2:n-1, j = 2:n-1, k = 2:n-1)
    u(i, j, k) = v(i, j, k)
  END FORALL
END DO
END
`,
		PaperParams:  map[string]int{"N": 128, "ITERS": 40},
		ScaledParams: map[string]int{"N": 64, "ITERS": 4},
		BenchParams:  map[string]int{"N": 96, "ITERS": 8},
		PaperProblem: "grid size 128, 40 iters (RELAX routine only)",
		PaperMemMB:   56,
		CheckArrays:  []string{"U"},
		Tol:          1e-12,
		Reference:    pdeRef,
	}
}

func pdeRef(params map[string]int) map[string][]float64 {
	n, iters := params["N"], params["ITERS"]
	u := make([]float64, n*n*n)
	v := make([]float64, n*n*n)
	f := make([]float64, n*n*n)
	for k := 1; k <= n; k++ {
		for j := 1; j <= n; j++ {
			for i := 1; i <= n; i++ {
				f[idx3(n, n, i, j, k)] = 0.0001 * float64(i+2*j+3*k)
			}
		}
	}
	const c = 0.166666666666666667
	for t := 0; t < iters; t++ {
		for k := 2; k <= n-1; k++ {
			for j := 2; j <= n-1; j++ {
				for i := 2; i <= n-1; i++ {
					v[idx3(n, n, i, j, k)] = c*(u[idx3(n, n, i-1, j, k)]+u[idx3(n, n, i+1, j, k)]+
						u[idx3(n, n, i, j-1, k)]+u[idx3(n, n, i, j+1, k)]+
						u[idx3(n, n, i, j, k-1)]+u[idx3(n, n, i, j, k+1)]) -
						0.0833333333333333*(f[idx3(n, n, i, j, k-1)]+4.0*f[idx3(n, n, i, j, k)]+f[idx3(n, n, i, j, k+1)])
				}
			}
		}
		for k := 2; k <= n-1; k++ {
			for j := 2; j <= n-1; j++ {
				for i := 2; i <= n-1; i++ {
					u[idx3(n, n, i, j, k)] = v[idx3(n, n, i, j, k)]
				}
			}
		}
	}
	return map[string][]float64{"U": u}
}
