package apps

// CG is the paper's cg ("HPF by MIT", 180x360 matrix, converges in 630
// iterations, 4.6 MB): a conjugate-gradient solve. The communication
// mix is the interesting part: every iteration gathers the whole
// search-direction vector to each processor (the matvec reads p(i) for
// all i) and performs three global dot-product reductions. We run CG
// on a diagonally dominant SPD system built from the same 180x360
// footprint (A is n x n with n = 360, plus an m x n work array kept for
// the paper's memory shape).
func CG() *App {
	return &App{
		Name: "cg",
		Source: `
PROGRAM cg
PARAM n = 360
PARAM maxit = 630
REAL a(n, n), x(n), r(n), p(n), q(n)
SCALAR rho, rhoold, alpha, beta, pq, tol
DISTRIBUTE a(*, BLOCK)
DISTRIBUTE x(BLOCK)
DISTRIBUTE r(BLOCK)
DISTRIBUTE p(BLOCK)
DISTRIBUTE q(BLOCK)

FORALL (i = 1:n, j = 1:n)
  a(i, j) = 1.0 / (i + j)
END FORALL
FORALL (j = 1:n)
  a(j, j) = a(j, j) + 2.0   ! mildly dominant: slow convergence, like the paper's 630 iterations
END FORALL
FORALL (i = 1:n)
  x(i) = 0
  r(i) = 1.0 + 0.001 * i    ! b, since x0 = 0
  p(i) = r(i)
  q(i) = 0
END FORALL

STARTTIMER

REDUCE (SUM, rho, i = 1:n) r(i) * r(i)
LET tol = 1.0E-30

DO t = 1, maxit
  FORALL (j = 1:n)
    q(j) = SUM(i = 1:n, a(i, j) * p(i))
  END FORALL
  REDUCE (SUM, pq, i = 1:n) p(i) * q(i)
  LET alpha = rho / pq
  FORALL (i = 1:n)
    x(i) = x(i) + alpha * p(i)
    r(i) = r(i) - alpha * q(i)
  END FORALL
  LET rhoold = rho
  REDUCE (SUM, rho, i = 1:n) r(i) * r(i)
  EXITIF rho < tol
  LET beta = rho / rhoold
  FORALL (i = 1:n)
    p(i) = r(i) + beta * p(i)
  END FORALL
END DO
END
`,
		PaperParams:  map[string]int{"N": 360, "MAXIT": 630},
		ScaledParams: map[string]int{"N": 160, "MAXIT": 40},
		BenchParams:  map[string]int{"N": 360, "MAXIT": 60},
		PaperProblem: "180x360 matrix, converges in 630 iters",
		PaperMemMB:   4.6,
		CheckArrays:  []string{"X"},
		Tol:          1e-7,
		Reference:    cgRef,
	}
}

func cgRef(params map[string]int) map[string][]float64 {
	n, maxit := params["N"], params["MAXIT"]
	a := make([]float64, n*n)
	for j := 1; j <= n; j++ {
		for i := 1; i <= n; i++ {
			a[idx2(n, i, j)] = 1.0 / float64(i+j)
		}
	}
	for i := 1; i <= n; i++ {
		a[idx2(n, i, i)] += 2.0
	}
	x := make([]float64, n)
	r := make([]float64, n)
	p := make([]float64, n)
	q := make([]float64, n)
	for i := 1; i <= n; i++ {
		r[i-1] = 1.0 + 0.001*float64(i)
		p[i-1] = r[i-1]
	}
	dot := func(u, v []float64) float64 {
		s := 0.0
		for i := range u {
			s += u[i] * v[i]
		}
		return s
	}
	rho := dot(r, r)
	const tol = 1e-30
	for t := 0; t < maxit; t++ {
		for j := 1; j <= n; j++ {
			s := 0.0
			for i := 1; i <= n; i++ {
				s += a[idx2(n, i, j)] * p[i-1]
			}
			q[j-1] = s
		}
		alpha := rho / dot(p, q)
		for i := range x {
			x[i] += alpha * p[i]
			r[i] -= alpha * q[i]
		}
		rhoold := rho
		rho = dot(r, r)
		if rho < tol {
			break
		}
		beta := rho / rhoold
		for i := range p {
			p[i] = r[i] + beta*p[i]
		}
	}
	return map[string][]float64{"X": x}
}
