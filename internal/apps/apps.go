// Package apps provides the paper's six-application suite (Table 2) as
// mini-HPF programs, with paper-scale and test-scale parameter sets and
// sequential Go reference implementations for correctness checking.
//
// Where the original source is unavailable the program reproduces the
// published communication structure (array shapes, distributions,
// stencil patterns, broadcast/gather/reduction mix); DESIGN.md records
// each substitution.
package apps

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"hpfdsm/internal/ir"
	"hpfdsm/internal/lang"
)

// App is one benchmark application.
type App struct {
	Name   string
	Source string // mini-HPF program text

	// PaperParams reproduce Table 2's problem sizes; ScaledParams are
	// small enough for tests; BenchParams are the default for the
	// experiment harness (big enough for the paper's effects, small
	// enough to sweep configurations quickly).
	PaperParams  map[string]int
	ScaledParams map[string]int
	BenchParams  map[string]int

	// PaperProblem is Table 2's "Problem Size" text; PaperMemMB its
	// reported memory footprint.
	PaperProblem string
	PaperMemMB   float64

	// Reference computes the expected final contents of CheckArrays
	// sequentially (column-major flattened, matching
	// runtime.Result.ArrayData). Tol is the comparison tolerance
	// (parallel reductions reassociate floating-point sums).
	Reference   func(params map[string]int) map[string][]float64
	CheckArrays []string
	Tol         float64
}

// progCache memoizes parsed programs per (app, parameter valuation).
// Returned programs are shared and must be treated as read-only — the
// compiler and runtime already do, and the stable pointer is what lets
// the compiler's cross-run analysis cache hit across repeated runs and
// concurrent sweep workers.
var (
	progMu    sync.Mutex
	progCache = map[string]*ir.Program{}
)

// Program parses the app with the given parameter overrides. Parses are
// memoized: the same app and parameters return the same *ir.Program.
func (a *App) Program(params map[string]int) (*ir.Program, error) {
	key := progKey(a.Name, params)
	progMu.Lock()
	defer progMu.Unlock()
	if p, ok := progCache[key]; ok {
		return p, nil
	}
	p, err := lang.ParseWithOverrides(a.Source, params)
	if err != nil {
		return nil, fmt.Errorf("apps: %s: %w", a.Name, err)
	}
	progCache[key] = p
	return p, nil
}

func progKey(name string, params map[string]int) string {
	ks := make([]string, 0, len(params))
	for k := range params {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	var b strings.Builder
	b.WriteString(name)
	for _, k := range ks {
		fmt.Fprintf(&b, "|%s=%d", k, params[k])
	}
	return b.String()
}

// MemMB returns the shared-data footprint (in MiB) of the app at the
// given parameters.
func (a *App) MemMB(params map[string]int) float64 {
	p, err := a.Program(params)
	if err != nil {
		panic(err)
	}
	bytes := 0
	for _, arr := range p.Arrays {
		bytes += arr.Elems() * 8
	}
	return float64(bytes) / (1 << 20)
}

// All returns the suite in the paper's Table 2 order.
func All() []*App {
	return []*App{PDE(), Shallow(), Grav(), LU(), CG(), Jacobi()}
}

// ByName returns the named app or an error. Besides the Table 2 suite
// it resolves "irregular", the future-work benchmark kept outside All().
func ByName(name string) (*App, error) {
	for _, a := range append(All(), Irregular()) {
		if a.Name == name {
			return a, nil
		}
	}
	return nil, fmt.Errorf("apps: unknown application %q", name)
}

// idx2 flattens a column-major 2-D index (1-based).
func idx2(n1 int, i, j int) int { return (j-1)*n1 + (i - 1) }

// idx3 flattens a column-major 3-D index (1-based).
func idx3(n1, n2 int, i, j, k int) int { return ((k-1)*n2+(j-1))*n1 + (i - 1) }
