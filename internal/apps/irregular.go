package apps

import "math"

// Irregular is the benchmark class the paper's conclusion announces as
// future work: "a mix of simple affine array subscript and indirect
// array subscripts ... not amenable to purely message-passing
// approaches". It is not part of Table 2; it demonstrates the
// shared-memory versatility argument: the affine references still get
// compiler-directed transfers, the indirect gather transparently rides
// the default coherence protocol, and the message-passing backend must
// reject the program outright.
//
// The kernel couples a structured 2-D field (pure affine stencil,
// fully optimizable) with an unstructured 1-D smoothing operator whose
// scattered partners come from a static index map (an
// unstructured-mesh edge list in miniature): the mix the paper
// describes.
func Irregular() *App {
	return &App{
		Name: "irregular",
		Source: `
PROGRAM irregular
PARAM n = 4096
PARAM m = 128
PARAM iters = 20
REAL v(n), x(n), map1(n), map2(n)
REAL w(m, m), wnew(m, m)
DISTRIBUTE v(BLOCK)
DISTRIBUTE x(BLOCK)
DISTRIBUTE map1(BLOCK)
DISTRIBUTE map2(BLOCK)
DISTRIBUTE w(*, BLOCK)
DISTRIBUTE wnew(*, BLOCK)

FORALL (i = 1:n)
  map1(i) = 1 + MOD(97 * i, n)    ! scattered partners
  map2(i) = 1 + MOD(389 * i + 7, n)
  v(i) = 0.001 * i
  x(i) = 0
END FORALL
FORALL (i = 1:m, j = 1:m)
  w(i, j) = 0.01 * i + 0.02 * j
  wnew(i, j) = 0
END FORALL

STARTTIMER

DO t = 1, iters
  ! Structured part: plain affine stencil, fully under compiler control.
  FORALL (i = 2:m-1, j = 2:m-1)
    wnew(i, j) = 0.25 * (w(i-1, j) + w(i+1, j) + w(i, j-1) + w(i, j+1))
  END FORALL
  FORALL (i = 2:m-1, j = 2:m-1)
    w(i, j) = wnew(i, j)
  END FORALL
  ! Unstructured part: indirect gathers ride the default protocol.
  FORALL (i = 2:n-1)
    x(i) = 0.4 * v(i) + 0.2 * (v(i-1) + v(i+1)) + 0.1 * (v(map1(i)) + v(map2(i)))
  END FORALL
  FORALL (i = 2:n-1)
    v(i) = x(i)
  END FORALL
END DO
END
`,
		PaperParams:  map[string]int{"N": 65536, "M": 512, "ITERS": 50},
		ScaledParams: map[string]int{"N": 1024, "M": 64, "ITERS": 6},
		BenchParams:  map[string]int{"N": 4096, "M": 128, "ITERS": 20},
		PaperProblem: "future work (paper §7): affine + indirect subscripts",
		PaperMemMB:   2,
		CheckArrays:  []string{"V", "W"},
		Tol:          1e-12,
		Reference:    irregularRef,
	}
}

func irregularRef(params map[string]int) map[string][]float64 {
	n, m, iters := params["N"], params["M"], params["ITERS"]
	v := make([]float64, n+1)
	x := make([]float64, n+1)
	m1 := make([]int, n+1)
	m2 := make([]int, n+1)
	for i := 1; i <= n; i++ {
		m1[i] = 1 + int(math.Mod(float64(97*i), float64(n)))
		m2[i] = 1 + int(math.Mod(float64(389*i+7), float64(n)))
		v[i] = 0.001 * float64(i)
	}
	w := make([]float64, m*m)
	wn := make([]float64, m*m)
	at := func(a []float64, i, j int) *float64 { return &a[(j-1)*m+(i-1)] }
	for j := 1; j <= m; j++ {
		for i := 1; i <= m; i++ {
			*at(w, i, j) = 0.01*float64(i) + 0.02*float64(j)
		}
	}
	for t := 0; t < iters; t++ {
		for j := 2; j <= m-1; j++ {
			for i := 2; i <= m-1; i++ {
				*at(wn, i, j) = 0.25 * (*at(w, i-1, j) + *at(w, i+1, j) + *at(w, i, j-1) + *at(w, i, j+1))
			}
		}
		for j := 2; j <= m-1; j++ {
			for i := 2; i <= m-1; i++ {
				*at(w, i, j) = *at(wn, i, j)
			}
		}
		for i := 2; i <= n-1; i++ {
			x[i] = 0.4*v[i] + 0.2*(v[i-1]+v[i+1]) + 0.1*(v[m1[i]]+v[m2[i]])
		}
		for i := 2; i <= n-1; i++ {
			v[i] = x[i]
		}
	}
	return map[string][]float64{"V": v[1:], "W": w}
}
