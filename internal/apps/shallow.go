package apps

// Shallow is the paper's shallow ("NCAR, HPF by PGI": 1025x513 grid,
// 100 iterations, 28 MB): the classic shallow-water-equations
// benchmark. Thirteen state arrays are updated by three stencil loop
// groups per time step (flux/vorticity, advance, time smoothing), plus
// periodic column-wrap copies; communication is boundary columns
// between neighbours, the pattern the paper's optimization targets
// best. The paper's 28 MB footprint implies 32-bit reals; our arrays
// are float64, so the measured footprint is about twice that.
func Shallow() *App {
	return &App{
		Name: "shallow",
		Source: `
PROGRAM shallow
PARAM n1 = 1025
PARAM n2 = 513
PARAM iters = 100
REAL u(n1, n2), v(n1, n2), p(n1, n2)
REAL unew(n1, n2), vnew(n1, n2), pnew(n1, n2)
REAL uold(n1, n2), vold(n1, n2), pold(n1, n2)
REAL cu(n1, n2), cv(n1, n2), z(n1, n2), h(n1, n2)
REAL cor(n1, n2)   ! static metric/Coriolis factors
SCALAR fsdx, fsdy, tdts8, tdtsdx, tdtsdy, alpha
DISTRIBUTE u(*, BLOCK)
DISTRIBUTE v(*, BLOCK)
DISTRIBUTE p(*, BLOCK)
DISTRIBUTE unew(*, BLOCK)
DISTRIBUTE vnew(*, BLOCK)
DISTRIBUTE pnew(*, BLOCK)
DISTRIBUTE uold(*, BLOCK)
DISTRIBUTE vold(*, BLOCK)
DISTRIBUTE pold(*, BLOCK)
DISTRIBUTE cu(*, BLOCK)
DISTRIBUTE cv(*, BLOCK)
DISTRIBUTE z(*, BLOCK)
DISTRIBUTE h(*, BLOCK)
DISTRIBUTE cor(*, BLOCK)

LET fsdx = 0.00004
LET fsdy = 0.00004
LET tdts8 = 0.0000002
LET tdtsdx = 0.0000005
LET tdtsdy = 0.0000005
LET alpha = 0.001

FORALL (i = 1:n1, j = 1:n2)
  p(i, j) = 50000.0 + i + 2*j
  u(i, j) = 10.0 + 0.01 * i
  v(i, j) = -5.0 + 0.01 * j
  uold(i, j) = u(i, j)
  vold(i, j) = v(i, j)
  pold(i, j) = p(i, j)
  unew(i, j) = 0
  vnew(i, j) = 0
  pnew(i, j) = 0
  cu(i, j) = 0
  cv(i, j) = 0
  z(i, j) = 0
  h(i, j) = 0
  cor(i, j) = 0.0001 * i + 0.0002 * j
END FORALL

STARTTIMER

! The original is structured as subroutines (the paper: codes are
! "justifiably written in terms of subroutines"); CALL inlines them.
SUB fluxes
  ! Loop 100: fluxes, vorticity, height.
  FORALL (i = 2:n1, j = 1:n2-1)
    cu(i, j) = 0.5 * (p(i, j) + p(i-1, j)) * u(i, j)
  END FORALL
  FORALL (i = 1:n1-1, j = 2:n2)
    cv(i, j) = 0.5 * (p(i, j) + p(i, j-1)) * v(i, j)
  END FORALL
  FORALL (i = 2:n1, j = 2:n2)
    z(i, j) = (fsdx * (v(i, j) - v(i-1, j)) - fsdy * (u(i, j) - u(i, j-1))) / (p(i-1, j-1) + p(i, j-1) + p(i, j) + p(i-1, j))
  END FORALL
  FORALL (i = 1:n1-1, j = 1:n2-1)
    h(i, j) = p(i, j) + 0.25 * (u(i+1, j) * u(i+1, j) + u(i, j) * u(i, j) + v(i, j+1) * v(i, j+1) + v(i, j) * v(i, j))
  END FORALL
END SUB

SUB advance
  ! Loop 200: advance the solution.
  FORALL (i = 2:n1, j = 1:n2-1)
    unew(i, j) = uold(i, j) + tdts8 * (z(i, j+1) + z(i, j)) * (cv(i, j+1) + cv(i-1, j+1) + cv(i-1, j) + cv(i, j)) - tdtsdx * (h(i, j) - h(i-1, j)) + 0.00001 * (cor(i, j+1) + cor(i, j))
  END FORALL
  FORALL (i = 1:n1-1, j = 2:n2)
    vnew(i, j) = vold(i, j) - tdts8 * (z(i+1, j) + z(i, j)) * (cu(i+1, j) + cu(i, j) + cu(i, j-1) + cu(i+1, j-1)) - tdtsdy * (h(i, j) - h(i, j-1)) - 0.00001 * (cor(i, j-1) + cor(i, j))
  END FORALL
  FORALL (i = 1:n1-1, j = 1:n2-1)
    pnew(i, j) = pold(i, j) - tdtsdx * (cu(i+1, j) - cu(i, j)) - tdtsdy * (cv(i, j+1) - cv(i, j))
  END FORALL

  ! Periodic wrap of the new pressure's first/last columns.
  FORALL (i = 1:n1)
    pnew(i, n2) = pnew(i, 1)
  END FORALL
  FORALL (i = 1:n1)
    unew(i, n2) = unew(i, 1)
  END FORALL
END SUB

SUB smooth
  ! Loop 300: time smoothing and rotation.
  FORALL (i = 1:n1, j = 1:n2)
    uold(i, j) = u(i, j) + alpha * (unew(i, j) - 2.0 * u(i, j) + uold(i, j))
    vold(i, j) = v(i, j) + alpha * (vnew(i, j) - 2.0 * v(i, j) + vold(i, j))
    pold(i, j) = p(i, j) + alpha * (pnew(i, j) - 2.0 * p(i, j) + pold(i, j))
  END FORALL
  FORALL (i = 1:n1, j = 1:n2)
    u(i, j) = unew(i, j)
    v(i, j) = vnew(i, j)
    p(i, j) = pnew(i, j)
  END FORALL
END SUB

DO t = 1, iters
  CALL fluxes
  CALL advance
  CALL smooth
END DO
END
`,
		PaperParams:  map[string]int{"N1": 1025, "N2": 513, "ITERS": 100},
		ScaledParams: map[string]int{"N1": 129, "N2": 65, "ITERS": 6},
		BenchParams:  map[string]int{"N1": 257, "N2": 129, "ITERS": 10},
		PaperProblem: "1025x513 grid, 100 iters",
		PaperMemMB:   28,
		CheckArrays:  []string{"P", "U"},
		Tol:          1e-9,
		Reference:    shallowRef,
	}
}

func shallowRef(params map[string]int) map[string][]float64 {
	n1, n2, iters := params["N1"], params["N2"], params["ITERS"]
	sz := n1 * n2
	mk := func() []float64 { return make([]float64, sz) }
	u, v, p := mk(), mk(), mk()
	unew, vnew, pnew := mk(), mk(), mk()
	uold, vold, pold := mk(), mk(), mk()
	cu, cv, z, h, cor := mk(), mk(), mk(), mk(), mk()
	at := func(m []float64, i, j int) *float64 { return &m[idx2(n1, i, j)] }

	const (
		fsdx   = 0.00004
		fsdy   = 0.00004
		tdts8  = 0.0000002
		tdtsdx = 0.0000005
		tdtsdy = 0.0000005
		alpha  = 0.001
	)
	for j := 1; j <= n2; j++ {
		for i := 1; i <= n1; i++ {
			*at(p, i, j) = 50000.0 + float64(i) + 2*float64(j)
			*at(u, i, j) = 10.0 + 0.01*float64(i)
			*at(v, i, j) = -5.0 + 0.01*float64(j)
			*at(uold, i, j) = *at(u, i, j)
			*at(vold, i, j) = *at(v, i, j)
			*at(pold, i, j) = *at(p, i, j)
			*at(cor, i, j) = 0.0001*float64(i) + 0.0002*float64(j)
		}
	}
	for t := 0; t < iters; t++ {
		for j := 1; j <= n2-1; j++ {
			for i := 2; i <= n1; i++ {
				*at(cu, i, j) = 0.5 * (*at(p, i, j) + *at(p, i-1, j)) * *at(u, i, j)
			}
		}
		for j := 2; j <= n2; j++ {
			for i := 1; i <= n1-1; i++ {
				*at(cv, i, j) = 0.5 * (*at(p, i, j) + *at(p, i, j-1)) * *at(v, i, j)
			}
		}
		for j := 2; j <= n2; j++ {
			for i := 2; i <= n1; i++ {
				*at(z, i, j) = (fsdx*(*at(v, i, j)-*at(v, i-1, j)) - fsdy*(*at(u, i, j)-*at(u, i, j-1))) /
					(*at(p, i-1, j-1) + *at(p, i, j-1) + *at(p, i, j) + *at(p, i-1, j))
			}
		}
		for j := 1; j <= n2-1; j++ {
			for i := 1; i <= n1-1; i++ {
				*at(h, i, j) = *at(p, i, j) + 0.25*(*at(u, i+1, j)**at(u, i+1, j)+*at(u, i, j)**at(u, i, j)+
					*at(v, i, j+1)**at(v, i, j+1)+*at(v, i, j)**at(v, i, j))
			}
		}
		for j := 1; j <= n2-1; j++ {
			for i := 2; i <= n1; i++ {
				*at(unew, i, j) = *at(uold, i, j) + tdts8*(*at(z, i, j+1)+*at(z, i, j))*
					(*at(cv, i, j+1)+*at(cv, i-1, j+1)+*at(cv, i-1, j)+*at(cv, i, j)) -
					tdtsdx*(*at(h, i, j)-*at(h, i-1, j)) + 0.00001*(*at(cor, i, j+1)+*at(cor, i, j))
			}
		}
		for j := 2; j <= n2; j++ {
			for i := 1; i <= n1-1; i++ {
				*at(vnew, i, j) = *at(vold, i, j) - tdts8*(*at(z, i+1, j)+*at(z, i, j))*
					(*at(cu, i+1, j)+*at(cu, i, j)+*at(cu, i, j-1)+*at(cu, i+1, j-1)) -
					tdtsdy*(*at(h, i, j)-*at(h, i, j-1)) - 0.00001*(*at(cor, i, j-1)+*at(cor, i, j))
			}
		}
		for j := 1; j <= n2-1; j++ {
			for i := 1; i <= n1-1; i++ {
				*at(pnew, i, j) = *at(pold, i, j) - tdtsdx*(*at(cu, i+1, j)-*at(cu, i, j)) -
					tdtsdy*(*at(cv, i, j+1)-*at(cv, i, j))
			}
		}
		for i := 1; i <= n1; i++ {
			*at(pnew, i, n2) = *at(pnew, i, 1)
			*at(unew, i, n2) = *at(unew, i, 1)
		}
		for j := 1; j <= n2; j++ {
			for i := 1; i <= n1; i++ {
				*at(uold, i, j) = *at(u, i, j) + alpha*(*at(unew, i, j)-2.0**at(u, i, j)+*at(uold, i, j))
				*at(vold, i, j) = *at(v, i, j) + alpha*(*at(vnew, i, j)-2.0**at(v, i, j)+*at(vold, i, j))
				*at(pold, i, j) = *at(p, i, j) + alpha*(*at(pnew, i, j)-2.0**at(p, i, j)+*at(pold, i, j))
			}
		}
		for j := 1; j <= n2; j++ {
			for i := 1; i <= n1; i++ {
				*at(u, i, j) = *at(unew, i, j)
				*at(v, i, j) = *at(vnew, i, j)
				*at(p, i, j) = *at(pnew, i, j)
			}
		}
	}
	return map[string][]float64{"P": p, "U": u}
}
