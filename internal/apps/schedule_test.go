package apps

import (
	"testing"

	"hpfdsm/internal/compiler"
	"hpfdsm/internal/config"
	"hpfdsm/internal/ir"
	"hpfdsm/internal/runtime"
)

// analysisOf compiles an app at scaled size and returns its program and
// analysis (via a completed run, which binds layouts).
func analysisOf(t *testing.T, name string) (*ir.Program, *runtime.Result) {
	t.Helper()
	a, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := a.Program(a.ScaledParams)
	if err != nil {
		t.Fatal(err)
	}
	res, err := runtime.Run(prog, runtime.Options{Machine: config.Default(), Opt: compiler.OptBulk})
	if err != nil {
		t.Fatal(err)
	}
	return prog, res
}

// loops returns the parallel loops of the main sequential loop, in
// order, flattening inlined subroutine blocks.
func timeLoops(prog *ir.Program) []*ir.ParLoop {
	var out []*ir.ParLoop
	var walk func(ss []ir.Stmt)
	walk = func(ss []ir.Stmt) {
		for _, s := range ss {
			switch st := s.(type) {
			case *ir.ParLoop:
				out = append(out, st)
			case *ir.Block:
				walk(st.Body)
			case *ir.SeqLoop:
				walk(st.Body)
			}
		}
	}
	for _, s := range prog.Body {
		if sl, ok := s.(*ir.SeqLoop); ok {
			walk(sl.Body)
		}
	}
	return out
}

func TestJacobiScheduleShape(t *testing.T) {
	prog, res := analysisOf(t, "jacobi")
	an := res.Analysis()
	env := map[string]int{}
	for k, v := range prog.Params {
		env[k] = v
	}
	env["T"] = 1
	sweep := timeLoops(prog)[0]
	rule := an.LoopRuleOf(sweep)
	sched := an.Schedule(sweep, rule, env)
	// Boundary exchange: 2*(np-1) transfers, nearest neighbours only.
	if len(sched.Reads) != 14 {
		t.Fatalf("jacobi sweep transfers = %d, want 14", len(sched.Reads))
	}
	for _, tr := range sched.Reads {
		d := tr.Sender - tr.Receiver
		if d != 1 && d != -1 {
			t.Fatalf("non-neighbour transfer %v", tr)
		}
		if tr.Sec.Dims[1].Count() != 1 {
			t.Fatalf("transfer spans %d columns", tr.Sec.Dims[1].Count())
		}
	}
	if len(sched.Writes) != 0 {
		t.Fatal("jacobi has no non-owner writes")
	}
}

func TestLUBroadcastShrinksWithK(t *testing.T) {
	prog, res := analysisOf(t, "lu")
	an := res.Analysis()
	var update *ir.ParLoop
	for _, pl := range timeLoops(prog) {
		if len(pl.Indexes) == 2 {
			update = pl
		}
	}
	rule := an.LoopRuleOf(update)
	env := map[string]int{"N": 96}
	env["K"] = 10
	early := an.Schedule(update, rule, env)
	env2 := map[string]int{"N": 96, "K": 90}
	late := an.Schedule(update, rule, env2)
	// The pivot column broadcast: one sender, multiple receivers.
	senders := map[int]bool{}
	var earlyBlocks, lateBlocks int
	for _, tr := range early.Reads {
		senders[tr.Sender] = true
		earlyBlocks += tr.NumBlocks
	}
	if len(senders) != 1 {
		t.Fatalf("pivot broadcast has %d senders", len(senders))
	}
	for _, tr := range late.Reads {
		lateBlocks += tr.NumBlocks
	}
	// Triangular shrink: the late broadcast moves fewer whole blocks
	// (the paper's edge-effects discussion for lu).
	if lateBlocks >= earlyBlocks {
		t.Fatalf("late broadcast (%d blocks) not smaller than early (%d)", lateBlocks, earlyBlocks)
	}
}

func TestCGGatherCoversVector(t *testing.T) {
	prog, res := analysisOf(t, "cg")
	an := res.Analysis()
	var matvec *ir.ParLoop
	for _, pl := range timeLoops(prog) {
		for _, as := range pl.Body {
			if as.LHS.Array.Name == "Q" {
				matvec = pl
			}
		}
	}
	if matvec == nil {
		t.Fatal("matvec loop not found")
	}
	rule := an.LoopRuleOf(matvec)
	env := map[string]int{}
	for k, v := range prog.Params {
		env[k] = v
	}
	env["T"] = 1
	sched := an.Schedule(matvec, rule, env)
	// Every processor gathers the rest of p: total gathered elements
	// = np * (n - n/np).
	n := prog.Param("N")
	np := 8
	total := 0
	for _, tr := range sched.Reads {
		if tr.Array.Name != "P" {
			t.Fatalf("unexpected transfer array %s", tr.Array.Name)
		}
		total += tr.Sec.Count()
	}
	if want := np * (n - n/np); total != want {
		t.Fatalf("gathered %d elements, want %d", total, want)
	}
}

func TestPDETransfersPlanes(t *testing.T) {
	prog, res := analysisOf(t, "pde")
	an := res.Analysis()
	sweep := timeLoops(prog)[0]
	rule := an.LoopRuleOf(sweep)
	env := map[string]int{}
	for k, v := range prog.Params {
		env[k] = v
	}
	env["T"] = 1
	sched := an.Schedule(sweep, rule, env)
	// Reads: u's k±1 boundary planes and f's k±1 static source planes.
	arrays := map[string]int{}
	for _, tr := range sched.Reads {
		arrays[tr.Array.Name]++
		if tr.Sec.Dims[2].Count() != 1 {
			t.Fatalf("plane transfer spans %d planes", tr.Sec.Dims[2].Count())
		}
	}
	if arrays["U"] != 14 || arrays["F"] != 14 {
		t.Fatalf("plane transfer counts = %v, want U:14 F:14", arrays)
	}
	// f's transfers are the PRE opportunity.
	for _, rr := range rule.Reads {
		if rr.Ref.Array.Name == "F" && !rr.Redundant {
			t.Fatalf("f transfer not marked redundant: %v", rr.Ref)
		}
	}
}

func TestShallowWrapIsFixedTransfer(t *testing.T) {
	prog, res := analysisOf(t, "shallow")
	an := res.Analysis()
	var wrap *ir.ParLoop
	for _, pl := range timeLoops(prog) {
		if len(pl.Indexes) == 1 && len(pl.Body) == 1 && pl.Body[0].LHS.Array.Name == "PNEW" {
			wrap = pl
		}
	}
	if wrap == nil {
		t.Fatal("pnew wrap loop not found")
	}
	rule := an.LoopRuleOf(wrap)
	if len(rule.Reads) != 1 || rule.Reads[0].Kind != compiler.KindFixed {
		t.Fatalf("wrap read rules = %+v", rule.Reads)
	}
}
