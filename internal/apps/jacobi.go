package apps

// Jacobi is the paper's jacobi: a 2048x2048 four-point relaxation,
// 100 iterations ("HPF by authors", 32 MB). Communication: one
// boundary column to each neighbour per sweep.
func Jacobi() *App {
	return &App{
		Name: "jacobi",
		Source: `
PROGRAM jacobi
PARAM n = 2048
PARAM iters = 100
REAL a(n, n), b(n, n)
DISTRIBUTE a(*, BLOCK)
DISTRIBUTE b(*, BLOCK)

FORALL (i = 1:n, j = 1:n)
  a(i, j) = 0
  b(i, j) = 0
END FORALL
FORALL (i = 1:n, j = 1:1)
  a(i, j) = 1          ! hot west boundary
END FORALL
FORALL (i = 1:1, j = 1:n)
  a(i, j) = 2          ! hot north boundary
END FORALL

STARTTIMER

DO t = 1, iters
  FORALL (i = 2:n-1, j = 2:n-1)
    b(i, j) = 0.25 * (a(i-1, j) + a(i+1, j) + a(i, j-1) + a(i, j+1))
  END FORALL
  FORALL (i = 2:n-1, j = 2:n-1)
    a(i, j) = b(i, j)
  END FORALL
END DO
END
`,
		PaperParams:  map[string]int{"N": 2048, "ITERS": 100},
		ScaledParams: map[string]int{"N": 128, "ITERS": 8},
		BenchParams:  map[string]int{"N": 512, "ITERS": 12},
		PaperProblem: "2048x2048 matrix, 100 iters",
		PaperMemMB:   32,
		CheckArrays:  []string{"A"},
		Tol:          1e-12,
		Reference:    jacobiRef,
	}
}

func jacobiRef(params map[string]int) map[string][]float64 {
	n, iters := params["N"], params["ITERS"]
	a := make([]float64, n*n)
	b := make([]float64, n*n)
	for i := 1; i <= n; i++ {
		a[idx2(n, i, 1)] = 1
	}
	for j := 1; j <= n; j++ {
		a[idx2(n, 1, j)] = 2
	}
	for t := 0; t < iters; t++ {
		for j := 2; j <= n-1; j++ {
			for i := 2; i <= n-1; i++ {
				b[idx2(n, i, j)] = 0.25 * (a[idx2(n, i-1, j)] + a[idx2(n, i+1, j)] +
					a[idx2(n, i, j-1)] + a[idx2(n, i, j+1)])
			}
		}
		for j := 2; j <= n-1; j++ {
			for i := 2; i <= n-1; i++ {
				a[idx2(n, i, j)] = b[idx2(n, i, j)]
			}
		}
	}
	return map[string][]float64{"A": a}
}
