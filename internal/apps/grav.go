package apps

// Grav is the paper's grav ("HPF by Syracuse": grid size 128 — array
// extents 129x129 and 129x129x129 — 5 iterations, 17 MB). The
// original computes a gravitational potential; we substitute a
// structurally matched kernel: a 2-D 129x129 boundary-potential
// relaxation (whose 1032-byte columns straddle 128-byte blocks, the
// pronounced edge effects the paper reports), a 129^3 density volume,
// and a large number of SUM reductions (multipole-moment style) per
// iteration, which the runtime implements with low-level messages.
func Grav() *App {
	return &App{
		Name: "grav",
		Source: `
PROGRAM grav
PARAM n = 129
PARAM iters = 5
REAL rho(n, n, n), g(n, n), gnew(n, n), w(n, n)
SCALAR m0, m1, m2, m3, m4, m5, m6, m7, scale
PARAM nmom = 10
DISTRIBUTE rho(*, *, BLOCK)
DISTRIBUTE g(*, BLOCK)
DISTRIBUTE gnew(*, BLOCK)
DISTRIBUTE w(*, BLOCK)

FORALL (i = 1:n, j = 1:n, k = 1:n)
  rho(i, j, k) = 0.001 * (i + j) + 0.0001 * k
END FORALL
FORALL (i = 1:n, j = 1:n)
  g(i, j) = 0.01 * i + 0.02 * j
  gnew(i, j) = 0
  w(i, j) = 0
END FORALL

STARTTIMER

DO t = 1, iters
  ! Volume moment of the density.
  REDUCE (SUM, m0, i = 1:n, j = 1:n, k = 1:n) rho(i, j, k)

  ! The paper notes grav "executes a large number of SUM reductions,
  ! which ... ultimately limit speedups": a multipole ladder of
  ! surface moments, four reductions per order.
  LET m4 = 0.0
  LET m5 = 0.0
  LET m6 = 0.0
  LET m7 = 0.0
  DO m = 1, nmom
    REDUCE (SUM, m1, i = 1:n, j = 1:n) g(i, j)
    REDUCE (SUM, m2, i = 1:n, j = 1:n) g(i, j) * (i - m)
    REDUCE (SUM, m3, i = 1:n, j = 1:n) g(i, j) * (j - m)
    REDUCE (SUM, m5, i = 1:n, j = 1:n) g(i, j) * g(i, j)
    LET m4 = m4 + m1 + 0.1 * m2
    LET m6 = m6 + m3
    LET m7 = m7 + m5
  END DO
  LET scale = (m0 + m4) / (m6 + m7 + 1.0)

  ! Boundary-potential relaxation on the small 2-D grid.
  FORALL (i = 2:n-1, j = 2:n-1)
    gnew(i, j) = 0.25 * (g(i-1, j) + g(i+1, j) + g(i, j-1) + g(i, j+1)) + 0.000001 * scale
  END FORALL
  FORALL (i = 2:n-1, j = 2:n-1)
    w(i, j) = 0.5 * (gnew(i, j-1) + gnew(i, j+1))
  END FORALL
  FORALL (i = 2:n-1, j = 2:n-1)
    g(i, j) = gnew(i, j) + 0.0001 * w(i, j)
  END FORALL
END DO
END
`,
		PaperParams:  map[string]int{"N": 129, "ITERS": 5},
		ScaledParams: map[string]int{"N": 65, "ITERS": 3},
		BenchParams:  map[string]int{"N": 97, "ITERS": 3},
		PaperProblem: "grid size 128, 5 iters",
		PaperMemMB:   17,
		CheckArrays:  []string{"G"},
		Tol:          1e-9,
		Reference:    gravRef,
	}
}

func gravRef(params map[string]int) map[string][]float64 {
	n, iters := params["N"], params["ITERS"]
	rho := make([]float64, n*n*n)
	g := make([]float64, n*n)
	gnew := make([]float64, n*n)
	w := make([]float64, n*n)
	for k := 1; k <= n; k++ {
		for j := 1; j <= n; j++ {
			for i := 1; i <= n; i++ {
				rho[idx3(n, n, i, j, k)] = 0.001*float64(i+j) + 0.0001*float64(k)
			}
		}
	}
	for j := 1; j <= n; j++ {
		for i := 1; i <= n; i++ {
			g[idx2(n, i, j)] = 0.01*float64(i) + 0.02*float64(j)
		}
	}
	nmom := 10
	for t := 0; t < iters; t++ {
		m0 := 0.0
		for k := 1; k <= n; k++ {
			for j := 1; j <= n; j++ {
				for i := 1; i <= n; i++ {
					m0 += rho[idx3(n, n, i, j, k)]
				}
			}
		}
		m4, m6, m7 := 0.0, 0.0, 0.0
		for mm := 1; mm <= nmom; mm++ {
			m1, m2, m3, m5 := 0.0, 0.0, 0.0, 0.0
			for j := 1; j <= n; j++ {
				for i := 1; i <= n; i++ {
					gv := g[idx2(n, i, j)]
					m1 += gv
					m2 += gv * float64(i-mm)
					m3 += gv * float64(j-mm)
					m5 += gv * gv
				}
			}
			m4 += m1 + 0.1*m2
			m6 += m3
			m7 += m5
		}
		scale := (m0 + m4) / (m6 + m7 + 1.0)
		for j := 2; j <= n-1; j++ {
			for i := 2; i <= n-1; i++ {
				gnew[idx2(n, i, j)] = 0.25*(g[idx2(n, i-1, j)]+g[idx2(n, i+1, j)]+
					g[idx2(n, i, j-1)]+g[idx2(n, i, j+1)]) + 0.000001*scale
			}
		}
		for j := 2; j <= n-1; j++ {
			for i := 2; i <= n-1; i++ {
				w[idx2(n, i, j)] = 0.5 * (gnew[idx2(n, i, j-1)] + gnew[idx2(n, i, j+1)])
			}
		}
		for j := 2; j <= n-1; j++ {
			for i := 2; i <= n-1; i++ {
				g[idx2(n, i, j)] = gnew[idx2(n, i, j)] + 0.0001*w[idx2(n, i, j)]
			}
		}
	}
	return map[string][]float64{"G": g}
}
