package apps

import (
	"testing"

	"hpfdsm/internal/compiler"
	"hpfdsm/internal/config"
	"hpfdsm/internal/runtime"
)

// TestInspectorPrefetchOnIrregular: the inspector/executor-style
// prefetch must preserve answers and reduce demand misses on the
// irregular application. At realistic sizes it is a clear win; at toy
// sizes the prefetch burst can congest the network, so the win is
// asserted at bench size.
func TestInspectorPrefetchOnIrregular(t *testing.T) {
	a := Irregular()
	run := func(insp bool) *runtime.Result {
		prog, err := a.Program(a.BenchParams)
		if err != nil {
			t.Fatal(err)
		}
		res, err := runtime.Run(prog, runtime.Options{
			Machine: config.Default(), Opt: compiler.OptRTElim, InspectIndirect: insp,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run(false)
	insp := run(true)
	// Same answers.
	w, g := plain.ArrayData("V"), insp.ArrayData("V")
	for k := range w {
		if w[k] != g[k] {
			t.Fatalf("inspector changed results at %d: %v vs %v", k, g[k], w[k])
		}
	}
	pm, im := plain.Stats.TotalMisses(), insp.Stats.TotalMisses()
	if im >= pm/2 {
		t.Fatalf("inspector did not halve demand misses: %d -> %d", pm, im)
	}
	if insp.Elapsed >= plain.Elapsed {
		t.Fatalf("inspector slower at bench size: %.2fms vs %.2fms",
			float64(insp.Elapsed)/1e6, float64(plain.Elapsed)/1e6)
	}
	t.Logf("inspector: misses %d -> %d, time %.2fms -> %.2fms",
		pm, im, float64(plain.Elapsed)/1e6, float64(insp.Elapsed)/1e6)
}
