// Causal protocol-event tracing.
//
// Tracer records the simulation's protocol-level activity as a causal
// event graph — spans on per-node lanes (compute CPU, protocol CPU,
// NIC), flow arrows linking each message's wire transmission to the
// handler execution it triggers, and loop/barrier region annotations —
// and exports it as Chrome trace-event JSON loadable in Perfetto or
// chrome://tracing.
//
// The tracer is strictly opt-in: every instrumentation site in sim,
// network, tempest, protocol, and runtime is guarded by a nil check on
// the tracer pointer, so a disabled run takes the exact hot paths of
// the untraced simulator and allocates nothing. When enabled, output is
// deterministic: events are recorded in simulation order (which a
// seeded run fully determines), timestamps are exact nanosecond
// integers rendered as fixed-point microseconds, and no map iteration
// touches the writer — the same run always produces the same bytes.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"hpfdsm/internal/sim"
)

// Lanes are thread ids within a node's trace process. One simulated
// node renders as one Perfetto process with three tracks.
const (
	LaneCompute = 0 // the compute processor: loops, barriers, miss stalls
	LaneProto   = 1 // the protocol engine: active-message handler executions
	LaneNIC     = 2 // the wire interface: message serialization spans
)

// Event phases (a subset of the Chrome trace-event format).
const (
	PhaseSpan      = 'X' // complete event (ts + dur)
	PhaseInstant   = 'i' // thread-scoped instant
	PhaseFlowStart = 's' // flow start, binds to the enclosing span
	PhaseFlowEnd   = 'f' // flow end (binding point "e")
	PhaseMeta      = 'M' // process/thread naming metadata
)

// Arg is one pre-rendered argument: K is the key, J the value as a
// JSON fragment (already quoted if a string). Pre-rendering keeps the
// writer free of reflection and type switches.
type Arg struct {
	K string
	J string
}

// Str renders a string argument.
func Str(k, v string) Arg { return Arg{K: k, J: strconv.Quote(v)} }

// I64 renders an integer argument.
func I64(k string, v int64) Arg { return Arg{K: k, J: strconv.FormatInt(v, 10)} }

// Int renders an int argument.
func Int(k string, v int) Arg { return I64(k, int64(v)) }

// Event is one recorded trace event. Fields mirror the Chrome
// trace-event JSON keys; Ts and Dur are simulated nanoseconds
// (exported as microseconds with three decimals).
type Event struct {
	Ph   byte
	Name string
	Cat  string
	Pid  int
	Tid  int
	Ts   sim.Time
	Dur  sim.Time
	ID   uint64 // flow id, 0 when unused
	Args []Arg
}

// region is one open compute-lane annotation (a loop or reduction).
type region struct {
	label string
	start sim.Time
}

// Tracer accumulates the causal event record of one simulated run.
// It is not safe for concurrent use; the simulator is single-threaded.
type Tracer struct {
	// KindName renders a message kind for span names; installed by the
	// runtime (protocol.MsgKindName) so this package needs no knowledge
	// of protocol kinds.
	KindName func(kind uint8) string

	// BlockInfo renders schedule provenance for a block number
	// (analysis.ProvIndex.Describe); used by miss spans and the heat
	// map's provenance columns. May be nil.
	BlockInfo func(b int) string

	// Heat accumulates the per-block heat map and the per-loop miss
	// provenance table alongside the event record.
	Heat *Heat

	events   []Event
	nextFlow uint64
	regions  [][]region // per-node open-region stacks
}

// New returns a tracer for a cluster of nodes, with naming metadata for
// each node's process and lanes already recorded.
func New(nodes int) *Tracer {
	t := &Tracer{Heat: NewHeat(), regions: make([][]region, nodes)}
	lanes := []struct {
		tid  int
		name string
	}{
		{LaneCompute, "compute"},
		{LaneProto, "protocol"},
		{LaneNIC, "nic"},
	}
	for n := 0; n < nodes; n++ {
		t.events = append(t.events, Event{
			Ph: PhaseMeta, Name: "process_name", Pid: n,
			Args: []Arg{Str("name", fmt.Sprintf("node %d", n))},
		})
		for _, l := range lanes {
			t.events = append(t.events, Event{
				Ph: PhaseMeta, Name: "thread_name", Pid: n, Tid: l.tid,
				Args: []Arg{Str("name", l.name)},
			})
			t.events = append(t.events, Event{
				Ph: PhaseMeta, Name: "thread_sort_index", Pid: n, Tid: l.tid,
				Args: []Arg{Int("sort_index", l.tid)},
			})
		}
	}
	return t
}

// kindName renders a message kind, tolerating an uninstalled hook.
func (t *Tracer) kindName(k uint8) string {
	if t.KindName != nil {
		return t.KindName(k)
	}
	return fmt.Sprintf("kind%d", k)
}

// MsgName renders a message kind for span names (exported for the
// layers that build their own span names around it).
func (t *Tracer) MsgName(k uint8) string { return t.kindName(k) }

// FlowID allocates a fresh flow identifier (1-based; 0 means "no flow").
func (t *Tracer) FlowID() uint64 {
	t.nextFlow++
	return t.nextFlow
}

// Span records a complete event on a node's lane over [start, end].
func (t *Tracer) Span(pid, tid int, name, cat string, start, end sim.Time, args ...Arg) {
	if end < start {
		end = start
	}
	t.events = append(t.events, Event{
		Ph: PhaseSpan, Name: name, Cat: cat, Pid: pid, Tid: tid,
		Ts: start, Dur: end - start, Args: args,
	})
}

// Instant records a thread-scoped instant event.
func (t *Tracer) Instant(pid, tid int, name, cat string, ts sim.Time, args ...Arg) {
	t.events = append(t.events, Event{
		Ph: PhaseInstant, Name: name, Cat: cat, Pid: pid, Tid: tid, Ts: ts, Args: args,
	})
}

// FlowStart opens flow id at ts; the event must fall inside a span on
// (pid, tid) for Perfetto to draw the arrow from it.
func (t *Tracer) FlowStart(pid, tid int, id uint64, ts sim.Time) {
	t.events = append(t.events, Event{
		Ph: PhaseFlowStart, Name: "msg", Cat: "flow", Pid: pid, Tid: tid, Ts: ts, ID: id,
	})
}

// FlowEnd closes flow id at ts inside the receiving span.
func (t *Tracer) FlowEnd(pid, tid int, id uint64, ts sim.Time) {
	t.events = append(t.events, Event{
		Ph: PhaseFlowEnd, Name: "msg", Cat: "flow", Pid: pid, Tid: tid, Ts: ts, ID: id,
	})
}

// --- Region annotations (compute lane) --------------------------------

// BeginRegion opens a labelled region (a parallel loop or reduction) on
// a node's compute lane. Regions nest; the innermost open region
// attributes misses in the heat map's provenance table.
func (t *Tracer) BeginRegion(node int, label string, ts sim.Time) {
	t.regions[node] = append(t.regions[node], region{label: label, start: ts})
}

// EndRegion closes the innermost open region and records its span.
func (t *Tracer) EndRegion(node int, ts sim.Time) {
	stack := t.regions[node]
	if len(stack) == 0 {
		panic("trace: EndRegion with no open region")
	}
	r := stack[len(stack)-1]
	t.regions[node] = stack[:len(stack)-1]
	t.Span(node, LaneCompute, r.label, "loop", r.start, ts)
}

// Region returns the label of a node's innermost open region, or "".
func (t *Tracer) Region(node int) string {
	if stack := t.regions[node]; len(stack) > 0 {
		return stack[len(stack)-1].label
	}
	return ""
}

// MissSpan records one access-fault stall on a node's compute lane and
// feeds the heat map, attributing the miss to the node's current
// region. kind is "read", "write", or "upgrade".
func (t *Tracer) MissSpan(node, block, addr int, kind string, start, end sim.Time) {
	args := []Arg{Int("block", block), Int("addr", addr), Str("kind", kind)}
	if t.BlockInfo != nil {
		if info := t.BlockInfo(block); info != "" {
			args = append(args, Str("prov", info))
		}
	}
	t.Span(node, LaneCompute, "miss:"+kind, "miss", start, end, args...)
	t.Heat.AddMiss(block, kind, t.Region(node))
}

// --- Chrome trace-event export ----------------------------------------

// Events returns the recorded events in emission order (for tests and
// analysis tools; the exported file is timestamp-sorted).
func (t *Tracer) Events() []Event { return t.events }

// WriteChrome writes the record as Chrome trace-event JSON (the
// {"traceEvents": [...]} object form). Events are stably sorted by
// timestamp, with metadata first, so the output of a deterministic run
// is byte-stable.
func (t *Tracer) WriteChrome(w io.Writer) error {
	idx := make([]int, len(t.events))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ea, eb := &t.events[idx[a]], &t.events[idx[b]]
		am, bm := ea.Ph == PhaseMeta, eb.Ph == PhaseMeta
		if am != bm {
			return am
		}
		return ea.Ts < eb.Ts
	})
	var b strings.Builder
	b.WriteString("{\"traceEvents\":[\n")
	for i, k := range idx {
		if i > 0 {
			b.WriteString(",\n")
		}
		writeEvent(&b, &t.events[k])
		if b.Len() >= 1<<16 {
			if _, err := io.WriteString(w, b.String()); err != nil {
				return err
			}
			b.Reset()
		}
	}
	b.WriteString("\n]}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// writeEvent renders one event as a JSON object. Timestamps convert
// from integer nanoseconds to fixed-point microseconds (%d.%03d), so
// rendering is exact and byte-stable.
func writeEvent(b *strings.Builder, e *Event) {
	b.WriteString("{\"name\":")
	b.WriteString(strconv.Quote(e.Name))
	b.WriteString(",\"ph\":\"")
	b.WriteByte(e.Ph)
	b.WriteString("\"")
	if e.Cat != "" {
		b.WriteString(",\"cat\":")
		b.WriteString(strconv.Quote(e.Cat))
	}
	fmt.Fprintf(b, ",\"pid\":%d,\"tid\":%d", e.Pid, e.Tid)
	if e.Ph != PhaseMeta {
		fmt.Fprintf(b, ",\"ts\":%d.%03d", e.Ts/1000, e.Ts%1000)
	}
	if e.Ph == PhaseSpan {
		fmt.Fprintf(b, ",\"dur\":%d.%03d", e.Dur/1000, e.Dur%1000)
	}
	if e.Ph == PhaseInstant {
		b.WriteString(",\"s\":\"t\"")
	}
	if e.Ph == PhaseFlowStart || e.Ph == PhaseFlowEnd {
		fmt.Fprintf(b, ",\"id\":%d", e.ID)
		if e.Ph == PhaseFlowEnd {
			b.WriteString(",\"bp\":\"e\"")
		}
	}
	if len(e.Args) > 0 {
		b.WriteString(",\"args\":{")
		for i, a := range e.Args {
			if i > 0 {
				b.WriteString(",")
			}
			b.WriteString(strconv.Quote(a.K))
			b.WriteString(":")
			b.WriteString(a.J)
		}
		b.WriteString("}")
	}
	b.WriteString("}")
}
