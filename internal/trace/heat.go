package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// BlockStat is the heat record of one coherence block: how many access
// faults it took, how many times a copy of it was invalidated, and how
// many payload bytes of it moved over the wire.
type BlockStat struct {
	Block  int   `json:"block"`
	Misses int64 `json:"misses"`
	Invals int64 `json:"invals"`
	Bytes  int64 `json:"bytes"`
}

// ArrayRange maps a registered array onto its block range [Start,
// Start+N); the runtime registers one per program array so per-block
// heat can aggregate by array section.
type ArrayRange struct {
	Name  string `json:"name"`
	Start int    `json:"start_block"`
	N     int    `json:"num_blocks"`
}

// missKey groups residual misses by (region, array, kind) for the
// per-loop provenance table.
type missKey struct {
	region string
	array  string
	kind   string
}

// missRow is one provenance-table row.
type missRow struct {
	count      int64
	firstBlock int // representative block for the provenance column
}

// Heat accumulates per-block communication heat and per-loop miss
// provenance. All maps are iterated only at rendering time, under
// sorted keys, so output is deterministic.
type Heat struct {
	blocks map[int]*BlockStat
	arrays []ArrayRange
	miss   map[missKey]*missRow
}

// NewHeat returns an empty heat accumulator.
func NewHeat() *Heat {
	return &Heat{blocks: map[int]*BlockStat{}, miss: map[missKey]*missRow{}}
}

// AddArray registers an array's block range for section aggregation.
func (h *Heat) AddArray(name string, startBlock, numBlocks int) {
	h.arrays = append(h.arrays, ArrayRange{Name: name, Start: startBlock, N: numBlocks})
}

func (h *Heat) stat(b int) *BlockStat {
	s, ok := h.blocks[b]
	if !ok {
		s = &BlockStat{Block: b}
		h.blocks[b] = s
	}
	return s
}

// arrayOf returns the registered array covering block b, or "".
func (h *Heat) arrayOf(b int) string {
	for _, a := range h.arrays {
		if b >= a.Start && b < a.Start+a.N {
			return a.Name
		}
	}
	return ""
}

// AddMiss records one access fault on block b, attributed to the
// faulting node's current region (may be "").
func (h *Heat) AddMiss(b int, kind, region string) {
	h.stat(b).Misses++
	k := missKey{region: region, array: h.arrayOf(b), kind: kind}
	r, ok := h.miss[k]
	if !ok {
		r = &missRow{firstBlock: b}
		h.miss[k] = r
	}
	r.count++
}

// AddInval records one copy of block b being invalidated (eagerly by
// the directory, with a flush, or by a compiler-directed
// implicit_invalidate).
func (h *Heat) AddInval(b int) { h.stat(b).Invals++ }

// AddBytes records n payload bytes of block b moving over the wire.
func (h *Heat) AddBytes(b, n int) { h.stat(b).Bytes += int64(n) }

// AddBytesRange spreads bytes evenly over the blocks [b0, b0+nb) of one
// bulk message.
func (h *Heat) AddBytesRange(b0, nb, bytes int) {
	if nb <= 0 {
		return
	}
	per := bytes / nb
	for b := b0; b < b0+nb; b++ {
		h.AddBytes(b, per)
	}
}

// sortedBlocks returns the touched blocks in ascending block order.
func (h *Heat) sortedBlocks() []*BlockStat {
	out := make([]*BlockStat, 0, len(h.blocks))
	for _, s := range h.blocks {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Block < out[j].Block })
	return out
}

// WriteText renders the heat map: per-array totals, then the hottest
// blocks (by misses, then bytes) with provenance from blockInfo (which
// may be nil).
func (h *Heat) WriteText(w io.Writer, blockInfo func(b int) string) {
	blocks := h.sortedBlocks()

	type agg struct {
		name                  string
		blocks                int
		misses, invals, bytes int64
	}
	aggs := make([]agg, len(h.arrays), len(h.arrays)+1)
	for i, a := range h.arrays {
		aggs[i].name = a.Name
	}
	other := agg{name: "(unregistered)"}
	for _, s := range blocks {
		tgt := &other
		for i, a := range h.arrays {
			if s.Block >= a.Start && s.Block < a.Start+a.N {
				tgt = &aggs[i]
				break
			}
		}
		tgt.blocks++
		tgt.misses += s.Misses
		tgt.invals += s.Invals
		tgt.bytes += s.Bytes
	}
	if other.blocks > 0 {
		aggs = append(aggs, other)
	}

	fmt.Fprintf(w, "Per-array heat (blocks touched, misses, invalidations, wire bytes)\n")
	fmt.Fprintf(w, "%-14s %8s %10s %10s %12s\n", "array", "blocks", "misses", "invals", "bytes")
	for _, a := range aggs {
		fmt.Fprintf(w, "%-14s %8d %10d %10d %12d\n", a.name, a.blocks, a.misses, a.invals, a.bytes)
	}

	hot := make([]*BlockStat, len(blocks))
	copy(hot, blocks)
	sort.SliceStable(hot, func(i, j int) bool {
		if hot[i].Misses != hot[j].Misses {
			return hot[i].Misses > hot[j].Misses
		}
		return hot[i].Bytes > hot[j].Bytes
	})
	if len(hot) > 20 {
		hot = hot[:20]
	}
	fmt.Fprintf(w, "\nHottest blocks\n")
	fmt.Fprintf(w, "%-8s %-10s %8s %8s %10s  %s\n", "block", "array", "misses", "invals", "bytes", "provenance")
	for _, s := range hot {
		info := ""
		if blockInfo != nil {
			info = blockInfo(s.Block)
		}
		name := h.arrayOf(s.Block)
		if name == "" {
			name = "-"
		}
		fmt.Fprintf(w, "%-8d %-10s %8d %8d %10d  %s\n", s.Block, name, s.Misses, s.Invals, s.Bytes, info)
	}
}

// WriteMissTable renders the per-loop miss-provenance table: every
// (loop, array, kind) group of residual misses with a representative
// block's schedule provenance — the explanation of each miss that
// survives at the rtelim level.
func (h *Heat) WriteMissTable(w io.Writer, blockInfo func(b int) string) {
	keys := make([]missKey, 0, len(h.miss))
	for k := range h.miss {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].region != keys[j].region {
			return keys[i].region < keys[j].region
		}
		if keys[i].array != keys[j].array {
			return keys[i].array < keys[j].array
		}
		return keys[i].kind < keys[j].kind
	})
	fmt.Fprintf(w, "Residual-miss provenance (per loop)\n")
	fmt.Fprintf(w, "%-16s %-10s %-8s %8s  %s\n", "loop", "array", "kind", "misses", "example provenance")
	for _, k := range keys {
		r := h.miss[k]
		region, array := k.region, k.array
		if region == "" {
			region = "(outside loops)"
		}
		if array == "" {
			array = "-"
		}
		info := ""
		if blockInfo != nil {
			info = blockInfo(r.firstBlock)
		}
		fmt.Fprintf(w, "%-16s %-10s %-8s %8d  %s\n", region, array, k.kind, r.count, info)
	}
}

// WriteJSON renders the heat map as JSON: the registered arrays, every
// touched block in block order, and the provenance rows. Rendered by
// hand over sorted keys, so the bytes are deterministic.
func (h *Heat) WriteJSON(w io.Writer) error {
	var b strings.Builder
	b.WriteString("{\"arrays\":[")
	for i, a := range h.arrays {
		if i > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(&b, "{\"name\":%q,\"start_block\":%d,\"num_blocks\":%d}", a.Name, a.Start, a.N)
	}
	b.WriteString("],\"blocks\":[")
	for i, s := range h.sortedBlocks() {
		if i > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(&b, "{\"block\":%d,\"misses\":%d,\"invals\":%d,\"bytes\":%d}",
			s.Block, s.Misses, s.Invals, s.Bytes)
	}
	b.WriteString("],\"misses\":[")
	keys := make([]missKey, 0, len(h.miss))
	for k := range h.miss {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].region != keys[j].region {
			return keys[i].region < keys[j].region
		}
		if keys[i].array != keys[j].array {
			return keys[i].array < keys[j].array
		}
		return keys[i].kind < keys[j].kind
	})
	for i, k := range keys {
		if i > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(&b, "{\"loop\":%q,\"array\":%q,\"kind\":%q,\"count\":%d,\"example_block\":%d}",
			k.region, k.array, k.kind, h.miss[k].count, h.miss[k].firstBlock)
	}
	b.WriteString("]}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
