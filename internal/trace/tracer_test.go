package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"hpfdsm/internal/sim"
)

// chromeEvent mirrors the JSON keys WriteChrome emits, for validation.
type chromeEvent struct {
	Name string          `json:"name"`
	Ph   string          `json:"ph"`
	Cat  string          `json:"cat"`
	Pid  int             `json:"pid"`
	Tid  int             `json:"tid"`
	Ts   float64         `json:"ts"`
	Dur  float64         `json:"dur"`
	ID   int64           `json:"id"`
	BP   string          `json:"bp"`
	Args json.RawMessage `json:"args"`
}

type chromeTrace struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
}

func decodeChrome(t *testing.T, tr *Tracer) chromeTrace {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var ct chromeTrace
	if err := json.Unmarshal(buf.Bytes(), &ct); err != nil {
		t.Fatalf("WriteChrome output is not valid JSON: %v", err)
	}
	return ct
}

func TestNewEmitsLaneMetadata(t *testing.T) {
	tr := New(2)
	ct := decodeChrome(t, tr)
	// 2 nodes x (1 process_name + 3 lanes x 2 records).
	if want := 2 * (1 + 3*2); len(ct.TraceEvents) != want {
		t.Fatalf("got %d metadata events, want %d", len(ct.TraceEvents), want)
	}
	names := map[string]bool{}
	for _, e := range ct.TraceEvents {
		if e.Ph != "M" {
			t.Fatalf("unexpected non-metadata event %+v", e)
		}
		if e.Name == "thread_name" {
			var args struct {
				Name string `json:"name"`
			}
			if err := json.Unmarshal(e.Args, &args); err != nil {
				t.Fatal(err)
			}
			names[args.Name] = true
		}
	}
	for _, lane := range []string{"compute", "protocol", "nic"} {
		if !names[lane] {
			t.Errorf("no thread_name metadata for lane %q", lane)
		}
	}
}

func TestTimestampRendering(t *testing.T) {
	tr := New(1)
	tr.Span(0, LaneCompute, "work", "c", 1234567, 1240069)
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// 1234567 ns is exactly 1234.567 us; duration 5502 ns is 5.502 us.
	if !strings.Contains(out, `"ts":1234.567`) {
		t.Errorf("fixed-point ts missing:\n%s", out)
	}
	if !strings.Contains(out, `"dur":5.502`) {
		t.Errorf("fixed-point dur missing:\n%s", out)
	}
}

func TestSpanClampsReversedInterval(t *testing.T) {
	tr := New(1)
	tr.Span(0, LaneNIC, "odd", "c", 100, 50)
	ev := tr.Events()[len(tr.Events())-1]
	if ev.Dur != 0 {
		t.Fatalf("reversed interval produced dur %d, want 0", ev.Dur)
	}
	if ev.Ts != 100 {
		t.Fatalf("reversed interval moved ts to %d", ev.Ts)
	}
}

func TestFlowIDsAreUniqueAndNonZero(t *testing.T) {
	tr := New(1)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		id := tr.FlowID()
		if id == 0 {
			t.Fatal("FlowID returned 0 (reserved for no-flow)")
		}
		if seen[id] {
			t.Fatalf("duplicate flow id %d", id)
		}
		seen[id] = true
	}
}

func TestFlowEventsRoundTrip(t *testing.T) {
	tr := New(2)
	id := tr.FlowID()
	tr.Span(0, LaneNIC, "read_req", "tx", 10, 20)
	tr.FlowStart(0, LaneNIC, id, 10)
	tr.Span(1, LaneProto, "h:read_req", "handler", 30, 40)
	tr.FlowEnd(1, LaneProto, id, 30)
	ct := decodeChrome(t, tr)
	var s, f *chromeEvent
	for i := range ct.TraceEvents {
		e := &ct.TraceEvents[i]
		switch e.Ph {
		case "s":
			s = e
		case "f":
			f = e
		}
	}
	if s == nil || f == nil {
		t.Fatal("flow start/end missing from output")
	}
	if s.ID != f.ID {
		t.Fatalf("flow ids differ: s=%d f=%d", s.ID, f.ID)
	}
	if f.BP != "e" {
		t.Fatalf("flow end binding point %q, want \"e\"", f.BP)
	}
	if s.Cat != "flow" || f.Cat != "flow" || s.Name != "msg" {
		t.Fatalf("flow naming wrong: %+v %+v", s, f)
	}
}

func TestKindNameFallbackAndHook(t *testing.T) {
	tr := New(1)
	if got := tr.MsgName(7); got != "kind7" {
		t.Fatalf("fallback kind name %q", got)
	}
	tr.KindName = func(k uint8) string { return "custom" }
	if got := tr.MsgName(7); got != "custom" {
		t.Fatalf("hooked kind name %q", got)
	}
}

func TestRegionsNestAndAttributeMisses(t *testing.T) {
	tr := New(1)
	tr.BeginRegion(0, "loop A", 0)
	tr.BeginRegion(0, "loop B", 10)
	if got := tr.Region(0); got != "loop B" {
		t.Fatalf("innermost region %q", got)
	}
	tr.MissSpan(0, 5, 640, "read", 12, 20)
	tr.EndRegion(0, 30)
	if got := tr.Region(0); got != "loop A" {
		t.Fatalf("after EndRegion, region %q", got)
	}
	tr.EndRegion(0, 40)
	if got := tr.Region(0); got != "" {
		t.Fatalf("after closing all, region %q", got)
	}

	// The two EndRegions recorded loop spans, innermost first.
	var loops []Event
	for _, e := range tr.Events() {
		if e.Cat == "loop" {
			loops = append(loops, e)
		}
	}
	if len(loops) != 2 || loops[0].Name != "loop B" || loops[1].Name != "loop A" {
		t.Fatalf("loop spans = %+v", loops)
	}

	// The miss was attributed to the innermost open region.
	var buf bytes.Buffer
	if err := tr.Heat.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"loop":"loop B"`) {
		t.Fatalf("miss not attributed to loop B:\n%s", buf.String())
	}
}

func TestEndRegionPanicsWhenEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("EndRegion on empty stack did not panic")
		}
	}()
	New(1).EndRegion(0, 0)
}

func TestMissSpanCarriesProvenance(t *testing.T) {
	tr := New(1)
	tr.BlockInfo = func(b int) string {
		if b == 5 {
			return "x(1:8) owner=2"
		}
		return ""
	}
	tr.MissSpan(0, 5, 640, "upgrade", 0, 10)
	tr.MissSpan(0, 6, 768, "read", 20, 30)
	ct := decodeChrome(t, tr)
	var miss []chromeEvent
	for _, e := range ct.TraceEvents {
		if e.Cat == "miss" {
			miss = append(miss, e)
		}
	}
	if len(miss) != 2 {
		t.Fatalf("got %d miss spans", len(miss))
	}
	if miss[0].Name != "miss:upgrade" {
		t.Fatalf("miss span name %q", miss[0].Name)
	}
	if !strings.Contains(string(miss[0].Args), "x(1:8) owner=2") {
		t.Fatalf("provenance missing from args: %s", miss[0].Args)
	}
	if strings.Contains(string(miss[1].Args), "prov") {
		t.Fatalf("empty provenance should be omitted: %s", miss[1].Args)
	}
}

func TestWriteChromeByteStableAndSorted(t *testing.T) {
	build := func() *Tracer {
		tr := New(2)
		tr.Span(1, LaneProto, "b", "c", 50, 60)
		tr.Span(0, LaneCompute, "a", "c", 10, 20)
		tr.Instant(0, LaneCompute, "i", "c", 5)
		id := tr.FlowID()
		tr.FlowStart(0, LaneNIC, id, 12)
		tr.FlowEnd(1, LaneProto, id, 50)
		return tr
	}
	var b1, b2 bytes.Buffer
	if err := build().WriteChrome(&b1); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteChrome(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("identical runs produced different bytes")
	}

	ct := decodeChrome(t, build())
	metaDone := false
	lastTs := -1.0
	for _, e := range ct.TraceEvents {
		if e.Ph == "M" {
			if metaDone {
				t.Fatal("metadata event after timestamped events")
			}
			continue
		}
		metaDone = true
		if e.Ts < lastTs {
			t.Fatalf("timestamps not sorted: %v after %v", e.Ts, lastTs)
		}
		lastTs = e.Ts
	}
}

// TestWriteChromeLarge drives the writer past its internal flush
// threshold to cover the buffered path.
func TestWriteChromeLarge(t *testing.T) {
	tr := New(1)
	for i := 0; i < 5000; i++ {
		ts := sim.Time(i) * 1000
		tr.Span(0, LaneProto, "h:read_req", "handler", ts, ts+100,
			Int("src", i%8), Int("addr", i*128))
	}
	ct := decodeChrome(t, tr)
	spans := 0
	for _, e := range ct.TraceEvents {
		if e.Ph == "X" {
			spans++
		}
	}
	if spans != 5000 {
		t.Fatalf("got %d spans, want 5000", spans)
	}
}
