package trace

import (
	"strings"
	"testing"
)

func TestProfileAccumulates(t *testing.T) {
	p := NewProfile()
	p.Add("sweep", Sample{Compute: 100, Comm: 50, Misses: 3})
	p.Add("sweep", Sample{Compute: 200, Barrier: 25, Msgs: 7})
	p.Add("copy", Sample{Compute: 10})
	e := p.Entry("sweep")
	if e == nil || e.Visits != 2 || e.Compute != 300 || e.Comm != 50 || e.Barrier != 25 {
		t.Fatalf("sweep entry = %+v", e)
	}
	if e.Misses != 3 || e.Msgs != 7 {
		t.Fatalf("sweep counters = %+v", e)
	}
	if e.Total() != 375 {
		t.Fatalf("total = %d", e.Total())
	}
	if p.Entry("nope") != nil {
		t.Fatal("missing entry should be nil")
	}
}

func TestEntriesSortedByTotal(t *testing.T) {
	p := NewProfile()
	p.Add("small", Sample{Compute: 1})
	p.Add("big", Sample{Compute: 1000})
	p.Add("mid", Sample{Comm: 500})
	es := p.Entries()
	if es[0].Label != "big" || es[1].Label != "mid" || es[2].Label != "small" {
		t.Fatalf("order = %v %v %v", es[0].Label, es[1].Label, es[2].Label)
	}
}

func TestProfileString(t *testing.T) {
	p := NewProfile()
	p.Add("sweep", Sample{Compute: 2_000_000, Misses: 42})
	s := p.String()
	if !strings.Contains(s, "sweep") || !strings.Contains(s, "42") {
		t.Fatalf("render missing fields:\n%s", s)
	}
}

func TestTimelineGantt(t *testing.T) {
	var tl Timeline
	tl.Add(0, "sweep", 0, 1000)
	tl.Add(0, "copy", 1000, 2000)
	tl.Add(1, "sweep", 0, 2000)
	g := tl.Gantt(20)
	if !strings.Contains(g, "node  0") || !strings.Contains(g, "node  1") {
		t.Fatalf("missing rows:\n%s", g)
	}
	if !strings.Contains(g, "a=sweep") || !strings.Contains(g, "b=copy") {
		t.Fatalf("missing legend:\n%s", g)
	}
	// Node 1 is all sweep: its row should contain 'a' and no 'b'.
	for _, line := range strings.Split(g, "\n") {
		if strings.HasPrefix(line, "node  1") {
			if strings.Contains(line, "b") || !strings.Contains(line, "a") {
				t.Fatalf("node 1 row wrong: %s", line)
			}
		}
	}
}

func TestTimelineEmpty(t *testing.T) {
	var tl Timeline
	if g := tl.Gantt(40); !strings.Contains(g, "empty") {
		t.Fatalf("empty timeline rendering: %q", g)
	}
	tl.Add(0, "x", 5, 5)
	if g := tl.Gantt(40); !strings.Contains(g, "empty") {
		t.Fatalf("zero-width timeline rendering: %q", g)
	}
}

func TestTimelineIdleGaps(t *testing.T) {
	var tl Timeline
	tl.Add(0, "w", 0, 100)
	tl.Add(0, "w", 900, 1000)
	g := tl.Gantt(10)
	row := ""
	for _, line := range strings.Split(g, "\n") {
		if strings.HasPrefix(line, "node  0") {
			row = line
		}
	}
	if !strings.Contains(row, ".") {
		t.Fatalf("gap not shown as idle: %s", row)
	}
}

func TestWriteJSON(t *testing.T) {
	p := NewProfile()
	p.Add("sweep", Sample{Compute: 1000, Misses: 2})
	p.Timeline.Add(0, "sweep", 0, 1000)
	var buf strings.Builder
	if err := p.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"label": "sweep"`, `"compute_ns": 1000`, `"misses": 2`, `"Node": 0`} {
		if !strings.Contains(out, want) {
			t.Fatalf("json missing %s:\n%s", want, out)
		}
	}
}
