package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestHeatAccumulation(t *testing.T) {
	h := NewHeat()
	h.AddArray("u", 0, 10)
	h.AddMiss(3, "read", "loop L1")
	h.AddMiss(3, "read", "loop L1")
	h.AddMiss(3, "upgrade", "loop L1")
	h.AddInval(3)
	h.AddBytes(3, 128)
	h.AddBytesRange(4, 4, 512) // 128 bytes each onto blocks 4..7

	var buf bytes.Buffer
	if err := h.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		Arrays []ArrayRange `json:"arrays"`
		Blocks []BlockStat  `json:"blocks"`
		Misses []struct {
			Loop         string `json:"loop"`
			Array        string `json:"array"`
			Kind         string `json:"kind"`
			Count        int64  `json:"count"`
			ExampleBlock int    `json:"example_block"`
		} `json:"misses"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("heat JSON invalid: %v\n%s", err, buf.String())
	}
	if len(out.Arrays) != 1 || out.Arrays[0].Name != "u" || out.Arrays[0].N != 10 {
		t.Fatalf("arrays = %+v", out.Arrays)
	}
	if len(out.Blocks) != 5 {
		t.Fatalf("got %d touched blocks, want 5", len(out.Blocks))
	}
	b3 := out.Blocks[0]
	if b3.Block != 3 || b3.Misses != 3 || b3.Invals != 1 || b3.Bytes != 128 {
		t.Fatalf("block 3 stats %+v", b3)
	}
	for i, b := range out.Blocks[1:] {
		if b.Block != 4+i || b.Bytes != 128 {
			t.Fatalf("bulk bytes not spread: %+v", b)
		}
	}
	if len(out.Misses) != 2 {
		t.Fatalf("got %d miss rows, want 2 (read + upgrade)", len(out.Misses))
	}
	for _, m := range out.Misses {
		if m.Loop != "loop L1" || m.Array != "u" || m.ExampleBlock != 3 {
			t.Fatalf("miss row %+v", m)
		}
	}
}

func TestHeatBytesRangeZeroBlocks(t *testing.T) {
	h := NewHeat()
	h.AddBytesRange(0, 0, 100) // must not divide by zero or record anything
	var buf bytes.Buffer
	if err := h.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"blocks":[]`) {
		t.Fatalf("zero-block range recorded bytes:\n%s", buf.String())
	}
}

func TestHeatWriteText(t *testing.T) {
	h := NewHeat()
	h.AddArray("u", 0, 8)
	h.AddArray("v", 8, 8)
	h.AddMiss(2, "read", "L")
	h.AddMiss(9, "write", "L")
	h.AddMiss(20, "read", "") // outside any registered array
	h.AddBytes(2, 256)

	var buf bytes.Buffer
	h.WriteText(&buf, func(b int) string {
		if b == 2 {
			return "schedule S3"
		}
		return ""
	})
	out := buf.String()
	for _, want := range []string{"u", "v", "(unregistered)", "Hottest blocks", "schedule S3"} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteText output missing %q:\n%s", want, out)
		}
	}
}

func TestHeatWriteTextCapsHottest(t *testing.T) {
	h := NewHeat()
	for b := 0; b < 50; b++ {
		h.AddMiss(b, "read", "")
	}
	var buf bytes.Buffer
	h.WriteText(&buf, nil)
	// Header + per-array table (just "(unregistered)") + 20 hottest rows.
	rows := 0
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.HasPrefix(line, "0 ") || len(line) > 0 && line[0] >= '0' && line[0] <= '9' {
			rows++
		}
	}
	if rows != 20 {
		t.Fatalf("hottest table has %d rows, want 20:\n%s", rows, buf.String())
	}
}

func TestHeatMissTableRendersOutsideLoops(t *testing.T) {
	h := NewHeat()
	h.AddArray("u", 0, 4)
	h.AddMiss(1, "read", "")
	h.AddMiss(1, "read", "loop A")
	var buf bytes.Buffer
	h.WriteMissTable(&buf, nil)
	out := buf.String()
	if !strings.Contains(out, "(outside loops)") {
		t.Fatalf("empty region not rendered:\n%s", out)
	}
	// "" sorts before "loop A": the outside-loops row comes first.
	if strings.Index(out, "(outside loops)") > strings.Index(out, "loop A") {
		t.Fatalf("rows not sorted by region:\n%s", out)
	}
}

func TestHeatJSONDeterministic(t *testing.T) {
	build := func() *Heat {
		h := NewHeat()
		h.AddArray("u", 0, 16)
		// Touch blocks in an order chosen to stress map iteration.
		for _, b := range []int{9, 1, 14, 3, 7, 11, 0, 5} {
			h.AddMiss(b, "read", "L")
			h.AddInval(b)
			h.AddBytes(b, b*8)
		}
		h.AddMiss(2, "write", "M")
		h.AddMiss(2, "upgrade", "L")
		return h
	}
	var b1, b2 bytes.Buffer
	if err := build().WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("identical heat maps produced different JSON bytes")
	}
}
