package trace

import (
	"fmt"
	"sort"
	"strings"

	"hpfdsm/internal/sim"
)

// Span is one node's execution of one labelled region.
type Span struct {
	Node  int
	Label string
	Start sim.Time
	End   sim.Time
}

// Timeline records per-node region spans for a run.
type Timeline struct {
	Spans []Span
}

// Add records one span.
func (tl *Timeline) Add(node int, label string, start, end sim.Time) {
	tl.Spans = append(tl.Spans, Span{Node: node, Label: label, Start: start, End: end})
}

// Gantt renders an ASCII chart: one row per node, width character
// buckets across the run; each bucket shows the first letter of the
// label active longest within it, '.' for idle/synchronization gaps.
// The legend maps letters back to labels.
func (tl *Timeline) Gantt(width int) string {
	if len(tl.Spans) == 0 || width < 10 {
		return "(empty timeline)\n"
	}
	var t0, t1 sim.Time
	maxNode := 0
	t0 = tl.Spans[0].Start
	for _, s := range tl.Spans {
		if s.Start < t0 {
			t0 = s.Start
		}
		if s.End > t1 {
			t1 = s.End
		}
		if s.Node > maxNode {
			maxNode = s.Node
		}
	}
	if t1 <= t0 {
		return "(empty timeline)\n"
	}
	bucket := float64(t1-t0) / float64(width)

	// Assign letters to labels in first-appearance order.
	letters := map[string]byte{}
	var order []string
	for _, s := range tl.Spans {
		if _, ok := letters[s.Label]; !ok {
			letters[s.Label] = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"[len(letters)%52]
			order = append(order, s.Label)
		}
	}

	// Per node, per bucket: time occupied per label.
	rows := make([][]map[string]float64, maxNode+1)
	for n := range rows {
		rows[n] = make([]map[string]float64, width)
	}
	for _, s := range tl.Spans {
		b0 := int(float64(s.Start-t0) / bucket)
		b1 := int(float64(s.End-t0) / bucket)
		if b1 >= width {
			b1 = width - 1
		}
		for b := b0; b <= b1; b++ {
			lo := t0 + sim.Time(float64(b)*bucket)
			hi := t0 + sim.Time(float64(b+1)*bucket)
			if s.Start > lo {
				lo = s.Start
			}
			if s.End < hi {
				hi = s.End
			}
			if hi <= lo {
				continue
			}
			if rows[s.Node][b] == nil {
				rows[s.Node][b] = map[string]float64{}
			}
			rows[s.Node][b][s.Label] += float64(hi - lo)
		}
	}

	var out strings.Builder
	fmt.Fprintf(&out, "timeline %.2fms .. %.2fms (%c = %.3fms/char)\n",
		ms(t0), ms(t1), '1', bucket/1e6)
	for n := 0; n <= maxNode; n++ {
		fmt.Fprintf(&out, "node %2d |", n)
		for b := 0; b < width; b++ {
			m := rows[n][b]
			if len(m) == 0 {
				out.WriteByte('.')
				continue
			}
			var best string
			var bestT float64
			var keys []string
			for k := range m {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				if m[k] > bestT {
					best, bestT = k, m[k]
				}
			}
			out.WriteByte(letters[best])
		}
		out.WriteString("|\n")
	}
	out.WriteString("legend: ")
	for i, l := range order {
		if i > 0 {
			out.WriteString(", ")
		}
		fmt.Fprintf(&out, "%c=%s", letters[l], l)
	}
	out.WriteString("  .=idle/sync\n")
	return out.String()
}
