// Package trace collects per-loop execution profiles: for every
// parallel loop, reduction, and communication phase, how much
// computation, communication, and barrier time each visit cost, summed
// over nodes. The profile answers the tuning question the paper's
// Table 3 answers per application — where the time goes — at loop
// granularity.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"hpfdsm/internal/sim"
)

// Sample is one accumulation delta for a labelled region.
type Sample struct {
	Compute sim.Time
	Comm    sim.Time
	Barrier sim.Time
	Misses  int64
	Msgs    int64
}

// Entry aggregates all samples for one label.
type Entry struct {
	Label  string
	Visits int64
	Sample
}

// Total returns the entry's total time.
func (e *Entry) Total() sim.Time { return e.Compute + e.Comm + e.Barrier }

// Profile aggregates entries by label, preserving first-seen order,
// and records the span timeline for Gantt rendering.
type Profile struct {
	entries map[string]*Entry
	order   []string

	// Timeline holds per-node spans of the labelled regions.
	Timeline Timeline
}

// NewProfile returns an empty profile.
func NewProfile() *Profile { return &Profile{entries: map[string]*Entry{}} }

// Add accumulates one sample under a label.
func (p *Profile) Add(label string, s Sample) {
	e, ok := p.entries[label]
	if !ok {
		e = &Entry{Label: label}
		p.entries[label] = e
		p.order = append(p.order, label)
	}
	e.Visits++
	e.Compute += s.Compute
	e.Comm += s.Comm
	e.Barrier += s.Barrier
	e.Misses += s.Misses
	e.Msgs += s.Msgs
}

// Entry returns the entry for a label, or nil.
func (p *Profile) Entry(label string) *Entry { return p.entries[label] }

// Entries returns all entries sorted by descending total time.
func (p *Profile) Entries() []*Entry {
	out := make([]*Entry, 0, len(p.order))
	for _, l := range p.order {
		out = append(out, p.entries[l])
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Total() > out[j].Total() })
	return out
}

// String renders the profile as a table (times are sums over nodes).
func (p *Profile) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %7s %12s %12s %12s %10s %8s\n",
		"loop", "visits", "compute", "comm", "barrier", "misses", "msgs")
	for _, e := range p.Entries() {
		fmt.Fprintf(&b, "%-22s %7d %10.2fms %10.2fms %10.2fms %10d %8d\n",
			e.Label, e.Visits, ms(e.Compute), ms(e.Comm), ms(e.Barrier), e.Misses, e.Msgs)
	}
	return b.String()
}

// WriteJSON emits the profile (entries sorted by total time, plus the
// raw span timeline) as JSON for external tooling.
func (p *Profile) WriteJSON(w io.Writer) error {
	type entryJSON struct {
		Label     string `json:"label"`
		Visits    int64  `json:"visits"`
		ComputeNs int64  `json:"compute_ns"`
		CommNs    int64  `json:"comm_ns"`
		BarrierNs int64  `json:"barrier_ns"`
		Misses    int64  `json:"misses"`
		Msgs      int64  `json:"msgs"`
	}
	type profJSON struct {
		Entries []entryJSON `json:"entries"`
		Spans   []Span      `json:"spans"`
	}
	out := profJSON{Spans: p.Timeline.Spans}
	for _, e := range p.Entries() {
		out.Entries = append(out.Entries, entryJSON{
			Label: e.Label, Visits: e.Visits,
			ComputeNs: e.Compute, CommNs: e.Comm, BarrierNs: e.Barrier,
			Misses: e.Misses, Msgs: e.Msgs,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

func ms(t sim.Time) float64 { return float64(t) / 1e6 }
