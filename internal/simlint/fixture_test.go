package simlint

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe extracts expected-diagnostic markers from fixture comments:
//
//	code() // want `substring of the expected message`
//
// The marker sits on the same line as the expected finding; several
// markers on one line expect several findings there.
var wantRe = regexp.MustCompile("// want `([^`]*)`")

// runFixture loads one testdata package and runs the given analyzers
// over it with their package filters bypassed (the fixture's import
// path is fixture/<name>, which no registry filter would admit).
func runFixture(t *testing.T, name string, analyzers ...*Analyzer) (*Package, *Result) {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	pkg, err := LoadDir(dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	suite := make([]*Analyzer, 0, len(analyzers))
	for _, a := range analyzers {
		cp := *a
		cp.Applies = nil
		suite = append(suite, &cp)
	}
	return pkg, RunPackages([]*Package{pkg}, suite)
}

// checkWants asserts that the result's unsuppressed findings match the
// fixture's want markers exactly: every finding has a marker on its
// line, every marker is consumed by a finding.
func checkWants(t *testing.T, pkg *Package, res *Result) {
	t.Helper()
	wants := map[string][]string{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				pos := pkg.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
				for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
					wants[key] = append(wants[key], m[1])
				}
			}
		}
	}
	for _, d := range res.Findings() {
		key := fmt.Sprintf("%s:%d", filepath.Base(d.Pos.Filename), d.Pos.Line)
		ws := wants[key]
		matched := -1
		for i, w := range ws {
			if strings.Contains(d.Message, w) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("unexpected finding: %s", d)
			continue
		}
		wants[key] = append(ws[:matched], ws[matched+1:]...)
	}
	for key, ws := range wants {
		for _, w := range ws {
			t.Errorf("missing finding at %s: no diagnostic containing %q", key, w)
		}
	}
}

func TestMapOrderFixture(t *testing.T) {
	pkg, res := runFixture(t, "maporder", MapOrder)
	checkWants(t, pkg, res)
	if res.Commutative != 1 {
		t.Errorf("commutative annotations honored = %d, want 1", res.Commutative)
	}
}

func TestWallclockFixture(t *testing.T) {
	pkg, res := runFixture(t, "wallclock", Wallclock)
	checkWants(t, pkg, res)
}

func TestFreelistFixture(t *testing.T) {
	pkg, res := runFixture(t, "freelist", Freelist)
	checkWants(t, pkg, res)
}

func TestHotAllocFixture(t *testing.T) {
	pkg, res := runFixture(t, "hotalloc", HotAlloc)
	checkWants(t, pkg, res)
	if res.Hotpath != 4 {
		t.Errorf("hotpath functions honored = %d, want 4", res.Hotpath)
	}
}

func TestGoroutineFixture(t *testing.T) {
	pkg, res := runFixture(t, "goroutine", Goroutine)
	checkWants(t, pkg, res)
	// concurrent.go's file-wide carve-out and decl.go's two
	// declaration-scoped ones admit their primitives and are counted as
	// in use; the stale carve-outs (file-wide in stale.go, decl-scoped
	// in decl.go) guard no primitive and surface as unused-annotation
	// findings (matched by their markers).
	if res.Concurrent != 3 {
		t.Errorf("concurrent carve-outs in use = %d, want 3", res.Concurrent)
	}
}

// TestSuppressFixture exercises the directive machinery end to end:
// valid suppressions (line-above, same-line, file-wide) are tracked
// with their reasons; an unused suppression and the malformed shapes
// surface as findings of the "simlint" pseudo-analyzer.
func TestSuppressFixture(t *testing.T) {
	_, res := runFixture(t, "suppress", Analyzers()...)

	findings := res.Findings()
	wantSubstrings := []string{
		// filewide.go sorts before suppress.go; findings are position-sorted.
		"unused suppression for \"goroutine\"",
		"must carry a reason",
		"needs a known analyzer name",
		"unknown kind \"frobnicate\"",
	}
	if len(findings) != len(wantSubstrings) {
		for _, d := range findings {
			t.Logf("finding: %s", d)
		}
		t.Fatalf("got %d findings, want %d", len(findings), len(wantSubstrings))
	}
	for i, w := range wantSubstrings {
		if !strings.Contains(findings[i].Message, w) {
			t.Errorf("finding %d = %q, want it to contain %q", i, findings[i].Message, w)
		}
		if findings[i].Analyzer != "simlint" {
			t.Errorf("finding %d attributed to %q, want the simlint pseudo-analyzer", i, findings[i].Analyzer)
		}
	}

	// Three distinct directives earned their keep: line-above,
	// same-line, and the file-wide waiver (used twice, listed once).
	if len(res.Suppressions) != 3 {
		for _, s := range res.Suppressions {
			t.Logf("suppression: %s", s)
		}
		t.Fatalf("got %d tracked suppressions, want 3", len(res.Suppressions))
	}
	for _, s := range res.Suppressions {
		if s.Analyzer != "wallclock" {
			t.Errorf("suppression %s targets %q, want wallclock", s, s.Analyzer)
		}
		if s.Reason == "" {
			t.Errorf("suppression %s has no reason", s)
		}
	}

	// The file-wide directive suppressed both violations in its file.
	suppressed := 0
	for _, d := range res.Diags {
		if d.Suppressed {
			suppressed++
			if d.Reason == "" {
				t.Errorf("suppressed diagnostic %s carries no reason", d)
			}
		}
	}
	if suppressed != 4 {
		t.Errorf("got %d suppressed diagnostics, want 4", suppressed)
	}
}
