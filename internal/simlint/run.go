package simlint

import (
	"fmt"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Result aggregates one run of the suite over a set of packages.
type Result struct {
	Diags        []Diagnostic // every finding, suppressed ones marked
	Suppressions []*Directive // used ignore directives, with reasons
	Commutative  int          // commutative annotations honored
	Hotpath      int          // hotpath annotations honored
	Concurrent   int          // concurrency carve-outs in use (file-wide or per-declaration)
	Packages     int
}

// Findings returns the unsuppressed findings (the ones that fail a run).
func (r *Result) Findings() []Diagnostic {
	var out []Diagnostic
	for _, d := range r.Diags {
		if !d.Suppressed {
			out = append(out, d)
		}
	}
	return out
}

// RunPackages applies analyzers to every package, honoring each
// analyzer's package filter, applying suppression directives, and
// reporting unused suppressions as findings of their own (a suppression
// whose violation no longer exists is stale documentation).
func RunPackages(pkgs []*Package, analyzers []*Analyzer) *Result {
	res := &Result{Packages: len(pkgs)}
	names := map[string]bool{}
	for _, a := range analyzers {
		names[a.Name] = true
	}
	for _, pkg := range pkgs {
		ds, malformed := ParseDirectives(pkg.Fset, pkg.Files, names)
		res.Diags = append(res.Diags, malformed...)
		var pkgDiags []Diagnostic
		for _, a := range analyzers {
			if a.Applies != nil && !a.Applies(pkg.Path) {
				continue
			}
			pass := &Pass{
				Analyzer:   a,
				Fset:       pkg.Fset,
				Files:      pkg.Files,
				Pkg:        pkg.Types,
				Info:       pkg.Info,
				PkgPath:    pkg.Path,
				Directives: ds,
				diags:      &pkgDiags,
			}
			a.Run(pass)
		}
		for i := range pkgDiags {
			ds.suppress(&pkgDiags[i])
		}
		res.Diags = append(res.Diags, pkgDiags...)
		for _, d := range ds.all() {
			switch d.Kind {
			case DirIgnore:
				if d.used {
					res.Suppressions = append(res.Suppressions, d)
				} else {
					res.Diags = append(res.Diags, Diagnostic{
						Pos:      positionOf(d),
						Analyzer: "simlint",
						Message: fmt.Sprintf("unused suppression for %q (reason: %s); the violation it documents no longer exists — delete it",
							d.Analyzer, d.Reason),
					})
				}
			case DirCommutative:
				if d.used {
					res.Commutative++
				}
			case DirHotpath:
				if d.used {
					res.Hotpath++
				}
			case DirConcurrent:
				if d.used {
					res.Concurrent++
				} else {
					res.Diags = append(res.Diags, Diagnostic{
						Pos:      positionOf(d),
						Analyzer: "simlint",
						Message: fmt.Sprintf("unused concurrent carve-out (reason: %s); the annotated scope no longer uses goroutines, channels, or sync primitives — delete it",
							d.Reason),
					})
				}
			}
		}
	}
	sortDiags(res.Diags)
	return res
}

func positionOf(d *Directive) (p token.Position) {
	p.Filename = d.File
	p.Line = d.Line
	p.Column = 1
	return p
}

func sortDiags(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// Format renders the result: unsuppressed findings first, then the
// tracked-suppression summary (every accepted violation with its
// reason, like the HPF-level verifier's report). Paths are shown
// relative to root.
func (r *Result) Format(w io.Writer, root string) {
	rel := func(p string) string {
		if root == "" {
			return p
		}
		if rp, err := filepath.Rel(root, p); err == nil && !strings.HasPrefix(rp, "..") {
			return rp
		}
		return p
	}
	findings := r.Findings()
	for _, d := range findings {
		fmt.Fprintf(w, "%s:%d:%d: %s: %s\n", rel(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	}
	fmt.Fprintf(w, "simlint: %d package(s): %d finding(s), %d suppressed, %d commutative annotation(s), %d hotpath function(s), %d concurrent carve-out(s)\n",
		r.Packages, len(findings), len(r.Suppressions), r.Commutative, r.Hotpath, r.Concurrent)
	if len(r.Suppressions) > 0 {
		fmt.Fprintf(w, "tracked suppressions:\n")
		for _, s := range r.Suppressions {
			fmt.Fprintf(w, "  %s:%d: %s -- %s\n", rel(s.File), s.Line, s.Analyzer, s.Reason)
		}
	}
}

// Main is the cmd/simlint entry point: load the module packages
// matching the patterns (default ./...), run the registered suite, and
// render the report. Returns the process exit code: 0 clean, 1 on any
// unsuppressed finding, 2 on a load failure.
func Main(args []string, stdout, stderr io.Writer) int {
	patterns := args
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	root, err := ModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	pkgs, err := Load(root, patterns...)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	res := RunPackages(pkgs, Analyzers())
	res.Format(stdout, root)
	if len(res.Findings()) > 0 {
		return 1
	}
	return 0
}
