// Package simlint is a custom static-analysis suite over this
// repository's own Go source. Every result the reproduction publishes
// rests on bit-identical determinism — the golden/differential layer,
// the fault and crash soak bit-identity tests, and the sim-ms drift
// gates all assume the simulator introduces no nondeterminism and no
// per-event allocation on its hot paths. The HPF programs are verified
// by internal/analysis; simlint verifies the simulator itself,
// machine-checking the discipline that otherwise lives in comments:
//
//   - maporder:  no unordered map iteration in deterministic paths
//   - wallclock: no wall-clock time, unseeded randomness, or
//     environment reads in sim-visible packages
//   - freelist:  no use-after-Recycle / double-Recycle / Retain
//     misuse of pooled messages and payload buffers
//   - hotalloc:  no heap allocation inside //simlint:hotpath functions
//   - goroutine: no new goroutines, channels, or sync primitives
//     outside the sim kernel (one-runnable-goroutine discipline)
//
// The framework is stdlib-only (go/parser, go/ast, go/types, go/token);
// go.mod stays dependency-free. Packages are loaded with full type
// information through `go list -export` and the gc importer (load.go).
//
// Findings are suppressed one at a time with
//
//	//simlint:ignore <analyzer> -- <reason>
//
// placed on, or on the line above, the offending line (or before the
// package clause for a file-wide waiver). The reason is mandatory and
// every suppression is reported in the driver's summary, mirroring the
// tracked suppressions of the HPF-level verifier. Three further
// annotations feed specific analyzers: //simlint:commutative marks a
// map-ranging loop whose body is order-independent,
// //simlint:hotpath opts a function into the hotalloc discipline, and
// //simlint:concurrent (mandatory reason) admits a scope into the
// goroutine analyzer's concurrency carve-out: placed before the
// package clause it admits the whole file (the sim kernel's scheduler
// files), placed on a single top-level declaration's doc comment it
// admits just that function or type — the narrow form the PDES barrier
// uses, so the rest of its file stays under the one-runnable-goroutine
// discipline. Anything else using goroutines, channels, or sync
// primitives in the deterministic set still fails.
package simlint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named invariant check. Run inspects a single
// type-checked package and reports findings through the Pass.
type Analyzer struct {
	Name string
	Doc  string
	// Applies filters packages by import path; nil means every package.
	// The registry wires the deterministic-path and sim-visible sets
	// here; fixture tests bypass it by invoking Run directly.
	Applies func(pkgPath string) bool
	Run     func(*Pass)
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer   *Analyzer
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
	PkgPath    string
	Directives *DirectiveSet

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding with file:line provenance. Suppressed
// findings stay in the result (they are reported in the summary) but
// do not fail the run.
type Diagnostic struct {
	Pos        token.Position
	Analyzer   string
	Message    string
	Suppressed bool
	Reason     string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// --- Directives ------------------------------------------------------

// Directive kinds.
const (
	DirIgnore      = "ignore"      // suppress one analyzer's findings at a line (or file-wide)
	DirCommutative = "commutative" // the annotated map range is order-independent
	DirHotpath     = "hotpath"     // the annotated function must not allocate
	DirConcurrent  = "concurrent"  // this file or declaration may use goroutines/channels/sync (reason mandatory)
)

// Directive is one parsed //simlint: comment.
type Directive struct {
	Kind     string
	Analyzer string // DirIgnore only
	Reason   string // mandatory for DirIgnore, optional otherwise
	File     string
	Line     int
	FileWide bool // written before the package clause
	used     bool
}

func (d *Directive) String() string {
	s := fmt.Sprintf("%s:%d: %s", d.File, d.Line, d.Kind)
	if d.Analyzer != "" {
		s += " " + d.Analyzer
	}
	if d.Reason != "" {
		s += " -- " + d.Reason
	}
	return s
}

// DirectiveSet holds every directive of one package, indexed by file.
type DirectiveSet struct {
	byFile map[string][]*Directive
}

const directivePrefix = "//simlint:"

// ParseDirectives extracts //simlint: directives from every comment in
// files. Malformed directives (unknown kind, unknown analyzer, missing
// mandatory reason) are returned as diagnostics attributed to the
// pseudo-analyzer "simlint"; they are never suppressible.
func ParseDirectives(fset *token.FileSet, files []*ast.File, analyzerNames map[string]bool) (*DirectiveSet, []Diagnostic) {
	ds := &DirectiveSet{byFile: map[string][]*Directive{}}
	var malformed []Diagnostic
	bad := func(pos token.Pos, format string, args ...any) {
		malformed = append(malformed, Diagnostic{
			Pos:      fset.Position(pos),
			Analyzer: "simlint",
			Message:  fmt.Sprintf(format, args...),
		})
	}
	for _, f := range files {
		pkgLine := fset.Position(f.Package).Line
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, directivePrefix)
				kind, args, _ := strings.Cut(rest, " ")
				args, reason, hasReason := cutReason(args)
				d := &Directive{
					Kind:     kind,
					Reason:   reason,
					File:     pos.Filename,
					Line:     pos.Line,
					FileWide: pos.Line < pkgLine,
				}
				switch kind {
				case DirIgnore:
					d.Analyzer = strings.TrimSpace(args)
					if d.Analyzer == "" || !analyzerNames[d.Analyzer] {
						bad(c.Pos(), "malformed directive %q: ignore needs a known analyzer name", c.Text)
						continue
					}
					if !hasReason || reason == "" {
						bad(c.Pos(), "malformed directive %q: a suppression must carry a reason (\"//simlint:ignore %s -- why it is safe\")", c.Text, d.Analyzer)
						continue
					}
				case DirCommutative, DirHotpath:
					// Reason optional; trailing words without the
					// " -- " separator are a mistake.
					if strings.TrimSpace(args) != "" {
						bad(c.Pos(), "malformed directive %q: unexpected arguments (use \"-- reason\" for a justification)", c.Text)
						continue
					}
				case DirConcurrent:
					// A concurrency carve-out — whether for a whole
					// file (before the package clause) or one
					// declaration (in its doc comment) — must say why
					// it is safe.
					if strings.TrimSpace(args) != "" {
						bad(c.Pos(), "malformed directive %q: unexpected arguments (use \"//simlint:concurrent -- why the scope is safe\")", c.Text)
						continue
					}
					if !hasReason || reason == "" {
						bad(c.Pos(), "malformed directive %q: a concurrency carve-out must carry a reason (\"//simlint:concurrent -- why the scope is safe\")", c.Text)
						continue
					}
				default:
					bad(c.Pos(), "malformed directive %q: unknown kind %q", c.Text, kind)
					continue
				}
				ds.byFile[pos.Filename] = append(ds.byFile[pos.Filename], d)
			}
		}
	}
	return ds, malformed
}

// cutReason splits "args -- reason" around the mandatory separator.
func cutReason(s string) (args, reason string, ok bool) {
	if a, r, found := strings.Cut(s, "--"); found {
		return strings.TrimSpace(a), strings.TrimSpace(r), true
	}
	return strings.TrimSpace(s), "", false
}

// at reports a directive of the given kind attached to line: written on
// the line itself or on the line directly above.
func (ds *DirectiveSet) at(kind, file string, line int) *Directive {
	for _, d := range ds.byFile[file] {
		if d.Kind == kind && !d.FileWide && (d.Line == line || d.Line == line-1) {
			return d
		}
	}
	return nil
}

// CommutativeAt reports whether a //simlint:commutative annotation is
// attached to the given line, consuming it.
func (ds *DirectiveSet) CommutativeAt(file string, line int) bool {
	if d := ds.at(DirCommutative, file, line); d != nil {
		d.used = true
		return true
	}
	return false
}

// ConcurrentFile returns the file-wide //simlint:concurrent directive
// for file, or nil. The caller (the goroutine analyzer) marks it used
// only when the file actually contains a concurrency primitive, so a
// stale carve-out on a since-cleaned file surfaces as an unused
// annotation finding.
func (ds *DirectiveSet) ConcurrentFile(file string) *Directive {
	for _, d := range ds.byFile[file] {
		if d.Kind == DirConcurrent && d.FileWide {
			return d
		}
	}
	return nil
}

// ConcurrentDecl returns the //simlint:concurrent directive written in
// the given declaration doc comment, or nil. Like ConcurrentFile, the
// caller marks it used only when the declaration actually contains a
// concurrency primitive, so a carve-out on a since-cleaned function or
// type surfaces as an unused-annotation finding.
func (ds *DirectiveSet) ConcurrentDecl(fset *token.FileSet, doc *ast.CommentGroup) *Directive {
	if doc == nil {
		return nil
	}
	pos := fset.Position(doc.Pos())
	end := fset.Position(doc.End())
	for _, d := range ds.byFile[pos.Filename] {
		if d.Kind == DirConcurrent && !d.FileWide && d.Line >= pos.Line && d.Line <= end.Line {
			return d
		}
	}
	return nil
}

// suppress marks diag suppressed if a matching ignore directive exists,
// recording the directive as used.
func (ds *DirectiveSet) suppress(diag *Diagnostic) bool {
	for _, d := range ds.byFile[diag.Pos.Filename] {
		if d.Kind != DirIgnore || d.Analyzer != diag.Analyzer {
			continue
		}
		if d.FileWide || d.Line == diag.Pos.Line || d.Line == diag.Pos.Line-1 {
			d.used = true
			diag.Suppressed = true
			diag.Reason = d.Reason
			return true
		}
	}
	return false
}

// all returns every directive in deterministic (file, line) order.
func (ds *DirectiveSet) all() []*Directive {
	var out []*Directive
	for _, l := range ds.byFile {
		out = append(out, l...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		return out[i].Line < out[j].Line
	})
	return out
}

// funcHotpath reports whether fn carries the //simlint:hotpath
// annotation in its doc comment, consuming the directive.
func (ds *DirectiveSet) funcHotpath(fset *token.FileSet, fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	found := false
	for _, c := range fn.Doc.List {
		if strings.HasPrefix(c.Text, directivePrefix+DirHotpath) {
			found = true
		}
	}
	if !found {
		return false
	}
	pos := fset.Position(fn.Doc.Pos())
	end := fset.Position(fn.Pos())
	for _, d := range ds.byFile[pos.Filename] {
		if d.Kind == DirHotpath && d.Line >= pos.Line && d.Line <= end.Line {
			d.used = true
		}
	}
	return true
}

// typeIsMap reports whether t ranges as a map.
func typeIsMap(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}
