package simlint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotAlloc flags heap allocation inside functions annotated
// //simlint:hotpath: the event-dispatch loop, the access-fault path,
// the compiled affine fast loop, and the messaging freelists. The
// PR 3 rebuild took these paths to zero steady-state allocations and
// the benchmark gates assume they stay there; this analyzer pins the
// property per-function instead of per-benchmark.
//
// Flagged inside a hotpath function:
//   - &T{...}        heap-escaping composite literal
//   - []T{...}       slice literal (backing array allocation)
//   - map[K]V{...}   map literal
//   - make(map/chan) map and channel construction
//   - func(){...}    closure (context allocation)
//   - append(...)    amortized growth
//
// Plain value literals (T{...} of struct/array type) are not flagged:
// they live on the stack. A justified allocation — a freelist growing
// to its high-water mark, a per-miss transaction descriptor — carries
// //simlint:ignore hotalloc -- <reason> and shows up in the summary.
// The annotation is available in every package: hot paths exist
// outside the deterministic set too.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "heap allocation inside a //simlint:hotpath function",
	Run:  runHotAlloc,
}

func runHotAlloc(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !pass.Directives.funcHotpath(pass.Fset, fd) {
				continue
			}
			checkHotFunc(pass, fd)
		}
	}
}

func checkHotFunc(pass *Pass, fd *ast.FuncDecl) {
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if lit, ok := n.X.(*ast.CompositeLit); ok && n.Op == token.AND {
				pass.Reportf(n.Pos(), "&%s{...} allocates on the hot path", typeLabel(pass, lit))
				return false // inner literals are part of the same allocation
			}
		case *ast.CompositeLit:
			t := pass.Info.TypeOf(n)
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Slice:
				pass.Reportf(n.Pos(), "slice literal allocates its backing array on the hot path")
				return false
			case *types.Map:
				pass.Reportf(n.Pos(), "map literal allocates on the hot path")
				return false
			}
			// Value struct/array literals live on the stack; descend for
			// nested slice/map element literals.
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "closure allocates its context on the hot path")
			return false // the body runs when called; its allocations are its own
		case *ast.CallExpr:
			if isBuiltinNamed(n, "append") {
				pass.Reportf(n.Pos(), "append may grow on the hot path; preallocate to the high-water mark or justify the amortization")
			} else if isBuiltinNamed(n, "make") && len(n.Args) > 0 {
				if t := pass.Info.TypeOf(n.Args[0]); t != nil {
					switch t.Underlying().(type) {
					case *types.Map:
						pass.Reportf(n.Pos(), "make(map) allocates on the hot path")
					case *types.Chan:
						pass.Reportf(n.Pos(), "make(chan) allocates on the hot path")
					}
				}
			}
		}
		return true
	}
	ast.Inspect(fd.Body, visit)
}

// typeLabel renders the composite literal's type for the diagnostic.
func typeLabel(pass *Pass, lit *ast.CompositeLit) string {
	if t := pass.Info.TypeOf(lit); t != nil {
		if named, ok := t.(*types.Named); ok {
			return named.Obj().Name()
		}
		return t.String()
	}
	return "T"
}
