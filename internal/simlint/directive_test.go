package simlint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parseSrc(t *testing.T, src string) (*token.FileSet, *ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "d.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, f
}

func TestCutReason(t *testing.T) {
	for _, tc := range []struct {
		in, args, reason string
		ok               bool
	}{
		{"maporder -- keys are independent", "maporder", "keys are independent", true},
		{"maporder", "maporder", "", false},
		{" -- only a reason", "", "only a reason", true},
		{"", "", "", false},
	} {
		args, reason, ok := cutReason(tc.in)
		if args != tc.args || reason != tc.reason || ok != tc.ok {
			t.Errorf("cutReason(%q) = (%q, %q, %v), want (%q, %q, %v)",
				tc.in, args, reason, ok, tc.args, tc.reason, tc.ok)
		}
	}
}

func TestParseDirectivesPlacement(t *testing.T) {
	src := `//simlint:ignore wallclock -- whole file is exempt

package d

func a() {
	//simlint:ignore maporder -- line above
	_ = 1
	_ = 2 //simlint:ignore freelist -- same line
	//simlint:commutative
	_ = 3
}
`
	fset, f := parseSrc(t, src)
	names := AnalyzerNames()
	ds, malformed := ParseDirectives(fset, []*ast.File{f}, names)
	if len(malformed) != 0 {
		t.Fatalf("unexpected malformed directives: %v", malformed)
	}
	all := ds.all()
	if len(all) != 4 {
		t.Fatalf("parsed %d directives, want 4", len(all))
	}
	if !all[0].FileWide {
		t.Errorf("directive before the package clause should be file-wide: %s", all[0])
	}
	for _, d := range all[1:] {
		if d.FileWide {
			t.Errorf("directive inside the file marked file-wide: %s", d)
		}
	}

	// Line-above suppression: directive on line 6, violation on line 7.
	diag := Diagnostic{Pos: token.Position{Filename: "d.go", Line: 7}, Analyzer: "maporder"}
	if !ds.suppress(&diag) || diag.Reason != "line above" {
		t.Errorf("line-above suppression failed: %+v", diag)
	}
	// Same-line suppression on line 8.
	diag = Diagnostic{Pos: token.Position{Filename: "d.go", Line: 8}, Analyzer: "freelist"}
	if !ds.suppress(&diag) || diag.Reason != "same line" {
		t.Errorf("same-line suppression failed: %+v", diag)
	}
	// File-wide wallclock waiver reaches any line.
	diag = Diagnostic{Pos: token.Position{Filename: "d.go", Line: 100}, Analyzer: "wallclock"}
	if !ds.suppress(&diag) {
		t.Errorf("file-wide suppression failed: %+v", diag)
	}
	// Wrong analyzer is not suppressed.
	diag = Diagnostic{Pos: token.Position{Filename: "d.go", Line: 7}, Analyzer: "hotalloc"}
	if ds.suppress(&diag) {
		t.Errorf("suppression crossed analyzers: %+v", diag)
	}
	// Commutative annotation attaches to the line below it.
	if !ds.CommutativeAt("d.go", 10) {
		t.Error("CommutativeAt missed the annotated line")
	}
	if ds.CommutativeAt("d.go", 5) {
		t.Error("CommutativeAt matched an unannotated line")
	}
}

func TestParseDirectivesMalformed(t *testing.T) {
	src := `package d

//simlint:ignore maporder
func a() {}

//simlint:ignore unknownone -- reason
func b() {}

//simlint:nonsense
func c() {}

//simlint:commutative trailing words
func d2() {}
`
	fset, f := parseSrc(t, src)
	_, malformed := ParseDirectives(fset, []*ast.File{f}, AnalyzerNames())
	if len(malformed) != 4 {
		for _, m := range malformed {
			t.Logf("malformed: %s", m)
		}
		t.Fatalf("got %d malformed directives, want 4", len(malformed))
	}
	for _, m := range malformed {
		if m.Analyzer != "simlint" {
			t.Errorf("malformed directive attributed to %q, want simlint", m.Analyzer)
		}
	}
}

func TestParseConcurrentDirective(t *testing.T) {
	src := `//simlint:concurrent -- the scheduler file hands control through channels

package d

func a() {}
`
	fset, f := parseSrc(t, src)
	ds, malformed := ParseDirectives(fset, []*ast.File{f}, AnalyzerNames())
	if len(malformed) != 0 {
		t.Fatalf("unexpected malformed directives: %v", malformed)
	}
	d := ds.ConcurrentFile("d.go")
	if d == nil {
		t.Fatal("ConcurrentFile missed the file-wide annotation")
	}
	if !d.FileWide || d.Reason == "" {
		t.Errorf("parsed concurrent directive = %+v, want file-wide with reason", d)
	}
	if d.used {
		t.Error("ConcurrentFile must not consume the directive; only an actual primitive does")
	}
	if ds.ConcurrentFile("other.go") != nil {
		t.Error("ConcurrentFile crossed files")
	}
}

func TestParseConcurrentDeclDirective(t *testing.T) {
	src := `package d

//simlint:concurrent -- this one function is the epoch barrier
func barrier() {}

// plain doc comment, no carve-out.
func other() {}
`
	fset, f := parseSrc(t, src)
	ds, malformed := ParseDirectives(fset, []*ast.File{f}, AnalyzerNames())
	if len(malformed) != 0 {
		t.Fatalf("unexpected malformed directives: %v", malformed)
	}
	if ds.ConcurrentFile("d.go") != nil {
		t.Error("a decl-scoped concurrent directive must not admit the whole file")
	}
	byName := map[string]*ast.FuncDecl{}
	for _, decl := range f.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok {
			byName[fd.Name.Name] = fd
		}
	}
	d := ds.ConcurrentDecl(fset, byName["barrier"].Doc)
	if d == nil {
		t.Fatal("ConcurrentDecl missed the annotated declaration")
	}
	if d.FileWide || d.Reason == "" {
		t.Errorf("parsed decl-scoped concurrent directive = %+v, want non-file-wide with reason", d)
	}
	if d.used {
		t.Error("ConcurrentDecl must not consume the directive; only an actual primitive does")
	}
	if ds.ConcurrentDecl(fset, byName["other"].Doc) != nil {
		t.Error("ConcurrentDecl matched an ordinary doc comment")
	}
	if ds.ConcurrentDecl(fset, nil) != nil {
		t.Error("ConcurrentDecl matched a nil doc comment")
	}
}

func TestParseConcurrentDirectiveMalformed(t *testing.T) {
	for _, tc := range []struct {
		name, src, want string
	}{
		{
			"missing reason",
			"//simlint:concurrent\n\npackage d\n",
			"must carry a reason",
		},
		{
			"trailing arguments",
			"//simlint:concurrent goroutine -- reason\n\npackage d\n",
			"unexpected arguments",
		},
	} {
		fset, f := parseSrc(t, tc.src)
		ds, malformed := ParseDirectives(fset, []*ast.File{f}, AnalyzerNames())
		if len(malformed) != 1 {
			t.Errorf("%s: got %d malformed directives, want 1", tc.name, len(malformed))
			continue
		}
		if !strings.Contains(malformed[0].Message, tc.want) {
			t.Errorf("%s: message %q does not contain %q", tc.name, malformed[0].Message, tc.want)
		}
		if ds.ConcurrentFile("d.go") != nil {
			t.Errorf("%s: malformed directive still registered", tc.name)
		}
	}
}

func TestFuncHotpath(t *testing.T) {
	src := `package d

//simlint:hotpath
func hot() {}

// cold has an ordinary doc comment.
func cold() {}

func bare() {}
`
	fset, f := parseSrc(t, src)
	ds, malformed := ParseDirectives(fset, []*ast.File{f}, AnalyzerNames())
	if len(malformed) != 0 {
		t.Fatalf("unexpected malformed directives: %v", malformed)
	}
	byName := map[string]*ast.FuncDecl{}
	for _, decl := range f.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok {
			byName[fd.Name.Name] = fd
		}
	}
	if !ds.funcHotpath(fset, byName["hot"]) {
		t.Error("funcHotpath missed the annotated function")
	}
	if ds.funcHotpath(fset, byName["cold"]) {
		t.Error("funcHotpath matched an ordinary doc comment")
	}
	if ds.funcHotpath(fset, byName["bare"]) {
		t.Error("funcHotpath matched a function with no doc")
	}
}

func TestDirectiveAndDiagnosticString(t *testing.T) {
	d := &Directive{Kind: DirIgnore, Analyzer: "maporder", Reason: "why", File: "f.go", Line: 3}
	if got := d.String(); got != "f.go:3: ignore maporder -- why" {
		t.Errorf("Directive.String() = %q", got)
	}
	diag := Diagnostic{
		Pos:      token.Position{Filename: "f.go", Line: 3, Column: 7},
		Analyzer: "maporder",
		Message:  "msg",
	}
	if got := diag.String(); got != "f.go:3:7: maporder: msg" {
		t.Errorf("Diagnostic.String() = %q", got)
	}
}

func TestRegistryScoping(t *testing.T) {
	if !isDeterministic("hpfdsm/internal/sim") || isDeterministic("hpfdsm/internal/bench") {
		t.Error("isDeterministic misclassifies")
	}
	if !isWallclockExempt("hpfdsm/internal/profiling") ||
		!isWallclockExempt("hpfdsm/cmd/hpfc") ||
		isWallclockExempt("hpfdsm/internal/sim") {
		t.Error("isWallclockExempt misclassifies")
	}
	names := AnalyzerNames()
	for _, want := range []string{"maporder", "wallclock", "freelist", "hotalloc", "goroutine"} {
		if !names[want] {
			t.Errorf("AnalyzerNames missing %q", want)
		}
	}
	if len(Analyzers()) != 5 {
		t.Errorf("registry has %d analyzers, want 5", len(Analyzers()))
	}
	for _, a := range Analyzers() {
		if a.Doc == "" || !strings.ContainsAny(a.Name, "abcdefghijklmnopqrstuvwxyz") {
			t.Errorf("analyzer %q lacks a name or doc", a.Name)
		}
	}
}
