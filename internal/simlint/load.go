package simlint

import (
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one loaded, fully type-checked package.
type Package struct {
	Path  string // import path
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File // non-test files, parse order = go list order
	Types *types.Package
	Info  *types.Info
}

// ModuleRoot walks up from dir to the directory containing go.mod.
func ModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", errors.New("simlint: no go.mod found above " + dir)
		}
		dir = parent
	}
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	Module     *struct{ Path string }
}

// goList runs `go list -deps -export -json` in root over patterns and
// decodes the package stream. -export materializes each dependency's
// compiled export data in the build cache, which is what lets the
// stdlib gc importer supply full type information without any
// third-party loader.
func goList(root string, patterns ...string) ([]listPkg, error) {
	args := append([]string{"list", "-deps", "-export",
		"-json=ImportPath,Dir,GoFiles,Export,Standard,Module"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = root
	var stderr strings.Builder
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("simlint: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []listPkg
	dec := json.NewDecoder(strings.NewReader(string(out)))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("simlint: decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter resolves imports from the export-data files `go list
// -export` reported, through the stdlib gc importer.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return &expImporter{
		gc: importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
			f, ok := exports[path]
			if !ok {
				return nil, fmt.Errorf("no export data for %q", path)
			}
			return os.Open(f)
		}),
	}
}

type expImporter struct{ gc types.Importer }

func (i *expImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return i.gc.Import(path)
}

// Load parses and type-checks every package of the module rooted at
// root that matches patterns (typically "./..."). Test files are not
// loaded: the invariants protect the code that ships in the simulator;
// tests assert on those invariants from outside.
func Load(root string, patterns ...string) ([]*Package, error) {
	listed, err := goList(root, patterns...)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	var targets []listPkg
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if p.Module != nil && !p.Standard {
			targets = append(targets, p)
		}
	}
	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	var out []*Package
	for _, p := range targets {
		pkg, err := checkPackage(fset, imp, p.ImportPath, p.Dir, p.GoFiles)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// LoadDir parses and type-checks the single package in dir (a testdata
// fixture, invisible to go list patterns). Imports are resolved by
// listing the fixture's own import set from the module root.
func LoadDir(dir string) (*Package, error) {
	root, err := ModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var goFiles []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			goFiles = append(goFiles, e.Name())
		}
	}
	sort.Strings(goFiles)
	if len(goFiles) == 0 {
		return nil, fmt.Errorf("simlint: no Go files in %s", dir)
	}
	// Pre-parse to learn the fixture's imports, then list exactly those.
	fset := token.NewFileSet()
	var files []*ast.File
	importSet := map[string]bool{}
	for _, name := range goFiles {
		af, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, af)
		for _, im := range af.Imports {
			if p, err := strconv.Unquote(im.Path.Value); err == nil {
				importSet[p] = true
			}
		}
	}
	exports := map[string]string{}
	if len(importSet) > 0 {
		var imports []string
		for p := range importSet {
			imports = append(imports, p)
		}
		sort.Strings(imports)
		listed, err := goList(root, imports...)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	imp := exportImporter(fset, exports)
	return checkPackageFiles(fset, imp, "fixture/"+filepath.Base(dir), dir, files)
}

func checkPackage(fset *token.FileSet, imp types.Importer, path, dir string, goFiles []string) (*Package, error) {
	var files []*ast.File
	for _, name := range goFiles {
		af, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, af)
	}
	return checkPackageFiles(fset, imp, path, dir, files)
}

func checkPackageFiles(fset *token.FileSet, imp types.Importer, path, dir string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Defs:  map[*ast.Ident]types.Object{},
		Uses:  map[*ast.Ident]types.Object{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("simlint: type-checking %s: %v", path, err)
	}
	return &Package{Path: path, Dir: dir, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}
