package simlint

import (
	"go/ast"
)

// Goroutine enforces the one-runnable-goroutine discipline: inside the
// deterministic set, only scopes carrying a //simlint:concurrent
// annotation may spawn goroutines, build channels, or use sync
// primitives — file-wide before the package clause (the sim kernel's
// scheduler files), or on one top-level declaration's doc comment (the
// PDES epoch barrier's handful of functions, leaving the rest of the
// engine under the single-threaded rule). The kernel hands control
// between process goroutines through unbuffered channels with exactly
// one runnable at any instant; a second scheduler anywhere else would
// reintroduce host-scheduler ordering into the simulated machine. The
// parallel-sweep runner parallelizes across whole runs, outside this
// set. An annotated scope with no concurrency primitive left in it
// surfaces as an unused-annotation finding, so carve-outs cannot
// quietly outlive the code that justified them.
var Goroutine = &Analyzer{
	Name:    "goroutine",
	Doc:     "goroutine, channel, or sync primitive outside the sim kernel",
	Applies: isDeterministic,
	Run:     runGoroutine,
}

func runGoroutine(pass *Pass) {
	for _, f := range pass.Files {
		file := pass.Fset.Position(f.Package).Filename
		if d := pass.Directives.ConcurrentFile(file); d != nil {
			// Admitted file: no reports, but only primitives actually
			// present consume the annotation.
			ast.Inspect(f, func(n ast.Node) bool {
				if goroutinePrimitive(pass, n) {
					d.used = true
				}
				return true
			})
			continue
		}
		for _, decl := range f.Decls {
			var doc *ast.CommentGroup
			switch decl := decl.(type) {
			case *ast.FuncDecl:
				doc = decl.Doc
			case *ast.GenDecl:
				doc = decl.Doc
			}
			if d := pass.Directives.ConcurrentDecl(pass.Fset, doc); d != nil {
				// Admitted declaration: same deal as an admitted file,
				// scoped to this one function or type.
				ast.Inspect(decl, func(n ast.Node) bool {
					if goroutinePrimitive(pass, n) {
						d.used = true
					}
					return true
				})
				continue
			}
			ast.Inspect(decl, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.GoStmt:
					pass.Reportf(n.Pos(), "go statement outside the sim kernel; processes are spawned through sim.Env.Spawn only")
				case *ast.ChanType:
					pass.Reportf(n.Pos(), "channel type outside the sim kernel; cross-process signaling goes through sim.Signal and the event queue")
				case *ast.SelectorExpr:
					obj := pass.Info.Uses[n.Sel]
					if obj == nil || obj.Pkg() == nil {
						return true
					}
					switch obj.Pkg().Path() {
					case "sync", "sync/atomic":
						pass.Reportf(n.Pos(), "%s.%s introduces a sync primitive outside the sim kernel; the deterministic set is single-threaded by construction", obj.Pkg().Name(), obj.Name())
					}
				case *ast.SelectStmt:
					pass.Reportf(n.Pos(), "select statement outside the sim kernel")
				}
				return true
			})
		}
	}
}

// goroutinePrimitive reports whether n is one of the constructs the
// analyzer polices: a go statement, channel type, select statement, or
// a sync / sync-atomic selector.
func goroutinePrimitive(pass *Pass, n ast.Node) bool {
	switch n := n.(type) {
	case *ast.GoStmt, *ast.ChanType, *ast.SelectStmt:
		return true
	case *ast.SelectorExpr:
		obj := pass.Info.Uses[n.Sel]
		if obj == nil || obj.Pkg() == nil {
			return false
		}
		p := obj.Pkg().Path()
		return p == "sync" || p == "sync/atomic"
	}
	return false
}
