package simlint

import (
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRepoIsClean is the suite's meta-test: the live tree must carry
// zero unsuppressed findings. Every accepted violation is a tracked
// suppression with a reason; the log below keeps the inventory visible
// in test output.
func TestRepoIsClean(t *testing.T) {
	root, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(root, "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loaded no packages")
	}
	res := RunPackages(pkgs, Analyzers())
	for _, d := range res.Findings() {
		t.Errorf("unsuppressed finding: %s", d)
	}
	if len(res.Suppressions) == 0 {
		t.Error("expected tracked suppressions in the live tree (the freelist high-water-mark growth at least)")
	}
	for _, s := range res.Suppressions {
		t.Logf("tracked suppression: %s", s)
	}
	if res.Commutative == 0 {
		t.Error("expected commutative annotations in the live tree")
	}
	if res.Hotpath == 0 {
		t.Error("expected hotpath functions in the live tree")
	}
	if res.Concurrent == 0 {
		t.Error("expected concurrent carve-outs in the live tree (the sim kernel's scheduler files at least)")
	}
}

func TestFormat(t *testing.T) {
	res := &Result{
		Packages: 2,
		Diags: []Diagnostic{
			{Pos: token.Position{Filename: "/r/a.go", Line: 3, Column: 1}, Analyzer: "maporder", Message: "bad order"},
			{Pos: token.Position{Filename: "/r/b.go", Line: 9, Column: 2}, Analyzer: "hotalloc", Message: "alloc", Suppressed: true, Reason: "ok"},
		},
		Suppressions: []*Directive{
			{Kind: DirIgnore, Analyzer: "hotalloc", Reason: "ok", File: "/r/b.go", Line: 8},
		},
		Commutative: 1,
		Hotpath:     2,
		Concurrent:  1,
	}
	var buf strings.Builder
	res.Format(&buf, "/r")
	out := buf.String()
	for _, want := range []string{
		"a.go:3:1: maporder: bad order",
		"simlint: 2 package(s): 1 finding(s), 1 suppressed, 1 commutative annotation(s), 2 hotpath function(s), 1 concurrent carve-out(s)",
		"tracked suppressions:",
		"b.go:8: hotalloc -- ok",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Format output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "/r/a.go") {
		t.Errorf("Format did not relativize paths:\n%s", out)
	}

	// With no root, paths pass through; with no suppressions, the
	// tracked list is omitted.
	res.Suppressions = nil
	buf.Reset()
	res.Format(&buf, "")
	out = buf.String()
	if !strings.Contains(out, "/r/a.go:3:1") {
		t.Errorf("Format with empty root should keep absolute paths:\n%s", out)
	}
	if strings.Contains(out, "tracked suppressions") {
		t.Errorf("Format printed an empty suppression list:\n%s", out)
	}
}

func TestMainCleanTree(t *testing.T) {
	var out, errOut strings.Builder
	if code := Main(nil, &out, &errOut); code != 0 {
		t.Fatalf("Main = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "0 finding(s)") {
		t.Errorf("Main output missing the clean summary:\n%s", out.String())
	}
}

func TestMainLoadFailure(t *testing.T) {
	var out, errOut strings.Builder
	if code := Main([]string{"./does/not/exist/..."}, &out, &errOut); code != 2 {
		t.Fatalf("Main on a bogus pattern = %d, want 2", code)
	}
	if errOut.Len() == 0 {
		t.Error("Main load failure produced no stderr")
	}
}

func TestModuleRootNotFound(t *testing.T) {
	if _, err := ModuleRoot(t.TempDir()); err == nil {
		t.Error("ModuleRoot outside any module should fail")
	}
}

func TestLoadDirErrors(t *testing.T) {
	if _, err := LoadDir(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("LoadDir on a missing directory should fail")
	}
	empty := t.TempDir()
	if err := os.WriteFile(filepath.Join(empty, "go.mod"), []byte("module tmp\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDir(empty); err == nil || !strings.Contains(err.Error(), "no Go files") {
		t.Errorf("LoadDir on an empty directory = %v, want a no-Go-files error", err)
	}
}
