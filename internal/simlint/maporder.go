package simlint

import (
	"go/ast"
	"strings"
)

// MapOrder flags `for range` over a map in deterministic-path packages.
// Go randomizes map iteration order per run; any map-ordered effect on
// the simulated machine breaks bit-identity. Two escapes exist:
//
//   - the collect-then-sort idiom — a loop whose body only appends
//     keys/values to slices that are sorted later in the same block —
//     is recognized automatically and not flagged;
//   - a loop whose body is genuinely order-independent (a sum, an
//     any-/all-check, a map-to-map copy, an unordered delete) carries
//     //simlint:commutative on the line above, with the justification
//     in the surrounding comment.
var MapOrder = &Analyzer{
	Name:    "maporder",
	Doc:     "unordered map iteration in a deterministic-path package",
	Applies: isDeterministic,
	Run:     runMapOrder,
}

func runMapOrder(pass *Pass) {
	for _, f := range pass.Files {
		walkStmtLists(f, func(list []ast.Stmt) {
			for i, s := range list {
				rs, ok := s.(*ast.RangeStmt)
				if !ok || !typeIsMap(pass.Info.TypeOf(rs.X)) {
					continue
				}
				pos := pass.Fset.Position(rs.Pos())
				if pass.Directives.CommutativeAt(pos.Filename, pos.Line) {
					continue
				}
				if isCollectThenSort(pass, rs, list[i+1:]) {
					continue
				}
				pass.Reportf(rs.Pos(), "range over map has nondeterministic order; sort the keys first or annotate //simlint:commutative with a justification")
			}
		})
	}
	// Range statements that are not directly a block statement (e.g.
	// `if x { for range m {} }` is covered — walkStmtLists descends into
	// every statement list), so every RangeStmt is visited exactly once.
}

// walkStmtLists calls fn for every statement list in f: function
// bodies, nested blocks, case and comm clauses.
func walkStmtLists(f *ast.File, fn func([]ast.Stmt)) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BlockStmt:
			fn(n.List)
		case *ast.CaseClause:
			fn(n.Body)
		case *ast.CommClause:
			fn(n.Body)
		}
		return true
	})
}

// isCollectThenSort recognizes the sorted-key iteration idiom: the
// range body only appends to slice variables, and every such slice is
// passed to a sort call later in the same enclosing block.
func isCollectThenSort(pass *Pass, rs *ast.RangeStmt, rest []ast.Stmt) bool {
	targets := map[any]bool{} // types.Object of append targets
	if !collectOnly(pass, rs.Body.List, targets) || len(targets) == 0 {
		return false
	}
	for _, s := range rest {
		es, ok := s.(*ast.ExprStmt)
		if !ok {
			continue
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok || !isSortCall(call) {
			continue
		}
		for _, arg := range call.Args {
			if id, ok := arg.(*ast.Ident); ok {
				if obj := pass.Info.Uses[id]; obj != nil && targets[obj] {
					delete(targets, obj)
				}
			}
		}
	}
	return len(targets) == 0
}

// collectOnly reports whether every statement in list is an
// `x = append(x, ...)` accumulation (possibly under nested ifs, blocks,
// or loops), recording the append targets.
func collectOnly(pass *Pass, list []ast.Stmt, targets map[any]bool) bool {
	for _, s := range list {
		switch s := s.(type) {
		case *ast.AssignStmt:
			if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
				return false
			}
			id, ok := s.Lhs[0].(*ast.Ident)
			if !ok {
				return false
			}
			call, ok := s.Rhs[0].(*ast.CallExpr)
			if !ok || !isBuiltinNamed(call, "append") {
				return false
			}
			obj := pass.Info.Uses[id]
			if obj == nil {
				obj = pass.Info.Defs[id]
			}
			if obj == nil {
				return false
			}
			targets[obj] = true
		case *ast.IfStmt:
			if s.Init != nil {
				return false
			}
			if !collectOnly(pass, s.Body.List, targets) {
				return false
			}
			switch e := s.Else.(type) {
			case nil:
			case *ast.BlockStmt:
				if !collectOnly(pass, e.List, targets) {
					return false
				}
			case *ast.IfStmt:
				if !collectOnly(pass, []ast.Stmt{e}, targets) {
					return false
				}
			default:
				return false
			}
		case *ast.BlockStmt:
			if !collectOnly(pass, s.List, targets) {
				return false
			}
		case *ast.RangeStmt:
			if !collectOnly(pass, s.Body.List, targets) {
				return false
			}
		case *ast.ForStmt:
			if s.Init != nil || s.Post != nil {
				return false
			}
			if !collectOnly(pass, s.Body.List, targets) {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// isBuiltinNamed reports whether call invokes the named builtin.
func isBuiltinNamed(call *ast.CallExpr, name string) bool {
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == name
}

// isSortCall recognizes sort.X / slices.X / any function whose name
// mentions sort (the runtime package's local sortInts, for one).
func isSortCall(call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if x, ok := fun.X.(*ast.Ident); ok && (x.Name == "sort" || x.Name == "slices") {
			return true
		}
		return strings.Contains(strings.ToLower(fun.Sel.Name), "sort")
	case *ast.Ident:
		return strings.Contains(strings.ToLower(fun.Name), "sort")
	}
	return false
}
