package simlint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Freelist is an intra-function lifetime check on values drawn from the
// network's pools (NewMessage, AllocBlock, AllocVar). The pools power
// the zero-steady-state-allocation messaging layer; their contract is
// ownership-shaped and easy to violate silently:
//
//   - a value used after it was Recycled aliases the freelist — the
//     next NewMessage hands the same object to an unrelated sender;
//   - a double Recycle puts the object on the freelist twice, so two
//     future allocations alias each other;
//   - Retain exempts a delivered message from recycling and must be
//     balanced: a Retain after the Recycle already happened retains a
//     freelist entry.
//
// The check is conservative: a Recycle only kills the value for
// statements it unconditionally precedes (same or enclosing block, in
// source order); conditional recycles, loop back-edges, and deferred
// recycles are not tracked.
var Freelist = &Analyzer{
	Name:    "freelist",
	Doc:     "use-after-Recycle, double Recycle, or unbalanced Retain on pooled values",
	Applies: isDeterministic,
	Run:     runFreelist,
}

// poolAllocNames are the pool entry points whose results are tracked.
var poolAllocNames = map[string]bool{
	"NewMessage": true, "AllocBlock": true, "AllocVar": true,
}

const (
	flAlloc = iota
	flRecycle
	flRetain
	flUse
	flKill // reassignment from a non-pool source
)

// flEvent is one occurrence of a tracked variable, with the chain of
// enclosing statement-list nodes that decides conditionality.
type flEvent struct {
	kind     int
	pos      token.Pos
	chain    []ast.Node
	deferred bool
}

func runFreelist(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			fd, ok := n.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				return true
			}
			checkFreelistFunc(pass, fd)
			return true
		})
	}
}

func checkFreelistFunc(pass *Pass, fd *ast.FuncDecl) {
	events := map[*types.Var][]*flEvent{}
	w := &flWalker{pass: pass, events: events}
	w.stmts(fd.Body.List, nil, false)
	// Deterministic report order: by variable first-occurrence position.
	var vars []*types.Var
	for v := range events {
		vars = append(vars, v)
	}
	sortVarsByPos(vars, events)
	for _, v := range vars {
		evs := events[v]
		var lastRecycle *flEvent
		for _, e := range evs {
			if lastRecycle != nil && chainPrefix(lastRecycle.chain, e.chain) && !e.deferred {
				switch e.kind {
				case flUse:
					pass.Reportf(e.pos, "%s used after Recycle; the value is back on the freelist and may alias a future allocation", v.Name())
				case flRecycle:
					pass.Reportf(e.pos, "double Recycle of %s; the freelist now holds it twice and two future allocations will alias", v.Name())
				case flRetain:
					pass.Reportf(e.pos, "Retain of %s after Recycle; Retain must precede the Recycle it is meant to prevent", v.Name())
				case flAlloc, flKill:
					lastRecycle = nil
					continue
				}
				break // one report per variable; later uses are cascade
			}
			switch e.kind {
			case flAlloc, flKill:
				lastRecycle = nil
			case flRecycle:
				if !e.deferred && lastRecycle == nil {
					lastRecycle = e
				}
			}
		}
	}
}

func sortVarsByPos(vars []*types.Var, events map[*types.Var][]*flEvent) {
	for i := 1; i < len(vars); i++ {
		for j := i; j > 0 && events[vars[j]][0].pos < events[vars[j-1]][0].pos; j-- {
			vars[j], vars[j-1] = vars[j-1], vars[j]
		}
	}
}

// chainPrefix reports whether a's enclosing-block chain is a prefix of
// b's: a executing implies the blocks leading to b's location were not
// skipped around a.
func chainPrefix(a, b []ast.Node) bool {
	if len(a) > len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// flWalker walks statements in source order, recording events for
// variables bound to pool allocations.
type flWalker struct {
	pass   *Pass
	events map[*types.Var][]*flEvent
	chain  []ast.Node
}

func (w *flWalker) record(v *types.Var, kind int, pos token.Pos, deferred bool) {
	chain := make([]ast.Node, len(w.chain))
	copy(chain, w.chain)
	w.events[v] = append(w.events[v], &flEvent{kind: kind, pos: pos, chain: chain, deferred: deferred})
}

func (w *flWalker) obj(id *ast.Ident) *types.Var {
	o := w.pass.Info.Uses[id]
	if o == nil {
		o = w.pass.Info.Defs[id]
	}
	v, _ := o.(*types.Var)
	return v
}

// tracked reports whether v already has events (i.e. was pool-bound).
func (w *flWalker) tracked(v *types.Var) bool {
	_, ok := w.events[v]
	return ok
}

func (w *flWalker) stmts(list []ast.Stmt, block ast.Node, deferred bool) {
	if block != nil {
		w.chain = append(w.chain, block)
		defer func() { w.chain = w.chain[:len(w.chain)-1] }()
	}
	for _, s := range list {
		w.stmt(s, deferred)
	}
}

func (w *flWalker) stmt(s ast.Stmt, deferred bool) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		// RHS first (uses happen before the assignment takes effect).
		for _, r := range s.Rhs {
			w.expr(r, deferred)
		}
		if len(s.Lhs) == 1 && len(s.Rhs) == 1 {
			if id, ok := s.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
				if v := w.obj(id); v != nil {
					if call, ok := s.Rhs[0].(*ast.CallExpr); ok && isPoolAlloc(call) {
						w.record(v, flAlloc, id.Pos(), deferred)
						return
					}
					if w.tracked(v) {
						w.record(v, flKill, id.Pos(), deferred)
					}
				}
			}
		}
	case *ast.ExprStmt:
		w.expr(s.X, deferred)
	case *ast.DeferStmt:
		w.expr(s.Call, true)
	case *ast.GoStmt:
		w.expr(s.Call, true)
	case *ast.BlockStmt:
		w.stmts(s.List, s, deferred)
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, deferred)
		}
		w.expr(s.Cond, deferred)
		w.stmts(s.Body.List, s.Body, deferred)
		if s.Else != nil {
			w.stmt(s.Else, deferred)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init, deferred)
		}
		if s.Cond != nil {
			w.expr(s.Cond, deferred)
		}
		w.stmts(s.Body.List, s.Body, deferred)
		if s.Post != nil {
			w.stmt(s.Post, deferred)
		}
	case *ast.RangeStmt:
		w.expr(s.X, deferred)
		w.stmts(s.Body.List, s.Body, deferred)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, deferred)
		}
		if s.Tag != nil {
			w.expr(s.Tag, deferred)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					w.expr(e, deferred)
				}
				w.stmts(cc.Body, cc, deferred)
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, deferred)
		}
		w.stmt(s.Assign, deferred)
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body, cc, deferred)
			}
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.expr(r, deferred)
		}
	case *ast.DeclStmt, *ast.BranchStmt, *ast.EmptyStmt:
		if gd, ok := s.(*ast.DeclStmt); ok {
			ast.Inspect(gd, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok {
					w.ident(id, deferred)
				}
				return true
			})
		}
	case *ast.IncDecStmt:
		w.expr(s.X, deferred)
	case *ast.SendStmt:
		w.expr(s.Chan, deferred)
		w.expr(s.Value, deferred)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, deferred)
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				if cc.Comm != nil {
					w.stmt(cc.Comm, deferred)
				}
				w.stmts(cc.Body, cc, deferred)
			}
		}
	}
}

// expr records events for tracked variables inside e, classifying
// Recycle and Retain calls specially.
func (w *flWalker) expr(e ast.Expr, deferred bool) {
	if call, ok := e.(*ast.CallExpr); ok {
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			switch sel.Sel.Name {
			case "Recycle":
				// n.Recycle(m) — the argument dies. m.Recycle() — the
				// receiver dies.
				if len(call.Args) == 1 {
					if id, ok := call.Args[0].(*ast.Ident); ok {
						if v := w.obj(id); v != nil && w.tracked(v) {
							w.expr(sel.X, deferred)
							w.record(v, flRecycle, id.Pos(), deferred)
							return
						}
					}
				}
				if id, ok := sel.X.(*ast.Ident); ok && len(call.Args) == 0 {
					if v := w.obj(id); v != nil && w.tracked(v) {
						w.record(v, flRecycle, id.Pos(), deferred)
						return
					}
				}
			case "Retain":
				if id, ok := sel.X.(*ast.Ident); ok && len(call.Args) == 0 {
					if v := w.obj(id); v != nil && w.tracked(v) {
						w.record(v, flRetain, id.Pos(), deferred)
						return
					}
				}
			}
		}
		// Function literals passed as arguments run later; their bodies
		// are treated as conditional (deferred) uses.
		for _, a := range call.Args {
			if fl, ok := a.(*ast.FuncLit); ok {
				w.funcLit(fl)
			} else {
				w.expr(a, deferred)
			}
		}
		w.expr(call.Fun, deferred)
		return
	}
	if fl, ok := e.(*ast.FuncLit); ok {
		w.funcLit(fl)
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			w.ident(id, deferred)
		}
		return true
	})
}

// funcLit records every tracked-variable occurrence in a closure body
// as a deferred use (the closure may run at any later time).
func (w *flWalker) funcLit(fl *ast.FuncLit) {
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			w.ident(id, true)
		}
		return true
	})
}

func (w *flWalker) ident(id *ast.Ident, deferred bool) {
	if v := w.obj(id); v != nil && w.tracked(v) {
		w.record(v, flUse, id.Pos(), deferred)
	}
}

// isPoolAlloc recognizes calls to the pool entry points by method name:
// x.NewMessage(), x.AllocBlock(), x.AllocVar(n).
func isPoolAlloc(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	return ok && poolAllocNames[sel.Sel.Name]
}
