package simlint

import (
	"go/ast"
	"go/types"
)

// Wallclock bans host-time, unseeded-randomness, and process-
// environment reads in sim-visible packages. The simulated clock is
// sim.Time; any real-time or per-process entropy leaking into a
// sim-visible computation makes two runs of the same seed diverge.
// The profiling and CLI layers (see wallclockExempt) legitimately read
// wall time and the environment; they sit outside the deterministic
// set.
var Wallclock = &Analyzer{
	Name:    "wallclock",
	Doc:     "wall-clock time, unseeded randomness, or environment reads in a sim-visible package",
	Applies: func(p string) bool { return isDeterministic(p) && !isWallclockExempt(p) },
	Run:     runWallclock,
}

// bannedTime are the time package's real-clock entry points. time.Time
// arithmetic on values that came from elsewhere is fine; minting one
// from the host clock is not, and neither is any real-time wait.
var bannedTime = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// bannedOS are the process-environment reads.
var bannedOS = map[string]bool{
	"Getenv": true, "LookupEnv": true, "Environ": true, "ExpandEnv": true,
}

// randConstructors are the math/rand functions that build explicitly
// seeded generators; everything else at package scope draws from the
// shared global source, which is seeded from runtime entropy.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func runWallclock(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.Info.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			fn, ok := obj.(*types.Func)
			if !ok {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true // methods (e.g. on a seeded *rand.Rand) are fine
			}
			name := fn.Name()
			switch obj.Pkg().Path() {
			case "time":
				if bannedTime[name] {
					pass.Reportf(sel.Pos(), "time.%s reads the host clock; sim-visible time must come from sim.Env/Proc", name)
				}
			case "os":
				if bannedOS[name] {
					pass.Reportf(sel.Pos(), "os.%s reads the process environment; sim-visible configuration must come from config structs", name)
				}
			case "math/rand", "math/rand/v2":
				if !randConstructors[name] {
					pass.Reportf(sel.Pos(), "rand.%s draws from the global, runtime-seeded source; use a rand.New(rand.NewSource(seed)) generator owned by the run", name)
				}
			}
			return true
		})
	}
}
