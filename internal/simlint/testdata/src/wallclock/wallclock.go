// Package wallclock is a simlint fixture: host-time, environment, and
// randomness cases for the wallclock analyzer.
package wallclock

import (
	"math/rand"
	"os"
	"time"
)

func clock() int64 {
	t := time.Now() // want `time.Now reads the host clock`
	return t.UnixNano()
}

func elapsed(t time.Time) time.Duration {
	return time.Since(t) // want `time.Since reads the host clock`
}

func pause() {
	time.Sleep(time.Millisecond) // want `time.Sleep reads the host clock`
}

func env() string {
	return os.Getenv("HOME") // want `os.Getenv reads the process environment`
}

func global() int {
	return rand.Intn(6) // want `rand.Intn draws from the global`
}

// seeded builds an explicitly seeded generator; the constructors and
// the methods on the resulting *rand.Rand are both fine.
func seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(6)
}

// arithmetic manipulates a time.Time that came from elsewhere; only
// minting one from the host clock is banned.
func arithmetic(t time.Time, d time.Duration) time.Time {
	return t.Add(d)
}
