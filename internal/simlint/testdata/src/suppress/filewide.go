//simlint:ignore wallclock -- fixture: file-wide waiver, this whole file is host-time helpers

package suppress

import "time"

func hostStamp() int64 {
	return time.Now().UnixNano()
}

func hostElapsed(t time.Time) time.Duration {
	return time.Since(t)
}
