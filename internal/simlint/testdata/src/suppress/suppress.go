// Package suppress is a simlint fixture: suppression-directive
// mechanics — line-above and same-line ignores, an unused ignore, and
// the malformed shapes.
package suppress

import "time"

func stamped() int64 {
	//simlint:ignore wallclock -- fixture: demonstrates a line-above suppression
	return time.Now().UnixNano()
}

func elapsed(t time.Time) time.Duration {
	return time.Since(t) //simlint:ignore wallclock -- fixture: demonstrates a same-line suppression
}

//simlint:ignore goroutine -- fixture: nothing below violates goroutine, so this is stale

func harmless() int {
	return 1
}

//simlint:ignore wallclock

func missingReason() int {
	return 2
}

//simlint:ignore nosuchanalyzer -- fixture: the analyzer name is unknown

func unknownAnalyzer() int {
	return 3
}

//simlint:frobnicate

func unknownKind() int {
	return 4
}
