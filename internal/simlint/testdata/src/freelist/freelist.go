// Package freelist is a simlint fixture: pooled-value lifetime cases
// for the freelist analyzer. The pool shapes mirror the network layer:
// NewMessage/AllocBlock/AllocVar allocate, n.Recycle(m) or m.Recycle()
// returns to the pool, Retain exempts a delivered value.
package freelist

type Msg struct{ N int }

func (m *Msg) Recycle() {}
func (m *Msg) Retain()  {}

type Pool struct{ free []*Msg }

func (p *Pool) NewMessage() *Msg    { return &Msg{} }
func (p *Pool) AllocBlock() *Msg    { return &Msg{} }
func (p *Pool) AllocVar(n int) *Msg { return &Msg{N: n} }
func (p *Pool) Recycle(m *Msg)      { p.free = append(p.free, m) }

func useAfterRecycle(p *Pool) int {
	m := p.NewMessage()
	p.Recycle(m)
	return m.N // want `m used after Recycle`
}

func doubleRecycle(p *Pool) {
	m := p.NewMessage()
	m.N = 1
	p.Recycle(m)
	p.Recycle(m) // want `double Recycle of m`
}

func methodDoubleRecycle(p *Pool) {
	v := p.AllocVar(8)
	v.Recycle()
	v.Recycle() // want `double Recycle of v`
}

func retainAfterRecycle(p *Pool) {
	b := p.AllocBlock()
	b.Recycle()
	b.Retain() // want `Retain of b after Recycle`
}

// conditionalRecycle only recycles on one path; the straight-line use
// below is not unconditionally preceded by the Recycle, so the
// conservative check stays silent.
func conditionalRecycle(p *Pool, drop bool) int {
	m := p.NewMessage()
	if drop {
		p.Recycle(m)
	}
	return m.N
}

// reallocate rebinds the variable to a fresh pool value; the earlier
// Recycle no longer applies.
func reallocate(p *Pool) int {
	m := p.NewMessage()
	p.Recycle(m)
	m = p.NewMessage()
	return m.N
}

// deferredRecycle runs the Recycle at function exit; uses before the
// return are fine and the analyzer treats the deferred call as such.
func deferredRecycle(p *Pool) int {
	m := p.NewMessage()
	defer p.Recycle(m)
	return m.N
}

// retainThenRecycle is the legitimate ordering.
func retainThenRecycle(p *Pool) {
	m := p.NewMessage()
	m.Retain()
	p.Recycle(m)
}
