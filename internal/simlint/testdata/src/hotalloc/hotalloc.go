// Package hotalloc is a simlint fixture: allocation cases inside
// //simlint:hotpath functions.
package hotalloc

type node struct{ next *node }

type ev struct{ a, b int }

//simlint:hotpath
func hotPointerLit() *node {
	return &node{} // want `&node{...} allocates on the hot path`
}

//simlint:hotpath
func hotMany(xs []int) int {
	ys := []int{1, 2}                  // want `slice literal allocates its backing array on the hot path`
	m := map[int]int{1: 1}             // want `map literal allocates on the hot path`
	f := func() int { return len(xs) } // want `closure allocates its context on the hot path`
	xs = append(xs, 1)                 // want `append may grow on the hot path`
	c := make(map[string]int)          // want `make(map) allocates on the hot path`
	return ys[0] + m[1] + f() + xs[0] + len(c)
}

//simlint:hotpath
func hotChan() int {
	ch := make(chan int, 1) // want `make(chan) allocates on the hot path`
	ch <- 1
	return <-ch
}

// hotValue builds only stack values: a struct literal, an array
// literal, and a preallocated slice. None are flagged.
//
//simlint:hotpath
func hotValue() int {
	e := ev{a: 1, b: 2}
	pair := [2]int{3, 4}
	buf := make([]byte, 4)
	return e.a + pair[0] + len(buf)
}

// coldAlloc is not annotated; it may allocate freely.
func coldAlloc() *node {
	return &node{next: &node{}}
}
