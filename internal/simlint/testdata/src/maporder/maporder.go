// Package maporder is a simlint fixture: positive and negative cases
// for the map-iteration-order analyzer.
package maporder

import "sort"

// ordered uses the collect-then-sort idiom; the range is not flagged.
func ordered(m map[int]string) []string {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	out := make([]string, 0, len(m))
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}

// filtered collects under a condition; still the idiom.
func filtered(m map[string]int) []string {
	var names []string
	for k, v := range m {
		if v > 0 {
			names = append(names, k)
		}
	}
	sort.Strings(names)
	return names
}

// unordered lets map order reach the output.
func unordered(m map[int]string) string {
	s := ""
	for _, v := range m { // want `range over map has nondeterministic order`
		s += v
	}
	return s
}

// collectNoSort accumulates but never sorts; the order leaks.
func collectNoSort(m map[string]int) []string {
	var names []string
	for k := range m { // want `range over map has nondeterministic order`
		names = append(names, k)
	}
	return names
}

// commutative is order-independent and annotated as such.
func commutative(m map[int]int) int {
	sum := 0
	//simlint:commutative
	for _, v := range m {
		sum += v
	}
	return sum
}

// sliceRange is not a map range at all.
func sliceRange(xs []int) int {
	total := 0
	for _, v := range xs {
		total += v
	}
	return total
}
