// Package goroutine is a simlint fixture: concurrency-primitive cases
// for the one-runnable-goroutine analyzer.
package goroutine

import (
	"sync"
	"sync/atomic"
)

func spawn(f func()) {
	go f() // want `go statement outside the sim kernel`
}

var pipe chan int // want `channel type outside the sim kernel`

func mkpipe() {
	pipe = make(chan int, 1) // want `channel type outside the sim kernel`
}

func locked(mu *sync.Mutex) { // want `sync.Mutex introduces a sync primitive`
	mu.Lock() // want `sync.Lock introduces a sync primitive`
}

func count(c *int64) int64 {
	return atomic.AddInt64(c, 1) // want `atomic.AddInt64 introduces a sync primitive`
}

func wait() {
	select {} // want `select statement outside the sim kernel`
}

// arithmetic uses no concurrency; nothing to flag.
func arithmetic(a, b int) int {
	return a + b
}
