// decl.go exercises the declaration-scoped //simlint:concurrent
// carve-out: an annotated function or type admits its own primitives
// while the rest of the file stays under the one-runnable-goroutine
// rule, and an annotated declaration guarding no primitive surfaces as
// an unused annotation.
package goroutine

import "sync/atomic"

//simlint:concurrent -- fixture: one admitted barrier-style function
func declAdmitted(c *atomic.Int64) int64 {
	return c.Add(1)
}

//simlint:concurrent -- fixture: an admitted type holding a wake channel
type declAdmittedType struct {
	wake chan struct{}
}

//simlint:concurrent -- fixture: stale decl carve-out guarding nothing // want `unused concurrent carve-out`
func declStale(a, b int) int {
	return a + b
}

func declUnadmitted(f func()) {
	go f() // want `go statement outside the sim kernel`
}
