//simlint:concurrent -- fixture: stale carve-out guarding nothing // want `unused concurrent carve-out`

// stale.go carries the carve-out but no concurrency primitive: the
// annotation is unused and must surface as a finding so carve-outs
// cannot quietly outlive the code that justified them.
package goroutine

func plainArithmetic(a, b int) int {
	return a * b
}
