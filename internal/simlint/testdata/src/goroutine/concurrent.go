//simlint:concurrent -- fixture: a scheduler-style file admitted to the concurrency carve-out

// concurrent.go carries the file-wide //simlint:concurrent annotation:
// the same primitives that fail goroutine.go produce no findings here,
// and the in-use annotation is counted in the result summary.
package goroutine

import "sync"

func admittedSpawn(f func()) {
	go f()
}

var admittedPipe chan int

func admittedLocked(mu *sync.Mutex) {
	mu.Lock()
}

func admittedWait() {
	select {}
}
