package simlint

import (
	"strings"
)

// deterministicPkgs are the packages on the simulated machine's
// deterministic path: any divergence here — iteration order, wall-clock
// leakage, hidden concurrency — shows up as sim-ms drift or broken
// bit-identity in the golden/differential layer. maporder, wallclock,
// freelist, and goroutine all scope to this set.
var deterministicPkgs = map[string]bool{
	"hpfdsm/internal/sim":        true,
	"hpfdsm/internal/protocol":   true,
	"hpfdsm/internal/network":    true,
	"hpfdsm/internal/tempest":    true,
	"hpfdsm/internal/runtime":    true,
	"hpfdsm/internal/memory":     true,
	"hpfdsm/internal/trace":      true,
	"hpfdsm/internal/checkpoint": true,
	"hpfdsm/internal/stats":      true,
}

// wallclockExempt documents the layers allowed to read real time and
// the process environment: host-side profiling and the CLI drivers.
// They are outside the deterministic set, so the exemption is
// structural; the list exists so the policy is explicit and so a future
// re-scoping of wallclock to the whole module keeps the carve-out.
var wallclockExempt = []string{
	"hpfdsm/internal/profiling", // pprof/trace file plumbing wraps os and runtime/pprof
	"hpfdsm/internal/bench",     // wall-clock benchmarking is its whole point
	"hpfdsm/cmd/",               // CLI layer: flags, env, elapsed-time reporting
	"hpfdsm/examples/",
}

// Code allowed to spawn goroutines, build channels, or touch sync
// primitives inside the deterministic set carries a
// //simlint:concurrent annotation with a mandatory reason — file-wide
// before the package clause, or on the one declaration that needs it
// (see the goroutine analyzer). There is no central whitelist: the
// carve-out lives next to the code it admits, and an annotation left
// on a scope with no concurrency primitive becomes an
// unused-annotation finding.
func isDeterministic(pkgPath string) bool { return deterministicPkgs[pkgPath] }

func isWallclockExempt(pkgPath string) bool {
	for _, p := range wallclockExempt {
		if pkgPath == p || strings.HasPrefix(pkgPath, p) {
			return true
		}
	}
	return false
}

// Analyzers returns the registered suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		MapOrder,
		Wallclock,
		Freelist,
		HotAlloc,
		Goroutine,
	}
}

// AnalyzerNames returns the set of valid analyzer names (directive
// validation).
func AnalyzerNames() map[string]bool {
	names := map[string]bool{}
	for _, a := range Analyzers() {
		names[a.Name] = true
	}
	return names
}
