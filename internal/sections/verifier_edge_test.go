package sections

import (
	"testing"
)

// Edge cases the static verifier leans on: the contract checker
// recomputes shmem_limits shrinks and the race detector intersects
// strided ownership lattices, so the corner behavior of IntersectS /
// BlockAlign / RunsToBlocks must be exact.

// TestIntersectSEmptyAndDisjoint: empty inputs and disjoint windows
// both produce the canonical empty range.
func TestIntersectSEmptyAndDisjoint(t *testing.T) {
	empty := SDim{Lo: 1, Hi: 0, Step: 1}
	cases := []struct{ a, b SDim }{
		{empty, NewSDim(1, 10, 1)},
		{NewSDim(1, 10, 1), empty},
		{empty, empty},
		{NewSDim(1, 5, 1), NewSDim(6, 10, 1)},   // disjoint windows
		{NewSDim(1, 9, 4), NewSDim(10, 20, 4)},  // windows touch, members don't
		{NewSDim(0, 100, 2), NewSDim(1, 99, 2)}, // even vs odd lattice
	}
	for _, c := range cases {
		got := IntersectS(c.a, c.b)
		if !got.Empty() {
			t.Errorf("IntersectS(%v, %v) = %v, want empty", c.a, c.b, got)
		}
	}
}

// TestIntersectSNonCoprime: CRT over non-coprime strides. With
// gcd(4,6)=2 the congruences are solvable only when the origins agree
// mod 2; when they do, the result steps by lcm=12.
func TestIntersectSNonCoprime(t *testing.T) {
	a := NewSDim(2, 100, 4)  // 2, 6, 10, ...   ≡ 2 (mod 4)
	b := NewSDim(6, 100, 6)  // 6, 12, 18, ...  ≡ 0 (mod 6)
	got := IntersectS(a, b)  // solutions: 6, 18, 30, ... step 12
	want := NewSDim(6, 90, 12)
	if got != want {
		t.Fatalf("IntersectS(%v, %v) = %v, want %v", a, b, got, want)
	}
	// Exhaustive cross-check.
	for i := 0; i <= 100; i++ {
		if got.Contains(i) != (a.Contains(i) && b.Contains(i)) {
			t.Fatalf("membership of %d disagrees with brute force", i)
		}
	}

	// Origins differing mod gcd: unsolvable, must be empty.
	c := NewSDim(3, 100, 4) // ≡ 3 (mod 4), odd
	if got := IntersectS(c, b); !got.Empty() {
		t.Fatalf("IntersectS(%v, %v) = %v, want empty (parity mismatch)", c, b, got)
	}
}

// TestIntersectSSingleton: one-member ranges intersect to that member
// or to nothing.
func TestIntersectSSingleton(t *testing.T) {
	p := NewSDim(7, 7, 1)
	lat := NewSDim(1, 100, 3) // 1, 4, 7, ...
	if got := IntersectS(p, lat); got.Count() != 1 || !got.Contains(7) {
		t.Fatalf("point-on-lattice intersection = %v, want {7}", got)
	}
	off := NewSDim(8, 8, 1)
	if got := IntersectS(off, lat); !got.Empty() {
		t.Fatalf("point-off-lattice intersection = %v, want empty", got)
	}
}

// TestNewSDimRejectsNonPositiveStep: negative-step (reversed) index
// triplets are normalized by the frontend before reaching sections;
// the algebra itself refuses them loudly rather than computing with a
// descending lattice.
func TestNewSDimRejectsNonPositiveStep(t *testing.T) {
	for _, step := range []int{0, -1, -5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewSDim(1, 10, %d) did not panic", step)
				}
			}()
			NewSDim(1, 10, step)
		}()
	}
}

// TestSubtractSCoverAndSplit: subtracting a superset yields nothing;
// subtracting an interior window splits into head and tail.
func TestSubtractSCoverAndSplit(t *testing.T) {
	a := NewSDim(10, 50, 5)
	if got := SubtractS(a, NewSDim(0, 100, 5)); len(got) != 0 {
		t.Fatalf("a \\ superset = %v, want empty", got)
	}
	parts := SubtractS(a, NewSDim(25, 35, 5))
	want := map[int]bool{10: true, 15: true, 20: true, 40: true, 45: true, 50: true}
	got := map[int]bool{}
	for _, d := range parts {
		d.Each(func(i int) { got[i] = true })
	}
	if len(got) != len(want) {
		t.Fatalf("a \\ interior = %v members, want %v", got, want)
	}
	for i := range want {
		if !got[i] {
			t.Fatalf("member %d missing from %v", i, parts)
		}
	}
}

// TestBlockAlignMidBlock: runs ending mid-block are truncated to the
// last boundary; runs contained within one block vanish entirely (the
// paper's shmem_limits leaves those elements to the default protocol).
func TestBlockAlignMidBlock(t *testing.T) {
	const bs = 128
	cases := []struct {
		name string
		in   Run
		want []Run
	}{
		{"aligned", Run{Addr: 256, Bytes: 384}, []Run{{Addr: 256, Bytes: 384}}},
		{"head unaligned", Run{Addr: 200, Bytes: 440}, []Run{{Addr: 256, Bytes: 384}}},
		{"tail mid-block", Run{Addr: 256, Bytes: 400}, []Run{{Addr: 256, Bytes: 384}}},
		{"both ends mid-block", Run{Addr: 130, Bytes: 500}, []Run{{Addr: 256, Bytes: 256}}},
		{"sub-block vanishes", Run{Addr: 130, Bytes: 60}, nil},
		{"spans boundary but under a block", Run{Addr: 100, Bytes: 100}, nil},
		{"exactly one block after shrink", Run{Addr: 127, Bytes: 130}, []Run{{Addr: 128, Bytes: 128}}},
	}
	for _, c := range cases {
		got := BlockAlign([]Run{c.in}, bs)
		if len(got) != len(c.want) {
			t.Errorf("%s: BlockAlign(%+v) = %v, want %v", c.name, c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("%s: BlockAlign(%+v) = %v, want %v", c.name, c.in, got, c.want)
			}
		}
	}
}

// TestRunsToBlocksPanicsUnaligned: feeding unshrunk runs to the block
// converter is a programming error, not a silent truncation.
func TestRunsToBlocksPanicsUnaligned(t *testing.T) {
	bad := []Run{
		{Addr: 100, Bytes: 128}, // unaligned start
		{Addr: 128, Bytes: 100}, // unaligned length
	}
	for _, r := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("RunsToBlocks(%+v) did not panic", r)
				}
			}()
			RunsToBlocks([]Run{r}, 128)
		}()
	}
}

// FuzzBlockAlign: for arbitrary runs and block sizes, the shrink must
// return block-aligned runs that are subsets of their inputs, and the
// result must always be accepted by RunsToBlocks. This is the
// shmem_limits safety property the static verifier's alignment rule
// (contract/shmem-limits) re-checks per schedule.
func FuzzBlockAlign(f *testing.F) {
	f.Add(200, 440, 128)
	f.Add(0, 1024, 128)
	f.Add(130, 60, 128)
	f.Add(5, 5, 32)
	f.Add(1023, 4097, 4096)
	f.Fuzz(func(t *testing.T, addr, bytes, bs int) {
		if bs < 1 || bs > 1<<16 || addr < 0 || addr > 1<<30 || bytes < 0 || bytes > 1<<24 {
			t.Skip()
		}
		in := Run{Addr: addr, Bytes: bytes}
		out := BlockAlign([]Run{in}, bs)
		if len(out) > 1 {
			t.Fatalf("one input run produced %d output runs", len(out))
		}
		for _, r := range out {
			if r.Addr%bs != 0 || r.Bytes%bs != 0 {
				t.Fatalf("BlockAlign(%+v, %d) = %+v not block aligned", in, bs, r)
			}
			if r.Bytes <= 0 {
				t.Fatalf("BlockAlign(%+v, %d) = %+v empty run emitted", in, bs, r)
			}
			if r.Addr < in.Addr || r.End() > in.End() {
				t.Fatalf("BlockAlign(%+v, %d) = %+v escapes the input run", in, bs, r)
			}
		}
		// The shrink drops less than one block off each end.
		if len(out) == 0 && bytes >= 2*bs {
			t.Fatalf("BlockAlign(%+v, %d) dropped a run holding a full block", in, bs)
		}
		blocks := RunsToBlocks(out, bs) // must not panic
		total := 0
		for _, b := range blocks {
			total += b[1]
		}
		if want := 0; len(out) == 1 {
			want = out[0].Bytes / bs
			if total != want {
				t.Fatalf("RunsToBlocks count %d, want %d", total, want)
			}
		} else if total != want {
			t.Fatalf("RunsToBlocks of empty shrink returned %d blocks", total)
		}
	})
}
