package sections

import "fmt"

// Layout describes a distributed array's placement in the shared
// segment: base byte address, per-dimension extents (indices run
// 1..extent, Fortran-style), element size, and column-major order
// (the first dimension varies fastest).
type Layout struct {
	Base     int
	Extents  []int
	ElemSize int
}

// Rank returns the number of dimensions.
func (l Layout) Rank() int { return len(l.Extents) }

// SizeBytes returns the array's total size in bytes.
func (l Layout) SizeBytes() int {
	n := l.ElemSize
	for _, e := range l.Extents {
		n *= e
	}
	return n
}

// Addr returns the byte address of element idx (1-based indices).
func (l Layout) Addr(idx ...int) int {
	if len(idx) != len(l.Extents) {
		panic(fmt.Sprintf("sections: Addr rank mismatch: %d vs %d", len(idx), len(l.Extents)))
	}
	off := 0
	stride := 1
	for d, i := range idx {
		if i < 1 || i > l.Extents[d] {
			panic(fmt.Sprintf("sections: index %d out of range 1..%d in dim %d", i, l.Extents[d], d))
		}
		off += (i - 1) * stride
		stride *= l.Extents[d]
	}
	return l.Base + off*l.ElemSize
}

// Whole returns the section covering the entire array.
func (l Layout) Whole() Section {
	s := Section{Dims: make([]Dim, len(l.Extents))}
	for d, e := range l.Extents {
		s.Dims[d] = Dim{1, e}
	}
	return s
}

// Run is a contiguous byte range [Addr, Addr+Bytes).
type Run struct {
	Addr  int
	Bytes int
}

// End returns the exclusive end address.
func (r Run) End() int { return r.Addr + r.Bytes }

// Runs linearizes a section into contiguous address runs in ascending
// address order. Leading dimensions covered in full merge into longer
// runs (a whole-columns section of a 2-D array is a single run).
func (l Layout) Runs(s Section) []Run {
	if len(s.Dims) != len(l.Extents) {
		panic("sections: Runs rank mismatch")
	}
	if s.Empty() {
		return nil
	}
	// Longest contiguous prefix: full leading dims, then one possibly
	// partial dim terminates the run.
	elems := 1
	k := 0
	for k < len(l.Extents) && s.Dims[k].Lo == 1 && s.Dims[k].Hi == l.Extents[k] {
		elems *= l.Extents[k]
		k++
	}
	if k < len(l.Extents) {
		elems *= s.Dims[k].Count()
		k++
	}
	runBytes := elems * l.ElemSize

	// Iterate the outer dimensions k..rank-1.
	outer := s.Dims[k:]
	idx := make([]int, len(outer))
	for d := range outer {
		idx[d] = outer[d].Lo
	}
	// Address of the run start for the current outer index combination.
	start := func() int {
		full := make([]int, len(l.Extents))
		for d := 0; d < k; d++ {
			full[d] = s.Dims[d].Lo
		}
		copy(full[k:], idx)
		return l.Addr(full...)
	}
	var runs []Run
	for {
		runs = append(runs, Run{Addr: start(), Bytes: runBytes})
		// Advance outer indices (odometer).
		d := 0
		for ; d < len(outer); d++ {
			idx[d]++
			if idx[d] <= outer[d].Hi {
				break
			}
			idx[d] = outer[d].Lo
		}
		if d == len(outer) {
			break
		}
	}
	// Coalesce adjacent runs (outer iteration produces ascending,
	// possibly abutting runs).
	return CoalesceRuns(runs)
}

// RunsOfSet linearizes a set and coalesces the result.
func (l Layout) RunsOfSet(ss Set) []Run {
	var all []Run
	for _, s := range ss {
		all = append(all, l.Runs(s)...)
	}
	return CoalesceRuns(all)
}

// CoalesceRuns sorts runs by address and merges abutting or overlapping
// ones.
func CoalesceRuns(runs []Run) []Run {
	if len(runs) <= 1 {
		return runs
	}
	sorted := make([]Run, len(runs))
	copy(sorted, runs)
	for i := 1; i < len(sorted); i++ { // insertion sort: inputs are mostly ordered
		for j := i; j > 0 && sorted[j].Addr < sorted[j-1].Addr; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	out := sorted[:1]
	for _, r := range sorted[1:] {
		last := &out[len(out)-1]
		if r.Addr <= last.End() {
			if r.End() > last.End() {
				last.Bytes = r.End() - last.Addr
			}
			continue
		}
		out = append(out, r)
	}
	return out
}

// BlockAlign shrinks each run to whole coherence blocks — the paper's
// shmem_limits subsetting: the first block boundary at or after the
// start, the last boundary at or before the end. Runs smaller than one
// block vanish; their elements stay with the default protocol.
func BlockAlign(runs []Run, blockSize int) []Run {
	var out []Run
	for _, r := range runs {
		lo := (r.Addr + blockSize - 1) / blockSize * blockSize
		hi := r.End() / blockSize * blockSize
		if hi > lo {
			out = append(out, Run{Addr: lo, Bytes: hi - lo})
		}
	}
	return out
}

// RunsToBlocks converts block-aligned runs into (start block, count)
// pairs.
func RunsToBlocks(runs []Run, blockSize int) [][2]int {
	var out [][2]int
	for _, r := range runs {
		if r.Addr%blockSize != 0 || r.Bytes%blockSize != 0 {
			panic(fmt.Sprintf("sections: run %+v is not block aligned", r))
		}
		out = append(out, [2]int{r.Addr / blockSize, r.Bytes / blockSize})
	}
	return out
}
