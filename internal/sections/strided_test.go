package sections

import (
	"math/rand"
	"testing"
)

func TestSDimBasics(t *testing.T) {
	d := NewSDim(3, 20, 4) // 3,7,11,15,19
	if d.Count() != 5 || d.Hi != 19 {
		t.Fatalf("d = %v count %d", d, d.Count())
	}
	if !d.Contains(11) || d.Contains(12) || d.Contains(23) {
		t.Fatal("Contains wrong")
	}
	var got []int
	d.Each(func(i int) { got = append(got, i) })
	if len(got) != 5 || got[0] != 3 || got[4] != 19 {
		t.Fatalf("Each = %v", got)
	}
	if NewSDim(5, 4, 2).Count() != 0 {
		t.Fatal("empty count")
	}
	if NewSDim(1, 9, 1).String() != "1:9" || NewSDim(1, 9, 2).String() != "1:9:2" {
		t.Fatal("strings")
	}
}

func TestIntersectSKnown(t *testing.T) {
	// Evens ∩ multiples of 3 in [0,30] = multiples of 6.
	a := NewSDim(0, 30, 2)
	b := NewSDim(0, 30, 3)
	got := IntersectS(a, b)
	if got.Lo != 0 || got.Step != 6 || got.Hi != 30 {
		t.Fatalf("got %v", got)
	}
	// Cyclic owners: proc 1 of 4 owns {2,6,10,...}; loop range 5..12
	// with unit stride -> {6, 10}.
	own := NewSDim(2, 16, 4)
	rng := NewSDim(5, 12, 1)
	got = IntersectS(own, rng)
	if got.Lo != 6 || got.Step != 4 || got.Hi != 10 {
		t.Fatalf("cyclic ∩ range = %v", got)
	}
	// Incompatible congruences: odds ∩ evens = empty.
	if !IntersectS(NewSDim(1, 99, 2), NewSDim(0, 98, 2)).Empty() {
		t.Fatal("odds ∩ evens not empty")
	}
}

func TestPropertyIntersectS(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 500; trial++ {
		a := NewSDim(rng.Intn(20), rng.Intn(80), 1+rng.Intn(8))
		b := NewSDim(rng.Intn(20), rng.Intn(80), 1+rng.Intn(8))
		got := IntersectS(a, b)
		for i := 0; i <= 100; i++ {
			want := a.Contains(i) && b.Contains(i)
			if got.Contains(i) != want {
				t.Fatalf("trial %d: %v ∩ %v = %v wrong at %d (want member=%v)", trial, a, b, got, i, want)
			}
		}
	}
}

func TestPropertySubtractS(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 500; trial++ {
		a := NewSDim(rng.Intn(20), rng.Intn(90), 1+rng.Intn(6))
		b := NewSDim(rng.Intn(20), rng.Intn(90), 1+rng.Intn(6))
		parts := SubtractS(a, b)
		for i := 0; i <= 110; i++ {
			want := a.Contains(i) && !b.Contains(i)
			got := false
			hits := 0
			for _, p := range parts {
				if p.Contains(i) {
					got = true
					hits++
				}
			}
			if got != want {
				t.Fatalf("trial %d: %v \\ %v = %v wrong at %d (want %v)", trial, a, b, parts, i, want)
			}
			if hits > 1 {
				t.Fatalf("trial %d: %v \\ %v = %v overlaps at %d", trial, a, b, parts, i)
			}
		}
	}
}

func TestSubtractSDisjointFast(t *testing.T) {
	a := NewSDim(1, 9, 2)
	b := NewSDim(100, 200, 3)
	parts := SubtractS(a, b)
	if len(parts) != 1 || parts[0] != a {
		t.Fatalf("disjoint subtract = %v", parts)
	}
}
