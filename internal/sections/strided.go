package sections

import "fmt"

// SDim is a strided index range: {Lo, Lo+Step, ..., <= Hi}. It
// represents one dimension of a cyclic-distribution ownership set
// exactly (owner p of a CYCLIC dimension holds {p+1, p+1+np, ...}).
type SDim struct {
	Lo, Hi, Step int
}

// NewSDim normalizes a strided range: Hi is clamped to the last actual
// member; an empty range has Lo > Hi.
func NewSDim(lo, hi, step int) SDim {
	if step < 1 {
		panic(fmt.Sprintf("sections: bad stride %d", step))
	}
	if hi >= lo {
		hi = lo + (hi-lo)/step*step
	}
	return SDim{Lo: lo, Hi: hi, Step: step}
}

// Empty reports whether the range has no members.
func (d SDim) Empty() bool { return d.Lo > d.Hi }

// Count returns the number of members.
func (d SDim) Count() int {
	if d.Empty() {
		return 0
	}
	return (d.Hi-d.Lo)/d.Step + 1
}

// Contains reports membership.
func (d SDim) Contains(i int) bool {
	return i >= d.Lo && i <= d.Hi && (i-d.Lo)%d.Step == 0
}

// Each calls f for every member in ascending order.
func (d SDim) Each(f func(int)) {
	for i := d.Lo; i <= d.Hi; i += d.Step {
		f(i)
	}
}

func (d SDim) String() string {
	if d.Step == 1 {
		return fmt.Sprintf("%d:%d", d.Lo, d.Hi)
	}
	return fmt.Sprintf("%d:%d:%d", d.Lo, d.Hi, d.Step)
}

// gcd returns the greatest common divisor, and the Bézout coefficient
// x with a*x ≡ g (mod b) (extended Euclid).
func egcd(a, b int) (g, x int) {
	x0, x1 := 1, 0
	for b != 0 {
		q := a / b
		a, b = b, a-q*b
		x0, x1 = x1, x0-q*x1
	}
	return a, x0
}

// IntersectS intersects two strided ranges exactly: the result's step
// is lcm(a.Step, b.Step) and its origin solves the pair of congruences
// (Chinese remainder over non-coprime moduli).
func IntersectS(a, b SDim) SDim {
	empty := SDim{Lo: 1, Hi: 0, Step: 1}
	if a.Empty() || b.Empty() {
		return empty
	}
	lo := a.Lo
	if b.Lo > lo {
		lo = b.Lo
	}
	hi := a.Hi
	if b.Hi < hi {
		hi = b.Hi
	}
	if lo > hi {
		return empty
	}
	// Solve x ≡ a.Lo (mod a.Step), x ≡ b.Lo (mod b.Step).
	g, p := egcd(a.Step, b.Step)
	diff := b.Lo - a.Lo
	if diff%g != 0 {
		return empty
	}
	lcm := a.Step / g * b.Step
	// x = a.Lo + a.Step * p * (diff/g)  (mod lcm)
	x := a.Lo + a.Step*mod(p*(diff/g), b.Step/g)
	x = a.Lo + mod(x-a.Lo, lcm)
	// First member >= lo on the lattice.
	if x < lo {
		x += (lo - x + lcm - 1) / lcm * lcm
	}
	if x > hi {
		return empty
	}
	return NewSDim(x, hi, lcm)
}

func mod(a, m int) int {
	if m < 0 {
		m = -m
	}
	a %= m
	if a < 0 {
		a += m
	}
	return a
}

// SubtractS returns a \ b as a list of disjoint strided ranges. The
// result enumerates a's residue classes modulo lcm(a.Step, b.Step)
// that miss b, so it is exact (and compact when the strides interact
// simply).
func SubtractS(a, b SDim) []SDim {
	if a.Empty() {
		return nil
	}
	inter := IntersectS(a, b)
	if inter.Empty() {
		return []SDim{a}
	}
	// Walk a's members grouped by residue class modulo inter.Step.
	// Classes matching inter's origin are removed (within inter's
	// bounds); partial overlaps split into head/tail.
	var out []SDim
	classes := inter.Step / a.Step
	for c := 0; c < classes; c++ {
		start := a.Lo + c*a.Step
		if start > a.Hi {
			continue
		}
		cls := NewSDim(start, a.Hi, inter.Step)
		if !inter.Contains(start) && !IntersectS(cls, inter).Empty() {
			// This class still hits inter somewhere (possible when
			// inter's origin is in a later class member); handle by
			// splitting at the hit.
			hit := IntersectS(cls, inter)
			if hit.Lo > cls.Lo {
				out = append(out, NewSDim(cls.Lo, hit.Lo-inter.Step, inter.Step))
			}
			if hit.Hi < cls.Hi {
				out = append(out, NewSDim(hit.Hi+inter.Step, cls.Hi, inter.Step))
			}
			continue
		}
		if !inter.Contains(start) {
			out = append(out, cls)
			continue
		}
		// Class fully on inter's lattice: keep the parts outside
		// inter's [Lo, Hi] window.
		if cls.Lo < inter.Lo {
			out = append(out, NewSDim(cls.Lo, inter.Lo-inter.Step, inter.Step))
		}
		if cls.Hi > inter.Hi {
			out = append(out, NewSDim(inter.Hi+inter.Step, cls.Hi, inter.Step))
		}
	}
	// Drop empties.
	var clean []SDim
	for _, d := range out {
		if !d.Empty() {
			clean = append(clean, d)
		}
	}
	return clean
}
