package sections

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDimBasics(t *testing.T) {
	if (Dim{3, 2}).Count() != 0 || !(Dim{3, 2}).Empty() {
		t.Fatal("empty dim wrong")
	}
	if (Dim{2, 5}).Count() != 4 {
		t.Fatal("count wrong")
	}
}

func TestRectAndContains(t *testing.T) {
	s := Rect(1, 10, 5, 8)
	if s.Rank() != 2 || s.Count() != 40 {
		t.Fatalf("rect = %v count=%d", s, s.Count())
	}
	if !s.Contains(1, 5) || !s.Contains(10, 8) || s.Contains(0, 5) || s.Contains(1, 9) {
		t.Fatal("Contains wrong")
	}
}

func TestIntersect(t *testing.T) {
	a := Rect(1, 10, 1, 10)
	b := Rect(5, 15, 8, 20)
	got := Intersect(a, b)
	if !got.Equal(Rect(5, 10, 8, 10)) {
		t.Fatalf("intersect = %v", got)
	}
	if !Intersect(Rect(1, 3), Rect(5, 9)).Empty() {
		t.Fatal("disjoint intersect not empty")
	}
}

func TestSubtractFullyCovered(t *testing.T) {
	if got := Subtract(Rect(2, 5), Rect(1, 10)); len(got) != 0 {
		t.Fatalf("covered subtract = %v", got)
	}
}

func TestSubtractDisjoint(t *testing.T) {
	got := Subtract(Rect(1, 3, 1, 3), Rect(10, 20, 10, 20))
	if len(got) != 1 || !got[0].Equal(Rect(1, 3, 1, 3)) {
		t.Fatalf("disjoint subtract = %v", got)
	}
}

func TestSubtractMiddle1D(t *testing.T) {
	got := Subtract(Rect(1, 10), Rect(4, 6)).Compact()
	if len(got) != 2 || !got[0].Equal(Rect(1, 3)) || !got[1].Equal(Rect(7, 10)) {
		t.Fatalf("middle subtract = %v", got)
	}
}

func TestSubtractCorner2D(t *testing.T) {
	// A 4x4 square minus its 2x2 corner leaves 12 cells in 2 pieces.
	got := Subtract(Rect(1, 4, 1, 4), Rect(1, 2, 1, 2))
	if got.Count() != 12 {
		t.Fatalf("corner subtract count = %d (%v)", got.Count(), got)
	}
	// Pieces must be disjoint and exactly cover.
	seen := map[[2]int]bool{}
	for _, s := range got {
		for i := s.Dims[0].Lo; i <= s.Dims[0].Hi; i++ {
			for j := s.Dims[1].Lo; j <= s.Dims[1].Hi; j++ {
				if seen[[2]int{i, j}] {
					t.Fatalf("overlap at (%d,%d)", i, j)
				}
				seen[[2]int{i, j}] = true
			}
		}
	}
}

func randSection(r *rand.Rand, rank, max int) Section {
	s := Section{Dims: make([]Dim, rank)}
	for d := range s.Dims {
		lo := 1 + r.Intn(max)
		hi := lo + r.Intn(max-lo+1)
		s.Dims[d] = Dim{lo, hi}
	}
	return s
}

// TestPropertySubtract checks, by exhaustive membership comparison on
// random small sections, that Subtract implements set difference and
// its pieces are disjoint.
func TestPropertySubtract(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	const max = 9
	for trial := 0; trial < 300; trial++ {
		rank := 1 + r.Intn(3)
		a := randSection(r, rank, max)
		b := randSection(r, rank, max)
		diff := Subtract(a, b)

		count := 0
		idx := make([]int, rank)
		var walk func(d int)
		walk = func(d int) {
			if d == rank {
				inA := a.Contains(idx...)
				inB := b.Contains(idx...)
				inDiff := diff.Contains(idx...)
				if inDiff != (inA && !inB) {
					t.Fatalf("membership wrong at %v: a=%v b=%v diff=%v (A=%v B=%v D=%v)",
						idx, inA, inB, inDiff, a, b, diff)
				}
				if inDiff {
					count++
				}
				return
			}
			for i := 1; i <= max; i++ {
				idx[d] = i
				walk(d + 1)
			}
		}
		walk(0)
		if diff.Count() != count {
			t.Fatalf("Count=%d but %d members (disjointness violated): %v \\ %v = %v",
				diff.Count(), count, a, b, diff)
		}
	}
}

func TestPropertyCountIdentity(t *testing.T) {
	// |A \ B| = |A| - |A ∩ B|
	f := func(a0, a1, b0, b1 uint8) bool {
		a := Rect(int(a0%20)+1, int(a0%20)+1+int(a1%10), 1, 5)
		b := Rect(int(b0%20)+1, int(b0%20)+1+int(b1%10), 2, 4)
		return Subtract(a, b).Count() == a.Count()-Intersect(a, b).Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSetOps(t *testing.T) {
	a := Set{Rect(1, 10, 1, 10)}
	b := Set{Rect(1, 10, 3, 4), Rect(1, 10, 7, 8)}
	diff := a.SubtractSet(b)
	if diff.Count() != 60 {
		t.Fatalf("set subtract count = %d", diff.Count())
	}
	inter := a.IntersectSet(b)
	if inter.Count() != 40 {
		t.Fatalf("set intersect count = %d", inter.Count())
	}
}

func TestCompactDeterministic(t *testing.T) {
	s1 := Set{Rect(5, 9), Rect(1, 3), Rect(4, 4)}.Compact()
	s2 := Set{Rect(4, 4), Rect(1, 3), Rect(5, 9)}.Compact()
	if len(s1) != len(s2) {
		t.Fatal("compact lengths differ")
	}
	for i := range s1 {
		if !s1[i].Equal(s2[i]) {
			t.Fatalf("compact order differs: %v vs %v", s1, s2)
		}
	}
}

// --- Layout / linearization ------------------------------------------

func TestAddrColumnMajor(t *testing.T) {
	l := Layout{Base: 1000, Extents: []int{4, 3}, ElemSize: 8}
	if l.Addr(1, 1) != 1000 {
		t.Fatal("base addr wrong")
	}
	if l.Addr(2, 1) != 1008 { // first dim fastest
		t.Fatal("column-major order violated")
	}
	if l.Addr(1, 2) != 1000+4*8 {
		t.Fatal("second-dim stride wrong")
	}
	if l.SizeBytes() != 4*3*8 {
		t.Fatal("size wrong")
	}
}

func TestRunsWholeColumnsMerge(t *testing.T) {
	// Columns 2..3 of a 10x5 array are one contiguous run.
	l := Layout{Base: 0, Extents: []int{10, 5}, ElemSize: 8}
	runs := l.Runs(Rect(1, 10, 2, 3))
	if len(runs) != 1 {
		t.Fatalf("runs = %v, want single run", runs)
	}
	if runs[0].Addr != 10*8 || runs[0].Bytes != 2*10*8 {
		t.Fatalf("run = %+v", runs[0])
	}
}

func TestRunsPartialColumn(t *testing.T) {
	// Rows 2..4 of columns 1..3: one run per column.
	l := Layout{Base: 0, Extents: []int{10, 5}, ElemSize: 8}
	runs := l.Runs(Rect(2, 4, 1, 3))
	if len(runs) != 3 {
		t.Fatalf("runs = %v, want 3", runs)
	}
	for c := 0; c < 3; c++ {
		want := Run{Addr: (c*10 + 1) * 8, Bytes: 3 * 8}
		if runs[c] != want {
			t.Fatalf("run %d = %+v, want %+v", c, runs[c], want)
		}
	}
}

func TestRuns3DFullPrefix(t *testing.T) {
	// Full planes k=2..3 of a 4x5x6 array merge into one run.
	l := Layout{Base: 0, Extents: []int{4, 5, 6}, ElemSize: 8}
	runs := l.Runs(Rect(1, 4, 1, 5, 2, 3))
	if len(runs) != 1 || runs[0].Addr != 4*5*8 || runs[0].Bytes != 2*4*5*8 {
		t.Fatalf("runs = %v", runs)
	}
}

func TestRunsCoverEveryElementExactlyOnce(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		ext := []int{1 + r.Intn(6), 1 + r.Intn(6), 1 + r.Intn(4)}
		l := Layout{Base: 0, Extents: ext, ElemSize: 8}
		s := Section{Dims: []Dim{
			{1 + r.Intn(ext[0]), 0}, {1 + r.Intn(ext[1]), 0}, {1 + r.Intn(ext[2]), 0},
		}}
		for d := range s.Dims {
			s.Dims[d].Hi = s.Dims[d].Lo + r.Intn(ext[d]-s.Dims[d].Lo+1)
		}
		runs := l.Runs(s)
		covered := map[int]bool{}
		for _, run := range runs {
			for a := run.Addr; a < run.End(); a += 8 {
				if covered[a] {
					t.Fatalf("address %d covered twice by %v of %v", a, runs, s)
				}
				covered[a] = true
			}
		}
		if len(covered) != s.Count() {
			t.Fatalf("covered %d addrs, section has %d elements (%v)", len(covered), s.Count(), s)
		}
		for i := s.Dims[0].Lo; i <= s.Dims[0].Hi; i++ {
			for j := s.Dims[1].Lo; j <= s.Dims[1].Hi; j++ {
				for k := s.Dims[2].Lo; k <= s.Dims[2].Hi; k++ {
					if !covered[l.Addr(i, j, k)] {
						t.Fatalf("element (%d,%d,%d) not covered", i, j, k)
					}
				}
			}
		}
	}
}

func TestCoalesceRuns(t *testing.T) {
	got := CoalesceRuns([]Run{{0, 8}, {16, 8}, {8, 8}, {32, 8}})
	if len(got) != 2 || got[0] != (Run{0, 24}) || got[1] != (Run{32, 8}) {
		t.Fatalf("coalesce = %v", got)
	}
}

func TestBlockAlignShrinks(t *testing.T) {
	const bs = 128
	// Run from 100 to 612: aligned part is [128, 512).
	got := BlockAlign([]Run{{100, 512}}, bs)
	if len(got) != 1 || got[0] != (Run{128, 384}) {
		t.Fatalf("aligned = %v", got)
	}
	// Sub-block run vanishes.
	if got := BlockAlign([]Run{{100, 100}}, bs); len(got) != 0 {
		t.Fatalf("tiny run should vanish, got %v", got)
	}
	// Already-aligned run unchanged.
	if got := BlockAlign([]Run{{256, 256}}, bs); len(got) != 1 || got[0] != (Run{256, 256}) {
		t.Fatalf("aligned run changed: %v", got)
	}
}

func TestPropertyBlockAlignInside(t *testing.T) {
	f := func(start uint16, length uint16) bool {
		r := Run{int(start), int(length)}
		for _, a := range BlockAlign([]Run{r}, 128) {
			if a.Addr < r.Addr || a.End() > r.End() {
				return false
			}
			if a.Addr%128 != 0 || a.Bytes%128 != 0 || a.Bytes <= 0 {
				return false
			}
			// Maximality: no room for another whole block on either side.
			if a.Addr-r.Addr >= 128+(a.Addr%128) || r.End()-a.End() >= 128 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunsToBlocks(t *testing.T) {
	got := RunsToBlocks([]Run{{256, 384}, {1024, 128}}, 128)
	if len(got) != 2 || got[0] != [2]int{2, 3} || got[1] != [2]int{8, 1} {
		t.Fatalf("blocks = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unaligned run did not panic")
		}
	}()
	RunsToBlocks([]Run{{100, 128}}, 128)
}

func TestSetString(t *testing.T) {
	if (Set{}).String() != "{}" {
		t.Fatal("empty set string")
	}
	if s := (Set{Rect(1, 3, 2, 4)}).String(); s != "{(1:3,2:4)}" {
		t.Fatalf("set string = %q", s)
	}
}

func TestLayoutWholeAndRunsOfSet(t *testing.T) {
	l := Layout{Base: 0, Extents: []int{8, 4}, ElemSize: 8}
	w := l.Whole()
	if w.Count() != 32 || l.SizeBytes() != 256 {
		t.Fatalf("whole = %v size %d", w, l.SizeBytes())
	}
	// Two abutting column pairs coalesce into one run.
	set := Set{Rect(1, 8, 1, 2), Rect(1, 8, 3, 4)}
	runs := l.RunsOfSet(set)
	if len(runs) != 1 || runs[0] != (Run{0, 256}) {
		t.Fatalf("runs of set = %v", runs)
	}
}
