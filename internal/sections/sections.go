// Package sections implements the array-section algebra the compiler
// uses to compute access sets: rectangular sections with inclusive
// per-dimension bounds, set union/intersection/difference, linearization
// of sections to contiguous address runs under a column-major layout,
// and the block-alignment shrink at the heart of the paper's
// shmem_limits call (Section 4.2: given a candidate section, select the
// largest sub-section falling on whole coherence blocks and leave the
// boundary elements to the default protocol).
//
// The paper used the Omega library for this; it notes the sections it
// optimizes are representable as regular section descriptors, which is
// what this package provides.
package sections

import (
	"fmt"
	"sort"
	"strings"
)

// Dim is one dimension's inclusive index range [Lo, Hi].
type Dim struct {
	Lo, Hi int
}

// Empty reports whether the range contains no indices.
func (d Dim) Empty() bool { return d.Lo > d.Hi }

// Count returns the number of indices in the range.
func (d Dim) Count() int {
	if d.Empty() {
		return 0
	}
	return d.Hi - d.Lo + 1
}

// Section is a dense rectangular array section: the cross product of
// its dimensions' ranges. A section with no dimensions is a scalar
// (one point).
type Section struct {
	Dims []Dim
}

// Rect builds a section from (lo, hi) pairs.
func Rect(bounds ...int) Section {
	if len(bounds)%2 != 0 {
		panic("sections: Rect needs lo,hi pairs")
	}
	s := Section{}
	for i := 0; i < len(bounds); i += 2 {
		s.Dims = append(s.Dims, Dim{bounds[i], bounds[i+1]})
	}
	return s
}

// Rank returns the number of dimensions.
func (s Section) Rank() int { return len(s.Dims) }

// Empty reports whether the section contains no elements.
func (s Section) Empty() bool {
	for _, d := range s.Dims {
		if d.Empty() {
			return true
		}
	}
	return false
}

// Count returns the number of elements.
func (s Section) Count() int {
	n := 1
	for _, d := range s.Dims {
		n *= d.Count()
	}
	return n
}

// Contains reports whether the point is inside the section.
func (s Section) Contains(idx ...int) bool {
	if len(idx) != len(s.Dims) {
		panic(fmt.Sprintf("sections: Contains rank mismatch: %d vs %d", len(idx), len(s.Dims)))
	}
	for i, d := range s.Dims {
		if idx[i] < d.Lo || idx[i] > d.Hi {
			return false
		}
	}
	return true
}

// Equal reports structural equality (same rank, same bounds), treating
// all empty sections of equal rank as equal.
func (s Section) Equal(o Section) bool {
	if len(s.Dims) != len(o.Dims) {
		return false
	}
	if s.Empty() && o.Empty() {
		return true
	}
	for i := range s.Dims {
		if s.Dims[i] != o.Dims[i] {
			return false
		}
	}
	return true
}

func (s Section) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, d := range s.Dims {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d:%d", d.Lo, d.Hi)
	}
	b.WriteByte(')')
	return b.String()
}

// Intersect returns the intersection of two same-rank sections.
func Intersect(a, b Section) Section {
	if len(a.Dims) != len(b.Dims) {
		panic("sections: Intersect rank mismatch")
	}
	out := Section{Dims: make([]Dim, len(a.Dims))}
	for i := range a.Dims {
		lo := a.Dims[i].Lo
		if b.Dims[i].Lo > lo {
			lo = b.Dims[i].Lo
		}
		hi := a.Dims[i].Hi
		if b.Dims[i].Hi < hi {
			hi = b.Dims[i].Hi
		}
		out.Dims[i] = Dim{lo, hi}
	}
	return out
}

// Subtract returns a \ b as a set of disjoint sections (at most 2 per
// dimension), using axis splitting.
func Subtract(a, b Section) Set {
	if len(a.Dims) != len(b.Dims) {
		panic("sections: Subtract rank mismatch")
	}
	if a.Empty() {
		return nil
	}
	inter := Intersect(a, b)
	if inter.Empty() {
		return Set{a}
	}
	var out Set
	rem := a
	for i := range a.Dims {
		// Piece below b in dimension i.
		if rem.Dims[i].Lo < inter.Dims[i].Lo {
			p := cloneSection(rem)
			p.Dims[i] = Dim{rem.Dims[i].Lo, inter.Dims[i].Lo - 1}
			out = append(out, p)
		}
		// Piece above b in dimension i.
		if rem.Dims[i].Hi > inter.Dims[i].Hi {
			p := cloneSection(rem)
			p.Dims[i] = Dim{inter.Dims[i].Hi + 1, rem.Dims[i].Hi}
			out = append(out, p)
		}
		// Narrow the remainder to b's extent in this dimension and
		// continue splitting the next dimension.
		rem = cloneSection(rem)
		rem.Dims[i] = inter.Dims[i]
	}
	return out
}

func cloneSection(s Section) Section {
	d := make([]Dim, len(s.Dims))
	copy(d, s.Dims)
	return Section{Dims: d}
}

// Set is a union of disjoint same-rank sections.
type Set []Section

// Count returns the total number of elements.
func (ss Set) Count() int {
	n := 0
	for _, s := range ss {
		n += s.Count()
	}
	return n
}

// Empty reports whether the set contains no elements.
func (ss Set) Empty() bool { return ss.Count() == 0 }

// Contains reports whether any member contains the point.
func (ss Set) Contains(idx ...int) bool {
	for _, s := range ss {
		if s.Contains(idx...) {
			return true
		}
	}
	return false
}

// Compact drops empty members and orders the set deterministically.
func (ss Set) Compact() Set {
	var out Set
	for _, s := range ss {
		if !s.Empty() {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		for k := range a.Dims {
			if a.Dims[k].Lo != b.Dims[k].Lo {
				return a.Dims[k].Lo < b.Dims[k].Lo
			}
			if a.Dims[k].Hi != b.Dims[k].Hi {
				return a.Dims[k].Hi < b.Dims[k].Hi
			}
		}
		return false
	})
	return out
}

// SubtractSet returns ss \ b.
func (ss Set) SubtractSet(b Set) Set {
	cur := ss
	for _, s := range b {
		var next Set
		for _, a := range cur {
			next = append(next, Subtract(a, s)...)
		}
		cur = next
	}
	return cur.Compact()
}

// IntersectSet returns the elementwise intersection of two sets.
func (ss Set) IntersectSet(b Set) Set {
	var out Set
	for _, x := range ss {
		for _, y := range b {
			if i := Intersect(x, y); !i.Empty() {
				out = append(out, i)
			}
		}
	}
	return out.Compact()
}

func (ss Set) String() string {
	if len(ss) == 0 {
		return "{}"
	}
	parts := make([]string, len(ss))
	for i, s := range ss {
		parts[i] = s.String()
	}
	return "{" + strings.Join(parts, " ∪ ") + "}"
}
