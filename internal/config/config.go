// Package config holds the simulated machine parameter sets.
//
// The default configuration reproduces Table 1 of Chandra & Larus:
// an 8-node cluster of dual-processor 66 MHz HyperSPARC SparcStation-20s
// on a Myrinet with a 40 µs minimum round-trip for short messages and
// 20 MB/s of usable bandwidth, with fine-grain access control at 128-byte
// blocks. Handler occupancies are calibrated so that the default
// protocol's remote read miss of a 128-byte block takes ~93 µs in the
// dual-CPU configuration, matching the paper's measured value.
package config

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"hpfdsm/internal/sim"
)

// Consistency selects the default protocol's memory model.
type Consistency int

const (
	// ReleaseConsistent is the paper's protocol: writes do not wait for
	// ownership grants; pending transactions drain at synchronization
	// points.
	ReleaseConsistent Consistency = iota
	// SequentiallyConsistent makes every write fault block until
	// ownership is granted — the conservative design the paper's
	// protocol improves on (its footnote 1: "we try to hide some of the
	// write latency by implementing a release-consistent memory model").
	SequentiallyConsistent
)

func (c Consistency) String() string {
	if c == SequentiallyConsistent {
		return "sequential"
	}
	return "release"
}

// Topology selects how synchronization and invalidation traffic is
// routed between nodes.
type Topology int

const (
	// Flat is the paper's 8-node layout: node 0 masters every barrier
	// and reduction point-to-point, and a block's home unicasts one
	// invalidation per sharer. O(N) messages serialize through single
	// nodes, which is affordable at 8 nodes and ruinous at 1024.
	Flat Topology = iota
	// TreeTopo routes synchronization through a K-ary combining tree
	// (one up-pass, one down-pass, K = Radix) and fans invalidations
	// out through per-cluster relays with combined acks. Data words
	// stay bit-identical to Flat; only the message topology changes.
	TreeTopo
)

func (t Topology) String() string {
	if t == TreeTopo {
		return "tree"
	}
	return "flat"
}

// ParseTopology parses the hpfrun -topo syntax.
func ParseTopology(s string) (Topology, error) {
	switch s {
	case "flat", "":
		return Flat, nil
	case "tree":
		return TreeTopo, nil
	default:
		return Flat, fmt.Errorf(`config: bad topology %q (want "flat" or "tree")`, s)
	}
}

// CPUMode selects how protocol handlers share the node's processors.
type CPUMode int

const (
	// DualCPU dedicates the node's second processor to protocol
	// handling; computation never pays for handler execution directly.
	DualCPU CPUMode = iota
	// SingleCPU interleaves protocol handling with computation on one
	// processor: handler time is stolen from the compute thread.
	SingleCPU
)

func (m CPUMode) String() string {
	switch m {
	case DualCPU:
		return "dual-cpu"
	case SingleCPU:
		return "single-cpu"
	default:
		return fmt.Sprintf("CPUMode(%d)", int(m))
	}
}

// Faults configures the unreliable-network fault-injection layer and
// the reliable-delivery protocol that compensates for it. All rates are
// probabilities in [0, 1) applied independently to every wire
// transmission (including retransmissions and acknowledgements), drawn
// from a PRNG seeded with Seed — the same seed always yields the same
// schedule. The zero value disables fault injection entirely and the
// network behaves exactly like the paper's lossless Myrinet.
type Faults struct {
	Drop    float64  // probability a transmission is lost
	Dup     float64  // probability a transmission is duplicated in flight
	Jitter  sim.Time // max uniform extra delivery delay per transmission
	Reorder float64  // probability of an additional large delay that reorders across pairs
	Seed    uint64   // PRNG seed (seed 0 is valid and deterministic too)

	// Reliable-delivery tuning; zero values select the defaults noted.
	RetransmitTimeout sim.Time // initial per-message retransmit timeout (default 500 µs)
	MaxBackoff        sim.Time // exponential-backoff clamp (default 4 ms)
	AckDelay          sim.Time // ACK coalescing window (default 20 µs)
	MaxRetries        int      // retransmissions before giving up (0 = retry forever)

	// WatchdogHorizon is the virtual-time span without compute-process
	// progress after which the runtime's stall watchdog aborts the run
	// with a diagnostic dump (default 50 ms; it must comfortably exceed
	// the worst plausible backoff chain so it never fires spuriously).
	WatchdogHorizon sim.Time

	// Crashes lists the crash-stop node failures to inject. Each crash
	// silently kills one node — its compute process stops, its handlers
	// go quiet, and every message in flight to or from it vanishes.
	// Survivors detect the failure (retransmit-exhaustion probing or
	// barrier timeout) and recover from the last barrier-consistent
	// checkpoint. Configuring any crash activates the reliable-delivery
	// layer even with all wire-fault rates zero.
	Crashes []CrashSpec

	// Failure-detection and recovery tuning; zero values select the
	// defaults noted.
	ProbeTimeout   sim.Time // initial probe timeout after retransmit exhaustion (default 1 ms)
	MaxProbes      int      // unanswered probes before a peer is declared dead (default 3)
	BarrierTimeout sim.Time // incomplete-barrier age that triggers membership probing (default 20 ms)
	RecoveryDelay  sim.Time // simulated cost of rollback + checkpoint restore (default 5 ms)
}

// CrashSpec schedules one crash-stop failure: node Node dies at virtual
// time At, or — when Epoch > 0 — at the instant the cluster completes
// its Epoch'th synchronization (barrier or reduction all-arrived
// instant, counted from 1). Exactly one of Epoch and At selects the
// trigger; an Epoch takes precedence.
type CrashSpec struct {
	Node  int
	Epoch int64    // kill when the cluster epoch counter reaches this (0 = use At)
	At    sim.Time // kill at this virtual time (used when Epoch == 0)
}

// Active reports whether any fault kind is enabled. The reliable
// delivery layer (sequence numbers, ACKs, retransmission) engages only
// when faults are active, so a fault-free configuration is bit-identical
// to the original lossless network. Crash-stop failures count: detecting
// a dead peer requires the retransmit/probe machinery.
func (f Faults) Active() bool {
	return f.Drop > 0 || f.Dup > 0 || f.Jitter > 0 || f.Reorder > 0 || len(f.Crashes) > 0
}

// Reliable-delivery defaults (see Faults).
const (
	DefaultRetransmitTimeout = 500 * sim.Microsecond
	DefaultMaxBackoff        = 4 * sim.Millisecond
	DefaultAckDelay          = 20 * sim.Microsecond
	DefaultWatchdogHorizon   = 50 * sim.Millisecond
	DefaultProbeTimeout      = 1 * sim.Millisecond
	DefaultMaxProbes         = 3
	DefaultBarrierTimeout    = 20 * sim.Millisecond
	DefaultRecoveryDelay     = 5 * sim.Millisecond
	// DefaultCrashMaxRetries caps the retransmit chain when crash
	// injection is configured but MaxRetries was left zero (retry
	// forever): with a peer permanently gone, retransmission must
	// escalate to probing, and the full chain (500 µs, 1, 2, 4, 4, 4 ms
	// of backoff, then three probes) must finish inside the watchdog
	// horizon.
	DefaultCrashMaxRetries = 6
)

// EffectiveRetransmitTimeout returns RetransmitTimeout or its default.
func (f Faults) EffectiveRetransmitTimeout() sim.Time {
	if f.RetransmitTimeout > 0 {
		return f.RetransmitTimeout
	}
	return DefaultRetransmitTimeout
}

// EffectiveMaxBackoff returns MaxBackoff or its default.
func (f Faults) EffectiveMaxBackoff() sim.Time {
	if f.MaxBackoff > 0 {
		return f.MaxBackoff
	}
	return DefaultMaxBackoff
}

// EffectiveAckDelay returns AckDelay or its default.
func (f Faults) EffectiveAckDelay() sim.Time {
	if f.AckDelay > 0 {
		return f.AckDelay
	}
	return DefaultAckDelay
}

// EffectiveWatchdogHorizon returns WatchdogHorizon or its default.
func (f Faults) EffectiveWatchdogHorizon() sim.Time {
	if f.WatchdogHorizon > 0 {
		return f.WatchdogHorizon
	}
	return DefaultWatchdogHorizon
}

// EffectiveMaxRetries returns MaxRetries, defaulting to
// DefaultCrashMaxRetries when crash injection is configured (an
// unbounded retransmit chain would never escalate to probing).
func (f Faults) EffectiveMaxRetries() int {
	if f.MaxRetries == 0 && len(f.Crashes) > 0 {
		return DefaultCrashMaxRetries
	}
	return f.MaxRetries
}

// EffectiveProbeTimeout returns ProbeTimeout or its default.
func (f Faults) EffectiveProbeTimeout() sim.Time {
	if f.ProbeTimeout > 0 {
		return f.ProbeTimeout
	}
	return DefaultProbeTimeout
}

// EffectiveMaxProbes returns MaxProbes or its default.
func (f Faults) EffectiveMaxProbes() int {
	if f.MaxProbes > 0 {
		return f.MaxProbes
	}
	return DefaultMaxProbes
}

// EffectiveBarrierTimeout returns BarrierTimeout or its default.
func (f Faults) EffectiveBarrierTimeout() sim.Time {
	if f.BarrierTimeout > 0 {
		return f.BarrierTimeout
	}
	return DefaultBarrierTimeout
}

// EffectiveRecoveryDelay returns RecoveryDelay or its default.
func (f Faults) EffectiveRecoveryDelay() sim.Time {
	if f.RecoveryDelay > 0 {
		return f.RecoveryDelay
	}
	return DefaultRecoveryDelay
}

// Validate reports fault-configuration errors.
func (f Faults) Validate() error {
	for _, r := range []struct {
		name string
		v    float64
	}{{"Drop", f.Drop}, {"Dup", f.Dup}, {"Reorder", f.Reorder}} {
		if r.v < 0 || r.v >= 1 {
			return fmt.Errorf("config: fault rate %s=%v outside [0, 1)", r.name, r.v)
		}
	}
	if f.Jitter < 0 {
		return fmt.Errorf("config: negative fault jitter %d", f.Jitter)
	}
	if f.RetransmitTimeout < 0 || f.MaxBackoff < 0 || f.AckDelay < 0 || f.WatchdogHorizon < 0 {
		return fmt.Errorf("config: negative reliable-delivery timing parameter")
	}
	if f.MaxRetries < 0 {
		return fmt.Errorf("config: negative MaxRetries %d", f.MaxRetries)
	}
	if f.ProbeTimeout < 0 || f.BarrierTimeout < 0 || f.RecoveryDelay < 0 {
		return fmt.Errorf("config: negative failure-detection timing parameter")
	}
	if f.MaxProbes < 0 {
		return fmt.Errorf("config: negative MaxProbes %d", f.MaxProbes)
	}
	for i, c := range f.Crashes {
		if c.Node < 0 {
			return fmt.Errorf("config: crash %d: negative node %d", i, c.Node)
		}
		if c.Epoch < 0 || c.At < 0 {
			return fmt.Errorf("config: crash %d: negative trigger (epoch=%d at=%d)", i, c.Epoch, c.At)
		}
		if c.Epoch == 0 && c.At == 0 {
			return fmt.Errorf("config: crash %d: no trigger (set Epoch or At)", i)
		}
	}
	return nil
}

// Machine describes one simulated cluster configuration.
type Machine struct {
	Nodes       int         // cluster size
	CPUMode     CPUMode     // protocol processor placement
	Consistency Consistency // default protocol memory model
	BlockSize   int         // coherence unit in bytes (32-128 in Tempest)
	PageSize    int         // home-assignment and mapping granularity

	// Network (Myrinet in the paper).
	WireLatency sim.Time // one-way message latency, excluding occupancy
	NsPerByte   sim.Time // inverse bandwidth on a link
	MsgHeader   int      // bytes of header per message
	MaxPayload  int      // largest bulk-transfer payload in one message

	// Processor.
	NsPerFlop sim.Time // cost of one floating-point operation
	LoopOver  sim.Time // per-loop-iteration fixed overhead

	// Protocol software occupancies (per message / per event).
	SendOver     sim.Time // CPU cost to compose+inject a message
	RecvOver     sim.Time // CPU cost to receive+dispatch a message
	HandlerCost  sim.Time // protocol state transition cost
	FaultCost    sim.Time // detecting an access fault, entering handler
	TagChange    sim.Time // changing one block's access tag
	BlockCopy    sim.Time // copying one block to/from a message buffer
	BulkPerBlock sim.Time // per-block cost inside pipelined/bulk operations
	PageMapCost  sim.Time // mapping a remote page on first touch
	BarrierEntry sim.Time // local cost of entering/leaving a barrier

	// Message-passing runtime (the PGI-backend baseline): per-message
	// software overheads and per-byte packing cost of the portable
	// communication layer.
	MPSendOver    sim.Time
	MPRecvOver    sim.Time
	MPPackPerByte sim.Time

	// Barrier-epoch message aggregation (the NIC-level coalescing
	// scheduler). NoCoalesce disables the layer entirely; the model is
	// then bit-identical to the pre-aggregation simulator at every
	// optimization level. AggThreshold is the adaptive bulk threshold:
	// the expected per-(loop, destination) byte volume at or above which
	// the runtime chooses epoch aggregation over per-transfer bulk for
	// tagged data (0 selects the default of 2*BlockSize). AggDelay is
	// the coalescer's engine-side batch window: the first protocol-
	// engine segment appended to an empty per-destination buffer opens
	// a window of AggDelay and the buffer drains when it closes,
	// bounding added latency while letting a request stream (the
	// upgrade and write-miss faults between two synchronization points)
	// share one carrier (0 selects DefaultAggDelay).
	NoCoalesce   bool
	AggThreshold int
	AggDelay     sim.Time

	// Topology selects flat (paper) or tree-structured routing for
	// synchronization and invalidation; Radix is the combining-tree
	// fan-out (0 selects DefaultRadix). Radix is capped at 64 so a
	// parent's child-arrival set and a cluster's leaf membership each
	// fit one uint64 word regardless of N.
	Topology Topology
	Radix    int

	// Faults configures unreliable-network fault injection (off by
	// default; the paper's Myrinet never drops or reorders messages).
	Faults Faults
}

// MaxNodes bounds the cluster size. Directory sharer sets are
// multi-word bitmaps, so the cap is no longer the historic 64-bit
// mask width; 4096 keeps per-block directory state and the O(N)
// memory image per node within reason for the scale experiments.
const MaxNodes = 4096

// DefaultRadix is the combining-tree fan-out when Radix is zero. 4 is
// the knee for the Table 1 cost model: each extra level pays one
// send+receive+handler hop (~31 µs), while each extra child serializes
// one more SendOver (~9 µs) through the parent.
const DefaultRadix = 4

// EffectiveRadix returns Radix or its default.
func (m Machine) EffectiveRadix() int {
	if m.Radix > 0 {
		return m.Radix
	}
	return DefaultRadix
}

// WithTopology returns a copy of m with the given routing topology.
func (m Machine) WithTopology(t Topology) Machine { m.Topology = t; return m }

// WithRadix returns a copy of m with the given combining-tree radix.
func (m Machine) WithRadix(k int) Machine { m.Radix = k; return m }

// Default returns the paper's Table 1 cluster, dual-CPU, 8 nodes,
// 128-byte blocks.
//
// Calibration. Two Table 1 numbers anchor the parameters:
//
//   - 40 µs minimum round trip for a 4-byte message:
//     2*(SendOver + WireLatency + (hdr+4)*NsPerByte + RecvOver)
//     = 2*(9 + 1 + 1 + 9) = 40 µs.
//     (Myrinet's wire latency was ~1 µs; the bulk of the 40 µs was
//     host software — which is why coalescing messages matters.)
//
//   - 93 µs read-miss processing for a 128-byte block (dual-CPU),
//     measured for the common case (home memory holds the data):
//     FaultCost + SendOver + wire(8B) + RecvOver + HandlerCost
//
//   - BlockCopy + SendOver + wire(128B) + RecvOver + BlockCopy
//
//   - 2*TagChange
//     = 20 + 9 + 2.2 + 9 + 13 + 6 + 9 + 8.2 + 9 + 6 + 0.6 ≈ 92 µs.
//
// The large fault and handler costs reflect 1996 user-level protocol
// software dispatched through the Vortex access-control device. A
// producer-consumer miss (data exclusive at a third node, Figure 1a's
// 4-message read) costs correspondingly more, ~140 µs.
func Default() Machine {
	return Machine{
		Nodes:     8,
		CPUMode:   DualCPU,
		BlockSize: 128,
		PageSize:  4096,

		WireLatency: 1 * sim.Microsecond, // Myrinet hardware latency; the rest is host software
		NsPerByte:   50,                  // 20 MB/s
		MsgHeader:   16,
		MaxPayload:  4096,

		NsPerFlop: 60, // 66 MHz HyperSPARC, ~1 flop/4 cycles
		LoopOver:  30,

		SendOver:     9 * sim.Microsecond,
		RecvOver:     9 * sim.Microsecond,
		HandlerCost:  13 * sim.Microsecond,
		FaultCost:    20 * sim.Microsecond,
		TagChange:    300,
		BlockCopy:    6 * sim.Microsecond,
		BulkPerBlock: 800,
		PageMapCost:  40 * sim.Microsecond,
		BarrierEntry: 2 * sim.Microsecond,

		MPSendOver:    30 * sim.Microsecond,
		MPRecvOver:    30 * sim.Microsecond,
		MPPackPerByte: 60,
	}
}

// WithNodes returns a copy of m for an n-node cluster.
func (m Machine) WithNodes(n int) Machine { m.Nodes = n; return m }

// WithCPUMode returns a copy of m with the given CPU mode.
func (m Machine) WithCPUMode(c CPUMode) Machine { m.CPUMode = c; return m }

// WithConsistency returns a copy of m with the given memory model.
func (m Machine) WithConsistency(c Consistency) Machine { m.Consistency = c; return m }

// WithBlockSize returns a copy of m with the given coherence block size.
func (m Machine) WithBlockSize(b int) Machine { m.BlockSize = b; return m }

// WithFaults returns a copy of m with the given fault configuration.
func (m Machine) WithFaults(f Faults) Machine { m.Faults = f; return m }

// WithoutCoalesce returns a copy of m with message aggregation off.
func (m Machine) WithoutCoalesce() Machine { m.NoCoalesce = true; return m }

// DefaultAggDelay is the default engine-side batch window. Eager
// release consistency makes write faults latency-tolerant — the
// compute thread runs on while grants are outstanding and only the
// next synchronization point needs them resolved — so a generous
// window costs little latency but lets a node's whole between-barrier
// request stream to one home share a single carrier. 100 µs (several
// round trips, still far below a barrier interval) was the knee of
// the window sweep on the paper's application suite.
const DefaultAggDelay = 100 * sim.Microsecond

// EffectiveAggThreshold returns AggThreshold or its default of two
// coherence blocks — one block always travels eagerly, and a single
// bulk payload only starts beating per-block messages once a second
// block shares the header.
func (m Machine) EffectiveAggThreshold() int {
	if m.AggThreshold > 0 {
		return m.AggThreshold
	}
	return 2 * m.BlockSize
}

// EffectiveAggDelay returns AggDelay or its default.
func (m Machine) EffectiveAggDelay() sim.Time {
	if m.AggDelay > 0 {
		return m.AggDelay
	}
	return DefaultAggDelay
}

// Validate reports configuration errors.
func (m Machine) Validate() error {
	switch {
	case m.Nodes < 1:
		return fmt.Errorf("config: need at least 1 node, have %d", m.Nodes)
	case m.Nodes > MaxNodes:
		return fmt.Errorf("config: %d nodes exceeds the %d-node cap", m.Nodes, MaxNodes)
	case m.Radix < 0 || m.Radix == 1 || m.Radix > 64:
		return fmt.Errorf("config: combining-tree radix %d outside [2, 64] (0 selects the default of %d)", m.Radix, DefaultRadix)
	case m.BlockSize <= 0 || m.BlockSize%8 != 0:
		return fmt.Errorf("config: block size %d must be a positive multiple of 8", m.BlockSize)
	case m.PageSize <= 0 || m.PageSize%m.BlockSize != 0:
		return fmt.Errorf("config: page size %d must be a multiple of block size %d", m.PageSize, m.BlockSize)
	case m.MaxPayload < m.BlockSize:
		return fmt.Errorf("config: max payload %d smaller than block size %d", m.MaxPayload, m.BlockSize)
	case m.WireLatency < 0 || m.NsPerByte < 0:
		return fmt.Errorf("config: negative network parameters")
	case m.AggThreshold < 0:
		return fmt.Errorf("config: negative aggregation threshold %d (use NoCoalesce to disable aggregation)", m.AggThreshold)
	case m.AggDelay < 0:
		return fmt.Errorf("config: negative aggregation drain delay %d", m.AggDelay)
	}
	for i, c := range m.Faults.Crashes {
		if c.Node >= m.Nodes {
			return fmt.Errorf("config: crash %d: node %d outside cluster of %d", i, c.Node, m.Nodes)
		}
		if c.Node == 0 {
			// Node 0 hosts the barrier master and owns the result scalars;
			// replacing it is future work (see DESIGN.md §11).
			return fmt.Errorf("config: crash %d: crashing node 0 (the synchronization master) is not supported", i)
		}
	}
	return m.Faults.Validate()
}

// FromJSON reads a Machine from JSON, starting from the default
// configuration so files only need to override what they change, and
// validates the result. Field names match the struct (e.g.
// {"Nodes": 16, "NsPerByte": 12, "WireLatency": 500}).
func FromJSON(r io.Reader) (Machine, error) {
	m := Default()
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&m); err != nil {
		return Machine{}, fmt.Errorf("config: %w", err)
	}
	if err := m.Validate(); err != nil {
		return Machine{}, err
	}
	return m, nil
}

// MsgTime returns the wire time for a message with the given payload
// size: latency plus serialization of header and payload.
func (m Machine) MsgTime(payload int) sim.Time {
	return m.WireLatency + sim.Time(m.MsgHeader+payload)*m.NsPerByte
}

// ParseCrashSpec parses the hpfrun -crash syntax: "node=N@epoch=E" for
// an epoch-triggered crash or "node=N@t=D" for a time-triggered one,
// where D is a Go-style duration of whole ns/us/ms/s (e.g. "t=4ms").
func ParseCrashSpec(s string) (CrashSpec, error) {
	var c CrashSpec
	bad := func() (CrashSpec, error) {
		return CrashSpec{}, fmt.Errorf(`config: bad crash spec %q (want "node=N@epoch=E" or "node=N@t=4ms")`, s)
	}
	node, trigger, ok := strings.Cut(s, "@")
	if !ok {
		return bad()
	}
	nv, ok := strings.CutPrefix(node, "node=")
	if !ok {
		return bad()
	}
	n, err := strconv.Atoi(nv)
	if err != nil {
		return bad()
	}
	c.Node = n
	switch {
	case strings.HasPrefix(trigger, "epoch="):
		e, err := strconv.ParseInt(trigger[len("epoch="):], 10, 64)
		if err != nil || e <= 0 {
			return bad()
		}
		c.Epoch = e
	case strings.HasPrefix(trigger, "t="):
		d, err := parseSimDuration(trigger[len("t="):])
		if err != nil || d <= 0 {
			return bad()
		}
		c.At = d
	default:
		return bad()
	}
	return c, nil
}

// parseSimDuration parses a whole-number duration with an ns/us/ms/s
// suffix into virtual nanoseconds.
func parseSimDuration(s string) (sim.Time, error) {
	unit := sim.Time(1)
	switch {
	case strings.HasSuffix(s, "ns"):
		s = s[:len(s)-2]
	case strings.HasSuffix(s, "us"):
		s, unit = s[:len(s)-2], sim.Microsecond
	case strings.HasSuffix(s, "ms"):
		s, unit = s[:len(s)-2], sim.Millisecond
	case strings.HasSuffix(s, "s"):
		s, unit = s[:len(s)-1], sim.Second
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, err
	}
	return v * unit, nil
}
