// Package config holds the simulated machine parameter sets.
//
// The default configuration reproduces Table 1 of Chandra & Larus:
// an 8-node cluster of dual-processor 66 MHz HyperSPARC SparcStation-20s
// on a Myrinet with a 40 µs minimum round-trip for short messages and
// 20 MB/s of usable bandwidth, with fine-grain access control at 128-byte
// blocks. Handler occupancies are calibrated so that the default
// protocol's remote read miss of a 128-byte block takes ~93 µs in the
// dual-CPU configuration, matching the paper's measured value.
package config

import (
	"encoding/json"
	"fmt"
	"io"

	"hpfdsm/internal/sim"
)

// Consistency selects the default protocol's memory model.
type Consistency int

const (
	// ReleaseConsistent is the paper's protocol: writes do not wait for
	// ownership grants; pending transactions drain at synchronization
	// points.
	ReleaseConsistent Consistency = iota
	// SequentiallyConsistent makes every write fault block until
	// ownership is granted — the conservative design the paper's
	// protocol improves on (its footnote 1: "we try to hide some of the
	// write latency by implementing a release-consistent memory model").
	SequentiallyConsistent
)

func (c Consistency) String() string {
	if c == SequentiallyConsistent {
		return "sequential"
	}
	return "release"
}

// CPUMode selects how protocol handlers share the node's processors.
type CPUMode int

const (
	// DualCPU dedicates the node's second processor to protocol
	// handling; computation never pays for handler execution directly.
	DualCPU CPUMode = iota
	// SingleCPU interleaves protocol handling with computation on one
	// processor: handler time is stolen from the compute thread.
	SingleCPU
)

func (m CPUMode) String() string {
	switch m {
	case DualCPU:
		return "dual-cpu"
	case SingleCPU:
		return "single-cpu"
	default:
		return fmt.Sprintf("CPUMode(%d)", int(m))
	}
}

// Machine describes one simulated cluster configuration.
type Machine struct {
	Nodes       int         // cluster size
	CPUMode     CPUMode     // protocol processor placement
	Consistency Consistency // default protocol memory model
	BlockSize   int         // coherence unit in bytes (32-128 in Tempest)
	PageSize    int         // home-assignment and mapping granularity

	// Network (Myrinet in the paper).
	WireLatency sim.Time // one-way message latency, excluding occupancy
	NsPerByte   sim.Time // inverse bandwidth on a link
	MsgHeader   int      // bytes of header per message
	MaxPayload  int      // largest bulk-transfer payload in one message

	// Processor.
	NsPerFlop sim.Time // cost of one floating-point operation
	LoopOver  sim.Time // per-loop-iteration fixed overhead

	// Protocol software occupancies (per message / per event).
	SendOver     sim.Time // CPU cost to compose+inject a message
	RecvOver     sim.Time // CPU cost to receive+dispatch a message
	HandlerCost  sim.Time // protocol state transition cost
	FaultCost    sim.Time // detecting an access fault, entering handler
	TagChange    sim.Time // changing one block's access tag
	BlockCopy    sim.Time // copying one block to/from a message buffer
	BulkPerBlock sim.Time // per-block cost inside pipelined/bulk operations
	PageMapCost  sim.Time // mapping a remote page on first touch
	BarrierEntry sim.Time // local cost of entering/leaving a barrier

	// Message-passing runtime (the PGI-backend baseline): per-message
	// software overheads and per-byte packing cost of the portable
	// communication layer.
	MPSendOver    sim.Time
	MPRecvOver    sim.Time
	MPPackPerByte sim.Time
}

// Default returns the paper's Table 1 cluster, dual-CPU, 8 nodes,
// 128-byte blocks.
//
// Calibration. Two Table 1 numbers anchor the parameters:
//
//   - 40 µs minimum round trip for a 4-byte message:
//     2*(SendOver + WireLatency + (hdr+4)*NsPerByte + RecvOver)
//     = 2*(9 + 1 + 1 + 9) = 40 µs.
//     (Myrinet's wire latency was ~1 µs; the bulk of the 40 µs was
//     host software — which is why coalescing messages matters.)
//
//   - 93 µs read-miss processing for a 128-byte block (dual-CPU),
//     measured for the common case (home memory holds the data):
//     FaultCost + SendOver + wire(8B) + RecvOver + HandlerCost
//
//   - BlockCopy + SendOver + wire(128B) + RecvOver + BlockCopy
//
//   - 2*TagChange
//     = 20 + 9 + 2.2 + 9 + 13 + 6 + 9 + 8.2 + 9 + 6 + 0.6 ≈ 92 µs.
//
// The large fault and handler costs reflect 1996 user-level protocol
// software dispatched through the Vortex access-control device. A
// producer-consumer miss (data exclusive at a third node, Figure 1a's
// 4-message read) costs correspondingly more, ~140 µs.
func Default() Machine {
	return Machine{
		Nodes:     8,
		CPUMode:   DualCPU,
		BlockSize: 128,
		PageSize:  4096,

		WireLatency: 1 * sim.Microsecond, // Myrinet hardware latency; the rest is host software
		NsPerByte:   50,                  // 20 MB/s
		MsgHeader:   16,
		MaxPayload:  4096,

		NsPerFlop: 60, // 66 MHz HyperSPARC, ~1 flop/4 cycles
		LoopOver:  30,

		SendOver:     9 * sim.Microsecond,
		RecvOver:     9 * sim.Microsecond,
		HandlerCost:  13 * sim.Microsecond,
		FaultCost:    20 * sim.Microsecond,
		TagChange:    300,
		BlockCopy:    6 * sim.Microsecond,
		BulkPerBlock: 800,
		PageMapCost:  40 * sim.Microsecond,
		BarrierEntry: 2 * sim.Microsecond,

		MPSendOver:    30 * sim.Microsecond,
		MPRecvOver:    30 * sim.Microsecond,
		MPPackPerByte: 60,
	}
}

// WithNodes returns a copy of m for an n-node cluster.
func (m Machine) WithNodes(n int) Machine { m.Nodes = n; return m }

// WithCPUMode returns a copy of m with the given CPU mode.
func (m Machine) WithCPUMode(c CPUMode) Machine { m.CPUMode = c; return m }

// WithConsistency returns a copy of m with the given memory model.
func (m Machine) WithConsistency(c Consistency) Machine { m.Consistency = c; return m }

// WithBlockSize returns a copy of m with the given coherence block size.
func (m Machine) WithBlockSize(b int) Machine { m.BlockSize = b; return m }

// Validate reports configuration errors.
func (m Machine) Validate() error {
	switch {
	case m.Nodes < 1:
		return fmt.Errorf("config: need at least 1 node, have %d", m.Nodes)
	case m.Nodes > 64:
		return fmt.Errorf("config: directory sharer sets are 64-bit; %d nodes unsupported", m.Nodes)
	case m.BlockSize <= 0 || m.BlockSize%8 != 0:
		return fmt.Errorf("config: block size %d must be a positive multiple of 8", m.BlockSize)
	case m.PageSize <= 0 || m.PageSize%m.BlockSize != 0:
		return fmt.Errorf("config: page size %d must be a multiple of block size %d", m.PageSize, m.BlockSize)
	case m.MaxPayload < m.BlockSize:
		return fmt.Errorf("config: max payload %d smaller than block size %d", m.MaxPayload, m.BlockSize)
	case m.WireLatency < 0 || m.NsPerByte < 0:
		return fmt.Errorf("config: negative network parameters")
	}
	return nil
}

// FromJSON reads a Machine from JSON, starting from the default
// configuration so files only need to override what they change, and
// validates the result. Field names match the struct (e.g.
// {"Nodes": 16, "NsPerByte": 12, "WireLatency": 500}).
func FromJSON(r io.Reader) (Machine, error) {
	m := Default()
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&m); err != nil {
		return Machine{}, fmt.Errorf("config: %w", err)
	}
	if err := m.Validate(); err != nil {
		return Machine{}, err
	}
	return m, nil
}

// MsgTime returns the wire time for a message with the given payload
// size: latency plus serialization of header and payload.
func (m Machine) MsgTime(payload int) sim.Time {
	return m.WireLatency + sim.Time(m.MsgHeader+payload)*m.NsPerByte
}
