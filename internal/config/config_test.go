package config

import (
	"strings"
	"testing"

	"hpfdsm/internal/sim"
)

func TestDefaultValid(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestWithers(t *testing.T) {
	m := Default().WithNodes(4).WithCPUMode(SingleCPU).WithBlockSize(64)
	if m.Nodes != 4 || m.CPUMode != SingleCPU || m.BlockSize != 64 {
		t.Fatalf("withers did not apply: %+v", m)
	}
	// Original untouched.
	d := Default()
	if d.Nodes != 8 || d.CPUMode != DualCPU || d.BlockSize != 128 {
		t.Fatalf("Default mutated: %+v", d)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Machine)
	}{
		{"zero nodes", func(m *Machine) { m.Nodes = 0 }},
		{"too many nodes", func(m *Machine) { m.Nodes = MaxNodes + 1 }},
		{"bad radix", func(m *Machine) { m.Radix = 1 }},
		{"oversize radix", func(m *Machine) { m.Radix = 65 }},
		{"zero block", func(m *Machine) { m.BlockSize = 0 }},
		{"odd block", func(m *Machine) { m.BlockSize = 100 }},
		{"page not multiple", func(m *Machine) { m.PageSize = 1000 }},
		{"payload under block", func(m *Machine) { m.MaxPayload = 64 }},
		{"negative latency", func(m *Machine) { m.WireLatency = -1 }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			m := Default()
			c.mut(&m)
			if err := m.Validate(); err == nil {
				t.Errorf("Validate accepted %s", c.name)
			}
		})
	}
}

func TestShortMessageRoundTrip(t *testing.T) {
	// Table 1: minimum round trip for a 4-byte message is 40 µs.
	// Round trip = 2 * (SendOver + MsgTime(4) + RecvOver).
	m := Default()
	rt := 2 * (m.SendOver + m.MsgTime(4) + m.RecvOver)
	if rt < 38*sim.Microsecond || rt > 42*sim.Microsecond {
		t.Fatalf("short-message round trip = %d ns, want ~40 µs", rt)
	}
}

func TestMsgTimeScalesWithSize(t *testing.T) {
	m := Default()
	small := m.MsgTime(0)
	big := m.MsgTime(1000)
	if big-small != 1000*m.NsPerByte {
		t.Fatalf("MsgTime delta = %d, want %d", big-small, 1000*m.NsPerByte)
	}
}

func TestCPUModeString(t *testing.T) {
	if DualCPU.String() != "dual-cpu" || SingleCPU.String() != "single-cpu" {
		t.Fatal("CPUMode String broken")
	}
	if CPUMode(9).String() == "" {
		t.Fatal("unknown CPUMode String empty")
	}
}

func TestFromJSON(t *testing.T) {
	m, err := FromJSON(strings.NewReader(`{"Nodes": 16, "NsPerByte": 12}`))
	if err != nil {
		t.Fatal(err)
	}
	if m.Nodes != 16 || m.NsPerByte != 12 {
		t.Fatalf("overrides not applied: %+v", m)
	}
	if m.BlockSize != 128 {
		t.Fatal("defaults not preserved")
	}
	if _, err := FromJSON(strings.NewReader(`{"Nodes": 9999}`)); err == nil {
		t.Fatal("invalid config accepted")
	}
	if _, err := FromJSON(strings.NewReader(`{"Bogus": 1}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := FromJSON(strings.NewReader(`{`)); err == nil {
		t.Fatal("bad json accepted")
	}
}
