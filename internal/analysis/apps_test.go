package analysis_test

import (
	"testing"

	"hpfdsm/internal/analysis"
	"hpfdsm/internal/apps"
	"hpfdsm/internal/config"
)

// TestVerifyAllApps runs the static verifier over every shipped app at
// every optimization level: the seed schedules must satisfy the
// Section 4.2 contract with no errors. Any future violation must be
// either fixed or suppressed here with a tracked reason.
func TestVerifyAllApps(t *testing.T) {
	var suppressions []analysis.Suppression // none needed by the seed apps
	for _, a := range apps.All() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			prog, err := a.Program(a.ScaledParams)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := analysis.Verify(prog, config.Default(), analysis.Levels()...)
			if err != nil {
				t.Fatal(err)
			}
			if stale := rep.Apply(suppressions); len(stale) > 0 {
				t.Errorf("stale suppressions: %v", stale)
			}
			if rep.HasErrors() {
				t.Errorf("verifier errors:\n%s", rep)
			}
			if rep.Instances == 0 {
				t.Errorf("verifier checked no schedule instances:\n%s", rep)
			}
			if rep.Loops == 0 {
				t.Errorf("verifier found no loops:\n%s", rep)
			}
			t.Logf("\n%s", rep)
		})
	}
}
