package analysis

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"hpfdsm/internal/compiler"
	"hpfdsm/internal/protocol"
)

// ProvIndex maps coherence-block numbers back to compiler decisions:
// which array the block belongs to and which scheduled call (send or
// flush of which loop, section, and valuation) most recently created
// expectations about it. The runtime records schedules as it
// instantiates them and hands Describe to the protocol's invariant
// auditor, so a dynamic violation prints "loop L3: send a(1:64,8:8)
// 0->1" instead of a raw block address. When Report is set, the
// description also cites the contract rules the static verifier proved
// for that loop — the dynamic failure names the static guarantee it
// broke.
type ProvIndex struct {
	Report *Report // optional: the -verify pre-flight's report

	blockSize int
	spans     []provSpan
	last      []*provEntry // per block; nil = nothing recorded

	// stamps caches the formatted per-transfer entries of each
	// instantiated (label, schedule) pair: schedules are memoized by the
	// compiler, so after the first instantiation a repeat record is just
	// slice stores — no formatting, no allocation.
	stamps map[provKey][]provStamp

	// mu guards stamps and last. Under the PDES window scheduler,
	// compute processes on different partitions instantiate schedules
	// concurrently; provenance is diagnostic metadata outside the
	// simulated machine, so a lock (not an Env) is the right tool. The
	// recorded winner for a block is whichever record ran last — same
	// best-effort semantics the sequential path has.
	mu sync.Mutex
}

type provSpan struct {
	name   string
	lo, hi int // block range [lo, hi)
}

type provEntry struct {
	loop string
	text string
}

type provKey struct {
	label string
	sched *compiler.Schedule
}

type provStamp struct {
	e      *provEntry
	blocks []protocol.BlockRun
}

// NewProvIndex builds the array→block map for a compiled program.
func NewProvIndex(an *compiler.Analysis) *ProvIndex {
	px := &ProvIndex{blockSize: an.BlockSize, stamps: map[provKey][]provStamp{}}
	maxB := 0
	for _, arr := range an.Prog.Arrays {
		lay := an.Layouts[arr]
		hi := (lay.Base + lay.SizeBytes() + an.BlockSize - 1) / an.BlockSize
		px.spans = append(px.spans, provSpan{
			name: arr.Name,
			lo:   lay.Base / an.BlockSize,
			hi:   hi,
		})
		if hi > maxB {
			maxB = hi
		}
	}
	px.last = make([]*provEntry, maxB)
	sort.Slice(px.spans, func(i, j int) bool { return px.spans[i].lo < px.spans[j].lo })
	return px
}

// RecordSchedule notes, for every block of every transfer in a just-
// instantiated schedule, the call that governs it.
func (px *ProvIndex) RecordSchedule(label string, sched *compiler.Schedule) {
	if px == nil || sched == nil {
		return
	}
	px.mu.Lock()
	defer px.mu.Unlock()
	k := provKey{label: label, sched: sched}
	stamps, ok := px.stamps[k]
	if !ok {
		note := func(ts []compiler.Transfer, kind string) {
			for _, t := range ts {
				stamps = append(stamps, provStamp{
					e: &provEntry{
						loop: label,
						text: fmt.Sprintf("loop %s: %s %s%v %d->%d", label, kind, t.Array.Name, t.Sec, t.Sender, t.Receiver),
					},
					blocks: t.Blocks,
				})
			}
		}
		note(sched.Reads, "send")
		note(sched.Writes, "flush")
		px.stamps[k] = stamps
	}
	for _, s := range stamps {
		for _, r := range s.blocks {
			for b := r.Start; b < r.Start+r.N; b++ {
				px.last[b] = s.e
			}
		}
	}
}

// Describe renders a block's provenance, or "" when nothing is known.
func (px *ProvIndex) Describe(b int) string {
	if px == nil {
		return ""
	}
	px.mu.Lock()
	defer px.mu.Unlock()
	var parts []string
	for _, s := range px.spans {
		if b >= s.lo && b < s.hi {
			parts = append(parts, s.name)
			break
		}
	}
	if e := px.entryAt(b); e != nil {
		parts = append(parts, e.text)
		if px.Report != nil {
			if rules := px.Report.RulesFor(e.loop); len(rules) > 0 {
				short := make([]string, len(rules))
				for i, r := range rules {
					short[i] = strings.TrimPrefix(strings.TrimPrefix(r, "contract/"), "race/")
				}
				parts = append(parts, "statically verified: "+strings.Join(short, ","))
			}
		}
	}
	return strings.Join(parts, "; ")
}

func (px *ProvIndex) entryAt(b int) *provEntry {
	if b < 0 || b >= len(px.last) {
		return nil
	}
	return px.last[b]
}
