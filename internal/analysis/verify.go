package analysis

import (
	"fmt"
	"strings"

	"hpfdsm/internal/compiler"
	"hpfdsm/internal/config"
	"hpfdsm/internal/ir"
	"hpfdsm/internal/memory"
	"hpfdsm/internal/sections"
)

// Model is the per-level verification state: it replays the program's
// control flow symbolically (SPMD control flow is replicated, so one
// walk stands for all nodes), rebuilding the executor's call emission
// per loop instance and checking each against the contract. The state
// that the checks depend on persists across loop instances exactly as
// it does at run time: open implicit_writable frames per node, the
// global barrier phase, the delivered-section memo PRE consults, and
// each loop's last instantiated schedule.
type Model struct {
	an     *compiler.Analysis
	level  compiler.Level
	report *Report
	races  bool // run the (level-independent) race analysis on this pass

	phase     int             // global barrier phase counter
	frames    []map[int]int   // per node: open frame block -> opening phase
	delivered map[string]bool // transfer keys ever delivered (mirrors exec's PRE memo)
	live      map[string]bool // transfer keys delivered and not since invalidated by a write
	lastSched map[any]*compiler.Schedule

	env     map[string]int
	checked map[string]bool // loop|sig instances already diagnosed
	seen    map[string]bool // diagnostic dedup
	gen     int             // bumped on any state/diagnostic change (fixpoint detection)
}

// NewModel builds a fresh verification state for one optimization
// level, accumulating into rep.
func NewModel(an *compiler.Analysis, level compiler.Level, rep *Report) *Model {
	m := &Model{
		an:        an,
		level:     level,
		report:    rep,
		frames:    make([]map[int]int, an.NP),
		delivered: map[string]bool{},
		live:      map[string]bool{},
		lastSched: map[any]*compiler.Schedule{},
		env:       map[string]int{},
		checked:   map[string]bool{},
		seen:      map[string]bool{},
	}
	for n := range m.frames {
		m.frames[n] = map[int]int{}
	}
	for k, v := range an.Prog.Params {
		m.env[k] = v
	}
	return m
}

func (m *Model) bump() { m.gen++ }

// addDiag records a diagnostic, dropping exact duplicates (repeated
// instances of the same loop produce identical findings).
func (m *Model) addDiag(d Diag) {
	key := d.Rule + "|" + d.Site.String() + "|" + d.Msg
	if m.seen[key] {
		return
	}
	m.seen[key] = true
	m.report.add(d)
	m.bump()
}

// walk replays a statement list.
func (m *Model) walk(stmts []ir.Stmt) {
	for _, s := range stmts {
		switch st := s.(type) {
		case *ir.ParLoop:
			rule := m.an.LoopRuleOf(st)
			m.instance(st, st.Label, rule, st.Body, nil)
		case *ir.Reduce:
			rule := m.an.ReduceRuleOf(st)
			m.instance(st, st.Label, rule, nil, st.Expr)
		case *ir.SeqLoop:
			m.seqLoop(st)
		case *ir.ScalarAssign, *ir.ExitIf:
			// Scalar flow and early exits do not change schedules: the
			// verifier walks the full bounds (a superset of any actual
			// execution, so every reachable schedule is checked).
		case *ir.StartTimer:
			m.phase++ // the timer's synchronizing barrier
		case *ir.Block:
			m.walk(st.Body)
		default:
			panic(fmt.Sprintf("analysis: unknown statement %T", s))
		}
	}
}

// seqLoop replays a sequential loop to a fixpoint: once an iteration
// neither checks a new schedule instance nor changes any model state,
// every further iteration is identical and verification can stop early.
func (m *Model) seqLoop(sl *ir.SeqLoop) {
	lo, hi := sl.Lo.Eval(m.env), sl.Hi.Eval(m.env)
	saved, had := m.env[sl.Var]
	for v := lo; v <= hi; v++ {
		m.env[sl.Var] = v
		before := m.gen
		m.walk(sl.Body)
		if m.gen == before {
			break
		}
	}
	if had {
		m.env[sl.Var] = saved
	} else {
		delete(m.env, sl.Var)
	}
}

// instance verifies one loop/reduction instantiation and advances the
// model state.
func (m *Model) instance(key any, label string, rule *compiler.LoopRule, body []*ir.Assign, reduceExpr ir.Expr) {
	sig := label + "|" + sigOf(rule, m.env)
	lc := m.BuildLoopCalls(key, label, rule, m.env, reduceExpr != nil)
	if !m.checked[sig] {
		m.checked[sig] = true
		m.bump()
		m.CheckLoopCalls(lc)
		if m.races {
			m.CheckRaces(key, rule, m.env, lc.Site, body, reduceExpr)
		}
	} else {
		// Repeat instance: the checks would repeat verbatim, but the
		// happens-before state must still advance.
		m.advance(lc)
	}
	// PRE liveness: executed read transfers deliver their sections ...
	for _, t := range lc.Reads {
		tk := transferKey(t)
		if !m.live[tk] {
			m.live[tk] = true
			m.bump()
		}
	}
	// ... and any write to an array invalidates every delivered copy of
	// it (the kill set markRedundant reasons about, re-derived here).
	written := map[string]bool{}
	for _, as := range body {
		written[as.LHS.Array.Name] = true
	}
	for _, t := range lc.Writes {
		written[t.Array.Name] = true
	}
	for name := range written {
		prefix := name + "|"
		for tk := range m.live {
			if strings.HasPrefix(tk, prefix) {
				delete(m.live, tk)
				m.bump()
			}
		}
	}
}

// advance replays a repeat instance's effect on the happens-before
// state (frames open, phase advances) without re-diagnosing.
func (m *Model) advance(lc *LoopCalls) {
	bc := 0
	for _, c := range lc.Nodes[0] {
		if c.Op == OpBarrier {
			bc++
		}
	}
	for n := range lc.Nodes {
		b := 0
		for _, c := range lc.Nodes[n] {
			switch c.Op {
			case OpBarrier:
				b++
			case OpImplicitWritable:
				for _, r := range c.Blocks {
					for blk := r.Start; blk < r.Start+r.N; blk++ {
						if _, ok := m.frames[n][blk]; !ok {
							m.frames[n][blk] = m.phase + b
							m.bump()
						}
					}
				}
			case OpImplicitInvalidate:
				for _, r := range c.Blocks {
					for blk := r.Start; blk < r.Start+r.N; blk++ {
						delete(m.frames[n], blk)
					}
				}
			}
		}
	}
	m.phase += bc
}

// Levels returns every optimization level, in ascending order.
func Levels() []compiler.Level {
	return []compiler.Level{compiler.OptNone, compiler.OptBase, compiler.OptBulk, compiler.OptRTElim, compiler.OptPRE}
}

// VerifyAnalysis runs the verifier over an existing compilation at the
// given levels (race analysis runs once, on the first). It never runs
// the simulator.
func VerifyAnalysis(an *compiler.Analysis, levels ...compiler.Level) *Report {
	rep := NewReport(an.Prog.Name)
	for i, lv := range levels {
		rep.Levels = append(rep.Levels, lv)
		m := NewModel(an, lv, rep)
		m.races = i == 0
		m.walk(an.Prog.Body)
	}
	loops := map[string]bool{}
	ir.WalkStmts(an.Prog.Body, func(s ir.Stmt) {
		switch st := s.(type) {
		case *ir.ParLoop:
			loops[st.Label] = true
		case *ir.Reduce:
			loops[st.Label] = true
		}
	})
	rep.Loops = len(loops)
	return rep
}

// Verify compiles prog for the machine exactly as the runtime would
// (same shared-segment layout, same block size) and verifies it at the
// given levels; with no levels it checks all of them.
func Verify(prog *ir.Program, mc config.Machine, levels ...compiler.Level) (*Report, error) {
	if err := mc.Validate(); err != nil {
		return nil, err
	}
	sp := memory.NewSpace(mc)
	layouts := make(map[*ir.Array]sections.Layout)
	for _, arr := range prog.Arrays {
		base := sp.Alloc(arr.Name, arr.Elems()*8)
		layouts[arr] = sections.Layout{Base: base, Extents: arr.Extents, ElemSize: 8}
	}
	an, err := compiler.New(prog, mc.Nodes, layouts, mc.BlockSize)
	if err != nil {
		return nil, err
	}
	if len(levels) == 0 {
		levels = Levels()
	}
	return VerifyAnalysis(an, levels...), nil
}
