package analysis_test

import (
	"strings"
	"testing"

	"hpfdsm/internal/analysis"
	"hpfdsm/internal/compiler"
	"hpfdsm/internal/config"
	"hpfdsm/internal/ir"
	"hpfdsm/internal/lang"
	"hpfdsm/internal/memory"
	"hpfdsm/internal/sections"
)

// The fixture has one shift-read loop (send/ready_to_recv traffic) and
// one non-owner-write loop (mk_writable/flush traffic): together they
// exercise every call the contract checker reasons about.
const fixtureSrc = `
PROGRAM fixture
PARAM n = 64
REAL a(n, n), b(n, n)
DISTRIBUTE a(*, BLOCK)
DISTRIBUTE b(*, BLOCK)
FORALL (i = 1:n, j = 2:n)
  b(i, j) = a(i, j-1)
END FORALL
FORALL (i = 1:n, j = 1:n-1) ON b(i, j)
  a(i, j+1) = b(i, j)
END FORALL
END
`

func compileFixture(t *testing.T) (*compiler.Analysis, []*ir.ParLoop) {
	t.Helper()
	prog, err := lang.Parse(fixtureSrc)
	if err != nil {
		t.Fatal(err)
	}
	mc := config.Default()
	sp := memory.NewSpace(mc)
	layouts := map[*ir.Array]sections.Layout{}
	for _, arr := range prog.Arrays {
		base := sp.Alloc(arr.Name, arr.Elems()*8)
		layouts[arr] = sections.Layout{Base: base, Extents: arr.Extents, ElemSize: 8}
	}
	an, err := compiler.New(prog, mc.Nodes, layouts, mc.BlockSize)
	if err != nil {
		t.Fatal(err)
	}
	var loops []*ir.ParLoop
	for _, s := range prog.Body {
		if pl, ok := s.(*ir.ParLoop); ok {
			loops = append(loops, pl)
		}
	}
	if len(loops) != 2 {
		t.Fatalf("fixture: want 2 loops, got %d", len(loops))
	}
	return an, loops
}

// buildFixture returns a fresh model/report pair and the modeled call
// sequence of one fixture loop at OptBulk.
func buildFixture(t *testing.T, loopIdx int) (*analysis.Model, *analysis.Report, *analysis.LoopCalls) {
	t.Helper()
	an, loops := compileFixture(t)
	rep := analysis.NewReport(an.Prog.Name)
	m := analysis.NewModel(an, compiler.OptBulk, rep)
	env := map[string]int{}
	for k, v := range an.Prog.Params {
		env[k] = v
	}
	pl := loops[loopIdx]
	lc := m.BuildLoopCalls(pl, pl.Label, an.LoopRuleOf(pl), env, false)
	return m, rep, lc
}

// errorRules returns the distinct rules of the report's error
// diagnostics.
func errorRules(rep *analysis.Report) map[string]bool {
	out := map[string]bool{}
	for _, d := range rep.Diags {
		if d.Severity == analysis.Error {
			out[d.Rule] = true
		}
	}
	return out
}

// dropOps removes calls matching keep==false from every node's list.
func dropOps(lc *analysis.LoopCalls, keep func(c analysis.Call, postBody bool) bool) {
	for n := range lc.Nodes {
		var out []analysis.Call
		post := false
		for _, c := range lc.Nodes[n] {
			if c.Op == analysis.OpBody {
				post = true
			}
			if keep(c, post) {
				out = append(out, c)
			}
		}
		lc.Nodes[n] = out
	}
}

// TestContractCleanFixture: the unmutated call sequences satisfy the
// contract.
func TestContractCleanFixture(t *testing.T) {
	for idx := 0; idx < 2; idx++ {
		m, rep, lc := buildFixture(t, idx)
		m.CheckLoopCalls(lc)
		if rep.HasErrors() {
			t.Fatalf("loop %d: clean fixture produced errors:\n%s", idx, rep)
		}
		if got := rep.RulesFor(lc.Site.Loop); len(got) == 0 {
			t.Fatalf("loop %d: no rules recorded as verified", idx)
		}
	}
}

// TestContractDroppedReadyToRecv: removing the consumers' ready_to_recv
// yields exactly contract/recv-match errors, with loop provenance.
func TestContractDroppedReadyToRecv(t *testing.T) {
	m, rep, lc := buildFixture(t, 0)
	dropOps(lc, func(c analysis.Call, post bool) bool { return c.Op != analysis.OpReadyToRecv })
	m.CheckLoopCalls(lc)

	rules := errorRules(rep)
	if len(rules) != 1 || !rules[analysis.RuleRecvMatch] {
		t.Fatalf("want exactly {%s}, got %v:\n%s", analysis.RuleRecvMatch, rules, rep)
	}
	found := false
	for _, d := range rep.Diags {
		if d.Rule == analysis.RuleRecvMatch && d.Severity == analysis.Error {
			if d.Site.Loop != lc.Site.Loop {
				t.Fatalf("diagnostic lacks loop provenance: %v", d)
			}
			if !strings.Contains(d.Msg, "ready_to_recv") {
				t.Fatalf("diagnostic does not name the missing call: %v", d)
			}
			found = true
		}
	}
	if !found {
		t.Fatalf("no recv-match error:\n%s", rep)
	}
}

// TestContractUnflushedMkWritable: removing the writers' flush side
// (flush + the consumers' post-loop expect/ready) yields exactly
// contract/write-flush errors citing the array section.
func TestContractUnflushedMkWritable(t *testing.T) {
	m, rep, lc := buildFixture(t, 1)
	dropOps(lc, func(c analysis.Call, post bool) bool {
		if c.Op == analysis.OpFlush {
			return false
		}
		if post && (c.Op == analysis.OpExpect || c.Op == analysis.OpReadyToRecv) {
			return false
		}
		return true
	})
	m.CheckLoopCalls(lc)

	rules := errorRules(rep)
	if len(rules) != 1 || !rules[analysis.RuleWriteFlush] {
		t.Fatalf("want exactly {%s}, got %v:\n%s", analysis.RuleWriteFlush, rules, rep)
	}
	found := false
	for _, d := range rep.Diags {
		if d.Rule == analysis.RuleWriteFlush && d.Severity == analysis.Error {
			if d.Site.Loop != lc.Site.Loop || d.Site.Array != "A" || d.Site.Sec == "" {
				t.Fatalf("diagnostic lacks loop/section provenance: %v", d)
			}
			if !strings.Contains(d.Msg, "never flushed") {
				t.Fatalf("diagnostic does not describe the lost flush: %v", d)
			}
			found = true
		}
	}
	if !found {
		t.Fatalf("no write-flush error:\n%s", rep)
	}
	if got := rep.RulesFor(lc.Site.Loop); containsRule(got, analysis.RuleWriteFlush) {
		t.Fatalf("broken rule still reported as verified: %v", got)
	}
}

// TestContractDroppedImplicitWritable: consumers that never open frames
// trip the happens-before check for every arriving block.
func TestContractDroppedImplicitWritable(t *testing.T) {
	m, rep, lc := buildFixture(t, 0)
	dropOps(lc, func(c analysis.Call, post bool) bool { return c.Op != analysis.OpImplicitWritable })
	m.CheckLoopCalls(lc)

	rules := errorRules(rep)
	if !rules[analysis.RuleFrameOrder] {
		t.Fatalf("want %s, got %v:\n%s", analysis.RuleFrameOrder, rules, rep)
	}
}

// TestContractBarrierParity: a node skipping its closing barrier is a
// deadlock, flagged as exactly contract/barrier.
func TestContractBarrierParity(t *testing.T) {
	m, rep, lc := buildFixture(t, 0)
	// Remove node 0's last barrier only.
	last := -1
	for i, c := range lc.Nodes[0] {
		if c.Op == analysis.OpBarrier {
			last = i
		}
	}
	lc.Nodes[0] = append(lc.Nodes[0][:last:last], lc.Nodes[0][last+1:]...)
	m.CheckLoopCalls(lc)

	rules := errorRules(rep)
	if len(rules) != 1 || !rules[analysis.RuleBarrier] {
		t.Fatalf("want exactly {%s}, got %v:\n%s", analysis.RuleBarrier, rules, rep)
	}
}

// TestContractBadElision: a PRE skip whose delivered copy is no longer
// live (the walker's independent re-derivation says an intervening
// write killed it) is exactly contract/elision.
func TestContractBadElision(t *testing.T) {
	m, rep, lc := buildFixture(t, 0)
	if len(lc.Reads) == 0 {
		t.Fatal("fixture loop has no read transfers")
	}
	lc.Skipped = append(lc.Skipped, analysis.SkippedTransfer{T: lc.Reads[0], Live: false})
	m.CheckLoopCalls(lc)

	rules := errorRules(rep)
	if !rules[analysis.RuleElision] {
		t.Fatalf("want %s, got %v:\n%s", analysis.RuleElision, rules, rep)
	}
}

// TestContractAggMatrixDrift: corrupting the schedule's traffic
// matrices — the inputs the runtime's adaptive transport policy reads —
// is exactly contract/agg-matrix, and a clean run marks the rule
// verified.
func TestContractAggMatrixDrift(t *testing.T) {
	m, rep, lc := buildFixture(t, 0)
	if len(lc.Sched.Reads) == 0 {
		t.Fatal("fixture loop has no read transfers")
	}
	ref := lc.Sched.Reads[0]
	lc.Sched.ReadBytes[ref.Sender][ref.Receiver] += 1
	lc.Sched.ReadMsgs[ref.Sender][ref.Receiver] += 3
	m.CheckLoopCalls(lc)

	rules := errorRules(rep)
	if len(rules) != 1 || !rules[analysis.RuleAggMatrix] {
		t.Fatalf("want exactly {%s}, got %v:\n%s", analysis.RuleAggMatrix, rules, rep)
	}
	found := false
	for _, d := range rep.Diags {
		if d.Rule == analysis.RuleAggMatrix && d.Severity == analysis.Error {
			if d.Site.Loop != lc.Site.Loop {
				t.Fatalf("diagnostic lacks loop provenance: %v", d)
			}
			if !strings.Contains(d.Msg, "transport policy") {
				t.Fatalf("diagnostic does not explain the policy impact: %v", d)
			}
			found = true
		}
	}
	if !found {
		t.Fatalf("no agg-matrix error:\n%s", rep)
	}
	if got := rep.RulesFor(lc.Site.Loop); containsRule(got, analysis.RuleAggMatrix) {
		t.Fatalf("broken rule still reported as verified: %v", got)
	}

	// A fresh, unmutated schedule verifies the rule.
	m2, rep2, lc2 := buildFixture(t, 0)
	m2.CheckLoopCalls(lc2)
	if rep2.HasErrors() {
		t.Fatalf("clean fixture produced errors:\n%s", rep2)
	}
	if got := rep2.RulesFor(lc2.Site.Loop); !containsRule(got, analysis.RuleAggMatrix) {
		t.Fatalf("clean run did not record %s as verified: %v", analysis.RuleAggMatrix, got)
	}
}

// TestSuppressionDowngrade: Apply downgrades a matching error to Info
// with the reason attached and reports stale entries.
func TestSuppressionDowngrade(t *testing.T) {
	m, rep, lc := buildFixture(t, 0)
	dropOps(lc, func(c analysis.Call, post bool) bool { return c.Op != analysis.OpReadyToRecv })
	m.CheckLoopCalls(lc)
	if !rep.HasErrors() {
		t.Fatal("expected errors before suppression")
	}
	stale := rep.Apply([]analysis.Suppression{
		{Rule: analysis.RuleRecvMatch, Loop: lc.Site.Loop, Reason: "known seed limitation"},
		{Rule: analysis.RuleBarrier, Loop: "nosuch", Reason: "stale"},
	})
	if rep.HasErrors() {
		t.Fatalf("suppression did not downgrade errors:\n%s", rep)
	}
	if len(stale) != 1 || stale[0].Loop != "nosuch" {
		t.Fatalf("stale suppressions wrong: %v", stale)
	}
}

func containsRule(rules []string, want string) bool {
	for _, r := range rules {
		if r == want {
			return true
		}
	}
	return false
}
