// Package analysis is the static incoherence-safety verifier: it takes
// a compiled program (IR, distributions, and the per-level
// communication schedules of internal/compiler) and — without running
// the simulator — checks the Section 4.2 contract that makes it safe to
// bypass the eager-invalidate coherence protocol:
//
//   - every non-owner-write section is covered by a mk_writable whose
//     flush reaches the home before the next conflicting read,
//   - every send is matched by a ready_to_recv on the consumer with
//     identical block extents,
//   - shmem_limits results are block-aligned and within array bounds,
//   - the barrier discipline keeps frame opening ordered before data
//     arrival (a happens-before check over the emitted call sequence),
//   - OptRTElim / OptPRE never drop a call that a lower optimization
//     level proves necessary (checked by differencing the emitted call
//     sequences across levels and re-validating every elision).
//
// On top of the contract checker, an IR-level race detector flags
// overlapping writer sections and read/write overlaps inside a parallel
// loop — accesses no barrier separates — using the section-intersection
// arithmetic of internal/sections.
//
// Every diagnostic carries provenance: program, loop label, symbol
// valuation, optimization level, array, and section, so a violation
// reads as "which compiler decision went wrong", not as a raw block
// address.
package analysis

import (
	"fmt"
	"sort"
	"strings"

	"hpfdsm/internal/compiler"
	"hpfdsm/internal/sections"
)

// Severity classifies a diagnostic.
type Severity int

// Severities. Errors make hpfc -lint fail and hpfrun -verify refuse to
// simulate; warnings and infos are advisory.
const (
	Info Severity = iota
	Warn
	Error
)

func (s Severity) String() string {
	return [...]string{"info", "warning", "error"}[s]
}

// Contract and race rule identifiers. Each diagnostic cites exactly one.
const (
	RuleRecvMatch   = "contract/recv-match"   // send without matching ready_to_recv / count mismatch
	RuleSendExtent  = "contract/send-extent"  // emitted sends differ from the schedule's block extents
	RuleFrameOrder  = "contract/frame-order"  // data may arrive before the consumer opened its frame
	RuleWriteFlush  = "contract/write-flush"  // non-owner write not covered by mk_writable + flush
	RuleFlushOwner  = "contract/flush-owner"  // flush destination is not the section's home
	RuleSendOwner   = "contract/send-owner"   // read-transfer sender does not own the section
	RuleAlignment   = "contract/shmem-limits" // blocks not the block-aligned interior, or out of bounds
	RuleBarrier     = "contract/barrier"      // barrier count differs across nodes (deadlock)
	RuleElision     = "contract/elision"      // a higher level dropped a call a lower level proves necessary
	RuleAggMatrix   = "contract/agg-matrix"   // aggregation-policy traffic matrices disagree with the transfers' extents
	RuleRaceWrite   = "race/write-write"      // overlapping writer sections in one parallel loop
	RuleRaceRW      = "race/read-write"       // read/write overlap not separated by a barrier
	RuleRaceIndir   = "race/indirect"         // irregular reference: race analysis not applicable (info)
	RuleSuppression = "lint/suppression"      // a tracked suppression matched (info)
)

// Site is the provenance of a diagnostic: where in the compiled program
// the checked fact lives.
type Site struct {
	App   string         // program name
	Loop  string         // parallel loop / reduction label
	Env   string         // symbol valuation, e.g. "K=10" ("" when constant)
	Level compiler.Level // optimization level being verified
	Array string         // array involved ("" when not applicable)
	Sec   string         // array section, e.g. "(1:64,3:3)" ("" when not applicable)
}

func (s Site) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: loop %s", s.App, s.Loop)
	if s.Env != "" {
		fmt.Fprintf(&b, " [%s]", s.Env)
	}
	if s.Array != "" {
		b.WriteString(": " + s.Array + s.Sec)
	}
	return b.String()
}

// Diag is one verifier finding.
type Diag struct {
	Severity Severity
	Rule     string
	Site     Site
	Msg      string
}

func (d Diag) String() string {
	return fmt.Sprintf("%s %s: %s: %s (level %v)", d.Severity, d.Rule, d.Site, d.Msg, d.Site.Level)
}

// Suppression records a known, accepted violation: diagnostics matching
// Rule and Loop are downgraded to Info with the reason attached. Every
// suppression must carry a reason; they are printed with the report so
// nothing is silently ignored.
type Suppression struct {
	Rule   string // rule identifier, e.g. RuleRaceRW
	Loop   string // loop label the suppression applies to
	Reason string
}

// Report collects the diagnostics of one verification run together with
// the positive facts: which contract rules were checked and held, per
// loop — the invariant auditor cross-references these so a dynamic
// violation cites the static guarantee it broke.
type Report struct {
	Prog   string
	Levels []compiler.Level
	Diags  []Diag

	// verified[loop][rule] is true when the rule was checked for the
	// loop and produced no error at any verified level.
	verified map[string]map[string]bool
	// Instances counts checked (loop, valuation, level) schedule
	// instantiations.
	Instances int
	// Loops counts distinct parallel loops and reductions examined.
	Loops int
}

// NewReport returns an empty report for prog (Verify does this for
// callers; tests drive Model directly and need one too).
func NewReport(prog string) *Report {
	return &Report{Prog: prog, verified: map[string]map[string]bool{}}
}

func (r *Report) add(d Diag) { r.Diags = append(r.Diags, d) }

// markChecked records that rule ran for loop (initially assumed to
// hold; a subsequent error for the same loop+rule clears it).
func (r *Report) markChecked(loop, rule string) {
	m := r.verified[loop]
	if m == nil {
		m = map[string]bool{}
		r.verified[loop] = m
	}
	if _, ok := m[rule]; !ok {
		m[rule] = true
	}
}

func (r *Report) markBroken(loop, rule string) {
	m := r.verified[loop]
	if m == nil {
		m = map[string]bool{}
		r.verified[loop] = m
	}
	m[rule] = false
}

// RulesFor returns the contract rules that were checked and held for
// the labeled loop, sorted. Empty when the loop was never verified.
func (r *Report) RulesFor(loop string) []string {
	var out []string
	for rule, ok := range r.verified[loop] {
		if ok {
			out = append(out, rule)
		}
	}
	sort.Strings(out)
	return out
}

// Errors returns the number of error-severity diagnostics.
func (r *Report) Errors() int {
	n := 0
	for _, d := range r.Diags {
		if d.Severity == Error {
			n++
		}
	}
	return n
}

// HasErrors reports whether any hard error was found.
func (r *Report) HasErrors() bool { return r.Errors() > 0 }

// Apply downgrades diagnostics matching a suppression to Info, citing
// the reason. It returns the suppressions that matched nothing (stale
// entries a caller should prune).
func (r *Report) Apply(sups []Suppression) []Suppression {
	var stale []Suppression
	for _, s := range sups {
		hit := false
		for i := range r.Diags {
			d := &r.Diags[i]
			if d.Rule == s.Rule && d.Site.Loop == s.Loop && d.Severity == Error {
				d.Severity = Info
				d.Msg += " [suppressed: " + s.Reason + "]"
				hit = true
			}
		}
		if !hit {
			stale = append(stale, s)
		}
	}
	return stale
}

// String renders the report, diagnostics first (errors leading), then a
// one-line summary.
func (r *Report) String() string {
	var b strings.Builder
	ds := make([]Diag, len(r.Diags))
	copy(ds, r.Diags)
	sort.SliceStable(ds, func(i, j int) bool { return ds[i].Severity > ds[j].Severity })
	for _, d := range ds {
		fmt.Fprintln(&b, d)
	}
	levels := make([]string, len(r.Levels))
	for i, l := range r.Levels {
		levels[i] = l.String()
	}
	fmt.Fprintf(&b, "%s: %d loop(s), %d schedule instance(s), levels [%s]: %d error(s), %d warning(s)\n",
		r.Prog, r.Loops, r.Instances, strings.Join(levels, " "), r.Errors(), r.count(Warn))
	return b.String()
}

func (r *Report) count(s Severity) int {
	n := 0
	for _, d := range r.Diags {
		if d.Severity == s {
			n++
		}
	}
	return n
}

// secString renders a section for provenance ("" for a zero section).
func secString(sec sections.Section) string {
	if len(sec.Dims) == 0 {
		return ""
	}
	return sec.String()
}
