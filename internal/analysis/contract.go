package analysis

import (
	"fmt"
	"sort"

	"hpfdsm/internal/compiler"
	"hpfdsm/internal/protocol"
	"hpfdsm/internal/sections"
)

// blockSet is a set of coherence-block numbers.
type blockSet map[int]bool

func addRuns(s blockSet, runs []protocol.BlockRun) {
	for _, r := range runs {
		for b := r.Start; b < r.Start+r.N; b++ {
			s[b] = true
		}
	}
}

func countBlocks(runs []protocol.BlockRun) int {
	n := 0
	for _, r := range runs {
		n += r.N
	}
	return n
}

// missingFrom returns the blocks of runs not present in have, rendered
// compactly ("" when fully covered).
func missingFrom(runs []protocol.BlockRun, have blockSet) string {
	var miss []int
	for _, r := range runs {
		for b := r.Start; b < r.Start+r.N; b++ {
			if !have[b] {
				miss = append(miss, b)
			}
		}
	}
	if len(miss) == 0 {
		return ""
	}
	sort.Ints(miss)
	return fmt.Sprint(miss)
}

// arrival is a send or flush event: data landing on Dst's memory at a
// barrier phase.
type arrival struct {
	src, dst int
	phase    int
	runs     []protocol.BlockRun
	flush    bool
}

// CheckLoopCalls verifies one modeled loop instance against the Section
// 4.2 contract and advances the model's happens-before state (frame
// open phases, global barrier phase). Diagnostics go to the model's
// report; duplicates of already-reported findings are dropped there.
func (m *Model) CheckLoopCalls(lc *LoopCalls) {
	np := m.an.NP
	site := lc.Site

	diag := func(sev Severity, rule string, s Site, format string, args ...any) {
		m.addDiag(Diag{Severity: sev, Rule: rule, Site: s, Msg: fmt.Sprintf(format, args...)})
		if sev == Error {
			m.report.markBroken(s.Loop, rule)
		}
	}
	// ---- Pass 1: scan each node's call list positionally. ----
	type frameEv struct {
		node, phase int
		runs        []protocol.BlockRun
		open        bool // implicit_writable vs implicit_invalidate
	}
	var frameEvs []frameEv
	var arrivals []arrival
	barrierCount := make([]int, np)
	expectPre := make([]int, np)
	expectPost := make([]int, np)
	readyPre := make([]bool, np)
	readyPost := make([]bool, np)
	mkw := make([]blockSet, np)
	sentPre := make([]int, np)  // blocks sent to node (pre-body)
	flushIn := make([]int, np)  // blocks flushed to node
	sentSet := make([]blockSet, np)
	flushSet := make([]map[int]blockSet, np) // sender -> dst -> blocks
	for n := 0; n < np; n++ {
		mkw[n] = blockSet{}
		sentSet[n] = blockSet{}
		flushSet[n] = map[int]blockSet{}
	}
	for n := 0; n < np; n++ {
		bc := 0
		pre := true
		for _, c := range lc.Nodes[n] {
			phase := m.phase + bc
			switch c.Op {
			case OpBarrier:
				bc++
			case OpBody:
				pre = false
			case OpImplicitWritable:
				frameEvs = append(frameEvs, frameEv{n, phase, c.Blocks, true})
			case OpImplicitInvalidate:
				frameEvs = append(frameEvs, frameEv{n, phase, c.Blocks, false})
			case OpMkWritable:
				if pre {
					addRuns(mkw[n], c.Blocks)
				}
			case OpExpect:
				if pre {
					expectPre[n] += c.N
				} else {
					expectPost[n] += c.N
				}
			case OpReadyToRecv:
				if pre {
					readyPre[n] = true
				} else {
					readyPost[n] = true
				}
			case OpSend:
				arrivals = append(arrivals, arrival{n, c.Dst, phase, c.Blocks, false})
				if pre {
					sentPre[c.Dst] += countBlocks(c.Blocks)
				}
				addRuns(sentSet[c.Dst], c.Blocks)
			case OpFlush:
				arrivals = append(arrivals, arrival{n, c.Dst, phase, c.Blocks, true})
				flushIn[c.Dst] += countBlocks(c.Blocks)
				fs := flushSet[n][c.Dst]
				if fs == nil {
					fs = blockSet{}
					flushSet[n][c.Dst] = fs
				}
				addRuns(fs, c.Blocks)
			}
		}
		barrierCount[n] = bc
	}

	// ---- Barrier parity: mismatched counts deadlock the machine. ----
	m.report.markChecked(site.Loop, RuleBarrier)
	for n := 1; n < np; n++ {
		if barrierCount[n] != barrierCount[0] {
			diag(Error, RuleBarrier, site,
				"node %d reaches %d barrier(s) where node 0 reaches %d — the loop deadlocks",
				n, barrierCount[n], barrierCount[0])
		}
	}

	// ---- Happens-before: frames must open strictly before arrival. ----
	// Process frame events and arrivals in barrier-phase order; within a
	// phase, opens first (an open at the arrival's own phase is still
	// unordered with it and is flagged).
	if lc.Sched != nil {
		m.report.markChecked(site.Loop, RuleFrameOrder)
	}
	sort.SliceStable(frameEvs, func(i, j int) bool { return frameEvs[i].phase < frameEvs[j].phase })
	sort.SliceStable(arrivals, func(i, j int) bool { return arrivals[i].phase < arrivals[j].phase })
	fi := 0
	for _, a := range arrivals {
		for fi < len(frameEvs) && frameEvs[fi].phase <= a.phase {
			ev := frameEvs[fi]
			fi++
			for _, r := range ev.runs {
				for b := r.Start; b < r.Start+r.N; b++ {
					if ev.open {
						if _, ok := m.frames[ev.node][b]; !ok {
							m.frames[ev.node][b] = ev.phase
							m.bump()
						}
					} else {
						delete(m.frames[ev.node], b)
					}
				}
			}
		}
		kind := "send"
		if a.flush {
			kind = "flush"
		}
		for _, r := range a.runs {
			for b := r.Start; b < r.Start+r.N; b++ {
				open, ok := m.frames[a.dst][b]
				if !ok {
					diag(Error, RuleFrameOrder, site,
						"%s from node %d delivers block %d but node %d has no implicit_writable frame open for it — the payload would land on an invalid copy",
						kind, a.src, b, a.dst)
				} else if open >= a.phase {
					diag(Error, RuleFrameOrder, site,
						"%s from node %d delivers block %d in the same barrier phase node %d opens its frame — no barrier orders implicit_writable before the transfer",
						kind, a.src, b, a.dst)
				}
			}
		}
	}
	for ; fi < len(frameEvs); fi++ {
		ev := frameEvs[fi]
		for _, r := range ev.runs {
			for b := r.Start; b < r.Start+r.N; b++ {
				if ev.open {
					if _, ok := m.frames[ev.node][b]; !ok {
						m.frames[ev.node][b] = ev.phase
						m.bump()
					}
				} else {
					delete(m.frames[ev.node], b)
				}
			}
		}
	}

	// ---- Send extents: emitted sends vs the schedule's transfers. ----
	if len(lc.Reads) > 0 {
		m.report.markChecked(site.Loop, RuleSendExtent)
		m.report.markChecked(site.Loop, RuleRecvMatch)
		m.report.markChecked(site.Loop, RuleSendOwner)
	}
	schedTo := make([]blockSet, np)
	for n := 0; n < np; n++ {
		schedTo[n] = blockSet{}
	}
	for _, t := range lc.Reads {
		addRuns(schedTo[t.Receiver], t.Blocks)
		ts := transferSite(site, t)
		if miss := missingFrom(t.Blocks, sentSet[t.Receiver]); miss != "" {
			diag(Error, RuleSendExtent, ts,
				"scheduled transfer node %d -> node %d is not fully emitted: blocks %s are never sent",
				t.Sender, t.Receiver, miss)
		}
		// Sender must own every column of the section: at rtelim+ the
		// read-side mk_writable is elided on the assumption that the
		// sender's copy is its owned (authoritative) data.
		d := m.an.Dist(t.Array)
		cols := t.Sec.Dims[len(t.Sec.Dims)-1]
		for col := cols.Lo; col <= cols.Hi; col++ {
			if o := d.Owner(col); o != t.Sender {
				diag(Error, RuleSendOwner, ts,
					"send originates at node %d but column %d is owned by node %d — the sender's copy is not authoritative",
					t.Sender, col, o)
				break
			}
		}
	}
	for n := 0; n < np; n++ {
		var extra []int
		for b := range sentSet[n] {
			if !schedTo[n][b] {
				extra = append(extra, b)
			}
		}
		if len(extra) > 0 {
			sort.Ints(extra)
			diag(Error, RuleSendExtent, site,
				"node %d receives unscheduled blocks %v — no transfer in the schedule covers them", n, extra)
		}
	}

	// ---- Receive matching: every send needs a counted ready_to_recv. ----
	for r := 0; r < np; r++ {
		if sentPre[r] > 0 {
			if !readyPre[r] {
				diag(Error, RuleRecvMatch, site,
					"%d block(s) are sent to node %d but it never calls ready_to_recv before the loop body — the transfer is unacknowledged and the sender's next barrier can pass stale data",
					sentPre[r], r)
			} else if expectPre[r] != sentPre[r] {
				diag(Error, RuleRecvMatch, site,
					"node %d expects %d block(s) before the body but %d are sent — ready_to_recv would %s",
					r, expectPre[r], sentPre[r], stallOrRace(expectPre[r], sentPre[r]))
			}
		} else if expectPre[r] > 0 {
			diag(Error, RuleRecvMatch, site,
				"node %d expects %d block(s) before the body but nothing is sent to it — ready_to_recv stalls forever",
				r, expectPre[r])
		}
		if flushIn[r] > 0 {
			if !readyPost[r] {
				diag(Error, RuleRecvMatch, site,
					"%d flushed block(s) reach node %d but it never calls ready_to_recv after the loop — flushed updates are unacknowledged",
					flushIn[r], r)
			} else if expectPost[r] != flushIn[r] {
				diag(Error, RuleRecvMatch, site,
					"node %d expects %d flushed block(s) but %d are flushed — ready_to_recv would %s",
					r, expectPost[r], flushIn[r], stallOrRace(expectPost[r], flushIn[r]))
			}
		} else if expectPost[r] > 0 {
			diag(Error, RuleRecvMatch, site,
				"node %d expects %d flushed block(s) but nothing is flushed to it — ready_to_recv stalls forever",
				r, expectPost[r])
		}
	}

	// ---- Write coverage: mk_writable taken, flush delivered, home right. ----
	if len(lc.Writes) > 0 {
		m.report.markChecked(site.Loop, RuleWriteFlush)
		m.report.markChecked(site.Loop, RuleFlushOwner)
	}
	for _, t := range lc.Writes {
		ts := transferSite(site, t)
		if miss := missingFrom(t.Blocks, mkw[t.Sender]); miss != "" {
			diag(Error, RuleWriteFlush, ts,
				"non-owner write on node %d: blocks %s are written without a pre-loop mk_writable — the writes land on an invalid copy",
				t.Sender, miss)
		}
		if miss := missingFrom(t.Blocks, flushSet[t.Sender][t.Receiver]); miss != "" {
			diag(Error, RuleWriteFlush, ts,
				"mk_writable is taken on node %d but blocks %s are never flushed to home node %d — the updates would be lost past the closing barrier",
				t.Sender, miss, t.Receiver)
		}
		d := m.an.Dist(t.Array)
		cols := t.Sec.Dims[len(t.Sec.Dims)-1]
		for col := cols.Lo; col <= cols.Hi; col++ {
			if o := d.Owner(col); o != t.Receiver {
				diag(Error, RuleFlushOwner, ts,
					"flush targets node %d but column %d is owned by node %d — the owner keeps a stale copy",
					t.Receiver, col, o)
				break
			}
		}
	}

	// ---- shmem_limits: blocks are the aligned interior, in bounds. ----
	if lc.Sched != nil && len(lc.Reads)+len(lc.Writes) > 0 {
		m.report.markChecked(site.Loop, RuleAlignment)
	}
	for _, t := range append(append([]compiler.Transfer{}, lc.Reads...), lc.Writes...) {
		m.checkAlignment(lc, t, diag)
	}

	// ---- Aggregation policy: traffic matrices vs the transfers. ----
	// The runtime picks each pair's transport (eager / bulk / epoch
	// aggregation) from the schedule's [sender][receiver] byte and
	// message-count matrices. Recompute both independently from the
	// transfers the emission was checked against: drift would steer
	// traffic through a wire path the contract never examined.
	if lc.Sched != nil {
		m.report.markChecked(site.Loop, RuleAggMatrix)
		checkMatrices := func(ts []compiler.Transfer, bmat, mmat [][]int64, phase string) {
			bytes := make([]int64, np*np)
			msgs := make([]int64, np*np)
			for _, t := range ts {
				blocks := 0
				for _, r := range t.Blocks {
					blocks += r.N
				}
				if blocks != t.NumBlocks {
					diag(Error, RuleAggMatrix, transferSite(site, t),
						"transfer claims %d aligned block(s) but its runs cover %d",
						t.NumBlocks, blocks)
				}
				bytes[t.Sender*np+t.Receiver] += int64(blocks) * int64(m.an.BlockSize)
				msgs[t.Sender*np+t.Receiver] += int64(len(t.Blocks))
			}
			for s := 0; s < np; s++ {
				for r := 0; r < np; r++ {
					var gb, gm int64
					if s < len(bmat) && r < len(bmat[s]) {
						gb, gm = bmat[s][r], mmat[s][r]
					}
					if gb != bytes[s*np+r] || gm != msgs[s*np+r] {
						diag(Error, RuleAggMatrix, site,
							"%s matrix cell %d->%d records %dB over %d message(s) but the transfers sum to %dB over %d — the adaptive transport policy would be steered by traffic the schedule does not emit",
							phase, s, r, gb, gm, bytes[s*np+r], msgs[s*np+r])
					}
				}
			}
		}
		checkMatrices(lc.Sched.Reads, lc.Sched.ReadBytes, lc.Sched.ReadMsgs, "read")
		checkMatrices(lc.Sched.Writes, lc.Sched.WriteBytes, lc.Sched.WriteMsgs, "write")
	}

	// ---- PRE elisions: every skip re-validated independently. ----
	if len(lc.Skipped) > 0 {
		m.report.markChecked(site.Loop, RuleElision)
	}
	for _, sk := range lc.Skipped {
		if !sk.Live {
			diag(Error, RuleElision, transferSite(site, sk.T),
				"OptPRE drops the transfer node %d -> node %d, but the previously delivered copy was invalidated by an intervening write to %s (or never delivered) — a lower level proves the transfer necessary",
				sk.T.Sender, sk.T.Receiver, sk.T.Array.Name)
		}
	}

	m.phase += barrierCount[0]
	m.report.Instances++
}

func stallOrRace(expect, sent int) string {
	if expect > sent {
		return "stall forever"
	}
	return "return before all data arrived"
}

func transferSite(base Site, t compiler.Transfer) Site {
	base.Array = t.Array.Name
	base.Sec = secString(t.Sec)
	return base
}

// checkAlignment recomputes shmem_limits for a transfer's section and
// compares: the transfer's blocks must be exactly the block-aligned
// interior of the section, within the array's allocation, with the edge
// byte count accounting for the remainder.
func (m *Model) checkAlignment(lc *LoopCalls, t compiler.Transfer, diag func(Severity, string, Site, string, ...any)) {
	ts := transferSite(lc.Site, t)
	lay := m.an.Layouts[t.Array]
	bs := m.an.BlockSize
	runs := sections.CoalesceRuns(lay.Runs(t.Sec))
	total := 0
	for _, r := range runs {
		total += r.Bytes
	}
	aligned := sections.BlockAlign(runs, bs)
	alignedBytes := 0
	want := blockSet{}
	for _, br := range sections.RunsToBlocks(aligned, bs) {
		alignedBytes += br[1] * bs
		for b := br[0]; b < br[0]+br[1]; b++ {
			want[b] = true
		}
	}
	got := blockSet{}
	addRuns(got, t.Blocks)
	if len(got) != len(want) || missingFrom(t.Blocks, want) != "" {
		diag(Error, RuleAlignment, ts,
			"transfer carries %d block(s) but the block-aligned interior of the section has %d — shmem_limits shrink is wrong",
			len(got), len(want))
	}
	if t.EdgeBytes != total-alignedBytes {
		diag(Error, RuleAlignment, ts,
			"edge accounting: section is %dB with a %dB aligned interior, but the transfer claims %dB of edges",
			total, alignedBytes, t.EdgeBytes)
	}
	lo := lay.Base / bs
	hi := (lay.Base + lay.SizeBytes() + bs - 1) / bs
	for _, r := range t.Blocks {
		if r.Start < lo || r.Start+r.N > hi {
			diag(Error, RuleAlignment, ts,
				"blocks [%d,%d) fall outside the array's allocation (blocks [%d,%d))",
				r.Start, r.Start+r.N, lo, hi)
		}
	}
}
