package analysis_test

import (
	"testing"

	"hpfdsm/internal/analysis"
	"hpfdsm/internal/config"
	"hpfdsm/internal/lang"
)

func verifySrc(t *testing.T, src string) *analysis.Report {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := analysis.Verify(prog, config.Default(), analysis.Levels()...)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// countRule counts diagnostics of a rule at a severity.
func countRule(rep *analysis.Report, rule string, sev analysis.Severity) int {
	n := 0
	for _, d := range rep.Diags {
		if d.Rule == rule && d.Severity == sev {
			n++
		}
	}
	return n
}

// TestRaceReadWriteOverlap: an in-place sweep reads its own output
// array at a shifted subscript — iterations are not independent and no
// barrier separates them.
func TestRaceReadWriteOverlap(t *testing.T) {
	rep := verifySrc(t, `
PROGRAM gaussseidel
PARAM n = 64
REAL a(n, n)
DISTRIBUTE a(*, BLOCK)
FORALL (i = 1:n, j = 1:n-1)
  a(i, j) = a(i, j+1)
END FORALL
END
`)
	if countRule(rep, analysis.RuleRaceRW, analysis.Error) == 0 {
		t.Fatalf("in-place shifted sweep not flagged:\n%s", rep)
	}
	var hit bool
	for _, d := range rep.Diags {
		if d.Rule == analysis.RuleRaceRW && d.Severity == analysis.Error {
			if d.Site.Array != "A" || d.Site.Sec == "" || d.Site.Loop == "" {
				t.Fatalf("race diagnostic lacks provenance: %v", d)
			}
			hit = true
		}
	}
	if !hit {
		t.Fatal("no read-write race diagnostic")
	}
	// The schedules themselves honor the communication contract — the
	// bug is in the program, not the compiler.
	for _, d := range rep.Diags {
		if d.Severity == analysis.Error && d.Rule != analysis.RuleRaceRW {
			t.Fatalf("unexpected extra error: %v", d)
		}
	}
}

// TestRaceWriteWriteOverlap: two statements writing overlapping
// sections of the same array in one parallel loop.
func TestRaceWriteWriteOverlap(t *testing.T) {
	rep := verifySrc(t, `
PROGRAM wwrace
PARAM n = 64
REAL a(n, n), b(n, n)
DISTRIBUTE a(*, BLOCK)
DISTRIBUTE b(*, BLOCK)
FORALL (i = 1:n, j = 1:n-1)
  a(i, j) = b(i, j)
  a(i, j+1) = b(i, j)
END FORALL
END
`)
	if countRule(rep, analysis.RuleRaceWrite, analysis.Error) == 0 {
		t.Fatalf("overlapping writers not flagged:\n%s", rep)
	}
}

// TestRaceWriteIgnoresDistVar: a write whose subscripts do not involve
// the distributed loop variable is stormed by every executing
// processor.
func TestRaceWriteIgnoresDistVar(t *testing.T) {
	rep := verifySrc(t, `
PROGRAM colstorm
PARAM n = 64
REAL a(n, n), b(n, n)
DISTRIBUTE a(*, BLOCK)
DISTRIBUTE b(*, BLOCK)
FORALL (i = 1:n, j = 1:n) ON b(i, j)
  a(i, 1) = b(i, j)
END FORALL
END
`)
	if countRule(rep, analysis.RuleRaceWrite, analysis.Error) == 0 {
		t.Fatalf("distvar-free write not flagged:\n%s", rep)
	}
}

// TestRaceCleanTwoArraySweep: the textbook two-array stencil has no
// races and no contract errors at any level.
func TestRaceCleanTwoArraySweep(t *testing.T) {
	rep := verifySrc(t, `
PROGRAM clean
PARAM n = 64
REAL a(n, n), b(n, n)
DISTRIBUTE a(*, BLOCK)
DISTRIBUTE b(*, BLOCK)
DO t = 1, 3
  FORALL (i = 2:n-1, j = 2:n-1)
    b(i, j) = 0.25 * (a(i-1, j) + a(i+1, j) + a(i, j-1) + a(i, j+1))
  END FORALL
  FORALL (i = 2:n-1, j = 2:n-1)
    a(i, j) = b(i, j)
  END FORALL
END DO
END
`)
	if rep.HasErrors() {
		t.Fatalf("clean stencil flagged:\n%s", rep)
	}
}
