package analysis

import (
	"fmt"
	"strings"

	"hpfdsm/internal/compiler"
	"hpfdsm/internal/protocol"
)

// Op identifies one run-time call of the Section 4.2 sequence (plus the
// OpBody marker separating a loop's pre- and post-communication).
type Op int

// Call kinds, in the order the executor emits them around a loop.
const (
	OpMkWritable Op = iota
	OpImplicitWritable
	OpExpect
	OpSend
	OpReadyToRecv
	OpBody
	OpFlush
	OpImplicitInvalidate
	OpBarrier
)

func (o Op) String() string {
	return [...]string{"mk_writable", "implicit_writable", "expect", "send",
		"ready_to_recv", "<body>", "flush", "implicit_invalidate", "barrier"}[o]
}

// Call is one modeled run-time call on one node.
type Call struct {
	Op     Op
	Node   int
	Dst    int                 // Send / Flush destination
	Blocks []protocol.BlockRun // block operand
	N      int                 // Expect block count
}

func (c Call) String() string {
	switch c.Op {
	case OpSend, OpFlush:
		return fmt.Sprintf("%v -> node %d %v", c.Op, c.Dst, c.Blocks)
	case OpExpect:
		return fmt.Sprintf("%v %d", c.Op, c.N)
	case OpMkWritable, OpImplicitWritable, OpImplicitInvalidate:
		return fmt.Sprintf("%v %v", c.Op, c.Blocks)
	default:
		return c.Op.String()
	}
}

// SkippedTransfer records a transfer a higher optimization level
// elided, with the walker's independently derived judgement of whether
// the elision was sound at that point (Live: the previously delivered
// copy is still valid — no intervening write to the array).
type SkippedTransfer struct {
	T    compiler.Transfer
	Live bool
}

// LoopCalls is the modeled call sequence of one loop instance: per
// node, the run-time calls in program order, plus the (PRE-filtered)
// transfers the sequence implements and the transfers that were elided.
type LoopCalls struct {
	Key      any
	Site     Site
	Sched    *compiler.Schedule  // nil at OptNone
	Reads    []compiler.Transfer // active read transfers (after filtering)
	Writes   []compiler.Transfer // active write transfers
	Skipped  []SkippedTransfer   // transfers elided by OptPRE
	IsReduce bool
	Nodes    [][]Call
}

// transferKey identifies a transfer's delivered content, mirroring the
// executor's PRE key: array, section, receiver.
func transferKey(t compiler.Transfer) string {
	return fmt.Sprintf("%s|%v|>%d", t.Array.Name, t.Sec, t.Receiver)
}

// sigOf renders a rule's symbol valuation for provenance ("" when the
// schedule is constant).
func sigOf(rule *compiler.LoopRule, env map[string]int) string {
	if len(rule.UsedSym) == 0 {
		return ""
	}
	parts := make([]string, len(rule.UsedSym))
	for i, v := range rule.UsedSym {
		parts[i] = fmt.Sprintf("%s=%d", v, env[v])
	}
	return strings.Join(parts, ",")
}

// BuildLoopCalls models the executor's communication emission for one
// loop (or reduction) instance at the model's optimization level: the
// exact mk_writable / implicit_writable / expect / send / ready_to_recv
// / flush / implicit_invalidate / barrier sequence each node would run,
// including run-time elimination's call and barrier elisions and PRE's
// transfer skips. The model state (persistent frames, delivered
// sections, last schedule per loop) advances exactly as the replicated
// executor state would.
func (m *Model) BuildLoopCalls(key any, label string, rule *compiler.LoopRule, env map[string]int, isReduce bool) *LoopCalls {
	np := m.an.NP
	lc := &LoopCalls{
		Key:      key,
		IsReduce: isReduce,
		Nodes:    make([][]Call, np),
		Site: Site{
			App:   m.an.Prog.Name,
			Loop:  label,
			Env:   sigOf(rule, env),
			Level: m.level,
		},
	}
	add := func(n int, c Call) {
		c.Node = n
		lc.Nodes[n] = append(lc.Nodes[n], c)
	}

	if m.level == compiler.OptNone {
		// Default protocol only: the loop body bracketed by its closing
		// barrier (a reduction's AllReduce plays the same role).
		for n := 0; n < np; n++ {
			add(n, Call{Op: OpBody})
			add(n, Call{Op: OpBarrier})
		}
		return lc
	}

	sched := m.an.Schedule(key, rule, env)
	lc.Sched = sched
	sameSched := m.lastSched[key] == sched
	m.lastSched[key] = sched
	rtElim := m.level >= compiler.OptRTElim

	// PRE filtering, replicated (node-independent), mirroring the
	// executor's active(): a redundant transfer is skipped once its
	// section has been delivered; all-edge transfers (no block-aligned
	// interior) emit no calls at all.
	filter := func(ts []compiler.Transfer) []compiler.Transfer {
		var out []compiler.Transfer
		for _, t := range ts {
			if t.NumBlocks == 0 {
				continue
			}
			tk := transferKey(t)
			if m.level >= compiler.OptPRE && t.Redundant && m.delivered[tk] {
				lc.Skipped = append(lc.Skipped, SkippedTransfer{T: t, Live: m.live[tk]})
				continue
			}
			if !m.delivered[tk] {
				m.delivered[tk] = true
				m.bump()
			}
			out = append(out, t)
		}
		return out
	}
	reads := filter(sched.Reads)
	writes := filter(sched.Writes)
	lc.Reads, lc.Writes = reads, writes

	if len(reads)+len(writes) > 0 {
		for n := 0; n < np; n++ {
			var sendOut, takeOut, recvIn, flushIn []protocol.BlockRun
			recvBlocks := 0
			for _, t := range reads {
				if t.Sender == n {
					sendOut = append(sendOut, t.Blocks...)
				}
				if t.Receiver == n {
					recvIn = append(recvIn, t.Blocks...)
					recvBlocks += t.NumBlocks
				}
			}
			for _, t := range writes {
				if t.Sender == n {
					takeOut = append(takeOut, t.Blocks...)
				}
				if t.Receiver == n {
					flushIn = append(flushIn, t.Blocks...)
				}
			}
			// Step 1: senders and non-owner writers take blocks writable;
			// run-time elimination drops the read-side call (the owner
			// already holds its blocks) but never the write-side one.
			if !rtElim && len(sendOut) > 0 {
				add(n, Call{Op: OpMkWritable, Blocks: sendOut})
			}
			if len(takeOut) > 0 {
				add(n, Call{Op: OpMkWritable, Blocks: takeOut})
			}
			if !rtElim || len(writes) > 0 {
				add(n, Call{Op: OpBarrier})
			}
			// Step 2: receivers open frames; flush targets likewise.
			if len(recvIn) > 0 {
				add(n, Call{Op: OpImplicitWritable, Blocks: recvIn})
			}
			if len(flushIn) > 0 {
				add(n, Call{Op: OpImplicitWritable, Blocks: flushIn})
			}
			if recvBlocks > 0 {
				add(n, Call{Op: OpExpect, N: recvBlocks})
			}
			// Both sides ready before the transfer; a repeat of the
			// identical schedule under run-time elimination skips this
			// barrier (the frames persist).
			if !rtElim || !sameSched {
				add(n, Call{Op: OpBarrier})
			}
			for _, t := range reads {
				if t.Sender == n {
					add(n, Call{Op: OpSend, Dst: t.Receiver, Blocks: t.Blocks})
				}
			}
			if recvBlocks > 0 {
				add(n, Call{Op: OpReadyToRecv})
			}
		}
	}

	for n := 0; n < np; n++ {
		add(n, Call{Op: OpBody})
	}

	for n := 0; n < np; n++ {
		flushInCount := 0
		for _, t := range writes {
			if t.Receiver == n {
				flushInCount += t.NumBlocks
			}
		}
		if isReduce {
			// The AllReduce synchronizes before the post-loop sequence.
			add(n, Call{Op: OpBarrier})
		}
		for _, t := range writes {
			if t.Sender == n && t.NumBlocks > 0 {
				add(n, Call{Op: OpFlush, Dst: t.Receiver, Blocks: t.Blocks})
			}
		}
		if !isReduce {
			add(n, Call{Op: OpBarrier}) // the loop's closing barrier
		}
		if flushInCount > 0 {
			add(n, Call{Op: OpExpect, N: flushInCount})
			add(n, Call{Op: OpReadyToRecv})
		}
		// Readers re-invalidate their frames so the directory's belief
		// holds again; eliminated under the whole-program assumptions.
		if !rtElim && len(sched.Reads) > 0 {
			var recvIn []protocol.BlockRun
			for _, t := range sched.Reads {
				if t.Receiver == n {
					recvIn = append(recvIn, t.Blocks...)
				}
			}
			if len(recvIn) > 0 {
				add(n, Call{Op: OpImplicitInvalidate, Blocks: recvIn})
			}
			add(n, Call{Op: OpBarrier})
		}
	}
	return lc
}
