package analysis

import (
	"fmt"
	"strings"

	"hpfdsm/internal/compiler"
	"hpfdsm/internal/ir"
	"hpfdsm/internal/sections"
)

// access is one bounded array access of a parallel loop body.
type access struct {
	ref   ir.ArrayRef
	sec   sections.Section
	subs  string // canonical subscript-vector text
	write bool
	stmt  int // body statement index, for provenance
}

// subsKey canonicalizes a reference's subscript vector: two accesses
// with identical vectors touch the same element in the same iteration,
// which the sequential body orders — not a race.
func subsKey(r ir.ArrayRef) string {
	parts := make([]string, len(r.Subs))
	for i, s := range r.Subs {
		parts[i] = s.String()
	}
	return strings.Join(parts, ",")
}

// boundRef bounds a reference over the loop's iteration space, clipped
// to the array extents. ok is false when the access space is empty.
func boundRef(r ir.ArrayRef, ranges map[string][2]int, env map[string]int) (sections.Section, bool) {
	sec := sections.Section{Dims: make([]sections.Dim, len(r.Subs))}
	for d, sub := range r.Subs {
		lo, hi := compiler.EvalRange(sub, ranges, env)
		if lo < 1 {
			lo = 1
		}
		if hi > r.Array.Extents[d] {
			hi = r.Array.Extents[d]
		}
		if lo > hi {
			return sec, false
		}
		sec.Dims[d] = sections.Dim{Lo: lo, Hi: hi}
	}
	return sec, true
}

// CheckRaces runs the IR-level happens-before analysis for one loop
// instance: inside a parallel loop no barrier separates iterations, so
// any overlap between writer sections on different processors, or
// between a write and a read of different elements, is unordered. The
// concurrency structure comes from the work partition: only the
// distributed loop variable spreads iterations across processors;
// loops partitioned to a single processor run their iterations
// sequentially.
func (m *Model) CheckRaces(key any, rule *compiler.LoopRule, env map[string]int, site Site, body []*ir.Assign, reduceExpr ir.Expr) {
	diag := func(sev Severity, ruleID string, s Site, format string, args ...any) {
		m.addDiag(Diag{Severity: sev, Rule: ruleID, Site: s, Msg: fmt.Sprintf(format, args...)})
		if sev == Error {
			m.report.markBroken(s.Loop, ruleID)
		}
	}

	for _, arr := range rule.IndirectArrays {
		s := site
		s.Array = arr.Name
		diag(Info, RuleRaceIndir, s,
			"irregular subscript: section analysis does not apply; the reference stays with the default coherence protocol")
	}

	ranges := m.an.VarRanges(rule, env)
	pt := m.an.Partition(key, rule, env)
	procs := 0
	for p := 0; p < m.an.NP; p++ {
		if pt.Executes(p) {
			procs++
		}
	}
	concurrent := rule.DistVar != "" && procs > 1

	var accs []access
	addRef := func(r ir.ArrayRef, write bool, stmt int) {
		sec, ok := boundRef(r, ranges, env)
		if !ok {
			return
		}
		accs = append(accs, access{ref: r, sec: sec, subs: subsKey(r), write: write, stmt: stmt})
	}
	for i, as := range body {
		addRef(as.LHS, true, i)
		for _, r := range ir.Refs(as.RHS) {
			addRef(r, false, i)
		}
	}
	if reduceExpr != nil {
		for _, r := range ir.Refs(reduceExpr) {
			addRef(r, false, 0)
		}
	}

	m.report.markChecked(site.Loop, RuleRaceWrite)
	m.report.markChecked(site.Loop, RuleRaceRW)

	// A write whose last subscript ignores the distributed variable is
	// executed by every owning processor of the anchor — the same
	// elements are stormed from all sides.
	if concurrent {
		for _, a := range accs {
			if !a.write {
				continue
			}
			last := a.ref.Subs[len(a.ref.Subs)-1]
			if last.Coef(rule.DistVar) == 0 {
				s := site
				s.Array = a.ref.Array.Name
				s.Sec = secString(a.sec)
				diag(Error, RuleRaceWrite, s,
					"the write's subscripts do not involve the distributed variable %s: every executing processor writes the same section concurrently",
					rule.DistVar)
			}
		}
	}

	for i := 0; i < len(accs); i++ {
		for j := i + 1; j < len(accs); j++ {
			a, b := accs[i], accs[j]
			if a.ref.Array != b.ref.Array || (!a.write && !b.write) {
				continue
			}
			if a.subs == b.subs {
				continue // same element, same iteration: body order applies
			}
			ov := sections.Intersect(a.sec, b.sec)
			if ov.Empty() {
				continue
			}
			s := site
			s.Array = a.ref.Array.Name
			s.Sec = secString(ov)
			sev := Error
			if !concurrent {
				sev = Warn // sequential execution orders it, but iteration-order dependences defeat the FORALL contract
			}
			if a.write && b.write {
				diag(sev, RuleRaceWrite, s,
					"writes %s%v and %s%v overlap on %s — no barrier separates iterations of a parallel loop",
					a.ref.Array.Name, subsText(a.ref), b.ref.Array.Name, subsText(b.ref), secString(ov))
			} else {
				w, r := a, b
				if !w.write {
					w, r = b, a
				}
				diag(sev, RuleRaceRW, s,
					"the loop writes %s%v while reading %s%v: the overlap %s is read and written with no separating barrier — iterations are not independent",
					w.ref.Array.Name, subsText(w.ref), r.ref.Array.Name, subsText(r.ref), secString(ov))
			}
		}
	}
}

func subsText(r ir.ArrayRef) string {
	return "(" + subsKey(r) + ")"
}
