// Benchmark-regression harness. `make bench` (via paperbench -bench)
// runs a short, fixed suite of simulator benchmarks with
// testing.Benchmark and writes BENCH_<n>.json: ns/op, allocs/op and
// the *simulated* milliseconds of each experiment. Successive files
// record the repository's perf trajectory; the sim-ms fields double as
// a bit-identity witness, because any optimization that changes the
// modeled machine (rather than the simulator implementing it) shows up
// as a sim-ms diff between two BENCH files.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	goruntime "runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"hpfdsm/internal/apps"
	"hpfdsm/internal/compiler"
	"hpfdsm/internal/config"
	"hpfdsm/internal/runtime"
)

// Entry is one benchmark's outcome.
type Entry struct {
	Name        string             `json:"name"`
	N           int                `json:"n"`
	NsPerOp     int64              `json:"ns_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report is the BENCH_<n>.json payload.
type Report struct {
	Schema     string  `json:"schema"`
	GoVersion  string  `json:"go_version"`
	GOOS       string  `json:"goos"`
	GOARCH     string  `json:"goarch"`
	NumCPU     int     `json:"num_cpu"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	Workers    int     `json:"suite_workers"`
	Entries    []Entry `json:"entries"`
}

// regressionBenchmarks is the fixed short suite. Names are stable
// across BENCH files so runs can be compared entry-by-entry.
func regressionBenchmarks() []struct {
	name string
	fn   func(b *testing.B)
} {
	fig3 := func(app string) func(b *testing.B) {
		return func(b *testing.B) {
			a, err := apps.ByName(app)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			var uni, opt *runtime.Result
			for i := 0; i < b.N; i++ {
				uni, err = RunApp(a, a.ScaledParams, Variant{Nodes: 1, CPUMode: config.DualCPU, Opt: compiler.OptNone})
				if err != nil {
					b.Fatal(err)
				}
				opt, err = RunApp(a, a.ScaledParams, Variant{Nodes: 8, CPUMode: config.DualCPU, Opt: compiler.OptRTElim})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(ms(opt.Elapsed), "sim-ms")
			b.ReportMetric(float64(opt.Stats.TotalMisses()), "misses")
			b.ReportMetric(float64(opt.Stats.TotalMessages()), "msgs")
			b.ReportMetric(float64(opt.Stats.TotalBytes()), "wire-bytes")
			b.ReportMetric(float64(uni.Elapsed)/float64(opt.Elapsed), "speedup-8n")
		}
	}
	return []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"ckpt-overhead", func(b *testing.B) {
			// Fault-free run with the checkpoint machinery armed but no
			// crashes configured: capture happens outside virtual time,
			// so the simulated schedule must not move AT ALL relative to
			// the plain run — asserted here, and the reported sim-ms is
			// drift-gated across BENCH files like every other entry.
			a, err := apps.ByName("jacobi")
			if err != nil {
				b.Fatal(err)
			}
			prog, err := a.Program(a.ScaledParams)
			if err != nil {
				b.Fatal(err)
			}
			mc := config.Default()
			b.ReportAllocs()
			b.ResetTimer()
			var plain, ck *runtime.Result
			for i := 0; i < b.N; i++ {
				plain, err = runtime.Run(prog, runtime.Options{Machine: mc, Opt: compiler.OptRTElim})
				if err != nil {
					b.Fatal(err)
				}
				ck, err = runtime.Run(prog, runtime.Options{Machine: mc, Opt: compiler.OptRTElim, Checkpoint: true})
				if err != nil {
					b.Fatal(err)
				}
			}
			if ck.Elapsed != plain.Elapsed || ck.Stats.TotalMessages() != plain.Stats.TotalMessages() {
				b.Fatalf("checkpointing perturbed the fault-free run: elapsed %d vs %d, msgs %d vs %d",
					ck.Elapsed, plain.Elapsed, ck.Stats.TotalMessages(), plain.Stats.TotalMessages())
			}
			b.ReportMetric(ms(ck.Elapsed), "sim-ms")
			b.ReportMetric(float64(ck.Stats.TotalMessages()), "msgs")
			b.ReportMetric(float64(ck.CheckpointsTaken), "ckpts")
			b.ReportMetric(float64(ck.CheckpointBytes)/1024, "ckpt-kb")
		}},
		{"crash-jacobi", func(b *testing.B) {
			// One crash-stop failure with checkpoint/restart recovery:
			// records the recovery path's simulated cost trajectory (the
			// deterministic sim makes sim-ms and the recovery accounting
			// exact across runs, so they are drift-gated too).
			a, err := apps.ByName("jacobi")
			if err != nil {
				b.Fatal(err)
			}
			prog, err := a.Program(a.ScaledParams)
			if err != nil {
				b.Fatal(err)
			}
			mc := config.Default().WithFaults(config.Faults{
				Crashes: []config.CrashSpec{{Node: 2, Epoch: 5}}})
			b.ReportAllocs()
			b.ResetTimer()
			var res *runtime.Result
			for i := 0; i < b.N; i++ {
				res, err = runtime.Run(prog, runtime.Options{Machine: mc, Opt: compiler.OptRTElim})
				if err != nil {
					b.Fatal(err)
				}
			}
			if res.Recoveries != 1 {
				b.Fatalf("expected one recovery, got %d", res.Recoveries)
			}
			b.ReportMetric(ms(res.Elapsed), "sim-ms")
			b.ReportMetric(float64(res.Stats.TotalMessages()), "msgs")
			b.ReportMetric(ms(res.RecoveryTime), "recovery-ms")
			b.ReportMetric(float64(res.CheckpointsTaken), "ckpts")
		}},
		{"readmiss", func(b *testing.B) {
			b.ReportAllocs()
			var stall int64
			for i := 0; i < b.N; i++ {
				stall = MeasureReadMiss()
			}
			b.ReportMetric(float64(stall)/1e3, "us-miss")
		}},
		{"fig3-jacobi", fig3("jacobi")},
		{"fig3-lu", fig3("lu")},
		{"pdes-lu", func(b *testing.B) {
			// Conservative-PDES gate. The timed loop is the real -pdes 4
			// path — the engine the speedup claim rests on — so its
			// ns/op, allocs/op, and sim-ms track the parallel engine's
			// overhead trajectory across BENCH files (on a 1-CPU host
			// the engine runs its inline path; same events, same
			// allocation profile, no barrier). Untimed, every partition
			// count is REQUIRED to be bit-identical to the sequential
			// run; wall-clock speedups are reported and gated by
			// bench-check only against a baseline recorded on a host
			// with the same CPU count.
			a, err := apps.ByName("lu")
			if err != nil {
				b.Fatal(err)
			}
			prog, err := a.Program(a.ScaledParams)
			if err != nil {
				b.Fatal(err)
			}
			mc := config.Default()
			run := func(parts int) *runtime.Result {
				res, err := runtime.Run(prog, runtime.Options{
					Machine: mc, Opt: compiler.OptRTElim, Partitions: parts})
				if err != nil {
					b.Fatal(err)
				}
				return res
			}
			b.ReportAllocs()
			b.ResetTimer()
			var par4 *runtime.Result
			for i := 0; i < b.N; i++ {
				par4 = run(4)
			}
			b.StopTimer()
			seq := run(1)
			if par4.Elapsed != seq.Elapsed {
				b.Fatalf("pdes 4-partition timed run diverged from sequential: elapsed %d vs %d",
					par4.Elapsed, seq.Elapsed)
			}
			wall := func(parts int) time.Duration {
				best := time.Duration(0)
				for rep := 0; rep < 3; rep++ {
					t0 := time.Now()
					run(parts)
					if d := time.Since(t0); best == 0 || d < best {
						best = d
					}
				}
				return best
			}
			seqWall := wall(1)
			for _, parts := range []int{2, 4, 8} {
				res := run(parts)
				if res.Elapsed != seq.Elapsed ||
					res.Stats.TotalMisses() != seq.Stats.TotalMisses() ||
					res.Stats.TotalMessages() != seq.Stats.TotalMessages() ||
					res.Stats.TotalBytes() != seq.Stats.TotalBytes() {
					b.Fatalf("pdes %d-partition run diverged from sequential: elapsed %d vs %d, misses %d vs %d, msgs %d vs %d, bytes %d vs %d",
						parts, res.Elapsed, seq.Elapsed,
						res.Stats.TotalMisses(), seq.Stats.TotalMisses(),
						res.Stats.TotalMessages(), seq.Stats.TotalMessages(),
						res.Stats.TotalBytes(), seq.Stats.TotalBytes())
				}
				b.ReportMetric(float64(seqWall)/float64(wall(parts)),
					fmt.Sprintf("speedup-p%d", parts))
			}
			b.ReportMetric(ms(seq.Elapsed), "sim-ms")
			b.ReportMetric(float64(seq.Stats.TotalMisses()), "misses")
			b.ReportMetric(float64(seq.Stats.TotalMessages()), "msgs")
			b.ReportMetric(float64(seq.Stats.TotalBytes()), "wire-bytes")
			// Engine census of the timed 4-partition run: window
			// executions and barrier releases actually paid. On a
			// single-core host the inline path pays zero handoffs;
			// informational (not drift-gated — the split depends on the
			// host's core count).
			b.ReportMetric(float64(par4.PDESWindows), "pdes-windows")
			b.ReportMetric(float64(par4.PDESHandoffs), "pdes-handoffs")
		}},
		{"scale-sync", func(b *testing.B) {
			// Hierarchical-coherence gate: the full N x {flat, tree}
			// microbenchmark sweep. The sweep itself enforces the
			// contract (tree reductions bit-identical to flat at every
			// N); here its totals become drift witnesses, and the
			// N=1024 barrier latencies record the O(N) vs O(log N)
			// separation as informational metrics.
			b.ReportAllocs()
			var cells []ScaleCell
			var err error
			for i := 0; i < b.N; i++ {
				cells, err = ScaleSweep(1)
				if err != nil {
					b.Fatal(err)
				}
			}
			var total float64
			var msgs, bytes int64
			for _, c := range cells {
				total += ms(c.Barrier) + ms(c.Reduce) + ms(c.InvalLat)
				msgs += c.SyncMsgs + c.InvalMsgs
				bytes += c.SyncBytes + c.InvalBytes
				if c.Nodes == 1024 {
					key := "bar-us-flat-1024"
					if c.Topo == config.TreeTopo {
						key = "bar-us-tree-1024"
					}
					b.ReportMetric(us(c.Barrier), key)
				}
			}
			b.ReportMetric(total, "sim-ms")
			b.ReportMetric(float64(msgs), "msgs")
			b.ReportMetric(float64(bytes), "wire-bytes")
		}},
		{"scale-app64", func(b *testing.B) {
			// One real program at 64 nodes on both topologies: the pair
			// run fails unless every checked array is bit-identical, and
			// the tree side's simulated quantities are drift-gated.
			b.ReportAllocs()
			var flat, tree *runtime.Result
			var err error
			for i := 0; i < b.N; i++ {
				flat, tree, err = scaleAppPair("jacobi", 64, Scaled, 1)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(ms(tree.Elapsed), "sim-ms")
			b.ReportMetric(float64(tree.Stats.TotalMessages()), "msgs")
			b.ReportMetric(float64(tree.Stats.TotalBytes()), "wire-bytes")
			b.ReportMetric(float64(flat.Elapsed)/float64(tree.Elapsed), "speedup-tree")
		}},
		{"suite-scaled", func(b *testing.B) {
			b.ReportAllocs()
			var suite *SuiteResults
			var err error
			for i := 0; i < b.N; i++ {
				suite, err = RunSuite(Scaled, 8, nil)
				if err != nil {
					b.Fatal(err)
				}
			}
			// Sum of simulated time over the whole (app, variant)
			// grid: one number that witnesses bit-identity of all 54
			// experiments at once.
			var total float64
			var misses, msgs, bytes int64
			for _, app := range AppNames() {
				for _, v := range Variants(8) {
					r := suite.Get(app, v.Key)
					total += ms(r.Elapsed)
					misses += r.Stats.TotalMisses()
					msgs += r.Stats.TotalMessages()
					bytes += r.Stats.TotalBytes()
				}
			}
			b.ReportMetric(total, "sim-ms")
			b.ReportMetric(float64(misses), "misses")
			b.ReportMetric(float64(msgs), "msgs")
			b.ReportMetric(float64(bytes), "wire-bytes")
		}},
	}
}

// RunRegression runs the fixed suite and assembles the report,
// logging one line per benchmark to w (which may be nil).
func RunRegression(w io.Writer) *Report {
	rep := &Report{
		Schema:     "hpfdsm-bench/1",
		GoVersion:  goruntime.Version(),
		GOOS:       goruntime.GOOS,
		GOARCH:     goruntime.GOARCH,
		NumCPU:     goruntime.NumCPU(),
		GOMAXPROCS: goruntime.GOMAXPROCS(0),
		Workers:    SuiteWorkers,
	}
	for _, bm := range regressionBenchmarks() {
		r := testing.Benchmark(bm.fn)
		e := Entry{
			Name:        bm.name,
			N:           r.N,
			NsPerOp:     r.NsPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		if len(r.Extra) > 0 {
			e.Metrics = map[string]float64{}
			for k, v := range r.Extra {
				e.Metrics[k] = v
			}
		}
		rep.Entries = append(rep.Entries, e)
		if w != nil {
			fmt.Fprintf(w, "bench %-14s %12d ns/op %9d allocs/op", e.Name, e.NsPerOp, e.AllocsPerOp)
			for _, k := range sortedKeys(e.Metrics) {
				fmt.Fprintf(w, "  %s=%.4g", k, e.Metrics[k])
			}
			fmt.Fprintln(w)
		}
	}
	return rep
}

// WriteJSON serializes the report.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadReport loads a BENCH_<n>.json.
func ReadReport(r io.Reader) (*Report, error) {
	var rep Report
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return nil, err
	}
	return &rep, nil
}

// Compare checks cur against a baseline: every entry present in both
// whose ns/op or allocated bytes/op grew by more than factor is a
// regression. It also flags drift in the simulated quantities — sim-ms,
// msgs, and wire-bytes — which means the *model* changed, not just the
// simulator: a deliberate model change (a new protocol layer) must
// record a fresh BENCH baseline rather than slide past the gate.
// Returns human-readable violations (empty = pass). Skip notes from
// CompareWithNotes are dropped; callers that must surface them (the
// bench-check gate) use CompareWithNotes directly.
func Compare(baseline, cur *Report, factor float64) []string {
	bad, _ := CompareWithNotes(baseline, cur, factor)
	return bad
}

// CompareWithNotes is Compare plus the wall-clock speedup gate and its
// audit trail. speedup-* metrics are host-dependent ratios, so they
// are gated — the current value must stay above baseline/factor — only
// when both reports were recorded on hosts with the same CPU count;
// a mismatched host yields a note (never a silent pass), so a CI
// migration that quietly stops checking multicore speedup shows up in
// the gate's output.
func CompareWithNotes(baseline, cur *Report, factor float64) (bad, notes []string) {
	old := map[string]Entry{}
	for _, e := range baseline.Entries {
		old[e.Name] = e
	}
	for _, e := range cur.Entries {
		o, ok := old[e.Name]
		if !ok {
			continue
		}
		if o.NsPerOp > 0 && float64(e.NsPerOp) > factor*float64(o.NsPerOp) {
			bad = append(bad, fmt.Sprintf("%s: %d ns/op vs baseline %d (> %.1fx)",
				e.Name, e.NsPerOp, o.NsPerOp, factor))
		}
		if o.BytesPerOp > 0 && float64(e.BytesPerOp) > factor*float64(o.BytesPerOp) {
			bad = append(bad, fmt.Sprintf("%s: %d alloc bytes/op vs baseline %d (> %.1fx)",
				e.Name, e.BytesPerOp, o.BytesPerOp, factor))
		}
		for _, k := range []string{"sim-ms", "msgs", "wire-bytes"} {
			if o.Metrics[k] != 0 && e.Metrics[k] != o.Metrics[k] {
				bad = append(bad, fmt.Sprintf("%s: %s %.6g vs baseline %.6g (simulated results drifted)",
					e.Name, k, e.Metrics[k], o.Metrics[k]))
			}
		}
		for _, k := range sortedKeys(e.Metrics) {
			if !strings.HasPrefix(k, "speedup-") || o.Metrics[k] == 0 {
				continue
			}
			if baseline.NumCPU != cur.NumCPU {
				notes = append(notes, fmt.Sprintf("%s: %s gate skipped (baseline host has %d CPU(s), this host %d)",
					e.Name, k, baseline.NumCPU, cur.NumCPU))
				continue
			}
			if e.Metrics[k] < o.Metrics[k]/factor {
				bad = append(bad, fmt.Sprintf("%s: %s %.3f vs baseline %.3f (< 1/%.1fx, same %d-CPU host class)",
					e.Name, k, e.Metrics[k], o.Metrics[k], factor, cur.NumCPU))
			}
		}
	}
	sort.Strings(bad)
	sort.Strings(notes)
	return bad, notes
}
