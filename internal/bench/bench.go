// Package bench is the experiment harness: it reruns the paper's
// evaluation — Figure 1, Tables 1-3, Figure 4, plus the PRE and
// block-size ablations — on the simulated cluster and formats the same
// rows and series the paper reports. cmd/paperbench drives it from the
// command line; the repository's benchmarks reuse it.
package bench

import (
	"fmt"
	"io"
	"sort"

	"hpfdsm/internal/apps"
	"hpfdsm/internal/compiler"
	"hpfdsm/internal/config"
	"hpfdsm/internal/runtime"
	"hpfdsm/internal/sim"
)

// Sizing selects the problem sizes for suite experiments.
type Sizing int

// Sizings.
const (
	// Bench sizes run the full sweep in minutes.
	Bench Sizing = iota
	// Paper sizes match Table 2 (slow: tens of minutes).
	Paper
	// Scaled sizes are the small test configurations.
	Scaled
)

// ParamsFor returns an app's parameters under a sizing.
func ParamsFor(a *apps.App, s Sizing) map[string]int {
	switch s {
	case Paper:
		return a.PaperParams
	case Scaled:
		return a.ScaledParams
	default:
		return a.BenchParams
	}
}

// Variant is one machine/optimization configuration of the sweep.
type Variant struct {
	Key     string
	Nodes   int
	CPUMode config.CPUMode
	Opt     compiler.Level
	Backend runtime.Backend
}

// Variants returns the full paper sweep: a uniprocessor baseline,
// unoptimized and optimized shared memory on both CPU configurations,
// the intermediate optimization levels (for Figure 4), PRE, and the
// message-passing baseline.
func Variants(nodes int) []Variant {
	return []Variant{
		{Key: "uni", Nodes: 1, CPUMode: config.DualCPU, Opt: compiler.OptNone},
		{Key: "unopt-single", Nodes: nodes, CPUMode: config.SingleCPU, Opt: compiler.OptNone},
		{Key: "unopt-dual", Nodes: nodes, CPUMode: config.DualCPU, Opt: compiler.OptNone},
		{Key: "base-dual", Nodes: nodes, CPUMode: config.DualCPU, Opt: compiler.OptBase},
		{Key: "bulk-dual", Nodes: nodes, CPUMode: config.DualCPU, Opt: compiler.OptBulk},
		{Key: "opt-single", Nodes: nodes, CPUMode: config.SingleCPU, Opt: compiler.OptRTElim},
		{Key: "opt-dual", Nodes: nodes, CPUMode: config.DualCPU, Opt: compiler.OptRTElim},
		{Key: "pre-dual", Nodes: nodes, CPUMode: config.DualCPU, Opt: compiler.OptPRE},
		{Key: "mp", Nodes: nodes, CPUMode: config.DualCPU, Backend: runtime.MessagePassing},
	}
}

// RunApp executes one app under one variant.
func RunApp(a *apps.App, params map[string]int, v Variant) (*runtime.Result, error) {
	prog, err := a.Program(params)
	if err != nil {
		return nil, err
	}
	mc := config.Default().WithNodes(v.Nodes).WithCPUMode(v.CPUMode)
	return runtime.Run(prog, runtime.Options{Machine: mc, Opt: v.Opt, Backend: v.Backend})
}

// SuiteResults holds one result per (app, variant key).
type SuiteResults struct {
	Sizing  Sizing
	Results map[string]map[string]*runtime.Result
}

// Get returns the result for an app/variant pair.
func (s *SuiteResults) Get(app, key string) *runtime.Result {
	return s.Results[app][key]
}

// RunSuite runs every app under every variant, logging progress to w
// (which may be nil).
func RunSuite(sizing Sizing, nodes int, w io.Writer) (*SuiteResults, error) {
	out := &SuiteResults{Sizing: sizing, Results: map[string]map[string]*runtime.Result{}}
	for _, a := range apps.All() {
		out.Results[a.Name] = map[string]*runtime.Result{}
		params := ParamsFor(a, sizing)
		for _, v := range Variants(nodes) {
			if w != nil {
				fmt.Fprintf(w, "running %-8s %-13s ... ", a.Name, v.Key)
			}
			res, err := RunApp(a, params, v)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", a.Name, v.Key, err)
			}
			out.Results[a.Name][v.Key] = res
			if w != nil {
				fmt.Fprintf(w, "%8.2f ms, %7d misses\n", ms(res.Elapsed), res.Stats.TotalMisses())
			}
		}
	}
	return out, nil
}

// AppNames returns the suite's app names in Table 2 order.
func AppNames() []string {
	var names []string
	for _, a := range apps.All() {
		names = append(names, a.Name)
	}
	return names
}

func ms(t sim.Time) float64 { return float64(t) / 1e6 }

func sortedKeys[V any](m map[string]V) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
