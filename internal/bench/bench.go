// Package bench is the experiment harness: it reruns the paper's
// evaluation — Figure 1, Tables 1-3, Figure 4, plus the PRE and
// block-size ablations — on the simulated cluster and formats the same
// rows and series the paper reports. cmd/paperbench drives it from the
// command line; the repository's benchmarks reuse it.
package bench

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"hpfdsm/internal/apps"
	"hpfdsm/internal/compiler"
	"hpfdsm/internal/config"
	"hpfdsm/internal/runtime"
	"hpfdsm/internal/sim"
)

// Sizing selects the problem sizes for suite experiments.
type Sizing int

// Sizings.
const (
	// Bench sizes run the full sweep in minutes.
	Bench Sizing = iota
	// Paper sizes match Table 2 (slow: tens of minutes).
	Paper
	// Scaled sizes are the small test configurations.
	Scaled
)

// ParamsFor returns an app's parameters under a sizing.
func ParamsFor(a *apps.App, s Sizing) map[string]int {
	switch s {
	case Paper:
		return a.PaperParams
	case Scaled:
		return a.ScaledParams
	default:
		return a.BenchParams
	}
}

// Variant is one machine/optimization configuration of the sweep.
type Variant struct {
	Key     string
	Nodes   int
	CPUMode config.CPUMode
	Opt     compiler.Level
	Backend runtime.Backend
}

// Variants returns the full paper sweep: a uniprocessor baseline,
// unoptimized and optimized shared memory on both CPU configurations,
// the intermediate optimization levels (for Figure 4), PRE, and the
// message-passing baseline.
func Variants(nodes int) []Variant {
	return []Variant{
		{Key: "uni", Nodes: 1, CPUMode: config.DualCPU, Opt: compiler.OptNone},
		{Key: "unopt-single", Nodes: nodes, CPUMode: config.SingleCPU, Opt: compiler.OptNone},
		{Key: "unopt-dual", Nodes: nodes, CPUMode: config.DualCPU, Opt: compiler.OptNone},
		{Key: "base-dual", Nodes: nodes, CPUMode: config.DualCPU, Opt: compiler.OptBase},
		{Key: "bulk-dual", Nodes: nodes, CPUMode: config.DualCPU, Opt: compiler.OptBulk},
		{Key: "opt-single", Nodes: nodes, CPUMode: config.SingleCPU, Opt: compiler.OptRTElim},
		{Key: "opt-dual", Nodes: nodes, CPUMode: config.DualCPU, Opt: compiler.OptRTElim},
		{Key: "pre-dual", Nodes: nodes, CPUMode: config.DualCPU, Opt: compiler.OptPRE},
		{Key: "mp", Nodes: nodes, CPUMode: config.DualCPU, Backend: runtime.MessagePassing},
	}
}

// SuiteWorkers bounds how many independent simulations RunSuite and
// the grid experiments may run concurrently. Each sim.Env is fully
// self-contained, so runs only share the (read-only, internally
// locked) compiled-program caches. 1 = serial.
var SuiteWorkers = 1

// forEachLimit runs f(0)..f(n-1) on at most `workers` goroutines and
// returns the lowest-index error. With workers <= 1 it runs inline, in
// order — the streaming path the CLIs use by default. Results must be
// written to per-index storage by f; output ordering is the caller's
// job (grid experiments collect first, then print rows in grid order,
// so parallel output is byte-identical to serial).
func forEachLimit(n, workers int, f func(int) error) error {
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			if err := f(i); err != nil {
				return err
			}
		}
		return nil
	}
	if workers > n {
		workers = n
	}
	idx := make(chan int)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				errs[i] = f(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Partitions selects the conservative-PDES partition count for RunApp
// simulations (the -pdes flag). Values <= 1 keep the sequential event
// loop. Message-passing variants always run sequentially: the MP
// backend models send/receive outside the window scheduler's
// lookahead analysis, and the runtime would reject the combination.
var Partitions = 1

// RunApp executes one app under one variant.
func RunApp(a *apps.App, params map[string]int, v Variant) (*runtime.Result, error) {
	prog, err := a.Program(params)
	if err != nil {
		return nil, err
	}
	mc := config.Default().WithNodes(v.Nodes).WithCPUMode(v.CPUMode)
	opts := runtime.Options{Machine: mc, Opt: v.Opt, Backend: v.Backend}
	if Partitions > 1 && v.Backend != runtime.MessagePassing {
		opts.Partitions = Partitions
	}
	return runtime.Run(prog, opts)
}

// SuiteResults holds one result per (app, variant key).
type SuiteResults struct {
	Sizing  Sizing
	Results map[string]map[string]*runtime.Result
}

// Get returns the result for an app/variant pair.
func (s *SuiteResults) Get(app, key string) *runtime.Result {
	return s.Results[app][key]
}

// RunSuite runs every app under every variant, logging progress to w
// (which may be nil). With SuiteWorkers > 1 the (app, variant) grid
// runs on a bounded worker pool; results and log lines still come out
// in grid order, identical to the serial run.
func RunSuite(sizing Sizing, nodes int, w io.Writer) (*SuiteResults, error) {
	type job struct {
		a *apps.App
		v Variant
	}
	var jobs []job
	out := &SuiteResults{Sizing: sizing, Results: map[string]map[string]*runtime.Result{}}
	for _, a := range apps.All() {
		out.Results[a.Name] = map[string]*runtime.Result{}
		for _, v := range Variants(nodes) {
			jobs = append(jobs, job{a, v})
		}
	}
	workers := SuiteWorkers
	streaming := workers <= 1 && w != nil
	results := make([]*runtime.Result, len(jobs))
	err := forEachLimit(len(jobs), workers, func(i int) error {
		j := jobs[i]
		if streaming {
			fmt.Fprintf(w, "running %-8s %-13s ... ", j.a.Name, j.v.Key)
		}
		res, err := RunApp(j.a, ParamsFor(j.a, sizing), j.v)
		if err != nil {
			if streaming {
				fmt.Fprintln(w, "error")
			}
			return fmt.Errorf("%s/%s: %w", j.a.Name, j.v.Key, err)
		}
		results[i] = res
		if streaming {
			fmt.Fprintf(w, "%8.2f ms, %7d misses\n", ms(res.Elapsed), res.Stats.TotalMisses())
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, j := range jobs {
		out.Results[j.a.Name][j.v.Key] = results[i]
		if w != nil && !streaming {
			fmt.Fprintf(w, "running %-8s %-13s ... %8.2f ms, %7d misses\n",
				j.a.Name, j.v.Key, ms(results[i].Elapsed), results[i].Stats.TotalMisses())
		}
	}
	return out, nil
}

// AppNames returns the suite's app names in Table 2 order.
func AppNames() []string {
	var names []string
	for _, a := range apps.All() {
		names = append(names, a.Name)
	}
	return names
}

func ms(t sim.Time) float64 { return float64(t) / 1e6 }

func sortedKeys[V any](m map[string]V) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
