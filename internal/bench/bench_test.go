package bench

import (
	"bytes"
	"strings"
	"testing"

	"hpfdsm/internal/apps"
)

func TestParamsFor(t *testing.T) {
	a, _ := apps.ByName("jacobi")
	if ParamsFor(a, Paper)["N"] != 2048 {
		t.Fatal("paper params wrong")
	}
	if ParamsFor(a, Scaled)["N"] != 128 {
		t.Fatal("scaled params wrong")
	}
	if ParamsFor(a, Bench)["N"] != 512 {
		t.Fatal("bench params wrong")
	}
}

func TestVariantsCoverPaperConfigs(t *testing.T) {
	vs := Variants(8)
	keys := map[string]bool{}
	for _, v := range vs {
		keys[v.Key] = true
	}
	for _, want := range []string{"uni", "unopt-single", "unopt-dual", "base-dual",
		"bulk-dual", "opt-single", "opt-dual", "pre-dual", "mp"} {
		if !keys[want] {
			t.Fatalf("variant %s missing", want)
		}
	}
	if vs[0].Nodes != 1 {
		t.Fatal("uni variant must be 1 node")
	}
}

func TestTable1Renders(t *testing.T) {
	out := Table1()
	for _, want := range []string{"40.0 us", "20 MB/s", "Read-miss"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table1 missing %q:\n%s", want, out)
		}
	}
}

func TestFig1ShowsEightVsOne(t *testing.T) {
	out := Fig1()
	if !strings.Contains(out, "7.8 messages") && !strings.Contains(out, "8.0 messages") {
		t.Fatalf("default protocol message count unexpected:\n%s", out)
	}
	if !strings.Contains(out, "1.0 messages") {
		t.Fatalf("compiler-directed message count unexpected:\n%s", out)
	}
}

func TestTable2Renders(t *testing.T) {
	out := Table2(Scaled)
	for _, name := range AppNames() {
		if !strings.Contains(out, name) {
			t.Fatalf("Table2 missing %s", name)
		}
	}
}

func TestSuiteSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("suite sweep is slow")
	}
	// A 2-node scaled sweep of one app exercises the full plumbing.
	a, _ := apps.ByName("cg")
	for _, v := range Variants(2) {
		res, err := RunApp(a, a.ScaledParams, v)
		if err != nil {
			t.Fatalf("%s: %v", v.Key, err)
		}
		if res.Elapsed <= 0 {
			t.Fatalf("%s: no elapsed time", v.Key)
		}
	}
}

// TestExperimentsRenderAtScaledSize exercises the full experiment
// formatting pipeline on a small cluster.
func TestExperimentsRenderAtScaledSize(t *testing.T) {
	if testing.Short() {
		t.Skip("suite sweep is slow")
	}
	suite, err := RunSuite(Scaled, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	for name, out := range map[string]string{
		"fig3":   Fig3(suite),
		"table3": Table3(suite),
		"fig4":   Fig4(suite),
		"pre":    PRE(suite),
	} {
		for _, app := range AppNames() {
			if !strings.Contains(out, app) {
				t.Errorf("%s missing %s:\n%s", name, app, out)
			}
		}
	}
	// Speedups must be positive and bounded.
	for _, app := range AppNames() {
		uni := suite.Get(app, "uni")
		opt := suite.Get(app, "opt-dual")
		s := float64(uni.Elapsed) / float64(opt.Elapsed)
		if s <= 0 || s > 8.5 {
			t.Errorf("%s: implausible speedup %.2f", app, s)
		}
	}
}

// TestParallelSuiteMatchesSerial is the correctness statement for the
// sweep pool: a concurrent sweep must produce bit-identical statistics
// and log output to the serial one. Run under -race it also checks the
// pool and the shared compiled-program caches for data races.
func TestParallelSuiteMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("suite sweep is slow")
	}
	old := SuiteWorkers
	defer func() { SuiteWorkers = old }()

	SuiteWorkers = 1
	var serialLog bytes.Buffer
	serial, err := RunSuite(Scaled, 2, &serialLog)
	if err != nil {
		t.Fatal(err)
	}
	SuiteWorkers = 4
	var parLog bytes.Buffer
	par, err := RunSuite(Scaled, 2, &parLog)
	if err != nil {
		t.Fatal(err)
	}

	for _, app := range AppNames() {
		for _, v := range Variants(2) {
			s, p := serial.Get(app, v.Key), par.Get(app, v.Key)
			if s.Elapsed != p.Elapsed {
				t.Errorf("%s/%s: elapsed %d (serial) != %d (parallel)", app, v.Key, s.Elapsed, p.Elapsed)
			}
			if s.Stats.TotalMisses() != p.Stats.TotalMisses() ||
				s.Stats.TotalMessages() != p.Stats.TotalMessages() ||
				s.Stats.TotalBytes() != p.Stats.TotalBytes() {
				t.Errorf("%s/%s: stats diverge: serial (%d misses, %d msgs, %d B) vs parallel (%d, %d, %d)",
					app, v.Key,
					s.Stats.TotalMisses(), s.Stats.TotalMessages(), s.Stats.TotalBytes(),
					p.Stats.TotalMisses(), p.Stats.TotalMessages(), p.Stats.TotalBytes())
			}
		}
	}
	if serialLog.String() != parLog.String() {
		t.Errorf("log output diverges:\nserial:\n%s\nparallel:\n%s", serialLog.String(), parLog.String())
	}
}

func TestAblationExperimentsRender(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	for name, f := range map[string]func(Sizing) (string, error){
		"blocksize":    BlockSize,
		"prefetch":     Prefetch,
		"consistency":  Consistency,
		"distribution": Distribution,
		"irregular":    Irregular,
	} {
		out, err := f(Scaled)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(out) < 50 {
			t.Fatalf("%s: suspiciously short output %q", name, out)
		}
	}
}

// The wall-clock speedup gate compares hosts, not simulations, so it
// only fires when the baseline and current reports come from the same
// CPU-count class — and a mismatch must leave an audit note, never a
// silent pass.
func TestCompareSpeedupGate(t *testing.T) {
	entry := func(speedup float64) []Entry {
		return []Entry{{
			Name:    "pdes-lu",
			NsPerOp: 100,
			Metrics: map[string]float64{"speedup-p4": speedup, "sim-ms": 5},
		}}
	}
	base := &Report{NumCPU: 4, Entries: entry(2.0)}

	// Same host class, speedup collapsed past the factor: regression.
	bad, notes := CompareWithNotes(base, &Report{NumCPU: 4, Entries: entry(0.5)}, 2.0)
	if len(bad) != 1 || !strings.Contains(bad[0], "speedup-p4") {
		t.Fatalf("collapsed speedup on matching host not flagged: bad=%v", bad)
	}
	if len(notes) != 0 {
		t.Fatalf("unexpected notes on matching host: %v", notes)
	}

	// Same host class, speedup within the factor: clean pass.
	bad, notes = CompareWithNotes(base, &Report{NumCPU: 4, Entries: entry(1.5)}, 2.0)
	if len(bad) != 0 || len(notes) != 0 {
		t.Fatalf("healthy speedup flagged: bad=%v notes=%v", bad, notes)
	}

	// Mismatched CPU count: the gate must skip WITH a note.
	bad, notes = CompareWithNotes(base, &Report{NumCPU: 1, Entries: entry(0.5)}, 2.0)
	if len(bad) != 0 {
		t.Fatalf("speedup gated across host classes: %v", bad)
	}
	if len(notes) != 1 || !strings.Contains(notes[0], "skipped") {
		t.Fatalf("cross-host skip left no audit note: %v", notes)
	}
}
