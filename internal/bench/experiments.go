package bench

import (
	"fmt"
	"strings"

	"hpfdsm/internal/apps"
	"hpfdsm/internal/compiler"
	"hpfdsm/internal/config"
	"hpfdsm/internal/lang"
	"hpfdsm/internal/memory"
	"hpfdsm/internal/network"
	"hpfdsm/internal/protocol"
	"hpfdsm/internal/runtime"
	"hpfdsm/internal/sim"
	"hpfdsm/internal/tempest"
	"hpfdsm/internal/trace"
)

// Fig1 reproduces Figure 1's point with a microbenchmark: the number
// of protocol messages one steady-state producer->consumer block
// transfer costs under the default protocol (8: read-request,
// put-data-request, put-data-response, read-response, write-request,
// invalidation, acknowledgement, write-grant) versus under
// compiler-directed transfer (1 tagged data message).
func Fig1() string {
	var b strings.Builder
	b.WriteString("Figure 1: messages per producer->consumer block transfer\n\n")

	iters := 10
	defaultMsgs := fig1Default(iters, nil)
	ccMsgs := fig1CC(iters)
	fmt.Fprintf(&b, "  default invalidation protocol : %.1f messages/transfer (paper: 8)\n", defaultMsgs)
	fmt.Fprintf(&b, "  compiler-directed (send)      : %.1f messages/transfer (paper: 1 + amortized sync)\n", ccMsgs)
	return b.String()
}

// Fig1Trace runs the default-protocol microbenchmark with the causal
// tracer attached and returns the trace: node 0 produces, node 1
// consumes, node 2 is the home, so every iteration exercises the full
// 8-message chain of Figure 1(a). Used by `paperbench -exp fig1
// -trace-out=...` and by the golden trace tests.
func Fig1Trace(iters int) *trace.Tracer {
	tr := trace.New(3)
	tr.KindName = func(k uint8) string { return protocol.MsgKindName(network.Kind(k)) }
	fig1Default(iters, tr)
	return tr
}

// fig1Default measures steady-state messages per transfer when a
// producer rewrites and a consumer rereads one block through the
// default protocol (home on a third node). tr, when non-nil, records
// the run's causal trace.
func fig1Default(iters int, tr *trace.Tracer) float64 {
	mc := config.Default().WithNodes(3)
	sp := memory.NewSpace(mc)
	base := sp.Alloc("x", 4*mc.PageSize)
	c := tempest.NewCluster(sim.NewEnv(), sp)
	protocol.Attach(c)
	if tr != nil {
		tr.Heat.AddArray("x", base/mc.BlockSize, 4*mc.PageSize/mc.BlockSize)
		c.SetTracer(tr)
	}
	addr := base + 2*mc.PageSize // homed at node 2

	c.Env.Spawn("producer", func(p *sim.Proc) {
		n := c.Nodes[0]
		for i := 0; i < iters; i++ {
			n.StoreF64(p, addr, float64(i))
			c.Barrier(p, n)
			c.Barrier(p, n)
		}
	})
	c.Env.Spawn("consumer", func(p *sim.Proc) {
		n := c.Nodes[1]
		for i := 0; i < iters; i++ {
			c.Barrier(p, n)
			n.LoadF64(p, addr)
			c.Barrier(p, n)
		}
	})
	c.Env.Spawn("home", func(p *sim.Proc) {
		n := c.Nodes[2]
		for i := 0; i < 2*iters; i++ {
			c.Barrier(p, n)
		}
	})
	if err := c.Env.Run(); err != nil {
		panic(err)
	}
	barrierMsgs := int64(2*iters) * 4 // 3-node barrier: 2 arrive + 2 release
	return float64(c.Stats.TotalMessages()-barrierMsgs) / float64(iters)
}

// fig1CC measures the same transfer under compiler control in steady
// state (frames set up once, then one tagged message per iteration).
func fig1CC(iters int) float64 {
	mc := config.Default().WithNodes(3)
	sp := memory.NewSpace(mc)
	base := sp.Alloc("x", 4*mc.PageSize)
	c := tempest.NewCluster(sim.NewEnv(), sp)
	pr := protocol.Attach(c)
	addr := base + 2*mc.PageSize
	run := []protocol.BlockRun{{Start: addr / mc.BlockSize, N: 1}}

	var afterSetup int64
	c.Env.Spawn("producer", func(p *sim.Proc) {
		n := c.Nodes[0]
		x := pr.Node(0)
		x.MkWritable(p, run)
		c.Barrier(p, n)
		c.Barrier(p, n)
		afterSetup = c.Stats.TotalMessages()
		for i := 0; i < iters; i++ {
			n.StoreF64(p, addr, float64(i))
			x.SendBlocks(p, 1, run, protocol.SendBulk)
			c.Barrier(p, n)
		}
	})
	c.Env.Spawn("consumer", func(p *sim.Proc) {
		n := c.Nodes[1]
		x := pr.Node(1)
		c.Barrier(p, n)
		x.ImplicitWritable(p, run, true)
		c.Barrier(p, n)
		for i := 0; i < iters; i++ {
			x.ExpectBlocks(1)
			x.ReadyToRecv(p)
			n.Mem.ReadF64(addr)
			c.Barrier(p, n)
		}
	})
	c.Env.Spawn("home", func(p *sim.Proc) {
		n := c.Nodes[2]
		for i := 0; i < 2+iters; i++ {
			c.Barrier(p, n)
		}
	})
	if err := c.Env.Run(); err != nil {
		panic(err)
	}
	barrierMsgs := int64(iters) * 4
	return float64(c.Stats.TotalMessages()-afterSetup-barrierMsgs) / float64(iters)
}

// Table1 prints the simulated cluster configuration alongside the
// measured short-message round trip and read-miss time.
func Table1() string {
	mc := config.Default()
	var b strings.Builder
	b.WriteString("Table 1: cluster configuration\n\n")
	fmt.Fprintf(&b, "  %-55s %v\n", "Processors per node (compute + protocol)", "2 (dual-cpu mode)")
	fmt.Fprintf(&b, "  %-55s %d\n", "Nodes", mc.Nodes)
	fmt.Fprintf(&b, "  %-55s %d bytes\n", "Coherence block", mc.BlockSize)
	rt := 2 * (mc.SendOver + mc.MsgTime(4) + mc.RecvOver)
	fmt.Fprintf(&b, "  %-55s %.1f us (paper: 40)\n", "Min roundtrip latency, 4-byte message", us(rt))
	fmt.Fprintf(&b, "  %-55s %.0f MB/s (paper: 20)\n", "Network bandwidth", 1000.0/float64(mc.NsPerByte))
	fmt.Fprintf(&b, "  %-55s %.1f us (paper: 93)\n", "Read-miss time, 128-byte block (2 cpu), measured", us(MeasureReadMiss()))
	return b.String()
}

// MeasureReadMiss runs the Table 1 read-miss microbenchmark: a remote
// read of a 128-byte block whose data is in home memory, on a warm
// page.
func MeasureReadMiss() sim.Time {
	mc := config.Default().WithNodes(2)
	sp := memory.NewSpace(mc)
	base := sp.Alloc("x", mc.PageSize)
	c := tempest.NewCluster(sim.NewEnv(), sp)
	protocol.Attach(c)
	var stall sim.Time
	c.Env.Spawn("reader", func(p *sim.Proc) {
		c.Nodes[1].LoadF64(p, base) // warm the page mapping
		t0 := p.Now()
		c.Nodes[1].LoadF64(p, base+int(mc.BlockSize))
		stall = p.Now() - t0
	})
	if err := c.Env.Run(); err != nil {
		panic(err)
	}
	return stall
}

// Table2 prints the application suite with measured memory footprints.
func Table2(sizing Sizing) string {
	var b strings.Builder
	b.WriteString("Table 2: application suite\n\n")
	fmt.Fprintf(&b, "  %-9s %-45s %12s %10s\n", "App", "Problem size (paper)", "Paper MB", "Run MB")
	for _, a := range apps.All() {
		fmt.Fprintf(&b, "  %-9s %-45s %12.1f %10.1f\n",
			a.Name, a.PaperProblem, a.PaperMemMB, a.MemMB(ParamsFor(a, sizing)))
	}
	b.WriteString("\n  (shallow/pde used 32-bit reals in 1997; this build uses float64)\n")
	return b.String()
}

// Fig3 prints the speedup chart data: speedup over the uniprocessor
// run for each configuration.
func Fig3(s *SuiteResults) string {
	var b strings.Builder
	b.WriteString("Figure 3: speedups on 8 nodes (relative to 1-node run)\n\n")
	cols := []string{"unopt-single", "unopt-dual", "opt-single", "opt-dual", "mp"}
	fmt.Fprintf(&b, "  %-9s", "App")
	for _, c := range cols {
		fmt.Fprintf(&b, " %13s", c)
	}
	b.WriteString("\n")
	for _, name := range AppNames() {
		uni := float64(s.Get(name, "uni").Elapsed)
		fmt.Fprintf(&b, "  %-9s", name)
		for _, c := range cols {
			fmt.Fprintf(&b, " %12.2fx", uni/float64(s.Get(name, c).Elapsed))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Table3 prints the timing breakdown and miss counts: compute time,
// unoptimized communication time (dual and single CPU) with the
// percentage reduction achieved by the optimizations, and per-node
// miss counts with their reduction.
func Table3(s *SuiteResults) string {
	var b strings.Builder
	b.WriteString("Table 3: reduction in miss count and communication time\n\n")
	fmt.Fprintf(&b, "  %-9s %9s | %10s %7s | %10s %7s | %9s %7s\n",
		"App", "Compute", "Comm dual", "%red", "Comm 1cpu", "%red", "Miss/node", "%red")
	for _, name := range AppNames() {
		ud := s.Get(name, "unopt-dual")
		us1 := s.Get(name, "unopt-single")
		od := s.Get(name, "opt-dual")
		os1 := s.Get(name, "opt-single")
		commUD, commOD := ud.Stats.AvgCommTime(), od.Stats.AvgCommTime()
		commUS, commOS := us1.Stats.AvgCommTime(), os1.Stats.AvgCommTime()
		missU, missO := ud.Stats.AvgMissesPerNode(), od.Stats.AvgMissesPerNode()
		fmt.Fprintf(&b, "  %-9s %7.1fms | %8.1fms %6.1f%% | %8.1fms %6.1f%% | %9.1f %6.1f%%\n",
			name, ms(ud.Stats.AvgComputeTime()),
			ms(commUD), pctRed(commUD, commOD),
			ms(commUS), pctRed(commUS, commOS),
			missU, 100*(1-missO/missU))
	}
	return b.String()
}

// Fig4 prints the ablation of Figure 4: percentage reduction in total
// execution time relative to the unoptimized run, for base
// optimizations, +bulk transfer, and +run-time overhead elimination
// (dual-CPU).
func Fig4(s *SuiteResults) string {
	var b strings.Builder
	b.WriteString("Figure 4: benefits of bulk transfer and run-time overhead elimination\n")
	b.WriteString("(percent reduction in execution time vs unoptimized, dual-cpu)\n\n")
	fmt.Fprintf(&b, "  %-9s %10s %10s %10s\n", "App", "base", "+bulk", "+rtelim")
	for _, name := range AppNames() {
		u := float64(s.Get(name, "unopt-dual").Elapsed)
		row := func(key string) float64 { return 100 * (1 - float64(s.Get(name, key).Elapsed)/u) }
		fmt.Fprintf(&b, "  %-9s %9.1f%% %9.1f%% %9.1f%%\n",
			name, row("base-dual"), row("bulk-dual"), row("opt-dual"))
	}
	return b.String()
}

// PRE prints the redundant-communication-elimination extension's
// effect (Section 4.3 / future work in the paper).
func PRE(s *SuiteResults) string {
	var b strings.Builder
	b.WriteString("PRE extension: redundant communication elimination (vs rtelim, dual-cpu)\n\n")
	fmt.Fprintf(&b, "  %-9s %12s %12s %10s %12s %12s\n", "App", "rtelim", "pre", "time red", "msgs rtelim", "msgs pre")
	for _, name := range AppNames() {
		rte := s.Get(name, "opt-dual")
		pre := s.Get(name, "pre-dual")
		fmt.Fprintf(&b, "  %-9s %10.2fms %10.2fms %9.1f%% %12d %12d\n",
			name, ms(rte.Elapsed), ms(pre.Elapsed),
			100*(1-float64(pre.Elapsed)/float64(rte.Elapsed)),
			rte.Stats.TotalMessages(), pre.Stats.TotalMessages())
	}
	return b.String()
}

// Network sweeps interconnect bandwidth, a what-if the paper's
// conclusion motivates ("most emerging commercial parallel systems
// will provide fine-grain shared memory"): as the network speeds up,
// the unoptimized protocol's software overheads dominate and the
// compiler-directed transfers' advantage narrows but persists.
func Network(sizing Sizing) (string, error) {
	a, err := apps.ByName("jacobi")
	if err != nil {
		return "", err
	}
	params := ParamsFor(a, sizing)
	var b strings.Builder
	b.WriteString("Ablation: network bandwidth (jacobi, dual-cpu)\n\n")
	fmt.Fprintf(&b, "  %-10s | %12s %12s | %10s\n", "Bandwidth", "unopt", "rtelim", "opt gain")
	for _, nsPerByte := range []int64{50, 12, 3} { // 20, ~83, ~333 MB/s
		mc := config.Default()
		mc.NsPerByte = nsPerByte
		var res [2]*runtime.Result
		for i, opt := range []compiler.Level{compiler.OptNone, compiler.OptRTElim} {
			prog, err := a.Program(params)
			if err != nil {
				return "", err
			}
			r, err := runtime.Run(prog, runtime.Options{Machine: mc, Opt: opt})
			if err != nil {
				return "", err
			}
			res[i] = r
		}
		fmt.Fprintf(&b, "  %7.0fMB/s | %10.2fms %10.2fms | %9.1f%%\n",
			1000.0/float64(nsPerByte), ms(res[0].Elapsed), ms(res[1].Elapsed),
			100*(1-float64(res[1].Elapsed)/float64(res[0].Elapsed)))
	}
	return b.String(), nil
}

// Irregular demonstrates the paper's conclusion: a program mixing
// affine and indirect subscripts runs (and benefits from the
// optimizations on its affine part) on shared memory, while the
// message-passing backend must reject it.
func Irregular(sizing Sizing) (string, error) {
	a := apps.Irregular()
	params := ParamsFor(a, sizing)
	var b strings.Builder
	b.WriteString("Extension: affine + indirect subscripts (paper section 7 future work)\n\n")
	for _, v := range []struct {
		name string
		opt  compiler.Level
	}{{"unoptimized", compiler.OptNone}, {"optimized (affine part)", compiler.OptRTElim}} {
		prog, err := a.Program(params)
		if err != nil {
			return "", err
		}
		r, err := runtime.Run(prog, runtime.Options{Machine: config.Default(), Opt: v.opt})
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "  shared memory, %-24s : %8.2f ms, %6.1f misses/node\n",
			v.name, ms(r.Elapsed), r.Stats.AvgMissesPerNode())
	}
	prog, err := a.Program(params)
	if err != nil {
		return "", err
	}
	r, err := runtime.Run(prog, runtime.Options{
		Machine: config.Default(), Opt: compiler.OptRTElim, InspectIndirect: true,
	})
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "  shared memory, + indirect inspector    : %8.2f ms, %6.1f misses/node\n",
		ms(r.Elapsed), r.Stats.AvgMissesPerNode())
	prog2, err := a.Program(params)
	if err != nil {
		return "", err
	}
	if _, err := runtime.Run(prog2, runtime.Options{Machine: config.Default(), Backend: runtime.MessagePassing}); err != nil {
		fmt.Fprintf(&b, "  message passing                         : rejected (%v)\n", err)
	} else {
		return "", fmt.Errorf("message-passing backend unexpectedly accepted an irregular program")
	}
	return b.String(), nil
}

// Distribution sweeps lu's column distribution: BLOCK concentrates the
// trailing submatrix on the last processors (poor balance), CYCLIC
// deals columns for balance (the configuration the paper's lu uses),
// CYCLIC(4) trades balance against fewer, larger transfers.
func Distribution(sizing Sizing) (string, error) {
	a, err := apps.ByName("lu")
	if err != nil {
		return "", err
	}
	params := ParamsFor(a, sizing)
	var b strings.Builder
	b.WriteString("Ablation: lu column distribution (rtelim, dual-cpu)\n\n")
	fmt.Fprintf(&b, "  %-12s | %12s %14s %12s\n", "Distribution", "elapsed", "max/min work", "misses/node")
	for _, dist := range []string{"BLOCK", "CYCLIC", "CYCLIC(4)"} {
		src := strings.Replace(a.Source, "DISTRIBUTE a(*, CYCLIC)", "DISTRIBUTE a(*, "+dist+")", 1)
		prog, err := lang.ParseWithOverrides(src, params)
		if err != nil {
			return "", err
		}
		r, err := runtime.Run(prog, runtime.Options{Machine: config.Default(), Opt: compiler.OptRTElim})
		if err != nil {
			return "", err
		}
		// Work balance: max/min per-node compute time.
		minC, maxC := r.Stats.Nodes[0].ComputeTime, r.Stats.Nodes[0].ComputeTime
		for _, n := range r.Stats.Nodes {
			if n.ComputeTime < minC {
				minC = n.ComputeTime
			}
			if n.ComputeTime > maxC {
				maxC = n.ComputeTime
			}
		}
		ratio := float64(maxC) / float64(maxInt64(minC, 1))
		fmt.Fprintf(&b, "  %-12s | %10.2fms %13.1fx %12.1f\n",
			dist, ms(r.Elapsed), ratio, r.Stats.AvgMissesPerNode())
	}
	return b.String(), nil
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Consistency compares the paper's eager release-consistent default
// protocol against a conservative sequentially-consistent variant
// (blocking writes) — the design choice motivated by the paper's
// footnote 1, and a demonstration of Tempest's user-swappable
// protocols.
func Consistency(sizing Sizing) (string, error) {
	var b strings.Builder
	b.WriteString("Ablation: release consistency vs blocking writes (unoptimized, dual-cpu)\n\n")
	fmt.Fprintf(&b, "  %-9s | %12s %12s | %10s\n", "App", "release", "sequential", "RC saves")
	for _, name := range []string{"jacobi", "shallow", "lu"} {
		a, err := apps.ByName(name)
		if err != nil {
			return "", err
		}
		params := ParamsFor(a, sizing)
		var res [2]*runtime.Result
		for i, cons := range []config.Consistency{config.ReleaseConsistent, config.SequentiallyConsistent} {
			prog, err := a.Program(params)
			if err != nil {
				return "", err
			}
			r, err := runtime.Run(prog, runtime.Options{
				Machine: config.Default().WithConsistency(cons), Opt: compiler.OptNone,
			})
			if err != nil {
				return "", err
			}
			res[i] = r
		}
		fmt.Fprintf(&b, "  %-9s | %10.2fms %10.2fms | %9.1f%%\n",
			name, ms(res[0].Elapsed), ms(res[1].Elapsed),
			100*(1-float64(res[0].Elapsed)/float64(res[1].Elapsed)))
	}
	return b.String(), nil
}

// Prefetch is the advisory edge-prefetch ablation: the paper suggests
// self-invalidate / co-operative prefetch for the boundary elements
// shmem_limits leaves to the default protocol, "a worthwhile
// optimization where the data set size is small" (grav's case).
func Prefetch(sizing Sizing) (string, error) {
	var b strings.Builder
	b.WriteString("Ablation: advisory edge prefetch (rtelim, dual-cpu)\n\n")
	fmt.Fprintf(&b, "  %-9s | %12s %12s | %10s %10s\n", "App", "no prefetch", "prefetch", "misses", "misses-pf")
	for _, name := range []string{"grav", "shallow", "jacobi"} {
		a, err := apps.ByName(name)
		if err != nil {
			return "", err
		}
		params := ParamsFor(a, sizing)
		var res [2]*runtime.Result
		for i, pf := range []bool{false, true} {
			prog, err := a.Program(params)
			if err != nil {
				return "", err
			}
			r, err := runtime.Run(prog, runtime.Options{
				Machine: config.Default(), Opt: compiler.OptRTElim, EdgePrefetch: pf,
			})
			if err != nil {
				return "", err
			}
			res[i] = r
		}
		fmt.Fprintf(&b, "  %-9s | %10.2fms %10.2fms | %10d %10d\n",
			name, ms(res[0].Elapsed), ms(res[1].Elapsed),
			res[0].Stats.TotalMisses(), res[1].Stats.TotalMisses())
	}
	return b.String(), nil
}

// BlockSize is the block-size ablation: the paper's system supports
// 32-128 byte blocks; smaller blocks reduce false sharing and edge
// effects but multiply per-block overheads.
func BlockSize(sizing Sizing) (string, error) {
	var b strings.Builder
	b.WriteString("Ablation: coherence block size (jacobi + grav, dual-cpu)\n\n")
	fmt.Fprintf(&b, "  %-9s %6s | %12s %12s | %9s\n", "App", "Block", "unopt", "rtelim", "miss red")
	names := []string{"jacobi", "grav"}
	sizes := []int{32, 64, 128}
	type cell struct{ un, op *runtime.Result }
	cells := make([]cell, len(names)*len(sizes))
	err := forEachLimit(len(cells), SuiteWorkers, func(i int) error {
		name, bs := names[i/len(sizes)], sizes[i%len(sizes)]
		a, err := apps.ByName(name)
		if err != nil {
			return err
		}
		prog, err := a.Program(ParamsFor(a, sizing))
		if err != nil {
			return err
		}
		mc := config.Default().WithBlockSize(bs)
		un, err := runtime.Run(prog, runtime.Options{Machine: mc, Opt: compiler.OptNone})
		if err != nil {
			return err
		}
		op, err := runtime.Run(prog, runtime.Options{Machine: mc, Opt: compiler.OptRTElim})
		if err != nil {
			return err
		}
		cells[i] = cell{un, op}
		return nil
	})
	if err != nil {
		return "", err
	}
	for i, c := range cells {
		fmt.Fprintf(&b, "  %-9s %5dB | %10.2fms %10.2fms | %8.1f%%\n",
			names[i/len(sizes)], sizes[i%len(sizes)], ms(c.un.Elapsed), ms(c.op.Elapsed),
			100*(1-c.op.Stats.AvgMissesPerNode()/c.un.Stats.AvgMissesPerNode()))
	}
	return b.String(), nil
}

// Agg sweeps the barrier-epoch aggregation layer's adaptive bulk
// threshold against the coherence block size, over all six
// applications (rtelim, dual-cpu). The first column of each block row
// is the layer switched off entirely; thresholds are expressed in
// coherence blocks, since the policy compares the per-(loop,
// destination) expected bytes against them. The grid is walked in
// deterministic order — apps in suite order, block sizes then
// thresholds ascending — so two sweeps diff cleanly.
func Agg(sizing Sizing) (string, error) {
	var b strings.Builder
	b.WriteString("Ablation: barrier-epoch aggregation threshold x block size (rtelim, dual-cpu)\n\n")
	fmt.Fprintf(&b, "  %-9s %6s %10s | %12s %8s %9s %8s %9s\n",
		"App", "Block", "Threshold", "elapsed", "msgs", "bytes", "segs", "carriers")
	names := AppNames()
	sizes := []int{64, 128}
	thresholds := []int{-1, 2, 32, 256} // in blocks; -1 = aggregation off
	results := make([]*runtime.Result, len(names)*len(sizes)*len(thresholds))
	err := forEachLimit(len(results), SuiteWorkers, func(i int) error {
		name := names[i/(len(sizes)*len(thresholds))]
		bs := sizes[i/len(thresholds)%len(sizes)]
		thr := thresholds[i%len(thresholds)]
		a, err := apps.ByName(name)
		if err != nil {
			return err
		}
		prog, err := a.Program(ParamsFor(a, sizing))
		if err != nil {
			return err
		}
		mc := config.Default().WithBlockSize(bs)
		if thr < 0 {
			mc = mc.WithoutCoalesce()
		} else {
			mc.AggThreshold = thr * bs
		}
		r, err := runtime.Run(prog, runtime.Options{Machine: mc, Opt: compiler.OptRTElim})
		if err != nil {
			return fmt.Errorf("%s block=%d threshold=%d: %w", name, bs, thr, err)
		}
		results[i] = r
		return nil
	})
	if err != nil {
		return "", err
	}
	for i, r := range results {
		name := names[i/(len(sizes)*len(thresholds))]
		bs := sizes[i/len(thresholds)%len(sizes)]
		thr := thresholds[i%len(thresholds)]
		label := "off"
		if thr >= 0 {
			label = fmt.Sprintf("%d blk", thr)
		}
		fmt.Fprintf(&b, "  %-9s %5dB %10s | %10.2fms %8d %9d %8d %9d\n",
			name, bs, label, ms(r.Elapsed), r.Stats.TotalMessages(), r.Stats.TotalBytes(),
			r.Stats.TotalSegsCoalesced(), r.Stats.TotalCarriersSent())
	}
	return b.String(), nil
}

func pctRed(before, after sim.Time) float64 {
	if before == 0 {
		return 0
	}
	return 100 * (1 - float64(after)/float64(before))
}

func us(t sim.Time) float64 { return float64(t) / 1e3 }

// Faults runs representative applications (regular stencil,
// broadcast-heavy factorization, reduction-heavy solver) over an
// increasingly unreliable wire and reports what reliable delivery
// costs: retransmission volume and the slowdown against the lossless
// run. The barrier-instant coherence audit is armed throughout, so
// every row is also a correctness statement.
func Faults(sizing Sizing) (string, error) {
	var b strings.Builder
	b.WriteString("Robustness: fault injection + reliable delivery (rtelim, dual-cpu, audited)\n\n")
	fmt.Fprintf(&b, "  %-8s %-12s | %10s %8s %11s %8s %11s | %8s\n",
		"app", "faults", "elapsed", "msgs", "retransmit", "drops", "dedup-drop", "slowdown")
	levels := []struct {
		name      string
		drop, dup float64
	}{
		{"lossless", 0, 0},
		{"1%+0.5%", 0.01, 0.005},
		{"5%+2%", 0.05, 0.02},
	}
	names := []string{"jacobi", "lu", "cg"}
	results := make([]*runtime.Result, len(names)*len(levels))
	err := forEachLimit(len(results), SuiteWorkers, func(i int) error {
		name, lv := names[i/len(levels)], levels[i%len(levels)]
		a, err := apps.ByName(name)
		if err != nil {
			return err
		}
		prog, err := a.Program(ParamsFor(a, sizing))
		if err != nil {
			return err
		}
		mc := config.Default()
		if lv.drop > 0 {
			mc = mc.WithFaults(config.Faults{Drop: lv.drop, Dup: lv.dup, Seed: 1})
		}
		r, err := runtime.Run(prog, runtime.Options{Machine: mc, Opt: compiler.OptRTElim, Check: true})
		if err != nil {
			return fmt.Errorf("%s at %s: %w", name, lv.name, err)
		}
		results[i] = r
		return nil
	})
	if err != nil {
		return "", err
	}
	for i, r := range results {
		name, lv := names[i/len(levels)], levels[i%len(levels)]
		base := results[i-i%len(levels)].Elapsed // the app's lossless run
		fmt.Fprintf(&b, "  %-8s %-12s | %8.2fms %8d %11d %8d %11d | %7.2fx\n",
			name, lv.name, ms(r.Elapsed), r.Stats.TotalMessages(),
			r.Stats.TotalRetransmits(), r.Stats.TotalWireDrops(), r.Stats.TotalDupsDropped(),
			float64(r.Elapsed)/float64(base))
	}
	return b.String(), nil
}
