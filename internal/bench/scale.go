// Scale-out experiment: the hierarchical-coherence layer's claim is
// that synchronization and invalidation cost O(log N) / O(K) per node
// on the combining tree where the paper's flat protocol pays O(N)
// through single chokepoints — while every data word stays
// bit-identical, because the tree only changes message routing, never
// combination order. This file measures both sides of that claim with
// two cluster-level microbenchmarks (no compiler in the loop) swept
// over N x {flat, tree}, plus one full application run at N=64 whose
// final arrays are compared bit-for-bit across topologies.
package bench

import (
	"fmt"
	"math"
	"strings"

	"hpfdsm/internal/apps"
	"hpfdsm/internal/compiler"
	"hpfdsm/internal/config"
	"hpfdsm/internal/memory"
	"hpfdsm/internal/protocol"
	"hpfdsm/internal/runtime"
	"hpfdsm/internal/sim"
	"hpfdsm/internal/tempest"
)

// ScaleNodes is the sweep's cluster sizes. The first is the paper's
// own size (where flat is perfectly adequate); the last is 128x past
// it, where the flat barrier serializes a thousand messages through
// node 0.
var ScaleNodes = []int{8, 64, 256, 1024}

// ScaleCell is one (nodes, topology) configuration's measurements.
type ScaleCell struct {
	Nodes int
	Topo  config.Topology
	Radix int

	Barrier    sim.Time // steady-state latency of one barrier
	Reduce     sim.Time // steady-state latency of one AllReduce
	ReduceBits uint64   // float64 bits of the final reduction result
	SyncMsgs   int64    // whole sync-microbench message count
	SyncBytes  int64    // whole sync-microbench wire bytes

	InvalMsgs   int64    // messages to invalidate N-2 sharers of one block
	InvalBytes  int64    // wire bytes of that invalidation round
	InvalRounds int64    // per-cluster relay dispatches (tree only)
	InvalHome   int64    // messages the home itself sends in the round
	InvalLat    sim.Time // store to write-grant-collected on the writer
}

// scaleCluster assembles a protocol-attached cluster for a sync/inval
// microbenchmark, partitioned across `parts` PDES shards when parts >
// 1 (same contiguous node split as the runtime). run drives the
// simulation to completion on either engine.
type scaleCluster struct {
	mc   config.Machine
	c    *tempest.Cluster
	pr   *protocol.Proto
	base int
	run  func() error
}

func newScaleCluster(n int, topo config.Topology, parts int) *scaleCluster {
	mc := config.Default().WithNodes(n).WithTopology(topo)
	sp := memory.NewSpace(mc)
	base := sp.Alloc("x", mc.PageSize)
	s := &scaleCluster{mc: mc, base: base}
	if parts > n {
		parts = n
	}
	if parts > 1 {
		penvs := make([]*sim.Env, parts)
		for i := range penvs {
			penvs[i] = sim.NewEnv()
		}
		part := make([]int, n)
		nodeEnvs := make([]*sim.Env, n)
		for i := range part {
			part[i] = i * parts / n
			nodeEnvs[i] = penvs[part[i]]
		}
		shards := sim.NewShards(penvs, mc.MsgTime(0))
		post := func(src, dst int, sent, arrival sim.Time, seq uint32, fn func(any), arg any) {
			shards.Post(part[src], part[dst], arrival, sent, src, seq, fn, arg)
		}
		s.c = tempest.NewPartitionedCluster(nodeEnvs, sp, post)
		s.run = func() error {
			err := shards.Run()
			shards.Shutdown()
			return err
		}
	} else {
		env := sim.NewEnv()
		s.c = tempest.NewCluster(env, sp)
		s.run = env.Run
	}
	s.pr = protocol.Attach(s.c)
	return s
}

// measureSync runs the synchronization microbenchmark on one
// configuration: every node spins through warm-up barriers, a timed
// barrier phase, and a timed AllReduce phase (each node contributing
// sqrt(i+1), so any change in combination order shows up in the
// result's mantissa). Latencies are read from node 0's clock; the
// reduction result is identical on every node by construction and
// captured from node 0.
func measureSync(n int, topo config.Topology, parts int) (ScaleCell, error) {
	const warm, iters = 2, 4
	s := newScaleCluster(n, topo, parts)
	cell := ScaleCell{Nodes: n, Topo: topo, Radix: s.mc.EffectiveRadix()}
	var t0, t1, t2 sim.Time
	for i := 0; i < n; i++ {
		i := i
		node := s.c.Nodes[i]
		node.Env.Spawn(fmt.Sprintf("sync-%d", i), func(p *sim.Proc) {
			for k := 0; k < warm; k++ {
				s.c.Barrier(p, node)
			}
			if i == 0 {
				t0 = p.Now()
			}
			for k := 0; k < iters; k++ {
				s.c.Barrier(p, node)
			}
			if i == 0 {
				t1 = p.Now()
			}
			var r float64
			for k := 0; k < iters; k++ {
				r = s.c.AllReduce(p, node, tempest.OpSum, math.Sqrt(float64(i+1)))
			}
			if i == 0 {
				t2 = p.Now()
				cell.ReduceBits = math.Float64bits(r)
			}
		})
	}
	if err := s.run(); err != nil {
		return cell, fmt.Errorf("sync microbench n=%d topo=%s: %w", n, topo, err)
	}
	cell.Barrier = (t1 - t0) / iters
	cell.Reduce = (t2 - t1) / iters
	cell.SyncMsgs = s.c.Stats.TotalMessages()
	cell.SyncBytes = s.c.Stats.TotalBytes()
	return cell, nil
}

// runInval runs the invalidation microbenchmark once: every node but
// the home reads one block (becoming a sharer), then node 1 upgrades
// it, forcing the home to invalidate the other N-2 copies — unicast
// under flat, through per-cluster relays with combined acks under
// tree. With withWrite false the write phase is skipped; the delta
// between the two runs isolates the invalidation round exactly (the
// read phase's schedule is deterministic and common to both).
func runInval(n int, topo config.Topology, parts, withWrite int) (msgs, bytes, rounds, home int64, lat sim.Time, err error) {
	s := newScaleCluster(n, topo, parts)
	addr := s.base
	for i := 0; i < n; i++ {
		i := i
		node := s.c.Nodes[i]
		node.Env.Spawn(fmt.Sprintf("inval-%d", i), func(p *sim.Proc) {
			if i != 0 {
				node.LoadF64(p, addr)
			}
			node.WaitPending(p)
			s.c.Barrier(p, node)
			if i == 1 && withWrite != 0 {
				t0 := p.Now()
				node.StoreF64(p, addr, 1.0)
				node.WaitPending(p) // gates on the grant, which gates on every ack
				lat = p.Now() - t0
			} else {
				node.WaitPending(p)
			}
			s.c.Barrier(p, node)
		})
	}
	if err := s.run(); err != nil {
		return 0, 0, 0, 0, 0, fmt.Errorf("inval microbench n=%d topo=%s: %w", n, topo, err)
	}
	return s.c.Stats.TotalMessages(), s.c.Stats.TotalBytes(), s.pr.InvalRounds(),
		s.c.Stats.Nodes[0].MsgsSent, lat, nil
}

// measureInval fills in one cell's invalidation-round columns: the
// delta between the write-phase and read-only runs isolates the round.
func measureInval(cell *ScaleCell, parts int) error {
	m0, b0, _, h0, _, err := runInval(cell.Nodes, cell.Topo, parts, 0)
	if err != nil {
		return err
	}
	m1, b1, rounds, h1, lat, err := runInval(cell.Nodes, cell.Topo, parts, 1)
	if err != nil {
		return err
	}
	cell.InvalMsgs, cell.InvalBytes, cell.InvalRounds = m1-m0, b1-b0, rounds
	cell.InvalHome, cell.InvalLat = h1-h0, lat
	return nil
}

// ScaleSweep measures the full N x {flat, tree} grid. parts > 1 runs
// every simulation under the conservative-PDES window scheduler; every
// reported number is bit-identical either way. The tree's reduction
// result is REQUIRED to match the flat protocol's bit-for-bit at every
// N — that is the tentpole's contract, not a tolerance comparison.
func ScaleSweep(parts int) ([]ScaleCell, error) {
	var cells []ScaleCell
	for _, n := range ScaleNodes {
		var flatBits, treeBits uint64
		for _, topo := range []config.Topology{config.Flat, config.TreeTopo} {
			cell, err := measureSync(n, topo, parts)
			if err != nil {
				return nil, err
			}
			if err := measureInval(&cell, parts); err != nil {
				return nil, err
			}
			if topo == config.Flat {
				flatBits = cell.ReduceBits
			} else {
				treeBits = cell.ReduceBits
			}
			cells = append(cells, cell)
		}
		if flatBits != treeBits {
			return nil, fmt.Errorf("scale n=%d: tree reduction %x differs from flat %x (data words must be bit-identical)",
				n, treeBits, flatBits)
		}
	}
	return cells, nil
}

// Scale renders the scale-out experiment: the microbenchmark sweep
// plus a full jacobi run at N=64 under both topologies, whose final
// arrays must agree bit-for-bit (the flat side is the semantic
// reference; the tree may only reroute messages).
func Scale(sizing Sizing, parts int) (string, error) {
	cells, err := ScaleSweep(parts)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Scale-out: flat vs combining-tree hierarchical coherence\n")
	if parts > 1 {
		fmt.Fprintf(&b, "(conservative PDES, %d partitions; statistics bit-identical to sequential)\n", parts)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "  %5s %-5s %5s | %11s %11s | %11s %7s %6s | %9s %10s\n",
		"N", "topo", "radix", "barrier", "allreduce", "inval lat", "home tx", "rounds", "sync msgs", "inval msgs")
	for _, c := range cells {
		radix := "-"
		if c.Topo == config.TreeTopo {
			radix = fmt.Sprintf("%d", c.Radix)
		}
		fmt.Fprintf(&b, "  %5d %-5s %5s | %9.1fus %9.1fus | %9.1fus %7d %6d | %9d %10d\n",
			c.Nodes, c.Topo, radix, us(c.Barrier), us(c.Reduce),
			us(c.InvalLat), c.InvalHome, c.InvalRounds, c.SyncMsgs, c.InvalMsgs)
	}
	b.WriteString("\n  reduction results bit-identical flat vs tree at every N;\n")
	b.WriteString("  message counts are topology-invariant by design (every sharer\n")
	b.WriteString("  still told, every ack still sent) — the tree wins on the home's\n")
	b.WriteString("  serialized sends (home tx) and the round's critical path (inval lat)\n")

	// Application leg: one real program at N=64 on both topologies.
	flat, tree, err := scaleAppPair("jacobi", 64, sizing, parts)
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "\n  jacobi, 64 nodes, rtelim: flat %.2fms %d msgs | tree %.2fms %d msgs | arrays bit-identical\n",
		ms(flat.Elapsed), flat.Stats.TotalMessages(), ms(tree.Elapsed), tree.Stats.TotalMessages())
	return b.String(), nil
}

// scaleAppPair runs one application at N nodes under both topologies
// and fails unless every checked array matches bit-for-bit.
func scaleAppPair(app string, nodes int, sizing Sizing, parts int) (flat, tree *runtime.Result, err error) {
	a, err := apps.ByName(app)
	if err != nil {
		return nil, nil, err
	}
	params := ParamsFor(a, sizing)
	run := func(topo config.Topology) (*runtime.Result, error) {
		prog, err := a.Program(params)
		if err != nil {
			return nil, err
		}
		mc := config.Default().WithNodes(nodes).WithTopology(topo)
		opts := runtime.Options{Machine: mc, Opt: compiler.OptRTElim}
		if parts > 1 {
			opts.Partitions = parts
		}
		return runtime.Run(prog, opts)
	}
	if flat, err = run(config.Flat); err != nil {
		return nil, nil, fmt.Errorf("%s n=%d flat: %w", app, nodes, err)
	}
	if tree, err = run(config.TreeTopo); err != nil {
		return nil, nil, fmt.Errorf("%s n=%d tree: %w", app, nodes, err)
	}
	for _, name := range a.CheckArrays {
		fd, td := flat.ArrayData(name), tree.ArrayData(name)
		if len(fd) != len(td) {
			return nil, nil, fmt.Errorf("%s n=%d: array %s length %d flat vs %d tree", app, nodes, name, len(fd), len(td))
		}
		for i := range fd {
			if math.Float64bits(fd[i]) != math.Float64bits(td[i]) {
				return nil, nil, fmt.Errorf("%s n=%d: array %s[%d] = %x tree, %x flat (data words must be bit-identical)",
					app, nodes, name, i, math.Float64bits(td[i]), math.Float64bits(fd[i]))
			}
		}
	}
	return flat, tree, nil
}
