package bench

import (
	"fmt"
	goruntime "runtime"
	"strings"
	"time"

	"hpfdsm/internal/apps"
	"hpfdsm/internal/compiler"
	"hpfdsm/internal/config"
	"hpfdsm/internal/runtime"
)

// PDES is the multicore scaling experiment for the conservative-PDES
// engine: every application, rtelim, swept over partition counts, with
// the wall-clock speedup over the sequential event loop reported per
// cell (best of three runs, so a stray scheduler hiccup cannot print a
// fake slowdown). Before any timing, every partitioned run is checked
// bit-identical to the sequential one — a cell in this table is a
// correctness statement first and a speed claim second. The header
// records the host's CPU budget because the speedups are wall-clock
// facts about THIS host: on a single-core runner the engine falls back
// to its inline path and the honest expectation is ~1.0x.
func PDES(sizing Sizing) (string, error) {
	parts := []int{2, 4, 8}
	var b strings.Builder
	fmt.Fprintf(&b, "Multicore PDES: wall-clock speedup vs sequential event loop (rtelim, dual-cpu)\n")
	fmt.Fprintf(&b, "(host: %d CPU(s), GOMAXPROCS=%d; every cell verified bit-identical first)\n\n",
		goruntime.NumCPU(), goruntime.GOMAXPROCS(0))
	fmt.Fprintf(&b, "  %-9s %12s |", "App", "seq wall")
	for _, p := range parts {
		fmt.Fprintf(&b, " %8s", fmt.Sprintf("p=%d", p))
	}
	fmt.Fprintf(&b, " | %10s\n", "sim-ms")
	for _, a := range apps.All() {
		prog, err := a.Program(ParamsFor(a, sizing))
		if err != nil {
			return "", err
		}
		mc := config.Default()
		run := func(p int) (*runtime.Result, error) {
			return runtime.Run(prog, runtime.Options{
				Machine: mc, Opt: compiler.OptRTElim, Partitions: p})
		}
		seq, err := run(1)
		if err != nil {
			return "", err
		}
		for _, p := range parts {
			res, err := run(p)
			if err != nil {
				return "", fmt.Errorf("%s at %d partitions: %w", a.Name, p, err)
			}
			if res.Elapsed != seq.Elapsed ||
				res.Stats.TotalMisses() != seq.Stats.TotalMisses() ||
				res.Stats.TotalMessages() != seq.Stats.TotalMessages() ||
				res.Stats.TotalBytes() != seq.Stats.TotalBytes() {
				return "", fmt.Errorf("%s at %d partitions diverged from sequential: elapsed %d vs %d, misses %d vs %d, msgs %d vs %d, bytes %d vs %d",
					a.Name, p, res.Elapsed, seq.Elapsed,
					res.Stats.TotalMisses(), seq.Stats.TotalMisses(),
					res.Stats.TotalMessages(), seq.Stats.TotalMessages(),
					res.Stats.TotalBytes(), seq.Stats.TotalBytes())
			}
		}
		wall := func(p int) (time.Duration, error) {
			best := time.Duration(0)
			for rep := 0; rep < 3; rep++ {
				t0 := time.Now()
				if _, err := run(p); err != nil {
					return 0, err
				}
				if d := time.Since(t0); best == 0 || d < best {
					best = d
				}
			}
			return best, nil
		}
		seqWall, err := wall(1)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "  %-9s %12s |", a.Name, seqWall.Round(time.Microsecond))
		for _, p := range parts {
			w, err := wall(p)
			if err != nil {
				return "", err
			}
			fmt.Fprintf(&b, " %7.2fx", float64(seqWall)/float64(w))
		}
		fmt.Fprintf(&b, " | %10.2f\n", ms(seq.Elapsed))
	}
	return b.String(), nil
}
