package bench

import (
	"bytes"
	"encoding/json"
	"strconv"
	"testing"

	"hpfdsm/internal/trace"
)

// TestFig1TraceGolden pins the determinism guarantee: two runs of the
// default-protocol microbenchmark produce byte-identical Chrome traces,
// the output is valid JSON, non-metadata timestamps are monotone, and
// every flow start has exactly one matching flow end that does not
// precede it.
func TestFig1TraceGolden(t *testing.T) {
	var b1, b2 bytes.Buffer
	if err := Fig1Trace(3).WriteChrome(&b1); err != nil {
		t.Fatal(err)
	}
	if err := Fig1Trace(3).WriteChrome(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("identical fig1 runs produced different trace bytes")
	}

	var ct struct {
		TraceEvents []struct {
			Ph string  `json:"ph"`
			Ts float64 `json:"ts"`
			ID int64   `json:"id"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(b1.Bytes(), &ct); err != nil {
		t.Fatalf("fig1 trace is not valid JSON: %v", err)
	}
	if len(ct.TraceEvents) == 0 {
		t.Fatal("empty trace")
	}

	lastTs := -1.0
	starts := map[int64]int{}
	ends := map[int64]int{}
	startTs := map[int64]float64{}
	for _, e := range ct.TraceEvents {
		if e.Ph == "M" {
			continue
		}
		if e.Ts < lastTs {
			t.Fatalf("timestamps not monotone: %v after %v", e.Ts, lastTs)
		}
		lastTs = e.Ts
		switch e.Ph {
		case "s":
			starts[e.ID]++
			startTs[e.ID] = e.Ts
		case "f":
			ends[e.ID]++
		}
	}
	if len(starts) == 0 {
		t.Fatal("no flow events in fig1 trace")
	}
	for id, n := range starts {
		if n != 1 {
			t.Errorf("flow %d started %d times", id, n)
		}
		if ends[id] != 1 {
			t.Errorf("flow %d has %d ends, want 1", id, ends[id])
		}
	}
	for id := range ends {
		if starts[id] == 0 {
			t.Errorf("flow %d ends without a start", id)
		}
	}
	for _, e := range ct.TraceEvents {
		if e.Ph == "f" && e.Ts < startTs[e.ID] {
			t.Errorf("flow %d ends at %v before its start %v", e.ID, e.Ts, startTs[e.ID])
		}
	}
}

// TestFig1TraceEightMessageChain asserts the paper's Figure 1(a): in
// steady state, one producer-to-consumer transfer under the default
// protocol takes eight causally chained messages. The trace's handler
// spans must contain, in timestamp order, the chain
//
//	read_req@home -> put_data_req@producer -> put_data_resp@home ->
//	read_resp@consumer -> upgrade_req@home -> inval@consumer ->
//	inval_ack@home -> write_grant@producer
//
// with producer=node 0, consumer=node 1, home=node 2.
func TestFig1TraceEightMessageChain(t *testing.T) {
	tr := Fig1Trace(4)

	type step struct {
		name string
		pid  int
	}
	chain := []step{
		{"h:read_req", 2},
		{"h:put_data_req", 0},
		{"h:put_data_resp", 2},
		{"h:read_resp", 1},
		{"h:upgrade_req", 2},
		{"h:inval", 1},
		{"h:inval_ack", 2},
		{"h:write_grant", 0},
	}
	// Handler spans in emission order (the simulator emits them in
	// execution order; ties share a timestamp but not an ordering
	// hazard here).
	next := 0
	for _, e := range tr.Events() {
		if e.Ph != trace.PhaseSpan || e.Cat != "handler" || next >= len(chain) {
			continue
		}
		if e.Name == chain[next].name && e.Pid == chain[next].pid {
			next++
		}
	}
	if next != len(chain) {
		var got []string
		for _, e := range tr.Events() {
			if e.Ph == trace.PhaseSpan && e.Cat == "handler" {
				got = append(got, e.Name+"@"+strconv.Itoa(e.Pid))
			}
		}
		t.Fatalf("eight-message chain broken at step %d (%s@%d); handler spans:\n%v",
			next, chain[next].name, chain[next].pid, got)
	}

	// Each non-ack chain message rode a flow: the trace must contain at
	// least 8 flow starts per steady-state iteration.
	flows := 0
	for _, e := range tr.Events() {
		if e.Ph == trace.PhaseFlowStart {
			flows++
		}
	}
	if flows < len(chain) {
		t.Fatalf("only %d flow starts, want >= %d", flows, len(chain))
	}

	// The microbenchmark's array is registered: the heat map must
	// attribute the traffic to "x".
	var buf bytes.Buffer
	if err := tr.Heat.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"name":"x"`)) {
		t.Fatalf("heat map lost the array registration:\n%s", buf.String())
	}
}
