package topo

import "testing"

func TestNewRejectsBadShapes(t *testing.T) {
	for _, tc := range []struct{ n, radix int }{
		{0, 4}, {-1, 4}, {8, 1}, {8, 0}, {8, -2}, {8, 65}, {8, 1000},
	} {
		if _, err := New(tc.n, tc.radix); err == nil {
			t.Errorf("New(%d, %d): want error", tc.n, tc.radix)
		}
	}
	if _, err := New(1, 2); err != nil {
		t.Errorf("New(1, 2): %v", err)
	}
	if _, err := New(4096, 64); err != nil {
		t.Errorf("New(4096, 64): %v", err)
	}
}

// The heap shape: every non-root node's parent is (id-1)/K, children
// are contiguous, and the parent/child relations invert each other.
func TestParentChildrenInvert(t *testing.T) {
	for _, tc := range []struct{ n, radix int }{
		{1, 2}, {2, 2}, {8, 2}, {8, 4}, {9, 3}, {27, 3}, {64, 4}, {100, 7}, {1024, 4},
	} {
		tr := MustNew(tc.n, tc.radix)
		seen := make([]bool, tc.n)
		seen[Root] = true
		var kids []int
		for id := 0; id < tc.n; id++ {
			kids = tr.Children(id, kids[:0])
			if len(kids) != tr.NumChildren(id) {
				t.Fatalf("n=%d K=%d id=%d: len(Children)=%d NumChildren=%d",
					tc.n, tc.radix, id, len(kids), tr.NumChildren(id))
			}
			for _, c := range kids {
				if tr.Parent(c) != id {
					t.Fatalf("n=%d K=%d: Parent(%d)=%d, want %d", tc.n, tc.radix, c, tr.Parent(c), id)
				}
				if seen[c] {
					t.Fatalf("n=%d K=%d: node %d is a child twice", tc.n, tc.radix, c)
				}
				seen[c] = true
			}
		}
		for id, ok := range seen {
			if !ok {
				t.Fatalf("n=%d K=%d: node %d unreachable", tc.n, tc.radix, id)
			}
		}
		if tr.Parent(Root) != -1 {
			t.Fatalf("n=%d K=%d: Parent(root)=%d", tc.n, tc.radix, tr.Parent(Root))
		}
		if got := tr.SubtreeSize(Root); got != tc.n {
			t.Fatalf("n=%d K=%d: SubtreeSize(root)=%d", tc.n, tc.radix, got)
		}
	}
}

// Depth must grow logarithmically: for radix K, depth <= ceil(log_K N)
// plus the heap's off-by-one, and in particular far below N.
func TestDepthIsLogarithmic(t *testing.T) {
	for _, tc := range []struct{ n, radix, want int }{
		{1, 4, 0},
		{2, 4, 1},
		{5, 4, 1},
		{6, 4, 2},
		{8, 4, 2},
		{64, 4, 3},
		{256, 4, 4},
		{1024, 4, 5},
		{1024, 2, 10},
	} {
		tr := MustNew(tc.n, tc.radix)
		if got := tr.Depth(); got != tc.want {
			t.Errorf("Depth(n=%d, K=%d) = %d, want %d", tc.n, tc.radix, got, tc.want)
		}
	}
}

func TestClusterCoordinates(t *testing.T) {
	tr := MustNew(10, 4) // clusters {0..3} {4..7} {8,9}
	if got := tr.Clusters(); got != 3 {
		t.Fatalf("Clusters() = %d, want 3", got)
	}
	if got := tr.ClusterSize(2); got != 2 {
		t.Fatalf("ClusterSize(2) = %d, want 2", got)
	}
	if got := tr.ClusterBase(1); got != 4 {
		t.Fatalf("ClusterBase(1) = %d, want 4", got)
	}
	for id := 0; id < 10; id++ {
		c, err := tr.Coord(id)
		if err != nil {
			t.Fatalf("Coord(%d): %v", id, err)
		}
		if c.Cluster != id/4 || c.Leaf != id%4 {
			t.Fatalf("Coord(%d) = %+v", id, c)
		}
		back, err := tr.NodeID(c)
		if err != nil || back != id {
			t.Fatalf("NodeID(Coord(%d)) = %d, %v", id, back, err)
		}
	}
	for _, bad := range []Coord{
		{Cluster: -1, Leaf: 0},
		{Cluster: 0, Leaf: -1},
		{Cluster: 0, Leaf: 4}, // leaf >= radix
		{Cluster: 2, Leaf: 2}, // node 10: out of range
		{Cluster: 3, Leaf: 0}, // cluster past the end
		{Cluster: 1 << 40, Leaf: 0},
	} {
		if id, err := tr.NodeID(bad); err == nil {
			t.Errorf("NodeID(%+v) = %d, want error", bad, id)
		}
	}
	if _, err := tr.Coord(-1); err == nil {
		t.Error("Coord(-1): want error")
	}
	if _, err := tr.Coord(10); err == nil {
		t.Error("Coord(10): want error")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	tr := MustNew(8, 4)
	for _, fn := range []func(){
		func() { tr.Parent(8) },
		func() { tr.Parent(-1) },
		func() { tr.Children(9, nil) },
		func() { tr.ClusterOf(-3) },
		func() { tr.LeafOf(8) },
		func() { tr.ClusterBase(2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("out-of-range access: want panic")
				}
			}()
			fn()
		}()
	}
}

// FuzzTopoRoute round-trips node-id <-> (cluster, leaf) for arbitrary
// tree shapes and checks that out-of-range ids and coordinates are
// rejected rather than aliased onto a valid node.
func FuzzTopoRoute(f *testing.F) {
	f.Add(8, 4, 3)
	f.Add(64, 4, 63)
	f.Add(1024, 64, 1023)
	f.Add(27, 3, 27) // id just out of range
	f.Add(10, 4, -1) // negative id
	f.Add(0, 0, 0)   // invalid shape
	f.Fuzz(func(t *testing.T, n, radix, id int) {
		tr, err := New(n, radix)
		if err != nil {
			return
		}
		c, err := tr.Coord(id)
		if id < 0 || id >= n {
			if err == nil {
				t.Fatalf("Coord(%d) on n=%d: want error, got %+v", id, n, c)
			}
			// An invalid id must also be unreachable via NodeID.
			if back, err := tr.NodeID(Coord{Cluster: id / radix, Leaf: id % radix}); err == nil && (back < 0 || back >= n) {
				t.Fatalf("NodeID accepted out-of-range node %d", back)
			}
			return
		}
		if err != nil {
			t.Fatalf("Coord(%d) on n=%d K=%d: %v", id, n, radix, err)
		}
		if c.Leaf < 0 || c.Leaf >= radix || c.Cluster < 0 || c.Cluster >= tr.Clusters() {
			t.Fatalf("Coord(%d) = %+v outside shape n=%d K=%d", id, c, n, radix)
		}
		back, err := tr.NodeID(c)
		if err != nil {
			t.Fatalf("NodeID(%+v): %v", c, err)
		}
		if back != id {
			t.Fatalf("round trip %d -> %+v -> %d", id, c, back)
		}
		// The tree view must agree on range checking too.
		if p := tr.Parent(id); id != Root && (p < 0 || p >= n) {
			t.Fatalf("Parent(%d) = %d outside [0, %d)", id, p, n)
		}
	})
}
