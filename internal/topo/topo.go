// Package topo models the hierarchical node addressing used by the
// scale-out coherence layer: a heap-shaped K-ary combining tree over
// node ids 0..N-1 plus (cluster, leaf) coordinates that group radix
// consecutive node ids into one cluster.
//
// Two views of the same id space coexist:
//
//   - The combining tree drives barriers and reductions. Node i's
//     parent is (i-1)/K and its children are K*i+1 .. K*i+K, so node 0
//     (the flat protocol's synchronization master) is always the root
//     and the depth is ceil(log_K N). The shape is a pure function of
//     (N, K) — no topology state lives in the simulator.
//
//   - Cluster coordinates drive multicast invalidation fan-out: node
//     id maps to (id/K, id%K). A block's home forwards one
//     invalidation per sharer-holding cluster to a relay leaf, which
//     fans out inside the cluster and combines the acks on the way
//     back up. Because a leaf index is always < K <= 64, intra-cluster
//     membership fits a single uint64 mask even when N does not.
//
// Both views reject out-of-range ids loudly: a wrong coordinate
// silently aliased onto another node would corrupt directory state in
// a way no invariant check could localize.
package topo

import "fmt"

// MaxRadix bounds the tree fan-out so intra-cluster leaf sets fit one
// uint64 mask (and a parent's child-arrival set fits one too).
const MaxRadix = 64

// Tree is the heap-shaped K-ary tree over node ids 0..N-1. The zero
// value is invalid; construct with New.
type Tree struct {
	n     int
	radix int
}

// Coord addresses a node as (cluster, leaf): cluster groups radix
// consecutive ids, leaf is the position within the cluster.
type Coord struct {
	Cluster int
	Leaf    int
}

// New validates (n, radix) and returns the tree. radix must be in
// [2, MaxRadix]; n must be positive.
func New(n, radix int) (Tree, error) {
	if n < 1 {
		return Tree{}, fmt.Errorf("topo: need at least 1 node, have %d", n)
	}
	if radix < 2 || radix > MaxRadix {
		return Tree{}, fmt.Errorf("topo: radix %d outside [2, %d]", radix, MaxRadix)
	}
	return Tree{n: n, radix: radix}, nil
}

// MustNew is New for configurations already validated by config.
func MustNew(n, radix int) Tree {
	t, err := New(n, radix)
	if err != nil {
		panic(err)
	}
	return t
}

// Nodes returns N.
func (t Tree) Nodes() int { return t.n }

// Radix returns K.
func (t Tree) Radix() int { return t.radix }

// Root is the tree root and the barrier master, always node 0 so the
// flat and tree protocols agree on where synchronization state lives.
const Root = 0

// Parent returns the combining-tree parent of id, or -1 for the root.
// It panics on an out-of-range id.
func (t Tree) Parent(id int) int {
	t.check(id)
	if id == Root {
		return -1
	}
	return (id - 1) / t.radix
}

// FirstChild returns the lowest child id of id, or n if id is a leaf.
func (t Tree) FirstChild(id int) int {
	t.check(id)
	c := t.radix*id + 1
	if c > t.n {
		return t.n
	}
	return c
}

// Children appends the child ids of id to dst and returns it. The
// result is ascending; leaves append nothing.
func (t Tree) Children(id int, dst []int) []int {
	t.check(id)
	for c := t.radix*id + 1; c <= t.radix*id+t.radix && c < t.n; c++ {
		dst = append(dst, c)
	}
	return dst
}

// NumChildren returns how many children id has.
func (t Tree) NumChildren(id int) int {
	t.check(id)
	lo := t.radix*id + 1
	if lo >= t.n {
		return 0
	}
	hi := lo + t.radix
	if hi > t.n {
		hi = t.n
	}
	return hi - lo
}

// SubtreeSize returns the number of nodes in the subtree rooted at id,
// including id itself. Used to size combined-contribution vectors.
func (t Tree) SubtreeSize(id int) int {
	t.check(id)
	size := 1
	for c := t.radix*id + 1; c <= t.radix*id+t.radix && c < t.n; c++ {
		size += t.SubtreeSize(c)
	}
	return size
}

// Depth returns the number of edge levels from root to the deepest
// leaf: 0 for a single node, and O(log_K N) generally — the factor
// that replaces the flat barrier's O(N) fan-in.
func (t Tree) Depth() int {
	d := 0
	for id := t.n - 1; id != Root; id = (id - 1) / t.radix {
		d++
	}
	return d
}

// Coord returns the (cluster, leaf) coordinates of id.
func (t Tree) Coord(id int) (Coord, error) {
	if id < 0 || id >= t.n {
		return Coord{}, fmt.Errorf("topo: node id %d outside [0, %d)", id, t.n)
	}
	return Coord{Cluster: id / t.radix, Leaf: id % t.radix}, nil
}

// NodeID inverts Coord, rejecting coordinates that name no node.
func (t Tree) NodeID(c Coord) (int, error) {
	if c.Cluster < 0 || c.Leaf < 0 || c.Leaf >= t.radix {
		return 0, fmt.Errorf("topo: bad coordinate (cluster=%d leaf=%d) for radix %d", c.Cluster, c.Leaf, t.radix)
	}
	id := c.Cluster*t.radix + c.Leaf
	if id >= t.n {
		return 0, fmt.Errorf("topo: coordinate (cluster=%d leaf=%d) names node %d outside [0, %d)", c.Cluster, c.Leaf, id, t.n)
	}
	return id, nil
}

// ClusterOf returns id's cluster index without the error path, for
// hot protocol code on ids already known to be in range.
func (t Tree) ClusterOf(id int) int {
	t.check(id)
	return id / t.radix
}

// LeafOf returns id's leaf index within its cluster.
func (t Tree) LeafOf(id int) int {
	t.check(id)
	return id % t.radix
}

// ClusterBase returns the lowest node id in the given cluster.
func (t Tree) ClusterBase(cluster int) int {
	if cluster < 0 || cluster >= t.Clusters() {
		panic(fmt.Sprintf("topo: cluster %d outside [0, %d)", cluster, t.Clusters()))
	}
	return cluster * t.radix
}

// ClusterSize returns how many nodes the given cluster holds (the last
// cluster may be partial).
func (t Tree) ClusterSize(cluster int) int {
	base := t.ClusterBase(cluster)
	if base+t.radix > t.n {
		return t.n - base
	}
	return t.radix
}

// Clusters returns the number of clusters, ceil(N / radix).
func (t Tree) Clusters() int {
	return (t.n + t.radix - 1) / t.radix
}

func (t Tree) check(id int) {
	if id < 0 || id >= t.n {
		panic(fmt.Sprintf("topo: node id %d outside [0, %d)", id, t.n))
	}
}
