package stats

import (
	"strings"
	"testing"
)

func TestNodeMisses(t *testing.T) {
	// Upgrade faults are not fetch misses (the paper's Table 3 metric).
	n := Node{ReadMisses: 3, WriteMisses: 2, UpgradeMisses: 1}
	if n.Misses() != 5 {
		t.Fatalf("misses = %d", n.Misses())
	}
}

func TestClusterAggregates(t *testing.T) {
	c := New(4)
	if c.N() != 4 {
		t.Fatalf("N = %d", c.N())
	}
	for i := range c.Nodes {
		c.Nodes[i].ReadMisses = int64(i + 1)
		c.Nodes[i].MsgsSent = 10
		c.Nodes[i].BytesSent = 100
		c.Nodes[i].CommTime = int64(i) * 1000
		c.Nodes[i].BarrierTime = 500
		c.Nodes[i].ComputeTime = 2000
	}
	if c.TotalMisses() != 10 {
		t.Fatalf("total misses = %d", c.TotalMisses())
	}
	if c.AvgMissesPerNode() != 2.5 {
		t.Fatalf("avg misses = %v", c.AvgMissesPerNode())
	}
	if c.TotalMessages() != 40 || c.TotalBytes() != 400 {
		t.Fatal("message totals wrong")
	}
	if c.MaxCommTime() != 3500 {
		t.Fatalf("max comm = %d", c.MaxCommTime())
	}
	if c.AvgCommTime() != (0+1000+2000+3000+4*500)/4 {
		t.Fatalf("avg comm = %d", c.AvgCommTime())
	}
	if c.AvgComputeTime() != 2000 {
		t.Fatalf("avg compute = %d", c.AvgComputeTime())
	}
}

func TestEmptyCluster(t *testing.T) {
	c := New(0)
	if c.AvgMissesPerNode() != 0 || c.AvgCommTime() != 0 || c.AvgComputeTime() != 0 {
		t.Fatal("empty cluster averages must be zero")
	}
}

func TestStringRendering(t *testing.T) {
	c := New(2)
	c.Nodes[0].ReadMisses = 5
	s := c.String()
	if !strings.Contains(s, "cluster of 2 nodes") || !strings.Contains(s, "node 0") {
		t.Fatalf("summary missing parts:\n%s", s)
	}
}

func TestMissLatencyHistogram(t *testing.T) {
	c := New(2)
	// 90 fast misses (~90 µs) and 10 slow ones (~1500 µs).
	for i := 0; i < 90; i++ {
		c.Nodes[0].RecordMissLatency(90_000)
	}
	for i := 0; i < 10; i++ {
		c.Nodes[1].RecordMissLatency(1_500_000)
	}
	p50 := c.MissLatencyPercentile(0.5)
	if p50 < 64 || p50 > 256 {
		t.Fatalf("p50 = %v µs, want around 128", p50)
	}
	p99 := c.MissLatencyPercentile(0.99)
	if p99 < 1024 {
		t.Fatalf("p99 = %v µs, want >= 1024", p99)
	}
	if New(1).MissLatencyPercentile(0.5) != 0 {
		t.Fatal("empty histogram percentile should be 0")
	}
}

func TestMissLatencyBucketBounds(t *testing.T) {
	var n Node
	n.RecordMissLatency(500)         // <1 µs -> bucket 0
	n.RecordMissLatency(3_000)       // 3 µs -> bucket 1
	n.RecordMissLatency(100_000_000) // 100 ms -> clamped to last bucket
	if n.MissLatency[0] != 1 || n.MissLatency[1] != 1 || n.MissLatency[13] != 1 {
		t.Fatalf("buckets = %v", n.MissLatency)
	}
}
