// Package stats collects the performance counters the paper reports:
// miss counts, message and byte counts, and the split of each node's
// execution time into computation, communication (miss and protocol-call
// stalls), and barrier synchronization.
package stats

import (
	"fmt"
	"strings"

	"hpfdsm/internal/sim"
)

// latBuckets is the number of exponential miss-latency histogram
// buckets: bucket i covers [2^i, 2^(i+1)) microseconds, with the last
// bucket open-ended.
const latBuckets = 14

// Node holds one simulated node's counters.
type Node struct {
	MsgsSent  int64
	MsgsRecv  int64
	BytesSent int64
	BytesRecv int64

	ReadMisses    int64 // faults on invalid blocks for a load
	WriteMisses   int64 // faults on invalid blocks for a store
	UpgradeMisses int64 // faults on read-only blocks for a store

	ProtoCalls    int64    // explicit compiler-directed protocol calls
	ProtoCallTime sim.Time // compute time spent inside those calls

	ComputeTime sim.Time // time spent in application computation
	CommTime    sim.Time // compute thread blocked on misses + protocol calls
	BarrierTime sim.Time // compute thread blocked at barriers
	StolenTime  sim.Time // handler time stolen from compute (single-CPU)

	// Reliable-delivery counters (unreliable-network fault injection;
	// all zero on the lossless network).
	WireDrops   int64 // transmissions lost in flight on this node's link
	WireDups    int64 // duplicate transmissions created in flight
	Retransmits int64 // timeout-driven retransmissions by this node
	DupsDropped int64 // arrivals discarded by this node's receive-side dedup
	AcksSent    int64 // reliable-delivery acknowledgements sent
	GiveUps     int64 // retransmit chains parked after MaxRetries (escalated to probing)
	ProbesSent  int64 // liveness probes sent by the failure detector
	ProbeAcks   int64 // liveness probes this node answered

	// Message-aggregation counters (the NIC-level coalescing scheduler;
	// both zero when aggregation is off).
	SegsCoalesced int64 // protocol messages that traveled as carrier segments
	CarriersSent  int64 // coalesced carrier messages injected

	// MissLatency is an exponential histogram of blocking-miss stall
	// times: bucket i counts stalls in [2^i, 2^(i+1)) µs.
	MissLatency [latBuckets]int64
}

// RecordMissLatency adds one blocking-miss stall to the histogram.
func (n *Node) RecordMissLatency(d sim.Time) {
	us := d / 1000
	b := 0
	for us >= 2 && b < latBuckets-1 {
		us >>= 1
		b++
	}
	n.MissLatency[b]++
}

// Misses returns the node's data-fetch misses (read and write misses).
// Non-blocking upgrade faults are tracked separately in UpgradeMisses:
// they transfer no data and hide their latency, and the paper's Table 3
// miss counts are fetch misses.
func (n *Node) Misses() int64 { return n.ReadMisses + n.WriteMisses }

// Cluster aggregates per-node counters for one run.
type Cluster struct {
	Nodes []Node
}

// New returns counters for an n-node cluster.
func New(n int) *Cluster { return &Cluster{Nodes: make([]Node, n)} }

// N returns the cluster size.
func (c *Cluster) N() int { return len(c.Nodes) }

// TotalMisses sums access faults over all nodes.
func (c *Cluster) TotalMisses() int64 {
	var t int64
	for i := range c.Nodes {
		t += c.Nodes[i].Misses()
	}
	return t
}

// AvgMissesPerNode reports the paper's Table 3 miss metric: the average
// number of misses per node.
func (c *Cluster) AvgMissesPerNode() float64 {
	if len(c.Nodes) == 0 {
		return 0
	}
	return float64(c.TotalMisses()) / float64(len(c.Nodes))
}

// TotalMessages sums messages sent over all nodes.
func (c *Cluster) TotalMessages() int64 {
	var t int64
	for i := range c.Nodes {
		t += c.Nodes[i].MsgsSent
	}
	return t
}

// TotalBytes sums payload+header bytes sent over all nodes.
func (c *Cluster) TotalBytes() int64 {
	var t int64
	for i := range c.Nodes {
		t += c.Nodes[i].BytesSent
	}
	return t
}

// TotalSegsCoalesced sums carrier-borne protocol messages over all
// nodes (each would have been a standalone wire message without the
// coalescing scheduler).
func (c *Cluster) TotalSegsCoalesced() int64 {
	var t int64
	for i := range c.Nodes {
		t += c.Nodes[i].SegsCoalesced
	}
	return t
}

// TotalCarriersSent sums coalesced carrier messages over all nodes.
func (c *Cluster) TotalCarriersSent() int64 {
	var t int64
	for i := range c.Nodes {
		t += c.Nodes[i].CarriersSent
	}
	return t
}

// TotalRetransmits sums timeout-driven retransmissions over all nodes.
func (c *Cluster) TotalRetransmits() int64 {
	var t int64
	for i := range c.Nodes {
		t += c.Nodes[i].Retransmits
	}
	return t
}

// TotalWireDrops sums fault-injected transmission losses over all nodes.
func (c *Cluster) TotalWireDrops() int64 {
	var t int64
	for i := range c.Nodes {
		t += c.Nodes[i].WireDrops
	}
	return t
}

// TotalWireDups sums fault-injected duplications over all nodes.
func (c *Cluster) TotalWireDups() int64 {
	var t int64
	for i := range c.Nodes {
		t += c.Nodes[i].WireDups
	}
	return t
}

// TotalDupsDropped sums receive-side dedup discards over all nodes.
func (c *Cluster) TotalDupsDropped() int64 {
	var t int64
	for i := range c.Nodes {
		t += c.Nodes[i].DupsDropped
	}
	return t
}

// TotalAcksSent sums reliable-delivery acknowledgements over all nodes.
func (c *Cluster) TotalAcksSent() int64 {
	var t int64
	for i := range c.Nodes {
		t += c.Nodes[i].AcksSent
	}
	return t
}

// TotalGiveUps sums retransmit chains parked after MaxRetries over all
// nodes. Nonzero means the failure detector escalated to probing.
func (c *Cluster) TotalGiveUps() int64 {
	var t int64
	for i := range c.Nodes {
		t += c.Nodes[i].GiveUps
	}
	return t
}

// TotalProbesSent sums failure-detector liveness probes over all nodes.
func (c *Cluster) TotalProbesSent() int64 {
	var t int64
	for i := range c.Nodes {
		t += c.Nodes[i].ProbesSent
	}
	return t
}

// FaultSummary renders the reliable-delivery counters in one line, or
// "" if the network never misbehaved (lossless configuration).
func (c *Cluster) FaultSummary() string {
	if c.TotalWireDrops() == 0 && c.TotalWireDups() == 0 && c.TotalRetransmits() == 0 &&
		c.TotalDupsDropped() == 0 && c.TotalAcksSent() == 0 && c.TotalGiveUps() == 0 {
		return ""
	}
	s := fmt.Sprintf("retransmits=%d wire-drops=%d wire-dups=%d dedup-drops=%d acks=%d",
		c.TotalRetransmits(), c.TotalWireDrops(), c.TotalWireDups(),
		c.TotalDupsDropped(), c.TotalAcksSent())
	if g := c.TotalGiveUps(); g > 0 {
		s += fmt.Sprintf(" GIVE-UPS=%d", g)
	}
	return s
}

// MaxCommTime returns the largest per-node communication time (miss
// stalls plus protocol-call time plus barrier waits). The paper's
// "communication time" includes synchronization waiting.
func (c *Cluster) MaxCommTime() sim.Time {
	var m sim.Time
	for i := range c.Nodes {
		if t := c.Nodes[i].CommTime + c.Nodes[i].BarrierTime; t > m {
			m = t
		}
	}
	return m
}

// AvgCommTime returns the mean per-node communication time including
// barrier waits.
func (c *Cluster) AvgCommTime() sim.Time {
	if len(c.Nodes) == 0 {
		return 0
	}
	var t sim.Time
	for i := range c.Nodes {
		t += c.Nodes[i].CommTime + c.Nodes[i].BarrierTime
	}
	return t / sim.Time(len(c.Nodes))
}

// AvgComputeTime returns the mean per-node computation time.
func (c *Cluster) AvgComputeTime() sim.Time {
	if len(c.Nodes) == 0 {
		return 0
	}
	var t sim.Time
	for i := range c.Nodes {
		t += c.Nodes[i].ComputeTime
	}
	return t / sim.Time(len(c.Nodes))
}

// MissLatencyPercentile returns the approximate p-quantile (0..1) of
// blocking-miss stalls across the cluster, in microseconds (upper
// bucket bound), or 0 if no misses were recorded.
func (c *Cluster) MissLatencyPercentile(p float64) float64 {
	var hist [latBuckets]int64
	var total int64
	for i := range c.Nodes {
		for b, v := range c.Nodes[i].MissLatency {
			hist[b] += v
			total += v
		}
	}
	if total == 0 {
		return 0
	}
	target := int64(p * float64(total))
	var seen int64
	for b, v := range hist {
		seen += v
		if seen > target {
			return float64(int64(1) << uint(b+1)) // upper bound of bucket, µs
		}
	}
	return float64(int64(1) << latBuckets)
}

// String renders a compact multi-line summary.
func (c *Cluster) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cluster of %d nodes: %d misses total (%.1f/node), %d msgs, %d bytes\n",
		c.N(), c.TotalMisses(), c.AvgMissesPerNode(), c.TotalMessages(), c.TotalBytes())
	if fs := c.FaultSummary(); fs != "" {
		fmt.Fprintf(&b, "  reliable delivery: %s\n", fs)
	}
	for i := range c.Nodes {
		n := &c.Nodes[i]
		fmt.Fprintf(&b, "  node %d: misses=%d (r=%d w=%d) upgrades=%d msgs=%d compute=%.2fms comm=%.2fms barrier=%.2fms\n",
			i, n.Misses(), n.ReadMisses, n.WriteMisses, n.UpgradeMisses, n.MsgsSent,
			ms(n.ComputeTime), ms(n.CommTime), ms(n.BarrierTime))
	}
	return b.String()
}

func ms(t sim.Time) float64 { return float64(t) / 1e6 }
