package memory

import (
	"testing"
	"testing/quick"

	"hpfdsm/internal/config"
)

func testSpace(t *testing.T) *Space {
	t.Helper()
	return NewSpace(config.Default())
}

func TestAllocPageAligned(t *testing.T) {
	sp := testSpace(t)
	a := sp.Alloc("a", 100)
	b := sp.Alloc("b", 5000)
	c := sp.Alloc("c", 4096)
	pg := sp.Machine().PageSize
	if a%pg != 0 || b%pg != 0 || c%pg != 0 {
		t.Fatalf("allocations not page aligned: %d %d %d", a, b, c)
	}
	if b != pg {
		t.Fatalf("b base = %d, want %d", b, pg)
	}
	if c != 3*pg {
		t.Fatalf("c base = %d, want %d (5000 bytes round to 2 pages)", c, 3*pg)
	}
	if len(sp.Allocs()) != 3 {
		t.Fatalf("alloc map has %d entries", len(sp.Allocs()))
	}
}

func TestHomeRoundRobin(t *testing.T) {
	sp := testSpace(t)
	sp.Alloc("big", 20*sp.Machine().PageSize)
	n := sp.Machine().Nodes
	for pg := 0; pg < sp.NumPages(); pg++ {
		addr := pg * sp.Machine().PageSize
		if sp.Home(addr) != pg%n {
			t.Fatalf("page %d home = %d, want %d", pg, sp.Home(addr), pg%n)
		}
		b := sp.Block(addr)
		if sp.HomeOfBlock(b) != pg%n {
			t.Fatalf("block home disagrees with page home")
		}
	}
}

func TestBlockGeometry(t *testing.T) {
	sp := testSpace(t)
	sp.Alloc("x", 4096)
	bs := sp.BlockSize()
	if sp.Block(0) != 0 || sp.Block(bs-1) != 0 || sp.Block(bs) != 1 {
		t.Fatal("block boundaries wrong")
	}
	if sp.BlockBase(3) != 3*bs {
		t.Fatal("BlockBase wrong")
	}
}

func TestCheckAddr(t *testing.T) {
	sp := testSpace(t)
	sp.Alloc("x", 4096)
	sp.CheckAddr(0)
	sp.CheckAddr(4088)
	for _, bad := range []int{-8, 4096, 12} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("CheckAddr(%d) did not panic", bad)
				}
			}()
			sp.CheckAddr(bad)
		}()
	}
}

func TestHomePagesStartReadWrite(t *testing.T) {
	sp := testSpace(t)
	sp.Alloc("x", 16*sp.Machine().PageSize)
	nm := NewNodeMem(sp, 2)
	bpp := sp.Machine().PageSize / sp.BlockSize()
	for pg := 0; pg < sp.NumPages(); pg++ {
		isHome := sp.Home(pg*sp.Machine().PageSize) == 2
		if nm.Mapped(pg) != isHome {
			t.Fatalf("page %d mapped=%v, home=%v", pg, nm.Mapped(pg), isHome)
		}
		for b := pg * bpp; b < (pg+1)*bpp; b++ {
			want := Invalid
			if isHome {
				want = ReadWrite
			}
			if nm.Tag(b) != want {
				t.Fatalf("page %d block %d tag=%v, want %v", pg, b, nm.Tag(b), want)
			}
		}
	}
}

func TestReadWriteF64RoundTrip(t *testing.T) {
	sp := testSpace(t)
	base := sp.Alloc("x", 4096)
	nm := NewNodeMem(sp, 0)
	vals := []float64{0, 1.5, -2.25e10, 3.141592653589793}
	for i, v := range vals {
		nm.WriteF64(base+8*i, v)
	}
	for i, v := range vals {
		if got := nm.ReadF64(base + 8*i); got != v {
			t.Fatalf("ReadF64[%d] = %v, want %v", i, got, v)
		}
	}
}

func TestDirtyMaskTracksWords(t *testing.T) {
	sp := testSpace(t)
	base := sp.Alloc("x", 4096)
	nm := NewNodeMem(sp, 0)
	b := sp.Block(base)
	if nm.Dirty(b) != 0 {
		t.Fatal("fresh block dirty")
	}
	nm.WriteF64(base, 1)      // word 0
	nm.WriteF64(base+24, 2)   // word 3
	nm.WriteF64(base+8*15, 3) // word 15 (last in 128B block)
	want := uint16(1 | 1<<3 | 1<<15)
	if nm.Dirty(b) != want {
		t.Fatalf("dirty = %016b, want %016b", nm.Dirty(b), want)
	}
	nm.ClearDirty(b)
	if nm.Dirty(b) != 0 {
		t.Fatal("ClearDirty failed")
	}
}

func TestMergeDirtyWords(t *testing.T) {
	sp := testSpace(t)
	base := sp.Alloc("x", 4096)
	home := NewNodeMem(sp, 0) // page 0 homed at node 0
	writer := NewNodeMem(sp, 1)
	b := sp.Block(base)

	// Home has words 0..15 = 100+i; writer modified words 2 and 5 only.
	for i := 0; i < 16; i++ {
		home.WriteF64(base+8*i, float64(100+i))
	}
	home.ClearDirty(b)
	writer.WriteF64(base+16, -2)
	writer.WriteF64(base+40, -5)
	home.MergeDirtyWords(b, writer.BlockData(b), writer.Dirty(b))

	for i := 0; i < 16; i++ {
		want := float64(100 + i)
		if i == 2 {
			want = -2
		}
		if i == 5 {
			want = -5
		}
		if got := home.ReadF64(base + 8*i); got != want {
			t.Fatalf("word %d = %v, want %v", i, got, want)
		}
	}
}

func TestInstallBlockAndRange(t *testing.T) {
	sp := testSpace(t)
	base := sp.Alloc("x", 4096)
	a := NewNodeMem(sp, 0)
	bnode := NewNodeMem(sp, 1)
	for i := 0; i < 32; i++ {
		a.WriteF64(base+8*i, float64(i)*1.5)
	}
	blk := sp.Block(base)
	bnode.InstallBlock(blk, a.BlockData(blk))
	bnode.InstallRange(base+sp.BlockSize(), a.Bytes(base+sp.BlockSize(), sp.BlockSize()))
	for i := 0; i < 32; i++ {
		if got := bnode.ReadF64(base + 8*i); got != float64(i)*1.5 {
			t.Fatalf("installed word %d = %v", i, got)
		}
	}
}

func TestCheckLoadStore(t *testing.T) {
	sp := testSpace(t)
	base := sp.Alloc("x", 4096) // page 0, home node 0
	n0 := NewNodeMem(sp, 0)
	n1 := NewNodeMem(sp, 1)
	if !n0.CheckLoad(base) || !n0.CheckStore(base) {
		t.Fatal("home node should have RW access initially")
	}
	if n1.CheckLoad(base) || n1.CheckStore(base) {
		t.Fatal("remote node should fault initially")
	}
	b := sp.Block(base)
	n1.SetTag(b, ReadOnly)
	if !n1.CheckLoad(base) || n1.CheckStore(base) {
		t.Fatal("readonly semantics wrong")
	}
	n1.SetTag(b, ReadWrite)
	if !n1.CheckStore(base) {
		t.Fatal("readwrite store should pass")
	}
}

func TestTagString(t *testing.T) {
	if Invalid.String() != "invalid" || ReadOnly.String() != "readonly" || ReadWrite.String() != "readwrite" {
		t.Fatal("Tag.String broken")
	}
	if Tag(9).String() == "" {
		t.Fatal("unknown tag empty string")
	}
}

func TestPropertyF64RoundTrip(t *testing.T) {
	sp := testSpace(t)
	base := sp.Alloc("x", 8192)
	nm := NewNodeMem(sp, 0)
	f := func(idx uint16, v float64) bool {
		addr := base + int(idx%1024)*8
		nm.WriteF64(addr, v)
		got := nm.ReadF64(addr)
		return got == v || (got != got && v != v) // NaN-safe
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyMergeNeverTouchesCleanWords(t *testing.T) {
	sp := testSpace(t)
	base := sp.Alloc("x", 4096)
	blk := sp.Block(base)
	f := func(mask uint16, seed uint8) bool {
		home := NewNodeMem(sp, 0)
		w := NewNodeMem(sp, 1)
		for i := 0; i < 16; i++ {
			home.WriteF64(base+8*i, float64(int(seed)+i))
			w.WriteF64(base+8*i, float64(-1000-i))
		}
		home.ClearDirty(blk)
		home.MergeDirtyWords(blk, w.BlockData(blk), mask)
		for i := 0; i < 16; i++ {
			got := home.ReadF64(base + 8*i)
			if mask&(1<<uint(i)) != 0 {
				if got != float64(-1000-i) {
					return false
				}
			} else if got != float64(int(seed)+i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
