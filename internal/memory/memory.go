// Package memory implements the shared global address space of the
// fine-grain DSM and Tempest's fine-grain access control: every node
// holds a local image of the (page-lazily populated) address space plus
// a per-block access tag (invalid / readonly / readwrite). Tag checks
// are performed by the executor on every shared load and store; tag
// changes and data movement are performed by the coherence protocol.
//
// Addresses are byte offsets into the shared segment. Pages are assigned
// round-robin to home nodes, so an array's owner (from its HPF
// distribution) is generally not its home — exactly the situation the
// paper's mk_writable step exists to handle.
package memory

import (
	"encoding/binary"
	"fmt"
	"math"
	mbits "math/bits"

	"hpfdsm/internal/config"
)

// Tag is a block's fine-grain access tag.
type Tag uint8

const (
	Invalid Tag = iota
	ReadOnly
	ReadWrite
)

func (t Tag) String() string {
	switch t {
	case Invalid:
		return "invalid"
	case ReadOnly:
		return "readonly"
	case ReadWrite:
		return "readwrite"
	default:
		return fmt.Sprintf("Tag(%d)", uint8(t))
	}
}

// Alloc records one named allocation in the shared segment.
type Alloc struct {
	Name string
	Base int
	Size int
}

// Space is the shared segment layout: allocation map, block and page
// geometry, and the home-node assignment.
type Space struct {
	mc     config.Machine
	size   int // current segment size in bytes (page aligned)
	allocs []Alloc

	// Cached geometry for the executor's per-access fast paths: block
	// and page arithmetic reduce to shifts when the sizes are powers of
	// two (shift == 0 on the rare non-power-of-two configuration, which
	// falls back to division).
	blockShift uint
	pageShift  uint
}

// log2of returns log2(n) when n is a power of two, else 0.
func log2of(n int) uint {
	if n > 0 && n&(n-1) == 0 {
		return uint(mbits.TrailingZeros(uint(n)))
	}
	return 0
}

// NewSpace returns an empty shared segment for machine mc.
func NewSpace(mc config.Machine) *Space {
	if err := mc.Validate(); err != nil {
		panic(err)
	}
	return &Space{
		mc:         mc,
		blockShift: log2of(mc.BlockSize),
		pageShift:  log2of(mc.PageSize),
	}
}

// Machine returns the machine configuration the space was built for.
func (s *Space) Machine() config.Machine { return s.mc }

// Size returns the segment size in bytes.
func (s *Space) Size() int { return s.size }

// BlockSize returns the coherence unit in bytes.
func (s *Space) BlockSize() int { return s.mc.BlockSize }

// NumBlocks returns the number of coherence blocks in the segment.
func (s *Space) NumBlocks() int { return s.size / s.mc.BlockSize }

// NumPages returns the number of pages in the segment.
func (s *Space) NumPages() int { return s.size / s.mc.PageSize }

// Alloc reserves bytes of shared memory, page aligned (so distinct
// arrays never share a page, let alone a block), and returns the base
// address.
func (s *Space) Alloc(name string, bytes int) int {
	if bytes <= 0 {
		panic(fmt.Sprintf("memory: bad allocation size %d for %q", bytes, name))
	}
	base := s.size
	pg := s.mc.PageSize
	s.size += (bytes + pg - 1) / pg * pg
	s.allocs = append(s.allocs, Alloc{Name: name, Base: base, Size: bytes})
	return base
}

// Allocs returns the allocation map.
func (s *Space) Allocs() []Alloc { return s.allocs }

// Block returns the block number containing addr.
func (s *Space) Block(addr int) int {
	if s.blockShift != 0 {
		return addr >> s.blockShift
	}
	return addr / s.mc.BlockSize
}

// BlockBase returns the byte address of block b.
func (s *Space) BlockBase(b int) int { return b * s.mc.BlockSize }

// Page returns the page number containing addr.
func (s *Space) Page(addr int) int {
	if s.pageShift != 0 {
		return addr >> s.pageShift
	}
	return addr / s.mc.PageSize
}

// Home returns the home node of addr's page (round-robin assignment).
func (s *Space) Home(addr int) int { return s.Page(addr) % s.mc.Nodes }

// HomeOfBlock returns the home node of block b.
func (s *Space) HomeOfBlock(b int) int { return s.Home(b * s.mc.BlockSize) }

// CheckAddr panics if addr is outside the segment or not 8-byte aligned.
func (s *Space) CheckAddr(addr int) {
	if addr < 0 || addr+8 > s.size || addr%8 != 0 {
		panic(fmt.Sprintf("memory: bad shared address %#x (segment size %#x)", addr, s.size))
	}
}

// NodeMem is one node's image of the shared segment: data, per-block
// tags, per-block dirty-word masks (used by the multiple-writer
// protocol), and the per-page mapped bits (remote pages pay a mapping
// cost on first touch).
type NodeMem struct {
	sp     *Space
	id     int
	data   []byte
	tags   []Tag
	dirty  []uint16 // bit i set => word i of block modified locally
	mapped []bool

	// Cached block geometry so the per-access check/translate path
	// never chases m.sp.mc and divides by a shift where possible.
	bs     int  // block size in bytes
	bshift uint // log2(bs), 0 if bs is not a power of two
}

// NewNodeMem creates node id's memory image. Blocks on pages homed at
// this node start ReadWrite (home memory is the backing store and the
// directory starts Idle); everything else starts Invalid and unmapped.
func NewNodeMem(sp *Space, id int) *NodeMem {
	nb := sp.NumBlocks()
	np := sp.NumPages()
	nm := &NodeMem{
		sp:     sp,
		id:     id,
		data:   make([]byte, sp.size),
		tags:   make([]Tag, nb),
		dirty:  make([]uint16, nb),
		mapped: make([]bool, np),
		bs:     sp.mc.BlockSize,
		bshift: log2of(sp.mc.BlockSize),
	}
	bpp := sp.mc.PageSize / sp.mc.BlockSize
	for pg := 0; pg < np; pg++ {
		if sp.Home(pg*sp.mc.PageSize) == id {
			nm.mapped[pg] = true
			for b := pg * bpp; b < (pg+1)*bpp; b++ {
				nm.tags[b] = ReadWrite
			}
		}
	}
	return nm
}

// ID returns the owning node id.
func (m *NodeMem) ID() int { return m.id }

// Space returns the shared segment layout.
func (m *NodeMem) Space() *Space { return m.sp }

// Tag returns block b's access tag.
func (m *NodeMem) Tag(b int) Tag { return m.tags[b] }

// SetTag sets block b's access tag.
func (m *NodeMem) SetTag(b int, t Tag) { m.tags[b] = t }

// Mapped reports whether page pg has been mapped locally.
func (m *NodeMem) Mapped(pg int) bool { return m.mapped[pg] }

// SetMapped marks page pg mapped.
func (m *NodeMem) SetMapped(pg int) { m.mapped[pg] = true }

// Dirty returns block b's dirty-word mask.
func (m *NodeMem) Dirty(b int) uint16 { return m.dirty[b] }

// ClearDirty zeroes block b's dirty-word mask.
func (m *NodeMem) ClearDirty(b int) { m.dirty[b] = 0 }

// SetDirtyMask replaces block b's dirty-word mask (checkpoint restore).
func (m *NodeMem) SetDirtyMask(b int, mask uint16) { m.dirty[b] = mask }

// MarkAllDirty sets every word of block b dirty (used when a whole
// block of modifications is installed at once).
func (m *NodeMem) MarkAllDirty(b int) {
	m.dirty[b] = uint16(1)<<uint(m.sp.mc.BlockSize/8) - 1
}

// ReadF64 reads the float64 at addr with no access check; the executor
// checks tags before calling.
func (m *NodeMem) ReadF64(addr int) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(m.data[addr:]))
}

// block is the inlined block-number translation for the hot paths.
func (m *NodeMem) block(addr int) int {
	if m.bshift != 0 {
		return addr >> m.bshift
	}
	return addr / m.bs
}

// WriteF64 writes the float64 at addr with no access check and records
// the word in the containing block's dirty mask.
func (m *NodeMem) WriteF64(addr int, v float64) {
	binary.LittleEndian.PutUint64(m.data[addr:], math.Float64bits(v))
	b := m.block(addr)
	m.dirty[b] |= 1 << uint((addr-b*m.bs)>>3)
}

// BlockData returns the live bytes of block b (aliasing the node image).
func (m *NodeMem) BlockData(b int) []byte {
	bs := m.sp.mc.BlockSize
	return m.data[b*bs : (b+1)*bs]
}

// Bytes returns the live bytes of [addr, addr+n) (aliasing the image).
func (m *NodeMem) Bytes(addr, n int) []byte { return m.data[addr : addr+n] }

// InstallBlock copies a full block of incoming data into the node image.
func (m *NodeMem) InstallBlock(b int, data []byte) {
	copy(m.BlockData(b), data)
}

// InstallRange copies incoming data into [addr, addr+len(data)).
func (m *NodeMem) InstallRange(addr int, data []byte) {
	copy(m.data[addr:], data)
}

// MergeDirtyWords applies only the words selected by mask from data
// into block b — the multiple-writer merge used when a writer flushes
// its modifications to the home.
func (m *NodeMem) MergeDirtyWords(b int, data []byte, mask uint16) {
	base := b * m.sp.mc.BlockSize
	for w := 0; w < m.sp.mc.BlockSize/8; w++ {
		if mask&(1<<uint(w)) != 0 {
			copy(m.data[base+8*w:base+8*w+8], data[8*w:8*w+8])
		}
	}
}

// InstallClean copies incoming block data into every word of b that is
// NOT locally dirty — the arrival side of a non-blocking write miss:
// words the processor wrote while the fetch was in flight win over the
// fetched copy.
func (m *NodeMem) InstallClean(b int, data []byte) {
	m.MergeDirtyWords(b, data, ^m.dirty[b])
}

// CheckLoad reports whether a load of addr would fault (tag invalid).
func (m *NodeMem) CheckLoad(addr int) bool {
	return m.tags[m.block(addr)] != Invalid
}

// CheckStore reports whether a store to addr would fault.
func (m *NodeMem) CheckStore(addr int) bool {
	return m.tags[m.block(addr)] == ReadWrite
}
