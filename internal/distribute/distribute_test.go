package distribute

import (
	"math/rand"
	"testing"
)

func TestBlockOwnership(t *testing.T) {
	d := New(Spec{Kind: Block}, 16, 4)
	if d.ChunkSize() != 4 {
		t.Fatalf("chunk = %d", d.ChunkSize())
	}
	wants := map[int]int{1: 0, 4: 0, 5: 1, 8: 1, 9: 2, 13: 3, 16: 3}
	for j, p := range wants {
		if d.Owner(j) != p {
			t.Fatalf("Owner(%d) = %d, want %d", j, d.Owner(j), p)
		}
	}
	if r := d.OwnedRanges(2); len(r) != 1 || r[0] != [2]int{9, 12} {
		t.Fatalf("ranges(2) = %v", r)
	}
}

func TestBlockUneven(t *testing.T) {
	// 10 indices over 4 procs: chunks of 3, last proc gets 1.
	d := New(Spec{Kind: Block}, 10, 4)
	if d.CountOwned(0) != 3 || d.CountOwned(3) != 1 {
		t.Fatalf("counts: %d %d %d %d",
			d.CountOwned(0), d.CountOwned(1), d.CountOwned(2), d.CountOwned(3))
	}
	// Degenerate: extent smaller than np; trailing procs own nothing.
	d2 := New(Spec{Kind: Block}, 2, 4)
	if d2.CountOwned(0) != 1 || d2.CountOwned(1) != 1 || d2.CountOwned(2) != 0 {
		t.Fatal("degenerate block wrong")
	}
	// Owner clamps into range.
	if d2.Owner(2) != 1 {
		t.Fatalf("owner(2) = %d", d2.Owner(2))
	}
}

func TestCyclicOwnership(t *testing.T) {
	d := New(Spec{Kind: Cyclic}, 10, 3)
	want := []int{0, 1, 2, 0, 1, 2, 0, 1, 2, 0}
	for j := 1; j <= 10; j++ {
		if d.Owner(j) != want[j-1] {
			t.Fatalf("Owner(%d) = %d, want %d", j, d.Owner(j), want[j-1])
		}
	}
	r := d.OwnedRanges(1)
	if len(r) != 3 || r[0] != [2]int{2, 2} || r[2] != [2]int{8, 8} {
		t.Fatalf("cyclic ranges = %v", r)
	}
}

func TestBlockCyclic(t *testing.T) {
	d := New(Spec{Kind: BlockCyclic, K: 2}, 12, 3)
	// chunks: [1,2]->0 [3,4]->1 [5,6]->2 [7,8]->0 ...
	if d.Owner(2) != 0 || d.Owner(3) != 1 || d.Owner(7) != 0 {
		t.Fatal("block-cyclic owners wrong")
	}
	r := d.OwnedRanges(0)
	if len(r) != 2 || r[0] != [2]int{1, 2} || r[1] != [2]int{7, 8} {
		t.Fatalf("ranges = %v", r)
	}
}

func TestCollapsed(t *testing.T) {
	d := New(Spec{Kind: Collapsed}, 7, 4)
	for j := 1; j <= 7; j++ {
		if d.Owner(j) != 0 {
			t.Fatal("collapsed owner must be 0")
		}
	}
	if len(d.OwnedRanges(1)) != 0 {
		t.Fatal("collapsed non-root owns nothing")
	}
}

// TestPropertyPartition verifies OwnedRanges partitions 1..Extent and
// agrees with Owner, across random configurations and all kinds.
func TestPropertyPartition(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		extent := 1 + r.Intn(200)
		np := 1 + r.Intn(9)
		var spec Spec
		switch r.Intn(4) {
		case 0:
			spec = Spec{Kind: Collapsed}
		case 1:
			spec = Spec{Kind: Block}
		case 2:
			spec = Spec{Kind: Cyclic}
		default:
			spec = Spec{Kind: BlockCyclic, K: 1 + r.Intn(5)}
		}
		d := New(spec, extent, np)
		owner := make([]int, extent+1)
		for j := range owner {
			owner[j] = -1
		}
		total := 0
		for p := 0; p < np; p++ {
			for _, rg := range d.OwnedRanges(p) {
				for j := rg[0]; j <= rg[1]; j++ {
					if owner[j] != -1 {
						t.Fatalf("%v: index %d owned twice", d, j)
					}
					owner[j] = p
					total++
					if d.Owner(j) != p {
						t.Fatalf("%v: Owner(%d)=%d but ranges say %d", d, j, d.Owner(j), p)
					}
				}
			}
		}
		if total != extent {
			t.Fatalf("%v: covered %d of %d indices", d, total, extent)
		}
	}
}

func TestPanics(t *testing.T) {
	d := New(Spec{Kind: Block}, 10, 2)
	for _, f := range []func(){
		func() { d.Owner(0) },
		func() { d.Owner(11) },
		func() { d.OwnedRanges(2) },
		func() { New(Spec{Kind: BlockCyclic}, 10, 2) },
		func() { New(Spec{Kind: Block}, 0, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestStrings(t *testing.T) {
	if Block.String() != "BLOCK" || Cyclic.String() != "CYCLIC" || Collapsed.String() != "*" {
		t.Fatal("kind strings wrong")
	}
	_ = New(Spec{Kind: Block}, 4, 2).String()
}
