// Package distribute implements HPF data distributions. Following the
// paper's simplifying assumption, only the last dimension of an array
// is distributed, blockwise or cyclically, over a linear arrangement of
// processors; all other dimensions are collapsed (whole). The
// distribution defines the *owner* of each element — which, on the
// DSM, is generally a different node from the element's *home*.
package distribute

import "fmt"

// Kind is a distribution format for the last dimension.
type Kind int

const (
	// Collapsed replicates: a single processor owns everything
	// (used for undistributed arrays; owner is processor 0).
	Collapsed Kind = iota
	// Block gives each processor one contiguous chunk of
	// ceil(extent/np) indices.
	Block
	// Cyclic deals indices round-robin.
	Cyclic
	// BlockCyclic deals chunks of K indices round-robin.
	BlockCyclic
)

func (k Kind) String() string {
	switch k {
	case Collapsed:
		return "*"
	case Block:
		return "BLOCK"
	case Cyclic:
		return "CYCLIC"
	case BlockCyclic:
		return "CYCLIC(K)"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Spec is a distribution directive as written in the source.
type Spec struct {
	Kind Kind
	K    int // chunk size for BlockCyclic
}

// Dist binds a Spec to an extent and a processor count.
type Dist struct {
	Spec
	Extent int // last-dimension extent, indices 1..Extent
	NP     int
}

// New validates and builds a distribution.
func New(s Spec, extent, np int) Dist {
	if extent < 1 || np < 1 {
		panic(fmt.Sprintf("distribute: bad extent %d / np %d", extent, np))
	}
	if s.Kind == BlockCyclic && s.K < 1 {
		panic("distribute: BlockCyclic needs K >= 1")
	}
	return Dist{Spec: s, Extent: extent, NP: np}
}

// ChunkSize returns the contiguous chunk length for Block (ceil(E/P)),
// K for BlockCyclic, 1 for Cyclic, and Extent for Collapsed.
func (d Dist) ChunkSize() int {
	switch d.Kind {
	case Block:
		return (d.Extent + d.NP - 1) / d.NP
	case Cyclic:
		return 1
	case BlockCyclic:
		return d.K
	case Collapsed:
		return d.Extent
	default:
		panic("distribute: unknown kind")
	}
}

// Owner returns the processor owning index j (1-based).
func (d Dist) Owner(j int) int {
	if j < 1 || j > d.Extent {
		panic(fmt.Sprintf("distribute: index %d out of 1..%d", j, d.Extent))
	}
	switch d.Kind {
	case Collapsed:
		return 0
	case Block:
		p := (j - 1) / d.ChunkSize()
		if p >= d.NP {
			p = d.NP - 1
		}
		return p
	case Cyclic:
		return (j - 1) % d.NP
	case BlockCyclic:
		return ((j - 1) / d.K) % d.NP
	default:
		panic("distribute: unknown kind")
	}
}

// OwnedRanges returns processor p's owned index ranges of the last
// dimension, in ascending order, as inclusive [lo, hi] pairs. For
// Block this is at most one range; for Cyclic, Extent/NP singletons.
func (d Dist) OwnedRanges(p int) [][2]int {
	if p < 0 || p >= d.NP {
		panic(fmt.Sprintf("distribute: processor %d out of 0..%d", p, d.NP-1))
	}
	switch d.Kind {
	case Collapsed:
		if p == 0 {
			return [][2]int{{1, d.Extent}}
		}
		return nil
	case Block:
		cs := d.ChunkSize()
		lo := p*cs + 1
		hi := (p + 1) * cs
		if hi > d.Extent {
			hi = d.Extent
		}
		if lo > d.Extent {
			return nil
		}
		return [][2]int{{lo, hi}}
	case Cyclic, BlockCyclic:
		k := d.ChunkSize()
		var out [][2]int
		for start := p*k + 1; start <= d.Extent; start += d.NP * k {
			hi := start + k - 1
			if hi > d.Extent {
				hi = d.Extent
			}
			out = append(out, [2]int{start, hi})
		}
		return out
	default:
		panic("distribute: unknown kind")
	}
}

// CountOwned returns how many indices p owns.
func (d Dist) CountOwned(p int) int {
	n := 0
	for _, r := range d.OwnedRanges(p) {
		n += r[1] - r[0] + 1
	}
	return n
}

func (d Dist) String() string {
	return fmt.Sprintf("%v over %d procs, extent %d", d.Kind, d.NP, d.Extent)
}
