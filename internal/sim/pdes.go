//simlint:concurrent -- the window coordinator parks every partition worker at a barrier before touching any Env; channel send/receive pairs establish the happens-before edges, and the six-app differential suite runs under -race

// Conservative parallel discrete-event simulation (PDES) over a set of
// per-partition Envs. The simulated machine's minimum cross-partition
// message latency L (wire latency plus header serialization) is a
// conservative lookahead: no message sent at time s can be delivered
// remotely before s+L. The coordinator therefore advances all
// partitions in lockstep windows [m, m+L), where m is the global
// minimum pending-event time: any cross-partition send executed inside
// the window has s >= m, so its arrival s+L' >= m+L lands at or past
// the window edge and cannot affect another partition's current window.
//
// Cross-partition sends are not scheduled directly on the destination
// heap (that would race with the destination worker). They are posted
// to a per-(src,dst) outbox row — single writer, the source worker —
// and drained into the destination heap by the coordinator at the next
// window boundary via ScheduleDelivery, which orders same-instant
// deliveries by the schedule-independent key (arrival, sent, srcNode,
// per-source seq) that the sequential loop uses for the same events.
// Pop order therefore does not depend on which worker finished first
// or on when the mail was injected, which is what makes the parallel
// run's statistics bit-identical to the sequential loop's.
package sim

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
)

// mail is one cross-partition message in flight between windows. The
// (arrival, sent, srcNode, seq) tuple is the delivery key handed to
// ScheduleDelivery at injection — identical to the key the source
// would have used scheduling the delivery directly.
type mail struct {
	arrival Time      // virtual delivery time at the destination
	sent    Time      // virtual time the source executed the send
	srcNode int       // simulated source node
	seq     uint32    // per-source message sequence (caller-assigned)
	afn     func(any) // delivery function (closure-free, as ScheduleArg)
	arg     any
}

// partResult is one worker's report for one window.
type partResult struct {
	part int
	err  error
}

// Shards runs P partition Envs in conservative lockstep windows. All
// methods except Post must be called from the coordinator goroutine
// (the one that calls Run); Post is called by partition workers while
// their window executes.
type Shards struct {
	envs      []*Env
	lookahead Time

	// out[src*P+dst] is the (src,dst) outbox row. Exactly one writer —
	// partition src's worker during its window — and one reader, the
	// coordinator between windows.
	out    [][]mail
	merged []mail // coordinator scratch for the per-destination merge

	start []chan Time     // coordinator -> worker: run a window to t1
	done  chan partResult // worker -> coordinator: window finished

	// inline: run every window on the coordinator goroutine, in
	// partition order, without waking workers. Chosen at construction
	// when the host cannot run two workers at once (GOMAXPROCS < 2):
	// the handshakes would buy no overlap, only latency. The simulated
	// results are identical either way — the delivery-key heap order
	// makes execution independent of window structure — so this is a
	// wall-clock decision only, and SetInline allows tests to force
	// either path.
	inline bool

	wdDump func() string // extra diagnostic lines for stall/deadlock errors
}

// NewShards wraps envs (one per partition, all sharing a start time)
// in a window scheduler with the given conservative lookahead: the
// minimum virtual latency of any cross-partition message. lookahead
// must be positive, or windows could not make guaranteed progress.
func NewShards(envs []*Env, lookahead Time) *Shards {
	if len(envs) == 0 {
		panic("sim: NewShards with no partitions")
	}
	if lookahead <= 0 {
		panic(fmt.Sprintf("sim: NewShards lookahead must be positive, got %d", lookahead))
	}
	p := len(envs)
	s := &Shards{
		envs:      envs,
		lookahead: lookahead,
		out:       make([][]mail, p*p),
		start:     make([]chan Time, p),
		done:      make(chan partResult, p),
	}
	for i := range s.start {
		s.start[i] = make(chan Time)
	}
	for i := range envs {
		go s.worker(i)
	}
	s.inline = runtime.GOMAXPROCS(0) < 2
	return s
}

// SetInline overrides the automatic coordinator-inline decision (see
// the inline field). Simulated results do not depend on it.
func (s *Shards) SetInline(v bool) { s.inline = v }

// worker is partition part's OS-thread-side loop: run one window per
// start message, report completion, park. It exits when Shutdown
// closes the start channel.
func (s *Shards) worker(part int) {
	env := s.envs[part]
	for t1 := range s.start[part] {
		s.done <- partResult{part: part, err: env.RunWindow(t1)}
	}
}

// Env returns partition p's environment. Interact with it only between
// Run calls or before Run (e.g. to Spawn processes).
func (s *Shards) Env(p int) *Env { return s.envs[p] }

// Partitions returns the partition count.
func (s *Shards) Partitions() int { return len(s.envs) }

// SetWatchdog arms each partition's stall watchdog (see Env.SetWatchdog)
// and records dump as the extra diagnostic for stall and deadlock
// errors. The per-Env dump stays nil: when a partition stalls, the
// coordinator appends every partition's blocked-process state, so a
// cross-partition deadlock is diagnosable from any one partition's
// error.
func (s *Shards) SetWatchdog(horizon Time, dump func() string) {
	s.wdDump = dump
	for _, env := range s.envs {
		env.SetWatchdog(horizon, nil)
	}
}

// Post queues a cross-partition delivery: fn(arg) runs on partition
// dstPart's Env at virtual time arrival. Called by partition srcPart's
// worker while its window executes; arrival must be at or past the
// current window's edge (guaranteed by the lookahead if sent is inside
// the window). sent, srcNode, and seq are the delivery key the
// destination heap orders by — the same key the source would pass to
// ScheduleDelivery for an intra-partition send.
//
//simlint:hotpath
func (s *Shards) Post(srcPart, dstPart int, arrival, sent Time, srcNode int, seq uint32, fn func(any), arg any) {
	row := srcPart*len(s.envs) + dstPart
	//simlint:ignore hotalloc -- outbox rows grow to their high-water mark once; boundary drains truncate to length zero and reuse capacity
	s.out[row] = append(s.out[row], mail{
		arrival: arrival,
		sent:    sent,
		srcNode: srcNode,
		seq:     seq,
		afn:     fn,
		arg:     arg,
	})
}

// inject drains every outbox row into its destination Env via
// ScheduleDelivery. The heap orders same-instant deliveries by the
// (sent, srcNode, seq) key, so injection order is immaterial; the sort
// only keeps the lookahead check's error attribution deterministic.
func (s *Shards) inject() {
	p := len(s.envs)
	for dst := 0; dst < p; dst++ {
		s.merged = s.merged[:0]
		for src := 0; src < p; src++ {
			row := src*p + dst
			s.merged = append(s.merged, s.out[row]...)
			s.out[row] = s.out[row][:0]
		}
		if len(s.merged) == 0 {
			continue
		}
		m := s.merged
		sort.Slice(m, func(i, j int) bool {
			if m[i].arrival != m[j].arrival {
				return m[i].arrival < m[j].arrival
			}
			if m[i].sent != m[j].sent {
				return m[i].sent < m[j].sent
			}
			if m[i].srcNode != m[j].srcNode {
				return m[i].srcNode < m[j].srcNode
			}
			return m[i].seq < m[j].seq
		})
		env := s.envs[dst]
		for i := range m {
			if m[i].arrival < env.now {
				panic(fmt.Sprintf("sim: pdes lookahead violated: mail from node %d sent t=%d arrives t=%d behind partition clock t=%d",
					m[i].srcNode, m[i].sent, m[i].arrival, env.now))
			}
			env.ScheduleDelivery(m[i].arrival, m[i].sent, m[i].srcNode, m[i].seq, m[i].afn, m[i].arg)
			m[i].arg = nil // drop the reference; the heap owns it now
		}
	}
}

// nextEventTime returns the global minimum pending-event time across
// all partitions, after mailbox injection.
func (s *Shards) nextEventTime() (Time, bool) {
	var min Time
	ok := false
	for _, env := range s.envs {
		if t, has := env.NextEventTime(); has && (!ok || t < min) {
			min, ok = t, true
		}
	}
	return min, ok
}

// Run drives the simulation to completion: inject boundary mail,
// compute the next window [m, m+lookahead), run every partition's
// window concurrently, repeat. The partition owning the global minimum
// event always executes at least one event per window, so the loop
// makes progress whenever any event is pending. Returns nil when every
// heap and outbox drains with no process blocked; a deadlock error
// (with all partitions' blocked-process state) otherwise; or the first
// partition's window error — lowest partition index wins, a
// deterministic choice — annotated with every partition's state.
//
// Two overhead eliminations, both invisible to the simulation:
// partitions with no event before t1 are not woken (they could only
// no-op — intra-partition events are created by the partition itself
// and mail is injected here, before the check), and a window with
// exactly one active partition runs inline on the coordinator's
// goroutine, so effectively-sequential phases pay zero handoffs.
func (s *Shards) Run() error {
	for {
		s.inject()
		m, ok := s.nextEventTime()
		if !ok {
			if s.totalBlocked() > 0 {
				return s.deadlockError()
			}
			return nil
		}
		t1 := m + s.lookahead
		nActive, lastActive := 0, -1
		for p, env := range s.envs {
			if t, has := env.NextEventTime(); has && t < t1 {
				nActive++
				lastActive = p
			}
		}
		if nActive == 1 {
			if err := s.envs[lastActive].RunWindow(t1); err != nil {
				return fmt.Errorf("sim: partition %d: %w\n%s", lastActive, err, s.dumpAll())
			}
			continue
		}
		if s.inline {
			for p, env := range s.envs {
				if t, has := env.NextEventTime(); has && t < t1 {
					if err := env.RunWindow(t1); err != nil {
						return fmt.Errorf("sim: partition %d: %w\n%s", p, err, s.dumpAll())
					}
				}
			}
			continue
		}
		for p, env := range s.envs {
			if t, has := env.NextEventTime(); has && t < t1 {
				s.start[p] <- t1
			}
		}
		var firstErr error
		firstPart := -1
		for i := 0; i < nActive; i++ {
			r := <-s.done
			if r.err != nil && (firstPart == -1 || r.part < firstPart) {
				firstPart, firstErr = r.part, r.err
			}
		}
		if firstErr != nil {
			return fmt.Errorf("sim: partition %d: %w\n%s", firstPart, firstErr, s.dumpAll())
		}
	}
}

// totalBlocked sums condition-blocked processes across partitions.
func (s *Shards) totalBlocked() int {
	n := 0
	for _, env := range s.envs {
		n += env.blocked
	}
	return n
}

func (s *Shards) deadlockError() error {
	msg := fmt.Sprintf("sim: deadlock at t=%d: %d process(es) blocked forever across %d partition(s)\n%s",
		s.Now(), s.totalBlocked(), len(s.envs), s.dumpAll())
	return fmt.Errorf("%s", msg)
}

// dumpAll renders every partition's clock and blocked-process state
// (reusing blockedNames), plus the external dump hook if set. Called
// only with all workers parked.
func (s *Shards) dumpAll() string {
	var b strings.Builder
	b.WriteString("partition state:")
	for p, env := range s.envs {
		fmt.Fprintf(&b, "\n  partition %d: t=%dns, %d/%d process(es) blocked", p, env.now, env.blocked, env.alive)
		if env.blocked > 0 {
			fmt.Fprintf(&b, ": %s", env.blockedNames())
		}
	}
	if s.wdDump != nil {
		if d := s.wdDump(); d != "" {
			b.WriteString("\n")
			b.WriteString(d)
		}
	}
	return b.String()
}

// Now returns the maximum partition clock: the virtual time the merged
// run has reached. Matches the sequential loop's final Now() because
// window execution never forces a clock past its last executed event.
func (s *Shards) Now() Time {
	max := s.envs[0].now
	for _, env := range s.envs[1:] {
		if env.now > max {
			max = env.now
		}
	}
	return max
}

// Events returns the event-dispatch counters summed across partitions.
func (s *Shards) Events() EventStats {
	var total EventStats
	for _, env := range s.envs {
		st := env.Events()
		total.Dispatches += st.Dispatches
		total.ArgEvents += st.ArgEvents
		total.FnEvents += st.FnEvents
	}
	return total
}

// Shutdown stops the workers and force-terminates every partition's
// unfinished processes. Must be called after Run has returned; the
// shards are unusable afterwards.
func (s *Shards) Shutdown() {
	for _, ch := range s.start {
		close(ch)
	}
	for _, env := range s.envs {
		env.Shutdown()
	}
}
